package repro_test

import (
	"fmt"

	"repro"

	"repro/internal/units"
)

// ExampleSimulate runs SODA over a constant 12 Mb/s link with the mobile
// ladder: a clean session pinned at the sustainable 7.5 Mb/s rung.
func ExampleSimulate() {
	ladder := repro.LadderMobile()
	soda := repro.NewSODA(repro.DefaultSODAConfig(), ladder)
	res, err := repro.Simulate(repro.ConstantTrace(12, 120), repro.SimulationConfig{
		Ladder:     ladder,
		BufferCap:  units.Seconds(20),
		Controller: soda,
		Predictor:  repro.NewEMAPredictor(units.Seconds(4)),
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("segments=%d rebuffer=%.2f\n", res.Metrics.Segments, res.Metrics.RebufferRatio)
	// Output: segments=60 rebuffer=0.00
}

// ExampleNewController shows baseline construction through the registry.
func ExampleNewController() {
	bola, err := repro.NewController("bola", repro.LadderYouTube4K())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(bola.Name())
	// Output: bola
}

// ExampleGenerateDataset synthesizes sessions calibrated to the paper's 4G
// dataset.
func ExampleGenerateDataset() {
	ds, err := repro.GenerateDataset(repro.Profile4G(), 3, units.Seconds(60), 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("sessions=%d\n", len(ds.Sessions))
	// Output: sessions=3
}
