// A/B test: run the production-style experiment of §6.3 — SODA against a
// fine-tuned baseline across simulated device fleets (HTML5 browsers, smart
// TVs, set-top boxes), reporting the relative changes Figure 13 plots.
//
//	go run ./examples/abtest
package main

import (
	"fmt"
	"log"

	"repro/internal/prod"
	"repro/internal/units"
)

func main() {
	cfg := prod.DefaultConfig()
	cfg.SessionsPerArm = 20
	cfg.SessionLength = units.Seconds(400)

	fmt.Println("running the device-family A/B experiment (SODA vs fine-tuned baseline)...")
	reports, err := prod.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for _, r := range reports {
		fmt.Println(r.String())
	}
	fmt.Println("\nnegative switching/rebuffering deltas and positive viewing deltas")
	fmt.Println("reproduce the direction of the paper's production findings.")
}
