// Quickstart: make SODA bitrate decisions over a synthetic trace.
//
// This is the smallest end-to-end use of the library: build the controller,
// simulate a live session over a bandwidth trace, and read the QoE metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A 4K live stream with the YouTube-recommended ladder and the paper's
	// 20-second live buffer bound.
	ladder := repro.LadderYouTube4K()
	soda := repro.NewSODA(repro.DefaultSODAConfig(), ladder)

	// A simple network: 35 Mb/s with a dip to 6 Mb/s in the middle.
	tr := repro.NewTrace([]repro.Sample{
		{Duration: repro.Seconds(120), Mbps: repro.Mbps(35)},
		{Duration: repro.Seconds(60), Mbps: repro.Mbps(6)},
		{Duration: repro.Seconds(120), Mbps: repro.Mbps(35)},
	})

	res, err := repro.Simulate(tr, repro.SimulationConfig{
		Ladder:     ladder,
		BufferCap:  repro.Seconds(20),
		Controller: soda,
		Predictor:  repro.NewEMAPredictor(repro.Seconds(4)),
	})
	if err != nil {
		log.Fatal(err)
	}

	m := res.Metrics
	fmt.Printf("streamed %d segments over a 5-minute session\n", m.Segments)
	fmt.Printf("  mean utility    %.3f\n", m.MeanUtility)
	fmt.Printf("  rebuffer ratio  %.4f (%.1f s)\n", m.RebufferRatio, m.RebufferSec)
	fmt.Printf("  switching rate  %.4f (%d switches)\n", m.SwitchRate, m.Switches)
	fmt.Printf("  QoE score       %.3f\n", m.Score)
	fmt.Printf("bitrate sequence (rung indices): %v\n", res.Rungs)
}
