// Livestream: compare SODA against the dash.js Dynamic controller on a
// volatile mobile network, the paper's motivating live-streaming scenario
// (20-second buffer, 4G-calibrated conditions).
//
//	go run ./examples/livestream
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	ladder := repro.LadderMobile()

	// Ten 4G sessions of ten minutes each, calibrated to the paper's 4G
	// dataset (13 Mb/s mean, 80.6% relative standard deviation).
	ds, err := repro.GenerateDataset(repro.Profile4G(), 10, repro.Seconds(600), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4G dataset: %d sessions, mean %.1f Mb/s, RSD %.0f%%\n\n",
		len(ds.Sessions), ds.MeanMbps(), 100*ds.RSD())

	for _, name := range []string{"soda", "dynamic"} {
		var agg struct {
			qoe, util, rebuf, sw float64
		}
		for _, tr := range ds.Sessions {
			ctrl, err := repro.NewController(name, ladder)
			if err != nil {
				log.Fatal(err)
			}
			res, err := repro.Simulate(tr, repro.SimulationConfig{
				Ladder:         ladder,
				BufferCap:      repro.Seconds(20), // live: stay close to the broadcast edge
				SessionSeconds: repro.Seconds(600),
				Controller:     ctrl,
				Predictor:      repro.NewEMAPredictor(repro.Seconds(4)),
			})
			if err != nil {
				log.Fatal(err)
			}
			m := res.Metrics
			agg.qoe += m.Score
			agg.util += m.MeanUtility
			agg.rebuf += m.RebufferRatio
			agg.sw += m.SwitchRate
		}
		n := float64(len(ds.Sessions))
		fmt.Printf("%-8s QoE %.3f  utility %.3f  rebuffering %.4f  switching %.4f\n",
			name, agg.qoe/n, agg.util/n, agg.rebuf/n, agg.sw/n)
	}
	fmt.Println("\nSODA holds a comparable bitrate while switching far less often —")
	fmt.Println("the consistent-quality behaviour the paper optimizes for.")
}
