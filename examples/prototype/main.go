// Prototype: stream over a real loopback TCP connection shaped by a
// bandwidth trace — the in-process version of the paper's client-server
// prototype evaluation (§6.2). The server, traffic shaper and player all run
// inside this process; the bytes really cross a TCP socket.
//
//	go run ./examples/prototype
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	ladder := repro.LadderPrototype() // 240p..1080p news clip, 2 Mb/s top rung

	// A challenged network around 1 Mb/s with a deep fade, like the
	// low-bandwidth Puffer sessions the paper selects.
	tr := repro.NewTrace([]repro.Sample{
		{Duration: repro.Seconds(60), Mbps: repro.Mbps(1.6)},
		{Duration: repro.Seconds(40), Mbps: repro.Mbps(0.45)},
		{Duration: repro.Seconds(80), Mbps: repro.Mbps(1.2)},
	})

	soda, err := repro.NewController("soda", ladder)
	if err != nil {
		log.Fatal(err)
	}
	// TimeScale 20 compresses the 3-minute session into ~9 wall seconds
	// while the controller sees identical stream-time dynamics.
	metrics, rungs, err := repro.StreamOverTCP(tr, repro.TCPSessionConfig{
		Controller:    soda,
		Predictor:     repro.NewSafeEMAPredictor(),
		Ladder:        ladder,
		TotalSegments: 90,
		BufferCap:     repro.Seconds(15), // Puffer's cap
		TimeScale:     20,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("streamed %d segments over real TCP (20x time compression)\n", metrics.Segments)
	fmt.Printf("  SSIM utility    %.3f\n", metrics.MeanUtility)
	fmt.Printf("  rebuffer ratio  %.4f (%.1f s)\n", metrics.RebufferRatio, metrics.RebufferSec)
	fmt.Printf("  switching rate  %.4f\n", metrics.SwitchRate)
	fmt.Printf("  QoE score       %.3f\n", metrics.Score)
	fmt.Printf("rung sequence: %v\n", rungs)
}
