// Command soda-experiments regenerates the paper's tables and figures and
// writes the text reports to stdout (or a directory with -out).
//
// Usage:
//
//	soda-experiments [-only fig10,fig12] [-out results/] [-scale 2]
//	soda-experiments -only fig10 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/profiling"
)

func main() {
	only := flag.String("only", "", "comma-separated subset (fig1..fig13, table1, regret, monotone)")
	out := flag.String("out", "", "directory to write per-experiment reports (default: stdout)")
	scaleFactor := flag.Float64("scale", 0, "workload multiplier (overrides SODA_EXPERIMENT_SCALE)")
	prof := profiling.Register(flag.CommandLine)
	flag.Parse()

	stopProfiles, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *scaleFactor > 0 {
		os.Setenv("SODA_EXPERIMENT_SCALE", fmt.Sprint(*scaleFactor))
	}
	scale := experiments.DefaultScale()
	scale.Telemetry = prof.Collector()

	selected := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(strings.ToLower(name))] = true
		}
	}
	want := func(name string) bool { return len(selected) == 0 || selected[name] }

	type runner struct {
		name string
		run  func() (string, error)
	}
	runners := []runner{
		{"fig1", func() (string, error) { r, err := experiments.Figure01(scale); return render(r, err) }},
		{"fig2", func() (string, error) { return experiments.Figure02().Render(), nil }},
		{"fig3", func() (string, error) { r, err := experiments.Figure03(); return render(r, err) }},
		{"fig4", func() (string, error) { r, err := experiments.Figure04(); return render(r, err) }},
		{"fig5", func() (string, error) { return experiments.Figure05().Render(), nil }},
		{"fig6", func() (string, error) { r, err := experiments.Figure06(); return render(r, err) }},
		{"fig7", func() (string, error) { r, err := experiments.Figure07(scale); return render(r, err) }},
		{"fig8", func() (string, error) { return experiments.Figure08(scale).Render(), nil }},
		{"fig9", func() (string, error) { r, err := experiments.Figure09(scale); return render(r, err) }},
		{"fig10", func() (string, error) { r, err := experiments.Figure10(scale); return render(r, err) }},
		{"fig11", func() (string, error) { r, err := experiments.Figure11(scale); return render(r, err) }},
		{"fig12", func() (string, error) { r, err := experiments.Figure12(scale); return render(r, err) }},
		{"fig13", func() (string, error) { r, err := experiments.Figure13(scale); return render(r, err) }},
		{"table1", func() (string, error) {
			fig10, err := experiments.Figure10(scale)
			if err != nil {
				return "", err
			}
			fig12, err := experiments.Figure12(scale)
			if err != nil {
				return "", err
			}
			return experiments.Table01(fig10, fig12).Render(), nil
		}},
		{"oracle", func() (string, error) { r, err := experiments.OracleGap(scale); return render(r, err) }},
		{"regret", func() (string, error) { r, err := experiments.TheoremRegret(); return render(r, err) }},
		{"monotone", func() (string, error) { r, err := experiments.TheoremMonotone(); return render(r, err) }},
		{"ablations", func() (string, error) {
			var parts []string
			for _, run := range []func(experiments.Scale) (*experiments.AblationResult, error){
				experiments.AblationTargetFraction,
				experiments.AblationEpsilon,
				experiments.AblationSwitchingWeight,
				experiments.AblationHorizonQoE,
				experiments.AblationAbandonment,
				experiments.AblationPredictor,
			} {
				r, err := run(scale)
				if err != nil {
					return "", err
				}
				parts = append(parts, r.Render())
			}
			r, err := experiments.UltraLowLatency(scale)
			if err != nil {
				return "", err
			}
			parts = append(parts, r.Render())
			return strings.Join(parts, "\n"), nil
		}},
	}

	failed := false
	for _, r := range runners {
		if !want(r.name) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", r.name)
		report, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			failed = true
			continue
		}
		if *out == "" {
			fmt.Println(report)
			continue
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
			break
		}
		path := filepath.Join(*out, r.name+".txt")
		if err := os.WriteFile(path, []byte(report), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			failed = true
			continue
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

type renderer interface{ Render() string }

func render(r renderer, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}
