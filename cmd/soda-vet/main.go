// Command soda-vet runs the repository's custom static analyzers —
// detrange, purecontroller, unitsafe, nofloat64wire, guardedby, atomicfield
// and noalloc — alongside the standard go vet passes, and exits non-zero on
// any finding. It is the lint gate CI runs on every push:
//
//	go run ./cmd/soda-vet ./...
//
// The analyzers cover test files too: packages are loaded with their test
// sources, so the invariants hold over the test corpus as well. Packages are
// loaded and analyzed on a bounded worker pool; the finding order is
// deterministic regardless of scheduling.
//
// Flags:
//
//	-novet          skip the standard go vet passes (useful when iterating
//	                on the custom analyzers alone)
//	-format=text    one finding per line (default, unchanged output)
//	-format=github  GitHub workflow ::error annotations
//	-format=json    a JSON array of findings for tooling
//	-v              report load/analysis wall time on stderr
//
// See internal/lint and DESIGN.md ("Static invariants") for what each
// analyzer enforces and why.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"time"

	"repro/internal/lint"
	"repro/internal/lint/atomicfield"
	"repro/internal/lint/detrange"
	"repro/internal/lint/guardedby"
	"repro/internal/lint/noalloc"
	"repro/internal/lint/nofloat64wire"
	"repro/internal/lint/purecontroller"
	"repro/internal/lint/unitsafe"
)

var analyzers = []*lint.Analyzer{
	detrange.Analyzer,
	purecontroller.Analyzer,
	unitsafe.Analyzer,
	nofloat64wire.Analyzer,
	guardedby.Analyzer,
	atomicfield.Analyzer,
	noalloc.Analyzer,
}

// jsonFinding is the -format=json shape of one finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	novet := flag.Bool("novet", false, "skip the standard go vet passes")
	format := flag.String("format", "text", "output format: text, github or json")
	verbose := flag.Bool("v", false, "report load/analysis wall time")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	switch *format {
	case "text", "github", "json":
	default:
		fmt.Fprintf(os.Stderr, "soda-vet: unknown -format %q (want text, github or json)\n", *format)
		os.Exit(2)
	}

	failed := false
	if !*novet {
		vet := exec.Command("go", append([]string{"vet"}, patterns...)...)
		vet.Stdout = os.Stdout
		vet.Stderr = os.Stderr
		if err := vet.Run(); err != nil {
			failed = true
		}
	}

	t0 := time.Now()
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "soda-vet: %v\n", err)
		os.Exit(2)
	}
	loaded := time.Now()
	findings, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "soda-vet: %v\n", err)
		os.Exit(2)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "soda-vet: loaded %d packages in %v, ran %d analyzers in %v\n",
			len(pkgs), loaded.Sub(t0).Round(time.Millisecond),
			len(analyzers), time.Since(loaded).Round(time.Millisecond))
	}

	switch *format {
	case "text":
		for _, f := range findings {
			fmt.Println(f)
		}
	case "github":
		for _, f := range findings {
			fmt.Printf("::error file=%s,line=%d,col=%d::%s (%s)\n",
				f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
		}
	case "json":
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Column:   f.Pos.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "soda-vet: %v\n", err)
			os.Exit(2)
		}
	}
	if failed || len(findings) > 0 {
		os.Exit(1)
	}
}
