// Command soda-vet runs the repository's custom static analyzers —
// detrange, purecontroller, unitsafe and nofloat64wire — alongside the
// standard go vet passes, and exits non-zero on any finding. It is the lint
// gate CI runs on every push:
//
//	go run ./cmd/soda-vet ./...
//
// The analyzers cover test files too: packages are loaded with their test
// sources, so the invariants hold over the test corpus as well.
//
// Pass -novet to skip the standard vet passes (useful when iterating on the
// custom analyzers alone). See internal/lint and DESIGN.md ("Static
// invariants") for what each analyzer enforces and why.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"repro/internal/lint"
	"repro/internal/lint/detrange"
	"repro/internal/lint/nofloat64wire"
	"repro/internal/lint/purecontroller"
	"repro/internal/lint/unitsafe"
)

var analyzers = []*lint.Analyzer{
	detrange.Analyzer,
	purecontroller.Analyzer,
	unitsafe.Analyzer,
	nofloat64wire.Analyzer,
}

func main() {
	novet := flag.Bool("novet", false, "skip the standard go vet passes")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if !*novet {
		vet := exec.Command("go", append([]string{"vet"}, patterns...)...)
		vet.Stdout = os.Stdout
		vet.Stderr = os.Stderr
		if err := vet.Run(); err != nil {
			failed = true
		}
	}

	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "soda-vet: %v\n", err)
		os.Exit(2)
	}
	findings, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "soda-vet: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if failed || len(findings) > 0 {
		os.Exit(1)
	}
}
