package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestFleetTraceExport runs a small fleet with -trace-export and checks the
// written file is valid Chrome trace-event JSON (the format Perfetto and
// chrome://tracing load): an object with a non-empty traceEvents array whose
// phases are all known, with complete-slice events carrying durations and
// every event pinned to a session thread.
func TestFleetTraceExport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "fleet.trace.json")
	// 2 Mb/s sessions against the mobile ladder at 20 s of stream time: a
	// short, deterministic run that still fills the decision ring.
	err := runFleet("mobile", "4g", 32, 2, 20, 60, 20, 0, 42, nil, out)
	if err != nil {
		t.Fatalf("runFleet: %v", err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int64   `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("trace export is not JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("trace export has no events")
	}
	if tr.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", tr.DisplayTimeUnit)
	}
	phases := map[string]int{}
	for i, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "C", "X", "i", "M":
			phases[ev.Ph]++
		default:
			t.Fatalf("event %d has unknown phase %q", i, ev.Ph)
		}
		if ev.Ph == "X" && ev.Dur < 0 {
			t.Errorf("slice %d (%s) has negative duration %v", i, ev.Name, ev.Dur)
		}
		if ev.Tid < 0 {
			t.Errorf("event %d on negative tid %d", i, ev.Tid)
		}
	}
	// Counters and thread names are always present; rung instants appear for
	// any non-wait decision, which this run is guaranteed to produce.
	for _, ph := range []string{"C", "i", "M"} {
		if phases[ph] == 0 {
			t.Errorf("no %q events in trace export (phases: %v)", ph, phases)
		}
	}
}

// TestRunFleetSmoke exercises the non-export fleet path (watchdog attached,
// no collector) end to end.
func TestRunFleetSmoke(t *testing.T) {
	if err := runFleet("", "4g", 16, 2, 10, 60, 20, 0, 1, nil, ""); err != nil {
		t.Fatalf("runFleet: %v", err)
	}
}
