// Command soda-sim runs ABR simulations over generated datasets or a trace
// file and prints per-controller QoE aggregates.
//
// Usage:
//
//	soda-sim -dataset 4g -sessions 50 -controllers soda,bola,mpc
//	soda-sim -trace mytrace.csv -controllers soda
//	soda-sim -dataset puffer -cpuprofile cpu.pprof -memprofile mem.pprof
//	soda-sim -dataset 4g -controllers soda -telemetry telemetry.json
//
// Fleet mode advances a whole cohort of virtual players on the arena-backed
// time-wheel simulator instead of running sessions to completion one at a
// time — the ≥100k-sessions-per-host configuration:
//
//	soda-sim -fleet -fleet-sessions 100000 -fleet-seconds 120
//	soda-sim -fleet -dataset 5g -fleet-sessions 250000 -fleet-workers 8
//
// Fleet runs always attach the QoE-consistency watchdog and report
// incidents per thousand sessions. -trace-export writes the run's decision
// ring as Chrome trace-event JSON, loadable in Perfetto or chrome://tracing:
//
//	soda-sim -fleet -fleet-sessions 200 -trace-export fleet.trace.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/abr"
	"repro/internal/flightrec"
	"repro/internal/predictor"
	"repro/internal/profiling"
	"repro/internal/qoe"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/tracegen"
	"repro/internal/units"
	"repro/internal/video"

	_ "repro/internal/baseline"
	"repro/internal/core"
)

func main() {
	dataset := flag.String("dataset", "4g", "dataset profile: puffer, 5g or 4g")
	traceFile := flag.String("trace", "", "CSV trace file (duration_s,mbps); overrides -dataset")
	sessions := flag.Int("sessions", 40, "number of sessions to simulate")
	sessionSeconds := flag.Float64("session-seconds", 600, "session length")
	bufferCap := flag.Float64("buffer", 20, "buffer cap in seconds (live: 20)")
	ladderName := flag.String("ladder", "", "ladder: youtube4k, mobile, prototype, prime (default: per dataset)")
	controllers := flag.String("controllers", "soda,hyb,bola,dynamic,mpc", "comma-separated controllers")
	tableQuantum := flag.Float64("table-quantum", 0, "compiled decision-table quantum for the soda controller, seconds and Mb/s per cell (0 disables)")
	seed := flag.Uint64("seed", 42, "generator seed")
	fleet := flag.Bool("fleet", false, "run the arena-backed time-wheel fleet simulator instead of per-session runs")
	fleetSessions := flag.Int("fleet-sessions", 100000, "fleet mode: concurrent virtual players")
	fleetWorkers := flag.Int("fleet-workers", 0, "fleet mode: worker-pool size (0: GOMAXPROCS)")
	fleetSeconds := flag.Float64("fleet-seconds", 60, "fleet mode: stream-clock seconds to advance the cohort")
	fleetTick := flag.Float64("fleet-tick", 0, "fleet mode: time-wheel tick granularity in seconds (0: 10 ms default)")
	traceExport := flag.String("trace-export", "", "fleet mode: write the run's decision timeline as Chrome trace-event JSON to this file")
	prof := profiling.Register(flag.CommandLine)
	flag.Parse()

	stopProfiles, err := prof.Start()
	if err != nil {
		fatal(err)
	}

	var runErr error
	if *fleet {
		runErr = runFleet(*ladderName, *dataset, *fleetSessions, *fleetWorkers,
			*fleetSeconds, *sessionSeconds, *bufferCap, *fleetTick, *seed, prof.Collector(), *traceExport)
	} else {
		runErr = run(*ladderName, *dataset, *traceFile, *controllers, *sessions, *sessionSeconds, *bufferCap, *tableQuantum, *seed, prof.Collector())
	}
	if err := stopProfiles(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fatal(runErr)
	}
}

func run(ladderName, dataset, traceFile, controllers string, sessions int, sessionSeconds, bufferCap, tableQuantum float64, seed uint64, col *telemetry.Collector) error {
	ladder, err := pickLadder(ladderName, dataset)
	if err != nil {
		return err
	}

	traces, sessSeconds, err := buildTraces(traceFile, dataset, sessions, sessionSeconds, seed)
	if err != nil {
		return err
	}

	for _, name := range strings.Split(controllers, ",") {
		name = strings.TrimSpace(name)
		if err := runController(name, ladder, traces, units.Seconds(bufferCap), sessSeconds, tableQuantum, col); err != nil {
			return err
		}
	}
	return nil
}

// runFleet advances a cohort on sim.Fleet and prints its progress counters
// and throughput. The controller configuration is the fleet default
// (production config, per-session memo off, compiled tables at quantum 0.5)
// — the same one BenchmarkFleetSim gates. The QoE-consistency watchdog is
// always attached; traceExport ("" disables) additionally records the
// decision ring and writes it as Chrome trace-event JSON after the run.
func runFleet(ladderName, dataset string, sessions, workers int, fleetSeconds, sessionSeconds, bufferCap, tick float64, seed uint64, col *telemetry.Collector, traceExport string) error {
	ladder, err := pickLadder(ladderName, dataset)
	if err != nil {
		return err
	}
	profile, err := pickProfile(dataset)
	if err != nil {
		return err
	}
	// -trace-export needs the decision ring even when -telemetry is off.
	if traceExport != "" && col == nil {
		col = telemetry.NewCollector(nil, telemetry.DefaultRingCapacity)
	}
	var reg *telemetry.Registry
	if col != nil {
		reg = col.Registry
	}
	watchdog := flightrec.NewWatchdog(reg, flightrec.WatchdogConfig{})
	f, err := sim.NewFleet(sim.FleetConfig{
		Sessions:      sessions,
		Workers:       workers,
		Ladder:        ladder,
		BufferCap:     units.Seconds(bufferCap),
		Profile:       profile,
		SessionLength: units.Seconds(sessionSeconds),
		Seed:          seed,
		TickSeconds:   units.Seconds(tick),
		Telemetry:     col,
		Watchdog:      watchdog,
	})
	if err != nil {
		return err
	}
	defer f.Close()

	start := time.Now()
	f.Advance(units.Seconds(fleetSeconds))
	wall := time.Since(start).Seconds()
	rep := f.Report()
	fmt.Printf("fleet %s: %d sessions on %d workers advanced %.0f stream-seconds in %.2fs wall\n",
		dataset, rep.Sessions, rep.Workers, float64(rep.SimSeconds), wall)
	fmt.Printf("  decisions %d (waits %d), segments %d, stall %.1fs across the cohort\n",
		rep.Decisions, rep.Waits, rep.Segments, float64(rep.StallSeconds))
	if wall > 0 && rep.Decisions > 0 {
		fmt.Printf("  %.0f decisions/s, %.0f ns/decision\n",
			float64(rep.Decisions)/wall, wall*1e9/float64(rep.Decisions))
	}
	fmt.Printf("  %d QoE incidents (%.1f per 1k sessions): %d oscillation, %d stall, %d underrun-risk\n",
		rep.Incidents, rep.IncidentsPerThousand,
		watchdog.Count(flightrec.KindOscillation), watchdog.Count(flightrec.KindStall),
		watchdog.Count(flightrec.KindUnderrunRisk))
	fmt.Printf("  %s\n", rep.Arena)
	if traceExport != "" {
		// Close flushes the per-session recorder batches into the decision
		// ring; without it the export would miss the tail of every session.
		f.Close()
		if err := flightrec.WriteChromeTraceFile(traceExport, col.Ring.Snapshot(), nil); err != nil {
			return fmt.Errorf("trace export: %w", err)
		}
		fmt.Printf("  wrote Chrome trace-event JSON to %s\n", traceExport)
	}
	return nil
}

// buildTraces loads the single CSV trace, or generates a dataset when no
// trace file is given. The returned session length is clamped to a loaded
// trace's duration.
func buildTraces(traceFile, dataset string, sessions int, sessionSeconds float64, seed uint64) ([]*trace.Trace, units.Seconds, error) {
	if traceFile != "" {
		tr, err := loadTrace(traceFile)
		if err != nil {
			return nil, 0, err
		}
		sess := units.Seconds(sessionSeconds)
		if sess > tr.Duration() {
			sess = tr.Duration()
		}
		return []*trace.Trace{tr}, sess, nil
	}
	profile, err := pickProfile(dataset)
	if err != nil {
		return nil, 0, err
	}
	ds, err := tracegen.Generate(profile, sessions, units.Seconds(sessionSeconds), seed)
	if err != nil {
		return nil, 0, err
	}
	fmt.Printf("dataset %s: %d sessions, mean %.1f Mb/s, RSD %.1f%%\n",
		dataset, len(ds.Sessions), ds.MeanMbps(), 100*ds.RSD())
	return ds.Sessions, units.Seconds(sessionSeconds), nil
}

func loadTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	tr, err := trace.ReadCSV(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return tr, err
}

func runController(name string, ladder video.Ladder, traces []*trace.Trace, bufferCap, sessionSeconds units.Seconds, tableQuantum float64, col *telemetry.Collector) error {
	if _, err := abr.New(name, ladder); err != nil {
		return err
	}
	// -table-quantum compiles the soda decision map once and shares it across
	// every session of the dataset run; other controllers have no table hook
	// and run unchanged.
	var tables *core.DecisionTables
	if name == "soda" && tableQuantum > 0 {
		tables = core.NewDecisionTables()
		info, err := tables.CompileTable(tableConfig(tables, tableQuantum), ladder, bufferCap)
		if err != nil {
			return err
		}
		fmt.Printf("soda decision table: %dx%dx%d cells, quantum %.2f, horizon %d\n",
			info.Planes, info.XBins, info.WBins, info.Quantum, info.Horizon)
	}
	factory := func() (abr.Controller, predictor.Predictor) {
		if tables != nil {
			return core.New(tableConfig(tables, tableQuantum), ladder), predictor.NewEMA(units.Seconds(4))
		}
		c, _ := abr.New(name, ladder)
		return c, predictor.NewEMA(units.Seconds(4))
	}
	metrics, err := sim.RunDataset(traces, factory, sim.Config{
		Ladder:         ladder,
		BufferCap:      bufferCap,
		SessionSeconds: sessionSeconds,
		Telemetry:      col,
	})
	if err != nil {
		return err
	}
	fmt.Println(qoe.Aggregated(name, metrics).String())
	if tables != nil {
		fmt.Printf("  %s\n", tables.Stats())
	}
	return nil
}

// tableConfig is the registry's "soda" configuration plus the table knobs —
// the construction runController repeats per session so every controller
// binds the same compiled set.
func tableConfig(tables *core.DecisionTables, quantum float64) core.Config {
	cfg := core.DefaultConfig()
	cfg.DecisionTable = tables
	cfg.TableQuantum = quantum
	return cfg
}

func pickProfile(name string) (tracegen.Profile, error) {
	switch name {
	case "puffer":
		return tracegen.Puffer(), nil
	case "5g":
		return tracegen.FiveG(), nil
	case "4g":
		return tracegen.FourG(), nil
	default:
		return tracegen.Profile{}, fmt.Errorf("unknown dataset %q (puffer, 5g, 4g)", name)
	}
}

func pickLadder(name, dataset string) (video.Ladder, error) {
	if name == "" {
		if dataset == "puffer" {
			return video.YouTube4K(), nil
		}
		return video.Mobile(), nil
	}
	switch name {
	case "youtube4k":
		return video.YouTube4K(), nil
	case "mobile":
		return video.Mobile(), nil
	case "prototype":
		return video.Prototype(), nil
	case "prime":
		return video.PrimeVideo(), nil
	default:
		return video.Ladder{}, fmt.Errorf("unknown ladder %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "soda-sim:", err)
	os.Exit(1)
}
