// Command soda-tracegen generates the synthetic network datasets to disk as
// CSV traces (duration_s,mbps), one file per session.
//
// Usage:
//
//	soda-tracegen -dataset 5g -sessions 100 -out traces/5g/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/tracegen"
	"repro/internal/units"
)

func main() {
	dataset := flag.String("dataset", "4g", "dataset profile: puffer, 5g or 4g")
	sessions := flag.Int("sessions", 20, "number of sessions")
	sessionSeconds := flag.Float64("session-seconds", 600, "session length")
	out := flag.String("out", "traces", "output directory")
	seed := flag.Uint64("seed", 42, "generator seed")
	flag.Parse()

	var profile tracegen.Profile
	switch *dataset {
	case "puffer":
		profile = tracegen.Puffer()
	case "5g":
		profile = tracegen.FiveG()
	case "4g":
		profile = tracegen.FourG()
	default:
		fatal(fmt.Errorf("unknown dataset %q", *dataset))
	}

	ds, err := tracegen.Generate(profile, *sessions, units.Seconds(*sessionSeconds), *seed)
	if err != nil {
		fatal(err)
	}
	dir := filepath.Join(*out, *dataset)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	for i, tr := range ds.Sessions {
		path := filepath.Join(dir, fmt.Sprintf("session-%04d.csv", i))
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := tr.WriteCSV(f); err != nil {
			_ = f.Close() // best effort; the write error is the one to report
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("wrote %d sessions to %s (mean %.1f Mb/s, RSD %.1f%%)\n",
		len(ds.Sessions), dir, ds.MeanMbps(), 100*ds.RSD())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "soda-tracegen:", err)
	os.Exit(1)
}
