package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/flightrec"
	"repro/internal/httpseg"
	"repro/internal/telemetry"
	"repro/internal/video"
)

// TestServerEndpointSmoke boots the introspection mux, drives a few /decide
// sessions through it, and checks that /metrics serves valid Prometheus text
// exposition covering the solver, the shared cache, and per-session
// buffer/bitrate histograms — and that /debug/decisions streams parseable
// JSONL. This is the CI smoke gate for the observability surface.
func TestServerEndpointSmoke(t *testing.T) {
	col := telemetry.NewCollector(nil, 256)
	intro, err := introspectionMux(video.Prototype(), 30, httpseg.DecideOptions{CacheEntries: 1 << 12, TableQuantum: 0.5}, col)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(intro.mux)
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(body)
	}

	// The DASH transport is mounted at the root.
	resp, mpd := get("/manifest.mpd")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/manifest.mpd: status %d", resp.StatusCode)
	}
	if !strings.Contains(mpd, "<MPD") {
		t.Fatalf("/manifest.mpd does not look like an MPD:\n%s", mpd)
	}
	if resp, _ := get("/segment/0/0"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/segment/0/0: status %d", resp.StatusCode)
	}

	// Drive two sessions through enough decisions to touch the solver,
	// the memo, and the shared cache. Each session key must map to one
	// stable numeric id, distinct across keys.
	ids := map[string]int{}
	for i := 0; i < 8; i++ {
		for _, sess := range []string{"alice", "bob"} {
			resp, body := get(fmt.Sprintf("/decide?session=%s&buffer=%g&throughput=12", sess, 2.0+float64(i)))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("/decide: status %d: %s", resp.StatusCode, body)
			}
			var reply struct {
				Session int     `json:"session"`
				Rung    int     `json:"rung"`
				Bitrate float64 `json:"bitrate_mbps"`
			}
			if err := json.Unmarshal([]byte(body), &reply); err != nil {
				t.Fatalf("/decide reply not JSON: %v\n%s", err, body)
			}
			if prev, ok := ids[sess]; ok && prev != reply.Session {
				t.Fatalf("session %q id changed %d -> %d", sess, prev, reply.Session)
			}
			ids[sess] = reply.Session
		}
	}
	if ids["alice"] == ids["bob"] {
		t.Fatalf("distinct session keys share id %d", ids["alice"])
	}

	// A third session at in-domain throughput: the Prototype ladder tops out
	// near 2 Mb/s, so the 12 Mb/s sessions above land outside the compiled
	// table's domain (fallbacks) while this one lands inside it (hits). Both
	// counters must end up nonzero below.
	for i := 0; i < 8; i++ {
		resp, body := get(fmt.Sprintf("/decide?session=carol&buffer=%g&throughput=1.5", 2.0+float64(i)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/decide: status %d: %s", resp.StatusCode, body)
		}
	}

	// /metrics must be valid Prometheus text exposition.
	resp, exposition := get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	families, err := telemetry.ParseExposition(strings.NewReader(exposition))
	if err != nil {
		t.Fatalf("/metrics is not valid exposition: %v\n%s", err, exposition)
	}
	for _, family := range []string{
		"soda_decisions_total",
		"soda_solver_solves_total",
		"soda_solver_nodes_total",
		"soda_shared_cache_lookups_total",
		"soda_server_shared_cache_entries",
		"soda_server_sessions_active",
		"soda_server_inflight_decides",
		"soda_server_evictions_total",
		"soda_server_rejected_total",
		"soda_server_decide_latency_seconds",
		"soda_buffer_level_seconds",
		"soda_decided_bitrate_mbps",
		"soda_decide_latency_seconds",
		"soda_http_manifest_requests_total",
		"soda_http_segment_requests_total",
		"soda_decision_table_lookups_total",
		"soda_decision_table_hits_total",
		"soda_decision_table_fallbacks_total",
		"soda_server_decision_tables",
		"soda_server_decision_table_cells",
		"soda_server_stage_latency_seconds",
		"soda_qoe_incidents_total",
	} {
		if _, ok := families[family]; !ok {
			t.Errorf("/metrics missing family %s", family)
		}
	}

	// The table counters must reflect the traffic above: the in-domain
	// session hit the table, the over-the-top sessions fell back, and the
	// scrape hook published the resident table set.
	metric := func(name string) float64 {
		t.Helper()
		for _, line := range strings.Split(exposition, "\n") {
			if rest, ok := strings.CutPrefix(line, name+" "); ok {
				v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
				if err != nil {
					t.Fatalf("metric %s has unparseable value %q", name, rest)
				}
				return v
			}
		}
		t.Fatalf("metric %s has no sample line", name)
		return 0
	}
	hits, fallbacks := metric("soda_decision_table_hits_total"), metric("soda_decision_table_fallbacks_total")
	if hits == 0 || fallbacks == 0 {
		t.Errorf("table traffic hits/fallbacks = %g/%g, want both nonzero", hits, fallbacks)
	}
	if lookups := metric("soda_decision_table_lookups_total"); lookups != hits+fallbacks {
		t.Errorf("table lookups %g != hits %g + fallbacks %g", lookups, hits, fallbacks)
	}
	if n := metric("soda_server_decision_tables"); n < 1 {
		t.Errorf("soda_server_decision_tables = %g, want >= 1", n)
	}
	if cells := metric("soda_server_decision_table_cells"); cells <= 0 {
		t.Errorf("soda_server_decision_table_cells = %g, want > 0", cells)
	}

	// /debug/decisions streams one JSON object per line, newest window last.
	resp, jsonl := get("/debug/decisions?limit=5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/decisions: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("/debug/decisions Content-Type = %q", ct)
	}
	lines, sawTableHit := 0, false
	sc := bufio.NewScanner(strings.NewReader(jsonl))
	for sc.Scan() {
		var ev telemetry.DecisionEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("/debug/decisions line %d not JSON: %v\n%s", lines, err, sc.Text())
		}
		if ev.Rung < 0 || ev.Bitrate <= 0 {
			t.Errorf("/debug/decisions line %d: rung %d bitrate %g", lines, ev.Rung, ev.Bitrate)
		}
		sawTableHit = sawTableHit || ev.TableHits > 0
		lines++
	}
	if lines != 5 {
		t.Fatalf("/debug/decisions?limit=5 returned %d lines", lines)
	}
	// The newest window is the in-domain session's, so its events must carry
	// the table_hits attribution through the JSONL round-trip.
	if !sawTableHit {
		t.Errorf("no event in the newest window reports table hits:\n%s", jsonl)
	}

	if resp, _ := get("/debug/decisions?limit=oops"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit: status %d, want 400", resp.StatusCode)
	}

	// ?session= narrows /debug/decisions to one session's events.
	resp, filtered := get(fmt.Sprintf("/debug/decisions?session=%d", ids["alice"]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/decisions?session=: status %d", resp.StatusCode)
	}
	aliceLines := 0
	sc = bufio.NewScanner(strings.NewReader(filtered))
	for sc.Scan() {
		var ev telemetry.DecisionEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("filtered decisions line not JSON: %v", err)
		}
		if int(ev.Session) != ids["alice"] {
			t.Fatalf("?session=%d returned an event for session %d", ids["alice"], ev.Session)
		}
		aliceLines++
	}
	if aliceLines != 8 {
		t.Errorf("/debug/decisions?session= returned %d lines, want 8", aliceLines)
	}

	// /debug/spans streams the pipeline's stage spans; every decide above
	// recorded one span per stage, so the decide-stage filter must return
	// exactly one parseable span per successful decide.
	resp, spansBody := get("/debug/spans?stage=decide")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/spans: status %d", resp.StatusCode)
	}
	spanLines := 0
	sc = bufio.NewScanner(strings.NewReader(spansBody))
	for sc.Scan() {
		var sp flightrec.Span
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("/debug/spans line not JSON: %v\n%s", err, sc.Text())
		}
		if sp.StageName != "decide" || sp.Dur < 0 || !sp.OK {
			t.Errorf("decide span = %+v", sp)
		}
		spanLines++
	}
	if spanLines != 24 {
		t.Errorf("/debug/spans?stage=decide returned %d spans, want 24", spanLines)
	}
	if resp, _ := get("/debug/spans?stage=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad stage: status %d, want 400", resp.StatusCode)
	}

	// /debug/incidents serves JSONL (empty here: steady high-buffer traffic).
	if resp, _ := get("/debug/incidents"); resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/incidents: status %d", resp.StatusCode)
	}

	// /debug/sessions?id=N reconstructs one session's timeline, and its
	// decision list must match the ring's ?session= filter line for line.
	resp, timeline := get(fmt.Sprintf("/debug/sessions?id=%d", ids["alice"]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/sessions: status %d", resp.StatusCode)
	}
	var tl struct {
		Session   int                       `json:"session"`
		Decisions []telemetry.DecisionEvent `json:"decisions"`
		Spans     []flightrec.Span          `json:"spans"`
	}
	if err := json.Unmarshal([]byte(timeline), &tl); err != nil {
		t.Fatalf("/debug/sessions not JSON: %v", err)
	}
	if tl.Session != ids["alice"] || len(tl.Decisions) != aliceLines {
		t.Errorf("timeline session=%d decisions=%d, want session=%d decisions=%d",
			tl.Session, len(tl.Decisions), ids["alice"], aliceLines)
	}
	for i, ev := range tl.Decisions {
		if int(ev.Session) != ids["alice"] {
			t.Errorf("timeline decision %d belongs to session %d", i, ev.Session)
		}
	}
	if len(tl.Spans) == 0 {
		t.Error("timeline carries no spans for an instrumented session")
	}

	// The same timeline as Chrome trace-event JSON must parse and carry
	// trace events for the session's thread.
	resp, traceBody := get(fmt.Sprintf("/debug/sessions?id=%d&format=trace", ids["alice"]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/sessions format=trace: status %d", resp.StatusCode)
	}
	var chrome struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Tid int    `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(traceBody), &chrome); err != nil {
		t.Fatalf("trace export not JSON: %v", err)
	}
	if len(chrome.TraceEvents) == 0 || chrome.DisplayTimeUnit != "ms" {
		t.Errorf("trace export: %d events, unit %q", len(chrome.TraceEvents), chrome.DisplayTimeUnit)
	}

	for _, bad := range []string{
		"/debug/sessions",
		"/debug/sessions?id=-1",
		"/debug/sessions?id=zed",
		"/debug/sessions?id=1&format=xml",
	} {
		if resp, _ := get(bad); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}
