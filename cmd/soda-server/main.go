// Command soda-server runs the prototype segment server on a TCP address,
// optionally shaping delivery with a bandwidth trace — one half of the local
// client-server deployment of the prototype evaluation (§6.2). The -http
// flag adds an HTTP listener with the DASH transport (/manifest.mpd,
// /segment/...), server-side decisions (/decide) and live introspection
// (/metrics in Prometheus text format, /debug/decisions as JSONL).
//
// Usage:
//
//	soda-server -addr :9000 -segments 300
//	soda-server -addr :9000 -trace 4g.csv -timescale 10
//	soda-server -addr :9000 -http :9090
//	curl http://localhost:9090/metrics
//	curl 'http://localhost:9090/debug/decisions?limit=20'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dash"
	"repro/internal/httpseg"
	"repro/internal/netem"
	"repro/internal/profiling"
	"repro/internal/proto"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/video"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9000", "listen address")
	segments := flag.Int("segments", 300, "segments in the stream")
	traceFile := flag.String("trace", "", "CSV trace to shape delivery (unshaped if empty)")
	timeScale := flag.Float64("timescale", 1, "stream-time compression factor")
	ladderName := flag.String("ladder", "prototype", "ladder: youtube4k, mobile, prototype, prime")
	writeMPD := flag.String("write-mpd", "", "also write an MPEG-DASH MPD describing the stream to this file")
	httpAddr := flag.String("http", "", "also serve HTTP: DASH transport, /decide, /metrics, /debug/decisions")
	decideCache := flag.Int("decide-cache", 1<<16, "shared solve-cache entries for /decide sessions (0 disables)")
	tableQuantum := flag.Float64("decide-table-quantum", 0.5, "compiled decision-table quantum for /decide sessions, seconds and Mb/s per cell (0 disables)")
	maxSessions := flag.Int("max-sessions", httpseg.DefaultMaxSessions, "concurrent /decide session cap; new sessions beyond it are shed with 503")
	sessionTTL := flag.Duration("session-ttl", httpseg.DefaultSessionTTL, "evict /decide sessions idle this long (<= 0 disables eviction)")
	maxInflight := flag.Int("max-inflight", httpseg.DefaultMaxInflight, "concurrent in-flight /decide bound; excess load is shed with 503 (< 0 unbounded)")
	rpsPerClient := flag.Float64("rps-per-client", 0, "per-client /decide rate limit in requests/s, 2x burst (0 disables)")
	sweepEvery := flag.Duration("sweep-interval", 30*time.Second, "session/limiter idle-sweep cadence")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-drain wait for in-flight decides on shutdown")
	prof := profiling.Register(flag.CommandLine)
	flag.Parse()

	logger := log.New(os.Stderr, "soda-server: ", log.LstdFlags)
	stopProfiles, err := prof.Start()
	if err != nil {
		logger.Fatal(err)
	}

	var ladder video.Ladder
	switch *ladderName {
	case "youtube4k":
		ladder = video.YouTube4K()
	case "mobile":
		ladder = video.Mobile()
	case "prototype":
		ladder = video.Prototype()
	case "prime":
		ladder = video.PrimeVideo()
	default:
		logger.Fatalf("unknown ladder %q", *ladderName)
	}

	srv, err := proto.NewServer(ladder, nil, *segments, logger)
	if err != nil {
		logger.Fatal(err)
	}
	if *writeMPD != "" {
		if err := writeMPDFile(*writeMPD, ladder, *segments); err != nil {
			logger.Fatal(err)
		}
		logger.Printf("wrote MPD to %s", *writeMPD)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	listener, err := shapedListener(ln, *traceFile, *timeScale, logger)
	if err != nil {
		logger.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var httpSrv *http.Server
	var svc *httpseg.DecideService
	if *httpAddr != "" {
		// -telemetry reuses the same collector, so the exit snapshot matches
		// what /metrics served.
		col := prof.Collector()
		if col == nil {
			col = telemetry.NewCollector(nil, telemetry.DefaultRingCapacity)
		}
		opts := httpseg.DecideOptions{
			CacheEntries: *decideCache,
			TableQuantum: *tableQuantum,
			MaxSessions:  *maxSessions,
			SessionTTL:   *sessionTTL,
			MaxInflight:  *maxInflight,
			RPSPerClient: *rpsPerClient,
		}
		mux, decide, err := introspectionMux(ladder, *segments, opts, col)
		if err != nil {
			logger.Fatal(err)
		}
		svc = decide
		httpLn, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			logger.Fatal(err)
		}
		httpSrv = &http.Server{Handler: mux}
		go func() {
			if err := httpSrv.Serve(httpLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("http: %v", err)
			}
		}()
		if *sweepEvery > 0 {
			go func() {
				ticker := time.NewTicker(*sweepEvery)
				defer ticker.Stop()
				for {
					select {
					case <-ctx.Done():
						return
					case now := <-ticker.C:
						if evicted := svc.SweepSessions(now); evicted > 0 {
							logger.Printf("swept %d idle sessions", evicted)
						}
					}
				}
			}()
		}
		fmt.Printf("introspection on http://%s (/manifest.mpd /segment /decide /metrics /debug/decisions)\n", httpLn.Addr())
	}

	fmt.Printf("serving %d segments of the %s ladder on %s\n", *segments, *ladderName, ln.Addr())
	serveErr := srv.Serve(ctx, listener)
	if httpSrv != nil {
		// Graceful drain: stop admitting /decide work, wait for in-flight
		// decides to finish, flush telemetry via the profiling snapshot below,
		// and report what was drained.
		if svc != nil {
			sessions, clean := svc.Drain(*drainTimeout)
			if clean {
				logger.Printf("drained %d sessions cleanly", sessions)
			} else {
				logger.Printf("drain timed out with %d sessions; in-flight decides abandoned", sessions)
			}
		}
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = httpSrv.Shutdown(shutCtx)
		cancel()
	}
	if err := stopProfiles(); err != nil {
		logger.Print(err)
	}
	if serveErr != nil && ctx.Err() == nil {
		logger.Fatal(serveErr)
	}
	logger.Print("shut down")
}

// introspectionMux assembles the HTTP surface: the DASH segment transport at
// the root, server-side SODA at /decide, and the live introspection
// endpoints. All decision recording happens in the /decide handler after the
// controller returns; /metrics only reads, plus pull-only gauge refreshes.
func introspectionMux(ladder video.Ladder, segments int, opts httpseg.DecideOptions, col *telemetry.Collector) (*http.ServeMux, *httpseg.DecideService, error) {
	seg, err := httpseg.NewServer(ladder, nil, segments)
	if err != nil {
		return nil, nil, err
	}
	seg.Instrument(col.Registry)
	svc, err := httpseg.NewDecideService(ladder, opts, col)
	if err != nil {
		return nil, nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/", seg)
	mux.Handle("/decide", svc)
	mux.Handle("/metrics", telemetry.MetricsHandler(col.Registry, svc.RefreshMetrics))
	mux.Handle("/debug/decisions", telemetry.DecisionsHandler(col.Ring))
	return mux, svc, nil
}

// writeMPDFile writes an MPEG-DASH MPD describing the stream to path.
func writeMPDFile(path string, ladder video.Ladder, segments int) error {
	mediaDur := time.Duration(float64(segments) * float64(ladder.SegmentSeconds) * float64(time.Second))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := dash.FromLadder(ladder, mediaDur).Write(f); err != nil {
		_ = f.Close() // best effort; the write error is the one to report
		return err
	}
	return f.Close()
}

// shapedListener wraps ln so each connection is paced by the trace in
// traceFile; with no trace file the listener is returned unshaped.
func shapedListener(ln net.Listener, traceFile string, timeScale float64, logger *log.Logger) (net.Listener, error) {
	if traceFile == "" {
		return ln, nil
	}
	f, err := os.Open(traceFile)
	if err != nil {
		return nil, err
	}
	tr, err := trace.ReadCSV(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	logger.Printf("shaping with %s (%.1f Mb/s mean, %gx time)", traceFile, tr.MeanMbps(), timeScale)
	return netem.NewListener(ln, func() (*netem.Shaper, error) {
		return netem.NewShaper(tr, timeScale)
	}), nil
}
