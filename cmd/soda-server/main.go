// Command soda-server runs the prototype segment server on a TCP address,
// optionally shaping delivery with a bandwidth trace — one half of the local
// client-server deployment of the prototype evaluation (§6.2).
//
// Usage:
//
//	soda-server -addr :9000 -segments 300
//	soda-server -addr :9000 -trace 4g.csv -timescale 10
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dash"
	"repro/internal/netem"
	"repro/internal/proto"
	"repro/internal/trace"
	"repro/internal/video"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9000", "listen address")
	segments := flag.Int("segments", 300, "segments in the stream")
	traceFile := flag.String("trace", "", "CSV trace to shape delivery (unshaped if empty)")
	timeScale := flag.Float64("timescale", 1, "stream-time compression factor")
	ladderName := flag.String("ladder", "prototype", "ladder: youtube4k, mobile, prototype, prime")
	writeMPD := flag.String("write-mpd", "", "also write an MPEG-DASH MPD describing the stream to this file")
	flag.Parse()

	logger := log.New(os.Stderr, "soda-server: ", log.LstdFlags)

	var ladder video.Ladder
	switch *ladderName {
	case "youtube4k":
		ladder = video.YouTube4K()
	case "mobile":
		ladder = video.Mobile()
	case "prototype":
		ladder = video.Prototype()
	case "prime":
		ladder = video.PrimeVideo()
	default:
		logger.Fatalf("unknown ladder %q", *ladderName)
	}

	srv, err := proto.NewServer(ladder, nil, *segments, logger)
	if err != nil {
		logger.Fatal(err)
	}
	if *writeMPD != "" {
		if err := writeMPDFile(*writeMPD, ladder, *segments); err != nil {
			logger.Fatal(err)
		}
		logger.Printf("wrote MPD to %s", *writeMPD)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	listener, err := shapedListener(ln, *traceFile, *timeScale, logger)
	if err != nil {
		logger.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("serving %d segments of the %s ladder on %s\n", *segments, *ladderName, ln.Addr())
	if err := srv.Serve(ctx, listener); err != nil && ctx.Err() == nil {
		logger.Fatal(err)
	}
	logger.Print("shut down")
}

// writeMPDFile writes an MPEG-DASH MPD describing the stream to path.
func writeMPDFile(path string, ladder video.Ladder, segments int) error {
	mediaDur := time.Duration(float64(segments) * float64(ladder.SegmentSeconds) * float64(time.Second))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := dash.FromLadder(ladder, mediaDur).Write(f); err != nil {
		_ = f.Close() // best effort; the write error is the one to report
		return err
	}
	return f.Close()
}

// shapedListener wraps ln so each connection is paced by the trace in
// traceFile; with no trace file the listener is returned unshaped.
func shapedListener(ln net.Listener, traceFile string, timeScale float64, logger *log.Logger) (net.Listener, error) {
	if traceFile == "" {
		return ln, nil
	}
	f, err := os.Open(traceFile)
	if err != nil {
		return nil, err
	}
	tr, err := trace.ReadCSV(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	logger.Printf("shaping with %s (%.1f Mb/s mean, %gx time)", traceFile, tr.MeanMbps(), timeScale)
	return netem.NewListener(ln, func() (*netem.Shaper, error) {
		return netem.NewShaper(tr, timeScale)
	}), nil
}
