// Command soda-server runs the prototype segment server on a TCP address,
// optionally shaping delivery with a bandwidth trace — one half of the local
// client-server deployment of the prototype evaluation (§6.2). The -http
// flag adds an HTTP listener with the DASH transport (/manifest.mpd,
// /segment/...), server-side decisions (/decide) and live introspection:
// /metrics in Prometheus text format, /debug/decisions as JSONL, plus the
// flight recorder's /debug/spans (per-stage pipeline latency spans),
// /debug/incidents (QoE-watchdog detections), and /debug/sessions?id=N
// (one session's reconstructed timeline, &format=trace for Chrome
// trace-event JSON).
//
// Usage:
//
//	soda-server -addr :9000 -segments 300
//	soda-server -addr :9000 -trace 4g.csv -timescale 10
//	soda-server -addr :9000 -http :9090
//	soda-server -addr :9000 -http :9090 -log-json -trace-export run.trace.json
//	curl http://localhost:9090/metrics
//	curl 'http://localhost:9090/debug/decisions?limit=20'
//	curl 'http://localhost:9090/debug/spans?stage=decide&limit=20'
//	curl 'http://localhost:9090/debug/sessions?id=1&format=trace'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/dash"
	"repro/internal/flightrec"
	"repro/internal/httpseg"
	"repro/internal/netem"
	"repro/internal/profiling"
	"repro/internal/proto"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/video"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9000", "listen address")
	segments := flag.Int("segments", 300, "segments in the stream")
	traceFile := flag.String("trace", "", "CSV trace to shape delivery (unshaped if empty)")
	timeScale := flag.Float64("timescale", 1, "stream-time compression factor")
	ladderName := flag.String("ladder", "prototype", "ladder: youtube4k, mobile, prototype, prime")
	writeMPD := flag.String("write-mpd", "", "also write an MPEG-DASH MPD describing the stream to this file")
	httpAddr := flag.String("http", "", "also serve HTTP: DASH transport, /decide, /metrics, /debug/decisions")
	decideCache := flag.Int("decide-cache", 1<<16, "shared solve-cache entries for /decide sessions (0 disables)")
	tableQuantum := flag.Float64("decide-table-quantum", 0.5, "compiled decision-table quantum for /decide sessions, seconds and Mb/s per cell (0 disables)")
	maxSessions := flag.Int("max-sessions", httpseg.DefaultMaxSessions, "concurrent /decide session cap; new sessions beyond it are shed with 503")
	sessionTTL := flag.Duration("session-ttl", httpseg.DefaultSessionTTL, "evict /decide sessions idle this long (<= 0 disables eviction)")
	maxInflight := flag.Int("max-inflight", httpseg.DefaultMaxInflight, "concurrent in-flight /decide bound; excess load is shed with 503 (< 0 unbounded)")
	rpsPerClient := flag.Float64("rps-per-client", 0, "per-client /decide rate limit in requests/s, 2x burst (0 disables)")
	sweepEvery := flag.Duration("sweep-interval", 30*time.Second, "session/limiter idle-sweep cadence")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-drain wait for in-flight decides on shutdown")
	logJSON := flag.Bool("log-json", false, "emit lifecycle logs (drain, evict, sweep, incident) as one-line JSON on stderr")
	traceExport := flag.String("trace-export", "", "write the decision ring and pipeline spans as Chrome trace-event JSON to this file at shutdown")
	prof := profiling.Register(flag.CommandLine)
	flag.Parse()

	logger := log.New(os.Stderr, "soda-server: ", log.LstdFlags)
	events := newEventLogger(*logJSON, logger)
	stopProfiles, err := prof.Start()
	if err != nil {
		logger.Fatal(err)
	}

	var ladder video.Ladder
	switch *ladderName {
	case "youtube4k":
		ladder = video.YouTube4K()
	case "mobile":
		ladder = video.Mobile()
	case "prototype":
		ladder = video.Prototype()
	case "prime":
		ladder = video.PrimeVideo()
	default:
		logger.Fatalf("unknown ladder %q", *ladderName)
	}

	srv, err := proto.NewServer(ladder, nil, *segments, logger)
	if err != nil {
		logger.Fatal(err)
	}
	if *writeMPD != "" {
		if err := writeMPDFile(*writeMPD, ladder, *segments); err != nil {
			logger.Fatal(err)
		}
		logger.Printf("wrote MPD to %s", *writeMPD)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	listener, err := shapedListener(ln, *traceFile, *timeScale, logger)
	if err != nil {
		logger.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var httpSrv *http.Server
	var svc *httpseg.DecideService
	var intro *introspection
	if *httpAddr != "" {
		// -telemetry reuses the same collector, so the exit snapshot matches
		// what /metrics served.
		col := prof.Collector()
		if col == nil {
			col = telemetry.NewCollector(nil, telemetry.DefaultRingCapacity)
		}
		opts := httpseg.DecideOptions{
			CacheEntries: *decideCache,
			TableQuantum: *tableQuantum,
			MaxSessions:  *maxSessions,
			SessionTTL:   *sessionTTL,
			MaxInflight:  *maxInflight,
			RPSPerClient: *rpsPerClient,
		}
		intro, err = introspectionMux(ladder, *segments, opts, col)
		if err != nil {
			logger.Fatal(err)
		}
		svc = intro.svc
		httpLn, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			logger.Fatal(err)
		}
		httpSrv = &http.Server{Handler: intro.mux}
		go func() {
			if err := httpSrv.Serve(httpLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("http: %v", err)
			}
		}()
		if *sweepEvery > 0 {
			go func() {
				ticker := time.NewTicker(*sweepEvery)
				defer ticker.Stop()
				var incidentsSeen uint64
				for {
					select {
					case <-ctx.Done():
						return
					case now := <-ticker.C:
						if evicted := svc.SweepSessions(now); evicted > 0 {
							events.event("swept idle sessions", "evicted", evicted)
						}
						// Surface new QoE incidents at sweep cadence so an
						// operator tailing the log sees consistency
						// regressions without polling /debug/incidents.
						if total := intro.watchdog.Total(); total > incidentsSeen {
							events.event("qoe incidents",
								"new", total-incidentsSeen, "total", total,
								"oscillation", intro.watchdog.Count(flightrec.KindOscillation),
								"stall", intro.watchdog.Count(flightrec.KindStall),
								"underrun_risk", intro.watchdog.Count(flightrec.KindUnderrunRisk))
							incidentsSeen = total
						}
					}
				}
			}()
		}
		fmt.Printf("introspection on http://%s (/manifest.mpd /segment /decide /metrics /debug/decisions /debug/spans /debug/incidents /debug/sessions)\n", httpLn.Addr())
	}

	fmt.Printf("serving %d segments of the %s ladder on %s\n", *segments, *ladderName, ln.Addr())
	serveErr := srv.Serve(ctx, listener)
	if httpSrv != nil {
		// Graceful drain: stop admitting /decide work, wait for in-flight
		// decides to finish, flush telemetry via the profiling snapshot below,
		// and report what was drained.
		if svc != nil {
			sessions, clean := svc.Drain(*drainTimeout)
			if clean {
				events.event("drained sessions cleanly", "sessions", sessions)
			} else {
				events.event("drain timed out; in-flight decides abandoned", "sessions", sessions)
			}
		}
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = httpSrv.Shutdown(shutCtx)
		cancel()
		// Trace export happens after the drain so the file carries the final
		// decision ring and span rings.
		if *traceExport != "" && intro != nil {
			if err := flightrec.WriteChromeTraceFile(*traceExport,
				intro.col.Ring.Snapshot(), intro.flight.Snapshot()); err != nil {
				logger.Printf("trace export: %v", err)
			} else {
				events.event("wrote trace export", "path", *traceExport)
			}
		}
	}
	if err := stopProfiles(); err != nil {
		logger.Print(err)
	}
	if serveErr != nil && ctx.Err() == nil {
		logger.Fatal(serveErr)
	}
	logger.Print("shut down")
}

// introspection bundles the HTTP surface with the observability plumbing the
// server needs after setup: the decide service for sweeps and drain, the
// flight recorder and watchdog for trace export and incident logging.
type introspection struct {
	mux      *http.ServeMux
	svc      *httpseg.DecideService
	col      *telemetry.Collector
	flight   *flightrec.Recorder
	watchdog *flightrec.Watchdog
}

// introspectionMux assembles the HTTP surface: the DASH segment transport at
// the root, server-side SODA at /decide, and the live introspection
// endpoints. All decision recording happens in the /decide handler after the
// controller returns; /metrics only reads, plus pull-only gauge refreshes.
// The flight recorder and QoE watchdog are always attached — their steady
// path is allocation-free, and /debug/spans, /debug/incidents and
// /debug/sessions serve their state.
func introspectionMux(ladder video.Ladder, segments int, opts httpseg.DecideOptions, col *telemetry.Collector) (*introspection, error) {
	seg, err := httpseg.NewServer(ladder, nil, segments)
	if err != nil {
		return nil, err
	}
	seg.Instrument(col.Registry)
	flight := flightrec.NewRecorder(col.Registry, 0)
	watchdog := flightrec.NewWatchdog(col.Registry, flightrec.WatchdogConfig{})
	opts.FlightRecorder = flight
	opts.Watchdog = watchdog
	svc, err := httpseg.NewDecideService(ladder, opts, col)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/", seg)
	mux.Handle("/decide", svc)
	mux.Handle("/metrics", telemetry.MetricsHandler(col.Registry, svc.RefreshMetrics))
	mux.Handle("/debug/decisions", telemetry.DecisionsHandler(col.Ring))
	mux.Handle("/debug/spans", flightrec.SpansHandler(flight))
	mux.Handle("/debug/incidents", flightrec.IncidentsHandler(watchdog.Log()))
	mux.Handle("/debug/sessions", flightrec.SessionTimelineHandler(col.Ring, flight, watchdog.Log()))
	return &introspection{mux: mux, svc: svc, col: col, flight: flight, watchdog: watchdog}, nil
}

// eventLogger emits the server's lifecycle events (drain, evict, sweep,
// incident): through the prefixed standard logger by default, as one JSON
// line per event on stderr with -log-json — the shape log shippers ingest
// without a parse rule.
type eventLogger struct {
	plain      *log.Logger
	structured *slog.Logger
}

func newEventLogger(jsonMode bool, plain *log.Logger) *eventLogger {
	e := &eventLogger{plain: plain}
	if jsonMode {
		e.structured = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return e
}

// event logs one message with alternating key, value fields.
func (e *eventLogger) event(msg string, kv ...any) {
	if e.structured != nil {
		e.structured.Info(msg, kv...)
		return
	}
	var b strings.Builder
	b.WriteString(msg)
	for i := 0; i+1 < len(kv); i += 2 {
		fmt.Fprintf(&b, " %v=%v", kv[i], kv[i+1])
	}
	e.plain.Print(b.String())
}

// writeMPDFile writes an MPEG-DASH MPD describing the stream to path.
func writeMPDFile(path string, ladder video.Ladder, segments int) error {
	mediaDur := time.Duration(float64(segments) * float64(ladder.SegmentSeconds) * float64(time.Second))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := dash.FromLadder(ladder, mediaDur).Write(f); err != nil {
		_ = f.Close() // best effort; the write error is the one to report
		return err
	}
	return f.Close()
}

// shapedListener wraps ln so each connection is paced by the trace in
// traceFile; with no trace file the listener is returned unshaped.
func shapedListener(ln net.Listener, traceFile string, timeScale float64, logger *log.Logger) (net.Listener, error) {
	if traceFile == "" {
		return ln, nil
	}
	f, err := os.Open(traceFile)
	if err != nil {
		return nil, err
	}
	tr, err := trace.ReadCSV(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	logger.Printf("shaping with %s (%.1f Mb/s mean, %gx time)", traceFile, tr.MeanMbps(), timeScale)
	return netem.NewListener(ln, func() (*netem.Shaper, error) {
		return netem.NewShaper(tr, timeScale)
	}), nil
}
