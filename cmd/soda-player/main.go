// Command soda-player streams from a soda-server with any ABR controller and
// reports the session's QoE — the other half of the prototype deployment.
//
// Usage:
//
//	soda-player -addr 127.0.0.1:9000 -controller soda -timescale 10
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/abr"
	"repro/internal/player"
	"repro/internal/predictor"

	_ "repro/internal/baseline"
	_ "repro/internal/core"

	"repro/internal/proto"
	"repro/internal/units"
	"repro/internal/video"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9000", "server address")
	controller := flag.String("controller", "soda", "ABR controller name")
	bufferCap := flag.Float64("buffer", 15, "buffer cap in seconds")
	timeScale := flag.Float64("timescale", 1, "stream-time compression (must match the server's shaper)")
	maxSegments := flag.Int("max-segments", 0, "stop after this many segments (0 = whole stream)")
	flag.Parse()

	// Probe the manifest first to build the right ladder for the controller.
	probe, err := proto.Dial(*addr, 0)
	if err != nil {
		fatal(err)
	}
	manifest := probe.Manifest()
	if err := probe.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "soda-player: closing manifest probe: %v\n", err)
	}
	ladder := video.NewLadder(manifest.BitratesMbps, units.Seconds(manifest.SegmentSeconds))

	ctrl, err := abr.New(*controller, ladder)
	if err != nil {
		fatal(err)
	}
	res, err := player.Play(player.Config{
		Addr:        *addr,
		Controller:  ctrl,
		Predictor:   predictor.NewSafeEMA(),
		BufferCap:   units.Seconds(*bufferCap),
		TimeScale:   *timeScale,
		MaxSegments: *maxSegments,
	})
	if err != nil {
		fatal(err)
	}
	m := res.Metrics
	fmt.Printf("controller %s: %d segments\n", *controller, m.Segments)
	fmt.Printf("  QoE %.4f  utility %.4f  rebuffer %.4f (%.1fs, %d events)  switching %.4f (%d switches)\n",
		m.Score, m.MeanUtility, m.RebufferRatio, m.RebufferSec, m.RebufferEvents, m.SwitchRate, m.Switches)
	fmt.Printf("  startup %.2fs  waits %d\n", m.StartupSec, res.Waits)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "soda-player:", err)
	os.Exit(1)
}
