package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunInProcess drives the CLI end to end against an in-process service:
// report written, gate evaluated, both modes and both gate outcomes.
func TestRunInProcess(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.json")
	err := run([]string{
		"-mode", "open", "-sessions", "50", "-requests", "500", "-rps", "50000",
		"-seed", "7", "-out", out, "-max-p99-ms", "1000", "-max-rejected-pct", "0",
	}, os.Stdout)
	if err != nil {
		t.Fatalf("open-loop run failed: %v", err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Mode     string `json:"mode"`
		Requests uint64 `json:"requests"`
		OK       uint64 `json:"ok"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, raw)
	}
	if rep.Mode != "open" || rep.Requests != 500 || rep.OK != 500 {
		t.Errorf("report = %+v", rep)
	}

	// An impossible p99 threshold must fail the run.
	err = run([]string{"-sessions", "4", "-requests", "100", "-max-p99-ms", "0.000001"}, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "p99") {
		t.Errorf("impossible p99 gate did not fail: %v", err)
	}
}

// TestBaselineThresholds covers the -baseline path: thresholds come from the
// repo's bench baseline, and a gate sourced that way still fires.
func TestBaselineThresholds(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(good, []byte(`{"LoadgenOpenLoop": {"max_p99_decide_ms": 50.0, "max_rejected_pct": 0, "max_qoe_incidents_per_1k": 750}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	p99, rejected, incidents, err := baselineThresholds(good)
	if err != nil || p99 != 50.0 || rejected != 0 || incidents != 750 {
		t.Fatalf("baselineThresholds = %v, %v, %v, %v", p99, rejected, incidents, err)
	}

	missing := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(missing, []byte(`{}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := baselineThresholds(missing); err == nil {
		t.Error("baseline without LoadgenOpenLoop accepted")
	}

	// A baseline-sourced rejection gate must fail a run that rejects traffic:
	// one client, rate limit 1 rps, so most of the 50 requests are 429s.
	strict := filepath.Join(dir, "strict.json")
	if err := os.WriteFile(strict, []byte(`{"LoadgenOpenLoop": {"max_p99_decide_ms": 10000.0, "max_rejected_pct": 0}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-sessions", "1", "-requests", "50", "-rps-per-client", "1", "-baseline", strict}, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Errorf("baseline rejection gate did not fail: %v", err)
	}
}

func TestRunFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-mode", "bogus"},
		{"-profile", "bogus"},
		{"-ladder", "bogus"},
		{"-requests", "0"},
	} {
		if err := run(args, os.Stdout); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
