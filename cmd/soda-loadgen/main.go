// Command soda-loadgen replays calibrated ABR workloads against the /decide
// control plane and reports the latency distribution plus the admission and
// eviction counters — the fleet operator's view of soda-server, and the
// harness behind CI's p99 decide-latency gate.
//
// Two arrival processes: closed loop (-mode closed, N sessions each waiting
// for their previous decide plus -think) and open loop (-mode open, Poisson
// arrivals at -rps, latency measured from the scheduled arrival so queueing
// counts). Targets: a live server over HTTP (-target http://host:port) or an
// in-process DecideService (default) configured with the same control-plane
// knobs soda-server exposes.
//
// Usage:
//
//	soda-loadgen -mode open -sessions 50000 -requests 200000 -rps 40000
//	soda-loadgen -mode closed -sessions 64 -requests 10000 -think 100ms
//	soda-loadgen -target http://127.0.0.1:9090 -sessions 100 -requests 5000
//	soda-loadgen -requests 50000 -max-p99-ms 1 -max-rejected-pct 0
//
// With -max-p99-ms or -max-rejected-pct set, the exit status is the gate:
// 0 when the run meets the thresholds, 1 when it does not.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/flightrec"
	"repro/internal/httpseg"
	"repro/internal/loadgen"
	"repro/internal/tracegen"
	"repro/internal/units"
	"repro/internal/video"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "soda-loadgen: %v\n", err)
		os.Exit(1)
	}
}

// run is main minus the process exit, for tests.
func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("soda-loadgen", flag.ContinueOnError)
	mode := fs.String("mode", "closed", "arrival process: closed or open")
	sessions := fs.Int("sessions", 64, "virtual session count")
	requests := fs.Int("requests", 10000, "total decide budget")
	rps := fs.Float64("rps", 1000, "open-loop target arrival rate")
	think := fs.Duration("think", 0, "closed-loop pause between a session's decides")
	workers := fs.Int("workers", 16, "open-loop dispatch pool size")
	profile := fs.String("profile", "puffer", "throughput calibration: puffer, fiveg, fourg")
	sessionLength := fs.Float64("session-length", 120, "synthesized trace length per session, seconds")
	seed := fs.Uint64("seed", 1, "seed for trace synthesis and Poisson arrivals")
	target := fs.String("target", "", "server base URL; empty runs an in-process DecideService")

	// In-process server knobs, mirroring soda-server's flags.
	ladderName := fs.String("ladder", "prototype", "in-process ladder: youtube4k, mobile, prototype, prime")
	decideCache := fs.Int("decide-cache", 1<<16, "in-process shared solve-cache entries (0 disables)")
	tableQuantum := fs.Float64("decide-table-quantum", 0.5, "in-process decision-table quantum (0 disables)")
	maxSessions := fs.Int("max-sessions", httpseg.DefaultMaxSessions, "in-process session cap")
	sessionTTL := fs.Duration("session-ttl", httpseg.DefaultSessionTTL, "in-process idle-eviction TTL")
	maxInflight := fs.Int("max-inflight", httpseg.DefaultMaxInflight, "in-process in-flight decide bound")
	rpsPerClient := fs.Float64("rps-per-client", 0, "in-process per-client rate limit (0 disables)")
	sessionMemo := fs.Int("session-memo", -1, "per-session solve-memo entries (0 core default, negative disables — the fleet-scale setting)")

	maxP99Ms := fs.Float64("max-p99-ms", 0, "fail when p99 decide latency exceeds this many ms (0 disables)")
	maxRejectedPct := fs.Float64("max-rejected-pct", -1, "fail when the rejection percentage exceeds this (negative disables)")
	maxIncidents := fs.Float64("max-incidents-per-1k", 0, "fail when QoE-watchdog incidents per 1k sessions exceed this (0 disables)")
	baselinePath := fs.String("baseline", "", "take the gate thresholds from this bench baseline's LoadgenOpenLoop entry (explicit flags win)")
	out := fs.String("out", "", "write the JSON report here instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baselinePath != "" {
		p99, rejected, incidents, err := baselineThresholds(*baselinePath)
		if err != nil {
			return err
		}
		if *maxP99Ms == 0 {
			*maxP99Ms = p99
		}
		if *maxRejectedPct < 0 {
			*maxRejectedPct = rejected
		}
		if *maxIncidents == 0 {
			*maxIncidents = incidents
		}
	}

	cfg := loadgen.Config{
		Sessions:      *sessions,
		Requests:      *requests,
		RPS:           *rps,
		ThinkTime:     *think,
		Workers:       *workers,
		SessionLength: units.Seconds(*sessionLength),
		Seed:          *seed,
		// Every run carries the QoE watchdog: observation is allocation-free
		// and the incident counts feed the report's per-1k gate field.
		Watchdog: flightrec.NewWatchdog(nil, flightrec.WatchdogConfig{}),
	}
	switch *mode {
	case "closed":
		cfg.Mode = loadgen.ClosedLoop
	case "open":
		cfg.Mode = loadgen.OpenLoop
	default:
		return fmt.Errorf("unknown mode %q (want closed or open)", *mode)
	}
	switch *profile {
	case "puffer":
		cfg.Profile = tracegen.Puffer()
	case "fiveg":
		cfg.Profile = tracegen.FiveG()
	case "fourg":
		cfg.Profile = tracegen.FourG()
	default:
		return fmt.Errorf("unknown profile %q (want puffer, fiveg, fourg)", *profile)
	}

	var tgt loadgen.Target
	if *target != "" {
		tgt = &loadgen.HTTPTarget{BaseURL: *target}
	} else {
		var ladder video.Ladder
		switch *ladderName {
		case "youtube4k":
			ladder = video.YouTube4K()
		case "mobile":
			ladder = video.Mobile()
		case "prototype":
			ladder = video.Prototype()
		case "prime":
			ladder = video.PrimeVideo()
		default:
			return fmt.Errorf("unknown ladder %q", *ladderName)
		}
		svc, err := httpseg.NewDecideService(ladder, httpseg.DecideOptions{
			CacheEntries:       *decideCache,
			TableQuantum:       *tableQuantum,
			MaxSessions:        *maxSessions,
			SessionTTL:         *sessionTTL,
			MaxInflight:        *maxInflight,
			RPSPerClient:       *rpsPerClient,
			SessionMemoEntries: *sessionMemo,
		}, nil)
		if err != nil {
			return err
		}
		tgt = &loadgen.InProc{Svc: svc}
	}

	started := time.Now()
	rep, err := loadgen.Run(cfg, tgt)
	if err != nil {
		return err
	}
	text, err := rep.WriteJSON()
	if err != nil {
		return err
	}
	if *out != "" {
		if err := os.WriteFile(*out, append(text, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote report to %s (%d requests in %v)\n", *out, rep.Requests, time.Since(started).Round(time.Millisecond))
	} else {
		fmt.Fprintf(stdout, "%s\n", text)
	}
	return rep.Gate(*maxP99Ms, *maxRejectedPct, *maxIncidents)
}

// baselineThresholds reads the LoadgenOpenLoop gate thresholds from the
// committed bench baseline, so CI's loadgen step and soda-bench enforce the
// same numbers from the same file.
func baselineThresholds(path string) (maxP99Ms, maxRejectedPct, maxIncidentsPer1k float64, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, 0, err
	}
	var baseline map[string]struct {
		MaxP99DecideMs    float64 `json:"max_p99_decide_ms"`
		MaxRejectedPct    float64 `json:"max_rejected_pct"`
		MaxIncidentsPer1k float64 `json:"max_qoe_incidents_per_1k"`
	}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return 0, 0, 0, fmt.Errorf("%s: %v", path, err)
	}
	entry, ok := baseline["LoadgenOpenLoop"]
	if !ok || entry.MaxP99DecideMs <= 0 {
		return 0, 0, 0, fmt.Errorf("%s: no LoadgenOpenLoop threshold entry", path)
	}
	return entry.MaxP99DecideMs, entry.MaxRejectedPct, entry.MaxIncidentsPer1k, nil
}
