// Command soda-bench is the benchmark regression gate. It runs the
// BenchmarkSolver* benchmarks with a fixed iteration budget, runs the shared
// solve-cache and telemetry benchmarks with their own budgets, writes the
// parsed results as JSON, and fails when a deterministic performance
// property regresses:
//
//	go run ./cmd/soda-bench -out BENCH_pr10.json
//
// Five benchmark gates are enforced:
//
//   - nodes/solve (and nodes/op for the isolated CostModel.Solve benchmarks)
//     must stay within -tolerance (default 10%) of the committed baseline —
//     it is a deterministic property of the pruning logic, so a hermetic CI
//     runner can hold a tight threshold on it.
//   - allocs/op of the gated benchmarks must not exceed the baseline at all
//     (zero tolerance): the solver hot path is allocation-free by design and
//     allocation counts are deterministic, so any increase is a regression.
//     The telemetry micro-benchmarks (counter, histogram, ring append,
//     session recorder) sit in the baseline at 0 allocs/op, so any
//     allocation on the telemetry hot path fails here too.
//   - the dataset-scale shared-cache benchmark's on-arm must need at most
//     1/-min-cache-reduction (default 1/2) of the off-arm's solver
//     invocations per session — the cross-session cache must keep earning
//     its place.
//   - BenchmarkTelemetryOverhead's paired telemetry-on arm must cost at most
//     -max-telemetry-overhead percent (default 5%) more ns/decision than the
//     telemetry-off arm at dataset scale. BenchmarkFlightRecOverhead gets the
//     same treatment under -max-flightrec-overhead: attaching the QoE
//     watchdog to the dataset run must stay within the budget (and at the
//     baseline's allocs/op — zero).
//   - the compiled-table decision path (BenchmarkDecisionTable/table ns/op)
//     must be at least -min-table-speedup times (default 5x) faster than the
//     dataset-scale cached decision path (BenchmarkDatasetSharedCache/on
//     ns/decision) measured in the same run — the steady state the tables
//     replace. Both figures are parallel wall-time per decision on the same
//     runner, so the ratio is portable where raw ns/op is not.
//
// ns/op is recorded in the JSON for human inspection but never gated: it
// moves with runner hardware.
//
// A fleet-simulation gate rides along on the baseline's special FleetSim
// entry (recognised by min_sessions > 0): BenchmarkFleetSim's fleet arm must
// sustain at least min_sessions concurrent virtual players with ns/decision
// at most max_ns_ratio times the single-session arm of the same run
// (-max-fleet-ns-ratio overrides the ratio), at exactly the entry's
// allocs/op — zero. Like the table-speedup gate, the ratio compares two
// wall-time figures from the same runner, so it is portable where raw ns/op
// is not.
//
// Two control-plane gates ride along:
//
//   - the full control-plane decide path (BenchmarkSessionTableDecide) must
//     stay at 0 allocs/op — the steady state that lets one host carry tens
//     of thousands of sessions.
//   - an in-process open-loop load run (internal/loadgen, 50k concurrent
//     sessions by default) must meet the p99 decide-latency and rejection
//     thresholds recorded in the baseline's LoadgenOpenLoop entry
//     (-max-p99-decide-ms overrides the p99 threshold; -loadgen-requests 0
//     skips the run).
//
// The baseline (bench_baseline.json) maps benchmark name to its gated
// {nodes_per_solve, allocs_per_op}. A baseline entry that no longer appears
// in the benchmark output fails the gate: a silently vanished benchmark must
// not read as a pass. The special LoadgenOpenLoop entry instead carries
// {max_p99_decide_ms, max_rejected_pct} and gates the load run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/flightrec"
	"repro/internal/httpseg"
	"repro/internal/loadgen"
	"repro/internal/video"
)

// Result is the aggregated measurement of one benchmark across -count runs.
type Result struct {
	Name          string  `json:"name"`
	Samples       int     `json:"samples"`
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	NodesPerSolve float64 `json:"nodes_per_solve,omitempty"`
	// Shared solve-cache metrics (cache benchmarks only).
	SolvesPerSession float64 `json:"solves_per_session,omitempty"`
	NsPerDecision    float64 `json:"ns_per_decision,omitempty"`
	SharedHitPct     float64 `json:"shared_hit_pct,omitempty"`
	// TableHitPct is the compiled decision-table hit rate (table benchmarks
	// only).
	TableHitPct float64 `json:"table_hit_pct,omitempty"`
	// Sessions is the concurrent virtual-player count a fleet benchmark
	// sustained (BenchmarkFleetSim/fleet only).
	Sessions float64 `json:"sessions,omitempty"`
	// Telemetry-overhead metrics (BenchmarkTelemetryOverhead only).
	NsPerDecisionOff     float64 `json:"ns_per_decision_off,omitempty"`
	NsPerDecisionOn      float64 `json:"ns_per_decision_on,omitempty"`
	TelemetryOverheadPct float64 `json:"telemetry_overhead_pct,omitempty"`
	// TelemetryOverheadMedianPct is the median per-pair overhead, reported
	// as a dispersion check next to the gated min-vs-min figure.
	TelemetryOverheadMedianPct float64 `json:"telemetry_overhead_median_pct,omitempty"`
}

// Report is the schema of the JSON artifact.
type Report struct {
	Pattern            string   `json:"pattern"`
	Benchtime          string   `json:"benchtime"`
	Count              int      `json:"count"`
	CachePattern       string   `json:"cache_pattern,omitempty"`
	CacheBenchtime     string   `json:"cache_benchtime,omitempty"`
	TelemetryPattern   string   `json:"telemetry_pattern,omitempty"`
	TelemetryBenchtime string   `json:"telemetry_benchtime,omitempty"`
	TablePattern       string   `json:"table_pattern,omitempty"`
	TableBenchtime     string   `json:"table_benchtime,omitempty"`
	SessionPattern     string   `json:"session_pattern,omitempty"`
	SessionBenchtime   string   `json:"session_benchtime,omitempty"`
	FleetPattern       string   `json:"fleet_pattern,omitempty"`
	FleetBenchtime     string   `json:"fleet_benchtime,omitempty"`
	Benchmarks         []Result `json:"benchmarks"`
	// Loadgen is the in-process open-loop load run feeding the p99 gate.
	Loadgen *loadgen.Report `json:"loadgen,omitempty"`
}

// BaselineEntry carries the gated metrics of one benchmark — or, on the
// special LoadgenOpenLoop entry (recognised by MaxP99DecideMs > 0), the
// thresholds of the load-run gate.
type BaselineEntry struct {
	NodesPerSolve float64 `json:"nodes_per_solve"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	// MaxP99DecideMs gates the loadgen run's p99 decide latency; a positive
	// value marks the entry as a load-run threshold, not a benchmark.
	MaxP99DecideMs float64 `json:"max_p99_decide_ms,omitempty"`
	// MaxRejectedPct bounds the loadgen run's rejection percentage.
	MaxRejectedPct float64 `json:"max_rejected_pct"`
	// MaxIncidentsPer1k bounds the loadgen run's QoE-watchdog incidents per
	// 1000 sessions (0 disables that check).
	MaxIncidentsPer1k float64 `json:"max_qoe_incidents_per_1k,omitempty"`
	// MinSessions gates the fleet benchmark's sustained concurrent-session
	// count; a positive value marks the entry as the FleetSim threshold set,
	// not a benchmark.
	MinSessions float64 `json:"min_sessions,omitempty"`
	// MaxNsRatio bounds the fleet arm's ns/decision relative to the
	// single-session arm measured in the same run.
	MaxNsRatio float64 `json:"max_ns_ratio,omitempty"`
}

func main() {
	pattern := flag.String("pattern", "BenchmarkSolver", "benchmark name pattern to run")
	benchtime := flag.String("benchtime", "100x", "fixed per-benchmark iteration budget")
	count := flag.Int("count", 3, "repetitions per benchmark")
	cachePattern := flag.String("cache-pattern", "BenchmarkSharedCacheParallel$|BenchmarkDatasetSharedCache",
		"shared-cache benchmark pattern (empty skips the cache run and its gate)")
	cacheBenchtime := flag.String("cache-benchtime", "20x", "iteration budget for the cache benchmarks")
	minCacheReduction := flag.Float64("min-cache-reduction", 2.0,
		"required off/on solver-invocation ratio of the dataset shared-cache benchmark (0 disables)")
	telemetryPattern := flag.String("telemetry-pattern",
		"BenchmarkTelemetry(Counter|Histogram|RingAppend|Recorder)$|BenchmarkFlightRec(Record|WatchdogObserve)$",
		"zero-alloc telemetry and flight-recorder hot-path benchmark pattern (empty skips the runs and their gates)")
	telemetryBenchtime := flag.String("telemetry-benchtime", "10000x", "iteration budget for the telemetry micro-benchmarks")
	maxTelemetryOverhead := flag.Float64("max-telemetry-overhead", 5.0,
		"allowed telemetry-on vs telemetry-off ns/decision overhead percent of BenchmarkTelemetryOverhead (0 disables)")
	maxFlightRecOverhead := flag.Float64("max-flightrec-overhead", 5.0,
		"allowed watchdog-on vs watchdog-off ns/decision overhead percent of BenchmarkFlightRecOverhead (0 disables)")
	tablePattern := flag.String("table-pattern", "BenchmarkDecisionTable$",
		"compiled decision-table benchmark pattern (empty skips the table run and its gate)")
	tableBenchtime := flag.String("table-benchtime", "50000x", "iteration budget for the decision-table benchmark")
	minTableSpeedup := flag.Float64("min-table-speedup", 5.0,
		"required cached-path ns/decision over table-path ns/op ratio (0 disables)")
	fleetPattern := flag.String("fleet-pattern", "BenchmarkFleetSim$",
		"fleet-simulation benchmark pattern (empty skips the run and its gate)")
	fleetBenchtime := flag.String("fleet-benchtime", "3x", "iteration budget for the fleet benchmark")
	maxFleetNsRatio := flag.Float64("max-fleet-ns-ratio", 0,
		"fleet vs single-session ns/decision ratio gate (0 takes the baseline's FleetSim entry)")
	sessionPattern := flag.String("session-pattern", "BenchmarkSessionTableDecide$",
		"control-plane decide benchmark pattern (empty skips the run; its 0 allocs/op floor lives in the baseline)")
	sessionBenchtime := flag.String("session-benchtime", "20000x", "iteration budget for the control-plane decide benchmark")
	loadgenSessions := flag.Int("loadgen-sessions", 50000, "concurrent sessions for the in-process load run")
	loadgenRequests := flag.Int("loadgen-requests", 75000, "request budget for the in-process load run (0 skips the run and its gate)")
	loadgenRPS := flag.Float64("loadgen-rps", 40000, "open-loop arrival rate for the in-process load run")
	maxP99DecideMs := flag.Float64("max-p99-decide-ms", 0,
		"p99 decide-latency gate for the load run in ms (0 takes the baseline's LoadgenOpenLoop entry)")
	out := flag.String("out", "BENCH_pr10.json", "output JSON path")
	baselinePath := flag.String("baseline", "bench_baseline.json", "committed gated-metric baseline")
	tolerance := flag.Float64("tolerance", 0.10, "allowed relative nodes/solve regression")
	flag.Parse()

	raw := runBench(*pattern, *benchtime, *count)
	report := parse(raw)
	report.Pattern = *pattern
	report.Benchtime = *benchtime
	report.Count = *count
	if *cachePattern != "" {
		cacheRaw := runBench(*cachePattern, *cacheBenchtime, 1)
		cacheReport := parse(cacheRaw)
		report.CachePattern = *cachePattern
		report.CacheBenchtime = *cacheBenchtime
		report.Benchmarks = append(report.Benchmarks, cacheReport.Benchmarks...)
	}
	if *telemetryPattern != "" {
		// The micro-benchmarks take the fixed budget; the paired dataset-scale
		// overhead benchmark folds a min-estimator over its own iterations, so
		// a small count suffices.
		telemetryRaw := runBench(*telemetryPattern, *telemetryBenchtime, *count)
		telemetryReport := parse(telemetryRaw)
		report.TelemetryPattern = *telemetryPattern
		report.TelemetryBenchtime = *telemetryBenchtime
		report.Benchmarks = append(report.Benchmarks, telemetryReport.Benchmarks...)
		if *maxTelemetryOverhead > 0 {
			// 30 alternating-order pairs: the gate compares per-arm minima,
			// which need enough runs to shake scheduler noise out of both arms.
			overheadRaw := runBench("BenchmarkTelemetryOverhead$", "30x", 1)
			report.Benchmarks = append(report.Benchmarks, parse(overheadRaw).Benchmarks...)
		}
		if *maxFlightRecOverhead > 0 {
			overheadRaw := runBench("BenchmarkFlightRecOverhead$", "30x", 1)
			report.Benchmarks = append(report.Benchmarks, parse(overheadRaw).Benchmarks...)
		}
	}
	if *tablePattern != "" {
		tableRaw := runBench(*tablePattern, *tableBenchtime, *count)
		report.TablePattern = *tablePattern
		report.TableBenchtime = *tableBenchtime
		report.Benchmarks = append(report.Benchmarks, parse(tableRaw).Benchmarks...)
	}
	if *sessionPattern != "" {
		sessionRaw := runBench(*sessionPattern, *sessionBenchtime, *count)
		report.SessionPattern = *sessionPattern
		report.SessionBenchtime = *sessionBenchtime
		report.Benchmarks = append(report.Benchmarks, parse(sessionRaw).Benchmarks...)
	}
	if *fleetPattern != "" {
		// One run: the gate is a same-run ratio of the two arms, and each fleet
		// iteration advances 100k sessions through seconds of stream time.
		fleetRaw := runBench(*fleetPattern, *fleetBenchtime, 1)
		report.FleetPattern = *fleetPattern
		report.FleetBenchtime = *fleetBenchtime
		report.Benchmarks = append(report.Benchmarks, parse(fleetRaw).Benchmarks...)
	}

	baseline, err := readBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "soda-bench: %v\n", err)
		os.Exit(2)
	}

	var loadgenFailures []string
	if *loadgenRequests > 0 {
		rep, failures := runLoadgen(*loadgenSessions, *loadgenRequests, *loadgenRPS,
			*maxP99DecideMs, baseline)
		report.Loadgen = rep
		loadgenFailures = failures
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "soda-bench: %v\n", err)
		os.Exit(2)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "soda-bench: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("soda-bench: wrote %s (%d benchmarks)\n", *out, len(report.Benchmarks))

	failures := gate(report, baseline, *tolerance)
	failures = append(failures, loadgenFailures...)
	if *cachePattern != "" && *minCacheReduction > 0 {
		failures = append(failures, gateCacheReduction(report, *minCacheReduction)...)
	}
	if *telemetryPattern != "" && *maxTelemetryOverhead > 0 {
		failures = append(failures, gateOverhead(report, "BenchmarkTelemetryOverhead", "telemetry", *maxTelemetryOverhead)...)
	}
	if *telemetryPattern != "" && *maxFlightRecOverhead > 0 {
		failures = append(failures, gateOverhead(report, "BenchmarkFlightRecOverhead", "flight recorder", *maxFlightRecOverhead)...)
	}
	if *tablePattern != "" && *cachePattern != "" && *minTableSpeedup > 0 {
		failures = append(failures, gateTableSpeedup(report, *minTableSpeedup)...)
	}
	if *fleetPattern != "" {
		failures = append(failures, gateFleetSim(report, baseline, *maxFleetNsRatio)...)
	}
	if len(failures) > 0 {
		sort.Strings(failures)
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "soda-bench: FAIL %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Printf("soda-bench: nodes/solve within %.0f%% of baseline and allocs/op unregressed for all %d gated benchmarks\n",
		*tolerance*100, len(baseline))
	if *cachePattern != "" && *minCacheReduction > 0 {
		fmt.Printf("soda-bench: shared cache cuts solver invocations by >= %.1fx\n", *minCacheReduction)
	}
	if *telemetryPattern != "" && *maxTelemetryOverhead > 0 {
		fmt.Printf("soda-bench: telemetry ns/decision overhead within %.1f%%\n", *maxTelemetryOverhead)
	}
	if *telemetryPattern != "" && *maxFlightRecOverhead > 0 {
		fmt.Printf("soda-bench: flight-recorder ns/decision overhead within %.1f%%\n", *maxFlightRecOverhead)
	}
	if *tablePattern != "" && *cachePattern != "" && *minTableSpeedup > 0 {
		fmt.Printf("soda-bench: compiled decision table beats the cached path by >= %.1fx per decision\n", *minTableSpeedup)
	}
	if *fleetPattern != "" {
		for _, r := range report.Benchmarks {
			if r.Name == "BenchmarkFleetSim/fleet" {
				fmt.Printf("soda-bench: fleet sim sustained %.0f sessions at %.1f ns/decision with %.0f allocs/op\n",
					r.Sessions, r.NsPerDecision, r.AllocsPerOp)
			}
		}
	}
	if report.Loadgen != nil {
		fmt.Printf("soda-bench: loadgen sustained %d sessions at %.0f rps with p99 %.3f ms (%.2f%% rejected)\n",
			report.Loadgen.Sessions, report.Loadgen.AchievedRPS, report.Loadgen.P99Ms, report.Loadgen.RejectedPct)
	}
}

// loadgenBaselineName is the baseline entry carrying the load-run thresholds.
const loadgenBaselineName = "LoadgenOpenLoop"

// runLoadgen drives the in-process open-loop load run and gates it against
// the baseline's LoadgenOpenLoop thresholds (p99 overridable by flag). The
// fleet-scale configuration is deliberate: per-session memos disabled, the
// shared cache and compiled tables carrying the hot path, the session cap
// sized to the run.
func runLoadgen(sessions, requests int, rps, maxP99Override float64, baseline map[string]BaselineEntry) (*loadgen.Report, []string) {
	thresholds, ok := baseline[loadgenBaselineName]
	if !ok {
		return nil, []string{fmt.Sprintf("%s: threshold entry missing from baseline", loadgenBaselineName)}
	}
	maxP99 := thresholds.MaxP99DecideMs
	if maxP99Override > 0 {
		maxP99 = maxP99Override
	}
	svc, err := httpseg.NewDecideService(video.Prototype(), httpseg.DecideOptions{
		CacheEntries:       1 << 16,
		TableQuantum:       0.5,
		MaxSessions:        sessions + sessions/8,
		SessionMemoEntries: -1,
	}, nil)
	if err != nil {
		return nil, []string{fmt.Sprintf("loadgen: building decide service: %v", err)}
	}
	rep, err := loadgen.Run(loadgen.Config{
		Mode:     loadgen.OpenLoop,
		Sessions: sessions,
		Requests: requests,
		RPS:      rps,
		Seed:     8,
		Watchdog: flightrec.NewWatchdog(nil, flightrec.WatchdogConfig{}),
	}, &loadgen.InProc{Svc: svc})
	if err != nil {
		return nil, []string{fmt.Sprintf("loadgen: %v", err)}
	}
	fmt.Printf("soda-bench: loadgen open loop: %d sessions, %d requests, p50 %.3f ms, p99 %.3f ms, p999 %.3f ms, %.1f QoE incidents/1k sessions\n",
		rep.Sessions, rep.Requests, rep.P50Ms, rep.P99Ms, rep.P999Ms, rep.QoEIncidentsPer1k)
	if err := rep.Gate(maxP99, thresholds.MaxRejectedPct, thresholds.MaxIncidentsPer1k); err != nil {
		return &rep, []string{err.Error()}
	}
	return &rep, nil
}

// runBench executes one `go test -bench` invocation and returns its output,
// which is also echoed to stdout.
func runBench(pattern, benchtime string, count int) string {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", pattern, "-benchtime", benchtime,
		"-count", strconv.Itoa(count), ".")
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "soda-bench: go test -bench %s: %v\n%s", pattern, err, raw)
		os.Exit(2)
	}
	os.Stdout.Write(raw)
	return string(raw)
}

// benchLine matches one `go test -bench` result line:
//
//	BenchmarkSolverMonotonic-8   100   31.0 ns/op   24.0 nodes/solve   0 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parse aggregates benchmark output lines into per-name mean results.
func parse(out string) Report {
	type acc struct {
		n                 int
		ns, allocs, nodes float64
		nodeSamples       int
		solves, nsDec     float64
		solveSamples      int
		nsDecSamples      int
		sessions          float64
		sessionSamples    int
		hitPct            float64
		hitSamples        int
		tableHitPct       float64
		tableHitSamples   int
		nsOff, nsOn, ovh  float64
		ovhMedian         float64
		ovhSamples        int
	}
	accs := make(map[string]*acc)
	var order []string
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := m[1]
		a := accs[name]
		if a == nil {
			a = &acc{}
			accs[name] = a
			order = append(order, name)
		}
		a.n++
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				a.ns += v
			case "allocs/op":
				a.allocs += v
			case "nodes/solve", "nodes/op":
				a.nodes += v
				a.nodeSamples++
			case "solves/session":
				a.solves += v
				a.solveSamples++
			case "ns/decision":
				a.nsDec += v
				a.nsDecSamples++
			case "sessions":
				a.sessions += v
				a.sessionSamples++
			case "shared-hit-%":
				a.hitPct += v
				a.hitSamples++
			case "table-hit-%":
				a.tableHitPct += v
				a.tableHitSamples++
			case "ns/decision-off":
				a.nsOff += v
			case "ns/decision-on":
				a.nsOn += v
			case "overhead-%":
				a.ovh += v
				a.ovhSamples++
			case "overhead-median-%":
				a.ovhMedian += v
			}
		}
	}
	var rep Report
	for _, name := range order {
		a := accs[name]
		r := Result{
			Name:        name,
			Samples:     a.n,
			NsPerOp:     a.ns / float64(a.n),
			AllocsPerOp: a.allocs / float64(a.n),
		}
		if a.nodeSamples > 0 {
			r.NodesPerSolve = a.nodes / float64(a.nodeSamples)
		}
		if a.solveSamples > 0 {
			r.SolvesPerSession = a.solves / float64(a.solveSamples)
		}
		if a.nsDecSamples > 0 {
			r.NsPerDecision = a.nsDec / float64(a.nsDecSamples)
		}
		if a.sessionSamples > 0 {
			r.Sessions = a.sessions / float64(a.sessionSamples)
		}
		if a.hitSamples > 0 {
			r.SharedHitPct = a.hitPct / float64(a.hitSamples)
		}
		if a.tableHitSamples > 0 {
			r.TableHitPct = a.tableHitPct / float64(a.tableHitSamples)
		}
		if a.ovhSamples > 0 {
			r.NsPerDecisionOff = a.nsOff / float64(a.ovhSamples)
			r.NsPerDecisionOn = a.nsOn / float64(a.ovhSamples)
			r.TelemetryOverheadPct = a.ovh / float64(a.ovhSamples)
			r.TelemetryOverheadMedianPct = a.ovhMedian / float64(a.ovhSamples)
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
	}
	return rep
}

// readBaseline loads the committed name -> gated-metrics map.
func readBaseline(path string) (map[string]BaselineEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var baseline map[string]BaselineEntry
	if err := json.Unmarshal(data, &baseline); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return baseline, nil
}

// gate compares measured nodes/solve and allocs/op against the baseline and
// returns the failure messages.
func gate(rep Report, baseline map[string]BaselineEntry, tolerance float64) []string {
	measured := make(map[string]Result)
	for _, r := range rep.Benchmarks {
		measured[r.Name] = r
	}
	var failures []string
	for name, base := range baseline {
		if base.MaxP99DecideMs > 0 || base.MinSessions > 0 {
			// A load-run or fleet threshold entry, not a benchmark; runLoadgen
			// and gateFleetSim gate those.
			continue
		}
		got, ok := measured[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but not in benchmark output", name))
			continue
		}
		if got.NodesPerSolve > base.NodesPerSolve*(1+tolerance) {
			failures = append(failures, fmt.Sprintf("%s: nodes/solve %.2f exceeds baseline %.2f by more than %.0f%%",
				name, got.NodesPerSolve, base.NodesPerSolve, tolerance*100))
		}
		// Zero tolerance on allocations: counts are deterministic, so any
		// increase over the committed value is a hot-path regression.
		if got.AllocsPerOp > base.AllocsPerOp {
			failures = append(failures, fmt.Sprintf("%s: allocs/op %.2f exceeds baseline %.2f (zero tolerance)",
				name, got.AllocsPerOp, base.AllocsPerOp))
		}
	}
	return failures
}

// gateCacheReduction enforces the dataset-scale shared-cache win: the on-arm
// must perform at most 1/minReduction of the off-arm's solver invocations
// per session.
func gateCacheReduction(rep Report, minReduction float64) []string {
	var off, on *Result
	for i := range rep.Benchmarks {
		switch rep.Benchmarks[i].Name {
		case "BenchmarkDatasetSharedCache/off":
			off = &rep.Benchmarks[i]
		case "BenchmarkDatasetSharedCache/on":
			on = &rep.Benchmarks[i]
		}
	}
	if off == nil || on == nil || off.SolvesPerSession == 0 || on.SolvesPerSession == 0 {
		return []string{"BenchmarkDatasetSharedCache: off/on solves/session metrics missing from benchmark output"}
	}
	ratio := off.SolvesPerSession / on.SolvesPerSession
	if ratio < minReduction {
		return []string{fmt.Sprintf(
			"BenchmarkDatasetSharedCache: shared cache cuts solves/session only %.2fx (%.1f -> %.1f), need >= %.1fx",
			ratio, off.SolvesPerSession, on.SolvesPerSession, minReduction)}
	}
	return nil
}

// gateTableSpeedup enforces the compiled-table win: the table decision path
// (BenchmarkDecisionTable/table, warm, parallel) must cost at most
// 1/minSpeedup of the dataset-scale cached decision path
// (BenchmarkDatasetSharedCache/on) per decision. Both figures are measured
// in this run on this runner — wall time per decision under parallel load —
// so the ratio compares like with like even though absolute ns/op moves
// with hardware.
func gateTableSpeedup(rep Report, minSpeedup float64) []string {
	var cached, table *Result
	for i := range rep.Benchmarks {
		switch rep.Benchmarks[i].Name {
		case "BenchmarkDatasetSharedCache/on":
			cached = &rep.Benchmarks[i]
		case "BenchmarkDecisionTable/table":
			table = &rep.Benchmarks[i]
		}
	}
	if cached == nil || cached.NsPerDecision == 0 || table == nil || table.NsPerOp == 0 {
		return []string{"BenchmarkDecisionTable: cached ns/decision or table ns/op missing from benchmark output"}
	}
	speedup := cached.NsPerDecision / table.NsPerOp
	if speedup < minSpeedup {
		return []string{fmt.Sprintf(
			"BenchmarkDecisionTable: table path only %.2fx faster than the cached path (%.0f -> %.1f ns), need >= %.1fx",
			speedup, cached.NsPerDecision, table.NsPerOp, minSpeedup)}
	}
	return nil
}

// fleetBaselineName is the baseline entry carrying the fleet-sim thresholds.
const fleetBaselineName = "FleetSim"

// gateFleetSim enforces the fleet-simulation budget: the fleet arm must
// sustain at least the baseline's min_sessions concurrent virtual players,
// cost at most max_ns_ratio times the single-session arm's ns/decision in
// the same run (ratioOverride > 0 replaces the baseline ratio), and stay at
// the baseline's allocs/op — zero, since steady-state garbage is what caps
// how many sessions one host can carry.
func gateFleetSim(rep Report, baseline map[string]BaselineEntry, ratioOverride float64) []string {
	thresholds, ok := baseline[fleetBaselineName]
	if !ok {
		return []string{fmt.Sprintf("%s: threshold entry missing from baseline", fleetBaselineName)}
	}
	maxRatio := thresholds.MaxNsRatio
	if ratioOverride > 0 {
		maxRatio = ratioOverride
	}
	var single, fleet *Result
	for i := range rep.Benchmarks {
		switch rep.Benchmarks[i].Name {
		case "BenchmarkFleetSim/single":
			single = &rep.Benchmarks[i]
		case "BenchmarkFleetSim/fleet":
			fleet = &rep.Benchmarks[i]
		}
	}
	if single == nil || single.NsPerDecision == 0 || fleet == nil || fleet.NsPerDecision == 0 {
		return []string{"BenchmarkFleetSim: single/fleet ns/decision missing from benchmark output"}
	}
	var failures []string
	if fleet.Sessions < thresholds.MinSessions {
		failures = append(failures, fmt.Sprintf(
			"BenchmarkFleetSim/fleet: sustained %.0f concurrent sessions, need >= %.0f",
			fleet.Sessions, thresholds.MinSessions))
	}
	if maxRatio > 0 {
		if ratio := fleet.NsPerDecision / single.NsPerDecision; ratio > maxRatio {
			failures = append(failures, fmt.Sprintf(
				"BenchmarkFleetSim: fleet path costs %.2fx the single-session path per decision (%.1f vs %.1f ns), budget %.2fx",
				ratio, fleet.NsPerDecision, single.NsPerDecision, maxRatio))
		}
	}
	if fleet.AllocsPerOp > thresholds.AllocsPerOp {
		failures = append(failures, fmt.Sprintf(
			"BenchmarkFleetSim/fleet: allocs/op %.2f exceeds baseline %.2f (zero tolerance)",
			fleet.AllocsPerOp, thresholds.AllocsPerOp))
	}
	return failures
}

// gateOverhead enforces an instrumentation cost budget: at dataset scale,
// attaching the named observer (the telemetry collector, the flight
// recorder's watchdog) must cost at most maxPct percent ns/decision over the
// bare loop. Both overhead benchmarks alternate paired arms and compare
// per-arm minimum ns/decision, so scheduler stalls and GC pauses — which
// only ever inflate a sample — cannot move the gated figure.
func gateOverhead(rep Report, name, what string, maxPct float64) []string {
	for _, r := range rep.Benchmarks {
		if r.Name != name {
			continue
		}
		if r.NsPerDecisionOff <= 0 || r.NsPerDecisionOn <= 0 {
			return []string{name + ": ns/decision-off / ns/decision-on metrics missing from benchmark output"}
		}
		if r.TelemetryOverheadPct > maxPct {
			return []string{fmt.Sprintf(
				"%s: %s adds %.2f%% ns/decision (%.0f -> %.0f), budget %.1f%%",
				name, what, r.TelemetryOverheadPct, r.NsPerDecisionOff, r.NsPerDecisionOn, maxPct)}
		}
		return nil
	}
	return []string{name + ": missing from benchmark output"}
}
