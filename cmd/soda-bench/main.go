// Command soda-bench is the solver benchmark regression gate. It runs the
// BenchmarkSolver* benchmarks with a fixed iteration budget, writes the
// parsed results as JSON, and fails when the branch-and-bound solver's
// nodes-per-solve counters regress against the committed baseline:
//
//	go run ./cmd/soda-bench -out BENCH_pr3.json
//
// nodes/solve (and nodes/op for the isolated CostModel.Solve benchmarks) is
// the gate metric because it is a deterministic property of the pruning
// logic — unlike ns/op it does not move with runner hardware, so a hermetic
// CI runner can enforce a tight threshold on it. ns/op and allocs/op are
// recorded in the JSON for human inspection but not gated.
//
// The baseline (bench_baseline.json) carries the nodes counters recorded in
// CHANGES.md when the branch-and-bound solver landed. A measured value more
// than -tolerance (default 10%) above baseline fails the gate, as does a
// baseline entry that no longer appears in the benchmark output: a silently
// vanished benchmark must not read as a pass.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is the aggregated measurement of one benchmark across -count runs.
type Result struct {
	Name          string  `json:"name"`
	Samples       int     `json:"samples"`
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	NodesPerSolve float64 `json:"nodes_per_solve,omitempty"`
}

// Report is the schema of the JSON artifact.
type Report struct {
	Pattern    string   `json:"pattern"`
	Benchtime  string   `json:"benchtime"`
	Count      int      `json:"count"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	pattern := flag.String("pattern", "BenchmarkSolver", "benchmark name pattern to run")
	benchtime := flag.String("benchtime", "100x", "fixed per-benchmark iteration budget")
	count := flag.Int("count", 3, "repetitions per benchmark")
	out := flag.String("out", "BENCH_pr3.json", "output JSON path")
	baselinePath := flag.String("baseline", "bench_baseline.json", "committed nodes/solve baseline")
	tolerance := flag.Float64("tolerance", 0.10, "allowed relative nodes/solve regression")
	flag.Parse()

	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", *pattern, "-benchtime", *benchtime,
		"-count", strconv.Itoa(*count), ".")
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "soda-bench: go test -bench: %v\n%s", err, raw)
		os.Exit(2)
	}
	os.Stdout.Write(raw)

	report := parse(string(raw))
	report.Pattern = *pattern
	report.Benchtime = *benchtime
	report.Count = *count
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "soda-bench: %v\n", err)
		os.Exit(2)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "soda-bench: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("soda-bench: wrote %s (%d benchmarks)\n", *out, len(report.Benchmarks))

	baseline, err := readBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "soda-bench: %v\n", err)
		os.Exit(2)
	}
	if failures := gate(report, baseline, *tolerance); len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "soda-bench: FAIL %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Printf("soda-bench: nodes/solve within %.0f%% of baseline for all %d gated benchmarks\n",
		*tolerance*100, len(baseline))
}

// benchLine matches one `go test -bench` result line:
//
//	BenchmarkSolverMonotonic-8   100   31.0 ns/op   24.0 nodes/solve   0 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parse aggregates benchmark output lines into per-name mean results.
func parse(out string) Report {
	type acc struct {
		n                 int
		ns, allocs, nodes float64
		nodeSamples       int
	}
	accs := make(map[string]*acc)
	var order []string
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := m[1]
		a := accs[name]
		if a == nil {
			a = &acc{}
			accs[name] = a
			order = append(order, name)
		}
		a.n++
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				a.ns += v
			case "allocs/op":
				a.allocs += v
			case "nodes/solve", "nodes/op":
				a.nodes += v
				a.nodeSamples++
			}
		}
	}
	var rep Report
	for _, name := range order {
		a := accs[name]
		r := Result{
			Name:        name,
			Samples:     a.n,
			NsPerOp:     a.ns / float64(a.n),
			AllocsPerOp: a.allocs / float64(a.n),
		}
		if a.nodeSamples > 0 {
			r.NodesPerSolve = a.nodes / float64(a.nodeSamples)
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
	}
	return rep
}

// readBaseline loads the committed name -> nodes/solve map.
func readBaseline(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var baseline map[string]float64
	if err := json.Unmarshal(data, &baseline); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return baseline, nil
}

// gate compares measured nodes/solve against the baseline and returns the
// failure messages, sorted for stable output.
func gate(rep Report, baseline map[string]float64, tolerance float64) []string {
	measured := make(map[string]float64)
	for _, r := range rep.Benchmarks {
		if r.NodesPerSolve > 0 {
			measured[r.Name] = r.NodesPerSolve
		}
	}
	var failures []string
	for name, base := range baseline {
		got, ok := measured[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but not in benchmark output", name))
			continue
		}
		if got > base*(1+tolerance) {
			failures = append(failures, fmt.Sprintf("%s: nodes/solve %.2f exceeds baseline %.2f by more than %.0f%%",
				name, got, base, tolerance*100))
		}
	}
	sort.Strings(failures)
	return failures
}
