// Command soda-cover is the statement-coverage regression gate. It runs
// `go test -cover` for every package named in the committed baseline
// (cover_baseline.json, package import path -> floor percent) and fails when
// a package's statement coverage drops below its floor:
//
//	go run ./cmd/soda-cover
//
// Floors are set just below the coverage measured when the package's test
// suite last grew, so the gate never flakes on the deterministic coverage
// profile but catches tests being deleted or large untested code landing.
// Raise a package's floor in the baseline when its suite grows; a package
// listed in the baseline that no longer reports coverage (deleted, build
// failure, no tests) fails the gate rather than reading as a pass.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
)

// coverLine matches the `go test -cover` summary for one package:
//
//	ok  	repro/internal/core	4.351s	coverage: 93.4% of statements
var coverLine = regexp.MustCompile(`^ok\s+(\S+)\s+\S+\s+coverage: ([0-9.]+)% of statements`)

func main() {
	baselinePath := flag.String("baseline", "cover_baseline.json", "committed package -> coverage-floor map")
	flag.Parse()

	baseline, err := readBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "soda-cover: %v\n", err)
		os.Exit(2)
	}
	pkgs := make([]string, 0, len(baseline))
	for pkg := range baseline {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)

	measured, err := runCover(pkgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "soda-cover: %v\n", err)
		os.Exit(2)
	}

	var failures []string
	for _, pkg := range pkgs {
		floor := baseline[pkg]
		got, ok := measured[pkg]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but reported no coverage", pkg))
			continue
		}
		fmt.Printf("soda-cover: %s %.1f%% (floor %.1f%%)\n", pkg, got, floor)
		if got < floor {
			failures = append(failures, fmt.Sprintf("%s: coverage %.1f%% fell below the %.1f%% floor", pkg, got, floor))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "soda-cover: FAIL %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Printf("soda-cover: statement coverage at or above the floor for all %d gated packages\n", len(pkgs))
}

// runCover executes one `go test -cover` invocation over the packages and
// returns the parsed per-package coverage percentages.
func runCover(pkgs []string) (map[string]float64, error) {
	args := append([]string{"test", "-cover", "-count=1"}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	os.Stdout.Write(raw)
	if err != nil {
		return nil, fmt.Errorf("go test -cover: %v", err)
	}
	measured := map[string]float64{}
	for _, line := range splitLines(string(raw)) {
		m := coverLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		measured[m[1]] = v
	}
	return measured, nil
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func readBaseline(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var baseline map[string]float64
	if err := json.Unmarshal(data, &baseline); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(baseline) == 0 {
		return nil, fmt.Errorf("%s: empty baseline", path)
	}
	return baseline, nil
}
