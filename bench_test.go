package repro

// The benchmarks in this file regenerate every table and figure of the
// paper's evaluation (see DESIGN.md §3 for the index). They are benchmarks
// rather than tests so that `go test -bench=.` produces the full experiment
// report in one run, with key quantities attached as benchmark metrics.
//
// Workload sizes follow experiments.DefaultScale; set SODA_EXPERIMENT_SCALE
// to multiply them. Each bench runs its experiment once per b.N loop; the
// experiments are deterministic, so b.N=1 (the default for slow benches)
// regenerates the artifact exactly.

import (
	"testing"

	"repro/internal/abr"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/units"
	"repro/internal/video"
)

func scaleForBench() experiments.Scale { return experiments.DefaultScale() }

func BenchmarkFigure01ViewingVsSwitching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure01(scaleForBench())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Fit.Slope, "fit-slope")
		b.ReportMetric(res.FractionAt20, "viewing-frac@20%switching")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFigure02BOLABoundaries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure02()
		b.ReportMetric(res.OnDemandSpread, "ondemand-spread-s")
		b.ReportMetric(res.LiveSpread, "live-spread-s")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFigure03RobustMPCPathology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure03()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.MPCRebufferEvents), "mpc-rebuffer-events")
		b.ReportMetric(float64(res.SODARebufferEvents), "soda-rebuffer-events")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFigure04TimeBasedFormulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure04()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFigure05DecisionDiagram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure05()
		b.ReportMetric(float64(res.WaitCells), "no-download-cells")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFigure06ExponentialDecay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure06()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.HeadMean, "head-distance")
		b.ReportMetric(res.TailMean, "tail-distance")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFigure07PredictorCorrelation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure07(scaleForBench())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.EMACorrelation[0], "ema-corr-near")
		b.ReportMetric(res.EMACorrelation[len(res.EMACorrelation)-1], "ema-corr-far")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFigure08ApproxVsBruteForce(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure08(scaleForBench())
		last := res.Mismatch[len(res.Mismatch)-1]
		b.ReportMetric(last[0], "K5-mismatch-low-weight")
		b.ReportMetric(last[len(last)-1], "K5-mismatch-high-weight")
		nodes := res.NodesPerSolve[len(res.NodesPerSolve)-1]
		b.ReportMetric(nodes[0], "K5-bb-nodes/solve")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFigure09DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure09(scaleForBench())
		if err != nil {
			b.Fatal(err)
		}
		for _, n := range res.Names {
			b.ReportMetric(n.MeanMbps, n.Name+"-mean-mbps")
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFigure10SimulationQoE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure10(scaleForBench())
		if err != nil {
			b.Fatal(err)
		}
		wins := 0
		for _, bucket := range res.Buckets {
			if res.Best(bucket) == "soda" {
				wins++
			}
		}
		b.ReportMetric(float64(wins), "soda-best-buckets")
		b.ReportMetric(res.Aggregates["4g"]["soda"].Score.Mean, "soda-4g-qoe")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFigure11NoiseRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure11(scaleForBench())
		if err != nil {
			b.Fatal(err)
		}
		soda := res.Scores["soda"]
		b.ReportMetric(soda[0], "soda-qoe-0noise")
		b.ReportMetric(soda[3], "soda-qoe-30noise")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFigure12Prototype(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure12(scaleForBench())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Aggregates["soda"].Score.Mean, "soda-qoe")
		b.ReportMetric(res.Aggregates["soda"].SwitchRate.Mean, "soda-switchrate")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFigure13Production(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure13(scaleForBench())
		if err != nil {
			b.Fatal(err)
		}
		for _, rep := range res.Reports {
			b.ReportMetric(100*rep.SwitchDelta, rep.Family+"-switch-%")
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkTable01Summary(b *testing.B) {
	scale := scaleForBench()
	for i := 0; i < b.N; i++ {
		fig10, err := experiments.Figure10(scale)
		if err != nil {
			b.Fatal(err)
		}
		fig12, err := experiments.Figure12(scale)
		if err != nil {
			b.Fatal(err)
		}
		table := experiments.Table01(fig10, fig12)
		if i == 0 {
			b.Log("\n" + table.Render())
		}
	}
}

func BenchmarkTheoremRegretVsHorizon(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TheoremRegret()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CompetitiveRatio[0], "ratio-K1")
		b.ReportMetric(res.CompetitiveRatio[len(res.CompetitiveRatio)-1], "ratio-K10")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkTheoremMonotoneApprox(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TheoremMonotone()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Violations[0], "violation-low-gamma")
		b.ReportMetric(res.Violations[len(res.Violations)-1], "violation-high-gamma")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

// --- Solver micro-benchmarks and ablations ------------------------------

// BenchmarkSolverMonotonic measures Algorithm 1's per-decision cost — the
// paper's deployability argument (about 200 sequences max in practice).
// Reported metrics expose the branch-and-bound work counters: nodes (stepCost
// evaluations) and memo hit rate per decision.
func BenchmarkSolverMonotonic(b *testing.B) {
	ctrl := core.New(core.DefaultConfig(), video.YouTube4K())
	ctx := benchCtx()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl.Decide(ctx)
	}
	b.StopTimer()
	st := ctrl.SolveStats()
	if st.MemoLookups > 0 {
		b.ReportMetric(float64(st.MemoHits)/float64(st.MemoLookups), "memo-hit-rate")
	}
	if st.Solves > 0 {
		b.ReportMetric(float64(st.Nodes)/float64(st.Solves), "nodes/solve")
	}
}

// BenchmarkSolverPruned isolates the branch-and-bound solver (CostModel.Solve,
// no Decide-level memo) across ladders and horizons, with pruning on and off.
// The nodes/op metric is the headline: pruning must cut evaluated nodes at
// least 3x at K>=5 while committing identical decisions (asserted by
// TestPruningNodeReduction and FuzzSolverEquivalence).
func BenchmarkSolverPruned(b *testing.B) {
	ladders := []struct {
		name  string
		build func() video.Ladder
		omega float64
	}{
		{"youtube4k", video.YouTube4K, 30},
		{"mobile", video.Mobile, 8},
	}
	for _, lad := range ladders {
		for _, k := range []int{3, 5, 8} {
			for _, pruned := range []bool{true, false} {
				name := lad.name + "/K" + string(rune('0'+k)) + "/pruned"
				if !pruned {
					name = lad.name + "/K" + string(rune('0'+k)) + "/exhaustive"
				}
				b.Run(name, func(b *testing.B) {
					cfg := core.DefaultConfig()
					cfg.DisablePruning = !pruned
					ladder := lad.build()
					m := core.NewCostModel(cfg, ladder, units.Seconds(20))
					maxRung := ladder.Len() - 1
					omegas := []units.Mbps{units.Mbps(lad.omega)}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						m.Solve(omegas, units.Seconds(11), 3, k, maxRung)
					}
					b.StopTimer()
					st := m.SolveStats()
					b.ReportMetric(float64(st.Nodes)/float64(st.Solves), "nodes/op")
					b.ReportMetric(float64(st.Pruned)/float64(st.Solves), "cuts/op")
				})
			}
		}
	}
}

// BenchmarkSolverBruteForce measures the exponential reference solver on the
// same decision, quantifying the two-orders-of-magnitude gap. The decide-level
// memo is disabled so repeated iterations measure the solve, not the cache.
func BenchmarkSolverBruteForce(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.UseBruteForce = true
	cfg.SolveMemoSize = 0
	ctrl := core.New(cfg, video.YouTube4K())
	ctx := benchCtx()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl.Decide(ctx)
	}
}

// BenchmarkAblationHorizon sweeps the planning horizon, the design knob
// Theorem 4.1 analyzes.
func BenchmarkAblationHorizon(b *testing.B) {
	for _, k := range []int{1, 3, 5} {
		b.Run(byK(k), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Horizon = k
			ctrl := core.New(cfg, video.YouTube4K())
			ctx := benchCtx()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctrl.Decide(ctx)
			}
		})
	}
}

func byK(k int) string {
	return map[int]string{1: "K1", 3: "K3", 5: "K5"}[k]
}

func benchCtx() *abr.Context {
	ladder := video.YouTube4K()
	return &abr.Context{
		Buffer:    units.Seconds(11),
		BufferCap: units.Seconds(20),
		PrevRung:  3,
		Ladder:    ladder,
		Predict:   func(units.Seconds) units.Mbps { return units.Mbps(30) },
	}
}

// --- Design-choice ablations on realized QoE -----------------------------

func runAblationBench(b *testing.B, run func(experiments.Scale) (*experiments.AblationResult, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := run(scaleForBench())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkAblationTargetFraction(b *testing.B) {
	runAblationBench(b, experiments.AblationTargetFraction)
}

func BenchmarkAblationEpsilon(b *testing.B) {
	runAblationBench(b, experiments.AblationEpsilon)
}

func BenchmarkAblationSwitchingWeight(b *testing.B) {
	runAblationBench(b, experiments.AblationSwitchingWeight)
}

func BenchmarkAblationHorizonQoE(b *testing.B) {
	runAblationBench(b, experiments.AblationHorizonQoE)
}

func BenchmarkAblationAbandonment(b *testing.B) {
	runAblationBench(b, experiments.AblationAbandonment)
}

func BenchmarkAblationPredictor(b *testing.B) {
	runAblationBench(b, experiments.AblationPredictor)
}

// BenchmarkUltraLowLatency runs the §8 future-work study: shrinking live
// budgets down to a few seconds.
func BenchmarkUltraLowLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.UltraLowLatency(scaleForBench())
		if err != nil {
			b.Fatal(err)
		}
		soda := res.PerController["soda"]
		b.ReportMetric(soda[0].Score.Mean, "soda-qoe-4s-budget")
		b.ReportMetric(soda[len(soda)-1].Score.Mean, "soda-qoe-20s-budget")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkOracleGap measures how much of the clairvoyant-optimal QoE each
// controller realizes (offline-optimal reference, 4G conditions).
func BenchmarkOracleGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.OracleGap(scaleForBench())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RealizedFraction["soda"], "soda-fraction-of-oracle")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}
