package repro

// The benchmarks in this file regenerate every table and figure of the
// paper's evaluation (see DESIGN.md §3 for the index). They are benchmarks
// rather than tests so that `go test -bench=.` produces the full experiment
// report in one run, with key quantities attached as benchmark metrics.
//
// Workload sizes follow experiments.DefaultScale; set SODA_EXPERIMENT_SCALE
// to multiply them. Each bench runs its experiment once per b.N loop; the
// experiments are deterministic, so b.N=1 (the default for slow benches)
// regenerates the artifact exactly.

import (
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/abr"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/flightrec"
	"repro/internal/httpseg"
	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/tracegen"
	"repro/internal/units"
	"repro/internal/video"
)

func scaleForBench() experiments.Scale { return experiments.DefaultScale() }

func BenchmarkFigure01ViewingVsSwitching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure01(scaleForBench())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Fit.Slope, "fit-slope")
		b.ReportMetric(res.FractionAt20, "viewing-frac@20%switching")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFigure02BOLABoundaries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure02()
		b.ReportMetric(res.OnDemandSpread, "ondemand-spread-s")
		b.ReportMetric(res.LiveSpread, "live-spread-s")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFigure03RobustMPCPathology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure03()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.MPCRebufferEvents), "mpc-rebuffer-events")
		b.ReportMetric(float64(res.SODARebufferEvents), "soda-rebuffer-events")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFigure04TimeBasedFormulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure04()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFigure05DecisionDiagram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure05()
		b.ReportMetric(float64(res.WaitCells), "no-download-cells")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFigure06ExponentialDecay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure06()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.HeadMean, "head-distance")
		b.ReportMetric(res.TailMean, "tail-distance")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFigure07PredictorCorrelation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure07(scaleForBench())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.EMACorrelation[0], "ema-corr-near")
		b.ReportMetric(res.EMACorrelation[len(res.EMACorrelation)-1], "ema-corr-far")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFigure08ApproxVsBruteForce(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure08(scaleForBench())
		last := res.Mismatch[len(res.Mismatch)-1]
		b.ReportMetric(last[0], "K5-mismatch-low-weight")
		b.ReportMetric(last[len(last)-1], "K5-mismatch-high-weight")
		nodes := res.NodesPerSolve[len(res.NodesPerSolve)-1]
		b.ReportMetric(nodes[0], "K5-bb-nodes/solve")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFigure09DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure09(scaleForBench())
		if err != nil {
			b.Fatal(err)
		}
		for _, n := range res.Names {
			b.ReportMetric(n.MeanMbps, n.Name+"-mean-mbps")
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFigure10SimulationQoE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure10(scaleForBench())
		if err != nil {
			b.Fatal(err)
		}
		wins := 0
		for _, bucket := range res.Buckets {
			if res.Best(bucket) == "soda" {
				wins++
			}
		}
		b.ReportMetric(float64(wins), "soda-best-buckets")
		b.ReportMetric(res.Aggregates["4g"]["soda"].Score.Mean, "soda-4g-qoe")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFigure11NoiseRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure11(scaleForBench())
		if err != nil {
			b.Fatal(err)
		}
		soda := res.Scores["soda"]
		b.ReportMetric(soda[0], "soda-qoe-0noise")
		b.ReportMetric(soda[3], "soda-qoe-30noise")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFigure12Prototype(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure12(scaleForBench())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Aggregates["soda"].Score.Mean, "soda-qoe")
		b.ReportMetric(res.Aggregates["soda"].SwitchRate.Mean, "soda-switchrate")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFigure13Production(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure13(scaleForBench())
		if err != nil {
			b.Fatal(err)
		}
		for _, rep := range res.Reports {
			b.ReportMetric(100*rep.SwitchDelta, rep.Family+"-switch-%")
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkTable01Summary(b *testing.B) {
	scale := scaleForBench()
	for i := 0; i < b.N; i++ {
		fig10, err := experiments.Figure10(scale)
		if err != nil {
			b.Fatal(err)
		}
		fig12, err := experiments.Figure12(scale)
		if err != nil {
			b.Fatal(err)
		}
		table := experiments.Table01(fig10, fig12)
		if i == 0 {
			b.Log("\n" + table.Render())
		}
	}
}

func BenchmarkTheoremRegretVsHorizon(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TheoremRegret()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CompetitiveRatio[0], "ratio-K1")
		b.ReportMetric(res.CompetitiveRatio[len(res.CompetitiveRatio)-1], "ratio-K10")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkTheoremMonotoneApprox(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TheoremMonotone()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Violations[0], "violation-low-gamma")
		b.ReportMetric(res.Violations[len(res.Violations)-1], "violation-high-gamma")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

// --- Solver micro-benchmarks and ablations ------------------------------

// BenchmarkSolverMonotonic measures Algorithm 1's per-decision cost — the
// paper's deployability argument (about 200 sequences max in practice).
// Reported metrics expose the branch-and-bound work counters: nodes (stepCost
// evaluations) and memo hit rate per decision.
func BenchmarkSolverMonotonic(b *testing.B) {
	ctrl := core.New(core.DefaultConfig(), video.YouTube4K())
	ctx := benchCtx()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl.Decide(ctx)
	}
	b.StopTimer()
	st := ctrl.SolveStats()
	if st.MemoLookups > 0 {
		b.ReportMetric(float64(st.MemoHits)/float64(st.MemoLookups), "memo-hit-rate")
	}
	if st.Solves > 0 {
		b.ReportMetric(float64(st.Nodes)/float64(st.Solves), "nodes/solve")
	}
}

// BenchmarkSolverPruned isolates the branch-and-bound solver (CostModel.Solve,
// no Decide-level memo) across ladders and horizons, with pruning on and off.
// The nodes/op metric is the headline: pruning must cut evaluated nodes at
// least 3x at K>=5 while committing identical decisions (asserted by
// TestPruningNodeReduction and FuzzSolverEquivalence).
func BenchmarkSolverPruned(b *testing.B) {
	ladders := []struct {
		name  string
		build func() video.Ladder
		omega float64
	}{
		{"youtube4k", video.YouTube4K, 30},
		{"mobile", video.Mobile, 8},
	}
	for _, lad := range ladders {
		for _, k := range []int{3, 5, 8} {
			for _, pruned := range []bool{true, false} {
				name := lad.name + "/K" + string(rune('0'+k)) + "/pruned"
				if !pruned {
					name = lad.name + "/K" + string(rune('0'+k)) + "/exhaustive"
				}
				b.Run(name, func(b *testing.B) {
					cfg := core.DefaultConfig()
					cfg.DisablePruning = !pruned
					ladder := lad.build()
					m := core.NewCostModel(cfg, ladder, units.Seconds(20))
					maxRung := ladder.Len() - 1
					omegas := []units.Mbps{units.Mbps(lad.omega)}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						m.Solve(omegas, units.Seconds(11), 3, k, maxRung)
					}
					b.StopTimer()
					st := m.SolveStats()
					b.ReportMetric(float64(st.Nodes)/float64(st.Solves), "nodes/op")
					b.ReportMetric(float64(st.Pruned)/float64(st.Solves), "cuts/op")
				})
			}
		}
	}
}

// BenchmarkSolverBruteForce measures the exponential reference solver on the
// same decision, quantifying the two-orders-of-magnitude gap. The decide-level
// memo is disabled so repeated iterations measure the solve, not the cache.
func BenchmarkSolverBruteForce(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.UseBruteForce = true
	cfg.SolveMemoSize = 0
	ctrl := core.New(cfg, video.YouTube4K())
	ctx := benchCtx()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl.Decide(ctx)
	}
}

// BenchmarkAblationHorizon sweeps the planning horizon, the design knob
// Theorem 4.1 analyzes.
func BenchmarkAblationHorizon(b *testing.B) {
	for _, k := range []int{1, 3, 5} {
		b.Run(byK(k), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Horizon = k
			ctrl := core.New(cfg, video.YouTube4K())
			ctx := benchCtx()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctrl.Decide(ctx)
			}
		})
	}
}

func byK(k int) string {
	return map[int]string{1: "K1", 3: "K3", 5: "K5"}[k]
}

func benchCtx() *abr.Context {
	ladder := video.YouTube4K()
	return &abr.Context{
		Buffer:    units.Seconds(11),
		BufferCap: units.Seconds(20),
		PrevRung:  3,
		Ladder:    ladder,
		Predict:   func(units.Seconds) units.Mbps { return units.Mbps(30) },
	}
}

// --- Shared solve cache ---------------------------------------------------

// benchStream precomputes n deterministic decision contexts spanning many
// quantized planning states, so the cache benchmarks measure Decide and not
// context construction.
func benchStream(ladder video.Ladder, n int) []*abr.Context {
	rng := rand.New(rand.NewPCG(77, 101))
	out := make([]*abr.Context, n)
	for i := range out {
		omega := units.Mbps(1 + rng.Float64()*55)
		out[i] = &abr.Context{
			Buffer:        units.Seconds(rng.Float64() * 17),
			BufferCap:     units.Seconds(20),
			PrevRung:      rng.IntN(ladder.Len()+1) - 1,
			Ladder:        ladder,
			SegmentIndex:  i % 300,
			TotalSegments: 300,
			Predict:       func(units.Seconds) units.Mbps { return omega },
		}
	}
	return out
}

// BenchmarkSharedCacheParallel measures the shared cache under concurrent
// decision traffic: a pool of pre-warmed controllers (as a fleet of sessions
// would be) decides over a fixed context stream via b.RunParallel. The cache
// is warmed before the timer starts, so the loop exercises the steady state —
// lookups and hits across the shard mutexes, allocation-free.
func BenchmarkSharedCacheParallel(b *testing.B) {
	ladder := video.YouTube4K()
	cache := core.NewSolveCache(1 << 15)
	cfg := core.DefaultConfig()
	cfg.SharedCache = cache
	const streamMask = 1<<12 - 1
	ctxs := benchStream(ladder, streamMask+1)
	warm := core.New(cfg, ladder)
	for _, ctx := range ctxs {
		warm.Decide(ctx)
	}
	pool := make(chan *core.Controller, 32)
	for i := 0; i < cap(pool); i++ {
		pool <- core.New(cfg, ladder)
	}
	warmSt := cache.Stats()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ctrl := <-pool
		defer func() { pool <- ctrl }()
		i := 0
		for pb.Next() {
			ctrl.Decide(ctxs[i&streamMask])
			i++
		}
	})
	b.StopTimer()
	// Report the timed loop's own traffic, net of the warm-up pass.
	st := cache.Stats()
	if lookups := st.Lookups - warmSt.Lookups; lookups > 0 {
		b.ReportMetric(100*float64(st.Hits-warmSt.Hits)/float64(lookups), "shared-hit-%")
	}
	b.ReportMetric(float64(st.Conflicts-warmSt.Conflicts), "shared-conflicts")
}

// BenchmarkDecisionTable compares the warm cached decision path (per-session
// memo plus the fleet solve cache, the dataset steady state) against the
// compiled decision-table path at the same fleetQuantum, over the same
// pre-warmed context stream and controller-pool setup as
// BenchmarkSharedCacheParallel. Controllers Reset at every session boundary
// (the stream's 300-segment period), as the dataset fleet does: each cached
// session restarts memo-cold and pays the state-key hash plus a shard
// lookup on most decisions, while the table arm quantizes and reads one
// int8 from a flat array regardless of session age. Reset flushes the memo
// in place, so both timed loops stay allocation-free. soda-bench gates the
// ns/op ratio (table must be at least -min-table-speedup times faster) and
// both arms at 0 allocs/op; internal/abrtest.TableConformance separately
// proves the two paths decide bit-identically.
func BenchmarkDecisionTable(b *testing.B) {
	ladder := video.YouTube4K()
	const streamMask = 1<<12 - 1
	ctxs := benchStream(ladder, streamMask+1)
	arms := []struct {
		name string
		cfg  core.Config
	}{
		{"cached", func() core.Config {
			cfg := core.DefaultConfig()
			cfg.MemoQuantum = fleetQuantum
			cfg.SharedCache = core.NewSolveCache(1 << 15)
			return cfg
		}()},
		{"table", func() core.Config {
			cfg := core.DefaultConfig()
			cfg.DecisionTable = core.NewDecisionTables()
			cfg.TableQuantum = fleetQuantum
			return cfg
		}()},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			warm := core.New(arm.cfg, ladder)
			for _, ctx := range ctxs {
				warm.Decide(ctx)
			}
			pool := make(chan *core.Controller, 32)
			for i := 0; i < cap(pool); i++ {
				ctrl := core.New(arm.cfg, ladder)
				ctrl.Decide(ctxs[0]) // bind shared state outside the timed loop
				pool <- ctrl
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				ctrl := <-pool
				defer func() { pool <- ctrl }()
				i := 0
				for pb.Next() {
					if i%300 == 0 {
						ctrl.Reset() // session boundary: next session starts memo-cold
					}
					ctrl.Decide(ctxs[i&streamMask])
					i++
				}
			})
			b.StopTimer()
			var st core.SolveStats
			for i := 0; i < cap(pool); i++ {
				st.Add((<-pool).SolveStats())
			}
			if st.TableLookups > 0 {
				b.ReportMetric(100*float64(st.TableHits)/float64(st.TableLookups), "table-hit-%")
			}
		})
	}
}

// datasetSolveTally sums per-session solver work across a dataset run; the
// sim.RunDataset result hook runs on worker goroutines, hence the lock.
type datasetSolveTally struct {
	mu        sync.Mutex
	sessions  int
	decisions uint64
	stats     core.SolveStats
}

func (t *datasetSolveTally) hook(_ int, ctrl abr.Controller, res sim.Result) {
	c, ok := ctrl.(*core.Controller)
	if !ok {
		return
	}
	s := c.SolveStats()
	t.mu.Lock()
	t.sessions++
	t.decisions += uint64(len(res.Rungs))
	t.stats.Add(s)
	t.mu.Unlock()
}

// fleetQuantum is the memo quantization the dataset benchmark fleet runs at:
// 0.5 s of buffer and 0.5 Mb/s of prediction. The default 0.01 quantum keys
// states so finely that sessions rarely land on each other's entries (the
// shared cache still helps, but only ~6% at default Scale); a fleet that
// wants cross-session reuse coarsens the quantum, which is safe because the
// controller solves *at* the quantized state (decisions stay a pure function
// of the key) and SODA is robust to far larger prediction error than 0.5 Mb/s
// (Figure 11). Both arms of the benchmark use the same quantum, so the
// reduction isolates the cache, not the quantization.
const fleetQuantum = 0.5

// BenchmarkDatasetSharedCache is the dataset-scale comparison: the
// default-Scale Puffer bucket simulated end to end by SODA sessions, without
// ("off") and with ("on") a fleet-wide solve cache, and with a compiled
// decision table ("table"), all at fleetQuantum. The headline metrics are
// solves/session (the work the cache or table eliminates — the soda-bench
// gate asserts the on-arm needs at most half the off-arm's solves) and
// ns/decision at dataset scale; decisions are bit-identical across all three
// arms per the internal/abrtest shared-cache and decision-table conformance
// contracts. The caches start cold inside the timed loop (warming is what
// they do at fleet scale); the table arm compiles eagerly outside it, as a
// fleet deployment compiles at boot via CompileTable.
func BenchmarkDatasetSharedCache(b *testing.B) {
	scale := scaleForBench()
	ds, err := tracegen.Generate(tracegen.Puffer(), scale.SessionsPerDataset, scale.SessionSeconds, scale.Seed)
	if err != nil {
		b.Fatal(err)
	}
	ladder := video.YouTube4K()
	for _, mode := range []string{"off", "on", "table"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			var tables *core.DecisionTables
			if mode == "table" {
				tables = core.NewDecisionTables()
				cfg := core.DefaultConfig()
				cfg.TableQuantum = fleetQuantum
				if _, err := tables.CompileTable(cfg, ladder, units.Seconds(20)); err != nil {
					b.Fatal(err)
				}
			}
			var tally *datasetSolveTally
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var cache *core.SolveCache
				if mode == "on" {
					cache = core.NewSolveCache(1 << 16)
				}
				tally = &datasetSolveTally{}
				factory := func() (abr.Controller, predictor.Predictor) {
					cfg := core.DefaultConfig()
					cfg.MemoQuantum = fleetQuantum
					cfg.SharedCache = cache
					if tables != nil {
						cfg.DecisionTable = tables
						cfg.TableQuantum = fleetQuantum
					}
					return core.New(cfg, ladder), predictor.NewEMA(units.Seconds(4))
				}
				if _, err := sim.RunDataset(ds.Sessions, factory, sim.Config{
					Ladder:         ladder,
					BufferCap:      units.Seconds(20),
					SessionSeconds: scale.SessionSeconds,
					OnResult:       tally.hook,
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if tally.sessions > 0 {
				b.ReportMetric(float64(tally.stats.Solves)/float64(tally.sessions), "solves/session")
			}
			if tally.decisions > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(tally.decisions)/float64(b.N), "ns/decision")
			}
			if tally.stats.SharedLookups > 0 {
				b.ReportMetric(100*float64(tally.stats.SharedHits)/float64(tally.stats.SharedLookups), "shared-hit-%")
			}
			if tally.stats.TableLookups > 0 {
				b.ReportMetric(100*float64(tally.stats.TableHits)/float64(tally.stats.TableLookups), "table-hit-%")
			}
		})
	}
}

// --- Telemetry hot path ---------------------------------------------------

// The telemetry instruments sit on the per-decision hot path of every
// instrumented harness, so they must not allocate. The four micro-benchmarks
// below are gated at exactly 0 allocs/op by cmd/soda-bench (bench_baseline
// entries telemetry-*), and BenchmarkTelemetryOverhead bounds the end-to-end
// cost at <=5% of the uninstrumented decision loop.

func BenchmarkTelemetryCounter(b *testing.B) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("bench_events_total", "benchmark counter", telemetry.None)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkTelemetryHistogram(b *testing.B) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("bench_level_seconds", "benchmark histogram", telemetry.USeconds,
		[]float64{0.5, 1, 2, 4, 8, 16})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i&31) * 0.6)
	}
}

func BenchmarkTelemetryRingAppend(b *testing.B) {
	ring := telemetry.NewRing(telemetry.DefaultRingCapacity)
	ev := telemetry.DecisionEvent{Session: 1, Rung: 3, Buffer: units.Seconds(11), Throughput: units.Mbps(30), Bitrate: units.Mbps(8.1)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Segment = int32(i)
		ring.Append(ev)
	}
}

func BenchmarkTelemetryRecorder(b *testing.B) {
	col := telemetry.NewCollector(nil, telemetry.DefaultRingCapacity)
	rec := col.StartSession(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := rec.Start()
		ev.Segment = int32(i)
		ev.Rung = 3
		ev.Buffer = 11
		ev.Throughput = 30
		ev.Bitrate = 8.1
		rec.Commit()
	}
}

// BenchmarkTelemetryOverhead runs the same default-Scale Puffer dataset as
// BenchmarkDatasetSharedCache with telemetry detached ("off") and attached
// ("on"). The arms are PAIRED inside one timed loop, alternating which runs
// first, so slow drift on a shared machine cancels instead of drowning a
// few-percent signal. The headline "overhead-%" metric — what the soda-bench
// gate bounds at 5% — compares the MINIMUM ns/decision of each arm: timer
// noise, GC pauses and scheduler stalls only ever inflate a sample, so over
// enough alternating runs each arm's min converges to its true floor and a
// stall landing in any single run cannot move the gate. The median of the
// per-pair overheads is reported alongside as a dispersion check (a median
// far from the min-based figure means the run count was too low to trust).
// internal/abrtest.TelemetryConformance separately proves the decisions
// themselves are bit-identical.
func BenchmarkTelemetryOverhead(b *testing.B) {
	scale := scaleForBench()
	ds, err := tracegen.Generate(tracegen.Puffer(), scale.SessionsPerDataset, scale.SessionSeconds, scale.Seed)
	if err != nil {
		b.Fatal(err)
	}
	ladder := video.YouTube4K()
	// Each arm sample runs the dataset several times back to back: one pass
	// is ~tens of milliseconds, short enough that a single scheduler-steal
	// burst on a shared runner moves a pair by several percent. Averaging
	// inside the sample shrinks that variance where robust statistics over
	// noisy pairs cannot.
	const passesPerArm = 3
	runArm := func(col *telemetry.Collector) (decisions uint64, elapsed time.Duration) {
		tally := &datasetSolveTally{}
		factory := func() (abr.Controller, predictor.Predictor) {
			return core.New(core.DefaultConfig(), ladder), predictor.NewEMA(units.Seconds(4))
		}
		start := time.Now()
		for pass := 0; pass < passesPerArm; pass++ {
			if _, err := sim.RunDataset(ds.Sessions, factory, sim.Config{
				Ladder:         ladder,
				BufferCap:      units.Seconds(20),
				SessionSeconds: scale.SessionSeconds,
				OnResult:       tally.hook,
				Telemetry:      col,
			}); err != nil {
				b.Fatal(err)
			}
		}
		return tally.decisions, time.Since(start)
	}
	// One long-lived collector for the whole benchmark, as a fleet would run.
	col := telemetry.NewCollector(nil, telemetry.DefaultRingCapacity)
	perDecision := func(d uint64, e time.Duration) float64 {
		return float64(e.Nanoseconds()) / float64(d)
	}
	minOff, minOn := math.Inf(1), math.Inf(1)
	var pairOverheads []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var off, on float64
		if i%2 == 0 {
			off = perDecision(runArm(nil))
			on = perDecision(runArm(col))
		} else {
			on = perDecision(runArm(col))
			off = perDecision(runArm(nil))
		}
		minOff = math.Min(minOff, off)
		minOn = math.Min(minOn, on)
		pairOverheads = append(pairOverheads, 100*(on-off)/off)
		if col.Decisions.Value() == 0 {
			b.Fatal("telemetry attached but no decisions recorded")
		}
	}
	b.StopTimer()
	if n := len(pairOverheads); n > 0 {
		sort.Float64s(pairOverheads)
		median := pairOverheads[n/2]
		if n%2 == 0 {
			median = (pairOverheads[n/2-1] + pairOverheads[n/2]) / 2
		}
		b.ReportMetric(minOff, "ns/decision-off")
		b.ReportMetric(minOn, "ns/decision-on")
		b.ReportMetric(100*(minOn-minOff)/minOff, "overhead-%")
		b.ReportMetric(median, "overhead-median-%")
	}
}

// --- Flight recorder: hot-path cost and end-to-end overhead ---------------
//
// The flight-recorder hot path is two calls: Recorder.Record (a seqlock ring
// store) and Watchdog.Observe (branchy integer detectors over per-session
// watch state). Both are gated at 0 allocs/op in bench_baseline.json, and
// BenchmarkFlightRecOverhead bounds the end-to-end watchdog cost at <=5% of
// the uninstrumented decision loop with the same paired-minimum methodology
// as BenchmarkTelemetryOverhead.

func BenchmarkFlightRecRecord(b *testing.B) {
	rec := flightrec.NewRecorder(nil, 0)
	start := rec.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Record(flightrec.StageDecide, int32(i&1023), start, int64(i&255), true)
	}
}

func BenchmarkFlightRecWatchdogObserve(b *testing.B) {
	w := flightrec.NewWatchdog(nil, flightrec.WatchdogConfig{})
	var watch flightrec.SessionWatch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Sweep the buffer through the underrun band and alternate rungs so
		// every detector branch stays hot (and occasionally fires).
		buffer := units.Seconds(float64(i&31) * 0.7)
		w.Observe(&watch, 1, units.Seconds(float64(i)), buffer, int16(i&3), int16((i>>1)&3))
	}
}

// BenchmarkFlightRecOverhead runs the default-Scale Puffer dataset with the
// QoE-consistency watchdog detached ("off") and attached ("on"), paired and
// alternating inside one timed loop exactly like BenchmarkTelemetryOverhead
// (see that benchmark's comment for why the gate compares per-arm minima).
// internal/abrtest.FlightRecConformance separately proves the decisions are
// bit-identical with the watchdog attached.
func BenchmarkFlightRecOverhead(b *testing.B) {
	scale := scaleForBench()
	ds, err := tracegen.Generate(tracegen.Puffer(), scale.SessionsPerDataset, scale.SessionSeconds, scale.Seed)
	if err != nil {
		b.Fatal(err)
	}
	ladder := video.YouTube4K()
	const passesPerArm = 3
	runArm := func(w *flightrec.Watchdog) (decisions uint64, elapsed time.Duration) {
		tally := &datasetSolveTally{}
		factory := func() (abr.Controller, predictor.Predictor) {
			return core.New(core.DefaultConfig(), ladder), predictor.NewEMA(units.Seconds(4))
		}
		start := time.Now()
		for pass := 0; pass < passesPerArm; pass++ {
			if _, err := sim.RunDataset(ds.Sessions, factory, sim.Config{
				Ladder:         ladder,
				BufferCap:      units.Seconds(20),
				SessionSeconds: scale.SessionSeconds,
				OnResult:       tally.hook,
				Watchdog:       w,
			}); err != nil {
				b.Fatal(err)
			}
		}
		return tally.decisions, time.Since(start)
	}
	// One long-lived watchdog for the whole benchmark, as a fleet would run.
	watchdog := flightrec.NewWatchdog(nil, flightrec.WatchdogConfig{})
	perDecision := func(d uint64, e time.Duration) float64 {
		return float64(e.Nanoseconds()) / float64(d)
	}
	minOff, minOn := math.Inf(1), math.Inf(1)
	var pairOverheads []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var off, on float64
		if i%2 == 0 {
			off = perDecision(runArm(nil))
			on = perDecision(runArm(watchdog))
		} else {
			on = perDecision(runArm(watchdog))
			off = perDecision(runArm(nil))
		}
		minOff = math.Min(minOff, off)
		minOn = math.Min(minOn, on)
		pairOverheads = append(pairOverheads, 100*(on-off)/off)
	}
	b.StopTimer()
	if n := len(pairOverheads); n > 0 {
		sort.Float64s(pairOverheads)
		median := pairOverheads[n/2]
		if n%2 == 0 {
			median = (pairOverheads[n/2-1] + pairOverheads[n/2]) / 2
		}
		b.ReportMetric(minOff, "ns/decision-off")
		b.ReportMetric(minOn, "ns/decision-on")
		b.ReportMetric(100*(minOn-minOff)/minOff, "overhead-%")
		b.ReportMetric(median, "overhead-median-%")
	}
}

// --- Design-choice ablations on realized QoE -----------------------------

func runAblationBench(b *testing.B, run func(experiments.Scale) (*experiments.AblationResult, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := run(scaleForBench())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkAblationTargetFraction(b *testing.B) {
	runAblationBench(b, experiments.AblationTargetFraction)
}

func BenchmarkAblationEpsilon(b *testing.B) {
	runAblationBench(b, experiments.AblationEpsilon)
}

func BenchmarkAblationSwitchingWeight(b *testing.B) {
	runAblationBench(b, experiments.AblationSwitchingWeight)
}

func BenchmarkAblationHorizonQoE(b *testing.B) {
	runAblationBench(b, experiments.AblationHorizonQoE)
}

func BenchmarkAblationAbandonment(b *testing.B) {
	runAblationBench(b, experiments.AblationAbandonment)
}

func BenchmarkAblationPredictor(b *testing.B) {
	runAblationBench(b, experiments.AblationPredictor)
}

// BenchmarkUltraLowLatency runs the §8 future-work study: shrinking live
// budgets down to a few seconds.
func BenchmarkUltraLowLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.UltraLowLatency(scaleForBench())
		if err != nil {
			b.Fatal(err)
		}
		soda := res.PerController["soda"]
		b.ReportMetric(soda[0].Score.Mean, "soda-qoe-4s-budget")
		b.ReportMetric(soda[len(soda)-1].Score.Mean, "soda-qoe-20s-budget")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkOracleGap measures how much of the clairvoyant-optimal QoE each
// controller realizes (offline-optimal reference, 4G conditions).
func BenchmarkOracleGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.OracleGap(scaleForBench())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RealizedFraction["soda"], "soda-fraction-of-oracle")
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

// --- Fleet-scale simulation -----------------------------------------------

// BenchmarkFleetSim drives the struct-of-arrays fleet simulator at host
// scale: 100k concurrent virtual players held in internal/arena slabs,
// advanced by per-worker hierarchical time-wheels over segment-completion
// events, every decision running the real controller on the compiled-table
// path. The "single" arm runs the reference single-session simulator
// (sim.Run) at the same controller configuration and reports its ns/decision
// — the figure the fleet is gated against: cmd/soda-bench requires the fleet
// arm, in the same run, to sustain at least the baseline FleetSim entry's
// min_sessions with ns/decision at most max_ns_ratio times the single arm's,
// at exactly 0 allocs/op (the steady fleet path must generate no garbage, or
// GC owns the host long before 100k sessions do).
func BenchmarkFleetSim(b *testing.B) {
	ladder := video.Mobile()
	const sessionSeconds = 300
	b.Run("single", func(b *testing.B) {
		tr, err := tracegen.Puffer().Session(units.Seconds(sessionSeconds), 17, 0)
		if err != nil {
			b.Fatal(err)
		}
		tables := core.NewDecisionTables()
		var decisions uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := core.DefaultConfig()
			cfg.SolveMemoSize = 0
			cfg.DecisionTable = tables
			cfg.TableQuantum = fleetQuantum
			res, err := sim.Run(tr, sim.Config{
				Ladder:         ladder,
				BufferCap:      units.Seconds(20),
				SessionSeconds: units.Seconds(sessionSeconds),
				Controller:     core.New(cfg, ladder),
				Predictor:      predictor.NewEMA(units.Seconds(4)),
			})
			if err != nil {
				b.Fatal(err)
			}
			decisions += uint64(len(res.Rungs) + res.Waits)
		}
		b.StopTimer()
		if decisions > 0 {
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(decisions), "ns/decision")
		}
	})
	b.Run("fleet", func(b *testing.B) {
		f, err := sim.NewFleet(sim.FleetConfig{
			Sessions: 100_000,
			Ladder:   ladder,
			Seed:     17,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		// Warm-up window: first decides compile/bind the shared tables and the
		// cohort reaches its steady segment cadence before the timer starts.
		f.Advance(units.Seconds(10))
		start := f.Report()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.Advance(units.Seconds(5))
		}
		b.StopTimer()
		rep := f.Report()
		decisions := rep.Decisions - start.Decisions
		if decisions == 0 {
			b.Fatal("fleet made no decisions")
		}
		b.ReportMetric(float64(rep.Sessions), "sessions")
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(decisions), "ns/decision")
	})
}

// BenchmarkSessionTableDecide measures the full control-plane decide path —
// rate-limit check, in-flight semaphore, session-table acquire, the decide
// critical section, release, latency histogram — on a warm session with the
// compiled tables and shared cache on. This is soda-server's steady state,
// and it must stay allocation-free: per-decide garbage is what caps how many
// concurrent sessions one host can carry (gated at 0 allocs/op in
// bench_baseline.json).
func BenchmarkSessionTableDecide(b *testing.B) {
	svc, err := httpseg.NewDecideService(video.Prototype(), httpseg.DecideOptions{
		CacheEntries:       1 << 12,
		TableQuantum:       0.5,
		SessionMemoEntries: -1, // the fleet-scale setting
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	req := httpseg.DecideRequest{
		Session:    "bench",
		Buffer:     units.Seconds(8),
		Throughput: units.Mbps(1.5), // in the compiled table's domain
		Segment:    -1,
	}
	if res := svc.Decide(&req); res.Status != httpseg.StatusOK {
		b.Fatalf("warmup decide rejected: %d", res.Status)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.Buffer = units.Seconds(float64(i&15) + 2)
		if res := svc.Decide(&req); res.Status != httpseg.StatusOK {
			b.Fatalf("decide rejected: %d", res.Status)
		}
	}
}
