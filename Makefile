# Developer entry points. CI runs the same commands (.github/workflows/ci.yml);
# `make ci` reproduces the full pipeline locally, in the same order.

GO ?= go
GOVULNCHECK_VERSION ?= v1.1.3

.PHONY: all ci lint test test-shuffle conformance flightrec-conformance arena-conformance smoke session-race cover bench bench-gate loadgen-gate fuzz build buildrelease build386 vuln

all: lint test

ci: lint build buildrelease build386 test test-shuffle conformance flightrec-conformance arena-conformance smoke session-race cover fuzz loadgen-gate bench-gate vuln

build:
	$(GO) build ./...

# buildrelease keeps the trimpath release build green so a tagged build can
# never fail for flag reasons alone.
buildrelease:
	GOFLAGS=-trimpath $(GO) build ./...

# build386 cross-compiles for a real 32-bit target, backing the atomicfield
# analyzer's 64-bit alignment findings with an actual GOARCH=386 layout.
build386:
	GOARCH=386 $(GO) build ./...

# lint runs gofmt (fail on any unformatted file) and soda-vet, which bundles
# the repository's custom analyzers (detrange, purecontroller, unitsafe,
# nofloat64wire, guardedby, atomicfield, noalloc) with the standard go vet
# passes, over source and test files. See DESIGN.md "Static invariants".
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) run ./cmd/soda-vet ./...

test:
	$(GO) test -race ./...

# test-shuffle randomises test order to flush out inter-test state leaks;
# the seed prints on failure for replay with -shuffle=<seed>.
test-shuffle:
	$(GO) test -shuffle=on ./...

# conformance re-runs the shared solve-cache, decision-table, telemetry and
# arena bit-identity contracts under the race detector on their own, so a
# cache, table, telemetry or arena regression fails with a named step even
# though `make test` also covers them as part of the full suite.
conformance:
	$(GO) test -race -run 'TestSodaSharedCache|TestSodaDecisionTable|TestSodaTelemetry|TestSodaArena|TestSodaFlightRec' ./internal/abrtest

# flightrec-conformance re-runs the flight-recorder purity contract under the
# race detector on its own: sessions observed by the QoE-consistency watchdog
# (every registered ladder concurrently against one shared watchdog) must
# decide bit-identically to bare sessions, and the recorder/incident-log
# internals must be race-clean.
flightrec-conformance:
	$(GO) test -race ./internal/flightrec
	$(GO) test -race -run 'TestSodaFlightRec' ./internal/abrtest

# arena-conformance re-runs the struct-of-arrays session arena's contracts
# under the race detector on their own: the handle-lifecycle suite (free-list
# reuse, ABA generation staleness, growth at capacity), the proof that
# arena-backed controllers — including ones on recycled slots — decide
# bit-identically to heap-backed ones, and the serving-path evict→recreate
# bit-identity on a recycled slot.
arena-conformance:
	$(GO) test -race ./internal/arena
	$(GO) test -race -run 'TestSodaArenaConformance' ./internal/abrtest
	$(GO) test -race -run 'TestEvictRecreateRecycledSlot' ./internal/httpseg

# smoke boots the soda-server introspection mux against a test manifest,
# drives /decide sessions, and validates that /metrics serves parseable
# Prometheus text exposition (no duplicate families) and /debug/decisions
# streams JSONL.
smoke:
	$(GO) test -race -run 'TestServerEndpointSmoke' ./cmd/soda-server

# session-race re-runs the control plane's lifecycle paths under the race
# detector on their own: sharded session-table TTL sweeps, token-bucket
# admission, inflight shedding, graceful drain, and the conformance proof
# that idle eviction never changes decisions.
session-race:
	$(GO) test -race ./internal/sessiontable
	$(GO) test -race -run 'TestSessionTableConformance|TestSessionChurnSteadyState|TestDecideService' ./internal/httpseg

# cover fails when the statement coverage of a package listed in
# cover_baseline.json drops below its committed floor.
cover:
	$(GO) run ./cmd/soda-cover

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-gate runs the BenchmarkSolver* suite plus the shared solve-cache,
# decision-table, telemetry, flight-recorder, session-table and
# fleet-simulator benchmarks with fixed iteration budgets and writes
# BENCH_pr10.json. It fails if nodes/solve regresses more than 10% against
# the committed bench_baseline.json, if allocs/op regresses at all (the
# telemetry, flight-recorder, decision-table, session decide and fleet event
# hot paths are pinned at 0), if the dataset-scale shared cache stops cutting
# solver invocations by at least 2x, if attaching telemetry or the QoE
# watchdog costs more than 5% ns/decision at dataset scale, if the compiled
# decision table stops beating the cached path by at least 5x per decision,
# if the embedded open-loop loadgen run breaches the p99 decide-latency,
# rejection or QoE-incident thresholds in the baseline's LoadgenOpenLoop
# entry, or if the fleet simulator drops below the FleetSim entry's session
# floor or ns/decision ratio against the single-session path.
bench-gate:
	$(GO) run ./cmd/soda-bench -out BENCH_pr10.json

# loadgen-gate is the standalone loadgen smoke + p99 gate: open-loop Poisson
# arrivals against an in-process DecideService at fleet scale, gated on the
# LoadgenOpenLoop thresholds (p99 decide latency, rejection rate, QoE
# incidents per 1k sessions) recorded in bench_baseline.json.
loadgen-gate:
	$(GO) run ./cmd/soda-loadgen -mode open -sessions 50000 -requests 75000 -rps 40000 \
		-session-memo -1 -baseline bench_baseline.json -out BENCH_pr10_loadgen.json

# fuzz is the CI smoke budget; raise -fuzztime locally for a real campaign.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSolverEquivalence -fuzztime 20s ./internal/core

# vuln mirrors the CI govulncheck step: pinned version, and a visible skip
# instead of a failure when the module proxy is unreachable (hermetic hosts).
vuln:
	@if ! $(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION); then \
		echo "notice: govulncheck skipped: module proxy unreachable; vulnerability scan not performed"; \
	else \
		govulncheck ./... || { \
			echo "notice: govulncheck failed; if this host is offline the vulnerability database is unreachable"; \
			exit 1; }; \
	fi
