# Developer entry points. CI runs the same commands (.github/workflows/ci.yml).

GO ?= go

.PHONY: all lint test bench fuzz build

all: lint test

build:
	$(GO) build ./...

# lint runs gofmt (fail on any unformatted file) and soda-vet, which bundles
# the repository's custom analyzers (detrange, purecontroller, unitsafe) with
# the standard go vet passes. See DESIGN.md "Static invariants".
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) run ./cmd/soda-vet ./...

test:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# fuzz is the CI smoke budget; raise -fuzztime locally for a real campaign.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSolverEquivalence -fuzztime 20s ./internal/core
