# Developer entry points. CI runs the same commands (.github/workflows/ci.yml);
# `make ci` reproduces the full pipeline locally, in the same order.

GO ?= go
GOVULNCHECK_VERSION ?= v1.1.3

.PHONY: all ci lint test conformance smoke cover bench bench-gate fuzz build build386 vuln

all: lint test

ci: lint build build386 test conformance smoke cover fuzz bench-gate vuln

build:
	$(GO) build ./...

# build386 cross-compiles for a real 32-bit target, backing the atomicfield
# analyzer's 64-bit alignment findings with an actual GOARCH=386 layout.
build386:
	GOARCH=386 $(GO) build ./...

# lint runs gofmt (fail on any unformatted file) and soda-vet, which bundles
# the repository's custom analyzers (detrange, purecontroller, unitsafe,
# nofloat64wire, guardedby, atomicfield, noalloc) with the standard go vet
# passes, over source and test files. See DESIGN.md "Static invariants".
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) run ./cmd/soda-vet ./...

test:
	$(GO) test -race ./...

# conformance re-runs the shared solve-cache, decision-table and telemetry
# bit-identity contracts under the race detector on their own, so a cache,
# table or telemetry regression fails with a named step even though
# `make test` also covers them as part of the full suite.
conformance:
	$(GO) test -race -run 'TestSodaSharedCache|TestSodaDecisionTable|TestSodaTelemetry' ./internal/abrtest

# smoke boots the soda-server introspection mux against a test manifest,
# drives /decide sessions, and validates that /metrics serves parseable
# Prometheus text exposition (no duplicate families) and /debug/decisions
# streams JSONL.
smoke:
	$(GO) test -race -run 'TestServerEndpointSmoke' ./cmd/soda-server

# cover fails when the statement coverage of a package listed in
# cover_baseline.json drops below its committed floor.
cover:
	$(GO) run ./cmd/soda-cover

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-gate runs the BenchmarkSolver* suite plus the shared solve-cache,
# decision-table and telemetry benchmarks with fixed iteration budgets and
# writes BENCH_pr6.json. It fails if nodes/solve regresses more than 10%
# against the committed bench_baseline.json, if allocs/op regresses at all
# (the telemetry and decision-table hot paths are pinned at 0), if the
# dataset-scale shared cache stops cutting solver invocations by at least
# 2x, if attaching telemetry costs more than 5% ns/decision at dataset
# scale, or if the compiled decision table stops beating the cached path by
# at least 5x per decision.
bench-gate:
	$(GO) run ./cmd/soda-bench -out BENCH_pr6.json

# fuzz is the CI smoke budget; raise -fuzztime locally for a real campaign.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSolverEquivalence -fuzztime 20s ./internal/core

# vuln mirrors the CI govulncheck step: pinned version, and a visible skip
# instead of a failure when the module proxy is unreachable (hermetic hosts).
vuln:
	@if ! $(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION); then \
		echo "notice: govulncheck skipped: module proxy unreachable; vulnerability scan not performed"; \
	else \
		govulncheck ./... || { \
			echo "notice: govulncheck failed; if this host is offline the vulnerability database is unreachable"; \
			exit 1; }; \
	fi
