package repro

import (
	"math"
	"testing"
)

func TestFacadeControllers(t *testing.T) {
	names := Controllers()
	want := []string{"soda", "bola", "dynamic", "hyb", "mpc", "robustmpc", "fugu", "rl", "prod-baseline"}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("controller %q not registered (have %v)", w, names)
		}
	}
	if _, err := NewController("soda", LadderYouTube4K()); err != nil {
		t.Fatal(err)
	}
	if _, err := NewController("bogus", LadderYouTube4K()); err == nil {
		t.Error("bogus controller accepted")
	}
}

func TestFacadeSimulate(t *testing.T) {
	soda := NewSODA(DefaultSODAConfig(), LadderMobile())
	res, err := Simulate(ConstantTrace(10, 120), SimulationConfig{
		Ladder:     LadderMobile(),
		BufferCap:  Seconds(20),
		Controller: soda,
		Predictor:  NewEMAPredictor(Seconds(4)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Segments != 60 {
		t.Errorf("segments = %d", res.Metrics.Segments)
	}
	if res.Metrics.RebufferRatio > 0 {
		t.Errorf("rebuffering on a clean 10 Mb/s link: %v", res.Metrics.RebufferRatio)
	}
}

func TestFacadeDataset(t *testing.T) {
	ds, err := GenerateDataset(Profile4G(), 5, Seconds(120), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Sessions) != 5 {
		t.Fatalf("sessions = %d", len(ds.Sessions))
	}
	if math.Abs(float64(ds.MeanMbps()-13))/13 > 0.5 {
		t.Errorf("4G mean = %v", ds.MeanMbps())
	}
}

func TestFacadeTrace(t *testing.T) {
	tr := NewTrace([]Sample{{Duration: Seconds(2), Mbps: Mbps(5)}, {Duration: Seconds(2), Mbps: Mbps(15)}})
	if tr.MeanMbps() != 10 {
		t.Errorf("mean = %v", tr.MeanMbps())
	}
}

func TestFacadeStreamOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("real TCP session")
	}
	soda, err := NewController("soda", LadderPrototype())
	if err != nil {
		t.Fatal(err)
	}
	metrics, rungs, err := StreamOverTCP(ConstantTrace(3, 600), TCPSessionConfig{
		Controller:    soda,
		Predictor:     NewSafeEMAPredictor(),
		Ladder:        LadderPrototype(),
		TotalSegments: 20,
		BufferCap:     Seconds(15),
		TimeScale:     25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Segments != 20 || len(rungs) != 20 {
		t.Fatalf("segments = %d, rungs = %d", metrics.Segments, len(rungs))
	}
	if metrics.RebufferRatio > 0.05 {
		t.Errorf("rebuffering %v on a 3 Mb/s link for a 2 Mb/s ladder", metrics.RebufferRatio)
	}
}
