// Package repro is a from-scratch Go reproduction of "SODA: An Adaptive
// Bitrate Controller for Consistent High-Quality Video Streaming"
// (SIGCOMM 2024).
//
// The package is a thin facade over the internal implementation, exposing
// the pieces a downstream user needs:
//
//   - NewController builds SODA or any baseline ABR controller by name;
//   - Simulate runs a streaming session over a bandwidth trace in the
//     Sabre-class simulator;
//   - GenerateDataset synthesizes the calibrated network datasets;
//   - StreamOverTCP runs the loopback TCP prototype (real transport, shaped
//     by a trace).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record. The benchmarks in bench_test.go regenerate
// every table and figure of the paper's evaluation.
package repro

import (
	"time"

	"repro/internal/abr"
	"repro/internal/core"
	"repro/internal/player"
	"repro/internal/predictor"
	"repro/internal/qoe"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracegen"
	"repro/internal/units"
	"repro/internal/video"

	// Register every controller.
	_ "repro/internal/baseline"
)

// Re-exported core types, so example programs and downstream users can work
// entirely through this package.
type (
	// Controller is an ABR controller (SODA or a baseline).
	Controller = abr.Controller
	// Ladder is a bitrate ladder.
	Ladder = video.Ladder
	// Trace is a piecewise-constant bandwidth trace.
	Trace = trace.Trace
	// Sample is one piecewise-constant span of a Trace.
	Sample = trace.Sample
	// Metrics are per-session QoE metrics.
	Metrics = qoe.Metrics
	// SODAConfig parameterizes the SODA controller.
	SODAConfig = core.Config
	// SolveCache is the sharded cross-session solve cache that any number
	// of SODA controllers may share via SODAConfig.SharedCache.
	SolveCache = core.SolveCache
	// CacheStats reports a SolveCache's hit/conflict/eviction counters.
	CacheStats = core.CacheStats
	// DecisionTables is a set of compiled decision tables that any number
	// of SODA controllers may share via SODAConfig.DecisionTable.
	DecisionTables = core.DecisionTables
	// TableInfo describes one compiled decision table's geometry.
	TableInfo = core.TableInfo
	// TableStats reports a DecisionTables set's compile counters.
	TableStats = core.TableStats
	// SimulationConfig parameterizes a simulated session.
	SimulationConfig = sim.Config
	// SimulationResult is a simulated session's outcome.
	SimulationResult = sim.Result
	// Predictor forecasts throughput.
	Predictor = predictor.Predictor
	// DatasetProfile describes a synthetic network dataset.
	DatasetProfile = tracegen.Profile
	// Seconds is a duration in seconds.
	Seconds = units.Seconds
	// Mbps is a throughput in megabits per second.
	Mbps = units.Mbps
	// Megabits is a data size in megabits.
	Megabits = units.Megabits
)

// Ladders used throughout the paper's evaluation.
var (
	LadderYouTube4K = video.YouTube4K
	LadderMobile    = video.Mobile
	LadderPrototype = video.Prototype
	LadderPrime     = video.PrimeVideo
)

// Dataset profiles calibrated to the paper's Figure 9.
var (
	ProfilePuffer = tracegen.Puffer
	Profile5G     = tracegen.FiveG
	Profile4G     = tracegen.FourG
)

// DefaultSODAConfig returns the tuned SODA configuration.
func DefaultSODAConfig() SODAConfig { return core.DefaultConfig() }

// NewSODA builds a SODA controller with the given configuration.
func NewSODA(cfg SODAConfig, ladder Ladder) Controller { return core.New(cfg, ladder) }

// NewSolveCache builds a shared solve cache with the given entry capacity
// (see DESIGN.md §5b and the README's sizing notes). Decisions are
// bit-identical with or without one.
func NewSolveCache(capacity int) *SolveCache { return core.NewSolveCache(capacity) }

// NewSolveCacheSharded is NewSolveCache with an explicit shard count
// (default: GOMAXPROCS rounded up to a power of two).
func NewSolveCacheSharded(capacity, shards int) *SolveCache {
	return core.NewSolveCacheSharded(capacity, shards)
}

// NewDecisionTables builds an empty compiled decision-table set (see
// DESIGN.md §5c). Decisions are bit-identical with or without one.
func NewDecisionTables() *DecisionTables { return core.NewDecisionTables() }

// NewDecisionTablesSized is NewDecisionTables with an explicit bound on the
// number of distinct tables compiled before new identities become
// fallback-only stubs.
func NewDecisionTablesSized(maxTables int) *DecisionTables {
	return core.NewDecisionTablesSized(maxTables)
}

// NewController builds any registered controller by name: "soda", "bola",
// "dynamic", "hyb", "mpc", "robustmpc", "fugu", "rl" or "prod-baseline".
func NewController(name string, ladder Ladder) (Controller, error) { return abr.New(name, ladder) }

// Controllers lists the registered controller names.
func Controllers() []string { return abr.Names() }

// NewEMAPredictor returns the dash.js-default EMA throughput predictor.
func NewEMAPredictor(halfLife Seconds) Predictor { return predictor.NewEMA(halfLife) }

// NewSafeEMAPredictor returns the pessimistic fast/slow EMA predictor.
func NewSafeEMAPredictor() Predictor { return predictor.NewSafeEMA() }

// NewSlidingWindowPredictor returns the production sliding-window predictor.
func NewSlidingWindowPredictor(window Seconds) Predictor {
	return predictor.NewSlidingWindow(window)
}

// Simulate runs one session over the trace.
func Simulate(tr *Trace, cfg SimulationConfig) (SimulationResult, error) { return sim.Run(tr, cfg) }

// GenerateDataset synthesizes sessions from a calibrated profile.
func GenerateDataset(p DatasetProfile, sessions int, sessionLength Seconds, seed uint64) (*tracegen.Dataset, error) {
	return tracegen.Generate(p, sessions, sessionLength, seed)
}

// ConstantTrace returns a fixed-bandwidth trace.
func ConstantTrace(mbps, seconds float64) *Trace {
	return trace.Constant(units.Mbps(mbps), units.Seconds(seconds))
}

// NewTrace builds a trace from samples.
func NewTrace(samples []Sample) *Trace { return trace.New(samples) }

// TCPSessionConfig configures StreamOverTCP.
type TCPSessionConfig struct {
	// Controller picks bitrates; Predictor forecasts throughput.
	Controller Controller
	Predictor  Predictor
	// Ladder and TotalSegments define the stream.
	Ladder        Ladder
	TotalSegments int
	// BufferCap is the playback buffer bound.
	BufferCap Seconds
	// TimeScale compresses stream time (>= 1); 1 plays in real time.
	TimeScale float64
	// DialTimeout bounds connection setup and each fetch.
	DialTimeout time.Duration
}

// StreamOverTCP plays a session through the loopback TCP prototype, shaping
// delivery with the trace.
func StreamOverTCP(tr *Trace, cfg TCPSessionConfig) (Metrics, []int, error) {
	res, err := player.RunSession(player.SessionSpec{
		Trace:         tr,
		Ladder:        cfg.Ladder,
		TotalSegments: cfg.TotalSegments,
		TimeScale:     cfg.TimeScale,
		Player: player.Config{
			Controller:  cfg.Controller,
			Predictor:   cfg.Predictor,
			BufferCap:   cfg.BufferCap,
			DialTimeout: cfg.DialTimeout,
		},
	})
	if err != nil {
		return Metrics{}, nil, err
	}
	return res.Metrics, res.Rungs, nil
}
