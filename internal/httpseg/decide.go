package httpseg

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/abr"
	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/video"
)

// maxDecideSessions bounds the per-session controller table; the oldest
// session is evicted FIFO once the table is full, so an id churn attack
// cannot grow server memory without bound.
const maxDecideSessions = 1024

// defaultBufferCap is the buffer cap (seconds) a /decide request gets when it
// does not pass cap=; the decision table for it is compiled at service start.
const defaultBufferCap = 20.0

// DecideService runs server-side SODA: clients report their playback state
// (`GET /decide?session=...&buffer=...&throughput=...`) and receive the rung
// the controller picks. Each session id gets its own controller so decisions
// stay a pure function of that session's history; all sessions share one
// fleet solve cache. Every decision is recorded on the telemetry collector —
// from here, the call site, after Decide returns — which is what makes
// soda-server's /metrics and /debug/decisions show live solver traffic.
type DecideService struct {
	ladder       video.Ladder
	cache        *core.SolveCache
	tables       *core.DecisionTables
	tableQuantum float64
	col          *telemetry.Collector

	mu sync.Mutex
	//soda:guard mu
	sessions map[string]*decideSession
	//soda:guard mu
	order []string // insertion order, for FIFO eviction
	//soda:guard mu
	nextID int

	cacheEntries  *telemetry.Gauge
	cacheCapacity *telemetry.Gauge
	liveSessions  *telemetry.Gauge
	tableCount    *telemetry.Gauge
	tableCells    *telemetry.Gauge
}

type decideSession struct {
	id       int
	ctrl     *core.Controller
	prevRung int
	segment  int
}

// NewDecideService builds the service. cacheEntries sizes the shared solve
// cache (non-positive disables sharing); tableQuantum enables the compiled
// decision tables at that quantization step (non-positive disables them);
// col may be nil to run unobserved. With tables enabled, the table for the
// handler's default buffer cap is compiled eagerly here so the first session
// does not pay the compile on its first request; per-request caps compile
// lazily (bounded by the table budget — excess identities become
// fallback-only stubs, so cap churn cannot grow server memory or CPU
// without bound).
func NewDecideService(ladder video.Ladder, cacheEntries int, tableQuantum float64, col *telemetry.Collector) (*DecideService, error) {
	if ladder.Len() == 0 {
		return nil, fmt.Errorf("httpseg: decide service needs a non-empty ladder")
	}
	s := &DecideService{
		ladder:       ladder,
		tableQuantum: tableQuantum,
		col:          col,
		sessions:     map[string]*decideSession{},
	}
	if cacheEntries > 0 {
		s.cache = core.NewSolveCache(cacheEntries)
	}
	if tableQuantum > 0 {
		s.tables = core.NewDecisionTables()
		cfg := s.sessionConfig()
		if _, err := s.tables.CompileTable(cfg, ladder, units.Seconds(defaultBufferCap)); err != nil {
			return nil, fmt.Errorf("httpseg: compiling decision table: %w", err)
		}
	}
	if col != nil {
		s.cacheEntries = col.Registry.Gauge("soda_server_shared_cache_entries",
			"live entries in the server's shared solve cache", telemetry.None)
		s.cacheCapacity = col.Registry.Gauge("soda_server_shared_cache_capacity",
			"capacity of the server's shared solve cache", telemetry.None)
		s.liveSessions = col.Registry.Gauge("soda_server_sessions",
			"decision sessions currently tracked", telemetry.None)
		s.tableCount = col.Registry.Gauge("soda_server_decision_tables",
			"compiled decision tables resident in the server's table set", telemetry.None)
		s.tableCells = col.Registry.Gauge("soda_server_decision_table_cells",
			"total compiled decision-table cells resident", telemetry.None)
	}
	return s, nil
}

// sessionConfig is the controller configuration every decide session runs:
// the production defaults plus this service's shared cache and table set.
func (s *DecideService) sessionConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.SharedCache = s.cache
	cfg.DecisionTable = s.tables
	cfg.TableQuantum = s.tableQuantum
	return cfg
}

// RefreshMetrics updates the pull-only gauges (cache occupancy, live session
// count); MetricsHandler runs it as an onScrape hook.
func (s *DecideService) RefreshMetrics() {
	if s.col == nil {
		return
	}
	if s.cache != nil {
		st := s.cache.Stats()
		s.cacheEntries.Set(float64(st.Entries))
		s.cacheCapacity.Set(float64(st.Capacity))
	}
	if s.tables != nil {
		st := s.tables.Stats()
		s.tableCount.Set(float64(st.Tables))
		s.tableCells.Set(float64(st.Cells))
	}
	s.mu.Lock()
	n := len(s.sessions)
	s.mu.Unlock()
	s.liveSessions.Set(float64(n))
}

// decideReply is the JSON response of one /decide call.
type decideReply struct {
	Session     int     `json:"session"`
	Segment     int     `json:"segment"`
	Rung        int     `json:"rung"`
	BitrateMbps float64 `json:"bitrate_mbps"`
	WaitSeconds float64 `json:"wait_s,omitempty"`
}

// ServeHTTP implements the /decide endpoint.
func (s *DecideService) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	sessionKey := q.Get("session")
	if sessionKey == "" {
		http.Error(w, "missing session parameter", http.StatusBadRequest)
		return
	}
	buffer, err := parseNonNegative(q.Get("buffer"))
	if err != nil {
		http.Error(w, "buffer: "+err.Error(), http.StatusBadRequest)
		return
	}
	throughput, err := parseNonNegative(q.Get("throughput"))
	if err != nil {
		http.Error(w, "throughput: "+err.Error(), http.StatusBadRequest)
		return
	}
	bufferCap := defaultBufferCap
	if v := q.Get("cap"); v != "" {
		if bufferCap, err = parseNonNegative(v); err != nil || bufferCap <= 0 {
			http.Error(w, "cap must be a positive number", http.StatusBadRequest)
			return
		}
	}

	segment := -1
	if v := q.Get("segment"); v != "" {
		seg, err := strconv.Atoi(v)
		if err != nil || seg < 0 {
			http.Error(w, "segment must be a non-negative integer", http.StatusBadRequest)
			return
		}
		segment = seg
	}
	prevOverride, havePrev := 0, false
	if v := q.Get("prev"); v != "" {
		prev, err := strconv.Atoi(v)
		if err != nil || prev < abr.NoRung || prev >= s.ladder.Len() {
			http.Error(w, "prev out of range", http.StatusBadRequest)
			return
		}
		prevOverride, havePrev = prev, true
	}
	omega := units.Mbps(throughput)

	// Decisions serialise per session under the session-table lock, but the
	// lock never covers I/O: every parameter is validated above, and the
	// reply encoding and telemetry recording happen after the unlock — the
	// guardedby invariant on the session table. The solver itself is
	// sub-microsecond, so the critical section stays short.
	s.mu.Lock()
	sess := s.session(sessionKey)
	if segment >= 0 {
		sess.segment = segment
	}
	if havePrev {
		sess.prevRung = prevOverride
	}
	ctx := &abr.Context{
		Buffer:         units.Seconds(buffer),
		BufferCap:      units.Seconds(bufferCap),
		PrevRung:       sess.prevRung,
		Ladder:         s.ladder,
		SegmentIndex:   sess.segment,
		TotalSegments:  1 << 20, // an open-ended live stream
		LastThroughput: omega,
		Predict:        func(units.Seconds) units.Mbps { return omega },
	}

	before := sess.ctrl.SolveStats()
	t0 := time.Now()
	decision := sess.ctrl.Decide(ctx)
	elapsed := time.Since(t0)

	reply := decideReply{Session: sess.id, Segment: sess.segment, Rung: decision.Rung}
	ev := telemetry.DecisionEvent{
		Session:      int32(sess.id),
		Segment:      int32(sess.segment),
		Rung:         int16(decision.Rung),
		PrevRung:     int16(sess.prevRung),
		Buffer:       units.Seconds(buffer),
		Throughput:   omega,
		SolveSeconds: units.Seconds(elapsed.Seconds()),
		Timed:        true,
	}
	if decision.Rung == abr.NoRung {
		reply.WaitSeconds = float64(decision.WaitSeconds)
		ev.WaitSeconds = decision.WaitSeconds
	} else {
		rung := s.ladder.ClampIndex(decision.Rung)
		reply.Rung = rung
		reply.BitrateMbps = float64(s.ladder.Mbps(rung))
		ev.Rung = int16(rung)
		ev.Bitrate = s.ladder.Mbps(rung)
		sess.prevRung = rung
		sess.segment++
	}
	d := sess.ctrl.SolveStats().Delta(before)
	s.mu.Unlock()

	ev.Solves, ev.Nodes = uint32(d.Solves), uint32(d.Nodes)
	ev.MemoHits, ev.SharedHits = uint32(d.MemoHits), uint32(d.SharedHits)
	ev.TableHits = uint32(d.TableHits)
	s.col.RecordDecision(ev)
	s.col.RecordSolverStats(telemetry.SolverStats{
		Solves: d.Solves, Nodes: d.Nodes,
		MemoLookups: d.MemoLookups, MemoHits: d.MemoHits,
		SharedLookups: d.SharedLookups, SharedHits: d.SharedHits,
		TableLookups: d.TableLookups, TableHits: d.TableHits,
		TableFallbacks: d.TableFallbacks,
	})

	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(reply) // a failed write means the client hung up
}

// session returns the state for key, creating (and FIFO-evicting) as needed.
// Callers hold s.mu.
//
//soda:locked mu
func (s *DecideService) session(key string) *decideSession {
	if sess, ok := s.sessions[key]; ok {
		return sess
	}
	if len(s.order) >= maxDecideSessions {
		delete(s.sessions, s.order[0])
		s.order = s.order[1:]
	}
	sess := &decideSession{
		id:       s.nextID,
		ctrl:     core.New(s.sessionConfig(), s.ladder),
		prevRung: abr.NoRung,
	}
	s.nextID++
	s.sessions[key] = sess
	s.order = append(s.order, key)
	return sess
}

func parseNonNegative(raw string) (float64, error) {
	if raw == "" {
		return 0, fmt.Errorf("missing parameter")
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("must be a non-negative number")
	}
	return v, nil
}
