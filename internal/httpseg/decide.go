package httpseg

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"repro/internal/abr"
	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/flightrec"
	"repro/internal/sessiontable"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/video"
)

// defaultBufferCap is the buffer cap (seconds) a /decide request gets when it
// does not pass cap=; the decision table for it is compiled at service start.
const defaultBufferCap = 20.0

// Control-plane defaults, overridable via DecideOptions (and the
// corresponding soda-server flags).
const (
	// DefaultMaxSessions caps the session table when DecideOptions leaves
	// MaxSessions zero.
	DefaultMaxSessions = 1 << 16
	// DefaultSessionTTL is the idle-eviction threshold when DecideOptions
	// leaves SessionTTL zero.
	DefaultSessionTTL = 5 * time.Minute
	// DefaultMaxInflight bounds concurrent decides when DecideOptions leaves
	// MaxInflight zero.
	DefaultMaxInflight = 512
)

// DecideOptions parameterises the /decide control plane. The zero value gets
// production defaults; explicit negatives disable the individual limits
// where documented.
type DecideOptions struct {
	// CacheEntries sizes the shared solve cache (non-positive disables
	// sharing).
	CacheEntries int
	// TableQuantum enables the compiled decision tables at that quantization
	// step (non-positive disables them).
	TableQuantum float64
	// MaxSessions caps the live session table; 0 means DefaultMaxSessions.
	MaxSessions int
	// SessionTTL is the idle-eviction threshold of the session table;
	// 0 means DefaultSessionTTL, negative disables idle eviction.
	SessionTTL time.Duration
	// MaxInflight bounds concurrent decides (excess requests are shed with
	// 503 + Retry-After); 0 means DefaultMaxInflight, negative disables the
	// bound.
	MaxInflight int
	// RPSPerClient enables per-client token-bucket rate limiting at that
	// sustained request rate (429 + Retry-After when exhausted); non-positive
	// disables limiting.
	RPSPerClient float64
	// BurstPerClient is the token-bucket burst capacity; non-positive
	// defaults to 2x RPSPerClient.
	BurstPerClient float64
	// SessionMemoEntries sizes each session controller's private decide
	// memo: 0 keeps the core default (512 entries, ~16 KB/session), negative
	// disables the memo entirely — the fleet-scale setting, where the shared
	// cache and compiled tables carry the hot path and per-session memory is
	// what limits session count. The memo is a bit-identical cache, so this
	// knob never changes decisions.
	SessionMemoEntries int
	// FlightRecorder, when non-nil, records one latency span per pipeline
	// stage (ratelimit, inflight, session, arena, decide, respond) into
	// lock-free seqlock rings and the per-stage latency histograms. Nil
	// records nothing; either way the steady decide path allocates nothing.
	FlightRecorder *flightrec.Recorder
	// Watchdog, when non-nil, observes every served decision with the QoE-
	// consistency detectors. Per-session detector state lives in the arena
	// slot alongside the controller, so observation is allocation-free and
	// serialised by the same per-session entry lock as the decide itself.
	Watchdog *flightrec.Watchdog
}

// normalize fills in defaults.
func (o DecideOptions) normalize() DecideOptions {
	if o.MaxSessions == 0 {
		o.MaxSessions = DefaultMaxSessions
	}
	if o.SessionTTL == 0 {
		o.SessionTTL = DefaultSessionTTL
	}
	if o.MaxInflight == 0 {
		o.MaxInflight = DefaultMaxInflight
	}
	if o.RPSPerClient > 0 && o.BurstPerClient <= 0 {
		o.BurstPerClient = 2 * o.RPSPerClient
	}
	return o
}

// DecideService runs server-side SODA: clients report their playback state
// (`GET /decide?session=...&buffer=...&throughput=...`) and receive the rung
// the controller picks. Each session id gets its own controller so decisions
// stay a pure function of that session's history; all sessions share one
// fleet solve cache and decision-table set.
//
// Session lifecycle is owned by the sessiontable control plane: a sharded
// table with idle (TTL) eviction, per-client token-bucket admission, a
// bounded in-flight semaphore for backpressure, and graceful drain. The
// table only manages lifecycle — solver inputs come exclusively from the
// request and the session's own history — so eviction and recreation can
// never change a decision (TestSessionTableConformance pins this).
//
// Every decision is recorded on the telemetry collector — from here, the
// call site, after Decide returns — which is what makes soda-server's
// /metrics and /debug/decisions show live solver traffic.
type DecideService struct {
	ladder       video.Ladder
	cache        *core.SolveCache
	tables       *core.DecisionTables
	tableQuantum float64
	memoEntries  int
	col          *telemetry.Collector

	sessions *sessiontable.Table
	arena    *arena.Arena
	limiter  *sessiontable.Limiter
	inflight *sessiontable.Semaphore
	ttl      time.Duration

	flight   *flightrec.Recorder
	watchdog *flightrec.Watchdog
	// epochNanos is the service start in UnixNano; DecisionEvent.AtSeconds
	// is stamped relative to it (the serving-path analogue of the
	// simulator's stream clock).
	epochNanos int64

	cacheEntries  *telemetry.Gauge
	cacheCapacity *telemetry.Gauge
	liveSessions  *telemetry.Gauge
	inflightGauge *telemetry.Gauge
	tableCount    *telemetry.Gauge
	tableCells    *telemetry.Gauge

	evictions        *telemetry.Counter
	rejectedRate     *telemetry.Counter
	rejectedLoad     *telemetry.Counter
	rejectedCapacity *telemetry.Counter
	rejectedDraining *telemetry.Counter
	decideLatency    *telemetry.Histogram
}

// errArenaFull is returned by the create callback when the session arena has
// no free slot; the caller maps it onto a capacity rejection. The arena is
// sized past the table's capacity, so reaching it means the sizing contract
// broke, not that the host is merely busy.
var errArenaFull = errors.New("httpseg: session arena exhausted")

// decideLatencyBuckets resolve the p99 regime of the serving path: the
// decide critical section is single-digit microseconds, the control-plane
// wrapper tens of microseconds under contention, and anything in the
// millisecond range is a regression the CI p99 gate must see.
var decideLatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3, 1,
}

// NewDecideService builds the service. col may be nil to run unobserved (the
// instruments then live on a private, unexported registry). With tables
// enabled, the table for the handler's default buffer cap is compiled
// eagerly here so the first session does not pay the compile on its first
// request; per-request caps compile lazily (bounded by the table budget —
// excess identities become fallback-only stubs, so cap churn cannot grow
// server memory or CPU without bound).
func NewDecideService(ladder video.Ladder, opts DecideOptions, col *telemetry.Collector) (*DecideService, error) {
	if ladder.Len() == 0 {
		return nil, fmt.Errorf("httpseg: decide service needs a non-empty ladder")
	}
	opts = opts.normalize()
	s := &DecideService{
		ladder:       ladder,
		tableQuantum: opts.TableQuantum,
		memoEntries:  opts.SessionMemoEntries,
		col:          col,
		ttl:          opts.SessionTTL,
		flight:       opts.FlightRecorder,
		watchdog:     opts.Watchdog,
		epochNanos:   time.Now().UnixNano(),
	}
	ttlNanos := opts.SessionTTL.Nanoseconds()
	if opts.SessionTTL < 0 {
		ttlNanos = 0
	}
	// Per-session controller state lives in a struct-of-arrays arena rather
	// than as individually heap-allocated values: controllers and player
	// state sit in flat slab arrays (the layout the fleet simulator and the
	// load generator share), slots recycle through a free list, and stale
	// handles are caught by generation counters. Sized past the table's
	// capacity (shard rounding can admit up to one extra session per table
	// shard), split across shards so concurrent session creation does not
	// serialise on one arena lock.
	arenaShards := runtime.GOMAXPROCS(0)
	arenaCap := opts.MaxSessions + 512
	s.arena = arena.New(arenaShards, (arenaCap+arenaShards-1)/arenaShards)
	s.sessions = sessiontable.New(sessiontable.Config{
		MaxSessions: opts.MaxSessions,
		TTLNanos:    ttlNanos,
		// Idle sweep or capacity reclaim dropped the session: return its
		// arena slot to the free list. The table only evicts sessions with
		// no in-flight holders, so the slot cannot be in use.
		OnEvict: func(sess *sessiontable.Session) {
			s.arena.Free(arena.Handle(sess.Handle))
		},
	})
	if opts.RPSPerClient > 0 {
		s.limiter = sessiontable.NewLimiter(opts.RPSPerClient, opts.BurstPerClient)
	}
	if opts.MaxInflight > 0 {
		s.inflight = sessiontable.NewSemaphore(opts.MaxInflight)
	}
	if opts.CacheEntries > 0 {
		s.cache = core.NewSolveCache(opts.CacheEntries)
	}
	if opts.TableQuantum > 0 {
		s.tables = core.NewDecisionTables()
		cfg := s.sessionConfig()
		if _, err := s.tables.CompileTable(cfg, ladder, units.Seconds(defaultBufferCap)); err != nil {
			return nil, fmt.Errorf("httpseg: compiling decision table: %w", err)
		}
	}
	reg := telemetry.NewRegistry() // private sink when running unobserved
	if col != nil {
		reg = col.Registry
	}
	s.cacheEntries = reg.Gauge("soda_server_shared_cache_entries",
		"live entries in the server's shared solve cache", telemetry.None)
	s.cacheCapacity = reg.Gauge("soda_server_shared_cache_capacity",
		"capacity of the server's shared solve cache", telemetry.None)
	s.liveSessions = reg.Gauge("soda_server_sessions_active",
		"decision sessions currently tracked", telemetry.None)
	s.inflightGauge = reg.Gauge("soda_server_inflight_decides",
		"decides currently holding an in-flight slot", telemetry.None)
	s.tableCount = reg.Gauge("soda_server_decision_tables",
		"compiled decision tables resident in the server's table set", telemetry.None)
	s.tableCells = reg.Gauge("soda_server_decision_table_cells",
		"total compiled decision-table cells resident", telemetry.None)
	s.evictions = reg.Counter("soda_server_evictions_total",
		"sessions evicted after idling past the TTL", telemetry.None)
	rejected := func(reason string) *telemetry.Counter {
		return reg.Counter("soda_server_rejected_total",
			"decide requests shed by the control plane, by reason", telemetry.None,
			telemetry.Label{Key: "reason", Value: reason})
	}
	s.rejectedRate = rejected("ratelimit")
	s.rejectedLoad = rejected("inflight")
	s.rejectedCapacity = rejected("capacity")
	s.rejectedDraining = rejected("draining")
	s.decideLatency = reg.Histogram("soda_server_decide_latency_seconds",
		"wall-clock latency of the full /decide control-plane path", telemetry.USeconds,
		decideLatencyBuckets)
	return s, nil
}

// sessionConfig is the controller configuration every decide session runs:
// the production defaults plus this service's shared cache and table set.
func (s *DecideService) sessionConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.SharedCache = s.cache
	cfg.DecisionTable = s.tables
	cfg.TableQuantum = s.tableQuantum
	if s.memoEntries > 0 {
		cfg.SolveMemoSize = s.memoEntries
	} else if s.memoEntries < 0 {
		cfg.SolveMemoSize = 0
	}
	return cfg
}

// RefreshMetrics updates the pull-only gauges (cache occupancy, live session
// count, in-flight decides); MetricsHandler runs it as an onScrape hook.
func (s *DecideService) RefreshMetrics() {
	if s.cache != nil {
		st := s.cache.Stats()
		s.cacheEntries.Set(float64(st.Entries))
		s.cacheCapacity.Set(float64(st.Capacity))
	}
	if s.tables != nil {
		st := s.tables.Stats()
		s.tableCount.Set(float64(st.Tables))
		s.tableCells.Set(float64(st.Cells))
	}
	s.liveSessions.Set(float64(s.sessions.Len()))
	s.inflightGauge.Set(float64(s.inflight.InFlight()))
}

// SweepSessions evicts sessions idle past the TTL and idle rate-limit
// buckets, and returns the session eviction count. The server runs it
// periodically; harnesses embedding the service in-process call it at their
// own cadence.
func (s *DecideService) SweepSessions(now time.Time) int {
	n := s.sessions.Sweep(now.UnixNano())
	if n > 0 {
		s.evictions.Add(float64(n))
	}
	idle := s.ttl.Nanoseconds()
	if idle <= 0 {
		idle = time.Minute.Nanoseconds()
	}
	s.limiter.Sweep(now.UnixNano(), idle)
	return n
}

// Drain stops admission (every subsequent decide is shed with 503), waits up
// to timeout for in-flight decides to finish, and returns the live session
// count at drain time plus whether the in-flight work fully drained — the
// numbers soda-server reports on SIGTERM.
func (s *DecideService) Drain(timeout time.Duration) (sessions int, clean bool) {
	sessions = s.sessions.Drain()
	clean = s.inflight.DrainWait(timeout)
	return sessions, clean
}

// SessionStats exposes the session-table lifecycle counters.
func (s *DecideService) SessionStats() sessiontable.Stats { return s.sessions.Stats() }

// DecideStatus classifies the outcome of one Decide call.
type DecideStatus int

// Decide outcomes. Every rejected status maps onto an HTTP response with a
// Retry-After header; StatusOK carries a decision.
const (
	StatusOK DecideStatus = iota
	// StatusRejectedRate: the client spent its token bucket (HTTP 429).
	StatusRejectedRate
	// StatusRejectedLoad: the in-flight bound is saturated (HTTP 503).
	StatusRejectedLoad
	// StatusRejectedCapacity: the session table is full (HTTP 503).
	StatusRejectedCapacity
	// StatusRejectedDraining: the server is draining (HTTP 503).
	StatusRejectedDraining
)

// DecideRequest is one decide call in validated, typed form — the in-process
// surface the load generator drives without HTTP parsing or encoding.
type DecideRequest struct {
	// Session names the session; Client is the rate-limit key (empty falls
	// back to Session).
	Session string
	Client  string
	// Buffer and Throughput are the reported player state.
	Buffer     units.Seconds
	Throughput units.Mbps
	// BufferCap overrides the default buffer cap when positive.
	BufferCap units.Seconds
	// Segment overrides the session's segment index when non-negative.
	Segment int
	// Prev overrides the session's previous rung when HavePrev is set.
	Prev     int
	HavePrev bool
}

// DecideResult is the outcome of one Decide call.
type DecideResult struct {
	Status     DecideStatus
	RetryAfter time.Duration // advisory backoff on rejection

	SessionID   int64
	Segment     int
	Rung        int
	BitrateMbps float64
	WaitSeconds float64
}

// Decide runs the full control-plane path for one validated request:
// admission (drain, rate limit), backpressure (in-flight bound), session
// acquire, the per-session decide critical section, then telemetry from the
// call site. The steady-state path performs no allocation (gated by
// BenchmarkSessionTableDecide), which is what lets one host sustain tens of
// thousands of concurrent sessions.
func (s *DecideService) Decide(req *DecideRequest) DecideResult {
	start := time.Now()
	now := start.UnixNano()

	// Flight-recorder span clock: one Now() per stage boundary when a
	// recorder is attached, zero time calls when not. Pre-session stages
	// cannot name a session id yet and record as noSessionID.
	rec := s.flight
	var tEnter, t0 int64
	if rec != nil {
		tEnter = rec.Now()
		t0 = tEnter
	}

	client := req.Client
	if client == "" {
		client = req.Session
	}
	admitted, retry := s.limiter.Allow(client, now)
	if rec != nil {
		t1 := rec.Now()
		rec.Record(flightrec.StageRateLimit, noSessionID, t0, t1-t0, admitted)
		t0 = t1
	}
	if !admitted {
		s.rejectedRate.Inc()
		if rec != nil {
			rec.Record(flightrec.StageRespond, noSessionID, tEnter, rec.Now()-tEnter, false)
		}
		return DecideResult{Status: StatusRejectedRate, RetryAfter: time.Duration(retry)}
	}
	acquired := s.inflight.TryAcquire()
	if rec != nil {
		t1 := rec.Now()
		rec.Record(flightrec.StageInflight, noSessionID, t0, t1-t0, acquired)
	}
	if !acquired {
		s.rejectedLoad.Inc()
		if rec != nil {
			rec.Record(flightrec.StageRespond, noSessionID, tEnter, rec.Now()-tEnter, false)
		}
		return DecideResult{Status: StatusRejectedLoad, RetryAfter: time.Second}
	}
	res := s.decideAdmitted(req, now)
	s.inflight.Release()
	if res.Status == StatusOK {
		s.decideLatency.Observe(time.Since(start).Seconds())
	}
	if rec != nil {
		sid := noSessionID
		if res.Status == StatusOK {
			sid = int32(res.SessionID)
		}
		rec.Record(flightrec.StageRespond, sid, tEnter, rec.Now()-tEnter, res.Status == StatusOK)
	}
	return res
}

// noSessionID attributes spans recorded before (or without) a session
// resolving — admission rejections and pre-acquire stages.
const noSessionID = int32(-1)

// decideAdmitted is the post-admission decide path: the caller holds an
// in-flight slot.
func (s *DecideService) decideAdmitted(req *DecideRequest, now int64) DecideResult {
	rec := s.flight
	var fr0 int64
	if rec != nil {
		fr0 = rec.Now()
	}
	entry, err := s.sessions.Acquire(req.Session, now, s.newSession)
	if rec != nil {
		t1 := rec.Now()
		sid := noSessionID
		if err == nil {
			sid = int32(entry.ID())
		}
		rec.Record(flightrec.StageSession, sid, fr0, t1-fr0, err == nil)
		fr0 = t1
	}
	if err != nil {
		if err == sessiontable.ErrDraining {
			s.rejectedDraining.Inc()
			return DecideResult{Status: StatusRejectedDraining, RetryAfter: time.Second}
		}
		s.rejectedCapacity.Inc()
		return DecideResult{Status: StatusRejectedCapacity, RetryAfter: time.Second}
	}
	bufferCap := units.Seconds(defaultBufferCap)
	if req.BufferCap > 0 {
		bufferCap = req.BufferCap
	}

	// Decisions serialise per session under the entry lock, which never
	// covers I/O or channel operations: parameters were validated before
	// admission, and reply encoding plus telemetry recording happen after
	// the unlock. The solver itself is sub-microsecond, so the critical
	// section stays short; distinct sessions proceed in parallel.
	entry.Mu.Lock()
	ctrl, st, ok := s.arena.Session(arena.Handle(entry.Handle))
	if rec != nil {
		t1 := rec.Now()
		rec.Record(flightrec.StageArena, int32(entry.ID()), fr0, t1-fr0, ok)
		fr0 = t1
	}
	if !ok {
		// Unreachable by the lifecycle contract: the table's refcount keeps
		// the slot from being evicted (and therefore freed) under a holder,
		// and the generation check would only fail on a stale handle.
		entry.Mu.Unlock()
		s.sessions.Release(entry, time.Now().UnixNano())
		s.rejectedCapacity.Inc()
		return DecideResult{Status: StatusRejectedCapacity, RetryAfter: time.Second}
	}
	if req.Segment >= 0 {
		st.Segment = int32(req.Segment)
	}
	if req.HavePrev {
		st.PrevRung = int32(req.Prev)
	}
	omega := req.Throughput
	ctx := &abr.Context{
		Buffer:         req.Buffer,
		BufferCap:      bufferCap,
		PrevRung:       int(st.PrevRung),
		Ladder:         s.ladder,
		SegmentIndex:   int(st.Segment),
		TotalSegments:  1 << 20, // an open-ended live stream
		LastThroughput: omega,
		Predict:        func(units.Seconds) units.Mbps { return omega },
	}

	before := ctrl.SolveStats()
	t0 := time.Now()
	decision := ctrl.Decide(ctx)
	elapsed := time.Since(t0)
	if rec != nil {
		rec.Record(flightrec.StageDecide, int32(entry.ID()), fr0, rec.Now()-fr0, true)
	}

	res := DecideResult{SessionID: entry.ID(), Segment: int(st.Segment), Rung: decision.Rung}
	ev := telemetry.DecisionEvent{
		Session:      int32(entry.ID()),
		Segment:      st.Segment,
		Rung:         int16(decision.Rung),
		PrevRung:     int16(st.PrevRung),
		AtSeconds:    units.Seconds(float64(now-s.epochNanos) / 1e9),
		Buffer:       req.Buffer,
		Throughput:   omega,
		SolveSeconds: units.Seconds(elapsed.Seconds()),
		Timed:        true,
	}
	if decision.Rung == abr.NoRung {
		res.WaitSeconds = float64(decision.WaitSeconds)
		ev.WaitSeconds = decision.WaitSeconds
	} else {
		rung := s.ladder.ClampIndex(decision.Rung)
		res.Rung = rung
		res.BitrateMbps = float64(s.ladder.Mbps(rung))
		ev.Rung = int16(rung)
		ev.Bitrate = s.ladder.Mbps(rung)
		st.PrevRung = int32(rung)
		st.Segment++
	}
	if s.watchdog != nil {
		// Detector state lives in the session's arena slot; the entry lock
		// already serialises this session, so Observe races nothing.
		if watch, ok := s.arena.Watch(arena.Handle(entry.Handle)); ok {
			s.watchdog.Observe(watch, int32(entry.ID()), ev.AtSeconds, req.Buffer,
				ev.Rung, ev.PrevRung)
		}
	}
	d := ctrl.SolveStats().Delta(before)
	entry.Mu.Unlock()
	s.sessions.Release(entry, time.Now().UnixNano())

	ev.Solves, ev.Nodes = uint32(d.Solves), uint32(d.Nodes)
	ev.MemoHits, ev.SharedHits = uint32(d.MemoHits), uint32(d.SharedHits)
	ev.TableHits = uint32(d.TableHits)
	s.col.RecordDecision(ev)
	s.col.RecordSolverStats(telemetry.SolverStats{
		Solves: d.Solves, Nodes: d.Nodes,
		MemoLookups: d.MemoLookups, MemoHits: d.MemoHits,
		SharedLookups: d.SharedLookups, SharedHits: d.SharedHits,
		TableLookups: d.TableLookups, TableHits: d.TableHits,
		TableFallbacks: d.TableFallbacks,
	})
	return res
}

// newSession is the sessiontable create callback: claim an arena slot,
// initialise its controller in place (a recycled slot reuses its memo
// backing array — Init flushes it, so no decision state crosses sessions),
// and prewarm the default-cap cost model so steady-state decides allocate
// nothing. Decisions on an arena slot are bit-identical to a heap-allocated
// controller's (abrtest.ArenaConformance); eviction and recreation therefore
// still cannot change what the solver is asked or answers.
func (s *DecideService) newSession(sess *sessiontable.Session) error {
	h, ok := s.arena.AllocAny()
	if !ok {
		return errArenaFull
	}
	ctrl, st, _ := s.arena.Session(h)
	ctrl.Init(s.sessionConfig(), s.ladder)
	ctrl.Prewarm(units.Seconds(defaultBufferCap))
	*st = arena.State{PrevRung: int32(abr.NoRung)}
	sess.Handle = uint64(h)
	return nil
}

// decideReply is the JSON response of one /decide call.
type decideReply struct {
	Session     int64   `json:"session"`
	Segment     int     `json:"segment"`
	Rung        int     `json:"rung"`
	BitrateMbps float64 `json:"bitrate_mbps"`
	WaitSeconds float64 `json:"wait_s,omitempty"`
}

// retryAfterSeconds renders a Retry-After header value: whole seconds,
// rounded up, at least 1.
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// ServeHTTP implements the /decide endpoint: validate, then hand the typed
// request to Decide and map its status onto HTTP.
func (s *DecideService) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	req := DecideRequest{Session: q.Get("session"), Client: q.Get("client"), Segment: -1}
	if req.Session == "" {
		http.Error(w, "missing session parameter", http.StatusBadRequest)
		return
	}
	buffer, err := parseNonNegative(q.Get("buffer"))
	if err != nil {
		http.Error(w, "buffer: "+err.Error(), http.StatusBadRequest)
		return
	}
	req.Buffer = units.Seconds(buffer)
	throughput, err := parseNonNegative(q.Get("throughput"))
	if err != nil {
		http.Error(w, "throughput: "+err.Error(), http.StatusBadRequest)
		return
	}
	req.Throughput = units.Mbps(throughput)
	if v := q.Get("cap"); v != "" {
		bufferCap, err := parseNonNegative(v)
		if err != nil || bufferCap <= 0 {
			http.Error(w, "cap must be a positive number", http.StatusBadRequest)
			return
		}
		req.BufferCap = units.Seconds(bufferCap)
	}
	if v := q.Get("segment"); v != "" {
		seg, err := strconv.Atoi(v)
		if err != nil || seg < 0 {
			http.Error(w, "segment must be a non-negative integer", http.StatusBadRequest)
			return
		}
		req.Segment = seg
	}
	if v := q.Get("prev"); v != "" {
		prev, err := strconv.Atoi(v)
		if err != nil || prev < abr.NoRung || prev >= s.ladder.Len() {
			http.Error(w, "prev out of range", http.StatusBadRequest)
			return
		}
		req.Prev, req.HavePrev = prev, true
	}

	res := s.Decide(&req)
	switch res.Status {
	case StatusOK:
	case StatusRejectedRate:
		w.Header().Set("Retry-After", retryAfterSeconds(res.RetryAfter))
		http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
		return
	default: // load shed, capacity, draining
		w.Header().Set("Retry-After", retryAfterSeconds(res.RetryAfter))
		http.Error(w, "service saturated or draining", http.StatusServiceUnavailable)
		return
	}

	reply := decideReply{
		Session:     res.SessionID,
		Segment:     res.Segment,
		Rung:        res.Rung,
		BitrateMbps: res.BitrateMbps,
		WaitSeconds: res.WaitSeconds,
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(reply) // a failed write means the client hung up
}

func parseNonNegative(raw string) (float64, error) {
	if raw == "" {
		return 0, fmt.Errorf("missing parameter")
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("must be a non-negative number")
	}
	return v, nil
}
