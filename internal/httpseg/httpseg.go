// Package httpseg is the HTTP flavour of the prototype's segment transport:
// the same synthetic stream as internal/proto, served over standard
// HTTP/1.1 with an MPEG-DASH MPD as the manifest — the transport shape of a
// production CDN-backed deployment (§6.3 streams are HTTP-delivered).
//
// Routes:
//
//	GET /manifest.mpd              the DASH manifest (application/dash+xml)
//	GET /segment/{index}/{rung}    one media segment (video/mp4 filler bytes)
//
// The server composes with internal/netem's shaped listeners exactly like
// the binary-protocol server, so both transports see identical delivery
// dynamics.
//
//soda:wire-boundary
package httpseg

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/dash"
	"repro/internal/proto"
	"repro/internal/telemetry"
	"repro/internal/video"
)

// Server serves the synthetic stream over HTTP. It implements http.Handler.
type Server struct {
	ladder video.Ladder
	sizes  video.SizeModel
	total  int
	mpd    []byte

	// Per-route request counters; nil until Instrument is called.
	manifestHits *telemetry.Counter
	segmentHits  *telemetry.Counter
}

// Instrument registers per-route request counters on reg so /metrics covers
// transport traffic. Call once before serving.
func (s *Server) Instrument(reg *telemetry.Registry) {
	s.manifestHits = reg.Counter("soda_http_manifest_requests_total",
		"manifest.mpd requests served", telemetry.None)
	s.segmentHits = reg.Counter("soda_http_segment_requests_total",
		"segment requests served", telemetry.None)
}

// NewServer builds the handler. sizes may be nil for CBR.
func NewServer(ladder video.Ladder, sizes video.SizeModel, totalSegments int) (*Server, error) {
	if ladder.Len() == 0 {
		return nil, fmt.Errorf("httpseg: empty ladder")
	}
	if totalSegments <= 0 {
		return nil, fmt.Errorf("httpseg: non-positive segment count")
	}
	if sizes == nil {
		sizes = video.CBR{Ladder: ladder}
	}
	mediaDur := time.Duration(float64(totalSegments) * float64(ladder.SegmentSeconds) * float64(time.Second))
	var sb strings.Builder
	if err := dash.FromLadder(ladder, mediaDur).Write(&sb); err != nil {
		return nil, err
	}
	return &Server{ladder: ladder, sizes: sizes, total: totalSegments, mpd: []byte(sb.String())}, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	switch {
	case r.URL.Path == "/manifest.mpd":
		if s.manifestHits != nil {
			s.manifestHits.Inc()
		}
		w.Header().Set("Content-Type", "application/dash+xml")
		_, _ = w.Write(s.mpd) // a failed write means the client hung up; nothing to do mid-response
	case strings.HasPrefix(r.URL.Path, "/segment/"):
		if s.segmentHits != nil {
			s.segmentHits.Inc()
		}
		s.serveSegment(w, r)
	default:
		http.NotFound(w, r)
	}
}

func (s *Server) serveSegment(w http.ResponseWriter, r *http.Request) {
	parts := strings.Split(strings.TrimPrefix(r.URL.Path, "/segment/"), "/")
	if len(parts) != 2 {
		http.Error(w, "want /segment/{index}/{rung}", http.StatusBadRequest)
		return
	}
	index, err1 := strconv.Atoi(parts[0])
	rung, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		http.Error(w, "non-numeric segment path", http.StatusBadRequest)
		return
	}
	if index < 0 || index >= s.total || rung < 0 || rung >= s.ladder.Len() {
		http.Error(w, "segment out of range", http.StatusNotFound)
		return
	}
	megabits := s.sizes.SegmentMegabits(rung, index)
	payload := proto.EncodeSegment(proto.SegmentRequest{Index: index, Rung: rung}, int(megabits*1e6/8))
	w.Header().Set("Content-Type", "video/mp4")
	w.Header().Set("Content-Length", strconv.Itoa(len(payload)))
	_, _ = w.Write(payload) // a failed write means the client hung up; nothing to do mid-response
}

// Client fetches the stream over HTTP; it implements the player's Fetcher
// contract (Manifest + FetchSegment).
type Client struct {
	base     string
	http     *http.Client
	manifest proto.Manifest
}

// Dial fetches the MPD from baseURL (e.g. "http://127.0.0.1:8080") and
// returns a ready client.
func Dial(baseURL string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = time.Minute
	}
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		http: &http.Client{Timeout: timeout},
	}
	resp, err := c.http.Get(c.base + "/manifest.mpd")
	if err != nil {
		return nil, fmt.Errorf("httpseg: manifest: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("httpseg: manifest: %s", resp.Status)
	}
	mpd, err := dash.Read(resp.Body)
	if err != nil {
		return nil, err
	}
	ladder, err := mpd.Ladder()
	if err != nil {
		return nil, err
	}
	// Recover the segment count from the advertised media duration.
	segs, err := segmentsFromMPD(mpd, float64(ladder.SegmentSeconds))
	if err != nil {
		return nil, err
	}
	mbps := make([]float64, ladder.Len())
	for i := range mbps {
		mbps[i] = float64(ladder.Mbps(i))
	}
	c.manifest = proto.Manifest{
		BitratesMbps:   mbps,
		SegmentSeconds: float64(ladder.SegmentSeconds),
		TotalSegments:  segs,
	}
	return c, nil
}

func segmentsFromMPD(m *dash.MPD, segSeconds float64) (int, error) {
	dur := m.MediaPresentationDur
	if dur == "" {
		return 0, fmt.Errorf("httpseg: MPD has no media duration")
	}
	if !strings.HasPrefix(dur, "PT") || !strings.HasSuffix(dur, "S") {
		return 0, fmt.Errorf("httpseg: unsupported duration %q", dur)
	}
	secs, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(dur, "PT"), "S"), 64)
	if err != nil {
		return 0, fmt.Errorf("httpseg: bad duration %q: %w", dur, err)
	}
	n := int(secs / segSeconds)
	if n < 1 {
		return 0, fmt.Errorf("httpseg: duration %q shorter than one segment", dur)
	}
	return n, nil
}

// Manifest returns the stream manifest.
func (c *Client) Manifest() proto.Manifest { return c.manifest }

// FetchSegment downloads one segment, returning the media byte count and
// the wall-clock duration of the transfer.
func (c *Client) FetchSegment(index, rung int) (int, time.Duration, error) {
	start := time.Now()
	resp, err := c.http.Get(fmt.Sprintf("%s/segment/%d/%d", c.base, index, rung))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, time.Since(start), fmt.Errorf("httpseg: segment %d/%d: %s", index, rung, resp.Status)
	}
	n, err := io.Copy(io.Discard, resp.Body)
	elapsed := time.Since(start)
	if err != nil {
		return 0, elapsed, err
	}
	media := int(n) - 8 // strip the echo header of proto.EncodeSegment
	if media < 0 {
		return 0, elapsed, fmt.Errorf("httpseg: short segment body (%d bytes)", n)
	}
	return media, elapsed, nil
}

// Close releases idle connections.
func (c *Client) Close() error {
	c.http.CloseIdleConnections()
	return nil
}
