package httpseg

import (
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/abr"
	"repro/internal/netem"
	"repro/internal/player"
	"repro/internal/predictor"
	"repro/internal/trace"
	"repro/internal/video"

	_ "repro/internal/core"

	"repro/internal/units"
)

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(video.Ladder{}, nil, 10); err == nil {
		t.Error("empty ladder accepted")
	}
	if _, err := NewServer(video.Prototype(), nil, 0); err == nil {
		t.Error("zero segments accepted")
	}
}

func TestHTTPRoutes(t *testing.T) {
	srv, err := NewServer(video.Prototype(), nil, 25)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Manifest route serves a DASH MPD.
	resp, err := http.Get(ts.URL + "/manifest.mpd")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("manifest status %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/dash+xml" {
		t.Errorf("manifest content type %q", ct)
	}
	resp.Body.Close()

	// Error routes.
	for _, path := range []string{"/segment/999/0", "/segment/0/99", "/segment/abc/0", "/segment/1", "/nope"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode == http.StatusOK {
			t.Errorf("%s unexpectedly succeeded", path)
		}
	}
	// Method filtering.
	r, err := http.Post(ts.URL+"/manifest.mpd", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status %s", r.Status)
	}
}

func TestClientRoundTrip(t *testing.T) {
	srv, err := NewServer(video.Prototype(), nil, 25)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c, err := Dial(ts.URL, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m := c.Manifest()
	if m.TotalSegments != 25 || len(m.BitratesMbps) != 5 || m.SegmentSeconds != 2 {
		t.Fatalf("manifest %+v", m)
	}
	for rung := 0; rung < 5; rung++ {
		n, elapsed, err := c.FetchSegment(3, rung)
		if err != nil {
			t.Fatal(err)
		}
		want := int(video.Prototype().SegmentMegabits(rung) * 1e6 / 8)
		if n != want {
			t.Errorf("rung %d: %d bytes, want %d", rung, n, want)
		}
		if elapsed <= 0 {
			t.Errorf("rung %d: elapsed %v", rung, elapsed)
		}
	}
	if _, _, err := c.FetchSegment(999, 0); err == nil {
		t.Error("out-of-range fetch succeeded")
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := Dial("http://127.0.0.1:1", 300*time.Millisecond); err == nil {
		t.Error("dead server accepted")
	}
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not an mpd"))
	}))
	defer bad.Close()
	if _, err := Dial(bad.URL, time.Second); err == nil {
		t.Error("junk manifest accepted")
	}
}

// TestPlayerOverShapedHTTP streams a full session through the HTTP transport
// on a trace-shaped listener: the end-to-end DASH flavour of the prototype.
func TestPlayerOverShapedHTTP(t *testing.T) {
	srv, err := NewServer(video.Prototype(), nil, 30)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	const scale = 20
	shaped := netem.NewListener(ln, func() (*netem.Shaper, error) {
		return netem.NewShaper(trace.Constant(units.Mbps(4), units.Seconds(4000)), scale)
	})
	hs := &http.Server{Handler: srv}
	go hs.Serve(shaped)
	defer hs.Close()

	client, err := Dial("http://"+ln.Addr().String(), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	soda, err := abr.New("soda", video.Prototype())
	if err != nil {
		t.Fatal(err)
	}
	res, err := player.Play(player.Config{
		Fetcher:    client,
		Controller: soda,
		Predictor:  predictor.NewSafeEMA(),
		BufferCap:  units.Seconds(15),
		TimeScale:  scale,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Segments != 30 {
		t.Fatalf("segments = %d", res.Metrics.Segments)
	}
	if res.Metrics.RebufferRatio > 0.05 {
		t.Errorf("rebuffering %v on a 4 Mb/s link for a 2 Mb/s ladder", res.Metrics.RebufferRatio)
	}
	// A 4 Mb/s link sustains the top 2 Mb/s rung: SODA should reach it.
	top := 0
	for _, r := range res.Rungs {
		if r == 4 {
			top++
		}
	}
	if top < 10 {
		t.Errorf("SODA reached the top rung only %d/30 times: %v", top, res.Rungs)
	}
}

// The compile-time check that httpseg.Client satisfies the player contract.
var _ player.Fetcher = (*Client)(nil)
