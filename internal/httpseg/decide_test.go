package httpseg

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/video"
)

func decideGet(t *testing.T, svc *DecideService, query string) decideReply {
	t.Helper()
	rw := httptest.NewRecorder()
	svc.ServeHTTP(rw, httptest.NewRequest("GET", "/decide?"+query, nil))
	if rw.Code != 200 {
		t.Fatalf("GET /decide?%s = %d: %s", query, rw.Code, rw.Body.String())
	}
	var reply decideReply
	if err := json.Unmarshal(rw.Body.Bytes(), &reply); err != nil {
		t.Fatalf("reply does not parse: %v", err)
	}
	return reply
}

func TestDecideServiceSessions(t *testing.T) {
	col := telemetry.NewCollector(nil, 256)
	svc, err := NewDecideService(video.Mobile(), 1<<12, 0, col)
	if err != nil {
		t.Fatal(err)
	}

	// A healthy session: ample throughput and a full buffer climbs the ladder.
	var last decideReply
	for i := 0; i < 12; i++ {
		last = decideGet(t, svc, "session=a&buffer=18&throughput=40")
	}
	if last.Rung <= 0 {
		t.Errorf("rich session stuck at rung %d", last.Rung)
	}
	if last.BitrateMbps <= 0 {
		t.Errorf("reply bitrate = %g, want > 0", last.BitrateMbps)
	}

	// A starved session stays low and must not inherit session a's state.
	poor := decideGet(t, svc, "session=b&buffer=0.5&throughput=0.4")
	if poor.Rung > 0 && poor.WaitSeconds == 0 {
		t.Errorf("starved fresh session picked rung %d", poor.Rung)
	}
	if poor.Session == last.Session {
		t.Error("distinct session keys share an id")
	}

	// Segment indices advance per session on downloads.
	next := decideGet(t, svc, "session=a&buffer=18&throughput=40")
	if next.Segment != last.Segment+1 {
		t.Errorf("segment advanced %d -> %d, want +1", last.Segment, next.Segment)
	}

	// Telemetry saw every decision, from the call site.
	if got := col.Decisions.Value(); got < 14 {
		t.Errorf("collector decisions = %g, want >= 14", got)
	}
	if got := col.Solves.Value(); got == 0 {
		t.Error("collector saw no solver work")
	}
	svc.RefreshMetrics()
	if got := svc.liveSessions.Value(); got != 2 {
		t.Errorf("live sessions gauge = %g, want 2", got)
	}
	if got := svc.cacheCapacity.Value(); got == 0 {
		t.Error("cache capacity gauge not populated")
	}
}

func TestDecideServiceValidation(t *testing.T) {
	svc, err := NewDecideService(video.Mobile(), 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, query := range []string{
		"",                                      // missing session
		"session=a",                             // missing buffer/throughput
		"session=a&buffer=-1&throughput=5",      // negative buffer
		"session=a&buffer=5&throughput=bogus",   // non-numeric
		"session=a&buffer=5&throughput=5&cap=0", // non-positive cap
		"session=a&buffer=5&throughput=5&prev=99", // prev out of range
	} {
		rw := httptest.NewRecorder()
		svc.ServeHTTP(rw, httptest.NewRequest("GET", "/decide?"+query, nil))
		if rw.Code != 400 {
			t.Errorf("GET /decide?%s = %d, want 400", query, rw.Code)
		}
	}
	rw := httptest.NewRecorder()
	svc.ServeHTTP(rw, httptest.NewRequest("POST", "/decide?session=a&buffer=5&throughput=5", nil))
	if rw.Code != 405 {
		t.Errorf("POST = %d, want 405", rw.Code)
	}
}

func TestDecideServiceEviction(t *testing.T) {
	svc, err := NewDecideService(video.Mobile(), 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < maxDecideSessions+10; i++ {
		decideGet(t, svc, fmt.Sprintf("session=s%d&buffer=10&throughput=8", i))
	}
	svc.mu.Lock()
	got := len(svc.sessions)
	_, oldestAlive := svc.sessions["s0"]
	svc.mu.Unlock()
	if got != maxDecideSessions {
		t.Fatalf("session table holds %d entries, want capped at %d", got, maxDecideSessions)
	}
	if oldestAlive {
		t.Error("oldest session survived eviction")
	}
}
