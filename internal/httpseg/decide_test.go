package httpseg

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/arena"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/video"
)

func decideGet(t *testing.T, svc *DecideService, query string) decideReply {
	t.Helper()
	rw := httptest.NewRecorder()
	svc.ServeHTTP(rw, httptest.NewRequest("GET", "/decide?"+query, nil))
	if rw.Code != 200 {
		t.Fatalf("GET /decide?%s = %d: %s", query, rw.Code, rw.Body.String())
	}
	var reply decideReply
	if err := json.Unmarshal(rw.Body.Bytes(), &reply); err != nil {
		t.Fatalf("reply does not parse: %v", err)
	}
	return reply
}

func decideStatus(t *testing.T, svc *DecideService, query string) (int, string) {
	t.Helper()
	rw := httptest.NewRecorder()
	svc.ServeHTTP(rw, httptest.NewRequest("GET", "/decide?"+query, nil))
	return rw.Code, rw.Header().Get("Retry-After")
}

func TestDecideServiceSessions(t *testing.T) {
	col := telemetry.NewCollector(nil, 256)
	svc, err := NewDecideService(video.Mobile(), DecideOptions{CacheEntries: 1 << 12}, col)
	if err != nil {
		t.Fatal(err)
	}

	// A healthy session: ample throughput and a full buffer climbs the ladder.
	var last decideReply
	for i := 0; i < 12; i++ {
		last = decideGet(t, svc, "session=a&buffer=18&throughput=40")
	}
	if last.Rung <= 0 {
		t.Errorf("rich session stuck at rung %d", last.Rung)
	}
	if last.BitrateMbps <= 0 {
		t.Errorf("reply bitrate = %g, want > 0", last.BitrateMbps)
	}

	// A starved session stays low and must not inherit session a's state.
	poor := decideGet(t, svc, "session=b&buffer=0.5&throughput=0.4")
	if poor.Rung > 0 && poor.WaitSeconds == 0 {
		t.Errorf("starved fresh session picked rung %d", poor.Rung)
	}
	if poor.Session == last.Session {
		t.Error("distinct session keys share an id")
	}

	// Segment indices advance per session on downloads.
	next := decideGet(t, svc, "session=a&buffer=18&throughput=40")
	if next.Segment != last.Segment+1 {
		t.Errorf("segment advanced %d -> %d, want +1", last.Segment, next.Segment)
	}

	// Telemetry saw every decision, from the call site.
	if got := col.Decisions.Value(); got < 14 {
		t.Errorf("collector decisions = %g, want >= 14", got)
	}
	if got := col.Solves.Value(); got == 0 {
		t.Error("collector saw no solver work")
	}
	if got := svc.decideLatency.Count(); got < 14 {
		t.Errorf("decide latency histogram count = %d, want >= 14", got)
	}
	svc.RefreshMetrics()
	if got := svc.liveSessions.Value(); got != 2 {
		t.Errorf("live sessions gauge = %g, want 2", got)
	}
	if got := svc.cacheCapacity.Value(); got == 0 {
		t.Error("cache capacity gauge not populated")
	}
}

func TestDecideServiceValidation(t *testing.T) {
	svc, err := NewDecideService(video.Mobile(), DecideOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, query := range []string{
		"",                                      // missing session
		"session=a",                             // missing buffer/throughput
		"session=a&buffer=-1&throughput=5",      // negative buffer
		"session=a&buffer=5&throughput=bogus",   // non-numeric
		"session=a&buffer=5&throughput=5&cap=0", // non-positive cap
		"session=a&buffer=5&throughput=5&prev=99",    // prev out of range
		"session=a&buffer=5&throughput=5&segment=-1", // negative segment
	} {
		rw := httptest.NewRecorder()
		svc.ServeHTTP(rw, httptest.NewRequest("GET", "/decide?"+query, nil))
		if rw.Code != 400 {
			t.Errorf("GET /decide?%s = %d, want 400", query, rw.Code)
		}
	}
	rw := httptest.NewRecorder()
	svc.ServeHTTP(rw, httptest.NewRequest("POST", "/decide?session=a&buffer=5&throughput=5", nil))
	if rw.Code != 405 {
		t.Errorf("POST = %d, want 405", rw.Code)
	}
}

// TestSessionTableConformance is the lifecycle bit-identity contract: the
// session table manages lifecycle only, never solver inputs, so a service
// whose sessions are evicted and recreated between every request decides
// exactly like one whose sessions live forever — provided the client carries
// its own state (prev, segment), which is precisely what the table does not
// own. Any divergence means lifecycle leaked into the decision path.
func TestSessionTableConformance(t *testing.T) {
	ladders := map[string]video.Ladder{"mobile": video.Mobile(), "prototype": video.Prototype()}
	for name, ladder := range ladders {
		t.Run(name, func(t *testing.T) {
			longLived, err := NewDecideService(ladder, DecideOptions{CacheEntries: 1 << 10, TableQuantum: 0.5}, nil)
			if err != nil {
				t.Fatal(err)
			}
			// One-session capacity with an aggressive TTL: every new session
			// key forces eviction of the previous one, and the sweep below
			// empties the table between requests.
			churny, err := NewDecideService(ladder, DecideOptions{
				CacheEntries: 1 << 10, TableQuantum: 0.5,
				MaxSessions: 2, SessionTTL: time.Nanosecond,
			}, nil)
			if err != nil {
				t.Fatal(err)
			}

			prev := -1
			segment := 0
			for i := 0; i < 200; i++ {
				// A deterministic walk over buffer x throughput, including
				// out-of-table-domain throughputs (solver fallbacks).
				buffer := float64(i%23) * 0.9
				throughput := 0.3 + float64((i*7)%31)*0.5
				req := func() *DecideRequest {
					return &DecideRequest{
						Session:    fmt.Sprintf("s%d", i), // fresh key every request on both services
						Buffer:     units.Seconds(buffer),
						Throughput: units.Mbps(throughput),
						Segment:    segment,
						Prev:       prev,
						HavePrev:   true,
					}
				}
				a := longLived.Decide(req())
				b := churny.Decide(req())
				if a.Status != StatusOK || b.Status != StatusOK {
					t.Fatalf("step %d: status %d vs %d", i, a.Status, b.Status)
				}
				if a.Rung != b.Rung || a.WaitSeconds != b.WaitSeconds {
					t.Fatalf("step %d (buffer=%.1f throughput=%.1f prev=%d): long-lived rung %d (wait %g) != churny rung %d (wait %g)",
						i, buffer, throughput, prev, a.Rung, a.WaitSeconds, b.Rung, b.WaitSeconds)
				}
				if a.Rung >= 0 {
					prev = a.Rung
					segment++
				}
				// Aggressive sweep so the churny table really evicts.
				churny.SweepSessions(time.Now().Add(time.Second))
			}
			if st := churny.SessionStats(); st.EvictedIdle == 0 {
				t.Fatal("churny service never evicted — the conformance run did not exercise recreation")
			}
		})
	}
}

// TestEvictRecreateRecycledSlot pins the arena half of the lifecycle
// contract. Eviction frees the session's arena slot; a later admission pops
// that slot off the shard free list and recreates a controller in place
// (same index, bumped generation). The recreated session must decide
// bit-identically to a long-lived reference service — nothing of the
// previous tenant may survive slot recycling.
func TestEvictRecreateRecycledSlot(t *testing.T) {
	reference, err := NewDecideService(video.Mobile(), DecideOptions{CacheEntries: 1 << 10, TableQuantum: 0.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	churny, err := NewDecideService(video.Mobile(), DecideOptions{
		CacheEntries: 1 << 10, TableQuantum: 0.5,
		MaxSessions: 2, SessionTTL: time.Nanosecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}

	// handleOf reads the arena handle of an existing session (the key must be
	// live: a nil create on a missing key would admit a handle-less session).
	handleOf := func(key string) arena.Handle {
		t.Helper()
		s, err := churny.sessions.Acquire(key, time.Now().UnixNano(), nil)
		if err != nil {
			t.Fatalf("resolving %q: %v", key, err)
		}
		h := arena.Handle(s.Handle)
		churny.sessions.Release(s, time.Now().UnixNano())
		return h
	}

	type slot struct {
		shard int
		idx   uint32
	}
	gens := map[slot]uint32{}
	recycled := 0
	prev := -1
	segment := 0
	// Enough churn cycles that AllocAny's round-robin cursor revisits every
	// shard several times, guaranteeing free-list pops of recycled slots.
	iters := 16 * churny.arena.Shards()
	if iters < 64 {
		iters = 64
	}
	for i := 0; i < iters; i++ {
		buffer := float64(i%23) * 0.9
		throughput := 0.3 + float64((i*7)%31)*0.5
		key := fmt.Sprintf("r%d", i) // fresh key every request on both services
		req := func() *DecideRequest {
			return &DecideRequest{
				Session:    key,
				Buffer:     units.Seconds(buffer),
				Throughput: units.Mbps(throughput),
				Segment:    segment,
				Prev:       prev,
				HavePrev:   true,
			}
		}
		a := reference.Decide(req())
		b := churny.Decide(req())
		if a.Status != StatusOK || b.Status != StatusOK {
			t.Fatalf("step %d: status %d vs %d", i, a.Status, b.Status)
		}
		if a.Rung != b.Rung || a.WaitSeconds != b.WaitSeconds {
			t.Fatalf("step %d (buffer=%.1f throughput=%.1f prev=%d): reference rung %d (wait %g) != recycled rung %d (wait %g)",
				i, buffer, throughput, prev, a.Rung, a.WaitSeconds, b.Rung, b.WaitSeconds)
		}
		h := handleOf(key)
		s := slot{h.Shard(), h.Index()}
		if g, seen := gens[s]; seen && g != h.Generation() {
			recycled++
		}
		gens[s] = h.Generation()
		if a.Rung >= 0 {
			prev = a.Rung
			segment++
		}
		// Evict between requests so each admission reclaims a freed slot.
		churny.SweepSessions(time.Now().Add(time.Second))
	}
	if recycled == 0 {
		t.Fatal("no session was ever recreated on a recycled arena slot — the run exercised nothing")
	}
}

// TestSessionChurnSteadyState is the unbounded-growth regression test for
// the old sessions/order/nextID maps: under client churn with periodic
// sweeps, the live session count stays bounded and evicted keys are gone.
func TestSessionChurnSteadyState(t *testing.T) {
	svc, err := NewDecideService(video.Mobile(), DecideOptions{
		MaxSessions: 128,
		SessionTTL:  time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sweepAt := time.Now()
	for i := 0; i < 5000; i++ {
		res := svc.Decide(&DecideRequest{
			Session:    fmt.Sprintf("churn-%d", i),
			Buffer:     units.Seconds(10),
			Throughput: units.Mbps(8),
			Segment:    -1,
		})
		if res.Status != StatusOK {
			t.Fatalf("churn request %d rejected: %d", i, res.Status)
		}
		if i%64 == 0 {
			sweepAt = sweepAt.Add(time.Second)
			svc.SweepSessions(sweepAt)
		}
	}
	if got := svc.SessionStats().Active; got > 128 {
		t.Fatalf("active sessions %d exceed the 128 cap under churn", got)
	}
	svc.SweepSessions(sweepAt.Add(time.Hour))
	if got := svc.SessionStats().Active; got != 0 {
		t.Fatalf("sessions leaked: %d still live after final sweep", got)
	}
	if got := svc.evictions.Value(); got == 0 {
		t.Error("eviction counter never moved")
	}
}

func TestDecideServiceRateLimit(t *testing.T) {
	svc, err := NewDecideService(video.Mobile(), DecideOptions{
		RPSPerClient:   1,
		BurstPerClient: 2,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := "session=a&client=c1&buffer=10&throughput=8"
	for i := 0; i < 2; i++ {
		if code, _ := decideStatus(t, svc, q); code != 200 {
			t.Fatalf("burst request %d = %d, want 200", i, code)
		}
	}
	code, retry := decideStatus(t, svc, q)
	if code != 429 {
		t.Fatalf("post-burst request = %d, want 429", code)
	}
	if retry == "" || retry == "0" {
		t.Fatalf("429 Retry-After = %q, want >= 1s", retry)
	}
	// A different client is not throttled by c1's spend.
	if code, _ := decideStatus(t, svc, "session=b&client=c2&buffer=10&throughput=8"); code != 200 {
		t.Fatalf("second client = %d, want 200", code)
	}
	if got := svc.rejectedRate.Value(); got != 1 {
		t.Errorf("rejected{ratelimit} = %g, want 1", got)
	}
}

func TestDecideServiceCapacityShed(t *testing.T) {
	svc, err := NewDecideService(video.Mobile(), DecideOptions{MaxSessions: 2, SessionTTL: -1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// MaxSessions 2 with no TTL: the third distinct session is shed.
	shed := 0
	for i := 0; i < 8; i++ {
		code, _ := decideStatus(t, svc, fmt.Sprintf("session=s%d&buffer=10&throughput=8", i))
		if code == 503 {
			shed++
		}
	}
	if shed == 0 {
		t.Fatal("no request shed at capacity")
	}
	if got := svc.rejectedCapacity.Value(); got != float64(shed) {
		t.Errorf("rejected{capacity} = %g, want %d", got, shed)
	}
}

func TestDecideServiceInflightShed(t *testing.T) {
	svc, err := NewDecideService(video.Mobile(), DecideOptions{MaxInflight: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Saturate the single in-flight slot from the outside.
	if !svc.inflight.TryAcquire() {
		t.Fatal("could not claim the in-flight slot")
	}
	code, retry := decideStatus(t, svc, "session=a&buffer=10&throughput=8")
	if code != 503 {
		t.Fatalf("decide with saturated in-flight bound = %d, want 503", code)
	}
	if retry == "" {
		t.Fatal("503 carries no Retry-After")
	}
	svc.inflight.Release()
	if code, _ := decideStatus(t, svc, "session=a&buffer=10&throughput=8"); code != 200 {
		t.Fatalf("decide after slot release = %d, want 200", code)
	}
	if got := svc.rejectedLoad.Value(); got != 1 {
		t.Errorf("rejected{inflight} = %g, want 1", got)
	}
}

func TestDecideServiceDrain(t *testing.T) {
	svc, err := NewDecideService(video.Mobile(), DecideOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		decideGet(t, svc, fmt.Sprintf("session=s%d&buffer=10&throughput=8", i))
	}
	sessions, clean := svc.Drain(time.Second)
	if sessions != 3 {
		t.Fatalf("Drain reported %d sessions, want 3", sessions)
	}
	if !clean {
		t.Fatal("Drain with no in-flight work reported unclean")
	}
	code, _ := decideStatus(t, svc, "session=s0&buffer=10&throughput=8")
	if code != 503 {
		t.Fatalf("decide while draining = %d, want 503", code)
	}
	if got := svc.rejectedDraining.Value(); got != 1 {
		t.Errorf("rejected{draining} = %g, want 1", got)
	}
}
