package netem

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"

	"repro/internal/units"
)

func TestShaperValidation(t *testing.T) {
	if _, err := NewShaper(&trace.Trace{}, 1); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := NewShaper(nil, 1); err == nil {
		t.Error("nil trace accepted")
	}
}

func TestShaperPacesToTraceRate(t *testing.T) {
	// 8 Mb/s trace: 1 MB (8 Mb) should take about one second.
	s, err := NewShaper(trace.Constant(units.Mbps(8), units.Seconds(100)), 1)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	const total = 1 << 20
	sent := 0
	for sent < total {
		n := 64 * 1024
		if n > total-sent {
			n = total - sent
		}
		s.Wait(n)
		sent += n
	}
	elapsed := time.Since(start).Seconds()
	if elapsed < 0.8 || elapsed > 1.5 {
		t.Errorf("1 MB at 8 Mb/s took %.2fs, want ~1s", elapsed)
	}
}

func TestShaperTimeScale(t *testing.T) {
	// Same transfer with 10x compression should take about 0.1 s.
	s, err := NewShaper(trace.Constant(units.Mbps(8), units.Seconds(100)), 10)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	sent := 0
	for sent < 1<<20 {
		s.Wait(64 * 1024)
		sent += 64 * 1024
	}
	elapsed := time.Since(start).Seconds()
	if elapsed > 0.4 {
		t.Errorf("compressed transfer took %.2fs, want ~0.1s", elapsed)
	}
}

func TestStreamTime(t *testing.T) {
	s, _ := NewShaper(trace.Constant(units.Mbps(8), units.Seconds(100)), 5)
	if got := s.StreamTime(time.Now()); got != 0 {
		t.Errorf("stream time before start = %v", got)
	}
	now := time.Now()
	s.Start(now)
	if got := s.StreamTime(now.Add(2 * time.Second)); got < 9.9 || got > 10.1 {
		t.Errorf("stream time after 2 s wall at 5x = %v, want ~10", got)
	}
	// Second Start is a no-op.
	s.Start(now.Add(time.Hour))
	if got := s.StreamTime(now.Add(2 * time.Second)); got < 9.9 || got > 10.1 {
		t.Errorf("Start not idempotent: %v", got)
	}
}

func TestWaitZeroBytes(t *testing.T) {
	s, _ := NewShaper(trace.Constant(units.Mbps(8), units.Seconds(100)), 1)
	if d := s.Wait(0); d != 0 {
		t.Errorf("Wait(0) slept %v", d)
	}
	if d := s.Wait(-5); d != 0 {
		t.Errorf("Wait(-5) slept %v", d)
	}
}

func TestShapedConnEndToEnd(t *testing.T) {
	// Send 512 KiB (4 Mb) through a shaped TCP connection at 16 Mb/s with
	// 4x compression: expect roughly 4/16/4 = 62 ms, certainly within
	// [40 ms, 600 ms], and byte-exact delivery.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	shaped := NewListener(ln, func() (*Shaper, error) {
		return NewShaper(trace.Constant(units.Mbps(16), units.Seconds(1000)), 4)
	})

	payload := bytes.Repeat([]byte{0xAB}, 512*1024)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := shaped.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		defer conn.Close()
		if _, err := conn.Write(payload); err != nil {
			t.Error(err)
		}
	}()

	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	start := time.Now()
	got, err := io.ReadAll(client)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start).Seconds()
	wg.Wait()
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted: %d bytes", len(got))
	}
	if elapsed < 0.04 || elapsed > 0.8 {
		t.Errorf("shaped transfer took %.3fs, want ~0.06s", elapsed)
	}
	// Effective rate must be near 16*4 = 64 Mb/s, definitely below an
	// unshaped loopback (hundreds of Mb/s+).
	rate := float64(len(got)) * 8 / 1e6 / elapsed
	if rate > 150 {
		t.Errorf("effective rate %.0f Mb/s suggests shaping is not applied", rate)
	}
}

func TestListenerFactoryErrorClosesConn(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	shaped := NewListener(ln, func() (*Shaper, error) {
		return nil, io.ErrUnexpectedEOF
	})
	go func() {
		c, _ := net.Dial("tcp", ln.Addr().String())
		if c != nil {
			defer c.Close()
			buf := make([]byte, 1)
			c.Read(buf) // wait for close
		}
	}()
	if _, err := shaped.Accept(); err == nil {
		t.Error("factory error not propagated")
	}
}

func TestSharedShaperSplitsCapacity(t *testing.T) {
	// Two concurrent senders through one 16 Mb/s shaper: together they are
	// paced at the link rate, and neither starves (rough fairness).
	s, err := NewShaper(trace.Constant(units.Mbps(16), units.Seconds(1000)), 1)
	if err != nil {
		t.Fatal(err)
	}
	const each = 1 << 20 // 8 Mb per sender, 16 Mb total => ~1 s
	start := time.Now()
	var wg sync.WaitGroup
	times := make([]time.Duration, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sent := 0
			for sent < each {
				s.Wait(32 * 1024)
				sent += 32 * 1024
			}
			times[i] = time.Since(start)
		}(i)
	}
	wg.Wait()
	total := time.Since(start).Seconds()
	if total < 0.8 || total > 1.6 {
		t.Errorf("2x1MB over a shared 16 Mb/s shaper took %.2fs, want ~1s", total)
	}
	// Neither sender finished long before the other.
	d := times[0] - times[1]
	if d < 0 {
		d = -d
	}
	if d.Seconds() > 0.5 {
		t.Errorf("unfair completion times: %v vs %v", times[0], times[1])
	}
}

func TestSharedListenerContention(t *testing.T) {
	// Two real TCP connections through one shared shaper: the combined
	// goodput matches the link, not 2x the link.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	shaper, err := NewShaper(trace.Constant(units.Mbps(32), units.Seconds(1000)), 4) // 128 Mb/s wall
	if err != nil {
		t.Fatal(err)
	}
	shared := NewSharedListener(ln, shaper)
	payload := bytes.Repeat([]byte{1}, 512*1024) // 4 Mb each, 8 Mb total
	go func() {
		for i := 0; i < 2; i++ {
			conn, err := shared.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				c.Write(payload)
			}(conn)
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			io.ReadAll(c)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	// 8 Mb at 128 Mb/s wall = ~62 ms; two independent shapers would halve it.
	if elapsed < 0.05 {
		t.Errorf("transfer finished in %.3fs: contention not enforced", elapsed)
	}
	if elapsed > 0.8 {
		t.Errorf("transfer took %.3fs, far above the shaped rate", elapsed)
	}
}
