// Package netem shapes real network connections to replay bandwidth traces —
// the substitute for the Chrome DevTools WebSocket throttling the paper's
// prototype evaluation used to replay its network datasets (§6.2).
//
// A Shaper meters bytes against the integral of a trace's bandwidth over
// wall-clock time (a token bucket whose refill rate follows the trace), and
// a shaped net.Conn applies the shaper to every write. Because shaping
// happens on the sender, the receiver experiences genuine TCP dynamics —
// bursty arrivals, slow ramp-up after idle — rather than idealized fluid
// delivery, which is exactly the stressor the prototype evaluation adds over
// the numerical simulations.
//
// Shapers support time compression (TimeScale): with TimeScale = s the trace
// plays back s× faster at s× the bandwidth, so a 10-minute session completes
// in 10/s minutes while every controller decision sees identical dynamics in
// stream time. The prototype harness uses this to keep the Figure 12
// experiment wall-clock friendly.
package netem

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/trace"
	"repro/internal/units"
)

// Shaper meters bytes against a bandwidth trace. It is a token bucket whose
// refill rate follows the trace and whose burst size is bounded: capacity
// that goes unused while the link is idle is NOT banked beyond
// BurstSeconds' worth of the current rate, exactly like a policer on a real
// bottleneck. (Without the bound, a player idling at its buffer cap would
// accumulate unlimited credit and each subsequent download would start with
// an unrealistic instantaneous burst.)
type Shaper struct {
	tr        *trace.Trace
	timeScale float64 // dimensionless wall-clock compression factor
	chunk     int
	burst     units.Seconds

	mu       sync.Mutex
	start    time.Time
	consumed units.Megabits // capacity already granted
	started  bool
}

// NewShaper builds a shaper replaying the trace. timeScale >= 1 compresses
// wall-clock time (see the package comment). Writes are paced in 16 KiB
// chunks.
func NewShaper(tr *trace.Trace, timeScale float64) (*Shaper, error) {
	if tr == nil || tr.Len() == 0 {
		return nil, fmt.Errorf("netem: empty trace")
	}
	if timeScale <= 0 {
		timeScale = 1
	}
	return &Shaper{tr: tr, timeScale: timeScale, chunk: 16 * 1024, burst: units.Seconds(0.3)}, nil
}

// Start pins the shaper's time origin. The first Wait starts the clock
// implicitly when Start was not called.
func (s *Shaper) Start(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.started {
		s.start = now
		s.started = true
	}
}

// StreamTime converts a wall-clock instant into stream (trace) time.
func (s *Shaper) StreamTime(now time.Time) units.Seconds {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.started {
		return 0
	}
	return units.Seconds(now.Sub(s.start).Seconds() * s.timeScale)
}

// Wait blocks until n bytes may be sent, according to the trace. It returns
// the wall-clock time waited.
func (s *Shaper) Wait(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	now := time.Now()
	s.Start(now)

	megabits := units.Bits(8 * n).Megabits()
	s.mu.Lock()
	// Enforce the burst bound: forfeit credit accumulated while idle beyond
	// burst (stream time) of capacity.
	streamNow := units.Seconds(now.Sub(s.start).Seconds() * s.timeScale)
	accrued := s.tr.TransferableMegabits(units.Seconds(0), streamNow)
	if bank := s.tr.BandwidthAt(streamNow).MegabitsIn(s.burst); s.consumed < accrued-bank {
		s.consumed = accrued - bank
	}
	target := s.consumed + megabits
	s.consumed = target
	start := s.start
	s.mu.Unlock()

	// Find the stream time at which the trace has carried `target` megabits,
	// then sleep until the corresponding wall-clock instant.
	streamSec := s.timeUntilTransferred(target)
	due := start.Add(time.Duration(float64(streamSec) / s.timeScale * float64(time.Second)))
	wait := time.Until(due)
	if wait > 0 {
		time.Sleep(wait)
		return wait
	}
	return 0
}

// timeUntilTransferred returns the stream time needed for the trace to carry
// the given megabits from stream time zero.
func (s *Shaper) timeUntilTransferred(megabits units.Megabits) units.Seconds {
	dt, err := s.tr.DownloadTime(units.Seconds(0), megabits)
	if err != nil {
		// All-zero trace: report an arbitrarily distant time.
		return 1e12
	}
	return dt
}

// Conn wraps a net.Conn, pacing writes through the shaper.
type Conn struct {
	net.Conn
	shaper *Shaper
}

// NewConn returns c with writes paced by the shaper.
func NewConn(c net.Conn, s *Shaper) *Conn { return &Conn{Conn: c, shaper: s} }

// Write implements net.Conn, sending in paced chunks.
func (c *Conn) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		n := c.shaper.chunk
		if n > len(p) {
			n = len(p)
		}
		c.shaper.Wait(n)
		w, err := c.Conn.Write(p[:n])
		total += w
		if err != nil {
			return total, err
		}
		p = p[n:]
	}
	return total, nil
}

// Listener wraps a net.Listener so every accepted connection is shaped by a
// fresh shaper built from the factory (one independent trace replay per
// connection).
type Listener struct {
	net.Listener
	factory func() (*Shaper, error)
}

// NewListener builds a shaping listener. factory is invoked per connection.
func NewListener(l net.Listener, factory func() (*Shaper, error)) *Listener {
	return &Listener{Listener: l, factory: factory}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	s, err := l.factory()
	if err != nil {
		_ = c.Close() // best effort; the factory error is the one to report
		return nil, err
	}
	return NewConn(c, s), nil
}

// NewSharedListener wraps l so every accepted connection is paced by the
// same shaper: concurrent connections contend for the trace's capacity like
// flows sharing a bottleneck link (the multi-client fairness setting).
func NewSharedListener(l net.Listener, s *Shaper) *Listener {
	return NewListener(l, func() (*Shaper, error) { return s, nil })
}
