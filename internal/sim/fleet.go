// Fleet mode: advance hundreds of thousands of virtual players on a fixed
// worker pool, using a hierarchical time-wheel over segment-completion
// events instead of one goroutine (or one full Run loop) per session.
//
// The single-session simulator in sim.go is the reference player; the fleet
// trades its trace-integration fidelity for the loadgen player model (a
// download occupies bitrate·L/throughput seconds of link time against the
// session's current trace sample) so that one host can hold the entire
// cohort's state in struct-of-arrays arenas and touch only the sessions
// whose next event is due. Controllers are the real thing — every session
// runs its own core.Controller out of the arena slab, sharing the fleet
// decision tables and solve cache — so fleet cohorts exercise exactly the
// production decide path.
package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/abr"
	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/flightrec"
	"repro/internal/telemetry"
	"repro/internal/tracegen"
	"repro/internal/units"
	"repro/internal/video"
)

// FleetConfig parameterises a fleet cohort.
type FleetConfig struct {
	// Sessions is the concurrent virtual-player count.
	Sessions int
	// Workers is the fixed worker-pool size; each worker exclusively owns
	// one arena shard of sessions and its own time-wheel, so the steady
	// decide path takes no locks. Non-positive derives it from GOMAXPROCS.
	Workers int
	// Ladder is the bitrate ladder every session streams. Required.
	Ladder video.Ladder
	// BufferCap is the player buffer cap (default 20 s).
	BufferCap units.Seconds
	// Controller configures every session's controller. Nil gets the fleet
	// defaults: production config, per-session memo disabled (the shared
	// decision tables carry the hot path; per-session memory is what limits
	// cohort size), compiled tables at quantum 0.5.
	Controller *core.Config
	// Profile calibrates the per-session throughput process; the zero value
	// means tracegen.Puffer().
	Profile tracegen.Profile
	// TracePool bounds the distinct traces synthesized and shared
	// round-robin across sessions (default min(Sessions, 256)).
	TracePool int
	// SessionLength is the synthesized trace length (default 120 s; samples
	// wrap, so sessions are effectively endless).
	SessionLength units.Seconds
	// Seed makes trace synthesis — and therefore the whole cohort —
	// reproducible.
	Seed uint64
	// TickSeconds is the time-wheel granularity (default 10 ms). Events
	// quantize up to the next tick boundary.
	TickSeconds units.Seconds
	// Telemetry, when non-nil, receives one DecisionEvent per decision via
	// per-session pooled recorders bound into the cohort's arena slots.
	// Nil (the benchmark configuration) records nothing and keeps the
	// steady path allocation-free.
	Telemetry *telemetry.Collector
	// Watchdog, when non-nil, observes every decision with the QoE-
	// consistency detectors. Per-session detector state lives in the
	// cohort's arena slots (one flightrec.SessionWatch per slab entry), so
	// attaching a watchdog allocates nothing on the steady path; incident
	// totals surface through FleetReport. Independent of Telemetry.
	Watchdog *flightrec.Watchdog
}

// FleetReport aggregates a cohort's progress counters.
type FleetReport struct {
	Sessions  int
	Workers   int
	Decisions uint64
	Waits     uint64
	Segments  uint64
	// StallSeconds is cumulative rebuffer time across the cohort.
	StallSeconds units.Seconds
	// SimSeconds is the stream-clock time the cohort has advanced through.
	SimSeconds units.Seconds
	// Incidents is the cohort's total QoE-watchdog incident count (zero
	// when no watchdog is attached); IncidentsPerThousand is the same
	// normalized per 1000 sessions — the gate-schema denomination.
	Incidents            uint64
	IncidentsPerThousand float64
	Arena                arena.Stats
}

// Time-wheel geometry: two levels of 256 buckets. At the default 10 ms tick
// the inner wheel spans 2.56 s (one segment-download cadence) and the outer
// 655 s; events beyond the outer span park in their outer bucket and lap.
const (
	wheelBits  = 8
	wheelSlots = 1 << wheelBits
	wheelMask  = wheelSlots - 1
	noSession  = ^uint32(0)
)

// wheel is one worker's hierarchical time-wheel. Buckets chain sessions
// intrusively through their arena State.Next links, so scheduling allocates
// nothing; State.DueTick disambiguates bucket collisions on expiry.
type wheel struct {
	now uint32 // current tick
	l0  [wheelSlots]uint32
	l1  [wheelSlots]uint32
}

func (w *wheel) init() {
	for i := range w.l0 {
		w.l0[i] = noSession
		w.l1[i] = noSession
	}
}

// schedule parks session `local` to fire at absolute tick `due` (clamped to
// the future — the wheel cannot fire in the past).
func (w *wheel) schedule(states []*arena.State, local uint32, due uint32) {
	if due <= w.now {
		due = w.now + 1
	}
	st := states[local]
	st.DueTick = due
	var bucket *uint32
	if due-w.now < wheelSlots {
		bucket = &w.l0[due&wheelMask]
	} else {
		bucket = &w.l1[(due>>wheelBits)&wheelMask]
	}
	st.Next = *bucket
	*bucket = local
}

// advance runs the wheel forward to absolute tick `to`, invoking fire for
// every due session at its due tick. fire may (and does) reschedule.
func (w *wheel) advance(states []*arena.State, to uint32, fire func(local uint32, tick uint32)) {
	for w.now < to {
		w.now++
		tick := w.now
		if tick&wheelMask == 0 {
			// Entering a new outer-wheel slot: cascade its chain. Sessions
			// due at the boundary tick itself fire now (re-parking would
			// clamp them a tick late); sessions due within the new inner
			// span re-park in level 0; sessions lapping the outer span land
			// back in level 1.
			slot := (tick >> wheelBits) & wheelMask
			chain := w.l1[slot]
			w.l1[slot] = noSession
			for chain != noSession {
				st := states[chain]
				next := st.Next
				if st.DueTick == tick {
					fire(chain, tick)
				} else {
					w.schedule(states, chain, st.DueTick)
				}
				chain = next
			}
		}
		chain := w.l0[tick&wheelMask]
		w.l0[tick&wheelMask] = noSession
		for chain != noSession {
			st := states[chain]
			next := st.Next
			if st.DueTick == tick {
				fire(chain, tick)
			} else {
				// Bucket collision from a cascade: not due yet, re-park.
				w.schedule(states, chain, st.DueTick)
			}
			chain = next
		}
	}
}

// constPredictor is the per-worker constant-throughput predictor. Binding
// ctx.Predict to its method value once at worker setup — and mutating omega
// per decision — avoids the per-decision closure allocation the
// single-session simulator pays.
type constPredictor struct{ omega units.Mbps }

func (p *constPredictor) predict(units.Seconds) units.Mbps { return p.omega }

// fleetWorker owns one arena shard of sessions and drives their wheel.
// Controller and state pointers are resolved from the arena once at setup —
// the shard-ownership contract makes them stable for the cohort's lifetime —
// so the per-decision path is array indexing, not handle validation.
type fleetWorker struct {
	f       *Fleet
	shard   int
	base    int // global index of this worker's first session
	ctrls   []*core.Controller
	states  []*arena.State
	recs    []*telemetry.SessionRecorder
	watches []*flightrec.SessionWatch
	wheel   wheel
	ctx     abr.Context
	pred    constPredictor
	fireFn  func(local uint32, tick uint32) // w.fire, bound once at setup

	decisions uint64
	waits     uint64
	segments  uint64
	stall     units.Seconds

	cmd chan uint32 // absolute target tick per Advance
}

// Fleet is a cohort of virtual players advancing in simulated time. Build
// with NewFleet, drive with Advance, read with Report, release with Close.
// Methods are not safe for concurrent use with each other.
type Fleet struct {
	cfg     FleetConfig
	arena   *arena.Arena
	pool    [][]units.Mbps
	workers []*fleetWorker
	ticks   uint32 // absolute cohort clock, in wheel ticks
	barrier sync.WaitGroup
	closed  bool
}

// fleetControllerConfig is the default controller configuration for fleet
// cohorts; exported through NewFleet's nil-Controller behaviour.
func fleetControllerConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.SolveMemoSize = 0
	cfg.DecisionTable = core.NewDecisionTables()
	cfg.TableQuantum = 0.5
	return cfg
}

// NewFleet builds the cohort: synthesizes the trace pool, carves the arena
// into per-worker shards, seats every session's controller and player state
// in its slot, schedules first events staggered across one segment duration,
// and parks the worker pool. No decisions run until Advance.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Sessions < 1 {
		return nil, errors.New("sim: fleet needs at least one session")
	}
	if cfg.Ladder.Len() == 0 {
		return nil, errors.New("sim: fleet needs a non-empty ladder")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers > cfg.Sessions {
		cfg.Workers = cfg.Sessions
	}
	if cfg.Workers > 256 {
		cfg.Workers = 256 // the arena's shard-addressing bound
	}
	if cfg.BufferCap <= 0 {
		cfg.BufferCap = units.Seconds(20)
	}
	if cfg.BufferCap < cfg.Ladder.SegmentSeconds {
		return nil, fmt.Errorf("sim: fleet buffer cap %v below one segment (%v s)",
			cfg.BufferCap, cfg.Ladder.SegmentSeconds)
	}
	if cfg.Profile.Name == "" {
		cfg.Profile = tracegen.Puffer()
	}
	if cfg.SessionLength <= 0 {
		cfg.SessionLength = units.Seconds(120)
	}
	if cfg.TracePool <= 0 || cfg.TracePool > cfg.Sessions {
		cfg.TracePool = cfg.Sessions
	}
	if cfg.TracePool > 256 {
		cfg.TracePool = 256
	}
	if cfg.TickSeconds <= 0 {
		cfg.TickSeconds = units.Seconds(0.01)
	}
	ctrlCfg := fleetControllerConfig()
	if cfg.Controller != nil {
		ctrlCfg = *cfg.Controller
	}
	if err := ctrlCfg.Validate(); err != nil {
		return nil, fmt.Errorf("sim: fleet controller config: %w", err)
	}

	f := &Fleet{cfg: cfg}
	f.pool = make([][]units.Mbps, cfg.TracePool)
	for i := range f.pool {
		tr, err := cfg.Profile.Session(cfg.SessionLength, cfg.Seed, i)
		if err != nil {
			return nil, fmt.Errorf("sim: synthesizing fleet trace %d: %w", i, err)
		}
		samples := tr.Samples()
		mbps := make([]units.Mbps, len(samples))
		for j, s := range samples {
			mbps[j] = s.Mbps
		}
		f.pool[i] = mbps
	}

	perShard := (cfg.Sessions + cfg.Workers - 1) / cfg.Workers
	f.arena = arena.New(cfg.Workers, perShard)

	// First events stagger across one segment duration so the cohort does
	// not thunder onto a single tick.
	ticksPerSegment := uint32(float64(cfg.Ladder.SegmentSeconds) / float64(cfg.TickSeconds))
	if ticksPerSegment < 1 {
		ticksPerSegment = 1
	}

	f.workers = make([]*fleetWorker, cfg.Workers)
	next := 0
	for wi := range f.workers {
		n := cfg.Sessions / cfg.Workers
		if wi < cfg.Sessions%cfg.Workers {
			n++
		}
		w := &fleetWorker{
			f:      f,
			shard:  wi,
			base:   next,
			ctrls:  make([]*core.Controller, n),
			states: make([]*arena.State, n),
			cmd:    make(chan uint32),
		}
		w.wheel.init()
		if cfg.Telemetry != nil {
			w.recs = make([]*telemetry.SessionRecorder, n)
		}
		if cfg.Watchdog != nil {
			w.watches = make([]*flightrec.SessionWatch, n)
		}
		for local := 0; local < n; local++ {
			global := next + local
			h, ok := f.arena.Alloc(wi)
			if !ok {
				return nil, fmt.Errorf("sim: fleet arena exhausted at session %d", global)
			}
			ctrl, st, ok := f.arena.Session(h)
			if !ok {
				return nil, fmt.Errorf("sim: fleet handle stale at session %d", global)
			}
			ctrl.Init(ctrlCfg, cfg.Ladder)
			// Bind the cost model, table and solver scratch now: these are
			// Decide's only lazy allocations, and paying them at setup keeps
			// the steady event path allocation-free from the first fire.
			ctrl.Prewarm(cfg.BufferCap)
			*st = arena.State{
				PrevRung: int32(abr.NoRung),
				Trace:    int32(global % len(f.pool)),
				// Stagger cursors so pool-sharing sessions do not walk
				// identical sample sequences in lockstep.
				Cursor: int32(global / len(f.pool)),
				Next:   noSession,
			}
			w.ctrls[local] = ctrl
			w.states[local] = st
			if cfg.Telemetry != nil {
				rec := cfg.Telemetry.StartSession(global)
				f.arena.SetRecorder(h, rec)
				w.recs[local] = rec
			}
			if cfg.Watchdog != nil {
				// Detector state lives in the arena slot, resolved once
				// here under the same shard-ownership contract as ctrls
				// and states.
				watch, ok := f.arena.Watch(h)
				if !ok {
					return nil, fmt.Errorf("sim: fleet watch slot stale at session %d", global)
				}
				w.watches[local] = watch
			}
			w.wheel.schedule(w.states, uint32(local), 1+uint32(global)%ticksPerSegment)
		}
		// ctx invariants are set once; Predict binds the reusable
		// constant predictor's method value here, not per decision.
		w.ctx = abr.Context{
			BufferCap:     cfg.BufferCap,
			Ladder:        cfg.Ladder,
			TotalSegments: 1 << 20, // an open-ended live stream
		}
		w.ctx.Predict = w.pred.predict
		w.fireFn = w.fire
		next += n
		f.workers[wi] = w
		go w.run()
	}
	return f, nil
}

// run is the persistent worker loop: park on the command channel, advance
// the wheel to each target tick, signal the barrier. A closed channel ends
// the worker.
func (w *fleetWorker) run() {
	for target := range w.cmd {
		w.wheel.advance(w.states, target, w.fireFn)
		w.f.barrier.Done()
	}
}

// fire handles one session's due event: charge playback since the decision
// is instantaneous at event time, pull the session's next throughput sample,
// run the real controller, apply the loadgen player model, and schedule the
// completion of whatever the decision started.
//
//soda:noalloc
func (w *fleetWorker) fire(local uint32, tick uint32) {
	st := w.states[local]
	samples := w.f.pool[st.Trace]
	omega := samples[int(st.Cursor)%len(samples)]
	st.Cursor++

	w.pred.omega = omega
	w.ctx.Now = w.f.cfg.TickSeconds.Scale(float64(tick))
	w.ctx.Buffer = st.Buffer
	w.ctx.PrevRung = int(st.PrevRung)
	w.ctx.SegmentIndex = int(st.Segment)
	w.ctx.LastThroughput = omega

	decision := w.ctrls[local].Decide(&w.ctx)
	w.decisions++

	segment := w.f.cfg.Ladder.SegmentSeconds
	var dt units.Seconds
	var rung int
	if decision.Rung == abr.NoRung {
		w.waits++
		wait := decision.WaitSeconds
		if wait <= 0 || wait > segment {
			wait = segment.Scale(0.5)
		}
		if wait > st.Buffer {
			wait = st.Buffer
		}
		st.Buffer -= wait
		dt = wait
		rung = abr.NoRung
	} else {
		rung = w.f.cfg.Ladder.ClampIndex(decision.Rung)
		thr := float64(omega)
		if thr < 0.1 {
			thr = 0.1 // a stalled link still finishes the download eventually
		}
		dl := units.Seconds(float64(w.f.cfg.Ladder.Mbps(rung)) * float64(segment) / thr)
		buffer := st.Buffer + segment - dl
		if buffer < 0 {
			w.stall -= buffer
			st.Stall -= buffer
			buffer = 0
		}
		if buffer > w.f.cfg.BufferCap {
			buffer = w.f.cfg.BufferCap
		}
		st.Buffer = buffer
		st.PrevRung = int32(rung)
		st.Segment++
		w.segments++
		dt = dl
	}

	if w.recs != nil {
		if rec := w.recs[local]; rec != nil {
			ev := rec.Start()
			ev.AtSeconds = w.ctx.Now
			ev.Segment = st.Segment
			ev.Rung = int16(rung)
			ev.PrevRung = int16(w.ctx.PrevRung)
			ev.Buffer = w.ctx.Buffer
			ev.Throughput = omega
			if rung == abr.NoRung {
				ev.WaitSeconds = dt
			} else {
				ev.Bitrate = w.f.cfg.Ladder.Mbps(rung)
			}
			rec.Commit()
		}
	}
	if w.watches != nil {
		w.f.cfg.Watchdog.Observe(w.watches[local], int32(w.base)+int32(local),
			w.ctx.Now, w.ctx.Buffer, int16(rung), int16(w.ctx.PrevRung))
	}

	due := tick + uint32(float64(dt)/float64(w.f.cfg.TickSeconds)+0.999999)
	w.wheel.schedule(w.states, local, due)
}

// Advance runs the whole cohort forward by window of simulated time, all
// workers in parallel, and returns when every worker has reached the target
// tick. The steady path allocates nothing: workers are persistent, commands
// are unboxed channel sends, and all per-decision state lives in the arena.
func (f *Fleet) Advance(window units.Seconds) {
	if f.closed || window <= 0 {
		return
	}
	ticks := uint32(float64(window) / float64(f.cfg.TickSeconds))
	if ticks < 1 {
		ticks = 1
	}
	f.ticks += ticks
	f.barrier.Add(len(f.workers))
	for _, w := range f.workers {
		w.cmd <- f.ticks
	}
	f.barrier.Wait()
}

// Report aggregates the cohort's counters. Call between Advances (the
// workers are parked, so the per-worker counters are quiescent).
func (f *Fleet) Report() FleetReport {
	rep := FleetReport{
		Sessions:   f.cfg.Sessions,
		Workers:    len(f.workers),
		SimSeconds: f.cfg.TickSeconds.Scale(float64(f.ticks)),
		Arena:      f.arena.Stats(),
	}
	for _, w := range f.workers {
		rep.Decisions += w.decisions
		rep.Waits += w.waits
		rep.Segments += w.segments
		rep.StallSeconds += w.stall
	}
	if f.cfg.Watchdog != nil {
		rep.Incidents = f.cfg.Watchdog.Total()
		rep.IncidentsPerThousand = flightrec.PerThousandSessions(rep.Incidents, rep.Sessions)
	}
	return rep
}

// Sessions exposes one session's controller and state for inspection (tests
// and the soda-sim CLI); ok=false when the index is out of range. The
// returned pointers follow the arena ownership contract: do not touch them
// while an Advance is in flight.
func (f *Fleet) Session(i int) (*core.Controller, *arena.State, bool) {
	if i < 0 || i >= f.cfg.Sessions {
		return nil, nil, false
	}
	for _, w := range f.workers {
		if i < w.base+len(w.states) {
			local := i - w.base
			return w.ctrls[local], w.states[local], true
		}
	}
	return nil, nil, false
}

// Close stops the worker pool and flushes telemetry recorders. The fleet is
// unusable afterwards; Close is idempotent.
func (f *Fleet) Close() {
	if f.closed {
		return
	}
	f.closed = true
	for _, w := range f.workers {
		close(w.cmd)
		if w.recs != nil {
			for local, rec := range w.recs {
				if rec == nil {
					continue
				}
				st := w.states[local]
				var total telemetry.SolverStats
				s := w.ctrls[local].SolveStats()
				total = telemetry.SolverStats{
					Solves: s.Solves, Nodes: s.Nodes,
					MemoLookups: s.MemoLookups, MemoHits: s.MemoHits,
					SharedLookups: s.SharedLookups, SharedHits: s.SharedHits,
					TableLookups: s.TableLookups, TableHits: s.TableHits,
					TableFallbacks: s.TableFallbacks,
				}
				rec.Finish(total, int(st.Segment), st.Stall)
			}
		}
	}
}
