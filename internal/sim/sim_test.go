package sim

import (
	"errors"
	"math"
	"testing"

	"repro/internal/abr"
	"repro/internal/predictor"
	"repro/internal/qoe"
	"repro/internal/trace"
	"repro/internal/tracegen"
	"repro/internal/units"
	"repro/internal/video"

	// Register the SODA and baseline controllers in the abr registry.
	_ "repro/internal/baseline"
	_ "repro/internal/core"
)

// fixedController always picks the same rung.
type fixedController struct{ rung int }

func (f *fixedController) Name() string                     { return "fixed" }
func (f *fixedController) Decide(*abr.Context) abr.Decision { return abr.Decision{Rung: f.rung} }
func (f *fixedController) Reset()                           {}

// waitOnceController waits on its first call, then picks rung 0.
type waitOnceController struct{ waited bool }

func (w *waitOnceController) Name() string { return "wait-once" }
func (w *waitOnceController) Decide(ctx *abr.Context) abr.Decision {
	if !w.waited && ctx.Buffer > 1 {
		w.waited = true
		return abr.Wait(units.Seconds(0.5))
	}
	return abr.Decision{Rung: 0}
}
func (w *waitOnceController) Reset() {}

// alwaysWaitController waits forever: must trip the deadlock guard or the
// empty-buffer override.
type alwaysWaitController struct{}

func (alwaysWaitController) Name() string                     { return "always-wait" }
func (alwaysWaitController) Decide(*abr.Context) abr.Decision { return abr.Wait(units.Seconds(1)) }
func (alwaysWaitController) Reset()                           {}

func baseConfig(ctrl abr.Controller) Config {
	return Config{
		Ladder:          video.Mobile(),
		BufferCap:       units.Seconds(20),
		StartupSegments: 1,
		SessionSeconds:  units.Seconds(120),
		Controller:      ctrl,
		Predictor:       predictor.NewEMA(units.Seconds(4)),
	}
}

func TestSteadyStateNoRebufferNoSwitch(t *testing.T) {
	// Constant 12 Mb/s link, fixed rung 2 (7.5 Mb/s): downloads faster than
	// real time, no stalls, no switches, buffer pinned at the cap.
	tr := trace.Constant(units.Mbps(12), units.Seconds(300))
	cfg := baseConfig(&fixedController{rung: 2})
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Segments != 60 {
		t.Fatalf("segments = %d", res.Metrics.Segments)
	}
	if res.Metrics.RebufferRatio != 0 {
		t.Errorf("rebuffer ratio = %v", res.Metrics.RebufferRatio)
	}
	if res.Metrics.SwitchRate != 0 {
		t.Errorf("switch rate = %v", res.Metrics.SwitchRate)
	}
	wantUtil := video.Mobile().LogUtility(2)
	if math.Abs(res.Metrics.MeanUtility-wantUtil) > 1e-9 {
		t.Errorf("utility = %v, want %v", res.Metrics.MeanUtility, wantUtil)
	}
	// Total played video must equal the session length.
	if math.Abs(float64(res.Metrics.PlaySec-120)) > 1e-6 {
		t.Errorf("played %v s, want 120", res.Metrics.PlaySec)
	}
}

func TestOverdrivenRungRebuffers(t *testing.T) {
	// 4 Mb/s link, fixed top rung (12 Mb/s): every segment takes 3x real
	// time; the session must stall heavily.
	tr := trace.Constant(units.Mbps(4), units.Seconds(2000))
	cfg := baseConfig(&fixedController{rung: 3})
	cfg.SessionSeconds = 60
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.RebufferRatio < 0.4 {
		t.Errorf("rebuffer ratio = %v, want heavy stalling", res.Metrics.RebufferRatio)
	}
	if res.Metrics.RebufferEvents == 0 {
		t.Error("no rebuffer events recorded")
	}
	// Conservation: played seconds equal the video length.
	if math.Abs(float64(res.Metrics.PlaySec-60)) > 1e-6 {
		t.Errorf("played %v s, want 60", res.Metrics.PlaySec)
	}
	// Duration = play + stalls (startup tracked separately).
	wantDur := res.Metrics.PlaySec + res.Metrics.RebufferSec + res.Metrics.StartupSec
	if math.Abs(float64(res.Duration-wantDur)) > 1e-6 {
		t.Errorf("duration %v != play+stall+startup %v", res.Duration, wantDur)
	}
}

func TestStartupNotChargedAsRebuffering(t *testing.T) {
	tr := trace.Constant(units.Mbps(4), units.Seconds(300))
	cfg := baseConfig(&fixedController{rung: 0})
	cfg.StartupSegments = 3
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.StartupSec <= 0 {
		t.Error("no startup delay recorded")
	}
	if res.Metrics.RebufferRatio != 0 {
		t.Errorf("startup leaked into rebuffering: %v", res.Metrics.RebufferRatio)
	}
}

func TestBufferNeverExceedsCap(t *testing.T) {
	// Very fast link, low rung: the player must idle at the cap rather than
	// overfill.
	tr := trace.Constant(units.Mbps(100), units.Seconds(400))
	cfg := baseConfig(&fixedController{rung: 0})
	cfg.RecordTrajectory = true
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Trajectory {
		if p.Buffer > cfg.BufferCap+1e-9 {
			t.Fatalf("buffer %v exceeded cap at t=%v", p.Buffer, p.Time)
		}
	}
}

func TestControllerWaitIsHonored(t *testing.T) {
	tr := trace.Constant(units.Mbps(20), units.Seconds(300))
	ctrl := &waitOnceController{}
	cfg := baseConfig(ctrl)
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Waits != 1 {
		t.Errorf("waits = %d, want 1", res.Waits)
	}
	if res.Metrics.Segments != 60 {
		t.Errorf("segments = %d", res.Metrics.Segments)
	}
}

func TestAlwaysWaitDoesNotDeadlock(t *testing.T) {
	tr := trace.Constant(units.Mbps(20), units.Seconds(300))
	cfg := baseConfig(alwaysWaitController{})
	cfg.SessionSeconds = 20
	// The empty-buffer override forces rung 0 on the first segment; after
	// that the controller waits, drains, waits... the iteration guard must
	// eventually fire OR the session must complete by draining. Either way,
	// Run must return.
	res, err := Run(tr, cfg)
	if err != nil && !errors.Is(err, ErrStuck) {
		t.Fatalf("unexpected error: %v", err)
	}
	_ = res
}

func TestValidation(t *testing.T) {
	tr := trace.Constant(units.Mbps(10), units.Seconds(100))
	good := baseConfig(&fixedController{})
	cases := []func(*Config){
		func(c *Config) { c.Controller = nil },
		func(c *Config) { c.Predictor = nil },
		func(c *Config) { c.Ladder = video.Ladder{} },
		func(c *Config) { c.BufferCap = 0.5 },
		func(c *Config) { c.LatencySeconds = -1 },
		func(c *Config) { c.SessionSeconds = 0.5 },
	}
	for i, f := range cases {
		cfg := good
		f(&cfg)
		if _, err := Run(tr, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestZeroBandwidthTraceErrors(t *testing.T) {
	tr := trace.Constant(units.Mbps(0), units.Seconds(100))
	if _, err := Run(tr, baseConfig(&fixedController{})); err == nil {
		t.Error("zero-bandwidth trace should fail")
	}
}

func TestLatencyIncreasesDownloadTime(t *testing.T) {
	tr := trace.Constant(units.Mbps(8), units.Seconds(400))
	fast := baseConfig(&fixedController{rung: 2})
	slow := fast
	slow.LatencySeconds = 0.5
	slow.Controller = &fixedController{rung: 2}
	slow.Predictor = predictor.NewEMA(units.Seconds(4))
	rf, err := Run(tr, fast)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(tr, slow)
	if err != nil {
		t.Fatal(err)
	}
	// 7.5 Mb/s on an 8 Mb/s link downloads in 1.875 s per 2 s segment;
	// adding 0.5 s latency makes each segment slower than real time and
	// must produce stalls.
	if rf.Metrics.RebufferSec > 0 {
		t.Errorf("no-latency run stalled %v s", rf.Metrics.RebufferSec)
	}
	if rs.Metrics.RebufferSec <= 0 {
		t.Error("latency run should stall")
	}
}

func TestPredictorReceivesObservations(t *testing.T) {
	tr := trace.Constant(units.Mbps(16), units.Seconds(200))
	p := predictor.NewEMA(units.Seconds(4))
	cfg := baseConfig(&fixedController{rung: 1})
	cfg.Predictor = p
	if _, err := Run(tr, cfg); err != nil {
		t.Fatal(err)
	}
	// 4 Mb/s rung over a 16 Mb/s link: measured throughput 16 Mb/s.
	if got := p.Predict(units.Seconds(0), units.Seconds(2)); math.Abs(float64(got-16)) > 0.5 {
		t.Errorf("predictor learned %v, want ~16", got)
	}
}

func TestSODASessionHealthy(t *testing.T) {
	// End-to-end smoke: SODA over a volatile generated trace must produce a
	// sane session (no deadlock, low stalls, utilities within range).
	p := tracegen.FourG()
	tr, err := p.Session(units.Seconds(300), 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := abr.New("soda", video.Mobile())
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(ctrl)
	cfg.SessionSeconds = 300
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.Segments != 150 {
		t.Fatalf("segments = %d", m.Segments)
	}
	if m.MeanUtility < 0 || m.MeanUtility > 1 {
		t.Errorf("utility = %v", m.MeanUtility)
	}
	if m.RebufferRatio > 0.2 {
		t.Errorf("SODA rebuffer ratio = %v on a 13 Mb/s mean trace", m.RebufferRatio)
	}
	if m.SwitchRate > 0.5 {
		t.Errorf("SODA switch rate = %v, should be smooth", m.SwitchRate)
	}
}

func TestRunDatasetParallelOrderAndDeterminism(t *testing.T) {
	prof := tracegen.FourG()
	ds, err := tracegen.Generate(prof, 8, units.Seconds(120), 9)
	if err != nil {
		t.Fatal(err)
	}
	// Resolve the controller name once up front: calling t.Fatal inside a
	// worker goroutine would wedge the pool.
	if _, err := abr.New("dynamic", video.Mobile()); err != nil {
		t.Fatal(err)
	}
	factory := func() (abr.Controller, predictor.Predictor) {
		c, _ := abr.New("dynamic", video.Mobile())
		return c, predictor.NewEMA(units.Seconds(4))
	}
	base := Config{Ladder: video.Mobile(), BufferCap: units.Seconds(20), SessionSeconds: units.Seconds(120)}
	m1, err := RunDataset(ds.Sessions, factory, base)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := RunDataset(ds.Sessions, factory, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(m1) != 8 {
		t.Fatalf("got %d metrics", len(m1))
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Errorf("session %d not deterministic across parallel runs", i)
		}
	}
	agg := qoe.Aggregated("dynamic", m1)
	if agg.Sessions != 8 {
		t.Errorf("aggregate sessions = %d", agg.Sessions)
	}
}

func TestRunDatasetPropagatesErrors(t *testing.T) {
	dead := trace.Constant(units.Mbps(0), units.Seconds(120))
	factory := func() (abr.Controller, predictor.Predictor) {
		return &fixedController{}, predictor.NewEMA(units.Seconds(4))
	}
	base := Config{Ladder: video.Mobile(), BufferCap: units.Seconds(20), SessionSeconds: units.Seconds(120)}
	if _, err := RunDataset([]*trace.Trace{dead}, factory, base); err == nil {
		t.Error("dataset error not propagated")
	}
}

func TestTrajectoryRecording(t *testing.T) {
	tr := trace.Constant(units.Mbps(10), units.Seconds(200))
	cfg := baseConfig(&fixedController{rung: 1})
	cfg.RecordTrajectory = true
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajectory) != res.Metrics.Segments {
		t.Fatalf("trajectory %d points for %d segments", len(res.Trajectory), res.Metrics.Segments)
	}
	prevTime := units.Seconds(-1)
	for _, p := range res.Trajectory {
		if p.Time <= prevTime {
			t.Fatalf("trajectory time not increasing at %v", p.Time)
		}
		prevTime = p.Time
		if p.Rung != 1 {
			t.Errorf("trajectory rung = %d", p.Rung)
		}
	}
}

func TestVBRSizesAffectDownloads(t *testing.T) {
	tr := trace.Constant(units.Mbps(9), units.Seconds(400))
	cbr := baseConfig(&fixedController{rung: 2})
	vbr := baseConfig(&fixedController{rung: 2})
	vbr.Sizes = video.VBR{Ladder: video.Mobile(), Sigma: 0.4, Seed: 3}
	rc, err := Run(tr, cbr)
	if err != nil {
		t.Fatal(err)
	}
	rv, err := Run(tr, vbr)
	if err != nil {
		t.Fatal(err)
	}
	// 7.5 Mb/s CBR on a 9 Mb/s link never stalls; heavy VBR variation on a
	// tight link should occasionally stall or at least change duration.
	if rc.Duration == rv.Duration {
		t.Error("VBR sizes had no effect on the session")
	}
}

// newRegistered resolves a registered controller, failing the test cleanly
// when the name is missing.
func newRegistered(t *testing.T, name string) (abr.Controller, error) {
	t.Helper()
	return abr.New(name, video.Mobile())
}
