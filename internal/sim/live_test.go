package sim

import (
	"math"
	"testing"

	"repro/internal/predictor"
	"repro/internal/trace"
	"repro/internal/tracegen"
	"repro/internal/units"
	"repro/internal/video"
)

func TestLiveEdgeBoundsBuffer(t *testing.T) {
	// Fast link, low rung, live availability with a 6 s edge offset: the
	// buffer can never exceed ~6 s because segments simply do not exist yet.
	tr := trace.Constant(units.Mbps(100), units.Seconds(400))
	cfg := baseConfig(&fixedController{rung: 0})
	cfg.Live = true
	cfg.LiveEdgeOffsetSeconds = 6
	cfg.RecordTrajectory = true
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Trajectory {
		if p.Buffer > 6+2+1e-9 { // offset + one appended segment
			t.Fatalf("buffer %v exceeded the live-edge bound at t=%v", p.Buffer, p.Time)
		}
	}
	if res.Metrics.Segments != 60 {
		t.Errorf("segments = %d", res.Metrics.Segments)
	}
}

func TestLiveDefaultOffsetIsBufferCap(t *testing.T) {
	// With the default offset (= cap), live availability must not change a
	// session that the cap already constrains.
	tr := trace.Constant(units.Mbps(50), units.Seconds(300))
	a := baseConfig(&fixedController{rung: 1})
	b := baseConfig(&fixedController{rung: 1})
	b.Live = true
	ra, err := Run(tr, a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(tr, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(ra.Duration-rb.Duration)) > 2.1 {
		t.Errorf("durations diverge: %v vs %v", ra.Duration, rb.Duration)
	}
	if ra.Metrics.RebufferSec != rb.Metrics.RebufferSec {
		t.Errorf("rebuffering diverges: %v vs %v", ra.Metrics.RebufferSec, rb.Metrics.RebufferSec)
	}
}

func TestLiveValidation(t *testing.T) {
	cfg := baseConfig(&fixedController{})
	cfg.Live = true
	cfg.LiveEdgeOffsetSeconds = -1
	if _, err := Run(trace.Constant(units.Mbps(10), units.Seconds(100)), cfg); err == nil {
		t.Error("negative live-edge offset accepted")
	}
}

func TestAbandonmentCutsFadeOnsetStall(t *testing.T) {
	// Comfortable bandwidth, then a collapse to 0.5 Mb/s: a 24 Mb top-rung
	// segment in flight at the collapse would take 48 s. With abandonment the
	// player aborts it when the buffer dries and refetches the lowest rung.
	tr := trace.New([]trace.Sample{{Duration: units.Seconds(60), Mbps: units.Mbps(20)}, {Duration: units.Seconds(120), Mbps: units.Mbps(0.5)}})
	mk := func(abandon bool) Result {
		cfg := baseConfig(&fixedController{rung: 3}) // 12 Mb/s fixed: worst case
		cfg.Abandonment = abandon
		cfg.SessionSeconds = 120
		res, err := Run(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := mk(false)
	withAbandon := mk(true)
	if withAbandon.Abandons == 0 {
		t.Fatal("no abandonment happened in a collapse scenario")
	}
	if plain.Abandons != 0 {
		t.Fatalf("abandonment disabled but counted %d", plain.Abandons)
	}
	if withAbandon.Metrics.RebufferSec >= plain.Metrics.RebufferSec {
		t.Errorf("abandonment did not reduce stalls: %v vs %v",
			withAbandon.Metrics.RebufferSec, plain.Metrics.RebufferSec)
	}
}

func TestAbandonmentNeverTriggersOnHealthySession(t *testing.T) {
	tr := trace.Constant(units.Mbps(12), units.Seconds(300))
	cfg := baseConfig(&fixedController{rung: 2})
	cfg.Abandonment = true
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Abandons != 0 {
		t.Errorf("abandons = %d on an overprovisioned link", res.Abandons)
	}
}

func TestUltraLowLatencyHarderThanTraditionalLive(t *testing.T) {
	// §8: with buffer lengths of a few seconds it is harder to prevent
	// rebuffering and switching. Same traces, SODA, 4 s vs 20 s budget.
	ds, err := tracegen.Generate(tracegen.FourG(), 8, units.Seconds(300), 17)
	if err != nil {
		t.Fatal(err)
	}
	run := func(cap, offset float64) (rebuf, switches float64) {
		for _, tr := range ds.Sessions {
			ctrl, err := newRegistered(t, "soda")
			if err != nil {
				t.Fatal(err)
			}
			cfg := Config{
				Ladder:                video.Mobile(),
				BufferCap:             units.Seconds(cap),
				Live:                  true,
				LiveEdgeOffsetSeconds: units.Seconds(offset),
				SessionSeconds:        units.Seconds(300),
				Controller:            ctrl,
				Predictor:             predictor.NewEMA(units.Seconds(4)),
			}
			res, err := Run(tr, cfg)
			if err != nil {
				t.Fatal(err)
			}
			rebuf += res.Metrics.RebufferRatio
			switches += res.Metrics.SwitchRate
		}
		n := float64(len(ds.Sessions))
		return rebuf / n, switches / n
	}
	rebufULL, _ := run(4, 4)
	rebufLive, _ := run(20, 20)
	if rebufULL < rebufLive {
		t.Errorf("ultra-low latency (%.4f) should rebuffer at least as much as traditional live (%.4f)",
			rebufULL, rebufLive)
	}
}
