package sim

import (
	"testing"

	"repro/internal/abr"
	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/predictor"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/tracegen"
	"repro/internal/units"
	"repro/internal/video"
)

func TestFleetValidation(t *testing.T) {
	if _, err := NewFleet(FleetConfig{Ladder: video.Mobile()}); err == nil {
		t.Fatal("NewFleet accepted zero sessions")
	}
	if _, err := NewFleet(FleetConfig{Sessions: 1}); err == nil {
		t.Fatal("NewFleet accepted an empty ladder")
	}
	if _, err := NewFleet(FleetConfig{Sessions: 1, Ladder: video.Mobile(),
		BufferCap: units.Seconds(0.5)}); err == nil {
		t.Fatal("NewFleet accepted a sub-segment buffer cap")
	}
	bad := core.DefaultConfig()
	bad.Horizon = -3
	if _, err := NewFleet(FleetConfig{Sessions: 1, Ladder: video.Mobile(),
		Controller: &bad}); err == nil {
		t.Fatal("NewFleet accepted an invalid controller config")
	}
}

func TestFleetAdvancesEverySession(t *testing.T) {
	f, err := NewFleet(FleetConfig{
		Sessions: 300,
		Workers:  3,
		Ladder:   video.Mobile(),
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Advance(units.Seconds(60))
	rep := f.Report()
	if rep.Sessions != 300 || rep.Workers != 3 {
		t.Fatalf("report sessions/workers = %d/%d, want 300/3", rep.Sessions, rep.Workers)
	}
	if rep.SimSeconds != units.Seconds(60) {
		t.Fatalf("sim clock = %v, want 60 s", rep.SimSeconds)
	}
	if rep.Arena.Live != 300 {
		t.Fatalf("arena live = %d, want 300: %s", rep.Arena.Live, rep.Arena)
	}
	// Over a minute of simulated time every session must have downloaded
	// many segments (steady cadence is roughly one per segment duration).
	for i := 0; i < rep.Sessions; i++ {
		_, st, ok := f.Session(i)
		if !ok {
			t.Fatalf("Session(%d) failed", i)
		}
		if st.Segment < 5 {
			t.Fatalf("session %d downloaded only %d segments in 60 s", i, st.Segment)
		}
		if st.Buffer < 0 || st.Buffer > units.Seconds(20) {
			t.Fatalf("session %d buffer %v outside [0, cap]", i, st.Buffer)
		}
	}
	if rep.Decisions < uint64(rep.Sessions)*5 {
		t.Fatalf("only %d decisions across the cohort", rep.Decisions)
	}
	if rep.Segments == 0 {
		t.Fatal("no segments downloaded")
	}
	if _, _, ok := f.Session(-1); ok {
		t.Fatal("Session(-1) succeeded")
	}
	if _, _, ok := f.Session(300); ok {
		t.Fatal("Session(300) succeeded")
	}
}

// TestFleetDeterministic pins that two cohorts with the same seed advance
// through identical decision histories — the property that makes fleet
// experiments reproducible and the benchmark's ratio gate stable.
func TestFleetDeterministic(t *testing.T) {
	build := func() *Fleet {
		f, err := NewFleet(FleetConfig{
			Sessions: 200,
			Workers:  2,
			Ladder:   video.Mobile(),
			Profile:  tracegen.FourG(),
			Seed:     7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	a, b := build(), build()
	defer a.Close()
	defer b.Close()
	// Advance in different window patterns: the wheel must make window
	// boundaries invisible.
	a.Advance(units.Seconds(30))
	for i := 0; i < 6; i++ {
		b.Advance(units.Seconds(5))
	}
	ra, rb := a.Report(), b.Report()
	if ra.Decisions != rb.Decisions || ra.Waits != rb.Waits ||
		ra.Segments != rb.Segments || ra.StallSeconds != rb.StallSeconds {
		t.Fatalf("cohorts diverged:\n30x1: %+v\n5x6:  %+v", ra, rb)
	}
	for i := 0; i < ra.Sessions; i++ {
		_, sa, _ := a.Session(i)
		_, sb, _ := b.Session(i)
		if sa.Segment != sb.Segment || sa.PrevRung != sb.PrevRung || sa.Buffer != sb.Buffer {
			t.Fatalf("session %d diverged: %+v vs %+v", i, *sa, *sb)
		}
	}
}

// TestFleetMatchesSingleSessionDecisions cross-checks the fleet player
// against a hand-rolled serial replay of the same model: one session, one
// trace, identical decision inputs step by step.
func TestFleetMatchesSingleSessionDecisions(t *testing.T) {
	ladder := video.Mobile()
	f, err := NewFleet(FleetConfig{
		Sessions: 1,
		Workers:  1,
		Ladder:   ladder,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Advance(units.Seconds(45))
	_, st, _ := f.Session(0)
	rep := f.Report()
	if rep.Decisions == 0 || st.Segment == 0 {
		t.Fatalf("no progress: %+v", rep)
	}

	// Serial replay with the same trace pool, controller config and player
	// arithmetic must land on the same (segment, prevRung, buffer) state.
	tr, err := tracegen.Puffer().Session(units.Seconds(120), 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	samples := tr.Samples()
	cfg := fleetControllerConfig()
	ctrl := core.New(cfg, ladder)
	pred := &constPredictor{}
	var (
		buffer  units.Seconds
		prev    = int32(-1)
		segment int32
		cursor  int
	)
	segDur := ladder.SegmentSeconds
	actx := newFleetContext(ladder, units.Seconds(20), pred)
	for n := uint64(0); n < rep.Decisions; n++ {
		omega := samples[cursor%len(samples)].Mbps
		cursor++
		pred.omega = omega
		actx.Buffer = buffer
		actx.PrevRung = int(prev)
		actx.SegmentIndex = int(segment)
		actx.LastThroughput = omega
		d := ctrl.Decide(actx)
		if d.Rung < 0 {
			wait := d.WaitSeconds
			if wait <= 0 || wait > segDur {
				wait = segDur.Scale(0.5)
			}
			if wait > buffer {
				wait = buffer
			}
			buffer -= wait
			continue
		}
		rung := ladder.ClampIndex(d.Rung)
		thr := float64(omega)
		if thr < 0.1 {
			thr = 0.1
		}
		dl := units.Seconds(float64(ladder.Mbps(rung)) * float64(segDur) / thr)
		buffer += segDur - dl
		if buffer < 0 {
			buffer = 0
		}
		if buffer > 20 {
			buffer = 20
		}
		prev = int32(rung)
		segment++
	}
	if segment != st.Segment || prev != st.PrevRung {
		t.Fatalf("serial replay (segment=%d prev=%d) != fleet (segment=%d prev=%d)",
			segment, prev, st.Segment, st.PrevRung)
	}
}

func TestFleetTelemetry(t *testing.T) {
	col := telemetry.NewCollector(nil, 1<<10)
	f, err := NewFleet(FleetConfig{
		Sessions:  50,
		Workers:   2,
		Ladder:    video.Mobile(),
		Seed:      3,
		Telemetry: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Advance(units.Seconds(20))
	rep := f.Report()
	f.Close()
	f.Close() // idempotent
	if got := col.Decisions.Value(); got != float64(rep.Decisions) {
		t.Fatalf("collector decisions = %g, fleet counted %d", got, rep.Decisions)
	}
	if got := col.Sessions.Value(); got != 50 {
		t.Fatalf("collector sessions = %g, want 50", got)
	}
	if got := col.Segments.Value(); got != float64(rep.Segments) {
		t.Fatalf("collector segments = %g, fleet counted %d", got, rep.Segments)
	}
	// Advance after Close is a no-op, not a deadlock.
	f.Advance(units.Seconds(5))
}

// TestWheelLongHorizons drives the wheel directly: events beyond the inner
// span cascade from the outer wheel, and events beyond even the outer span
// lap it and still fire at their exact tick.
func TestWheelLongHorizons(t *testing.T) {
	a := arena.New(1, 0)
	const n = 5
	states := make([]*arena.State, n)
	for i := range states {
		h, _ := a.Alloc(0)
		_, st, _ := a.Session(h)
		states[i] = st
	}
	var w wheel
	w.init()
	due := []uint32{3, wheelSlots + 7, 3 * wheelSlots, wheelSlots*wheelSlots + 13, 2*wheelSlots*wheelSlots + 1}
	for i, d := range due {
		w.schedule(states, uint32(i), d)
	}
	fired := map[uint32]uint32{}
	w.advance(states, 2*wheelSlots*wheelSlots+wheelSlots, func(local, tick uint32) {
		if _, dup := fired[local]; dup {
			t.Fatalf("session %d fired twice", local)
		}
		fired[local] = tick
	})
	for i, d := range due {
		if got := fired[uint32(i)]; got != d {
			t.Fatalf("session %d fired at tick %d, want %d", i, got, d)
		}
	}
	// Past-due scheduling clamps to the next tick instead of never firing.
	w.schedule(states, 0, 1)
	var clamped uint32
	w.advance(states, w.now+2, func(local, tick uint32) { clamped = tick })
	if clamped == 0 {
		t.Fatal("past-due event never fired")
	}
}

// newFleetContext mirrors the worker's reusable context setup for the serial
// replay test.
func newFleetContext(ladder video.Ladder, bufferCap units.Seconds, pred *constPredictor) *abr.Context {
	return &abr.Context{
		BufferCap:     bufferCap,
		Ladder:        ladder,
		TotalSegments: 1 << 20,
		Predict:       pred.predict,
	}
}

// synthTraces builds n deterministic traces from a tracegen profile.
func synthTraces(t *testing.T, profile tracegen.Profile, n int) []*trace.Trace {
	t.Helper()
	out := make([]*trace.Trace, n)
	for i := range out {
		tr, err := profile.Session(units.Seconds(90), 99, i)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = tr
	}
	return out
}

// RunMany satellite: deterministic indexed results on a bounded pool.
func TestRunManyDeterministicAcrossRepeats(t *testing.T) {
	profile := tracegen.FiveG()
	runOnce := func() []Result {
		ts := synthTraces(t, profile, 24)
		factory := func() (abr.Controller, predictor.Predictor) {
			return core.New(core.DefaultConfig(), video.Mobile()), predictor.NewEMA(units.Seconds(4))
		}
		out, err := RunMany(ts, factory, Config{
			Ladder:         video.Mobile(),
			BufferCap:      units.Seconds(20),
			SessionSeconds: units.Seconds(60),
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	first := runOnce()
	second := runOnce()
	if len(first) != 24 || len(second) != 24 {
		t.Fatalf("result counts %d/%d, want 24", len(first), len(second))
	}
	for i := range first {
		if first[i].Metrics != second[i].Metrics || first[i].Waits != second[i].Waits ||
			first[i].Duration != second[i].Duration {
			t.Fatalf("session %d differs across repeat runs:\n1st: %+v\n2nd: %+v",
				i, first[i].Metrics, second[i].Metrics)
		}
		if len(first[i].Rungs) == 0 {
			t.Fatalf("session %d recorded no rungs", i)
		}
	}
}
