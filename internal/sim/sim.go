// Package sim is the segment-level ABR player simulator — the from-scratch
// Go equivalent of the Sabre simulator the paper's numerical evaluation is
// built on (§6.1: "a highly optimized ABR simulator derived from Sabre",
// whose accuracy was validated against dash.js).
//
// The simulator advances a stream clock while downloading segments over a
// bandwidth trace, draining the playback buffer during downloads, charging
// rebuffering when the buffer empties, enforcing the buffer cap (20 s for the
// paper's live configuration) by idling, and feeding measured throughput back
// into the session's predictor. Startup delay (before the first frame) is
// tracked separately from rebuffering, as in Sabre.
package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/abr"
	"repro/internal/core"
	"repro/internal/flightrec"
	"repro/internal/predictor"
	"repro/internal/qoe"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/video"
)

// Config describes one simulated streaming session.
type Config struct {
	// Ladder is the bitrate ladder (with its segment duration).
	Ladder video.Ladder
	// Sizes produces per-segment encoded sizes; nil means CBR.
	Sizes video.SizeModel
	// BufferCap is the maximum buffer (e.g. 20 s for live).
	BufferCap units.Seconds
	// StartupSegments is how many segments must be buffered before playback
	// starts; at least 1.
	StartupSegments int
	// LatencySeconds is the per-request latency added to every download.
	LatencySeconds units.Seconds
	// Live enables live-edge segment availability: segment i only becomes
	// downloadable at stream time i*L - LiveEdgeOffsetSeconds, so the player
	// can never run further ahead of the broadcast than the offset. With the
	// paper's traditional-live setting the offset equals the buffer cap
	// (~20 s) and the cap binds first; ultra-low-latency configurations (§8)
	// shrink the offset to a few seconds.
	Live bool
	// LiveEdgeOffsetSeconds is how far behind the live edge playback starts;
	// 0 defaults to BufferCap.
	LiveEdgeOffsetSeconds units.Seconds
	// Abandonment enables dash.js-style segment abandonment: when an
	// in-flight download is going to outlast the remaining buffer, the
	// player aborts it once the buffer runs dry and refetches the segment at
	// the lowest rung. This bounds the damage of a mid-download throughput
	// collapse (one oversized segment can otherwise eat a whole live buffer).
	Abandonment bool
	// SessionSeconds is the stream length; 0 uses the trace duration.
	SessionSeconds units.Seconds
	// Controller picks bitrates. Required.
	Controller abr.Controller
	// Predictor forecasts throughput. Required.
	Predictor predictor.Predictor
	// Weights are the QoE weights; zero value uses the paper's defaults.
	Weights qoe.Weights
	// Utility maps a rung to a [0,1] utility; nil uses the normalized log
	// utility of §6. The prototype evaluation passes normalized SSIM instead.
	Utility func(rung int) float64
	// RecordTrajectory retains the per-segment buffer/rung trajectory
	// (needed by the Figure 3 pathology plot).
	RecordTrajectory bool
	// OnResult, when non-nil, is invoked by RunDataset once per completed
	// session with the trace index, the controller that ran it, and the
	// session Result — the hook harnesses use to collect per-session solver
	// statistics before the controller is discarded. It runs on the worker
	// goroutines, so it must be safe for concurrent use. Run itself ignores
	// it (a single-session caller already holds both values).
	OnResult func(index int, ctrl abr.Controller, res Result)
	// Telemetry, when non-nil, receives one DecisionEvent per Decide plus
	// per-session solver/QoE aggregates. Recording is strictly pull-based —
	// the simulator snapshots SolveStats around each Decide and feeds the
	// collector from outside the controller — and never changes the decision
	// sequence; the TelemetryConformance contract in internal/abrtest pins
	// that bit-identity. Nil disables telemetry at zero cost.
	Telemetry *telemetry.Collector
	// TelemetrySession labels this session's events (the trace index of a
	// dataset run). RunDataset sets it automatically.
	TelemetrySession int
	// Watchdog, when non-nil, receives every decision through the
	// QoE-consistency detectors (rung oscillation, stall onset, buffer
	// underrun risk). Like Telemetry it observes from outside the
	// controller and never changes the decision sequence — pinned by
	// abrtest.FlightRecConformance. Per-session detector state is a local
	// of Run, so one Watchdog safely serves a whole concurrent dataset.
	Watchdog *flightrec.Watchdog
}

// TrajectoryPoint is one per-segment snapshot of the session state.
type TrajectoryPoint struct {
	Time        units.Seconds // stream clock when the segment finished downloading
	Buffer      units.Seconds // buffer level after the segment was appended
	Rung        int
	RebufferSec units.Seconds // stall charged to this segment's download
}

// Result is the outcome of one simulated session.
type Result struct {
	Metrics    qoe.Metrics
	Rungs      []int
	Trajectory []TrajectoryPoint // nil unless Config.RecordTrajectory
	Waits      int               // controller-initiated idle periods
	Abandons   int               // downloads aborted by segment abandonment
	Duration   units.Seconds     // stream-clock session length including stalls
}

// ErrStuck is returned when the controller wedges the session (e.g. waiting
// forever on an empty buffer); it indicates a controller bug, not a network
// condition.
var ErrStuck = errors.New("sim: session made no progress")

func (c *Config) validate() error {
	if c.Controller == nil {
		return errors.New("sim: nil controller")
	}
	if c.Predictor == nil {
		return errors.New("sim: nil predictor")
	}
	if c.Ladder.Len() == 0 {
		return errors.New("sim: empty ladder")
	}
	if c.BufferCap < c.Ladder.SegmentSeconds {
		return fmt.Errorf("sim: buffer cap %v below one segment (%v s)", c.BufferCap, c.Ladder.SegmentSeconds)
	}
	if c.LatencySeconds < 0 {
		return fmt.Errorf("sim: negative latency %v", c.LatencySeconds)
	}
	if c.Live && c.LiveEdgeOffsetSeconds < 0 {
		return fmt.Errorf("sim: negative live-edge offset %v", c.LiveEdgeOffsetSeconds)
	}
	return nil
}

// Run simulates one session over the trace and returns its Result.
func Run(tr *trace.Trace, cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	ladder := cfg.Ladder
	l := ladder.SegmentSeconds
	sizes := cfg.Sizes
	if sizes == nil {
		sizes = video.CBR{Ladder: ladder}
	}
	utility := cfg.Utility
	if utility == nil {
		utility = ladder.LogUtility
	}
	startup := cfg.StartupSegments
	if startup < 1 {
		startup = 1
	}
	weights := cfg.Weights
	if weights == (qoe.Weights{}) {
		weights = qoe.DefaultWeights()
	}
	session := cfg.SessionSeconds
	if session <= 0 {
		session = tr.Duration()
	}
	totalSegments := int(session / l)
	if totalSegments < 1 {
		return Result{}, fmt.Errorf("sim: session %v s shorter than one segment", session)
	}

	cfg.Controller.Reset()
	cfg.Predictor.Reset()

	// Telemetry is recorded from outside the controller: stats are
	// snapshotted around Decide and events buffered on a per-session
	// recorder, so a nil collector costs nothing and a live one never
	// changes the decision sequence.
	rec := cfg.Telemetry.StartSession(cfg.TelemetrySession)
	// statsCore is the devirtualised fast path (core.Controller's SolveWork
	// returns the five gated counters in registers); statser covers any
	// other controller exposing SolveStats. The prev* counters roll forward
	// so each decision costs one snapshot, not two.
	var statsCore *core.Controller
	var statser interface{ SolveStats() core.SolveStats }
	var prevSolves, prevNodes, prevMemoHits, prevSharedHits, prevTableHits uint64
	if rec != nil {
		if statsCore, _ = cfg.Controller.(*core.Controller); statsCore != nil {
			prevSolves, prevNodes, prevMemoHits, prevSharedHits, prevTableHits = statsCore.SolveWork()
		} else if statser, _ = cfg.Controller.(interface{ SolveStats() core.SolveStats }); statser != nil {
			s := statser.SolveStats()
			prevSolves, prevNodes, prevMemoHits, prevSharedHits, prevTableHits = s.Solves, s.Nodes, s.MemoHits, s.SharedHits, s.TableHits
		}
	}

	var (
		tally    qoe.SessionTally
		result   Result
		now      units.Seconds // stream clock
		buffer   units.Seconds // video buffered
		playing  bool
		prevRung = abr.NoRung
		lastMbps units.Mbps
		segStall units.Seconds          // stall charged since the last segment completed
		watch    flightrec.SessionWatch // per-session QoE detector state
	)
	quantile, _ := cfg.Predictor.(predictor.QuantilePredictor)

	// advance moves the stream clock while the player is (possibly) playing,
	// charging playback, rebuffering or startup as appropriate.
	advance := func(dt units.Seconds) {
		if dt <= 0 {
			return
		}
		now += dt
		if !playing {
			tally.AddStartup(dt)
			return
		}
		played := dt
		if played > buffer {
			played = buffer
		}
		buffer -= played
		tally.AddPlayback(played)
		if stall := dt - played; stall > 1e-12 {
			tally.AddRebuffer(stall)
			segStall += stall
		}
	}

	maxIters := 20*totalSegments + 1000
	iters := 0
	for seg := 0; seg < totalSegments; seg++ {
		// Enforce the buffer cap before asking for another segment: idle
		// until there is room for one more segment of video.
		if over := buffer + l - cfg.BufferCap; over > 1e-9 {
			advance(over)
		}

		ctx := &abr.Context{
			Now:            now,
			Buffer:         buffer,
			BufferCap:      cfg.BufferCap,
			PrevRung:       prevRung,
			Ladder:         ladder,
			SegmentIndex:   seg,
			TotalSegments:  totalSegments,
			LastThroughput: lastMbps,
		}
		capturedNow := now
		ctx.Predict = func(h units.Seconds) units.Mbps { return cfg.Predictor.Predict(capturedNow, h) }
		if quantile != nil {
			ctx.PredictQuantile = func(q float64, h units.Seconds) units.Mbps {
				return quantile.Quantile(capturedNow, h, q)
			}
		}

		var (
			ev    *telemetry.DecisionEvent
			timed bool
			t0    time.Time
		)
		if rec != nil {
			if timed = rec.SampleLatency(); timed {
				t0 = time.Now()
			}
		}
		decision := cfg.Controller.Decide(ctx)
		if iters++; iters > maxIters {
			return Result{}, fmt.Errorf("%w at segment %d", ErrStuck, seg)
		}
		if rec != nil {
			// Fill the recorder's buffer slot in place (Start/Commit); a
			// build-then-copy of the ~100-byte event is measurable against
			// the sub-microsecond decision loop.
			ev = rec.Start()
			ev.Segment = int32(seg)
			ev.PrevRung = int16(prevRung)
			ev.Buffer = buffer
			ev.Throughput = lastMbps
			ev.Timed = timed
			ev.AtSeconds = now
			if timed {
				ev.SolveSeconds = units.Seconds(time.Since(t0).Seconds())
			}
			if statsCore != nil || statser != nil {
				var solves, nodes, memoHits, sharedHits, tableHits uint64
				if statsCore != nil {
					solves, nodes, memoHits, sharedHits, tableHits = statsCore.SolveWork()
				} else {
					s := statser.SolveStats()
					solves, nodes, memoHits, sharedHits, tableHits = s.Solves, s.Nodes, s.MemoHits, s.SharedHits, s.TableHits
				}
				ev.Solves = uint32(solves - prevSolves)
				ev.Nodes = uint32(nodes - prevNodes)
				ev.MemoHits = uint32(memoHits - prevMemoHits)
				ev.SharedHits = uint32(sharedHits - prevSharedHits)
				ev.TableHits = uint32(tableHits - prevTableHits)
				prevSolves, prevNodes, prevMemoHits, prevSharedHits, prevTableHits = solves, nodes, memoHits, sharedHits, tableHits
			}
		}
		if decision.Rung == abr.NoRung {
			if buffer <= 1e-9 {
				// Waiting on an empty buffer deadlocks the session; force
				// the defensive lowest rung instead.
				decision.Rung = 0
			} else {
				result.Waits++
				wait := decision.WaitSeconds
				if wait <= 0 || wait > l {
					wait = l / 2
				}
				if wait > buffer {
					wait = buffer
				}
				if rec != nil {
					ev.Rung = abr.NoRung
					ev.WaitSeconds = wait
					rec.Commit()
				}
				cfg.Watchdog.Observe(&watch, int32(cfg.TelemetrySession), now, buffer, abr.NoRung, int16(prevRung))
				advance(wait)
				seg-- // retry the same segment index after idling
				continue
			}
		}
		rung := ladder.ClampIndex(decision.Rung)
		if rec != nil {
			ev.Rung = int16(rung)
			ev.Bitrate = ladder.Mbps(rung)
			rec.Commit()
		}
		cfg.Watchdog.Observe(&watch, int32(cfg.TelemetrySession), now, buffer, int16(rung), int16(prevRung))

		// Live-edge availability: the broadcast has not produced this
		// segment yet; idle until it appears.
		if cfg.Live {
			offset := cfg.LiveEdgeOffsetSeconds
			if offset <= 0 {
				offset = cfg.BufferCap
			}
			if avail := units.Seconds(seg)*l - offset; now < avail {
				advance(avail - now)
			}
		}

		size := sizes.SegmentMegabits(rung, seg)
		dl, err := tr.DownloadTime(now+cfg.LatencySeconds, size)
		if err != nil {
			return Result{}, fmt.Errorf("sim: segment %d: %w", seg, err)
		}
		dlTime := cfg.LatencySeconds + dl
		if cfg.Abandonment && playing && rung > 0 && dlTime > buffer+1e-9 {
			// The download would outlast the buffer: play out the buffer,
			// abandon the in-flight segment at the moment the buffer runs
			// dry, and refetch at the lowest rung (dash.js abandonment).
			result.Abandons++
			wasted := buffer
			advance(wasted) // drains the buffer exactly
			rung = 0
			size = sizes.SegmentMegabits(rung, seg)
			dl, err = tr.DownloadTime(now+cfg.LatencySeconds, size)
			if err != nil {
				return Result{}, fmt.Errorf("sim: segment %d (abandoned): %w", seg, err)
			}
			dlTime = cfg.LatencySeconds + dl
		}
		advance(dlTime)
		buffer += l
		if !playing && seg+1 >= startup {
			playing = true
		}

		lastMbps = size.Over(dlTime)
		cfg.Predictor.Observe(predictor.Sample{Mbps: lastMbps, Duration: dlTime, EndTime: now})
		tally.AddSegment(rung, utility(rung))
		prevRung = rung
		if cfg.RecordTrajectory {
			result.Trajectory = append(result.Trajectory, TrajectoryPoint{
				Time:        now,
				Buffer:      buffer,
				Rung:        rung,
				RebufferSec: segStall,
			})
		}
		segStall = 0
	}
	// Drain the remaining buffer to finish the session.
	if playing {
		tally.AddPlayback(buffer)
		now += buffer
		buffer = 0
	}

	result.Metrics = tally.Finalize(weights)
	result.Rungs = append([]int(nil), tally.Rungs()...)
	result.Duration = now
	if rec != nil {
		var total telemetry.SolverStats
		if statsCore != nil || statser != nil {
			// One full snapshot per session: the lookup counters are not in
			// the per-decision SolveWork fast path.
			var s core.SolveStats
			if statsCore != nil {
				s = statsCore.SolveStats()
			} else {
				s = statser.SolveStats()
			}
			total = telemetry.SolverStats{
				Solves: s.Solves, Nodes: s.Nodes,
				MemoLookups: s.MemoLookups, MemoHits: s.MemoHits,
				SharedLookups: s.SharedLookups, SharedHits: s.SharedHits,
				TableLookups: s.TableLookups, TableHits: s.TableHits,
				TableFallbacks: s.TableFallbacks,
			}
		}
		rec.Finish(total, result.Metrics.Segments, result.Metrics.RebufferSec)
	}
	return result, nil
}

// SessionFactory builds a fresh controller and predictor for each session of
// a dataset run; sessions must not share mutable state.
type SessionFactory func() (abr.Controller, predictor.Predictor)

// RunMany simulates every trace with its own controller/predictor built by
// the factory, on a GOMAXPROCS-bounded worker pool, and returns the full
// per-session Results indexed by input position. The pool is fixed-size — a
// ten-thousand-trace dataset never fans out ten thousand goroutines — and
// results are written by index, so the output order is deterministic
// regardless of worker interleaving (each session is itself deterministic
// given its trace and factory).
func RunMany(traces []*trace.Trace, factory SessionFactory, base Config) ([]Result, error) {
	out := make([]Result, len(traces))
	errs := make([]error, len(traces))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(traces) {
		workers = len(traces)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	// Buffered so a dying worker can never block the producer.
	jobs := make(chan int, len(traces))
	for i := range traces {
		jobs <- i
	}
	close(jobs)
	runOne := func(i int) (res Result, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("sim: session %d panicked: %v", i, r)
			}
		}()
		cfg := base
		cfg.Controller, cfg.Predictor = factory()
		cfg.TelemetrySession = i
		res, err = Run(traces[i], cfg)
		if err != nil {
			return Result{}, err
		}
		if base.OnResult != nil {
			base.OnResult(i, cfg.Controller, res)
		}
		return res, nil
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i], errs[i] = runOne(i)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sim: session %d: %w", i, err)
		}
	}
	return out, nil
}

// RunDataset simulates every trace with its own controller/predictor built by
// the factory, in parallel, preserving input order in the returned metrics.
// It is RunMany reduced to the QoE metrics alone.
func RunDataset(traces []*trace.Trace, factory SessionFactory, base Config) ([]qoe.Metrics, error) {
	results, err := RunMany(traces, factory, base)
	if err != nil {
		return nil, err
	}
	out := make([]qoe.Metrics, len(results))
	for i, res := range results {
		out[i] = res.Metrics
	}
	return out, nil
}
