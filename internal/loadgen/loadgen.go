// Package loadgen replays calibrated ABR workloads against the /decide
// control plane and reports the latency distribution the serving path
// actually delivered — the measurement half of the fleet-scale serving
// story, and the feeder of the CI p99 gate.
//
// Two arrival processes are supported:
//
//   - Closed loop: N virtual sessions, each issuing its next decide as soon
//     as the previous one returns (plus optional think time). Throughput of
//     the measured system bounds the offered load, so closed loop measures
//     service time under self-limiting clients.
//   - Open loop: Poisson arrivals at a target rate, dispatched to a worker
//     pool. Latency is measured from each request's *scheduled* arrival
//     time, so queueing delay counts — the honest fleet-operator view,
//     immune to coordinated omission.
//
// Each virtual session walks a bandwidth trace drawn from an
// internal/tracegen profile (the paper-calibrated throughput processes) and
// runs a small player model: decisions advance a simulated buffer, which
// feeds back into the next request. Sessions share a bounded pool of traces
// round-robin so 50k sessions do not need 50k trace syntheses, and their
// player state lives in an internal/arena slab — the same struct-of-arrays
// layout soda-server and the fleet simulator use — rather than one heap
// object per session. Both loops run on fixed worker pools: session count
// scales the arena, not the goroutine count.
//
// Targets are pluggable: InProc drives a DecideService directly (no HTTP,
// the configuration the allocation and p99 gates use), HTTPTarget drives a
// live soda-server over its wire protocol.
package loadgen

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/abr"
	"repro/internal/arena"
	"repro/internal/flightrec"
	"repro/internal/httpseg"
	"repro/internal/sessiontable"
	"repro/internal/telemetry"
	"repro/internal/tracegen"
	"repro/internal/units"
)

// Mode selects the arrival process.
type Mode int

const (
	// ClosedLoop runs N sessions that each wait for their previous decide.
	ClosedLoop Mode = iota
	// OpenLoop runs Poisson arrivals at Config.RPS regardless of completions.
	OpenLoop
)

// String names the mode for reports.
func (m Mode) String() string {
	if m == OpenLoop {
		return "open"
	}
	return "closed"
}

// Target is where decides go. Implementations must be safe for concurrent
// use; the runner serialises calls per session but not across sessions.
type Target interface {
	Decide(req *httpseg.DecideRequest) (httpseg.DecideResult, error)
}

// Config parameterises one load-generation run.
type Config struct {
	// Mode is the arrival process.
	Mode Mode
	// Sessions is the virtual-session count (concurrent streams).
	Sessions int
	// Requests is the total decide budget for the run.
	Requests int
	// RPS is the open-loop target arrival rate; ignored in closed loop.
	RPS float64
	// ThinkTime is the closed-loop pause between a session's decides.
	ThinkTime time.Duration
	// Workers is the open-loop dispatch pool size (default 16).
	Workers int
	// Profile calibrates the per-session throughput process; the zero value
	// means tracegen.Puffer().
	Profile tracegen.Profile
	// SessionLength is the synthesized trace length per session pool entry
	// (default 120 s — samples wrap when a session outlives its trace).
	SessionLength units.Seconds
	// TracePool bounds the number of distinct traces synthesized and shared
	// round-robin across sessions (default min(Sessions, 256)).
	TracePool int
	// Seed makes trace synthesis and Poisson arrivals reproducible.
	Seed uint64
	// BufferCap is the player model's buffer cap (default 20 s).
	BufferCap units.Seconds
	// SegmentSeconds is the player model's segment duration (default 2 s).
	SegmentSeconds units.Seconds
	// Watchdog, when non-nil, observes every successful decide with the QoE-
	// consistency detectors, from the client's side of the wire: the virtual
	// player's buffer trajectory and rung history feed the same detectors the
	// server and fleet simulator run. Incident totals land in the report
	// (and its per-1k-sessions gate field). Detector state lives in the
	// runner's arena slots, so observation allocates nothing per decide.
	Watchdog *flightrec.Watchdog
}

// normalize fills defaults; it does not mutate the caller's copy.
func (c Config) normalize() Config {
	if c.Sessions <= 0 {
		c.Sessions = 1
	}
	if c.Workers <= 0 {
		c.Workers = 16
	}
	if c.Profile.Name == "" {
		c.Profile = tracegen.Puffer()
	}
	if c.SessionLength <= 0 {
		c.SessionLength = units.Seconds(120)
	}
	if c.TracePool <= 0 || c.TracePool > c.Sessions {
		c.TracePool = c.Sessions
	}
	if c.TracePool > 256 {
		c.TracePool = 256
	}
	if c.BufferCap <= 0 {
		c.BufferCap = units.Seconds(20)
	}
	if c.SegmentSeconds <= 0 {
		c.SegmentSeconds = units.Seconds(2)
	}
	return c
}

// validate rejects configurations the runner cannot execute.
func (c Config) validate() error {
	if c.Requests <= 0 {
		return fmt.Errorf("loadgen: Requests must be positive, got %d", c.Requests)
	}
	if c.Mode == OpenLoop && c.RPS <= 0 {
		return fmt.Errorf("loadgen: open loop needs a positive RPS, got %g", c.RPS)
	}
	return nil
}

// latencyBuckets span sub-microsecond in-process decides through multi-second
// HTTP pathologies, log-spaced so Quantile resolves each decade.
var latencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// runner is the per-run state shared by the worker pool. Virtual-session
// player state lives in the arena (arena.State.Buffer/Trace/Cursor); the
// runner keeps only the parallel per-session slices the arena does not own:
// the wire key and the lock serialising a session's in-flight decide with
// its state update. In the closed loop each worker owns a fixed residue
// class of session indices, so those locks are uncontended there; the open
// loop dispatches arrivals to arbitrary workers and relies on them.
type runner struct {
	cfg     Config
	target  Target
	arena   *arena.Arena
	states  []*arena.State
	keys    []string
	locks   []sync.Mutex
	watches []*flightrec.SessionWatch
	pool    [][]units.Mbps
	latency *telemetry.Histogram
	epoch   time.Time

	issued   atomic.Int64
	ok       atomic.Uint64
	rejRate  atomic.Uint64
	rejLoad  atomic.Uint64
	rejCap   atomic.Uint64
	rejDrain atomic.Uint64
	errors   atomic.Uint64
}

// Run executes one load-generation run and reports the outcome. The latency
// histogram lives on a private telemetry registry; quantiles in the report
// are conservative bucket upper bounds (Histogram.Quantile).
func Run(cfg Config, target Target) (Report, error) {
	cfg = cfg.normalize()
	if err := cfg.validate(); err != nil {
		return Report{}, err
	}
	r := &runner{cfg: cfg, target: target}
	r.latency = telemetry.NewRegistry().Histogram("soda_loadgen_decide_latency_seconds",
		"queue-inclusive decide latency observed by the load generator",
		telemetry.USeconds, latencyBuckets)
	if err := r.buildSessions(); err != nil {
		return Report{}, err
	}

	start := time.Now()
	r.epoch = start
	if cfg.Mode == OpenLoop {
		r.runOpen()
	} else {
		r.runClosed()
	}
	elapsed := time.Since(start).Seconds()

	rep := Report{
		Mode:             cfg.Mode.String(),
		Sessions:         cfg.Sessions,
		Requests:         uint64(r.issued.Load()),
		OK:               r.ok.Load(),
		RejectedRate:     r.rejRate.Load(),
		RejectedLoad:     r.rejLoad.Load(),
		RejectedCapacity: r.rejCap.Load(),
		RejectedDraining: r.rejDrain.Load(),
		Errors:           r.errors.Load(),
		DurationSeconds:  elapsed,
		P50Ms:            r.latency.Quantile(0.50) * 1e3,
		P99Ms:            r.latency.Quantile(0.99) * 1e3,
		P999Ms:           r.latency.Quantile(0.999) * 1e3,
	}
	if elapsed > 0 {
		rep.AchievedRPS = float64(rep.Requests) / elapsed
	}
	if rep.Requests > 0 {
		rep.RejectedPct = 100 * float64(rep.Rejected()) / float64(rep.Requests)
	}
	// An in-process target exposes the server's lifecycle counters; fold the
	// admission/eviction story into the report when available.
	if st, ok := target.(interface{ SessionStats() sessiontable.Stats }); ok {
		stats := st.SessionStats()
		rep.ServerEvictions = stats.EvictedIdle
		rep.ServerSessions = stats.Active
	}
	if cfg.Watchdog != nil {
		rep.QoEIncidents = cfg.Watchdog.Total()
		rep.QoEIncidentsPer1k = flightrec.PerThousandSessions(rep.QoEIncidents, cfg.Sessions)
	}
	return rep, nil
}

// buildSessions synthesizes the shared trace pool and allocates one arena
// slot per virtual session. Sessions are spread across arena shards by
// index residue, which lines up with the closed loop's worker ownership:
// worker w walks sessions i ≡ w (mod workers), so each worker stays inside
// one shard's slabs.
func (r *runner) buildSessions() error {
	pool := make([][]units.Mbps, r.cfg.TracePool)
	for i := range pool {
		tr, err := r.cfg.Profile.Session(r.cfg.SessionLength, r.cfg.Seed, i)
		if err != nil {
			return fmt.Errorf("loadgen: synthesizing trace %d: %w", i, err)
		}
		samples := tr.Samples()
		mbps := make([]units.Mbps, len(samples))
		for j, s := range samples {
			mbps[j] = s.Mbps
		}
		pool[i] = mbps
	}
	r.pool = pool

	shards := r.cfg.Workers
	if shards > r.cfg.Sessions {
		shards = r.cfg.Sessions
	}
	perShard := (r.cfg.Sessions + shards - 1) / shards
	r.arena = arena.New(shards, perShard)
	r.states = make([]*arena.State, r.cfg.Sessions)
	r.keys = make([]string, r.cfg.Sessions)
	r.locks = make([]sync.Mutex, r.cfg.Sessions)
	if r.cfg.Watchdog != nil {
		r.watches = make([]*flightrec.SessionWatch, r.cfg.Sessions)
	}
	for i := range r.states {
		h, ok := r.arena.Alloc(i % shards)
		if !ok {
			return fmt.Errorf("loadgen: arena shard %d exhausted at session %d", i%shards, i)
		}
		st, _ := r.arena.State(h)
		// Stagger cursors so pool-sharing sessions do not move in lockstep
		// through identical throughput samples.
		*st = arena.State{Trace: int32(i % len(pool)), Cursor: int32(i / len(pool)), PrevRung: int32(abr.NoRung)}
		r.states[i] = st
		r.keys[i] = fmt.Sprintf("lg-%d", i)
		if r.cfg.Watchdog != nil {
			// Detector state rides in the same arena slot as the player
			// state, resolved once here like the fleet simulator does.
			watch, ok := r.arena.Watch(h)
			if !ok {
				return fmt.Errorf("loadgen: watch slot stale at session %d", i)
			}
			r.watches[i] = watch
		}
	}
	return nil
}

// step issues one decide for session index i and advances its player model,
// observing latency from the given start time (scheduled arrival in open
// loop, call time in closed loop).
func (r *runner) step(i int, start time.Time) {
	r.locks[i].Lock()
	defer r.locks[i].Unlock()

	st := r.states[i]
	samples := r.pool[st.Trace]
	throughput := samples[int(st.Cursor)%len(samples)]
	st.Cursor++
	req := httpseg.DecideRequest{
		Session:    r.keys[i],
		Buffer:     st.Buffer,
		Throughput: throughput,
		BufferCap:  r.cfg.BufferCap,
		Segment:    -1,
	}
	res, err := r.target.Decide(&req)
	if err != nil {
		r.errors.Add(1)
		return
	}
	switch res.Status {
	case httpseg.StatusOK:
		r.ok.Add(1)
		r.latency.Observe(time.Since(start).Seconds())
		prev := st.PrevRung
		r.advancePlayer(st, throughput, res)
		if res.Rung >= 0 {
			st.PrevRung = int32(res.Rung)
		}
		if r.watches != nil {
			// Observe with the client-side view: the buffer reported in the
			// request and the rung the server answered with.
			r.cfg.Watchdog.Observe(r.watches[i], int32(i),
				units.Seconds(time.Since(r.epoch).Seconds()), req.Buffer,
				int16(res.Rung), int16(prev))
		}
	case httpseg.StatusRejectedRate:
		r.rejRate.Add(1)
	case httpseg.StatusRejectedLoad:
		r.rejLoad.Add(1)
	case httpseg.StatusRejectedCapacity:
		r.rejCap.Add(1)
	case httpseg.StatusRejectedDraining:
		r.rejDrain.Add(1)
	}
}

// advancePlayer applies one decision to the session's simulated buffer: a
// download consumes link time and deposits a segment; a wait decision drains
// the buffer for the advised time. All arithmetic is local float64 — the
// unit types come back on at the request boundary.
func (r *runner) advancePlayer(st *arena.State, throughput units.Mbps, res httpseg.DecideResult) {
	buffer := float64(st.Buffer)
	segment := float64(r.cfg.SegmentSeconds)
	if res.Rung >= 0 {
		thr := float64(throughput)
		if thr < 0.1 {
			thr = 0.1 // a stalled link still finishes the download eventually
		}
		downloadTime := res.BitrateMbps * segment / thr
		buffer += segment - downloadTime
	} else {
		buffer -= res.WaitSeconds
	}
	if buffer < 0 {
		buffer = 0
	}
	if limit := float64(r.cfg.BufferCap); buffer > limit {
		buffer = limit
	}
	st.Buffer = units.Seconds(buffer)
}

// runClosed runs the closed loop on a fixed worker pool: worker w owns the
// sessions whose index is ≡ w (mod workers) and walks them in rounds, so a
// million-session run costs Workers goroutines, not a million. The request
// budget is split across sessions up front — a shared first-come-first-served
// budget would let the earliest-scheduled workers spend it all before the
// rest even start (in-process decides are single-digit microseconds),
// leaving most sessions untouched. Round-robin rounds preserve the old
// per-session pacing: every session issues its j-th request before any
// session issues its j+1-th, with think time between a worker's rounds.
func (r *runner) runClosed() {
	sessions := len(r.states)
	workers := r.cfg.Workers
	if workers > sessions {
		workers = sessions
	}
	quota := r.cfg.Requests / sessions
	extra := r.cfg.Requests % sessions
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; ; round++ {
				issued := false
				for i := w; i < sessions; i += workers {
					n := quota
					if i < extra {
						n++
					}
					if round < n {
						r.step(i, time.Now())
						issued = true
					}
				}
				if !issued {
					return
				}
				if r.cfg.ThinkTime > 0 {
					time.Sleep(r.cfg.ThinkTime)
				}
			}
		}(w)
	}
	wg.Wait()
	r.issued.Store(int64(r.cfg.Requests))
}

// arrival is one scheduled open-loop request.
type arrival struct {
	idx int
	due time.Time
}

// runOpen runs the open loop: a pacer draws exponential inter-arrival gaps
// at the target rate and stamps each request's scheduled time; workers
// execute them. Latency is measured from the stamp, so time spent queued
// behind a slow server counts against the server — the whole point of an
// open-loop measurement.
func (r *runner) runOpen() {
	work := make(chan arrival, 4*r.cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < r.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for a := range work {
				r.step(a.idx, a.due)
			}
		}()
	}

	rng := rand.New(rand.NewSource(int64(r.cfg.Seed)))
	interval := float64(time.Second) / r.cfg.RPS
	due := time.Now()
	for i := 0; i < r.cfg.Requests; i++ {
		due = due.Add(time.Duration(rng.ExpFloat64() * interval))
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		work <- arrival{idx: i % len(r.states), due: due}
	}
	close(work)
	wg.Wait()
	r.issued.Store(int64(r.cfg.Requests))
}

// Report is the outcome of one run, JSON-shaped for BENCH_*.json artifacts.
type Report struct {
	Mode             string  `json:"mode"`
	Sessions         int     `json:"sessions"`
	Requests         uint64  `json:"requests"`
	OK               uint64  `json:"ok"`
	RejectedRate     uint64  `json:"rejected_ratelimit"`
	RejectedLoad     uint64  `json:"rejected_inflight"`
	RejectedCapacity uint64  `json:"rejected_capacity"`
	RejectedDraining uint64  `json:"rejected_draining"`
	Errors           uint64  `json:"errors"`
	DurationSeconds  float64 `json:"duration_seconds"`
	AchievedRPS      float64 `json:"achieved_rps"`
	P50Ms            float64 `json:"p50_ms"`
	P99Ms            float64 `json:"p99_ms"`
	P999Ms           float64 `json:"p999_ms"`
	RejectedPct      float64 `json:"rejected_pct"`
	// ServerEvictions and ServerSessions are filled when the target exposes
	// sessiontable stats (the in-process configuration).
	ServerEvictions uint64 `json:"server_evictions"`
	ServerSessions  int    `json:"server_sessions_active"`
	// QoEIncidents is the watchdog's incident total for the run (zero when
	// no watchdog is attached); QoEIncidentsPer1k normalizes it per 1000
	// sessions — the gate-schema denomination.
	QoEIncidents      uint64  `json:"qoe_incidents"`
	QoEIncidentsPer1k float64 `json:"qoe_incidents_per_1k_sessions"`
}

// Rejected is the total shed count across all rejection reasons.
func (r Report) Rejected() uint64 {
	return r.RejectedRate + r.RejectedLoad + r.RejectedCapacity + r.RejectedDraining
}

// Gate checks the report against the CI thresholds: p99 decide latency in
// milliseconds, rejection percentage, and QoE-watchdog incidents per 1000
// sessions. Non-positive maxP99Ms and maxIncidentsPer1k skip those checks;
// a negative maxRejectedPct skips that one. Transport errors always fail.
func (r Report) Gate(maxP99Ms, maxRejectedPct, maxIncidentsPer1k float64) error {
	if r.Errors > 0 {
		return fmt.Errorf("loadgen: %d transport errors", r.Errors)
	}
	if r.OK == 0 {
		return fmt.Errorf("loadgen: no successful decides (of %d requests)", r.Requests)
	}
	if maxP99Ms > 0 && r.P99Ms > maxP99Ms {
		return fmt.Errorf("loadgen: p99 decide latency %.3f ms exceeds the %.3f ms gate", r.P99Ms, maxP99Ms)
	}
	if maxRejectedPct >= 0 && r.RejectedPct > maxRejectedPct {
		return fmt.Errorf("loadgen: %.2f%% of requests rejected, gate is %.2f%%", r.RejectedPct, maxRejectedPct)
	}
	if maxIncidentsPer1k > 0 && r.QoEIncidentsPer1k > maxIncidentsPer1k {
		return fmt.Errorf("loadgen: %.1f QoE incidents per 1k sessions, gate is %.1f",
			r.QoEIncidentsPer1k, maxIncidentsPer1k)
	}
	return nil
}

// WriteJSON renders the report as indented JSON.
func (r Report) WriteJSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
