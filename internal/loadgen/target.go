package loadgen

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/httpseg"
	"repro/internal/sessiontable"
)

// InProc drives a DecideService directly — no HTTP stack, no serialization —
// which is the configuration the allocation gate and the CI p99 gate
// measure: the control plane itself, not the transport.
type InProc struct {
	Svc *httpseg.DecideService
	// PerturbDelay injects an artificial service-time regression before each
	// decide. It exists so the gate tests can prove the p99 gate actually
	// fails a regressed build; production runs leave it zero.
	PerturbDelay time.Duration
}

// Decide implements Target.
func (t *InProc) Decide(req *httpseg.DecideRequest) (httpseg.DecideResult, error) {
	if t.PerturbDelay > 0 {
		time.Sleep(t.PerturbDelay)
	}
	return t.Svc.Decide(req), nil
}

// SessionStats forwards the server's lifecycle counters so Run can fold
// evictions and live-session counts into the report.
func (t *InProc) SessionStats() sessiontable.Stats { return t.Svc.SessionStats() }

// HTTPTarget drives a live soda-server over its /decide wire protocol.
type HTTPTarget struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:9090".
	BaseURL string
	// Client defaults to http.DefaultClient.
	Client *http.Client
}

// Decide implements Target by encoding the request onto the /decide query
// surface and mapping the HTTP status back. A 503 cannot be attributed to a
// specific shed reason over the wire, so it reports StatusRejectedLoad.
func (t *HTTPTarget) Decide(req *httpseg.DecideRequest) (httpseg.DecideResult, error) {
	// The unit-typed fields format directly (%g consumes them reflectively);
	// no float64 laundering happens on this side of the wire.
	url := fmt.Sprintf("%s/decide?session=%s&buffer=%g&throughput=%g",
		t.BaseURL, req.Session, req.Buffer, req.Throughput)
	if req.Client != "" {
		url += "&client=" + req.Client
	}
	if req.BufferCap > 0 {
		url += fmt.Sprintf("&cap=%g", req.BufferCap)
	}
	if req.Segment >= 0 {
		url += "&segment=" + strconv.Itoa(req.Segment)
	}
	if req.HavePrev {
		url += "&prev=" + strconv.Itoa(req.Prev)
	}
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(url)
	if err != nil {
		return httpseg.DecideResult{}, err
	}
	defer resp.Body.Close()

	switch resp.StatusCode {
	case http.StatusOK:
		var reply struct {
			Session     int64   `json:"session"`
			Segment     int     `json:"segment"`
			Rung        int     `json:"rung"`
			BitrateMbps float64 `json:"bitrate_mbps"`
			WaitSeconds float64 `json:"wait_s"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
			return httpseg.DecideResult{}, fmt.Errorf("loadgen: decoding /decide reply: %w", err)
		}
		return httpseg.DecideResult{
			Status:      httpseg.StatusOK,
			SessionID:   reply.Session,
			Segment:     reply.Segment,
			Rung:        reply.Rung,
			BitrateMbps: reply.BitrateMbps,
			WaitSeconds: reply.WaitSeconds,
		}, nil
	case http.StatusTooManyRequests:
		return httpseg.DecideResult{
			Status:     httpseg.StatusRejectedRate,
			RetryAfter: retryAfter(resp),
		}, nil
	case http.StatusServiceUnavailable:
		return httpseg.DecideResult{
			Status:     httpseg.StatusRejectedLoad,
			RetryAfter: retryAfter(resp),
		}, nil
	default:
		return httpseg.DecideResult{}, fmt.Errorf("loadgen: /decide returned status %d", resp.StatusCode)
	}
}

// retryAfter parses the advisory backoff off a rejection response.
func retryAfter(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 0 {
		return time.Second
	}
	return time.Duration(secs) * time.Second
}
