package loadgen

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/flightrec"
	"repro/internal/httpseg"
	"repro/internal/units"
	"repro/internal/video"
)

func newService(t *testing.T, opts httpseg.DecideOptions) *httpseg.DecideService {
	t.Helper()
	if opts.CacheEntries == 0 {
		opts.CacheEntries = 1 << 12
	}
	if opts.TableQuantum == 0 {
		opts.TableQuantum = 0.5
	}
	svc, err := httpseg.NewDecideService(video.Prototype(), opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestClosedLoopInProc(t *testing.T) {
	svc := newService(t, httpseg.DecideOptions{})
	rep, err := Run(Config{
		Mode:     ClosedLoop,
		Sessions: 8,
		Requests: 400,
		Seed:     1,
	}, &InProc{Svc: svc})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "closed" {
		t.Errorf("mode = %q, want closed", rep.Mode)
	}
	if rep.Requests != 400 {
		t.Errorf("requests = %d, want 400", rep.Requests)
	}
	if rep.OK != 400 {
		t.Errorf("ok = %d, want 400 (rejected %d, errors %d)", rep.OK, rep.Rejected(), rep.Errors)
	}
	if rep.P50Ms <= 0 || rep.P99Ms < rep.P50Ms || rep.P999Ms < rep.P99Ms {
		t.Errorf("quantiles not ordered: p50=%g p99=%g p999=%g", rep.P50Ms, rep.P99Ms, rep.P999Ms)
	}
	if rep.AchievedRPS <= 0 {
		t.Errorf("achieved rps = %g, want > 0", rep.AchievedRPS)
	}
	// The in-proc target surfaces the server's session table.
	if rep.ServerSessions != 8 {
		t.Errorf("server sessions = %d, want 8", rep.ServerSessions)
	}
	if err := rep.Gate(1000, 0, 0); err != nil {
		t.Errorf("clean run failed a generous gate: %v", err)
	}
	out, err := rep.WriteJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"p99_ms", "rejected_pct", "server_sessions_active", "achieved_rps"} {
		if !strings.Contains(string(out), key) {
			t.Errorf("report JSON missing %q:\n%s", key, out)
		}
	}
}

func TestClosedLoopThinkTime(t *testing.T) {
	svc := newService(t, httpseg.DecideOptions{})
	start := time.Now()
	rep, err := Run(Config{
		Mode:      ClosedLoop,
		Sessions:  2,
		Requests:  10,
		ThinkTime: 5 * time.Millisecond,
	}, &InProc{Svc: svc})
	if err != nil {
		t.Fatal(err)
	}
	// 10 requests over 2 sessions with 5 ms think ≈ 25 ms floor.
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("closed loop with think time finished in %v, want >= 20ms", elapsed)
	}
	if rep.OK != 10 {
		t.Errorf("ok = %d, want 10", rep.OK)
	}
}

func TestOpenLoopInProc(t *testing.T) {
	svc := newService(t, httpseg.DecideOptions{})
	rep, err := Run(Config{
		Mode:     OpenLoop,
		Sessions: 100,
		Requests: 1000,
		RPS:      50000,
		Seed:     2,
	}, &InProc{Svc: svc})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "open" {
		t.Errorf("mode = %q, want open", rep.Mode)
	}
	if rep.Requests != 1000 || rep.OK != 1000 {
		t.Errorf("requests/ok = %d/%d, want 1000/1000", rep.Requests, rep.OK)
	}
	if rep.P99Ms <= 0 {
		t.Errorf("p99 = %g, want > 0", rep.P99Ms)
	}
	if rep.ServerSessions != 100 {
		t.Errorf("server sessions = %d, want 100", rep.ServerSessions)
	}
}

// TestGateCatchesRegression is the proof the CI p99 gate works: the same
// workload passes on the clean build and fails when the decide path is
// deliberately slowed — so a real latency regression cannot slip through.
func TestGateCatchesRegression(t *testing.T) {
	const maxP99Ms, maxRejectedPct = 5.0, 0.0
	cfg := Config{Mode: ClosedLoop, Sessions: 4, Requests: 200, Seed: 3}

	clean, err := Run(cfg, &InProc{Svc: newService(t, httpseg.DecideOptions{})})
	if err != nil {
		t.Fatal(err)
	}
	if err := clean.Gate(maxP99Ms, maxRejectedPct, 0); err != nil {
		t.Fatalf("clean build failed the gate: %v (p99=%.3fms)", err, clean.P99Ms)
	}

	regressed, err := Run(cfg, &InProc{
		Svc:          newService(t, httpseg.DecideOptions{}),
		PerturbDelay: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := regressed.Gate(maxP99Ms, maxRejectedPct, 0); err == nil {
		t.Fatalf("regressed build passed the gate (p99=%.3fms)", regressed.P99Ms)
	}
}

func TestGateThresholds(t *testing.T) {
	base := Report{Requests: 100, OK: 99, RejectedRate: 1, RejectedPct: 1, P99Ms: 2,
		QoEIncidents: 10, QoEIncidentsPer1k: 100}
	cases := []struct {
		name              string
		mutate            func(*Report)
		maxP99Ms          float64
		maxRejectedPct    float64
		maxIncidentsPer1k float64
		wantFail          bool
	}{
		{"clean", nil, 5, 2, 0, false},
		{"p99 over", nil, 1, 2, 0, true},
		{"p99 gate disabled", nil, 0, 2, 0, false},
		{"rejections over", nil, 5, 0.5, 0, true},
		{"rejection gate disabled", func(r *Report) { r.RejectedPct = 50 }, 5, -1, 0, false},
		{"transport errors", func(r *Report) { r.Errors = 1 }, 5, 2, 0, true},
		{"nothing succeeded", func(r *Report) { r.OK = 0 }, 5, 2, 0, true},
		{"incidents over", nil, 5, 2, 50, true},
		{"incidents within", nil, 5, 2, 200, false},
		{"incident gate disabled", func(r *Report) { r.QoEIncidentsPer1k = 1e6 }, 5, 2, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := base
			if tc.mutate != nil {
				tc.mutate(&rep)
			}
			err := rep.Gate(tc.maxP99Ms, tc.maxRejectedPct, tc.maxIncidentsPer1k)
			if (err != nil) != tc.wantFail {
				t.Errorf("Gate(%g, %g, %g) = %v, want fail=%v", tc.maxP99Ms, tc.maxRejectedPct, tc.maxIncidentsPer1k, err, tc.wantFail)
			}
		})
	}
}

func TestRejectionAccounting(t *testing.T) {
	// One token per client-second with minimal burst: closed-loop sessions
	// issuing back-to-back decides must mostly be shed with 429s.
	svc := newService(t, httpseg.DecideOptions{RPSPerClient: 1, BurstPerClient: 1})
	rep, err := Run(Config{Mode: ClosedLoop, Sessions: 4, Requests: 100}, &InProc{Svc: svc})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RejectedRate == 0 {
		t.Fatal("rate limiter never fired under a saturating closed loop")
	}
	if got := rep.OK + rep.Rejected(); got != rep.Requests {
		t.Errorf("ok %d + rejected %d != requests %d", rep.OK, rep.Rejected(), rep.Requests)
	}
	if rep.RejectedPct <= 0 {
		t.Errorf("rejected pct = %g, want > 0", rep.RejectedPct)
	}
	if err := rep.Gate(1000, 0, 0); err == nil {
		t.Error("gate with a zero rejection budget passed a shedding run")
	}
}

func TestHTTPTarget(t *testing.T) {
	svc := newService(t, httpseg.DecideOptions{})
	srv := httptest.NewServer(svc)
	defer srv.Close()

	rep, err := Run(Config{
		Mode:     ClosedLoop,
		Sessions: 4,
		Requests: 60,
		Seed:     4,
	}, &HTTPTarget{BaseURL: srv.URL, Client: srv.Client()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 60 {
		t.Fatalf("ok = %d of %d over HTTP (errors %d)", rep.OK, rep.Requests, rep.Errors)
	}
	// The HTTP target cannot see the server's session table.
	if rep.ServerSessions != 0 || rep.ServerEvictions != 0 {
		t.Errorf("HTTP run reported server stats %d/%d, want 0/0", rep.ServerSessions, rep.ServerEvictions)
	}
}

func TestHTTPTargetStatusMapping(t *testing.T) {
	tgt := &HTTPTarget{}
	req := &httpseg.DecideRequest{Session: "s", Buffer: units.Seconds(5), Throughput: units.Mbps(5), Segment: -1}

	// 429 and 503 map onto rejection statuses with the advisory backoff.
	for _, tc := range []struct {
		code int
		want httpseg.DecideStatus
	}{
		{429, httpseg.StatusRejectedRate},
		{503, httpseg.StatusRejectedLoad},
	} {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(tc.code)
		}))
		tgt.BaseURL = srv.URL
		res, err := tgt.Decide(req)
		srv.Close()
		if err != nil {
			t.Fatalf("status %d: %v", tc.code, err)
		}
		if res.Status != tc.want || res.RetryAfter != 3*time.Second {
			t.Errorf("status %d -> (%d, %v), want (%d, 3s)", tc.code, res.Status, res.RetryAfter, tc.want)
		}
	}

	// Unexpected statuses and malformed bodies are transport errors.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(500)
	}))
	tgt.BaseURL = srv.URL
	if _, err := tgt.Decide(req); err == nil {
		t.Error("500 did not surface as an error")
	}
	srv.Close()

	srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not json"))
	}))
	tgt.BaseURL = srv.URL
	if _, err := tgt.Decide(req); err == nil {
		t.Error("malformed reply did not surface as an error")
	}
	srv.Close()

	// A request carrying every optional field still round-trips the query
	// encoding (cap, segment, prev, client).
	full := &httpseg.DecideRequest{
		Session: "s", Client: "c", Buffer: units.Seconds(5), Throughput: units.Mbps(5),
		BufferCap: units.Seconds(30), Segment: 7, Prev: 1, HavePrev: true,
	}
	echo := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		for key, want := range map[string]string{
			"session": "s", "client": "c", "cap": "30", "segment": "7", "prev": "1",
		} {
			if got := q.Get(key); got != want {
				t.Errorf("query %s = %q, want %q", key, got, want)
			}
		}
		w.Write([]byte(`{"session":1,"segment":7,"rung":1,"bitrate_mbps":1.5}`))
	}))
	defer echo.Close()
	tgt.BaseURL = echo.URL
	res, err := tgt.Decide(full)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != httpseg.StatusOK || res.Rung != 1 || res.BitrateMbps != 1.5 {
		t.Errorf("full request result = %+v", res)
	}
}

func TestConfigValidation(t *testing.T) {
	svc := newService(t, httpseg.DecideOptions{})
	if _, err := Run(Config{Mode: ClosedLoop, Requests: 0}, &InProc{Svc: svc}); err == nil {
		t.Error("zero request budget accepted")
	}
	if _, err := Run(Config{Mode: OpenLoop, Requests: 10, RPS: 0}, &InProc{Svc: svc}); err == nil {
		t.Error("open loop without RPS accepted")
	}
}

func TestTracePoolSharing(t *testing.T) {
	// More sessions than the pool cap: sessions must still get distinct keys
	// and staggered cursors, and the run must stay within budget.
	svc := newService(t, httpseg.DecideOptions{})
	rep, err := Run(Config{
		Mode:      ClosedLoop,
		Sessions:  300, // > the 256 trace-pool cap
		Requests:  600,
		Seed:      5,
		TracePool: 16,
	}, &InProc{Svc: svc})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 600 {
		t.Errorf("ok = %d, want 600", rep.OK)
	}
	if rep.ServerSessions != 300 {
		t.Errorf("server sessions = %d, want 300", rep.ServerSessions)
	}
}

// TestWatchdogAttached pins the client-side QoE-watchdog wiring: a run with a
// watchdog fills the report's incident fields and JSON schema; virtual
// sessions start at buffer 0 and immediately drain through the underrun band,
// so a horizon-triggering workload must produce incidents.
func TestWatchdogAttached(t *testing.T) {
	svc := newService(t, httpseg.DecideOptions{})
	wd := flightrec.NewWatchdog(nil, flightrec.WatchdogConfig{UnderrunHorizon: units.Seconds(30)})
	rep, err := Run(Config{
		Mode:     ClosedLoop,
		Sessions: 4,
		Requests: 200,
		Seed:     5,
		// BufferCap 20 < the 30 s horizon: every session lives in the
		// underrun-risk band its whole life, so at least one incident per
		// session is guaranteed.
		BufferCap: units.Seconds(20),
		Watchdog:  wd,
	}, &InProc{Svc: svc})
	if err != nil {
		t.Fatal(err)
	}
	if rep.QoEIncidents == 0 {
		t.Fatal("watchdog with a 30 s underrun horizon over a 20 s buffer cap observed no incidents")
	}
	if rep.QoEIncidents != wd.Total() {
		t.Errorf("report incidents %d != watchdog total %d", rep.QoEIncidents, wd.Total())
	}
	wantPer1k := flightrec.PerThousandSessions(rep.QoEIncidents, 4)
	if rep.QoEIncidentsPer1k != wantPer1k {
		t.Errorf("per-1k = %g, want %g", rep.QoEIncidentsPer1k, wantPer1k)
	}
	out, err := rep.WriteJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"qoe_incidents", "qoe_incidents_per_1k_sessions"} {
		if !strings.Contains(string(out), key) {
			t.Errorf("report JSON missing %q:\n%s", key, out)
		}
	}
	// A strict incident gate must fire on this report; a generous one passes.
	if err := rep.Gate(0, -1, 0.001); err == nil {
		t.Error("strict incident gate passed an incident-heavy run")
	}
	if err := rep.Gate(0, -1, 1e9); err != nil {
		t.Errorf("generous incident gate failed: %v", err)
	}
}
