// Package telemetry is the observability layer of the reproduction: a
// stdlib-only metrics registry (atomic counters, gauges and fixed-bucket
// histograms with Prometheus text exposition), a per-decision trace ring
// buffer with JSONL export, and a Collector bundling the standard SODA
// instruments.
//
// Two contracts shape the design:
//
//   - Purity: controllers never see the telemetry layer. Recording is
//     pull-based — harnesses (sim, prod, httpseg, the cmd binaries) snapshot
//     SolveStats/CacheStats after Decide returns and feed the collector from
//     the call site, so the purecontroller analyzer keeps holding.
//   - Zero allocation on the hot path: counter/gauge/histogram updates and
//     ring appends allocate nothing in steady state (gated by cmd/soda-bench),
//     and the per-session recorder batches its flushes so a dataset-scale
//     simulation pays well under 5% per decision.
//
// Metric names carry their units.* dimension as a suffix (_seconds, _mbps,
// ...), enforced at registration — the first step of the ROADMAP "typed wire
// schemas" item. The exposition encoder and the JSONL trace export speak raw
// float64 on purpose; the package is a sanctioned laundering site:
//
//soda:wire-boundary
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Unit names the units.* dimension a metric's values are denominated in.
// Registration enforces that a unit-carrying metric name ends in the unit's
// suffix (before the _total suffix for counters), so the exposition remains
// self-describing even though the wire format is unitless float64.
type Unit string

// The units the repository's typed scalars map onto.
const (
	None      Unit = ""
	USeconds  Unit = "seconds"
	UMinutes  Unit = "minutes"
	UMbps     Unit = "mbps"
	UMegabits Unit = "megabits"
)

// Label is one key=value metric dimension. Labels are fixed at registration;
// there is no dynamic label allocation on the update path.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// atomicFloat is a float64 updated via CAS on its bit pattern, so counters
// and gauges take float64 increments without locks or allocation.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) Add(v float64) {
	for {
		old := a.bits.Load()
		if a.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (a *atomicFloat) Store(v float64) { a.bits.Store(math.Float64bits(v)) }
func (a *atomicFloat) Load() float64   { return math.Float64frombits(a.bits.Load()) }

// Counter is a monotonically increasing metric.
type Counter struct{ v atomicFloat }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds v; negative increments panic (counters are monotone by contract).
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic(fmt.Sprintf("telemetry: negative counter increment %g", v))
	}
	c.v.Add(v)
}

// Value returns the current total.
func (c *Counter) Value() float64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomicFloat }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v.Store(v) }

// Add moves the gauge by v.
func (g *Gauge) Add(v float64) { g.v.Add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram: per-bucket atomic counts plus an
// atomic sum. The bucket layout is fixed at registration, so Observe is a
// bounds scan and two atomic updates — no locks, no allocation.
type Histogram struct {
	upper  []float64 // ascending finite upper bounds; +Inf bucket is implicit
	counts []atomic.Uint64
	sum    atomicFloat
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[h.bucketIndex(v)].Add(1)
	h.sum.Add(v)
}

// bucketIndex returns the index of the bucket v falls into; len(upper) is
// the +Inf bucket. Buckets are few (≤ ~20), so a linear scan beats binary
// search in practice and stays branch-predictable for clustered values.
func (h *Histogram) bucketIndex(v float64) int {
	for i, ub := range h.upper {
		if v <= ub {
			return i
		}
	}
	return len(h.upper)
}

// addBatch folds a locally accumulated bucket tally into the histogram —
// the SessionRecorder flush path. counts must be parallel to the histogram's
// buckets (including the +Inf slot).
func (h *Histogram) addBatch(counts []uint64, sum float64) {
	for i, c := range counts {
		if c > 0 {
			h.counts[i].Add(c)
		}
	}
	h.sum.Add(sum)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// Quantile estimates the q-th quantile (0 < q <= 1) from the bucket counts.
//
// The estimator is the conservative bucket-upper-bound rule: it finds the
// bucket containing the rank-⌈q·N⌉ observation and returns that bucket's
// upper bound, with no interpolation inside the bucket. The estimate
// therefore never underestimates the true quantile (resolution is bounded
// by the bucket layout), which is the convention the load gates want: a
// reported p99 below a threshold guarantees the true p99 is below it too.
//
// Degenerate inputs, pinned by TestHistogramQuantileEstimatorTable:
//
//   - empty histogram (no observations, or q out of range): returns 0;
//   - single-bucket layout: every in-range observation reports that
//     bucket's bound, however small the observed values were;
//   - observations in the implicit +Inf overflow bucket: report the
//     largest finite bound — the histogram cannot resolve beyond its
//     layout, and returning +Inf would poison downstream arithmetic.
func (h *Histogram) Quantile(q float64) float64 {
	if q <= 0 || q > 1 || len(h.upper) == 0 {
		return 0
	}
	total := h.Count()
	if total == 0 {
		return 0
	}
	// rank is the 1-based index of the target observation under the usual
	// ceil(q*N) definition, computed without floats drifting at large N.
	rank := uint64(q * float64(total))
	if float64(rank) < q*float64(total) || rank == 0 {
		rank++
	}
	var cum uint64
	for i, ub := range h.upper {
		cum += h.counts[i].Load()
		if cum >= rank {
			return ub
		}
	}
	return h.upper[len(h.upper)-1]
}

// series is one label-set instance of a metric family.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one metric name: kind, unit, help and its per-label-set series.
type family struct {
	name    string
	help    string
	kind    kind
	unit    Unit
	buckets []float64
	order   []string
	series  map[string]*series
}

// Registry holds metric families and hands out instruments. Registration is
// get-or-create: asking for the same name and label set again returns the
// existing instrument; re-registering a name with a different kind, unit or
// bucket layout panics (it is a programming error, not a runtime condition).
type Registry struct {
	mu sync.Mutex
	//soda:guard mu
	families map[string]*family
	//soda:guard mu
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Counter registers (or fetches) a counter. The name must end in _total; a
// unit-carrying counter must end in _<unit>_total.
func (r *Registry) Counter(name, help string, unit Unit, labels ...Label) *Counter {
	s := r.lookup(name, help, kindCounter, unit, nil, labels)
	return s.c
}

// Gauge registers (or fetches) a gauge. A unit-carrying gauge must end in
// _<unit>.
func (r *Registry) Gauge(name, help string, unit Unit, labels ...Label) *Gauge {
	s := r.lookup(name, help, kindGauge, unit, nil, labels)
	return s.g
}

// Histogram registers (or fetches) a histogram with the given ascending
// finite bucket upper bounds (the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, unit Unit, buckets []float64, labels ...Label) *Histogram {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %s registered with no buckets", name))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %s buckets not strictly ascending at %d", name, i))
		}
	}
	s := r.lookup(name, help, kindHistogram, unit, buckets, labels)
	return s.h
}

func (r *Registry) lookup(name, help string, k kind, unit Unit, buckets []float64, labels []Label) *series {
	if err := CheckName(name, k == kindCounter, unit); err != nil {
		panic("telemetry: " + err.Error())
	}
	for _, l := range labels {
		if !nameOK(l.Key) {
			panic(fmt.Sprintf("telemetry: metric %s has invalid label key %q", name, l.Key))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.families[name]
	if fam == nil {
		fam = &family{
			name: name, help: help, kind: k, unit: unit,
			buckets: append([]float64(nil), buckets...),
			series:  map[string]*series{},
		}
		r.families[name] = fam
		r.order = append(r.order, name)
	} else {
		if fam.kind != k || fam.unit != unit || !sameBuckets(fam.buckets, buckets) {
			panic(fmt.Sprintf("telemetry: metric %s re-registered as %s/%q (was %s/%q)",
				name, k, unit, fam.kind, fam.unit))
		}
	}
	key := labelKey(labels)
	s := fam.series[key]
	if s == nil {
		s = &series{labels: append([]Label(nil), labels...)}
		switch k {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			s.h = &Histogram{
				upper:  fam.buckets,
				counts: make([]atomic.Uint64, len(fam.buckets)+1),
			}
		}
		fam.series[key] = s
		fam.order = append(fam.order, key)
	}
	return s
}

func sameBuckets(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, l := range labels {
		sb.WriteString(l.Key)
		sb.WriteByte('\x00')
		sb.WriteString(l.Value)
		sb.WriteByte('\x01')
	}
	return sb.String()
}

// nameOK reports whether s is a legal metric or label-key name.
func nameOK(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// CheckName validates a metric name against the registry's naming rule:
// legal identifier characters, counters end in _total, and a unit-carrying
// metric ends in _<unit> (immediately before _total for counters). It is
// exported so tests outside the package can assert the rule over a wired-up
// registry snapshot.
func CheckName(name string, counter bool, unit Unit) error {
	if !nameOK(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	base := name
	if counter {
		if !strings.HasSuffix(base, "_total") {
			return fmt.Errorf("counter %s must end in _total", name)
		}
		base = strings.TrimSuffix(base, "_total")
	}
	if unit != None && !strings.HasSuffix(base, "_"+string(unit)) {
		return fmt.Errorf("metric %s carries unit %q but lacks the _%s suffix", name, unit, unit)
	}
	return nil
}

// BucketCount is one cumulative histogram bucket of a snapshot; the +Inf
// bucket is omitted (MetricSnapshot.Count carries the total), keeping the
// snapshot JSON-encodable.
type BucketCount struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// MetricSnapshot is one series' point-in-time state, the unit of both the
// -telemetry snapshot file and the unit-suffix tests.
type MetricSnapshot struct {
	Name    string        `json:"name"`
	Kind    string        `json:"kind"`
	Unit    Unit          `json:"unit,omitempty"`
	Help    string        `json:"help,omitempty"`
	Labels  []Label       `json:"labels,omitempty"`
	Value   float64       `json:"value,omitempty"`
	Buckets []BucketCount `json:"buckets,omitempty"`
	Sum     float64       `json:"sum,omitempty"`
	Count   uint64        `json:"count,omitempty"`
}

// Snapshot returns the state of every registered series, families sorted by
// name, series in registration order.
func (r *Registry) Snapshot() []MetricSnapshot {
	// The registry lock covers the family/series maps for the whole walk;
	// instrument values are atomics, so holding it while loading them is
	// cheap and keeps the walk consistent with concurrent registration.
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]*family, 0, len(r.order))
	for _, n := range r.order {
		fams = append(fams, r.families[n])
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var out []MetricSnapshot
	for _, fam := range fams {
		for _, key := range fam.order {
			s := fam.series[key]
			snap := MetricSnapshot{
				Name:   fam.name,
				Kind:   fam.kind.String(),
				Unit:   fam.unit,
				Help:   fam.help,
				Labels: s.labels,
			}
			switch fam.kind {
			case kindCounter:
				snap.Value = s.c.Value()
			case kindGauge:
				snap.Value = s.g.Value()
			case kindHistogram:
				var cum uint64
				snap.Buckets = make([]BucketCount, len(s.h.upper))
				for i, ub := range s.h.upper {
					cum += s.h.counts[i].Load()
					snap.Buckets[i] = BucketCount{UpperBound: ub, Count: cum}
				}
				snap.Count = cum + s.h.counts[len(s.h.upper)].Load()
				snap.Sum = s.h.Sum()
			}
			out = append(out, snap)
		}
	}
	return out
}
