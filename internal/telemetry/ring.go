package telemetry

import (
	"encoding/json"
	"io"
	"sync"

	"repro/internal/units"
)

// DecisionEvent is one Decide call as recorded by a harness after the
// controller returned — the unit of the /debug/decisions trace and the JSONL
// export. Field names carry their unit (the typed-wire-schema convention);
// the values themselves are the repository's units.* scalars, which encode
// as plain JSON numbers.
// The narrow integer fields are deliberate: the event is copied on every
// ring append and sits 256-deep in each recorder's pending batch, so its
// size is hot-path cache traffic. int32/int16/uint32 keep it at 88 bytes
// (vs 136 with machine-word fields) without losing range — sessions and
// segments stay far below 2^31, ladders below 2^15, and per-decision solver
// deltas below 2^32.
type DecisionEvent struct {
	// Session labels the originating session (the trace index of a dataset
	// run, or the DecideService's per-session id).
	Session int32 `json:"session"`
	// Segment is the segment index the decision was made for.
	Segment int32 `json:"segment"`
	// Rung is the chosen ladder rung; -1 is a wait (no download).
	Rung int16 `json:"rung"`
	// PrevRung is the previously committed rung (-1 before the first).
	PrevRung int16 `json:"prev_rung"`
	// Timed reports whether SolveSeconds holds a measured Decide latency
	// (latency is sampled, not measured every decision, to keep the hot
	// path inside the telemetry overhead budget). Declared here so it
	// packs into the leading integer word.
	Timed bool `json:"timed,omitempty"`
	// Buffer is the playback buffer level when Decide was called.
	Buffer units.Seconds `json:"buffer_s"`
	// Throughput is the last measured segment throughput fed to the
	// controller (the predictor input; 0 before the first download).
	Throughput units.Mbps `json:"throughput_mbps"`
	// Bitrate is the chosen rung's nominal rate (0 on wait).
	Bitrate units.Mbps `json:"bitrate_mbps,omitempty"`
	// WaitSeconds is the idle duration of a wait decision.
	WaitSeconds units.Seconds `json:"wait_s,omitempty"`
	// Solves/Nodes/MemoHits/SharedHits are the solver-work deltas this
	// decision cost, snapshotted from SolveStats after Decide returned
	// (zero for controllers that expose no stats).
	Solves     uint32 `json:"solves,omitempty"`
	Nodes      uint32 `json:"nodes,omitempty"`
	MemoHits   uint32 `json:"memo_hits,omitempty"`
	SharedHits uint32 `json:"shared_hits,omitempty"`
	// TableHits counts compiled decision-table hits this decision cost (1 on
	// a table-served decision, 0 on a fallback or for untabled controllers).
	TableHits uint32 `json:"table_hits,omitempty"`
	// SolveSeconds is the measured Decide latency; only meaningful when
	// Timed is set.
	SolveSeconds units.Seconds `json:"solve_s,omitempty"`
	// AtSeconds is the harness clock at the decision: the stream clock of a
	// simulated session (sim.Run / sim.Fleet) or the service-relative wall
	// clock of a serving decide. Timeline reconstruction and the Chrome
	// trace export order events by it; 0 means the harness did not stamp.
	AtSeconds units.Seconds `json:"at_s,omitempty"`
}

// Ring is a fixed-capacity overwrite-oldest buffer of decision events. A
// single mutex guards it: appends copy one event under the lock and the
// recorder batch path amortises the lock over many events, so the ring never
// allocates after construction.
type Ring struct {
	mu sync.Mutex
	//soda:guard mu
	buf  []DecisionEvent
	mask uint64
	//soda:guard mu
	next uint64 // total events ever appended
}

// DefaultRingCapacity holds ~a minute of fleet decision traffic at the
// simulator's decision rates; see DESIGN.md §6 for the sizing argument.
const DefaultRingCapacity = 4096

// NewRing builds a ring holding the last capacity events (rounded up to a
// power of two; non-positive capacities get DefaultRingCapacity).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Ring{buf: make([]DecisionEvent, n), mask: uint64(n - 1)}
}

// Append records one event, overwriting the oldest once full.
//
//soda:noalloc
func (r *Ring) Append(ev DecisionEvent) {
	r.mu.Lock()
	r.buf[r.next&r.mask] = ev
	r.next++
	r.mu.Unlock()
}

// AppendBatch records a slice of events under one lock acquisition — the
// SessionRecorder flush path.
//
//soda:noalloc
func (r *Ring) AppendBatch(evs []DecisionEvent) {
	if len(evs) == 0 {
		return
	}
	r.mu.Lock()
	for i := range evs {
		r.buf[r.next&r.mask] = evs[i]
		r.next++
	}
	r.mu.Unlock()
}

// Len returns the number of events currently held.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.held()
}

// Total returns the number of events ever appended.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

//soda:locked mu
func (r *Ring) held() int {
	if r.next < uint64(len(r.buf)) {
		return int(r.next)
	}
	return len(r.buf)
}

// Snapshot copies the held events, oldest first.
func (r *Ring) Snapshot() []DecisionEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.held()
	out := make([]DecisionEvent, n)
	start := r.next - uint64(n)
	for i := 0; i < n; i++ {
		out[i] = r.buf[(start+uint64(i))&r.mask]
	}
	return out
}

// AllSessions is the WriteJSONL session filter that keeps every event.
const AllSessions int32 = -1

// WriteJSONL writes held events as one JSON object per line, oldest first.
// A positive max keeps only the newest max events; a session other than
// AllSessions keeps only that session's events (filtered before the max cut,
// so `?session=N&limit=K` is the newest K events *of that session*).
func (r *Ring) WriteJSONL(w io.Writer, max int, session int32) error {
	events := r.Snapshot()
	if session != AllSessions {
		kept := events[:0]
		for i := range events {
			if events[i].Session == session {
				kept = append(kept, events[i])
			}
		}
		events = kept
	}
	if max > 0 && len(events) > max {
		events = events[len(events)-max:]
	}
	enc := json.NewEncoder(w)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return err
		}
	}
	return nil
}
