package telemetry

import (
	"encoding/json"
	"os"
	"sync"

	"repro/internal/units"
)

// SolverStats mirrors core.SolveStats without importing it, keeping the
// telemetry layer free of controller dependencies (harnesses copy the fields
// at the call site). All counters are per-session deltas.
type SolverStats struct {
	Solves         uint64
	Nodes          uint64
	MemoLookups    uint64
	MemoHits       uint64
	SharedLookups  uint64
	SharedHits     uint64
	TableLookups   uint64
	TableHits      uint64
	TableFallbacks uint64
}

// Collector bundles the standard SODA instruments on one registry plus the
// decision trace ring. All methods are safe for concurrent use and nil-safe:
// a nil *Collector records nothing, so harnesses wire it unconditionally.
type Collector struct {
	Registry *Registry
	Ring     *Ring

	// recorders recycles SessionRecorders (and their pending buffers and
	// histogram tallies) across sessions: a fleet churns through thousands
	// of short sessions, and per-session buffer allocations are the
	// dominant GC cost of the telemetry layer otherwise.
	recorders sync.Pool

	// Per-decision counters and distributions.
	Decisions   *Counter
	Waits       *Counter
	BufferLevel *Histogram
	Bitrate     *Histogram
	Latency     *Histogram

	// Per-session counters.
	Sessions        *Counter
	Segments        *Counter
	RebufferSeconds *Counter

	// Solver-work counters, flushed from SolveStats deltas.
	Solves         *Counter
	Nodes          *Counter
	MemoLookups    *Counter
	MemoHits       *Counter
	SharedLookups  *Counter
	SharedHits     *Counter
	TableLookups   *Counter
	TableHits      *Counter
	TableFallbacks *Counter
}

// Default bucket layouts. Buffer levels live in [0, ~20 s] (the live cap),
// bitrates span the registered ladders (0.1–60 Mb/s), and solve latencies
// sit in the hundreds of nanoseconds (Algorithm 1's deployability argument),
// so the latency buckets start below a microsecond.
var (
	bufferBuckets  = []float64{0.5, 1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20}
	bitrateBuckets = []float64{0.25, 0.5, 1, 2, 4, 8, 12, 16, 24, 32, 48, 64}
	latencyBuckets = []float64{250e-9, 500e-9, 1e-6, 2.5e-6, 5e-6, 10e-6, 25e-6, 50e-6, 100e-6, 1e-3, 10e-3}
)

// NewCollector registers the standard instruments on reg (a nil reg gets a
// fresh registry) with a trace ring of ringCapacity events.
func NewCollector(reg *Registry, ringCapacity int) *Collector {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Collector{
		Registry: reg,
		Ring:     NewRing(ringCapacity),

		Decisions: reg.Counter("soda_decisions_total", "ABR decisions recorded, including waits", None),
		Waits:     reg.Counter("soda_wait_decisions_total", "decisions that idled instead of downloading", None),
		BufferLevel: reg.Histogram("soda_buffer_level_seconds",
			"playback buffer level at decision time", USeconds, bufferBuckets),
		Bitrate: reg.Histogram("soda_decided_bitrate_mbps",
			"nominal bitrate of the chosen rung", UMbps, bitrateBuckets),
		Latency: reg.Histogram("soda_decide_latency_seconds",
			"sampled Decide wall-clock latency", USeconds, latencyBuckets),

		Sessions:        reg.Counter("soda_sessions_total", "completed streaming sessions", None),
		Segments:        reg.Counter("soda_segments_total", "segments downloaded", None),
		RebufferSeconds: reg.Counter("soda_rebuffer_seconds_total", "stall time charged across sessions", USeconds),

		Solves:        reg.Counter("soda_solver_solves_total", "planning problems solved", None),
		Nodes:         reg.Counter("soda_solver_nodes_total", "branch-and-bound nodes expanded", None),
		MemoLookups:   reg.Counter("soda_solver_memo_lookups_total", "decide-level memo lookups", None),
		MemoHits:      reg.Counter("soda_solver_memo_hits_total", "decide-level memo hits", None),
		SharedLookups: reg.Counter("soda_shared_cache_lookups_total", "fleet solve-cache lookups", None),
		SharedHits:    reg.Counter("soda_shared_cache_hits_total", "fleet solve-cache hits", None),

		TableLookups:   reg.Counter("soda_decision_table_lookups_total", "compiled decision-table lookups", None),
		TableHits:      reg.Counter("soda_decision_table_hits_total", "compiled decision-table hits", None),
		TableFallbacks: reg.Counter("soda_decision_table_fallbacks_total", "decision-table lookups outside the domain that fell back to the solver", None),
	}
}

// RecordDecision records one event immediately: ring append, counters and
// histograms, all under the event's own cost (~a ring lock plus a few atomic
// updates). Harnesses with a per-decision hot loop should prefer a
// SessionRecorder, which batches this work. The caller sets ev.Session.
func (c *Collector) RecordDecision(ev DecisionEvent) {
	if c == nil {
		return
	}
	c.Ring.Append(ev)
	c.Decisions.Inc()
	c.BufferLevel.Observe(float64(ev.Buffer))
	if ev.Rung < 0 {
		c.Waits.Inc()
	} else {
		c.Bitrate.Observe(float64(ev.Bitrate))
	}
	if ev.Timed {
		c.Latency.Observe(float64(ev.SolveSeconds))
	}
}

// RecordSolverStats folds a per-session solver-work delta into the counters.
func (c *Collector) RecordSolverStats(s SolverStats) {
	if c == nil {
		return
	}
	addCounter(c.Solves, s.Solves)
	addCounter(c.Nodes, s.Nodes)
	addCounter(c.MemoLookups, s.MemoLookups)
	addCounter(c.MemoHits, s.MemoHits)
	addCounter(c.SharedLookups, s.SharedLookups)
	addCounter(c.SharedHits, s.SharedHits)
	addCounter(c.TableLookups, s.TableLookups)
	addCounter(c.TableHits, s.TableHits)
	addCounter(c.TableFallbacks, s.TableFallbacks)
}

// RecordSession records one completed session's aggregates.
func (c *Collector) RecordSession(segments int, rebuffer units.Seconds) {
	if c == nil {
		return
	}
	c.Sessions.Inc()
	c.Segments.Add(float64(segments))
	c.RebufferSeconds.Add(float64(rebuffer))
}

func addCounter(c *Counter, v uint64) {
	if v > 0 {
		c.Add(float64(v))
	}
}

// Snapshot is the -telemetry flag's file schema: every metric series plus
// the held decision trace.
type Snapshot struct {
	Metrics   []MetricSnapshot `json:"metrics"`
	Decisions []DecisionEvent  `json:"decisions"`
}

// Snapshot captures the collector state.
func (c *Collector) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	return Snapshot{Metrics: c.Registry.Snapshot(), Decisions: c.Ring.Snapshot()}
}

// WriteSnapshotFile writes the snapshot as indented JSON to path.
func (c *Collector) WriteSnapshotFile(path string) error {
	data, err := json.MarshalIndent(c.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// latencySampleEvery is the Decide-latency sampling stride of session
// recorders: timing every decision would put two clock reads (~70 ns each on
// a typical VM) on a ~1 µs hot path and blow the ≤5% telemetry overhead
// budget on its own, so one decision in 64 is timed — still hundreds of
// samples per simulated dataset. Must be a power of two.
const latencySampleEvery = 64

// recorderBatch is how many events a SessionRecorder buffers between
// flushes; the ring lock and counter CAS traffic amortise over a batch.
const recorderBatch = 256

// histTally is a lock-free local histogram tally parallel to a shared
// Histogram's buckets, drained on flush.
type histTally struct {
	h      *Histogram
	counts []uint64
	sum    float64
	last   int // bucket of the previous observation, the scan hint
	seen   bool
}

func newHistTally(h *Histogram) histTally {
	return histTally{h: h, counts: make([]uint64, len(h.upper)+1)}
}

func (t *histTally) observe(v float64) {
	// Session observations cluster (buffer levels drift, bitrates hold a
	// rung), so first test the previous observation's bucket — two
	// comparisons instead of a scan from the bottom on the common path.
	i, u := t.last, t.h.upper
	switch {
	case i < len(u) && v <= u[i] && (i == 0 || v > u[i-1]):
		// cached bucket still holds v
	case i == len(u) && v > u[len(u)-1]:
		// still the +Inf bucket
	default:
		i = t.h.bucketIndex(v)
		t.last = i
	}
	t.counts[i]++
	t.sum += v
	t.seen = true
}

func (t *histTally) drain() {
	if !t.seen {
		return
	}
	t.h.addBatch(t.counts, t.sum)
	for i := range t.counts {
		t.counts[i] = 0
	}
	t.sum = 0
	t.seen = false
}

// SessionRecorder batches one session's decision telemetry: events buffer
// locally and flush to the shared ring/counters every recorderBatch
// decisions and at Finish. It is single-goroutine state (one per session,
// used by that session's worker only) and nil-safe, so the simulator calls
// it unconditionally.
type SessionRecorder struct {
	c       *Collector
	session int32
	pending []DecisionEvent

	decisions uint64
	waits     uint64
	seen      uint64 // decisions recorded, for latency sampling

	buffer  histTally
	bitrate histTally
	latency histTally
}

// StartSession returns a recorder labelling events with the session id, or
// nil when the collector is nil. Recorders are pooled: Finish returns them,
// so a recorder must not be used after Finish.
func (c *Collector) StartSession(session int) *SessionRecorder {
	if c == nil {
		return nil
	}
	if r, ok := c.recorders.Get().(*SessionRecorder); ok {
		r.session = int32(session)
		return r
	}
	return &SessionRecorder{
		c:       c,
		session: int32(session),
		pending: make([]DecisionEvent, 0, recorderBatch),
		buffer:  newHistTally(c.BufferLevel),
		bitrate: newHistTally(c.Bitrate),
		latency: newHistTally(c.Latency),
	}
}

// SampleLatency reports whether the caller should time the next Decide call
// (one in latencySampleEvery). Nil-safe.
func (r *SessionRecorder) SampleLatency() bool {
	return r != nil && r.seen&(latencySampleEvery-1) == 0
}

// RecordDecision buffers one event. The caller fills everything but Session.
// The event is copied; taking a pointer just keeps a ~100-byte struct off
// the argument path of every decision. Per-decision hot loops should prefer
// the Start/Commit pair, which fills the buffer slot in place and saves this
// copy.
func (r *SessionRecorder) RecordDecision(ev *DecisionEvent) {
	if r == nil {
		return
	}
	ev.Session = r.session
	r.pending = append(r.pending, *ev)
	r.tally(&r.pending[len(r.pending)-1])
}

// Start claims the next buffered event slot, cleared and labelled with the
// session, for the caller to fill in place — the allocation- and copy-free
// variant of RecordDecision. Every Start must be paired with exactly one
// Commit before the next Start (or Finish). Returns nil on a nil recorder;
// callers on the hot path already guard.
//
//soda:noalloc
func (r *SessionRecorder) Start() *DecisionEvent {
	if r == nil {
		return nil
	}
	n := len(r.pending)
	r.pending = r.pending[:n+1]
	p := &r.pending[n]
	*p = DecisionEvent{Session: r.session}
	return p
}

// Commit records the event claimed by the matching Start.
//
//soda:noalloc
func (r *SessionRecorder) Commit() {
	if r == nil {
		return
	}
	r.tally(&r.pending[len(r.pending)-1])
}

// tally folds the just-buffered event into the local counters and flushes a
// full batch. ev points into pending.
func (r *SessionRecorder) tally(ev *DecisionEvent) {
	r.seen++
	r.decisions++
	r.buffer.observe(float64(ev.Buffer))
	if ev.Rung < 0 {
		r.waits++
	} else {
		r.bitrate.observe(float64(ev.Bitrate))
	}
	if ev.Timed {
		r.latency.observe(float64(ev.SolveSeconds))
	}
	if len(r.pending) == cap(r.pending) {
		r.flush()
	}
}

func (r *SessionRecorder) flush() {
	if len(r.pending) > 0 {
		r.c.Ring.AppendBatch(r.pending)
		r.pending = r.pending[:0]
	}
	addCounter(r.c.Decisions, r.decisions)
	addCounter(r.c.Waits, r.waits)
	r.decisions, r.waits = 0, 0
	r.buffer.drain()
	r.bitrate.drain()
	r.latency.drain()
}

// Finish flushes buffered events, records the session's solver-work totals
// and aggregates, and recycles the recorder. Call exactly once when the
// session completes; the recorder must not be used afterwards.
func (r *SessionRecorder) Finish(stats SolverStats, segments int, rebuffer units.Seconds) {
	if r == nil {
		return
	}
	r.flush()
	r.c.RecordSolverStats(stats)
	r.c.RecordSession(segments, rebuffer)
	// flush left pending empty, the counters zero and the tallies drained;
	// reset the sampling phase so every session times its first decision.
	r.seen = 0
	r.c.recorders.Put(r)
}
