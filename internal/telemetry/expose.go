package telemetry

// Prometheus text exposition (format 0.0.4): the encoder renders a registry
// snapshot, the parser validates a scrape — the CI endpoint smoke test runs
// the parser against a live soda-server /metrics response.

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WriteExposition renders every registered metric in the Prometheus text
// format, families sorted by name. Snapshot orders the series of one family
// contiguously, so # HELP / # TYPE are due exactly when the family name
// changes between consecutive entries.
func (r *Registry) WriteExposition(w io.Writer) error {
	bw := bufio.NewWriter(w)
	lastFamily := ""
	for _, snap := range r.Snapshot() {
		if snap.Name != lastFamily {
			if snap.Help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", snap.Name, strings.ReplaceAll(snap.Help, "\n", " "))
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", snap.Name, snap.Kind)
			lastFamily = snap.Name
		}
		if snap.Kind == "histogram" {
			for _, b := range snap.Buckets {
				fmt.Fprintf(bw, "%s_bucket%s %d\n", snap.Name,
					formatLabels(snap.Labels, Label{Key: "le", Value: formatValue(b.UpperBound)}), b.Count)
			}
			fmt.Fprintf(bw, "%s_bucket%s %d\n", snap.Name,
				formatLabels(snap.Labels, Label{Key: "le", Value: "+Inf"}), snap.Count)
			fmt.Fprintf(bw, "%s_sum%s %s\n", snap.Name, formatLabels(snap.Labels), formatValue(snap.Sum))
			fmt.Fprintf(bw, "%s_count%s %d\n", snap.Name, formatLabels(snap.Labels), snap.Count)
			continue
		}
		fmt.Fprintf(bw, "%s%s %s\n", snap.Name, formatLabels(snap.Labels), formatValue(snap.Value))
	}
	return bw.Flush()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func formatLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `%s="%s"`, l.Key, escapeLabelValue(l.Value))
	}
	sb.WriteByte('}')
	return sb.String()
}

func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ExpositionFamily summarises one parsed metric family.
type ExpositionFamily struct {
	Type    string
	Samples int
}

// ParseExposition reads a Prometheus text-format payload and validates it:
// every sample line must parse, belong to a family declared by a preceding
// # TYPE line, and no family may be declared twice. It returns the parsed
// families keyed by name.
func ParseExposition(r io.Reader) (map[string]ExpositionFamily, error) {
	families := map[string]ExpositionFamily{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		switch {
		case strings.TrimSpace(line) == "":
			continue
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			name, typ := fields[2], fields[3]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
			}
			if _, dup := families[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate metric family %s", lineNo, name)
			}
			families[name] = ExpositionFamily{Type: typ}
		case strings.HasPrefix(line, "#"):
			continue // HELP and comments
		default:
			name, err := parseSampleLine(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			famName := sampleFamily(name, families)
			if famName == "" {
				return nil, fmt.Errorf("line %d: sample %s has no preceding # TYPE declaration", lineNo, name)
			}
			fam := families[famName]
			fam.Samples++
			families[famName] = fam
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return families, nil
}

// sampleFamily resolves a sample name to its declared family, accounting for
// the histogram/summary series suffixes.
func sampleFamily(name string, families map[string]ExpositionFamily) string {
	if _, ok := families[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if fam, ok := families[base]; ok && (fam.Type == "histogram" || fam.Type == "summary") {
			return base
		}
	}
	return ""
}

// parseSampleLine validates one `name{labels} value [timestamp]` line and
// returns the metric name.
func parseSampleLine(line string) (string, error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	var name string
	if brace >= 0 {
		name = rest[:brace]
		end := strings.IndexByte(rest, '}')
		if end < brace {
			return "", fmt.Errorf("unbalanced braces in %q", line)
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", fmt.Errorf("malformed sample line %q", line)
		}
		name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	if !nameOK(name) {
		return "", fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", fmt.Errorf("malformed sample line %q", line)
	}
	if _, err := parseSampleValue(fields[0]); err != nil {
		return "", fmt.Errorf("bad value in %q: %w", line, err)
	}
	return name, nil
}

func parseSampleValue(s string) (float64, error) {
	switch s {
	case "+Inf", "-Inf", "NaN":
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}

// MetricsHandler serves the registry in the Prometheus text format. Each
// onScrape hook runs before encoding, so pull-only sources (cache occupancy,
// arm aggregates) can refresh their gauges per scrape.
func MetricsHandler(reg *Registry, onScrape ...func()) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		for _, hook := range onScrape {
			hook()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WriteExposition(w); err != nil {
			// Headers are gone; the client sees a truncated body.
			return
		}
	})
}

// DecisionsHandler serves the trace ring as JSONL (newest ?limit= events,
// default the whole ring; ?session=N keeps one session's events so timeline
// reconstruction needs no client-side scan), for `curl /debug/decisions | jq`.
func DecisionsHandler(ring *Ring) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		limit := 0
		if s := r.URL.Query().Get("limit"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(w, "limit must be a non-negative integer", http.StatusBadRequest)
				return
			}
			limit = n
		}
		session := AllSessions
		if s := r.URL.Query().Get("session"); s != "" {
			n, err := strconv.ParseInt(s, 10, 32)
			if err != nil || n < 0 {
				http.Error(w, "session must be a non-negative int32", http.StatusBadRequest)
				return
			}
			session = int32(n)
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = ring.WriteJSONL(w, limit, session) // a failed write means the client hung up
	})
}
