package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/units"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("soda_things_total", "things", None)
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter value = %g, want 3.5", got)
	}
	g := reg.Gauge("soda_level_seconds", "level", USeconds)
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge value = %g, want 2.5", got)
	}
	// Get-or-create: same name returns the same instrument.
	if reg.Counter("soda_things_total", "things", None) != c {
		t.Fatal("re-registering the same counter returned a new instrument")
	}
}

func TestNegativeCounterAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative counter Add did not panic")
		}
	}()
	reg := NewRegistry()
	reg.Counter("soda_x_total", "", None).Add(-1)
}

func TestHistogramBucketing(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("soda_h_seconds", "h", USeconds, []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 106 {
		t.Fatalf("sum = %g, want 106", got)
	}
	snaps := reg.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("got %d snapshots, want 1", len(snaps))
	}
	// Cumulative: ≤1 → 2 (0.5 and 1), ≤2 → 3, ≤4 → 4; +Inf carries 5 via Count.
	wantCum := []uint64{2, 3, 4}
	for i, b := range snaps[0].Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket le=%g count = %d, want %d", b.UpperBound, b.Count, wantCum[i])
		}
	}
	if snaps[0].Count != 5 {
		t.Errorf("snapshot count = %d, want 5", snaps[0].Count)
	}
}

func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("soda_q_seconds", "q", USeconds, []float64{0.001, 0.01, 0.1, 1})

	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", got)
	}

	// 90 observations in the ≤0.001 bucket, 9 in ≤0.01, 1 in ≤0.1.
	for i := 0; i < 90; i++ {
		h.Observe(0.0005)
	}
	for i := 0; i < 9; i++ {
		h.Observe(0.005)
	}
	h.Observe(0.05)

	cases := []struct {
		q    float64
		want float64
	}{
		{0.50, 0.001}, // rank 50 of 100 → first bucket
		{0.90, 0.001}, // rank 90, exactly the first bucket's cumulative count
		{0.99, 0.01},  // rank 99 → second bucket
		{0.999, 0.1},  // rank 100 → third bucket
		{1, 0.1},      // max observed bucket
		{0, 0},        // out of range
		{1.5, 0},      // out of range
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}

	// +Inf observations saturate at the largest finite bound.
	h2 := reg.Histogram("soda_q2_seconds", "q2", USeconds, []float64{1, 2})
	h2.Observe(50)
	if got := h2.Quantile(0.99); got != 2 {
		t.Errorf("overflow-only Quantile(0.99) = %g, want 2 (largest finite bound)", got)
	}
}

// TestHistogramQuantileEstimatorTable pins the documented estimator contract
// — conservative bucket-upper-bound, never interpolating — on the degenerate
// layouts the doc comment calls out: empty histograms, a single-bucket
// layout, and observations that land only in the implicit +Inf bucket.
func TestHistogramQuantileEstimatorTable(t *testing.T) {
	reg := NewRegistry()
	cases := []struct {
		name    string
		buckets []float64
		obs     []float64
		q       float64
		want    float64
	}{
		{"empty histogram", []float64{1, 2}, nil, 0.5, 0},
		{"empty histogram p99", []float64{1, 2}, nil, 0.99, 0},
		{"single bucket, value inside", []float64{10}, []float64{0.25}, 0.5, 10},
		{"single bucket, p100", []float64{10}, []float64{0.25, 9.9}, 1, 10},
		{"single bucket, overflow only", []float64{10}, []float64{11}, 0.5, 10},
		{"overflow bucket only", []float64{1, 2, 4}, []float64{100, 200}, 0.99, 4},
		{"mixed finite and overflow", []float64{1, 2}, []float64{0.5, 0.5, 0.5, 99}, 0.75, 1},
		{"mixed, quantile in overflow", []float64{1, 2}, []float64{0.5, 99}, 1, 2},
	}
	for i, tc := range cases {
		h := reg.Histogram(fmt.Sprintf("soda_qt%d_seconds", i), tc.name, USeconds, tc.buckets)
		for _, v := range tc.obs {
			h.Observe(v)
		}
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("%s: Quantile(%g) = %g, want %g", tc.name, tc.q, got, tc.want)
		}
	}
}

func TestRegistryValidationPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(*Registry)
	}{
		{"counter without _total", func(r *Registry) { r.Counter("soda_things", "", None) }},
		{"unit counter without suffix", func(r *Registry) { r.Counter("soda_stall_total", "", USeconds) }},
		{"unit gauge without suffix", func(r *Registry) { r.Gauge("soda_buffer", "", USeconds) }},
		{"bad name", func(r *Registry) { r.Gauge("9bad-name", "", None) }},
		{"bad label key", func(r *Registry) { r.Gauge("soda_g", "", None, Label{Key: "bad-key", Value: "v"}) }},
		{"empty buckets", func(r *Registry) { r.Histogram("soda_h_seconds", "", USeconds, nil) }},
		{"unsorted buckets", func(r *Registry) { r.Histogram("soda_h_seconds", "", USeconds, []float64{2, 1}) }},
		{"kind clash", func(r *Registry) {
			r.Counter("soda_x_total", "", None)
			r.Gauge("soda_x_total", "", None)
		}},
		{"unit clash", func(r *Registry) {
			r.Gauge("soda_y_seconds", "", USeconds)
			r.Gauge("soda_y_seconds", "", None)
		}},
		{"bucket clash", func(r *Registry) {
			r.Histogram("soda_z_seconds", "", USeconds, []float64{1, 2})
			r.Histogram("soda_z_seconds", "", USeconds, []float64{1, 3})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tc.name)
				}
			}()
			tc.f(NewRegistry())
		})
	}
}

func TestCheckName(t *testing.T) {
	cases := []struct {
		name    string
		counter bool
		unit    Unit
		ok      bool
	}{
		{"soda_decisions_total", true, None, true},
		{"soda_rebuffer_seconds_total", true, USeconds, true},
		{"soda_buffer_level_seconds", false, USeconds, true},
		{"soda_rate_mbps", false, UMbps, true},
		{"soda_decisions", true, None, false},          // counter lacks _total
		{"soda_rebuffer_total", true, USeconds, false}, // unit suffix missing
		{"soda_buffer_level", false, USeconds, false},  // unit suffix missing
		{"soda_total_seconds", true, USeconds, false},  // suffixes in wrong order
		{"9leading_digit_total", true, None, false},    // bad identifier
		{"has-dash_total", true, None, false},          // bad identifier
	}
	for _, tc := range cases {
		err := CheckName(tc.name, tc.counter, tc.unit)
		if (err == nil) != tc.ok {
			t.Errorf("CheckName(%q, counter=%v, unit=%q) err=%v, want ok=%v",
				tc.name, tc.counter, tc.unit, err, tc.ok)
		}
	}
}

func TestConcurrentUpdatesAndSnapshot(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("soda_n_total", "", None)
	h := reg.Histogram("soda_v_seconds", "", USeconds, []float64{1, 10})
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				h.Observe(0.5)
				reg.Snapshot() // racing snapshots must stay consistent
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*each {
		t.Fatalf("counter = %g, want %d", got, workers*each)
	}
	if got := h.Count(); got != workers*each {
		t.Fatalf("histogram count = %d, want %d", got, workers*each)
	}
}

func TestExpositionRoundTrip(t *testing.T) {
	c := NewCollector(nil, 64)
	rec := c.StartSession(0)
	for i := 0; i < 40; i++ {
		ev := DecisionEvent{
			Segment: int32(i), Rung: int16(i % 5), PrevRung: int16((i + 4) % 5),
			Buffer:     units.Seconds(float64(i%20) + 0.5),
			Throughput: units.Mbps(8),
			Bitrate:    units.Mbps(4),
			Solves:     1, Nodes: 12,
		}
		if rec.SampleLatency() {
			ev.Timed = true
			ev.SolveSeconds = 1e-6
		}
		rec.RecordDecision(&ev)
	}
	rec.RecordDecision(&DecisionEvent{Segment: 40, Rung: -1, PrevRung: 4, Buffer: units.Seconds(0.1), WaitSeconds: units.Seconds(0.5)})
	rec.Finish(SolverStats{Solves: 41, Nodes: 500, MemoLookups: 41, MemoHits: 3, SharedLookups: 41, SharedHits: 7},
		40, units.Seconds(1.25))

	var buf bytes.Buffer
	if err := c.Registry.WriteExposition(&buf); err != nil {
		t.Fatalf("WriteExposition: %v", err)
	}
	text := buf.String()
	fams, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseExposition rejected our own output: %v\n%s", err, text)
	}
	want := map[string]string{
		"soda_decisions_total":         "counter",
		"soda_wait_decisions_total":    "counter",
		"soda_sessions_total":          "counter",
		"soda_segments_total":          "counter",
		"soda_rebuffer_seconds_total":  "counter",
		"soda_solver_solves_total":     "counter",
		"soda_solver_nodes_total":      "counter",
		"soda_shared_cache_hits_total": "counter",
		"soda_buffer_level_seconds":    "histogram",
		"soda_decided_bitrate_mbps":    "histogram",
		"soda_decide_latency_seconds":  "histogram",
	}
	for name, typ := range want {
		fam, ok := fams[name]
		if !ok {
			t.Errorf("exposition missing family %s", name)
			continue
		}
		if fam.Type != typ {
			t.Errorf("family %s has type %s, want %s", name, fam.Type, typ)
		}
		if fam.Samples == 0 {
			t.Errorf("family %s has no samples", name)
		}
	}
	// Spot-check values survived the trip through the recorder's batching.
	if got := c.Decisions.Value(); got != 41 {
		t.Errorf("decisions = %g, want 41", got)
	}
	if got := c.Waits.Value(); got != 1 {
		t.Errorf("waits = %g, want 1", got)
	}
	if got := c.BufferLevel.Count(); got != 41 {
		t.Errorf("buffer observations = %d, want 41", got)
	}
	if got := c.Bitrate.Count(); got != 40 {
		t.Errorf("bitrate observations = %d, want 40", got)
	}
	if got := c.Nodes.Value(); got != 500 {
		t.Errorf("solver nodes = %g, want 500", got)
	}
	if got := c.Ring.Total(); got != 41 {
		t.Errorf("ring total = %d, want 41", got)
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	cases := []struct{ name, payload string }{
		{"duplicate family", "# TYPE a counter\n# TYPE a counter\n"},
		{"unknown type", "# TYPE a widget\n"},
		{"undeclared sample", "a_total 1\n"},
		{"bad value", "# TYPE a counter\na bogus\n"},
		{"bad name", "# TYPE a counter\n9a 1\n"},
		{"malformed TYPE line", "# TYPE a\n"},
		{"TYPE with extra tokens", "# TYPE a counter extra\n"},
		{"unbalanced braces", "# TYPE a counter\na{x=\"1\" 1\n"},
		{"sample missing value", "# TYPE a counter\na\n"},
		{"sample with extra fields", "# TYPE a counter\na 1 2 3\n"},
		{"undeclared histogram series", "# TYPE a counter\nb_bucket{le=\"1\"} 1\n"},
	}
	for _, tc := range cases {
		if _, err := ParseExposition(strings.NewReader(tc.payload)); err == nil {
			t.Errorf("%s: ParseExposition accepted %q", tc.name, tc.payload)
		}
	}
}

func TestRingWrapAndSnapshot(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Append(DecisionEvent{Segment: int32(i)})
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := r.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	snap := r.Snapshot()
	for i, ev := range snap {
		if want := int32(6 + i); ev.Segment != want {
			t.Errorf("snap[%d].Segment = %d, want %d (oldest first)", i, ev.Segment, want)
		}
	}
}

func TestRingJSONL(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 5; i++ {
		r.Append(DecisionEvent{Segment: int32(i), Rung: int16(i % 3), Buffer: units.Seconds(i)})
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf, 3, AllSessions); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	sc := bufio.NewScanner(&buf)
	var segs []int32
	for sc.Scan() {
		var ev DecisionEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line does not parse as DecisionEvent: %v", err)
		}
		segs = append(segs, ev.Segment)
	}
	if len(segs) != 3 || segs[0] != 2 || segs[2] != 4 {
		t.Fatalf("limited JSONL segments = %v, want [2 3 4]", segs)
	}
}

func TestRingJSONLSessionFilter(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 12; i++ {
		r.Append(DecisionEvent{Session: int32(i % 3), Segment: int32(i)})
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf, 0, 1); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	sc := bufio.NewScanner(&buf)
	var segs []int32
	for sc.Scan() {
		var ev DecisionEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line does not parse: %v", err)
		}
		if ev.Session != 1 {
			t.Fatalf("filtered output leaked session %d", ev.Session)
		}
		segs = append(segs, ev.Segment)
	}
	if len(segs) != 4 || segs[0] != 1 || segs[3] != 10 {
		t.Fatalf("session-1 segments = %v, want [1 4 7 10]", segs)
	}
	// The limit applies after the session filter: newest K of that session.
	buf.Reset()
	if err := r.WriteJSONL(&buf, 2, 1); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("limit-after-filter produced %d lines, want 2", len(lines))
	}
	var first DecisionEvent
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil || first.Segment != 7 {
		t.Fatalf("newest-2-of-session-1 starts at segment %d (err %v), want 7", first.Segment, err)
	}
}

// errAfterWriter fails every write after the first n bytes — the shape of a
// client hanging up mid-stream.
type errAfterWriter struct {
	n       int
	written int
}

func (w *errAfterWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		return 0, errors.New("client hung up")
	}
	w.written += len(p)
	return len(p), nil
}

func TestRingJSONLClientHangup(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 8; i++ {
		r.Append(DecisionEvent{Segment: int32(i)})
	}
	err := r.WriteJSONL(&errAfterWriter{n: 50}, 0, AllSessions)
	if err == nil {
		t.Fatal("WriteJSONL swallowed the write error")
	}
}

// TestRecorderMatchesDirect proves the SessionRecorder's batched flush path
// is observationally identical to calling Collector.RecordDecision directly.
func TestRecorderMatchesDirect(t *testing.T) {
	events := make([]DecisionEvent, 700) // crosses the flush threshold twice
	for i := range events {
		ev := DecisionEvent{
			Segment: int32(i), Rung: int16(i % 6), PrevRung: int16((i + 5) % 6),
			Buffer:     units.Seconds(math.Mod(float64(i)*0.37, 22)),
			Throughput: units.Mbps(3 + float64(i%9)),
			Bitrate:    units.Mbps(0.5 * float64(1+i%6)),
		}
		if i%7 == 0 {
			ev.Rung = -1
			ev.Bitrate = 0
			ev.WaitSeconds = 0.5
		}
		if i%16 == 0 {
			ev.Timed = true
			ev.SolveSeconds = units.Seconds(1e-6 * float64(1+i%40))
		}
		events[i] = ev
	}

	direct := NewCollector(nil, 2048)
	for _, ev := range events {
		direct.RecordDecision(ev)
	}
	direct.RecordSolverStats(SolverStats{Solves: 700, Nodes: 9000})
	direct.RecordSession(600, units.Seconds(2.5))

	batched := NewCollector(nil, 2048)
	rec := batched.StartSession(0)
	for _, ev := range events {
		rec.RecordDecision(&ev)
	}
	rec.Finish(SolverStats{Solves: 700, Nodes: 9000}, 600, units.Seconds(2.5))

	a, b := direct.Snapshot(), batched.Snapshot()
	if len(a.Metrics) != len(b.Metrics) {
		t.Fatalf("metric counts differ: %d vs %d", len(a.Metrics), len(b.Metrics))
	}
	for i := range a.Metrics {
		ma, mb := a.Metrics[i], b.Metrics[i]
		// Histogram sums accumulate in a different order on the batched path,
		// so compare them within float tolerance and everything else exactly.
		sa, sb := ma.Sum, mb.Sum
		ma.Sum, mb.Sum = 0, 0
		ja, _ := json.Marshal(ma)
		jb, _ := json.Marshal(mb)
		if !bytes.Equal(ja, jb) {
			t.Fatalf("metric %s diverged:\ndirect:  %s\nbatched: %s", ma.Name, ja, jb)
		}
		if math.Abs(sa-sb) > 1e-9*math.Max(1, math.Abs(sa)) {
			t.Fatalf("metric %s sum diverged beyond float tolerance: %g vs %g", ma.Name, sa, sb)
		}
	}
	if len(a.Decisions) != len(b.Decisions) {
		t.Fatalf("ring lengths differ: %d vs %d", len(a.Decisions), len(b.Decisions))
	}
	for i := range a.Decisions {
		if a.Decisions[i] != b.Decisions[i] {
			t.Fatalf("ring event %d differs: %+v vs %+v", i, a.Decisions[i], b.Decisions[i])
		}
	}
}

func TestNilCollectorAndRecorderAreSafe(t *testing.T) {
	var c *Collector
	c.RecordDecision(DecisionEvent{})
	c.RecordSolverStats(SolverStats{Solves: 1})
	c.RecordSession(10, units.Seconds(1))
	rec := c.StartSession(3)
	if rec != nil {
		t.Fatal("nil collector returned a non-nil recorder")
	}
	if rec.SampleLatency() {
		t.Fatal("nil recorder wants latency samples")
	}
	rec.RecordDecision(&DecisionEvent{})
	rec.Finish(SolverStats{}, 0, units.Seconds(0))
	if snap := c.Snapshot(); len(snap.Metrics) != 0 || len(snap.Decisions) != 0 {
		t.Fatal("nil collector snapshot not empty")
	}
}

// TestMetricNamesCarryUnitSuffix is the typed-wire-schemas check: every
// metric registered by the standard collector whose values originate from a
// units.* scalar must declare that unit and carry the matching name suffix.
// CheckName enforces the suffix at registration; this test pins the
// declarations themselves so a metric can't silently drop its unit.
func TestMetricNamesCarryUnitSuffix(t *testing.T) {
	c := NewCollector(nil, 16)
	wantUnits := map[string]Unit{
		// units.Seconds sources
		"soda_buffer_level_seconds":   USeconds,
		"soda_decide_latency_seconds": USeconds,
		"soda_rebuffer_seconds_total": USeconds,
		// units.Mbps sources
		"soda_decided_bitrate_mbps": UMbps,
	}
	seen := map[string]bool{}
	for _, snap := range c.Registry.Snapshot() {
		seen[snap.Name] = true
		if want, ok := wantUnits[snap.Name]; ok && Unit(snap.Unit) != want {
			t.Errorf("metric %s declares unit %q, want %q", snap.Name, snap.Unit, want)
		}
		if err := CheckName(snap.Name, snap.Kind == "counter", snap.Unit); err != nil {
			t.Errorf("registered metric violates the naming rule: %v", err)
		}
		// No unit-bearing token may hide in an undeclared metric's name.
		if snap.Unit == None {
			base := strings.TrimSuffix(snap.Name, "_total")
			for _, u := range []Unit{USeconds, UMinutes, UMbps, UMegabits} {
				if strings.HasSuffix(base, "_"+string(u)) {
					t.Errorf("metric %s ends in _%s but declares no unit", snap.Name, u)
				}
			}
		}
	}
	for name := range wantUnits {
		if !seen[name] {
			t.Errorf("expected collector metric %s not registered", name)
		}
	}
}

func TestWriteSnapshotFile(t *testing.T) {
	c := NewCollector(nil, 16)
	c.RecordDecision(DecisionEvent{Segment: 1, Rung: 2, Buffer: units.Seconds(3), Bitrate: units.Mbps(4)})
	c.RecordSession(1, units.Seconds(0.5))
	path := filepath.Join(t.TempDir(), "telemetry.json")
	if err := c.WriteSnapshotFile(path); err != nil {
		t.Fatalf("WriteSnapshotFile: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot file does not parse: %v", err)
	}
	if len(snap.Decisions) != 1 || snap.Decisions[0].Segment != 1 {
		t.Fatalf("snapshot decisions = %+v, want the one recorded event", snap.Decisions)
	}
	if len(snap.Metrics) == 0 {
		t.Fatal("snapshot has no metrics")
	}
}

func TestMetricsAndDecisionsHandlers(t *testing.T) {
	c := NewCollector(nil, 16)
	c.RecordDecision(DecisionEvent{Segment: 0, Rung: 1, Buffer: units.Seconds(2), Bitrate: units.Mbps(1)})
	refreshed := false
	h := MetricsHandler(c.Registry, func() { refreshed = true })
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/metrics", nil))
	if !refreshed {
		t.Fatal("onScrape hook did not run")
	}
	if ct := rw.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if _, err := ParseExposition(rw.Body); err != nil {
		t.Fatalf("/metrics body does not parse: %v", err)
	}

	dh := DecisionsHandler(c.Ring)
	rw = httptest.NewRecorder()
	dh.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/decisions?limit=1", nil))
	if ct := rw.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var ev DecisionEvent
	if err := json.Unmarshal(bytes.TrimSpace(rw.Body.Bytes()), &ev); err != nil {
		t.Fatalf("decision line does not parse: %v", err)
	}
	rw = httptest.NewRecorder()
	dh.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/decisions?limit=-2", nil))
	if rw.Code != 400 {
		t.Fatalf("negative limit returned %d, want 400", rw.Code)
	}
	rw = httptest.NewRecorder()
	dh.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/decisions?limit=abc", nil))
	if rw.Code != 400 {
		t.Fatalf("non-numeric limit returned %d, want 400", rw.Code)
	}
	rw = httptest.NewRecorder()
	dh.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/decisions?session=-3", nil))
	if rw.Code != 400 {
		t.Fatalf("negative session returned %d, want 400", rw.Code)
	}
	rw = httptest.NewRecorder()
	dh.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/decisions?session=bogus", nil))
	if rw.Code != 400 {
		t.Fatalf("non-numeric session returned %d, want 400", rw.Code)
	}
	// The filter path: only the requested session's events come back.
	c.RecordDecision(DecisionEvent{Session: 7, Segment: 9})
	rw = httptest.NewRecorder()
	dh.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/decisions?session=7", nil))
	var filtered DecisionEvent
	if err := json.Unmarshal(bytes.TrimSpace(rw.Body.Bytes()), &filtered); err != nil {
		t.Fatalf("filtered decision line does not parse: %v", err)
	}
	if filtered.Session != 7 || filtered.Segment != 9 {
		t.Fatalf("?session=7 returned %+v", filtered)
	}
}
