package dash

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/video"
)

// TestMPDRoundTripLossless pins the wire-boundary contract for the DASH
// manifest: a typed ladder pushed through the MPD's integer wire fields
// (bandwidth in b/s, segment duration in timescale ticks) and parsed back
// must reproduce the exact unit values. The repository's ladders are all
// millisecond/bit-exact, so the quantization must be invisible.
func TestMPDRoundTripLossless(t *testing.T) {
	ladders := map[string]video.Ladder{
		"youtube4k": video.YouTube4K(),
		"mobile":    video.Mobile(),
		"prototype": video.Prototype(),
		"prime":     video.PrimeVideo(),
	}
	for name, ladder := range ladders {
		mpd := FromLadder(ladder, 10*time.Minute)
		var buf bytes.Buffer
		if err := mpd.Write(&buf); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		got, err := back.Ladder()
		if err != nil {
			t.Fatalf("%s: ladder: %v", name, err)
		}
		if got.Len() != ladder.Len() {
			t.Fatalf("%s: rungs = %d, want %d", name, got.Len(), ladder.Len())
		}
		for i := range ladder.Rungs {
			if got.Mbps(i) != ladder.Mbps(i) {
				t.Errorf("%s: rung %d = %v, want %v (exact)", name, i, got.Mbps(i), ladder.Mbps(i))
			}
		}
		if got.SegmentSeconds != ladder.SegmentSeconds {
			t.Errorf("%s: segment duration = %v, want %v (exact)", name, got.SegmentSeconds, ladder.SegmentSeconds)
		}
	}
}
