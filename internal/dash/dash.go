// Package dash implements a minimal MPEG-DASH Media Presentation Description
// (MPD) reader/writer, the interoperability surface the paper's segment-based
// schema targets (§5.1: "a video must be downloaded segment by segment
// according to the MPEG-DASH standard", with dash.js as the reference
// player).
//
// The subset covers what an ABR controller needs: one period with one video
// adaptation set, a fixed segment duration (SegmentTemplate with
// duration/timescale), and one Representation per bitrate rung. Round trips
// through this package preserve that information exactly; everything else in
// a real MPD is out of scope.
//
//soda:wire-boundary
package dash

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/units"
	"repro/internal/video"
)

// MPD is the root element of a media presentation description.
type MPD struct {
	XMLName               xml.Name `xml:"MPD"`
	Xmlns                 string   `xml:"xmlns,attr,omitempty"`
	Type                  string   `xml:"type,attr"`
	MediaPresentationDur  string   `xml:"mediaPresentationDuration,attr,omitempty"`
	MinimumUpdatePeriod   string   `xml:"minimumUpdatePeriod,attr,omitempty"`
	SuggestedPresentation string   `xml:"suggestedPresentationDelay,attr,omitempty"`
	Periods               []Period `xml:"Period"`
}

// Period is one content period.
type Period struct {
	ID             string          `xml:"id,attr,omitempty"`
	AdaptationSets []AdaptationSet `xml:"AdaptationSet"`
}

// AdaptationSet groups interchangeable representations.
type AdaptationSet struct {
	MimeType        string           `xml:"mimeType,attr,omitempty"`
	ContentType     string           `xml:"contentType,attr,omitempty"`
	SegmentTemplate *SegmentTemplate `xml:"SegmentTemplate,omitempty"`
	Representations []Representation `xml:"Representation"`
}

// SegmentTemplate carries the fixed segment timing.
type SegmentTemplate struct {
	Media     string `xml:"media,attr,omitempty"`
	Init      string `xml:"initialization,attr,omitempty"`
	Duration  int    `xml:"duration,attr"`
	Timescale int    `xml:"timescale,attr"`
}

// Representation is one encoding of the content.
type Representation struct {
	ID        string `xml:"id,attr"`
	Bandwidth int    `xml:"bandwidth,attr"` // bits per second
	Width     int    `xml:"width,attr,omitempty"`
	Height    int    `xml:"height,attr,omitempty"`
	Codecs    string `xml:"codecs,attr,omitempty"`
}

// dashNamespace is the MPD schema namespace.
const dashNamespace = "urn:mpeg:dash:schema:mpd:2011"

// FromLadder builds a live-profile MPD advertising the ladder.
// mediaDuration <= 0 marks the presentation dynamic (live).
func FromLadder(ladder video.Ladder, mediaDuration time.Duration) *MPD {
	st := &SegmentTemplate{
		Media:     "segment-$Number$-$RepresentationID$.m4s",
		Init:      "init-$RepresentationID$.mp4",
		Timescale: 1000,
		Duration:  int(ladder.SegmentSeconds.Milliseconds()),
	}
	set := AdaptationSet{
		MimeType:        "video/mp4",
		ContentType:     "video",
		SegmentTemplate: st,
	}
	for i, r := range ladder.Rungs {
		set.Representations = append(set.Representations, Representation{
			ID:        fmt.Sprintf("v%d", i),
			Bandwidth: int(r.Mbps.Bps()),
			Width:     r.Width,
			Height:    r.Height,
		})
	}
	mpd := &MPD{
		Xmlns:   dashNamespace,
		Periods: []Period{{ID: "p0", AdaptationSets: []AdaptationSet{set}}},
	}
	if mediaDuration > 0 {
		mpd.Type = "static"
		mpd.MediaPresentationDur = isoDuration(mediaDuration)
	} else {
		mpd.Type = "dynamic"
		mpd.MinimumUpdatePeriod = isoDuration(time.Duration(float64(ladder.SegmentSeconds) * float64(time.Second)))
	}
	return mpd
}

// isoDuration formats a duration as an ISO-8601 duration (PT#S form).
func isoDuration(d time.Duration) string {
	return fmt.Sprintf("PT%gS", d.Seconds())
}

// Ladder extracts the bitrate ladder from the MPD's first video adaptation
// set. Representations are sorted by bandwidth; duplicate bandwidths are an
// error (the ladder must be strictly ascending).
func (m *MPD) Ladder() (video.Ladder, error) {
	set, err := m.videoSet()
	if err != nil {
		return video.Ladder{}, err
	}
	if set.SegmentTemplate == nil {
		return video.Ladder{}, fmt.Errorf("dash: adaptation set has no SegmentTemplate")
	}
	st := set.SegmentTemplate
	if st.Timescale <= 0 || st.Duration <= 0 {
		return video.Ladder{}, fmt.Errorf("dash: invalid segment timing %d/%d", st.Duration, st.Timescale)
	}
	segSeconds := float64(st.Duration) / float64(st.Timescale)

	reps := append([]Representation(nil), set.Representations...)
	sort.Slice(reps, func(i, j int) bool { return reps[i].Bandwidth < reps[j].Bandwidth })
	mbps := make([]float64, 0, len(reps))
	prev := -1
	for _, r := range reps {
		if r.Bandwidth <= 0 {
			return video.Ladder{}, fmt.Errorf("dash: representation %q has bandwidth %d", r.ID, r.Bandwidth)
		}
		if r.Bandwidth == prev {
			return video.Ladder{}, fmt.Errorf("dash: duplicate bandwidth %d", r.Bandwidth)
		}
		prev = r.Bandwidth
		mbps = append(mbps, float64(r.Bandwidth)/1e6)
	}
	if len(mbps) == 0 {
		return video.Ladder{}, fmt.Errorf("dash: no representations")
	}
	ladder := video.NewLadder(mbps, units.Seconds(segSeconds))
	for i, r := range reps {
		ladder.Rungs[i].Width, ladder.Rungs[i].Height = r.Width, r.Height
	}
	return ladder, nil
}

func (m *MPD) videoSet() (*AdaptationSet, error) {
	if len(m.Periods) == 0 {
		return nil, fmt.Errorf("dash: MPD has no periods")
	}
	for pi := range m.Periods {
		for si := range m.Periods[pi].AdaptationSets {
			set := &m.Periods[pi].AdaptationSets[si]
			if set.ContentType == "video" || set.MimeType == "video/mp4" || set.ContentType == "" {
				return set, nil
			}
		}
	}
	return nil, fmt.Errorf("dash: no video adaptation set")
}

// Live reports whether the presentation is dynamic (live).
func (m *MPD) Live() bool { return m.Type == "dynamic" }

// Write serializes the MPD as indented XML with the standard header.
func (m *MPD) Write(w io.Writer) error {
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(m); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// Read parses an MPD document.
func Read(r io.Reader) (*MPD, error) {
	var m MPD
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("dash: %w", err)
	}
	return &m, nil
}
