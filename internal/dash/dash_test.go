package dash

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/video"
)

func TestRoundTripStatic(t *testing.T) {
	ladder := video.YouTube4K()
	mpd := FromLadder(ladder, 10*time.Minute)
	if mpd.Type != "static" || mpd.Live() {
		t.Errorf("type = %q", mpd.Type)
	}
	if mpd.MediaPresentationDur != "PT600S" {
		t.Errorf("duration = %q", mpd.MediaPresentationDur)
	}

	var buf bytes.Buffer
	if err := mpd.Write(&buf); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	if !strings.Contains(doc, `bandwidth="60000000"`) {
		t.Errorf("missing top-rung bandwidth in:\n%s", doc)
	}
	if !strings.Contains(doc, dashNamespace) {
		t.Error("missing namespace")
	}

	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Ladder()
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ladder.Len() {
		t.Fatalf("rungs = %d", got.Len())
	}
	for i := range ladder.Rungs {
		if math.Abs(float64(got.Mbps(i)-ladder.Mbps(i))) > 1e-9 {
			t.Errorf("rung %d = %v, want %v", i, got.Mbps(i), ladder.Mbps(i))
		}
		if got.Rungs[i].Width != ladder.Rungs[i].Width {
			t.Errorf("rung %d width = %d", i, got.Rungs[i].Width)
		}
	}
	if got.SegmentSeconds != ladder.SegmentSeconds {
		t.Errorf("segment duration = %v", got.SegmentSeconds)
	}
}

func TestLiveMPD(t *testing.T) {
	mpd := FromLadder(video.PrimeVideo(), 0)
	if !mpd.Live() {
		t.Error("live MPD not dynamic")
	}
	if mpd.MinimumUpdatePeriod != "PT2S" {
		t.Errorf("update period = %q", mpd.MinimumUpdatePeriod)
	}
	if _, err := mpd.Ladder(); err != nil {
		t.Fatal(err)
	}
}

func TestLadderSortsRepresentations(t *testing.T) {
	mpd := FromLadder(video.Mobile(), time.Minute)
	reps := mpd.Periods[0].AdaptationSets[0].Representations
	// Shuffle the order; Ladder must sort by bandwidth.
	reps[0], reps[3] = reps[3], reps[0]
	ladder, err := mpd.Ladder()
	if err != nil {
		t.Fatal(err)
	}
	if ladder.Min() != 1.5 || ladder.Max() != 12 {
		t.Errorf("ladder = %v", ladder.Bitrates())
	}
}

func TestLadderErrors(t *testing.T) {
	cases := map[string]func(*MPD){
		"no periods": func(m *MPD) { m.Periods = nil },
		"no template": func(m *MPD) {
			m.Periods[0].AdaptationSets[0].SegmentTemplate = nil
		},
		"bad timing": func(m *MPD) {
			m.Periods[0].AdaptationSets[0].SegmentTemplate.Timescale = 0
		},
		"no representations": func(m *MPD) {
			m.Periods[0].AdaptationSets[0].Representations = nil
		},
		"zero bandwidth": func(m *MPD) {
			m.Periods[0].AdaptationSets[0].Representations[0].Bandwidth = 0
		},
		"duplicate bandwidth": func(m *MPD) {
			reps := m.Periods[0].AdaptationSets[0].Representations
			reps[1].Bandwidth = reps[0].Bandwidth
		},
	}
	for name, mutate := range cases {
		mpd := FromLadder(video.Mobile(), time.Minute)
		mutate(mpd)
		if _, err := mpd.Ladder(); err == nil {
			t.Errorf("%s: error not reported", name)
		}
	}
}

func TestReadRejectsJunk(t *testing.T) {
	if _, err := Read(strings.NewReader("this is not xml <")); err == nil {
		t.Error("junk accepted")
	}
}

func TestReadRealWorldFlavour(t *testing.T) {
	// A hand-written MPD in the style dash.js consumes.
	const doc = `<?xml version="1.0"?>
<MPD xmlns="urn:mpeg:dash:schema:mpd:2011" type="static" mediaPresentationDuration="PT120S">
  <Period id="1">
    <AdaptationSet mimeType="video/mp4" contentType="video">
      <SegmentTemplate media="$Number$.m4s" duration="4000" timescale="1000"/>
      <Representation id="low" bandwidth="450000" width="640" height="360"/>
      <Representation id="high" bandwidth="1800000" width="1280" height="720"/>
    </AdaptationSet>
  </Period>
</MPD>`
	mpd, err := Read(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	ladder, err := mpd.Ladder()
	if err != nil {
		t.Fatal(err)
	}
	if ladder.Len() != 2 || ladder.SegmentSeconds != 4 {
		t.Fatalf("ladder = %+v", ladder)
	}
	if ladder.Min() != 0.45 || ladder.Max() != 1.8 {
		t.Errorf("bitrates = %v", ladder.Bitrates())
	}
	if ladder.Rungs[1].Height != 720 {
		t.Errorf("resolution lost: %+v", ladder.Rungs[1])
	}
}
