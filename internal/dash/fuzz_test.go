package dash

import (
	"strings"
	"testing"
	"time"

	"repro/internal/video"
)

// FuzzRead checks MPD parsing never panics and that parsed documents either
// fail Ladder() cleanly or yield a valid ladder.
func FuzzRead(f *testing.F) {
	var sb strings.Builder
	FromLadder(video.Prototype(), time.Minute).Write(&sb)
	f.Add(sb.String())
	f.Add("<MPD></MPD>")
	f.Add("not xml")
	f.Fuzz(func(t *testing.T, data string) {
		m, err := Read(strings.NewReader(data))
		if err != nil {
			return
		}
		ladder, err := m.Ladder()
		if err != nil {
			return
		}
		if ladder.Len() == 0 || ladder.SegmentSeconds <= 0 {
			t.Fatalf("accepted ladder invalid: %+v", ladder)
		}
		prev := 0.0
		for _, r := range ladder.Rungs {
			if float64(r.Mbps) <= prev {
				t.Fatalf("ladder not ascending: %v", ladder.Bitrates())
			}
			prev = float64(r.Mbps)
		}
	})
}
