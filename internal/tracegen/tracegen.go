// Package tracegen generates the synthetic network-trace datasets used in
// place of the paper's three public datasets (Puffer, 5G, 4G; §6.1.1).
//
// The paper characterizes each dataset by its mean throughput and relative
// standard deviation (Fig. 9: Puffer 57.1 Mb/s / 47.2%, 5G 31.3 Mb/s / 133%,
// 4G 13.0 Mb/s / 80.6%) and stresses that volatility is what differentiates
// controllers (Fig. 10 buckets Puffer sessions into RSD quartiles). The
// generator therefore reproduces those two moments *exactly in expectation*:
//
//   - a continuous-time Markov regime process (good/degraded/bad link states)
//     provides the burstiness and regime shifts that stress ABR controllers;
//   - within a regime, bandwidth is the regime mean times a log-normal AR(1)
//     multiplier with unit mean, providing second-scale jitter;
//   - regime means are rescaled so the stationary mean matches the target,
//     and the log-normal sigma is solved analytically so the marginal RSD
//     matches the target.
//
// Every generator call is deterministic for a given (profile, seed).
package tracegen

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/trace"
	"repro/internal/units"
)

// State is one link regime with a relative mean bandwidth (rescaled during
// calibration so the stationary mean hits the profile target).
type State struct {
	RelMean float64
}

// Profile describes one synthetic dataset.
type Profile struct {
	Name           string
	TargetMeanMbps float64
	TargetRSD      float64
	States         []State
	// Transition is the per-step regime transition matrix (rows sum to 1).
	Transition [][]float64
	// StepSeconds is the bandwidth sample granularity (typically 1 s).
	StepSeconds float64
	// AR is the log-space AR(1) coefficient for within-regime jitter,
	// in [0, 1). Higher values give smoother second-scale variation.
	AR float64
	// RampRate controls how fast the effective regime mean moves toward a
	// newly entered regime's mean, per step, in (0, 1]. Real links degrade
	// and recover over a few seconds rather than discontinuously; 0.35 gives
	// a ~3 s transition. Zero defaults to 0.35.
	RampRate float64
}

// Puffer returns the profile calibrated to the paper's Puffer dataset:
// mean 57.1 Mb/s, RSD 47.2% — comparatively good, stable broadband links.
func Puffer() Profile {
	return Profile{
		Name:           "puffer",
		TargetMeanMbps: 57.1,
		TargetRSD:      0.472,
		States:         []State{{1.3}, {0.9}, {0.45}},
		Transition: [][]float64{
			{0.9950, 0.0040, 0.0010},
			{0.0080, 0.9890, 0.0030},
			{0.0040, 0.0110, 0.9850},
		},
		StepSeconds: 1,
		AR:          0.95,
	}
}

// FiveG returns the profile calibrated to the 5G dataset: mean 31.3 Mb/s,
// RSD 133% — very high peaks with deep fades (mobility, beam loss).
func FiveG() Profile {
	return Profile{
		Name:           "5g",
		TargetMeanMbps: 31.3,
		TargetRSD:      1.33,
		States:         []State{{2.0}, {1.0}, {0.08}},
		Transition: [][]float64{
			{0.9870, 0.0100, 0.0030},
			{0.0130, 0.9770, 0.0100},
			{0.0100, 0.0170, 0.9730},
		},
		StepSeconds: 1,
		AR:          0.88,
	}
}

// FourG returns the profile calibrated to the 4G dataset: mean 13.0 Mb/s,
// RSD 80.6% — mobile links with moderate volatility.
func FourG() Profile {
	return Profile{
		Name:           "4g",
		TargetMeanMbps: 13.0,
		TargetRSD:      0.806,
		States:         []State{{1.6}, {0.9}, {0.25}},
		Transition: [][]float64{
			{0.9900, 0.0085, 0.0015},
			{0.0100, 0.9800, 0.0100},
			{0.0070, 0.0130, 0.9800},
		},
		StepSeconds: 1,
		AR:          0.92,
	}
}

// Profiles returns the three dataset profiles in paper order.
func Profiles() []Profile { return []Profile{Puffer(), FiveG(), FourG()} }

// Validate checks profile invariants.
func (p Profile) Validate() error {
	n := len(p.States)
	if n == 0 {
		return fmt.Errorf("tracegen: profile %q has no states", p.Name)
	}
	if len(p.Transition) != n {
		return fmt.Errorf("tracegen: profile %q transition matrix has %d rows, want %d", p.Name, len(p.Transition), n)
	}
	for i, row := range p.Transition {
		if len(row) != n {
			return fmt.Errorf("tracegen: profile %q transition row %d has %d cols", p.Name, i, len(row))
		}
		sum := 0.0
		for _, v := range row {
			if v < 0 {
				return fmt.Errorf("tracegen: profile %q negative transition prob in row %d", p.Name, i)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("tracegen: profile %q transition row %d sums to %v", p.Name, i, sum)
		}
	}
	for i, s := range p.States {
		if s.RelMean <= 0 {
			return fmt.Errorf("tracegen: profile %q state %d has non-positive mean", p.Name, i)
		}
	}
	if p.TargetMeanMbps <= 0 || p.TargetRSD < 0 {
		return fmt.Errorf("tracegen: profile %q invalid targets", p.Name)
	}
	if p.StepSeconds <= 0 {
		return fmt.Errorf("tracegen: profile %q non-positive step", p.Name)
	}
	if p.AR < 0 || p.AR >= 1 {
		return fmt.Errorf("tracegen: profile %q AR coefficient %v out of [0,1)", p.Name, p.AR)
	}
	return nil
}

// Stationary returns the stationary distribution of the profile's regime
// chain, computed by power iteration.
func (p Profile) Stationary() []float64 {
	n := len(p.States)
	pi := make([]float64, n)
	next := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	for iter := 0; iter < 10000; iter++ {
		for j := range next {
			next[j] = 0
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				next[j] += pi[i] * p.Transition[i][j]
			}
		}
		delta := 0.0
		for j := range pi {
			delta += math.Abs(next[j] - pi[j])
			pi[j] = next[j]
		}
		if delta < 1e-13 {
			break
		}
	}
	return pi
}

// calibration holds the derived generator parameters.
type calibration struct {
	means []float64 // absolute regime means (Mb/s), rescaled to target
	pi    []float64
	sigma float64 // log-space sd of the unit-mean multiplier
}

// Calibrate solves the generator parameters so the stationary marginal
// distribution has exactly the profile's target mean and RSD. It returns an
// error when the regime spread alone already exceeds the target RSD (sigma
// would be imaginary).
func (p Profile) calibrate() (calibration, error) {
	if err := p.Validate(); err != nil {
		return calibration{}, err
	}
	pi := p.Stationary()
	var m1, m2 float64
	for i, s := range p.States {
		m1 += pi[i] * s.RelMean
		m2 += pi[i] * s.RelMean * s.RelMean
	}
	scale := p.TargetMeanMbps / m1
	means := make([]float64, len(p.States))
	for i, s := range p.States {
		means[i] = s.RelMean * scale
	}
	// Marginal: bw = mean_i * X with E[X]=1, E[X^2]=exp(sigma^2).
	// E[bw] = scale*m1 = target. E[bw^2] = scale^2*m2*exp(sigma^2).
	// RSD^2 + 1 = E[bw^2]/E[bw]^2 = (m2/m1^2)*exp(sigma^2).
	stateRatio := m2 / (m1 * m1)
	want := 1 + p.TargetRSD*p.TargetRSD
	if want < stateRatio {
		return calibration{}, fmt.Errorf("tracegen: profile %q regime spread (ratio %v) exceeds target RSD %v", p.Name, stateRatio, p.TargetRSD)
	}
	sigma := math.Sqrt(math.Log(want / stateRatio))
	return calibration{means: means, pi: pi, sigma: sigma}, nil
}

// AnalyticMoments returns the calibrated stationary mean and RSD (which equal
// the profile targets by construction); exposed for the Figure 9 report.
func (p Profile) AnalyticMoments() (mean, rsd float64, err error) {
	if _, err := p.calibrate(); err != nil {
		return 0, 0, err
	}
	return p.TargetMeanMbps, p.TargetRSD, nil
}

// Session generates one session trace of the given duration. Sessions with
// different indices are statistically independent; the same (profile, seed,
// index) always yields the same trace.
func (p Profile) Session(length units.Seconds, seed uint64, index int) (*trace.Trace, error) {
	cal, err := p.calibrate()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(seed, uint64(index)*0x9e3779b97f4a7c15+1))
	seconds := float64(length)
	steps := int(math.Ceil(seconds / p.StepSeconds))
	tr := &trace.Trace{}

	// Draw the initial regime from the stationary distribution.
	state := sampleIndex(rng, cal.pi)
	// Initialize the AR(1) log-multiplier at stationarity:
	// log X ~ N(-sigma^2/2, sigma^2).
	mu := -cal.sigma * cal.sigma / 2
	logX := mu + cal.sigma*rng.NormFloat64()
	innovSD := cal.sigma * math.Sqrt(1-p.AR*p.AR)
	ramp := p.RampRate
	if ramp <= 0 {
		ramp = 0.35
	}
	if ramp > 1 {
		ramp = 1
	}
	effMean := cal.means[state]

	remaining := seconds
	for i := 0; i < steps; i++ {
		dur := p.StepSeconds
		if dur > remaining {
			dur = remaining
		}
		bw := effMean * math.Exp(logX)
		tr.Append(trace.Sample{Duration: units.Seconds(dur), Mbps: units.Mbps(bw)})
		remaining -= dur

		// Evolve regime (with a smooth transition ramp) and multiplier.
		state = sampleIndex(rng, p.Transition[state])
		effMean += (cal.means[state] - effMean) * ramp
		logX = mu + p.AR*(logX-mu) + innovSD*rng.NormFloat64()
	}
	return tr, nil
}

func sampleIndex(rng *rand.Rand, probs []float64) int {
	u := rng.Float64()
	acc := 0.0
	for i, p := range probs {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(probs) - 1
}

// Dataset is a generated collection of equal-length sessions.
type Dataset struct {
	Name     string
	Sessions []*trace.Trace
}

// Generate produces a dataset of the given number of sessions, each
// sessionLength long (the paper uses 10-minute sessions).
func Generate(p Profile, sessions int, sessionLength units.Seconds, seed uint64) (*Dataset, error) {
	if sessions <= 0 {
		return nil, fmt.Errorf("tracegen: non-positive session count %d", sessions)
	}
	ds := &Dataset{Name: p.Name, Sessions: make([]*trace.Trace, 0, sessions)}
	for i := 0; i < sessions; i++ {
		tr, err := p.Session(sessionLength, seed, i)
		if err != nil {
			return nil, err
		}
		ds.Sessions = append(ds.Sessions, tr)
	}
	return ds, nil
}

// MeanMbps returns the pooled mean bandwidth across all sessions.
func (d *Dataset) MeanMbps() units.Mbps {
	var sum units.Megabits
	var dur units.Seconds
	for _, s := range d.Sessions {
		sum += s.MeanMbps().MegabitsIn(s.Duration())
		dur += s.Duration()
	}
	if dur == 0 {
		return 0
	}
	return sum.Over(dur)
}

// RSD returns the pooled relative standard deviation of bandwidth across all
// sessions.
func (d *Dataset) RSD() float64 {
	mean := float64(d.MeanMbps())
	if mean == 0 {
		return 0
	}
	var ss, dur float64
	for _, s := range d.Sessions {
		for _, sample := range s.Samples() {
			dv := float64(sample.Mbps) - mean
			ss += dv * dv * float64(sample.Duration)
			dur += float64(sample.Duration)
		}
	}
	if dur == 0 {
		return 0
	}
	return math.Sqrt(ss/dur) / mean
}

// QuartilesByRSD splits the sessions into four buckets by per-session RSD,
// ascending (Q1 = most stable, Q4 = most volatile), as in Figure 10.
// It requires at least four sessions.
func (d *Dataset) QuartilesByRSD() [][]*trace.Trace {
	n := len(d.Sessions)
	if n < 4 {
		return nil
	}
	sorted := make([]*trace.Trace, n)
	copy(sorted, d.Sessions)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].RSD() < sorted[j].RSD() })
	out := make([][]*trace.Trace, 4)
	for q := 0; q < 4; q++ {
		lo := q * n / 4
		hi := (q + 1) * n / 4
		out[q] = sorted[lo:hi]
	}
	return out
}

// Subset returns a deterministic pseudo-random subset of k sessions (or all
// sessions when k >= len), used for the reduced-scale experiments.
func (d *Dataset) Subset(k int, seed uint64) []*trace.Trace {
	n := len(d.Sessions)
	if k >= n {
		return d.Sessions
	}
	idx := rand.New(rand.NewPCG(seed, 0xfeed)).Perm(n)[:k]
	sort.Ints(idx)
	out := make([]*trace.Trace, k)
	for i, j := range idx {
		out[i] = d.Sessions[j]
	}
	return out
}

// FilterMeanBelow returns the sessions whose mean throughput is below the
// threshold, mirroring the prototype evaluation's selection of challenging
// sessions with mean throughput under 2 Mb/s (§6.2.1).
func (d *Dataset) FilterMeanBelow(mbps float64) []*trace.Trace {
	var out []*trace.Trace
	for _, s := range d.Sessions {
		if s.MeanMbps() < units.Mbps(mbps) {
			out = append(out, s)
		}
	}
	return out
}

// StepDown returns a deterministic pathological trace used to reproduce the
// RobustMPC failure mode of Figure 3: comfortable bandwidth for headSeconds,
// then a hard drop to lowMbps that forces the controller to choose between
// switching down and rebuffering.
func StepDown(highMbps, lowMbps, headSeconds, tailSeconds float64) *trace.Trace {
	return trace.New([]trace.Sample{
		{Duration: units.Seconds(headSeconds), Mbps: units.Mbps(highMbps)},
		{Duration: units.Seconds(tailSeconds), Mbps: units.Mbps(lowMbps)},
	})
}
