package tracegen

import (
	"math"
	"testing"

	"repro/internal/trace"

	"repro/internal/units"
)

func TestProfilesValidate(t *testing.T) {
	for _, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestValidateCatchesBadProfiles(t *testing.T) {
	base := Puffer()

	noStates := base
	noStates.States = nil
	noStates.Transition = nil
	if noStates.Validate() == nil {
		t.Error("empty states not caught")
	}

	badRows := base
	badRows.Transition = badRows.Transition[:2]
	if badRows.Validate() == nil {
		t.Error("wrong row count not caught")
	}

	badSum := Puffer()
	badSum.Transition = [][]float64{
		{0.5, 0.2, 0.1},
		{0.02, 0.97, 0.01},
		{0.01, 0.03, 0.96},
	}
	if badSum.Validate() == nil {
		t.Error("non-stochastic row not caught")
	}

	badMean := Puffer()
	badMean.States = []State{{1}, {0}, {0.5}}
	if badMean.Validate() == nil {
		t.Error("non-positive state mean not caught")
	}

	badAR := Puffer()
	badAR.AR = 1.0
	if badAR.Validate() == nil {
		t.Error("AR=1 not caught")
	}

	badStep := Puffer()
	badStep.StepSeconds = 0
	if badStep.Validate() == nil {
		t.Error("zero step not caught")
	}

	badTargets := Puffer()
	badTargets.TargetMeanMbps = -1
	if badTargets.Validate() == nil {
		t.Error("negative target mean not caught")
	}
}

func TestStationaryDistribution(t *testing.T) {
	for _, p := range Profiles() {
		pi := p.Stationary()
		sum := 0.0
		for _, v := range pi {
			if v < 0 {
				t.Errorf("%s: negative stationary prob %v", p.Name, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: stationary sums to %v", p.Name, sum)
		}
		// pi must be a fixed point of the transition matrix.
		n := len(pi)
		for j := 0; j < n; j++ {
			got := 0.0
			for i := 0; i < n; i++ {
				got += pi[i] * p.Transition[i][j]
			}
			if math.Abs(got-pi[j]) > 1e-9 {
				t.Errorf("%s: stationary not fixed point at %d: %v vs %v", p.Name, j, got, pi[j])
			}
		}
	}
}

func TestCalibrationInfeasible(t *testing.T) {
	p := Puffer()
	// Target RSD far below the regime spread is infeasible.
	p.TargetRSD = 0.01
	if _, err := p.Session(units.Seconds(60), 1, 0); err == nil {
		t.Error("infeasible calibration not detected")
	}
	if _, _, err := p.AnalyticMoments(); err == nil {
		t.Error("AnalyticMoments should propagate calibration error")
	}
}

func TestDatasetMatchesCalibrationTargets(t *testing.T) {
	// Generated datasets must match the Fig. 9 targets within sampling
	// tolerance. This is the core guarantee of the substitution documented
	// in DESIGN.md.
	for _, p := range Profiles() {
		ds, err := Generate(p, 60, units.Seconds(600), 12345)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		mean := float64(ds.MeanMbps())
		rsd := ds.RSD()
		if math.Abs(mean-p.TargetMeanMbps)/p.TargetMeanMbps > 0.10 {
			t.Errorf("%s: mean = %.2f Mb/s, target %.2f", p.Name, mean, p.TargetMeanMbps)
		}
		if math.Abs(rsd-p.TargetRSD)/p.TargetRSD > 0.15 {
			t.Errorf("%s: RSD = %.3f, target %.3f", p.Name, rsd, p.TargetRSD)
		}
	}
}

func TestDatasetOrdering(t *testing.T) {
	// The paper's datasets are strictly ordered: Puffer has the best network
	// conditions, then 5G, then 4G by mean; 5G is the most volatile.
	puffer, _ := Generate(Puffer(), 30, units.Seconds(600), 7)
	fiveG, _ := Generate(FiveG(), 30, units.Seconds(600), 7)
	fourG, _ := Generate(FourG(), 30, units.Seconds(600), 7)
	if !(puffer.MeanMbps() > fiveG.MeanMbps() && fiveG.MeanMbps() > fourG.MeanMbps()) {
		t.Errorf("mean ordering violated: %v %v %v", puffer.MeanMbps(), fiveG.MeanMbps(), fourG.MeanMbps())
	}
	if !(fiveG.RSD() > fourG.RSD() && fourG.RSD() > puffer.RSD()) {
		t.Errorf("RSD ordering violated: %v %v %v", puffer.RSD(), fourG.RSD(), fiveG.RSD())
	}
}

func TestSessionDeterminism(t *testing.T) {
	p := FourG()
	a, err := p.Session(units.Seconds(120), 99, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := p.Session(units.Seconds(120), 99, 3)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Samples() {
		if a.Samples()[i] != b.Samples()[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
	c, _ := p.Session(units.Seconds(120), 99, 4)
	same := a.Len() == c.Len()
	if same {
		identical := true
		for i := range a.Samples() {
			if a.Samples()[i] != c.Samples()[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Error("different session indices produced identical traces")
		}
	}
}

func TestSessionDurationAndPositivity(t *testing.T) {
	p := FiveG()
	tr, err := p.Session(units.Seconds(601.5), 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(tr.Duration())-601.5) > 1e-9 {
		t.Errorf("duration = %v", tr.Duration())
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
	if tr.MinMbps() <= 0 {
		t.Errorf("bandwidth must stay positive, min = %v", tr.MinMbps())
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Puffer(), 0, units.Seconds(600), 1); err == nil {
		t.Error("zero sessions not rejected")
	}
	bad := Puffer()
	bad.TargetRSD = 0.001
	if _, err := Generate(bad, 2, units.Seconds(600), 1); err == nil {
		t.Error("calibration error not propagated")
	}
}

func TestQuartilesByRSD(t *testing.T) {
	ds, err := Generate(Puffer(), 40, units.Seconds(300), 21)
	if err != nil {
		t.Fatal(err)
	}
	qs := ds.QuartilesByRSD()
	if len(qs) != 4 {
		t.Fatalf("want 4 quartiles, got %d", len(qs))
	}
	total := 0
	var prevMax float64
	for qi, bucket := range qs {
		total += len(bucket)
		if len(bucket) == 0 {
			t.Errorf("quartile %d empty", qi)
			continue
		}
		// All sessions in a later quartile are at least as volatile as the
		// most volatile session in the previous quartile.
		minRSD := math.Inf(1)
		maxRSD := 0.0
		for _, s := range bucket {
			r := s.RSD()
			minRSD = math.Min(minRSD, r)
			maxRSD = math.Max(maxRSD, r)
		}
		if qi > 0 && minRSD < prevMax-1e-12 {
			t.Errorf("quartile %d overlaps previous: min %v < prev max %v", qi, minRSD, prevMax)
		}
		prevMax = maxRSD
	}
	if total != 40 {
		t.Errorf("quartiles lost sessions: %d", total)
	}

	small := &Dataset{Sessions: ds.Sessions[:3]}
	if small.QuartilesByRSD() != nil {
		t.Error("quartiles of <4 sessions should be nil")
	}
}

func TestSubset(t *testing.T) {
	ds, _ := Generate(FourG(), 20, units.Seconds(120), 3)
	sub := ds.Subset(5, 9)
	if len(sub) != 5 {
		t.Fatalf("subset size = %d", len(sub))
	}
	again := ds.Subset(5, 9)
	for i := range sub {
		if sub[i] != again[i] {
			t.Error("subset not deterministic")
		}
	}
	all := ds.Subset(100, 9)
	if len(all) != 20 {
		t.Errorf("oversized subset = %d sessions", len(all))
	}
}

func TestFilterMeanBelow(t *testing.T) {
	ds := &Dataset{Sessions: []*trace.Trace{
		trace.Constant(units.Mbps(1), units.Seconds(10)),
		trace.Constant(units.Mbps(5), units.Seconds(10)),
		trace.Constant(units.Mbps(1.5), units.Seconds(10)),
	}}
	got := ds.FilterMeanBelow(2)
	if len(got) != 2 {
		t.Errorf("filtered %d sessions, want 2", len(got))
	}
}

func TestStepDown(t *testing.T) {
	tr := StepDown(10, 1, 60, 140)
	if math.Abs(float64(tr.Duration())-200) > 1e-9 {
		t.Errorf("duration = %v", tr.Duration())
	}
	if tr.BandwidthAt(units.Seconds(30)) != 10 || tr.BandwidthAt(units.Seconds(100)) != 1 {
		t.Error("step-down shape wrong")
	}
}

func TestEmptyDatasetStats(t *testing.T) {
	var d Dataset
	if d.MeanMbps() != 0 || d.RSD() != 0 {
		t.Error("empty dataset stats should be 0")
	}
}
