// Package profiling is the shared observability flag surface of the
// repository's command-line tools: the conventional -cpuprofile and
// -memprofile flags (so a regression flagged by cmd/soda-bench can be chased
// down with `go tool pprof` against a real workload) plus the -telemetry
// flag, which attaches a telemetry.Collector to the run and writes its
// snapshot JSON at exit. The three binaries register all of it through one
// helper instead of duplicating the setup.
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/telemetry"
)

// Flags holds the registered profile and telemetry destinations.
type Flags struct {
	cpu       *string
	mem       *string
	telemetry *string

	collector *telemetry.Collector
}

// Register installs -cpuprofile, -memprofile and -telemetry on fs (typically
// flag.CommandLine, before flag.Parse).
func Register(fs *flag.FlagSet) *Flags {
	return &Flags{
		cpu:       fs.String("cpuprofile", "", "write a CPU profile to this file"),
		mem:       fs.String("memprofile", "", "write a heap profile to this file at exit"),
		telemetry: fs.String("telemetry", "", "record run telemetry and write a snapshot JSON to this file at exit"),
	}
}

// Collector returns the run's telemetry collector: a live one when
// -telemetry was given, nil otherwise. Callers thread the result through
// unconditionally — a nil collector records nothing at zero cost. Call after
// flag.Parse.
func (f *Flags) Collector() *telemetry.Collector {
	if *f.telemetry == "" {
		return nil
	}
	if f.collector == nil {
		f.collector = telemetry.NewCollector(nil, telemetry.DefaultRingCapacity)
	}
	return f.collector
}

// Start begins CPU profiling when -cpuprofile was given. The returned stop
// function ends the CPU profile, writes the heap profile when -memprofile
// was given, and writes the telemetry snapshot when -telemetry was given.
// Call stop exactly once on every exit path — os.Exit skips deferred calls,
// so the mains invoke it explicitly before exiting.
func (f *Flags) Start() (stop func() error, err error) {
	var cpuFile *os.File
	if *f.cpu != "" {
		cpuFile, err = os.Create(*f.cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if *f.telemetry != "" {
			if err := f.Collector().WriteSnapshotFile(*f.telemetry); err != nil {
				return fmt.Errorf("write telemetry snapshot: %w", err)
			}
		}
		if *f.mem == "" {
			return nil
		}
		memFile, err := os.Create(*f.mem)
		if err != nil {
			return err
		}
		runtime.GC() // flush recently freed objects out of the heap profile
		if err := pprof.WriteHeapProfile(memFile); err != nil {
			memFile.Close()
			return fmt.Errorf("write heap profile: %w", err)
		}
		return memFile.Close()
	}, nil
}
