// Package profiling adds the conventional -cpuprofile and -memprofile flags
// to the repository's command-line tools, so a regression flagged by
// cmd/soda-bench can be chased down with `go tool pprof` against a real
// workload instead of a micro-benchmark.
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the registered profile destinations.
type Flags struct {
	cpu *string
	mem *string
}

// Register installs -cpuprofile and -memprofile on fs (typically
// flag.CommandLine, before flag.Parse).
func Register(fs *flag.FlagSet) *Flags {
	return &Flags{
		cpu: fs.String("cpuprofile", "", "write a CPU profile to this file"),
		mem: fs.String("memprofile", "", "write a heap profile to this file at exit"),
	}
}

// Start begins CPU profiling when -cpuprofile was given. The returned stop
// function ends the CPU profile and, when -memprofile was given, writes the
// heap profile. Call stop exactly once on every exit path — os.Exit skips
// deferred calls, so the mains invoke it explicitly before exiting.
func (f *Flags) Start() (stop func() error, err error) {
	var cpuFile *os.File
	if *f.cpu != "" {
		cpuFile, err = os.Create(*f.cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if *f.mem == "" {
			return nil
		}
		memFile, err := os.Create(*f.mem)
		if err != nil {
			return err
		}
		runtime.GC() // flush recently freed objects out of the heap profile
		if err := pprof.WriteHeapProfile(memFile); err != nil {
			memFile.Close()
			return fmt.Errorf("write heap profile: %w", err)
		}
		return memFile.Close()
	}, nil
}
