package profiling

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/units"
)

// TestStartWritesProfiles runs the full flag -> Start -> stop cycle and
// checks both profile files come out non-empty.
func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}

	stop, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() == 0 {
			t.Fatalf("%s: empty profile", path)
		}
	}
}

// TestStartNoFlagsIsNoOp checks that without flags, Start and stop do
// nothing, touch no files, and hand out no collector.
func TestStartNoFlagsIsNoOp(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if f.Collector() != nil {
		t.Fatal("collector handed out without -telemetry")
	}
	stop, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

// TestTelemetryFlagWritesSnapshot checks -telemetry hands out one stable
// collector and stop writes its snapshot file.
func TestTelemetryFlagWritesSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "telemetry.json")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse([]string{"-telemetry", path}); err != nil {
		t.Fatal(err)
	}
	col := f.Collector()
	if col == nil {
		t.Fatal("no collector despite -telemetry")
	}
	if f.Collector() != col {
		t.Fatal("Collector is not stable across calls")
	}
	col.RecordSession(42, units.Seconds(1.5))

	stop, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot does not parse: %v", err)
	}
	found := false
	for _, m := range snap.Metrics {
		if m.Name == "soda_segments_total" && m.Value == 42 {
			found = true
		}
	}
	if !found {
		t.Fatalf("snapshot missing the recorded session aggregates: %s", data)
	}
}
