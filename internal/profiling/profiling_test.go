package profiling

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// TestStartWritesProfiles runs the full flag -> Start -> stop cycle and
// checks both profile files come out non-empty.
func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}

	stop, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() == 0 {
			t.Fatalf("%s: empty profile", path)
		}
	}
}

// TestStartNoFlagsIsNoOp checks that without flags, Start and stop do nothing
// and touch no files.
func TestStartNoFlagsIsNoOp(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	stop, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}
