package video

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestLadderConstruction(t *testing.T) {
	l := NewLadder([]float64{1, 2, 4}, units.Seconds(2))
	if l.Len() != 3 || l.Min() != 1 || l.Max() != 4 {
		t.Errorf("ladder %+v", l)
	}
	if l.Mbps(1) != 2 {
		t.Errorf("Mbps(1) = %v", l.Mbps(1))
	}
	br := l.Bitrates()
	br[0] = 99 // must not alias internal storage
	if l.Min() != 1 {
		t.Error("Bitrates aliases internal storage")
	}
}

func TestNewLadderPanics(t *testing.T) {
	cases := []struct {
		mbps []float64
		seg  float64
	}{
		{nil, 2},
		{[]float64{1, 1}, 2},
		{[]float64{2, 1}, 2},
		{[]float64{0, 1}, 2},
		{[]float64{1, 2}, 0},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLadder(%v, %v) should panic", c.mbps, c.seg)
				}
			}()
			NewLadder(c.mbps, units.Seconds(c.seg))
		}()
	}
}

func TestStandardLadders(t *testing.T) {
	yt := YouTube4K()
	if yt.Len() != 6 || yt.Min() != 1.5 || yt.Max() != 60 || yt.SegmentSeconds != 2 {
		t.Errorf("YouTube4K = %+v", yt)
	}
	mob := Mobile()
	if mob.Len() != 4 || mob.Max() != 12 {
		t.Errorf("Mobile = %+v", mob)
	}
	proto := Prototype()
	if proto.Len() != 5 || proto.Max() != 2.0 {
		t.Errorf("Prototype = %+v", proto)
	}
	if proto.Rungs[4].Height != 1080 {
		t.Errorf("Prototype top rung resolution = %+v", proto.Rungs[4])
	}
	pv := PrimeVideo()
	if pv.Len() != 10 || pv.Min() != 0.2 || pv.Max() != 8.0 {
		t.Errorf("PrimeVideo = %+v", pv)
	}
}

func TestMaxSustainable(t *testing.T) {
	l := YouTube4K()
	cases := []struct {
		mbps float64
		want int
	}{
		{0.1, 0}, {1.5, 0}, {3.9, 0}, {4.0, 1}, {11, 2}, {60, 5}, {500, 5},
	}
	for _, c := range cases {
		if got := l.MaxSustainable(units.Mbps(c.mbps)); got != c.want {
			t.Errorf("MaxSustainable(%v) = %d, want %d", c.mbps, got, c.want)
		}
	}
}

func TestCapIndex(t *testing.T) {
	l := YouTube4K()
	cases := []struct {
		mbps float64
		want int
	}{
		{0.1, 0}, {1.5, 0}, {1.6, 1}, {4, 1}, {30, 5}, {60, 5}, {100, 5},
	}
	for _, c := range cases {
		if got := l.CapIndex(units.Mbps(c.mbps)); got != c.want {
			t.Errorf("CapIndex(%v) = %d, want %d", c.mbps, got, c.want)
		}
	}
}

func TestClampIndex(t *testing.T) {
	l := Mobile()
	if l.ClampIndex(-3) != 0 || l.ClampIndex(99) != 3 || l.ClampIndex(2) != 2 {
		t.Error("ClampIndex misbehaves")
	}
}

func TestLogUtility(t *testing.T) {
	l := YouTube4K()
	if got := l.LogUtility(0); got != 0 {
		t.Errorf("utility of rmin = %v", got)
	}
	if got := l.LogUtility(5); math.Abs(got-1) > 1e-12 {
		t.Errorf("utility of rmax = %v", got)
	}
	prev := -1.0
	for i := 0; i < l.Len(); i++ {
		u := l.LogUtility(i)
		if u <= prev {
			t.Errorf("utility not strictly increasing at rung %d: %v <= %v", i, u, prev)
		}
		if u < 0 || u > 1 {
			t.Errorf("utility out of range at rung %d: %v", i, u)
		}
		prev = u
	}
	single := NewLadder([]float64{3}, units.Seconds(2))
	if single.LogUtility(0) != 1 {
		t.Errorf("single-rung utility = %v", single.LogUtility(0))
	}
}

func TestCBRSizes(t *testing.T) {
	l := YouTube4K()
	m := CBR{Ladder: l}
	if got := m.SegmentMegabits(0, 7); got != 3.0 {
		t.Errorf("CBR size = %v, want 3 (1.5 Mb/s x 2 s)", got)
	}
	if got := m.SegmentMegabits(5, 0); got != 120 {
		t.Errorf("CBR top size = %v, want 120", got)
	}
}

func TestVBRProperties(t *testing.T) {
	l := YouTube4K()
	m := VBR{Ladder: l, Sigma: 0.15, Seed: 42}
	// Deterministic for the same (seed, segment).
	if m.SegmentMegabits(2, 5) != m.SegmentMegabits(2, 5) {
		t.Error("VBR not deterministic")
	}
	// Complexity factor shared across rungs for a given segment.
	f0 := m.SegmentMegabits(0, 5) / l.SegmentMegabits(0)
	f5 := m.SegmentMegabits(5, 5) / l.SegmentMegabits(5)
	if math.Abs(float64(f0-f5)) > 1e-12 {
		t.Errorf("VBR factor differs across rungs: %v vs %v", f0, f5)
	}
	// Mean over many segments is close to nominal (factor has mean 1).
	sum := units.Megabits(0)
	n := 4000
	for i := 0; i < n; i++ {
		sum += m.SegmentMegabits(3, i)
	}
	mean := sum / units.Megabits(n)
	if math.Abs(float64(mean-l.SegmentMegabits(3))) > 0.02*float64(l.SegmentMegabits(3)) {
		t.Errorf("VBR mean = %v, nominal %v", mean, l.SegmentMegabits(3))
	}
	// Sizes are always positive.
	f := func(seg uint8) bool { return m.SegmentMegabits(1, int(seg)) > 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSSIMModel(t *testing.T) {
	m := DefaultSSIM()
	if got := m.SSIM(units.Mbps(0.2)); math.Abs(got-0.90) > 1e-9 {
		t.Errorf("SSIM(0.2) = %v, want 0.90", got)
	}
	if got := m.SSIM(units.Mbps(2.0)); math.Abs(got-0.98) > 1e-9 {
		t.Errorf("SSIM(2.0) = %v, want 0.98", got)
	}
	if m.SSIM(units.Mbps(0)) != 0 {
		t.Errorf("SSIM(0) = %v", m.SSIM(units.Mbps(0)))
	}
	// Monotone increasing.
	prev := -1.0
	for r := units.Mbps(0.1); r <= 60; r *= 1.5 {
		s := m.SSIM(r)
		if s <= prev {
			t.Errorf("SSIM not increasing at %v", r)
		}
		if s < 0 || s > 1 {
			t.Errorf("SSIM out of range at %v: %v", r, s)
		}
		prev = s
	}
	// Concavity in bitrate: marginal gains shrink.
	d1 := m.SSIM(units.Mbps(0.4)) - m.SSIM(units.Mbps(0.2))
	d2 := m.SSIM(units.Mbps(0.6)) - m.SSIM(units.Mbps(0.4))
	if d2 >= d1 {
		t.Errorf("SSIM not concave: %v then %v", d1, d2)
	}
}

func TestNormalizedUtility(t *testing.T) {
	m := DefaultSSIM()
	if got := m.NormalizedUtility(units.Mbps(2.0), units.Mbps(2.0)); math.Abs(got-1) > 1e-12 {
		t.Errorf("top-rung normalized utility = %v", got)
	}
	if got := m.NormalizedUtility(units.Mbps(0.2), units.Mbps(2.0)); got <= 0 || got >= 1 {
		t.Errorf("bottom-rung normalized utility = %v", got)
	}
	if got := m.NormalizedUtility(units.Mbps(1), units.Mbps(0)); got != 0 {
		t.Errorf("degenerate normalization = %v", got)
	}
}
