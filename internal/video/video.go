// Package video models the video side of adaptive bitrate streaming: bitrate
// ladders, segment size models (CBR and VBR), and the utility functions the
// paper's evaluation uses (the normalized logarithmic utility of §6 and the
// SSIM-based utility of the prototype evaluation, §6.2.3).
package video

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/units"
)

// Rung is one encoding of the video: a bitrate and its nominal resolution.
type Rung struct {
	Mbps   units.Mbps
	Width  int
	Height int
}

// Ladder is an ascending set of bitrate rungs plus the segment duration.
// Ladders are immutable after construction.
type Ladder struct {
	Rungs          []Rung
	SegmentSeconds units.Seconds
}

// NewLadder builds a ladder from ascending bitrates with the given segment
// duration. It panics on empty, non-ascending or non-positive input; ladders
// are program constants, so misconfiguration is a programming error.
func NewLadder(mbps []float64, segmentSeconds units.Seconds) Ladder {
	if len(mbps) == 0 {
		panic("video: empty ladder")
	}
	if segmentSeconds <= 0 {
		panic("video: non-positive segment duration")
	}
	rungs := make([]Rung, len(mbps))
	prev := 0.0
	for i, r := range mbps {
		if r <= prev {
			panic(fmt.Sprintf("video: ladder must be strictly ascending and positive, got %v after %v", r, prev))
		}
		rungs[i] = Rung{Mbps: units.Mbps(r)}
		prev = r
	}
	return Ladder{Rungs: rungs, SegmentSeconds: segmentSeconds}
}

// YouTube4K returns the high-frame-rate 4K ladder used in the paper's
// numerical simulations (§6.1.1): YouTube-recommended bitrates
// 1.5, 4, 7.5, 12, 24 and 60 Mb/s with 2-second segments.
func YouTube4K() Ladder {
	l := NewLadder([]float64{1.5, 4, 7.5, 12, 24, 60}, units.Seconds(2))
	res := [][2]int{{640, 360}, {1280, 720}, {1920, 1080}, {2560, 1440}, {3840, 2160}, {3840, 2160}}
	for i := range l.Rungs {
		l.Rungs[i].Width, l.Rungs[i].Height = res[i][0], res[i][1]
	}
	return l
}

// Mobile returns the ladder used for the 4G and 5G datasets: the same video
// with the two highest bitrates removed (§6.1.1).
func Mobile() Ladder {
	full := YouTube4K()
	return Ladder{Rungs: full.Rungs[:4], SegmentSeconds: full.SegmentSeconds}
}

// Prototype returns the ladder of the prototype evaluation (§6.2.1): a news
// clip in five resolutions from 426x240 to 1920x1080 at constant rate factor
// 26, whose highest rung averages about 2 Mb/s, with 2-second segments.
func Prototype() Ladder {
	l := NewLadder([]float64{0.2, 0.4, 0.8, 1.3, 2.0}, units.Seconds(2))
	res := [][2]int{{426, 240}, {640, 360}, {854, 480}, {1280, 720}, {1920, 1080}}
	for i := range l.Rungs {
		l.Rungs[i].Width, l.Rungs[i].Height = res[i][0], res[i][1]
	}
	return l
}

// PrimeVideo returns the production bitrate ladder of §6.3:
// {0.2, 0.45, 0.8, 1.2, 1.8, 2, 4, 5, 6.5, 8.0} Mb/s.
func PrimeVideo() Ladder {
	return NewLadder([]float64{0.2, 0.45, 0.8, 1.2, 1.8, 2, 4, 5, 6.5, 8.0}, units.Seconds(2))
}

// NamedLadder pairs a registered ladder with its evaluation name, for
// harnesses that iterate every ladder in use (conformance contracts, fuzz
// corpora).
type NamedLadder struct {
	Name   string
	Ladder Ladder
}

// NamedLadders returns every ladder of the evaluation, in a fixed order.
func NamedLadders() []NamedLadder {
	return []NamedLadder{
		{Name: "youtube4k", Ladder: YouTube4K()},
		{Name: "mobile", Ladder: Mobile()},
		{Name: "prototype", Ladder: Prototype()},
		{Name: "primevideo", Ladder: PrimeVideo()},
	}
}

// Len returns the number of rungs.
func (l Ladder) Len() int { return len(l.Rungs) }

// Mbps returns the bitrate of rung i.
func (l Ladder) Mbps(i int) units.Mbps { return l.Rungs[i].Mbps }

// Min and Max return the lowest and highest bitrates.
func (l Ladder) Min() units.Mbps { return l.Rungs[0].Mbps }

// Max returns the highest bitrate of the ladder.
func (l Ladder) Max() units.Mbps { return l.Rungs[len(l.Rungs)-1].Mbps }

// Bitrates returns a copy of the bitrates in ascending order.
func (l Ladder) Bitrates() []units.Mbps {
	out := make([]units.Mbps, len(l.Rungs))
	for i, r := range l.Rungs {
		out[i] = r.Mbps
	}
	return out
}

// MaxSustainable returns the index of the highest rung whose bitrate does not
// exceed mbps, or 0 when even the lowest rung exceeds it.
func (l Ladder) MaxSustainable(mbps units.Mbps) int {
	best := 0
	for i, r := range l.Rungs {
		if r.Mbps <= mbps {
			best = i
		}
	}
	return best
}

// CapIndex returns the index of min{r in R : r >= mbps}: the §5.1 heuristic
// cap "select a bitrate no higher than the smallest rung at or above the
// predicted throughput". When mbps exceeds every rung, the top rung index is
// returned.
func (l Ladder) CapIndex(mbps units.Mbps) int {
	for i, r := range l.Rungs {
		if r.Mbps >= mbps {
			return i
		}
	}
	return len(l.Rungs) - 1
}

// ClampIndex limits i to the valid rung range.
func (l Ladder) ClampIndex(i int) int {
	if i < 0 {
		return 0
	}
	if i >= len(l.Rungs) {
		return len(l.Rungs) - 1
	}
	return i
}

// SegmentMegabits returns the nominal (CBR) size of one segment at rung i.
func (l Ladder) SegmentMegabits(i int) units.Megabits {
	return l.Rungs[i].Mbps.MegabitsIn(l.SegmentSeconds)
}

// LogUtility returns the commonly-used normalized logarithmic utility of §6:
// log(r/rmin)/log(rmax/rmin), clamped to [0, 1]. A single-rung ladder has
// utility 1 for its only rung.
func (l Ladder) LogUtility(i int) float64 {
	rmin, rmax := l.Min(), l.Max()
	if rmin == rmax {
		return 1
	}
	u := math.Log(float64(l.Rungs[i].Mbps/rmin)) / math.Log(float64(rmax/rmin))
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// SizeModel produces per-segment encoded sizes. Implementations must be safe
// to call with any rung index in range and any non-negative segment index.
type SizeModel interface {
	// SegmentMegabits returns the size of segment segIdx at rung i.
	SegmentMegabits(i, segIdx int) units.Megabits
}

// CBR is a constant-bitrate size model: every segment at rung i has exactly
// the nominal size.
type CBR struct{ Ladder Ladder }

// SegmentMegabits implements SizeModel.
func (c CBR) SegmentMegabits(i, _ int) units.Megabits { return c.Ladder.SegmentMegabits(i) }

// VBR models variable-bitrate encodings: segment sizes vary around the
// nominal size by a log-normal factor shared across rungs for a given segment
// index (scene complexity affects all encodings of a segment similarly).
// Factors are deterministic functions of (Seed, segIdx), so sessions are
// reproducible and all rungs of a segment share the same complexity.
type VBR struct {
	Ladder Ladder
	Sigma  float64 // log-space standard deviation, e.g. 0.15
	Seed   uint64
}

// SegmentMegabits implements SizeModel.
func (v VBR) SegmentMegabits(i, segIdx int) units.Megabits {
	rng := rand.New(rand.NewPCG(v.Seed, uint64(segIdx)+1))
	factor := math.Exp(rng.NormFloat64()*v.Sigma - v.Sigma*v.Sigma/2)
	return v.Ladder.SegmentMegabits(i) * units.Megabits(factor)
}

// SSIMModel maps bitrate to structural-similarity quality, the utility used
// by the prototype evaluation (§6.2.3, normalized mean SSIM). The model is
// monotone increasing and concave in bitrate:
//
//	SSIM(r) = 1 - D0 * (r/RefMbps)^(-Q)
//
// with defaults calibrated so a 0.2 Mb/s news-clip encode scores ~0.90 and a
// 2 Mb/s encode ~0.98, matching typical Puffer SSIM ranges.
type SSIMModel struct {
	D0      float64    // distortion at the reference bitrate
	Q       float64    // decay exponent
	RefMbps units.Mbps // reference bitrate
}

// DefaultSSIM returns the calibrated prototype SSIM model.
func DefaultSSIM() SSIMModel {
	return SSIMModel{D0: 0.10, Q: math.Log(5) / math.Log(10), RefMbps: units.Mbps(0.2)}
}

// SSIM returns the modeled SSIM at bitrate mbps, clamped to [0, 1].
func (m SSIMModel) SSIM(mbps units.Mbps) float64 {
	if mbps <= 0 {
		return 0
	}
	s := 1 - m.D0*math.Pow(float64(mbps/m.RefMbps), -m.Q)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// NormalizedUtility returns SSIM(mbps)/SSIM(maxMbps): the v = SSIM/SSIMmax
// utility of §6.2.3.
func (m SSIMModel) NormalizedUtility(mbps, maxMbps units.Mbps) float64 {
	denom := m.SSIM(maxMbps)
	if denom <= 0 {
		return 0
	}
	return m.SSIM(mbps) / denom
}
