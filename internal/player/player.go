// Package player drives the TCP prototype with an ABR controller — the
// equivalent of the browser-based player of the paper's prototype evaluation
// (§6.2), measuring QoE under real transport dynamics instead of the fluid
// simulator.
//
// The player operates in a compressed stream-time domain: with TimeScale = s
// the server's traffic shaper plays the bandwidth trace s× faster and the
// player's clock advances s stream-seconds per wall second, so a 10-minute
// session completes in 600/s wall seconds with identical controller inputs.
package player

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/abr"
	"repro/internal/predictor"
	"repro/internal/proto"
	"repro/internal/qoe"
	"repro/internal/units"
	"repro/internal/video"
)

// Fetcher is the transport a player session pulls segments through. Both
// the binary TCP client (proto.Client) and the HTTP/DASH client
// (httpseg.Client) implement it.
type Fetcher interface {
	Manifest() proto.Manifest
	FetchSegment(index, rung int) (bytes int, elapsed time.Duration, err error)
}

// Config drives one prototype playback session.
type Config struct {
	// Addr is the segment server address, dialed with the binary protocol
	// when Fetcher is nil.
	Addr string
	// Fetcher overrides the transport; when set, Addr is ignored and the
	// caller owns the fetcher's lifecycle.
	Fetcher Fetcher
	// Controller picks bitrates. Required.
	Controller abr.Controller
	// Predictor forecasts throughput. Required.
	Predictor predictor.Predictor
	// BufferCap is the maximum buffer (15 s in Puffer, §6.2).
	BufferCap units.Seconds
	// TimeScale is the stream-time compression factor shared with the
	// server's shaper; >= 1. Defaults to 1.
	TimeScale float64
	// Utility maps a rung to [0, 1]; nil uses the normalized SSIM model of
	// the prototype evaluation.
	Utility func(rung int) float64
	// Weights are the QoE weights (zero value = paper defaults).
	Weights qoe.Weights
	// MaxSegments truncates the session (0 = play the whole manifest).
	MaxSegments int
	// DialTimeout bounds connection setup and each segment fetch.
	DialTimeout time.Duration
}

// Result is the outcome of one prototype session.
type Result struct {
	Metrics  qoe.Metrics
	Rungs    []int
	Manifest proto.Manifest
	Waits    int
}

// Play connects to the server and streams the whole session.
func Play(cfg Config) (Result, error) {
	if cfg.Controller == nil || cfg.Predictor == nil {
		return Result{}, errors.New("player: controller and predictor are required")
	}
	if cfg.BufferCap <= 0 {
		return Result{}, errors.New("player: non-positive buffer cap")
	}
	scale := cfg.TimeScale
	if scale <= 0 {
		scale = 1
	}
	fetcher := cfg.Fetcher
	if fetcher == nil {
		client, err := proto.Dial(cfg.Addr, cfg.DialTimeout)
		if err != nil {
			return Result{}, err
		}
		defer client.Close()
		fetcher = client
	}

	manifest := fetcher.Manifest()
	ladder := video.NewLadder(manifest.BitratesMbps, units.Seconds(manifest.SegmentSeconds))
	total := manifest.TotalSegments
	if cfg.MaxSegments > 0 && cfg.MaxSegments < total {
		total = cfg.MaxSegments
	}
	utility := cfg.Utility
	if utility == nil {
		ssim := video.DefaultSSIM()
		maxMbps := ladder.Max()
		utility = func(r int) float64 { return ssim.NormalizedUtility(ladder.Mbps(r), maxMbps) }
	}
	weights := cfg.Weights
	if weights == (qoe.Weights{}) {
		weights = qoe.DefaultWeights()
	}

	cfg.Controller.Reset()
	cfg.Predictor.Reset()
	quantile, _ := cfg.Predictor.(predictor.QuantilePredictor)

	var (
		tally      qoe.SessionTally
		result     Result
		buffer     units.Seconds
		playing    bool
		prevRung   = abr.NoRung
		lastMbps   units.Mbps
		wallStart  = time.Now()
		lastStream units.Seconds
	)
	result.Manifest = manifest
	streamNow := func() units.Seconds { return units.Seconds(time.Since(wallStart).Seconds() * scale) }

	// settle advances the accounting to the current stream time: the buffer
	// drains in real (scaled) time while the player does anything else.
	settle := func() units.Seconds {
		now := streamNow()
		dt := now - lastStream
		lastStream = now
		if dt <= 0 {
			return now
		}
		if !playing {
			tally.AddStartup(dt)
			return now
		}
		played := dt
		if played > buffer {
			played = buffer
		}
		buffer -= played
		tally.AddPlayback(played)
		if stall := dt - played; stall > 1e-9 {
			tally.AddRebuffer(stall)
		}
		return now
	}
	sleepStream := func(d units.Seconds) {
		if d > 0 {
			time.Sleep(time.Duration(float64(d) / scale * float64(time.Second)))
		}
	}

	l := ladder.SegmentSeconds
	for seg := 0; seg < total; seg++ {
		now := settle()
		// Idle at the buffer cap.
		if over := buffer + l - cfg.BufferCap; over > 1e-9 {
			sleepStream(over)
			now = settle()
		}

		ctx := &abr.Context{
			Now:            now,
			Buffer:         buffer,
			BufferCap:      cfg.BufferCap,
			PrevRung:       prevRung,
			Ladder:         ladder,
			SegmentIndex:   seg,
			TotalSegments:  total,
			LastThroughput: lastMbps,
		}
		capturedNow := now
		ctx.Predict = func(h units.Seconds) units.Mbps { return cfg.Predictor.Predict(capturedNow, h) }
		if quantile != nil {
			ctx.PredictQuantile = func(q float64, h units.Seconds) units.Mbps {
				return quantile.Quantile(capturedNow, h, q)
			}
		}
		decision := cfg.Controller.Decide(ctx)
		if decision.Rung == abr.NoRung {
			if buffer <= 1e-9 {
				decision.Rung = 0
			} else {
				result.Waits++
				wait := decision.WaitSeconds
				if wait <= 0 || wait > l {
					wait = l / 2
				}
				sleepStream(wait)
				seg--
				continue
			}
		}
		rung := ladder.ClampIndex(decision.Rung)

		nBytes, elapsed, err := fetcher.FetchSegment(seg, rung)
		if err != nil {
			return Result{}, fmt.Errorf("player: segment %d: %w", seg, err)
		}
		settle()
		buffer += l
		if !playing {
			playing = true
		}
		streamElapsed := elapsed.Seconds() * scale
		if streamElapsed <= 0 {
			streamElapsed = 1e-6
		}
		lastMbps = units.Mbps(float64(nBytes) * 8 / 1e6 / streamElapsed)
		cfg.Predictor.Observe(predictor.Sample{Mbps: lastMbps, Duration: units.Seconds(streamElapsed), EndTime: lastStream})
		tally.AddSegment(rung, utility(rung))
		prevRung = rung
	}
	// Drain the buffer without sleeping: the remaining playback is smooth by
	// construction.
	if playing && buffer > 0 {
		tally.AddPlayback(buffer)
		buffer = 0
	}
	result.Metrics = tally.Finalize(weights)
	result.Rungs = append([]int(nil), tally.Rungs()...)
	return result, nil
}
