package player

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/netem"
	"repro/internal/proto"
	"repro/internal/trace"
	"repro/internal/video"
)

// SessionSpec describes one self-contained prototype session: an in-process
// server on a loopback listener shaped by the trace, plus a player run
// against it. This is the unit of the Figure 12 experiment.
type SessionSpec struct {
	Trace         *trace.Trace
	Ladder        video.Ladder
	Sizes         video.SizeModel // nil = CBR
	TotalSegments int
	TimeScale     float64 // stream-time compression (e.g. 20)
	Player        Config  // Addr is filled in by RunSession
}

// RunSession starts a shaped server, plays the whole session and tears the
// server down. Each call is fully isolated: its own listener, shaper and
// connection.
func RunSession(spec SessionSpec) (Result, error) {
	if spec.Trace == nil || spec.Trace.Len() == 0 {
		return Result{}, fmt.Errorf("player: empty trace")
	}
	if spec.TotalSegments <= 0 {
		return Result{}, fmt.Errorf("player: non-positive segment count")
	}
	scale := spec.TimeScale
	if scale <= 0 {
		scale = 1
	}

	srv, err := proto.NewServer(spec.Ladder, spec.Sizes, spec.TotalSegments, nil)
	if err != nil {
		return Result{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return Result{}, err
	}
	shaped := netem.NewListener(ln, func() (*netem.Shaper, error) {
		return netem.NewShaper(spec.Trace, scale)
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, shaped) }()

	cfg := spec.Player
	cfg.Addr = ln.Addr().String()
	cfg.TimeScale = scale
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Minute
	}
	res, playErr := Play(cfg)

	cancel()
	select {
	case <-serveDone:
	case <-time.After(10 * time.Second):
		return Result{}, fmt.Errorf("player: server did not shut down")
	}
	return res, playErr
}

// SharedSessionSpec describes n players streaming concurrently through one
// trace-shaped bottleneck — the classic multi-client fairness setting: the
// shaper's capacity is shared, so each player's ABR loop reacts to the
// others' traffic.
type SharedSessionSpec struct {
	Trace         *trace.Trace
	Ladder        video.Ladder
	Sizes         video.SizeModel
	TotalSegments int
	TimeScale     float64
	Players       []Config // Addr/TimeScale filled in by RunSharedSessions
}

// RunSharedSessions starts one server on a shared-shaper listener and runs
// every player concurrently against it, returning per-player results in
// input order.
func RunSharedSessions(spec SharedSessionSpec) ([]Result, error) {
	if spec.Trace == nil || spec.Trace.Len() == 0 {
		return nil, fmt.Errorf("player: empty trace")
	}
	if spec.TotalSegments <= 0 || len(spec.Players) == 0 {
		return nil, fmt.Errorf("player: need segments and players")
	}
	scale := spec.TimeScale
	if scale <= 0 {
		scale = 1
	}
	srv, err := proto.NewServer(spec.Ladder, spec.Sizes, spec.TotalSegments, nil)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	shaper, err := netem.NewShaper(spec.Trace, scale)
	if err != nil {
		ln.Close()
		return nil, err
	}
	shared := netem.NewSharedListener(ln, shaper)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, shared) }()

	results := make([]Result, len(spec.Players))
	errs := make([]error, len(spec.Players))
	var wg sync.WaitGroup
	for i := range spec.Players {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := spec.Players[i]
			cfg.Addr = ln.Addr().String()
			cfg.TimeScale = scale
			if cfg.DialTimeout <= 0 {
				cfg.DialTimeout = 2 * time.Minute
			}
			results[i], errs[i] = Play(cfg)
		}(i)
	}
	wg.Wait()
	cancel()
	select {
	case <-serveDone:
	case <-time.After(10 * time.Second):
		return nil, fmt.Errorf("player: shared server did not shut down")
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("player %d: %w", i, err)
		}
	}
	return results, nil
}
