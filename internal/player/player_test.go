package player

import (
	"math"
	"testing"
	"time"

	"repro/internal/abr"
	"repro/internal/predictor"
	"repro/internal/trace"
	"repro/internal/video"

	_ "repro/internal/baseline"
	_ "repro/internal/core"

	"repro/internal/units"
)

type fixedController struct{ rung int }

func (f *fixedController) Name() string                     { return "fixed" }
func (f *fixedController) Decide(*abr.Context) abr.Decision { return abr.Decision{Rung: f.rung} }
func (f *fixedController) Reset()                           {}

func TestPlayValidation(t *testing.T) {
	if _, err := Play(Config{}); err == nil {
		t.Error("nil controller accepted")
	}
	if _, err := Play(Config{Controller: &fixedController{}, Predictor: predictor.NewEMA(units.Seconds(4))}); err == nil {
		t.Error("zero buffer cap accepted")
	}
	if _, err := Play(Config{
		Controller: &fixedController{},
		Predictor:  predictor.NewEMA(units.Seconds(4)),
		BufferCap:  units.Seconds(15),
		Addr:       "127.0.0.1:1",
	}); err == nil {
		t.Error("dead server address accepted")
	}
}

func TestRunSessionValidation(t *testing.T) {
	if _, err := RunSession(SessionSpec{}); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := RunSession(SessionSpec{Trace: trace.Constant(units.Mbps(5), units.Seconds(60)), Ladder: video.Prototype()}); err == nil {
		t.Error("zero segments accepted")
	}
}

func TestPrototypeSteadySession(t *testing.T) {
	// 5 Mb/s link, 2 Mb/s top rung, fixed top rung: a clean session with no
	// stalls and full utility, over real TCP at 20x compression
	// (30 stream-minutes in ~hundreds of wall milliseconds of transfer).
	res, err := RunSession(SessionSpec{
		Trace:         trace.Constant(units.Mbps(5), units.Seconds(4000)),
		Ladder:        video.Prototype(),
		TotalSegments: 40,
		TimeScale:     20,
		Player: Config{
			Controller: &fixedController{rung: 4},
			Predictor:  predictor.NewEMA(units.Seconds(4)),
			BufferCap:  units.Seconds(15),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Segments != 40 {
		t.Fatalf("segments = %d", res.Metrics.Segments)
	}
	if res.Metrics.SwitchRate != 0 {
		t.Errorf("switch rate = %v", res.Metrics.SwitchRate)
	}
	if res.Metrics.RebufferRatio > 0.02 {
		t.Errorf("rebuffer ratio = %v on an overprovisioned link", res.Metrics.RebufferRatio)
	}
	if math.Abs(res.Metrics.MeanUtility-1) > 1e-9 {
		t.Errorf("top-rung SSIM utility = %v, want 1", res.Metrics.MeanUtility)
	}
	if res.Manifest.TotalSegments != 40 {
		t.Errorf("manifest segments = %d", res.Manifest.TotalSegments)
	}
}

func TestPrototypeUnderprovisionedStalls(t *testing.T) {
	// 0.9 Mb/s link, fixed 2 Mb/s rung: downloads take ~2.2x real time, so
	// the session must accumulate substantial rebuffering.
	res, err := RunSession(SessionSpec{
		Trace:         trace.Constant(units.Mbps(0.9), units.Seconds(4000)),
		Ladder:        video.Prototype(),
		TotalSegments: 15,
		TimeScale:     25,
		Player: Config{
			Controller: &fixedController{rung: 4},
			Predictor:  predictor.NewEMA(units.Seconds(4)),
			BufferCap:  units.Seconds(15),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.RebufferRatio < 0.2 {
		t.Errorf("rebuffer ratio = %v, want heavy stalling", res.Metrics.RebufferRatio)
	}
}

func TestPrototypeSODAAdapts(t *testing.T) {
	// A link that collapses from 3 Mb/s to 0.5 Mb/s mid-session: SODA must
	// move down the ladder rather than stalling through the fade.
	tr := trace.New([]trace.Sample{{Duration: units.Seconds(40), Mbps: units.Mbps(3)}, {Duration: units.Seconds(120), Mbps: units.Mbps(0.5)}})
	ctrl, err := abr.New("soda", video.Prototype())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSession(SessionSpec{
		Trace:         tr,
		Ladder:        video.Prototype(),
		TotalSegments: 60,
		TimeScale:     20,
		Player: Config{
			Controller: ctrl,
			Predictor:  predictor.NewSafeEMA(),
			BufferCap:  units.Seconds(15),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// It must have used low rungs during the fade.
	lows := 0
	for _, r := range res.Rungs {
		if r <= 1 {
			lows++
		}
	}
	if lows < 10 {
		t.Errorf("SODA used low rungs only %d times through a long fade (rungs %v)", lows, res.Rungs)
	}
	if res.Metrics.RebufferRatio > 0.25 {
		t.Errorf("rebuffer ratio = %v, SODA should mostly ride the fade", res.Metrics.RebufferRatio)
	}
}

func TestPlayRespectsMaxSegments(t *testing.T) {
	res, err := RunSession(SessionSpec{
		Trace:         trace.Constant(units.Mbps(5), units.Seconds(1000)),
		Ladder:        video.Prototype(),
		TotalSegments: 50,
		TimeScale:     25,
		Player: Config{
			Controller:  &fixedController{rung: 0},
			Predictor:   predictor.NewEMA(units.Seconds(4)),
			BufferCap:   units.Seconds(15),
			MaxSegments: 8,
			DialTimeout: 30 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Segments != 8 {
		t.Errorf("segments = %d, want 8", res.Metrics.Segments)
	}
}

func TestSharedSessionsFairness(t *testing.T) {
	// Two SODA players share one 3 Mb/s bottleneck (prototype ladder tops at
	// 2 Mb/s): each should settle around the ~1.2-1.5 Mb/s rungs rather than
	// one starving while the other streams 2 Mb/s.
	mkPlayer := func() Config {
		ctrl, err := abr.New("soda", video.Prototype())
		if err != nil {
			t.Fatal(err)
		}
		return Config{
			Controller: ctrl,
			Predictor:  predictor.NewSafeEMA(),
			BufferCap:  units.Seconds(15),
		}
	}
	results, err := RunSharedSessions(SharedSessionSpec{
		Trace:         trace.Constant(units.Mbps(3), units.Seconds(4000)),
		Ladder:        video.Prototype(),
		TotalSegments: 40,
		TimeScale:     15,
		Players:       []Config{mkPlayer(), mkPlayer()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	// Judge the split by delivered bitrate, not SSIM utility (the SSIM curve
	// is nearly flat across the top rungs).
	meanRung := func(rungs []int) float64 {
		s := 0.0
		for _, r := range rungs {
			s += float64(r)
		}
		return s / float64(len(rungs))
	}
	var rungMeans, stalls [2]float64
	for i, r := range results {
		if r.Metrics.Segments != 40 {
			t.Errorf("player %d: segments = %d", i, r.Metrics.Segments)
		}
		rungMeans[i] = meanRung(r.Rungs)
		stalls[i] = r.Metrics.RebufferRatio
	}
	// Rough fairness: neither player dominates outright.
	lo, hi := rungMeans[0], rungMeans[1]
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi-lo > 1.5 {
		t.Errorf("unfair split: mean rungs %v", rungMeans)
	}
	// The link is oversubscribed (2 players x up-to-2 Mb/s on 3 Mb/s):
	// contention must show up as backing off the top rung or as stalls.
	// Both players streaming rung 4 continuously (4 Mb/s combined on a
	// 3 Mb/s link) without stalls would mean the bottleneck is not shared.
	if lo > 3.7 && hi > 3.7 && stalls[0]+stalls[1] < 0.01 {
		t.Errorf("no contention signature: mean rungs %v, stalls %v", rungMeans, stalls)
	}
}

func TestSharedSessionsValidation(t *testing.T) {
	if _, err := RunSharedSessions(SharedSessionSpec{}); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := RunSharedSessions(SharedSessionSpec{
		Trace:         trace.Constant(units.Mbps(3), units.Seconds(100)),
		Ladder:        video.Prototype(),
		TotalSegments: 10,
	}); err == nil {
		t.Error("no players accepted")
	}
}
