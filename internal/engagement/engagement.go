// Package engagement models viewer behaviour as a function of streaming
// quality, the mechanism behind two of the paper's headline artifacts:
//
//   - Figure 1: viewing percentage is negatively correlated with bitrate
//     switching rate — users watch less than 10% of a stream when the
//     switching rate exceeds 20%;
//   - Figure 13: SODA's smoothness gains translate into longer average
//     viewing durations (up to +5.91%) in the production A/B test.
//
// The model is a constant-hazard abandonment process: during playback a
// viewer abandons at a per-minute rate that grows with the session's
// switching rate and rebuffering ratio. The coefficients are calibrated to
// the anchors the paper cites:
//
//   - at a 20% switching rate the expected viewing fraction of a multi-hour
//     stream falls below 10% (Fig. 1);
//   - a 1 percentage-point increase in rebuffering ratio costs about three
//     minutes of viewing (Dobrian et al., cited as [7]).
package engagement

import (
	"math"
	"math/rand/v2"

	"repro/internal/units"
)

// Model is a quality-dependent abandonment hazard.
type Model struct {
	// BaseRatePerMin is the quality-independent abandonment hazard.
	BaseRatePerMin float64
	// SwitchCoeff scales the per-minute hazard per unit switching rate.
	SwitchCoeff float64
	// RebufferCoeff scales the per-minute hazard per unit rebuffering ratio.
	RebufferCoeff float64
}

// Default returns the calibrated model (see the package comment for the
// calibration anchors).
func Default() Model {
	return Model{
		BaseRatePerMin: 0.010,
		SwitchCoeff:    0.90,
		RebufferCoeff:  0.25,
	}
}

// HazardPerMin returns the abandonment rate per minute for a session with
// the given quality metrics.
func (m Model) HazardPerMin(switchRate, rebufferRatio float64) float64 {
	h := m.BaseRatePerMin + m.SwitchCoeff*switchRate + m.RebufferCoeff*rebufferRatio
	if h < 1e-6 {
		h = 1e-6
	}
	return h
}

// ExpectedViewingMinutes returns the expected watch time of a stream of the
// given length under the hazard: E[min(T, L)] with T ~ Exp(h).
//
// The switching rate and rebuffering ratio are dimensionless session
// statistics; only the durations carry a unit.
func (m Model) ExpectedViewingMinutes(switchRate, rebufferRatio float64, stream units.Minutes) units.Minutes {
	h := m.HazardPerMin(switchRate, rebufferRatio)
	return units.Minutes((1 - math.Exp(-h*float64(stream))) / h)
}

// ExpectedViewingFraction returns ExpectedViewingMinutes normalized by the
// stream length — the y-axis of Figure 1.
func (m Model) ExpectedViewingFraction(switchRate, rebufferRatio float64, stream units.Minutes) float64 {
	if stream <= 0 {
		return 0
	}
	return float64(m.ExpectedViewingMinutes(switchRate, rebufferRatio, stream) / stream)
}

// SampleViewingMinutes draws one stochastic viewing duration for a session,
// used by the production A/B simulator.
func (m Model) SampleViewingMinutes(switchRate, rebufferRatio float64, stream units.Minutes, rng *rand.Rand) units.Minutes {
	h := m.HazardPerMin(switchRate, rebufferRatio)
	t := units.Minutes(rng.ExpFloat64() / h)
	if t > stream {
		return stream
	}
	return t
}

// MarginalMinutesPerRebufferPoint returns the change in expected viewing
// minutes caused by one percentage point (0.01) of additional rebuffering,
// evaluated at the given operating point. Used to verify the "-3 minutes per
// 1% rebuffering" calibration anchor.
func (m Model) MarginalMinutesPerRebufferPoint(switchRate, rebufferRatio float64, stream units.Minutes) units.Minutes {
	base := m.ExpectedViewingMinutes(switchRate, rebufferRatio, stream)
	bumped := m.ExpectedViewingMinutes(switchRate, rebufferRatio+0.01, stream)
	return bumped - base
}
