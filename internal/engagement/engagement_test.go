package engagement

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/units"
)

func TestFigure1Anchor(t *testing.T) {
	// Users watch < 10% of the stream when switching rate > 20% (Fig. 1),
	// evaluated on a 2-hour sports stream with no rebuffering.
	m := Default()
	if frac := m.ExpectedViewingFraction(0.21, 0, units.Minutes(120)); frac >= 0.10 {
		t.Errorf("viewing fraction at 21%% switching = %v, want < 0.10", frac)
	}
	// A perfectly smooth session is mostly watched.
	if frac := m.ExpectedViewingFraction(0, 0, units.Minutes(120)); frac < 0.5 {
		t.Errorf("smooth-session viewing fraction = %v, want > 0.5", frac)
	}
}

func TestRebufferingAnchor(t *testing.T) {
	// ~3 minutes of viewing lost per 1% of rebuffering, near the typical
	// live operating point (low switching, low rebuffering, long stream).
	m := Default()
	d := m.MarginalMinutesPerRebufferPoint(0.02, 0.005, units.Minutes(180))
	if d >= 0 {
		t.Fatalf("rebuffering should reduce viewing, delta = %v", d)
	}
	if math.Abs(float64(-d-3)) > 2 {
		t.Errorf("minutes lost per rebuffering point = %v, want ~3", -d)
	}
}

func TestViewingFractionMonotone(t *testing.T) {
	m := Default()
	prev := math.Inf(1)
	for s := 0.0; s <= 0.5; s += 0.05 {
		f := m.ExpectedViewingFraction(s, 0, units.Minutes(120))
		if f >= prev {
			t.Fatalf("viewing fraction not decreasing in switching at %v", s)
		}
		if f <= 0 || f > 1 {
			t.Fatalf("viewing fraction out of range: %v", f)
		}
		prev = f
	}
}

func TestExpectedViewingBounds(t *testing.T) {
	m := Default()
	if v := m.ExpectedViewingMinutes(0, 0, units.Minutes(60)); v <= 0 || v > 60 {
		t.Errorf("expected viewing = %v", v)
	}
	if f := m.ExpectedViewingFraction(0, 0, units.Minutes(0)); f != 0 {
		t.Errorf("zero-length stream fraction = %v", f)
	}
	// Hazard floor keeps the model defined even with absurd inputs.
	if h := (Model{BaseRatePerMin: -5}).HazardPerMin(0, 0); h <= 0 {
		t.Errorf("hazard floor violated: %v", h)
	}
}

func TestSampleMatchesExpectation(t *testing.T) {
	m := Default()
	rng := rand.New(rand.NewPCG(5, 6))
	const n = 60000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := float64(m.SampleViewingMinutes(0.05, 0.002, units.Minutes(120), rng))
		if v < 0 || v > 120 {
			t.Fatalf("sample out of range: %v", v)
		}
		sum += v
	}
	want := float64(m.ExpectedViewingMinutes(0.05, 0.002, units.Minutes(120)))
	if got := sum / n; math.Abs(got-want) > 0.5 {
		t.Errorf("sample mean %v, analytic %v", got, want)
	}
}
