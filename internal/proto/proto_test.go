package proto

import (
	"bytes"
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/video"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello, frame")
	if err := WriteFrame(&buf, TypeSegment, payload); err != nil {
		t.Fatal(err)
	}
	frameType, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if frameType != TypeSegment || !bytes.Equal(got, payload) {
		t.Errorf("round trip: type=%d payload=%q", frameType, got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TypeManifestRequest, nil); err != nil {
		t.Fatal(err)
	}
	frameType, got, err := ReadFrame(&buf)
	if err != nil || frameType != TypeManifestRequest || len(got) != 0 {
		t.Errorf("empty frame: %d %q %v", frameType, got, err)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	// A forged oversized length prefix must be rejected before allocation.
	raw := []byte{TypeSegment, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Error("oversized frame accepted")
	}
	if err := WriteFrame(&bytes.Buffer{}, TypeSegment, make([]byte, MaxFrameBytes+1)); err == nil {
		t.Error("oversized write accepted")
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TypeSegment, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, _, err := ReadFrame(bytes.NewReader(raw[:len(raw)-2])); err == nil {
		t.Error("truncated frame accepted")
	}
	if _, _, err := ReadFrame(bytes.NewReader(raw[:3])); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestManifestValidation(t *testing.T) {
	good := Manifest{BitratesMbps: []float64{1, 2}, SegmentSeconds: 2, TotalSegments: 10}
	if err := good.Validate(); err != nil {
		t.Errorf("valid manifest rejected: %v", err)
	}
	bad := []Manifest{
		{SegmentSeconds: 2, TotalSegments: 10},
		{BitratesMbps: []float64{2, 1}, SegmentSeconds: 2, TotalSegments: 10},
		{BitratesMbps: []float64{0, 1}, SegmentSeconds: 2, TotalSegments: 10},
		{BitratesMbps: []float64{1, 2}, SegmentSeconds: 0, TotalSegments: 10},
		{BitratesMbps: []float64{1, 2}, SegmentSeconds: 2, TotalSegments: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad manifest %d accepted", i)
		}
	}
	if _, err := EncodeManifest(bad[0]); err == nil {
		t.Error("EncodeManifest accepted invalid manifest")
	}
	if _, err := DecodeManifest([]byte("{not json")); err == nil {
		t.Error("DecodeManifest accepted junk")
	}
}

func TestSegmentRequestRoundTrip(t *testing.T) {
	req := SegmentRequest{Index: 123456, Rung: 7}
	got, err := DecodeSegmentRequest(EncodeSegmentRequest(req))
	if err != nil || got != req {
		t.Errorf("round trip: %+v, %v", got, err)
	}
	if _, err := DecodeSegmentRequest([]byte{1, 2, 3}); err == nil {
		t.Error("short request accepted")
	}
}

func TestSegmentEncoding(t *testing.T) {
	req := SegmentRequest{Index: 5, Rung: 2}
	payload := EncodeSegment(req, 1000)
	echo, n, err := DecodeSegmentHeader(payload)
	if err != nil || echo != req || n != 1000 {
		t.Errorf("segment header: %+v %d %v", echo, n, err)
	}
	if _, _, err := DecodeSegmentHeader([]byte{1, 2}); err == nil {
		t.Error("short segment accepted")
	}
	// Filler is deterministic.
	again := EncodeSegment(req, 1000)
	if !bytes.Equal(payload, again) {
		t.Error("segment filler not deterministic")
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(video.Ladder{}, nil, 10, nil); err == nil {
		t.Error("empty ladder accepted")
	}
	if _, err := NewServer(video.Prototype(), nil, 0, nil); err == nil {
		t.Error("zero segments accepted")
	}
}

func startServer(t *testing.T, totalSegments int) (addr string, cancel func()) {
	t.Helper()
	srv, err := NewServer(video.Prototype(), nil, totalSegments, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ctx, ln)
	}()
	return ln.Addr().String(), func() {
		stop()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("server did not shut down")
		}
	}
}

func TestClientServerEndToEnd(t *testing.T) {
	addr, cancel := startServer(t, 30)
	defer cancel()

	c, err := Dial(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	m := c.Manifest()
	if m.TotalSegments != 30 || len(m.BitratesMbps) != 5 {
		t.Fatalf("manifest %+v", m)
	}
	// Fetch a few segments; sizes must match the CBR model.
	for rung := 0; rung < 5; rung++ {
		n, elapsed, err := c.FetchSegment(rung, rung)
		if err != nil {
			t.Fatal(err)
		}
		want := int(video.Prototype().SegmentMegabits(rung) * 1e6 / 8)
		if n != want {
			t.Errorf("rung %d: %d bytes, want %d", rung, n, want)
		}
		if elapsed <= 0 {
			t.Errorf("rung %d: non-positive elapsed %v", rung, elapsed)
		}
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	addr, cancel := startServer(t, 10)
	defer cancel()

	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.FetchSegment(99, 0); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range index: %v", err)
	}
	// The server closes the connection after a protocol error.
	c2, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, _, err := c2.FetchSegment(0, 99); err == nil {
		t.Error("out-of-range rung accepted")
	}
}

func TestServerGracefulShutdown(t *testing.T) {
	addr, cancel := startServer(t, 10)
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cancel() // must unblock promptly and close the client connection
	if _, _, err := c.FetchSegment(0, 0); err == nil {
		t.Error("fetch succeeded after shutdown")
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 200*time.Millisecond); err == nil {
		t.Error("dial to dead port succeeded")
	}
	var netErr net.Error
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	defer ln.Close()
	go func() {
		conn, _ := ln.Accept()
		if conn != nil {
			// Never answer the manifest request.
			time.Sleep(2 * time.Second)
			conn.Close()
		}
	}()
	_, err := Dial(ln.Addr().String(), 300*time.Millisecond)
	if err == nil {
		t.Fatal("dial to mute server succeeded")
	}
	if errors.As(err, &netErr) && !netErr.Timeout() {
		t.Errorf("expected timeout-ish error, got %v", err)
	}
}
