// Package proto implements the segment-streaming wire protocol of the local
// prototype — the stand-in for the Puffer platform's media server in the
// paper's prototype evaluation (§6.2; see DESIGN.md, substitutions).
//
// The protocol is a minimal binary request/response exchange over one TCP
// connection:
//
//	frame   := type(1 byte) length(4 bytes, big endian) payload(length bytes)
//	types   := ManifestRequest | Manifest | SegmentRequest | Segment | Error
//
// The manifest carries the bitrate ladder, segment duration and segment
// count (JSON payload; it is sent once and small). Segment payloads are
// deterministic filler bytes sized according to the requested rung — the
// prototype measures delivery dynamics, not codec output.
//
//soda:wire-boundary
package proto

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Frame types.
const (
	TypeManifestRequest byte = 1
	TypeManifest        byte = 2
	TypeSegmentRequest  byte = 3
	TypeSegment         byte = 4
	TypeError           byte = 5
)

// MaxFrameBytes bounds a frame payload; large enough for the biggest
// segment (60 Mb/s x 2 s = 15 MB) with headroom, small enough to stop a
// malformed length prefix from allocating unbounded memory.
const MaxFrameBytes = 64 << 20

// Manifest describes the stream a server offers.
type Manifest struct {
	BitratesMbps   []float64 `json:"bitrates_mbps"`
	SegmentSeconds float64   `json:"segment_seconds"`
	TotalSegments  int       `json:"total_segments"`
}

// Validate reports malformed manifests.
func (m *Manifest) Validate() error {
	if len(m.BitratesMbps) == 0 {
		return fmt.Errorf("proto: manifest with no bitrates")
	}
	prev := 0.0
	for _, b := range m.BitratesMbps {
		if b <= prev {
			return fmt.Errorf("proto: bitrates must be ascending and positive")
		}
		prev = b
	}
	if m.SegmentSeconds <= 0 {
		return fmt.Errorf("proto: non-positive segment duration")
	}
	if m.TotalSegments <= 0 {
		return fmt.Errorf("proto: non-positive segment count")
	}
	return nil
}

// SegmentRequest asks for one segment at one rung.
type SegmentRequest struct {
	Index int
	Rung  int
}

// SegmentHeader prefixes every segment payload.
const segmentHeaderBytes = 8

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, frameType byte, payload []byte) error {
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("proto: payload %d exceeds frame limit", len(payload))
	}
	var hdr [5]byte
	hdr[0] = frameType
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame from r, enforcing the size limit.
func ReadFrame(r io.Reader) (frameType byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrameBytes {
		return 0, nil, fmt.Errorf("proto: frame of %d bytes exceeds limit", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// EncodeManifest marshals a manifest payload.
func EncodeManifest(m Manifest) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(m)
}

// DecodeManifest parses and validates a manifest payload.
func DecodeManifest(payload []byte) (Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(payload, &m); err != nil {
		return Manifest{}, fmt.Errorf("proto: bad manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// EncodeSegmentRequest marshals a segment request payload.
func EncodeSegmentRequest(req SegmentRequest) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint32(buf[0:], uint32(req.Index))
	binary.BigEndian.PutUint32(buf[4:], uint32(req.Rung))
	return buf[:]
}

// DecodeSegmentRequest parses a segment request payload.
func DecodeSegmentRequest(payload []byte) (SegmentRequest, error) {
	if len(payload) != 8 {
		return SegmentRequest{}, fmt.Errorf("proto: segment request of %d bytes", len(payload))
	}
	return SegmentRequest{
		Index: int(binary.BigEndian.Uint32(payload[0:])),
		Rung:  int(binary.BigEndian.Uint32(payload[4:])),
	}, nil
}

// EncodeSegment builds a segment payload: an 8-byte echo of the request
// followed by sizeBytes of deterministic filler.
func EncodeSegment(req SegmentRequest, sizeBytes int) []byte {
	out := make([]byte, segmentHeaderBytes+sizeBytes)
	binary.BigEndian.PutUint32(out[0:], uint32(req.Index))
	binary.BigEndian.PutUint32(out[4:], uint32(req.Rung))
	// Deterministic, compressible-resistant filler derived from the request.
	seed := byte(req.Index*31 + req.Rung*7)
	for i := segmentHeaderBytes; i < len(out); i++ {
		seed = seed*197 + 13
		out[i] = seed
	}
	return out
}

// DecodeSegmentHeader parses the echo header of a segment payload, returning
// the request it answers and the media byte count.
func DecodeSegmentHeader(payload []byte) (SegmentRequest, int, error) {
	if len(payload) < segmentHeaderBytes {
		return SegmentRequest{}, 0, fmt.Errorf("proto: short segment payload (%d bytes)", len(payload))
	}
	req := SegmentRequest{
		Index: int(binary.BigEndian.Uint32(payload[0:])),
		Rung:  int(binary.BigEndian.Uint32(payload[4:])),
	}
	return req, len(payload) - segmentHeaderBytes, nil
}
