package proto

import (
	"fmt"
	"net"
	"time"
)

// Client is a minimal protocol client used by the prototype player.
// It is not safe for concurrent use: the protocol is strictly
// request/response over one connection, like a player's media socket.
type Client struct {
	conn     net.Conn
	manifest Manifest
	timeout  time.Duration
}

// Dial connects to the server and fetches the manifest.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = time.Minute
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("proto: dial %s: %w", addr, err)
	}
	c := &Client{conn: conn, timeout: timeout}
	if err := c.fetchManifest(); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

func (c *Client) fetchManifest() error {
	if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return err
	}
	if err := WriteFrame(c.conn, TypeManifestRequest, nil); err != nil {
		return err
	}
	frameType, payload, err := ReadFrame(c.conn)
	if err != nil {
		return err
	}
	if frameType == TypeError {
		return fmt.Errorf("proto: server error: %s", payload)
	}
	if frameType != TypeManifest {
		return fmt.Errorf("proto: expected manifest, got frame type %d", frameType)
	}
	m, err := DecodeManifest(payload)
	if err != nil {
		return err
	}
	c.manifest = m
	return nil
}

// Manifest returns the stream manifest fetched at dial time.
func (c *Client) Manifest() Manifest { return c.manifest }

// FetchSegment downloads one segment, returning the media byte count and the
// wall-clock download duration.
func (c *Client) FetchSegment(index, rung int) (bytes int, elapsed time.Duration, err error) {
	if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return 0, 0, err
	}
	start := time.Now()
	if err := WriteFrame(c.conn, TypeSegmentRequest, EncodeSegmentRequest(SegmentRequest{Index: index, Rung: rung})); err != nil {
		return 0, 0, err
	}
	frameType, payload, err := ReadFrame(c.conn)
	if err != nil {
		return 0, 0, err
	}
	elapsed = time.Since(start)
	switch frameType {
	case TypeError:
		return 0, elapsed, fmt.Errorf("proto: server error: %s", payload)
	case TypeSegment:
		echo, n, err := DecodeSegmentHeader(payload)
		if err != nil {
			return 0, elapsed, err
		}
		if echo.Index != index || echo.Rung != rung {
			return 0, elapsed, fmt.Errorf("proto: segment mismatch: asked (%d,%d), got (%d,%d)", index, rung, echo.Index, echo.Rung)
		}
		return n, elapsed, nil
	default:
		return 0, elapsed, fmt.Errorf("proto: unexpected frame type %d", frameType)
	}
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }
