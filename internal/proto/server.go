package proto

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/video"
)

// Server serves a synthetic stream over the segment protocol. Segment sizes
// follow a video.SizeModel so VBR experiments carry over from the simulator.
type Server struct {
	ladder   video.Ladder
	sizes    video.SizeModel
	total    int
	logger   *log.Logger
	listener net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer builds a server for totalSegments of the ladder's video.
// sizes may be nil for CBR. logger may be nil to discard logs.
func NewServer(ladder video.Ladder, sizes video.SizeModel, totalSegments int, logger *log.Logger) (*Server, error) {
	if ladder.Len() == 0 {
		return nil, errors.New("proto: empty ladder")
	}
	if totalSegments <= 0 {
		return nil, errors.New("proto: non-positive segment count")
	}
	if sizes == nil {
		sizes = video.CBR{Ladder: ladder}
	}
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	return &Server{
		ladder: ladder,
		sizes:  sizes,
		total:  totalSegments,
		logger: logger,
		conns:  map[net.Conn]struct{}{},
	}, nil
}

// Manifest returns the manifest the server advertises.
func (s *Server) Manifest() Manifest {
	mbps := make([]float64, s.ladder.Len())
	for i, r := range s.ladder.Bitrates() {
		mbps[i] = float64(r)
	}
	return Manifest{
		BitratesMbps:   mbps,
		SegmentSeconds: float64(s.ladder.SegmentSeconds),
		TotalSegments:  s.total,
	}
}

// Serve accepts connections on l until the context is cancelled or the
// listener fails. It always closes the listener before returning.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	defer l.Close()

	go func() {
		<-ctx.Done()
		l.Close()
		s.closeConns()
	}()

	for {
		conn, err := l.Accept()
		if err != nil {
			s.wg.Wait()
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		s.track(conn)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			if err := s.handle(conn); err != nil && !isClosedErr(err) {
				s.logger.Printf("proto: connection %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

func (s *Server) track(c net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conns[c] = struct{}{}
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, c)
	c.Close()
}

func (s *Server) closeConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
}

// handle serves one client connection until EOF.
func (s *Server) handle(conn net.Conn) error {
	for {
		if err := conn.SetReadDeadline(time.Now().Add(2 * time.Minute)); err != nil {
			return err
		}
		frameType, payload, err := ReadFrame(conn)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		switch frameType {
		case TypeManifestRequest:
			body, err := EncodeManifest(s.Manifest())
			if err != nil {
				return err
			}
			if err := WriteFrame(conn, TypeManifest, body); err != nil {
				return err
			}
		case TypeSegmentRequest:
			req, err := DecodeSegmentRequest(payload)
			if err != nil {
				return s.sendError(conn, err)
			}
			if req.Index < 0 || req.Index >= s.total || req.Rung < 0 || req.Rung >= s.ladder.Len() {
				return s.sendError(conn, fmt.Errorf("segment %d rung %d out of range", req.Index, req.Rung))
			}
			megabits := s.sizes.SegmentMegabits(req.Rung, req.Index)
			sizeBytes := int(megabits * 1e6 / 8)
			if err := WriteFrame(conn, TypeSegment, EncodeSegment(req, sizeBytes)); err != nil {
				return err
			}
		default:
			return s.sendError(conn, fmt.Errorf("unknown frame type %d", frameType))
		}
	}
}

func (s *Server) sendError(conn net.Conn, cause error) error {
	if err := WriteFrame(conn, TypeError, []byte(cause.Error())); err != nil {
		return err
	}
	return cause
}

func isClosedErr(err error) bool {
	return errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrClosedPipe)
}
