package proto

import (
	"bytes"
	"testing"
)

// FuzzReadFrame checks the frame reader never panics or over-allocates on
// arbitrary byte streams, and that valid frames round-trip.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	WriteFrame(&seed, TypeManifest, []byte(`{"x":1}`))
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{TypeSegment, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{TypeError, 0, 0, 0, 2, 'h'})

	f.Fuzz(func(t *testing.T, data []byte) {
		frameType, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully parsed frame must re-serialize to a parseable frame.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, frameType, payload); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		ft2, p2, err := ReadFrame(&buf)
		if err != nil || ft2 != frameType || !bytes.Equal(p2, payload) {
			t.Fatalf("round trip mismatch: %v", err)
		}
	})
}

// FuzzDecodeManifest checks manifest parsing rejects junk without panicking
// and that accepted manifests satisfy the invariants.
func FuzzDecodeManifest(f *testing.F) {
	good, _ := EncodeManifest(Manifest{BitratesMbps: []float64{1, 2}, SegmentSeconds: 2, TotalSegments: 5})
	f.Add(good)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"bitrates_mbps":[-1]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted manifest fails validation: %v", err)
		}
	})
}

// FuzzDecodeSegmentRequest checks request decoding is total.
func FuzzDecodeSegmentRequest(f *testing.F) {
	f.Add(EncodeSegmentRequest(SegmentRequest{Index: 3, Rung: 1}))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeSegmentRequest(data)
		if err != nil {
			return
		}
		back := EncodeSegmentRequest(req)
		if !bytes.Equal(back, data) {
			t.Fatalf("round trip mismatch: %v vs %v", back, data)
		}
	})
}
