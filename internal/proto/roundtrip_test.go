package proto

import (
	"math"
	"testing"

	"repro/internal/units"
	"repro/internal/video"
)

// TestManifestRoundTripLossless pins the wire-boundary contract: converting
// the typed ladder to the manifest's raw float64 fields, encoding, decoding
// and re-typing must reproduce the original unit values bit for bit.
// float64(units.Mbps) is a free conversion (same representation), and the
// JSON encoder emits shortest round-trip decimals, so nothing may move.
func TestManifestRoundTripLossless(t *testing.T) {
	ladders := map[string]video.Ladder{
		"youtube4k": video.YouTube4K(),
		"mobile":    video.Mobile(),
		"prototype": video.Prototype(),
		"prime":     video.PrimeVideo(),
	}
	for name, ladder := range ladders {
		// Launder exactly as Server.Manifest does: this package is the
		// sanctioned wire boundary.
		mbps := make([]float64, ladder.Len())
		for i, r := range ladder.Bitrates() {
			mbps[i] = float64(r)
		}
		m := Manifest{
			BitratesMbps:   mbps,
			SegmentSeconds: float64(ladder.SegmentSeconds),
			TotalSegments:  100,
		}
		payload, err := EncodeManifest(m)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		back, err := DecodeManifest(payload)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		for i := range mbps {
			got := units.Mbps(back.BitratesMbps[i])
			if math.Float64bits(float64(got)) != math.Float64bits(float64(ladder.Mbps(i))) {
				t.Errorf("%s: rung %d = %v, want %v (bit-exact)", name, i, got, ladder.Mbps(i))
			}
		}
		if got := units.Seconds(back.SegmentSeconds); math.Float64bits(float64(got)) != math.Float64bits(float64(ladder.SegmentSeconds)) {
			t.Errorf("%s: segment duration = %v, want %v (bit-exact)", name, got, ladder.SegmentSeconds)
		}
	}
}
