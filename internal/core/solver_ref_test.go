package core

import (
	"math"

	"repro/internal/units"
)

// This file preserves the seed repository's recursive monotone solver,
// verbatim up to renaming, as the reference implementation for differential
// testing. The production solver (the iterative branch-and-bound in
// solver.go) must return bit-identical first rungs and objectives;
// FuzzSolverEquivalence and TestSolverMatchesReference enforce that.

// searchMonotonicRef is the original recursive Algorithm 1 search.
func (m *CostModel) searchMonotonicRef(omegas []units.Mbps, x0 units.Seconds, prevRung, k, maxRung int) solveResult {
	if k <= 0 || len(omegas) == 0 {
		return solveResult{rung: -1}
	}
	if prevRung < 0 {
		// No previous bitrate: any first rung, then monotone either way.
		best := solveResult{rung: -1, obj: math.Inf(1)}
		for r := 0; r <= maxRung; r++ {
			c, x1, ok := m.stepCost(r, -1, x0, omegaAt(omegas, 0))
			if !ok {
				continue
			}
			rest, ok := m.bestContinuationRef(omegas, x1, r, 1, k-1, maxRung)
			if !ok {
				continue
			}
			if c+rest < best.obj {
				best = solveResult{rung: r, obj: c + rest}
			}
		}
		return best
	}
	upObj, up := m.searchDirRef(omegas, x0, prevRung, 0, k, maxRung, +1)
	downObj, down := m.searchDirRef(omegas, x0, prevRung, 0, k, maxRung, -1)
	switch {
	case up.rung >= 0 && (down.rung < 0 || upObj < downObj):
		return solveResult{rung: up.rung, obj: upObj}
	case down.rung >= 0:
		return solveResult{rung: down.rung, obj: downObj}
	default:
		return solveResult{rung: -1}
	}
}

// bestContinuationRef returns the cheapest monotone continuation of length k
// at planning depth, after committing rung r (either direction), or ok=false
// when none is feasible. k may be 0, in which case it costs nothing.
func (m *CostModel) bestContinuationRef(omegas []units.Mbps, x units.Seconds, r, depth, k, maxRung int) (float64, bool) {
	if k == 0 {
		return 0, true
	}
	upObj, up := m.searchDirRef(omegas, x, r, depth, k, maxRung, +1)
	downObj, down := m.searchDirRef(omegas, x, r, depth, k, maxRung, -1)
	switch {
	case up.rung >= 0 && (down.rung < 0 || upObj < downObj):
		return upObj, true
	case down.rung >= 0:
		return downObj, true
	default:
		return 0, false
	}
}

// searchDirRef is SearchUp (dir=+1) / SearchDown (dir=-1) from Algorithm 1:
// recursively extend the plan with rungs that keep the sequence monotone in
// the given direction (equality allowed, so flat sequences are reachable from
// both directions). It returns the total objective and the first rung chosen.
func (m *CostModel) searchDirRef(omegas []units.Mbps, x0 units.Seconds, prevRung, depth, k, maxRung, dir int) (float64, solveResult) {
	bestObj := math.Inf(1)
	best := solveResult{rung: -1}
	lo, hi := prevRung, maxRung // up: r in [prevRung, maxRung]
	if dir < 0 {
		lo, hi = 0, prevRung // down: r in [0, min(prevRung, maxRung)]
		if hi > maxRung {
			hi = maxRung
		}
	}
	for r := lo; r <= hi; r++ {
		c, x1, ok := m.stepCost(r, prevRung, x0, omegaAt(omegas, depth))
		if !ok {
			continue
		}
		total := c
		if k > 1 {
			restObj, rest := m.searchDirRef(omegas, x1, r, depth+1, k-1, maxRung, dir)
			if rest.rung < 0 {
				continue
			}
			total += restObj
		}
		if total < bestObj {
			bestObj = total
			best = solveResult{rung: r, obj: total}
		}
	}
	return bestObj, best
}
