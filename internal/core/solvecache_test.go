package core

import (
	"testing"

	"repro/internal/abr"
	"repro/internal/units"
	"repro/internal/video"
)

func TestSolveCacheRejectsBadSizes(t *testing.T) {
	for _, capacity := range []int{0, -1, maxCacheCapacity + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("capacity %d: no panic", capacity)
				}
			}()
			NewSolveCache(capacity)
		}()
	}
}

func TestSolveCacheShardCountIsPowerOfTwo(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 5, 8, 300} {
		c := NewSolveCacheSharded(1024, shards)
		n := len(c.shards)
		if n&(n-1) != 0 || n < 1 {
			t.Errorf("shards=%d: count %d not a power of two", shards, n)
		}
		if n > 256 {
			t.Errorf("shards=%d: count %d above cap", shards, n)
		}
	}
}

func TestSolveCacheRoundTrip(t *testing.T) {
	c := NewSolveCacheSharded(256, 2)
	k := cacheKey{fp: 42, x: units.Seconds(10.5), w: units.Mbps(7.25), prev: 2, k: 5, maxRung: 4}
	if _, ok := c.get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.put(k, 3)
	r, ok := c.get(k)
	if !ok || r != 3 {
		t.Fatalf("get = (%d, %v), want (3, true)", r, ok)
	}
	// A key differing in exactly one field must miss.
	for i, other := range []cacheKey{
		{fp: 43, x: k.x, w: k.w, prev: k.prev, k: k.k, maxRung: k.maxRung},
		{fp: k.fp, x: k.x + 0.01, w: k.w, prev: k.prev, k: k.k, maxRung: k.maxRung},
		{fp: k.fp, x: k.x, w: k.w + 0.01, prev: k.prev, k: k.k, maxRung: k.maxRung},
		{fp: k.fp, x: k.x, w: k.w, prev: k.prev + 1, k: k.k, maxRung: k.maxRung},
		{fp: k.fp, x: k.x, w: k.w, prev: k.prev, k: k.k - 1, maxRung: k.maxRung},
		{fp: k.fp, x: k.x, w: k.w, prev: k.prev, k: k.k, maxRung: k.maxRung - 1},
	} {
		if _, ok := c.get(other); ok {
			t.Errorf("variant %d: hit on a different key", i)
		}
	}
	// Overwriting the same key keeps one entry (idempotent put).
	c.put(k, 3)
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d after duplicate put, want 1", st.Entries)
	}
}

func TestSolveCacheEvictionAndStats(t *testing.T) {
	c := NewSolveCacheSharded(16, 1) // one 16-slot shard
	keyAt := func(i int) cacheKey {
		return cacheKey{fp: 7, x: units.Seconds(float64(i) * 0.01), w: units.Mbps(5), prev: 1, k: 5, maxRung: 3}
	}
	for i := 0; i < 200; i++ {
		c.put(keyAt(i), int32(i%4))
	}
	st := c.Stats()
	if st.Entries > st.Capacity {
		t.Fatalf("entries %d exceed capacity %d", st.Entries, st.Capacity)
	}
	if st.Evictions == 0 {
		t.Fatal("200 inserts into 16 slots produced no evictions")
	}
	hits := 0
	for i := 0; i < 200; i++ {
		if r, ok := c.get(keyAt(i)); ok {
			hits++
			if r != int32(i%4) {
				t.Fatalf("key %d: cached %d, want %d (cross-contamination)", i, r, i%4)
			}
		}
	}
	if hits == 0 {
		t.Fatal("no survivors after eviction churn")
	}
	st = c.Stats()
	if st.Lookups != 200 || int(st.Hits) != hits {
		t.Fatalf("stats lookups=%d hits=%d, want 200/%d", st.Lookups, st.Hits, hits)
	}
	if st.HitRate() <= 0 || st.HitRate() > 1 {
		t.Fatalf("hit rate %v outside (0, 1]", st.HitRate())
	}
	c.Reset()
	st = c.Stats()
	if st.Entries != 0 || st.Lookups != 0 || st.Hits != 0 || st.Evictions != 0 {
		t.Fatalf("Reset left state behind: %s", st.String())
	}
	if _, ok := c.get(keyAt(0)); ok {
		t.Fatal("hit after Reset")
	}
}

func TestModelFingerprintSeparatesConfigurations(t *testing.T) {
	base := DefaultConfig()
	ladder := video.YouTube4K()
	cap20 := units.Seconds(20)
	fp := modelFingerprint(base, ladder, cap20)

	distinct := []struct {
		name string
		fp   uint64
	}{
		{"ladder", modelFingerprint(base, video.Mobile(), cap20)},
		{"buffer-cap", modelFingerprint(base, ladder, units.Seconds(15))},
		{"beta", modelFingerprint(withCfg(base, func(c *Config) { c.Beta = 0.3 }), ladder, cap20)},
		{"gamma", modelFingerprint(withCfg(base, func(c *Config) { c.Gamma = 2 }), ladder, cap20)},
		{"target-buffer", modelFingerprint(withCfg(base, func(c *Config) { c.TargetBuffer = units.Seconds(9) }), ladder, cap20)},
		{"target-fraction", modelFingerprint(withCfg(base, func(c *Config) { c.TargetFraction = 0.5 }), ladder, cap20)},
		{"epsilon", modelFingerprint(withCfg(base, func(c *Config) { c.Epsilon = 0.4 }), ladder, cap20)},
		{"distortion", modelFingerprint(withCfg(base, func(c *Config) { c.Distortion = DistortionInverse }), ladder, cap20)},
		{"brute-force", modelFingerprint(withCfg(base, func(c *Config) { c.UseBruteForce = true }), ladder, cap20)},
		{"no-pruning", modelFingerprint(withCfg(base, func(c *Config) { c.DisablePruning = true }), ladder, cap20)},
	}
	seen := map[uint64]string{fp: "base"}
	for _, d := range distinct {
		if d.fp == fp {
			t.Errorf("%s: fingerprint equals base", d.name)
		}
		if prev, dup := seen[d.fp]; dup {
			t.Errorf("%s: fingerprint collides with %s", d.name, prev)
		}
		seen[d.fp] = d.name
	}

	// Memo sizing knobs shape which states occur, not what the solver
	// returns for a state, so they must NOT change the fingerprint — two
	// fleets differing only in local memo tuning share cache entries.
	same := []Config{
		withCfg(base, func(c *Config) { c.SolveMemoSize = 0 }),
		withCfg(base, func(c *Config) { c.SolveMemoSize = 4096 }),
		withCfg(base, func(c *Config) { c.MemoQuantum = 0.25 }),
	}
	for i, cfg := range same {
		if got := modelFingerprint(cfg, ladder, cap20); got != fp {
			t.Errorf("memo variant %d changed the fingerprint", i)
		}
	}
}

func withCfg(c Config, mutate func(*Config)) Config {
	mutate(&c)
	return c
}

// TestSharedCacheCrossSessionReuse replays one deterministic context stream
// through two consecutive controller instances sharing a cache: the second
// session must satisfy all of its post-memo lookups from the shared cache
// (zero new solves), decide identically to an uncached controller, and the
// traffic must surface through SolveStats.
func TestSharedCacheCrossSessionReuse(t *testing.T) {
	ladder := video.YouTube4K()
	cache := NewSolveCache(1 << 12)
	cfg := DefaultConfig()
	cfg.SharedCache = cache

	stream := func() []*abr.Context {
		rng := newSplitMix(99)
		out := make([]*abr.Context, 120)
		prev := abr.NoRung
		for i := range out {
			omega := units.Mbps(1 + rng.float()*50)
			out[i] = &abr.Context{
				Buffer:        units.Seconds(rng.float() * 18),
				BufferCap:     units.Seconds(20),
				PrevRung:      prev,
				Ladder:        ladder,
				SegmentIndex:  i,
				TotalSegments: 120,
				Predict:       func(units.Seconds) units.Mbps { return omega },
			}
			prev = int(rng.float() * float64(ladder.Len()))
		}
		return out
	}

	replay := func(c *Controller) []int {
		out := make([]int, 0, 120)
		for _, ctx := range stream() {
			out = append(out, c.Decide(ctx).Rung)
		}
		return out
	}

	want := replay(New(DefaultConfig(), ladder)) // uncached reference

	first := New(cfg, ladder)
	if got := replay(first); !equalInts(got, want) {
		t.Fatal("first shared-cache session diverged from the uncached reference")
	}
	second := New(cfg, ladder)
	if got := replay(second); !equalInts(got, want) {
		t.Fatal("second shared-cache session diverged from the uncached reference")
	}
	st := second.SolveStats()
	if st.SharedLookups == 0 {
		t.Fatal("second session never consulted the shared cache")
	}
	if st.SharedHits != st.SharedLookups {
		t.Fatalf("second session missed the warm cache: %d hits / %d lookups", st.SharedHits, st.SharedLookups)
	}
	if st.Solves != 0 {
		t.Fatalf("second session still solved %d problems with a warm cache", st.Solves)
	}
	if cs := cache.Stats(); cs.Hits == 0 || cs.Entries == 0 {
		t.Fatalf("cache saw no reuse: %s", cs.String())
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzSolveCacheKey drives random put/get traffic from several model
// fingerprints over adjacent-quantum state grids against a deliberately tiny
// cache (constant slot collisions, constant evictions), shadowing every
// insert in a map. The invariant under test is the no-cross-contamination
// contract: a hit implies full-key equality, so the returned rung must be
// exactly the one stored for that key — never a value written under any
// other fingerprint or adjacent quantum.
func FuzzSolveCacheKey(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	// Adjacent-quantum walks: consecutive x/w steps under one fingerprint.
	f.Add([]byte{0x00, 0x04, 0x08, 0x0c, 0x10, 0x14, 0x18, 0x1c})
	f.Add([]byte{0x01, 0x05, 0x09, 0x0d, 0x11, 0x15, 0x19, 0x1d})
	// Same state grid visited by every fingerprint in turn.
	f.Add([]byte{0x00, 0x40, 0x80, 0xc0, 0x00, 0x40, 0x80, 0xc0})
	f.Add([]byte{0xff, 0xfe, 0xfd, 0xfc, 0x0f, 0x1f, 0x2f, 0x3f})

	// Four genuinely distinct model fingerprints (different config/ladder/cap
	// combinations), as a mixed fleet would produce.
	base := DefaultConfig()
	noPrune := base
	noPrune.DisablePruning = true
	fps := [4]uint64{
		modelFingerprint(base, video.YouTube4K(), units.Seconds(20)),
		modelFingerprint(base, video.Mobile(), units.Seconds(20)),
		modelFingerprint(base, video.YouTube4K(), units.Seconds(15)),
		modelFingerprint(noPrune, video.PrimeVideo(), units.Seconds(20)),
	}

	f.Fuzz(func(t *testing.T, ops []byte) {
		cache := NewSolveCacheSharded(16, 1)
		shadow := map[cacheKey]int32{}
		for _, op := range ops {
			// Decode one operation from a single byte: 2 fingerprint bits,
			// 2 bits each for the x and w grid steps (multiples of the
			// default 0.01 quantum), and one bit each for prev/k/do-get.
			k := cacheKey{
				fp:      fps[op>>6&3],
				x:       units.Seconds(float64(op>>4&3) * 0.01),
				w:       units.Mbps(5 + float64(op>>2&3)*0.01),
				prev:    int32(op >> 1 & 1),
				k:       int32(5 - int(op>>1&1)),
				maxRung: 3,
			}
			if op&1 == 0 {
				// The stored value mimics real usage: a pure function of the
				// key, distinct across fingerprints and states.
				v := int32(k.hash() & 0x7fff)
				cache.put(k, v)
				shadow[k] = v
			} else if got, ok := cache.get(k); ok {
				want, present := shadow[k]
				if !present {
					t.Fatalf("hit %d for a key never stored: %+v", got, k)
				}
				if got != want {
					t.Fatalf("key %+v: cached %d, shadow %d (cross-contamination)", k, got, want)
				}
			}
		}
		st := cache.Stats()
		if st.Entries > st.Capacity {
			t.Fatalf("entries %d exceed capacity %d", st.Entries, st.Capacity)
		}
	})
}
