package core

import (
	"math"
	"testing"

	"repro/internal/abr"
	"repro/internal/units"
	"repro/internal/video"
)

func TestBinomialTable(t *testing.T) {
	cases := []struct {
		n, k, want int
	}{
		{0, 0, 1},
		{1, 0, 1},
		{1, 1, 1},
		{5, 0, 1},
		{5, 5, 1},
		{5, 2, 10},
		{6, 3, 20},
		{10, 5, 252},
		{52, 5, 2598960},
		// Out-of-range k.
		{5, -1, 0},
		{4, 7, 0},
		{-1, 0, 0}, // k=0 > n=-1
		// Large but representable throughout the running product.
		{40, 20, 137846528820},
		// Overflow-prone n: the running product overflows int64 and must
		// saturate instead of wrapping to garbage (or negative) counts.
		{70, 35, math.MaxInt},
		{200, 100, math.MaxInt},
		{1 << 40, 3, math.MaxInt},
	}
	for _, c := range cases {
		if got := binomial(c.n, c.k); got != c.want {
			t.Errorf("binomial(%d, %d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
	// Symmetry on a non-trivial diagonal.
	if a, b := binomial(30, 12), binomial(30, 18); a != b {
		t.Errorf("C(30,12)=%d != C(30,18)=%d", a, b)
	}
}

func TestCountMonotonicSequencesTable(t *testing.T) {
	cases := []struct {
		n, k, want int
	}{
		{6, 5, 252},               // YouTube4K at K=5: C(10,5)
		{4, 5, 56},                // Mobile at K=5: C(8,5)
		{6, 1, 6},                 // K=1 is just the rung count
		{1, 5, 1},                 // single-rung ladder: only the flat sequence
		{6, 0, 1},                 // empty plan
		{15, 8, 319770},           // production ladder at K=8: C(22,8)
		{1 << 30, 4, math.MaxInt}, // saturates, does not wrap
	}
	for _, c := range cases {
		if got := countMonotonicSequences(c.n, c.k); got != c.want {
			t.Errorf("countMonotonicSequences(%d, %d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestOmegaAtClamping(t *testing.T) {
	omegas := []units.Mbps{10, 20, 30}
	cases := []struct {
		depth int
		want  units.Mbps
	}{
		{0, units.Mbps(10)},
		{1, units.Mbps(20)},
		{2, units.Mbps(30)},
		{3, units.Mbps(30)},   // past the forecast: clamp to the last entry
		{100, units.Mbps(30)}, // far past: still the last entry
	}
	for _, c := range cases {
		if got := omegaAt(omegas, c.depth); got != c.want {
			t.Errorf("omegaAt(%v, %d) = %v, want %v", omegas, c.depth, got, c.want)
		}
	}
	single := []units.Mbps{7.5}
	for _, depth := range []int{0, 1, 9} {
		if got := omegaAt(single, depth); got != 7.5 {
			t.Errorf("omegaAt(single, %d) = %v, want 7.5", depth, got)
		}
	}
}

func TestSolverConfigKnobsValidate(t *testing.T) {
	mut := func(f func(*Config)) Config {
		c := DefaultConfig()
		f(&c)
		return c
	}
	bad := []Config{
		mut(func(c *Config) { c.SolveMemoSize = -1 }),
		mut(func(c *Config) { c.SolveMemoSize = 1<<20 + 1 }),
		mut(func(c *Config) { c.MemoQuantum = -0.5 }),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad solver config %d accepted", i)
		}
	}
	good := []Config{
		mut(func(c *Config) { c.SolveMemoSize = 0 }), // memo disabled
		mut(func(c *Config) { c.MemoQuantum = 0 }),   // exact-float keys
		mut(func(c *Config) { c.DisablePruning = true }),
	}
	for i, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("good solver config %d rejected: %v", i, err)
		}
	}
}

// TestPruningNodeReduction pins the headline claim: at K=5 on the YouTube4K
// ladder the branch-and-bound solver evaluates at least 3x fewer nodes than
// the unpruned monotone enumeration while committing identical decisions.
func TestPruningNodeReduction(t *testing.T) {
	cfg := DefaultConfig()
	offCfg := cfg
	offCfg.DisablePruning = true
	on := NewCostModel(cfg, video.YouTube4K(), units.Seconds(20))
	off := NewCostModel(offCfg, video.YouTube4K(), units.Seconds(20))
	rng := newSplitMix(7)
	const k, samples = 5, 3000
	maxRung := on.ladder.Len() - 1
	for i := 0; i < samples; i++ {
		x0 := units.Seconds(rng.float() * 20)
		prev := int(rng.float() * 6)
		if prev > 5 {
			prev = 5
		}
		omegas := []units.Mbps{units.Mbps(0.75 + rng.float()*119)}
		a := on.searchMonotonic(omegas, x0, prev, k, maxRung)
		b := off.searchMonotonic(omegas, x0, prev, k, maxRung)
		if a.rung != b.rung || a.obj != b.obj {
			t.Fatalf("sample %d: pruned (%d, %v) != unpruned (%d, %v)",
				i, a.rung, a.obj, b.rung, b.obj)
		}
	}
	pruned, plain := on.SolveStats(), off.SolveStats()
	if pruned.Solves != samples || plain.Solves != samples {
		t.Fatalf("solve counters: %d / %d", pruned.Solves, plain.Solves)
	}
	ratio := float64(plain.Nodes) / float64(pruned.Nodes)
	t.Logf("K=5 nodes/solve: pruned %.1f vs unpruned %.1f (%.2fx)",
		float64(pruned.Nodes)/samples, float64(plain.Nodes)/samples, ratio)
	if ratio < 3 {
		t.Errorf("pruning reduced nodes only %.2fx, want >= 3x", ratio)
	}
	if pruned.Pruned == 0 {
		t.Error("pruned counter never incremented")
	}
	if plain.Pruned != 0 {
		t.Errorf("pruning-disabled solver reported %d cuts", plain.Pruned)
	}
}

// TestSolveStatsReset checks the counters zero cleanly.
func TestSolveStatsReset(t *testing.T) {
	m := NewCostModel(DefaultConfig(), video.Mobile(), units.Seconds(20))
	m.searchMonotonic([]units.Mbps{8}, units.Seconds(10), 2, 4, 3)
	if st := m.SolveStats(); st.Solves == 0 || st.Nodes == 0 {
		t.Fatalf("stats not accumulating: %+v", st)
	}
	m.ResetSolveStats()
	if st := m.SolveStats(); st != (SolveStats{}) {
		t.Errorf("stats after reset: %+v", st)
	}
}

// TestDecideSteadyStateZeroAlloc pins the allocation-free steady-state solve
// path at K=5: after warmup, Decide must not allocate.
func TestDecideSteadyStateZeroAlloc(t *testing.T) {
	for _, memo := range []bool{true, false} {
		cfg := DefaultConfig()
		if !memo {
			cfg.SolveMemoSize = 0
		}
		c := New(cfg, video.YouTube4K())
		ctx := &abr.Context{
			Buffer:    units.Seconds(11),
			BufferCap: units.Seconds(20),
			PrevRung:  3,
			Ladder:    video.YouTube4K(),
			Predict:   func(units.Seconds) units.Mbps { return units.Mbps(30) },
		}
		c.Decide(ctx) // warmup: grows the solver scratch once
		allocs := testing.AllocsPerRun(200, func() {
			c.Decide(ctx)
		})
		if allocs != 0 {
			t.Errorf("memo=%v: Decide allocates %.1f times per op in steady state", memo, allocs)
		}
	}
}

// TestPrewarmZeroAllocFirstDecide pins the Prewarm contract: after Prewarm
// at the session's buffer cap, even the very first Decide is allocation-free
// — the cost model and solver scratch, Decide's only lazy allocations, are
// already bound. Fleets and servers rely on this to keep arena-backed decide
// paths at zero allocs from the first event.
func TestPrewarmZeroAllocFirstDecide(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SolveMemoSize = 0
	c := New(cfg, video.YouTube4K())
	c.Prewarm(units.Seconds(20))
	ctx := &abr.Context{
		Buffer:    units.Seconds(11),
		BufferCap: units.Seconds(20),
		PrevRung:  3,
		Ladder:    video.YouTube4K(),
		Predict:   func(units.Seconds) units.Mbps { return units.Mbps(30) },
	}
	allocs := testing.AllocsPerRun(1, func() {
		c.Decide(ctx)
	})
	if allocs != 0 {
		t.Errorf("first Decide after Prewarm allocates %.1f times per op", allocs)
	}
	// Prewarm must bind the same model a cold Decide would: decisions match
	// a never-prewarmed twin across a spread of states.
	cold := New(cfg, video.YouTube4K())
	for i := 0; i < 50; i++ {
		s := &abr.Context{
			Buffer:    units.Seconds(float64(i%20) + 0.5),
			BufferCap: units.Seconds(20),
			PrevRung:  i%6 - 1,
			Ladder:    video.YouTube4K(),
			Predict:   func(units.Seconds) units.Mbps { return units.Mbps(1 + float64(i)) },
		}
		if a, b := c.Decide(s), cold.Decide(s); a != b {
			t.Fatalf("state %d: prewarmed %+v != cold %+v", i, a, b)
		}
	}
}

// TestDecideMemo checks the Decide-level memo: hits on repeated quantized
// states, identical decisions with and without the memo on a realistic
// trajectory, and a flush on Reset and on buffer cap changes.
func TestDecideMemo(t *testing.T) {
	ladder := video.YouTube4K()
	cfg := DefaultConfig()
	memoed := New(cfg, ladder)
	exactCfg := cfg
	exactCfg.SolveMemoSize = 0
	exact := New(exactCfg, ladder)

	ctx := func(buf, omega float64, prev int) *abr.Context {
		return &abr.Context{
			Buffer: units.Seconds(buf), BufferCap: units.Seconds(20), PrevRung: prev, Ladder: ladder,
			Predict: func(units.Seconds) units.Mbps { return units.Mbps(omega) },
		}
	}

	// A jittery but slowly-moving trajectory: buffers and predictions within
	// a quantum of each other must coalesce into memo hits.
	rng := newSplitMix(99)
	for i := 0; i < 400; i++ {
		buf := 10 + rng.float()*0.004 // all quantize to 10.00
		omega := 24 + rng.float()*0.004
		a := memoed.Decide(ctx(buf, omega, 4))
		b := exact.Decide(ctx(buf, omega, 4))
		if a.Rung != b.Rung {
			t.Fatalf("step %d: memoized rung %d != exact %d", i, a.Rung, b.Rung)
		}
	}
	st := memoed.SolveStats()
	if st.MemoLookups == 0 {
		t.Fatal("memo never consulted")
	}
	if st.MemoHits < st.MemoLookups-8 {
		t.Errorf("memo hits %d of %d lookups; near-identical states should coalesce",
			st.MemoHits, st.MemoLookups)
	}

	// Reset flushes: the first post-Reset decision must miss.
	before := memoed.SolveStats().MemoHits
	memoed.Reset()
	memoed.Decide(ctx(10.001, 24.001, 4))
	after := memoed.SolveStats()
	if after.MemoHits != before {
		t.Error("memo survived Reset")
	}

	// A buffer cap change invalidates the cache too.
	memoed.Decide(ctx(10.001, 24.001, 4)) // hit at cap 20
	hits := memoed.SolveStats().MemoHits
	d := memoed.Decide(&abr.Context{
		Buffer: units.Seconds(10), BufferCap: units.Seconds(40), PrevRung: 4, Ladder: ladder,
		Predict: func(units.Seconds) units.Mbps { return units.Mbps(24) },
	})
	if d.Rung < 0 || d.Rung >= ladder.Len() {
		t.Fatalf("cap-change decision %+v", d)
	}
	if got := memoed.SolveStats().MemoHits; got != hits {
		t.Error("memo survived a buffer cap change")
	}
}

// TestMemoQuantumZeroExactKeys checks the documented MemoQuantum=0 behaviour:
// exact-float keys still hit on exactly repeated states.
func TestMemoQuantumZeroExactKeys(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemoQuantum = 0
	c := New(cfg, video.Mobile())
	ctx := &abr.Context{
		Buffer: units.Seconds(9.125), BufferCap: units.Seconds(20), PrevRung: 2, Ladder: video.Mobile(),
		Predict: func(units.Seconds) units.Mbps { return units.Mbps(6.5) },
	}
	first := c.Decide(ctx)
	second := c.Decide(ctx)
	if first.Rung != second.Rung {
		t.Fatalf("decisions differ on identical state: %d vs %d", first.Rung, second.Rung)
	}
	if st := c.SolveStats(); st.MemoHits == 0 {
		t.Errorf("exact-key memo never hit on repeated state: %+v", st)
	}
}
