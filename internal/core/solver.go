package core

import (
	"math"

	"repro/internal/units"
)

// solveResult is a solver's answer for one planning problem.
type solveResult struct {
	rung int     // first rung to commit, or -1 when no feasible plan exists
	obj  float64 // objective of the best plan (undefined when rung < 0)
}

// pruneGuard is the safety margin of the branch-and-bound cut. A subtree is
// discarded only when its optimistic cost exceeds the incumbent by more than
// this margin, so floating-point noise in the left-to-right prefix sums
// (at most a few ulps of the total, ~1e-12 at the objective scales the cost
// model produces) can never prune a plan the reference recursion would have
// preferred. The margin only forfeits pruning of near-tied subtrees, which
// are then rejected exactly at their leaves.
const pruneGuard = 1e-9

// SolveStats counts the work performed by the monotone solver since the last
// ResetSolveStats. The counters quantify the branch-and-bound win (nodes
// evaluated vs. the unpruned enumeration) in benchmarks and ablations.
type SolveStats struct {
	// Solves is the number of planning problems solved.
	Solves uint64
	// Nodes is the number of candidate (rung, state) expansions evaluated —
	// one stepCost call each. This is the solver's unit of work.
	Nodes uint64
	// Leaves is the number of complete length-K plans scored.
	Leaves uint64
	// Pruned is the number of expansions discarded by the admissible bound
	// before their subtree was explored.
	Pruned uint64
	// MemoLookups / MemoHits count Decide-level memo traffic. They are only
	// populated by Controller.SolveStats; CostModel itself never memoizes.
	MemoLookups uint64
	MemoHits    uint64
	// SharedLookups / SharedHits count this controller's traffic against the
	// fleet-wide Config.SharedCache (consulted after a local memo miss). Like
	// the memo counters they are populated by Controller.SolveStats only.
	SharedLookups uint64
	SharedHits    uint64
	// TableLookups / TableHits / TableFallbacks count this controller's
	// traffic against the fleet-wide Config.DecisionTable (consulted before
	// the memo). A fallback is a lookup outside the table's domain that fell
	// through to the solve pipeline; lookups = hits + fallbacks. Populated by
	// Controller.SolveStats only.
	TableLookups   uint64
	TableHits      uint64
	TableFallbacks uint64
}

// Add accumulates another counter snapshot into s, so harnesses can sum the
// per-session controller stats of a dataset run.
func (s *SolveStats) Add(o SolveStats) {
	s.Solves += o.Solves
	s.Nodes += o.Nodes
	s.Leaves += o.Leaves
	s.Pruned += o.Pruned
	s.MemoLookups += o.MemoLookups
	s.MemoHits += o.MemoHits
	s.SharedLookups += o.SharedLookups
	s.SharedHits += o.SharedHits
	s.TableLookups += o.TableLookups
	s.TableHits += o.TableHits
	s.TableFallbacks += o.TableFallbacks
}

// Delta returns the per-counter difference s−o, for telemetry call sites
// that snapshot cumulative stats around a Decide and want that decision's
// work. o must be an earlier snapshot of the same counters.
func (s SolveStats) Delta(o SolveStats) SolveStats {
	return SolveStats{
		Solves:         s.Solves - o.Solves,
		Nodes:          s.Nodes - o.Nodes,
		Leaves:         s.Leaves - o.Leaves,
		Pruned:         s.Pruned - o.Pruned,
		MemoLookups:    s.MemoLookups - o.MemoLookups,
		MemoHits:       s.MemoHits - o.MemoHits,
		SharedLookups:  s.SharedLookups - o.SharedLookups,
		SharedHits:     s.SharedHits - o.SharedHits,
		TableLookups:   s.TableLookups - o.TableLookups,
		TableHits:      s.TableHits - o.TableHits,
		TableFallbacks: s.TableFallbacks - o.TableFallbacks,
	}
}

// SolveStats returns the work counters accumulated by this model's solver.
func (m *CostModel) SolveStats() SolveStats { return m.stats }

// ResetSolveStats zeroes the work counters.
func (m *CostModel) ResetSolveStats() { m.stats = SolveStats{} }

// solveScratch is the preallocated search state reused across solves so the
// steady-state solve path performs no allocations. Slices grow monotonically
// to the largest horizon seen by this model.
type solveScratch struct {
	cur   []int           // next rung to try at each depth (the DFS cursor)
	rung  []int           // committed rung per depth on the current path
	stepC []float64       // cost of the committed step per depth
	x     []units.Seconds // buffer level entering each depth; x[0] = x0
	pref  []float64       // left-associated prefix cost of steps [0, d)
	wsum  []units.Mbps    // suffix sums of ω̂: wsum[d] = Σ_{j>=d} omegaAt(omegas, j)
}

func (s *solveScratch) ensure(k int) {
	if len(s.cur) >= k {
		return
	}
	s.cur = make([]int, k)
	s.rung = make([]int, k)
	s.stepC = make([]float64, k)
	s.x = make([]units.Seconds, k+1)
	s.pref = make([]float64, k+1)
	s.wsum = make([]units.Mbps, k+1)
}

// omegaAt returns the bandwidth prediction for planning step depth. A
// constant predictor passes a single-element slice; the theory experiments
// pass per-step exact predictions (§3.2 allows piecewise-constant forecasts).
func omegaAt(omegas []units.Mbps, depth int) units.Mbps {
	if depth < len(omegas) {
		return omegas[depth]
	}
	return omegas[len(omegas)-1]
}

// searchMonotonic implements Algorithm 1 of the paper as an iterative
// branch-and-bound: it searches only monotonically non-increasing or
// non-decreasing bitrate sequences of length k starting from (x0, prevRung),
// returning the best first rung. Partial plans whose cost so far plus an
// admissible lower bound on the remainder (see remainderBound) already exceed
// the incumbent are pruned; with pruning disabled the search degenerates to
// the plain monotone enumeration of the original recursive solver.
//
// The search visits plans in the same lexicographic order as the reference
// recursion (up direction before down, rungs ascending at every depth) and
// scores complete plans with the identical right-associated summation, so it
// returns bit-identical first rungs and objectives — FuzzSolverEquivalence
// checks this against the retained reference implementation.
//
// maxRung caps every candidate (the §5.1 throughput-cap heuristic); pass
// ladder.Len()-1 to disable. prevRung < 0 (session start) admits any first
// rung with no switching charge, then monotonic continuations in both
// directions.
func (m *CostModel) searchMonotonic(omegas []units.Mbps, x0 units.Seconds, prevRung, k, maxRung int) solveResult {
	if k <= 0 || len(omegas) == 0 || maxRung < 0 {
		return solveResult{rung: -1}
	}
	m.stats.Solves++
	s := &m.scratch
	s.ensure(k)
	// Suffix sums of the per-step predictions feed the remainder bound.
	s.wsum[k] = 0
	for d := k - 1; d >= 0; d-- {
		s.wsum[d] = s.wsum[d+1] + omegaAt(omegas, d)
	}
	best := solveResult{rung: -1, obj: math.Inf(1)}
	if prevRung < 0 {
		// No previous bitrate: any first rung, then monotone either way.
		for r := 0; r <= maxRung; r++ {
			m.stats.Nodes++
			c, x1, ok := m.stepCost(r, -1, x0, omegaAt(omegas, 0))
			if !ok {
				continue
			}
			if k == 1 {
				m.stats.Leaves++
				if c < best.obj {
					best = solveResult{rung: r, obj: c}
				}
				continue
			}
			// The continuation may go either way, so the remainder bound uses
			// the full rung range [0, maxRung].
			if !m.noPrune && best.rung >= 0 &&
				c+m.rateMin[maxRung]*float64(s.wsum[1]) >= best.obj+pruneGuard {
				m.stats.Pruned++
				continue
			}
			s.rung[0], s.stepC[0] = r, c
			s.x[1], s.pref[1] = x1, c
			m.searchDirBB(omegas, prevRung, 1, k, maxRung, +1, math.Inf(1), &best)
			m.searchDirBB(omegas, prevRung, 1, k, maxRung, -1, math.Inf(1), &best)
		}
		return best
	}
	// Seed the prune threshold with the flat stay-at-prevRung plan, the
	// steady-state optimum. The seed only tightens pruning — it never becomes
	// the incumbent directly (the DFS rediscovers it unpruned, because the
	// guard exempts plans within pruneGuard of the threshold), so tie-breaking
	// stays bit-identical to the reference recursion.
	seed := math.Inf(1)
	if !m.noPrune && prevRung <= maxRung {
		total, x := 0.0, x0
		for d := 0; d < k; d++ {
			m.stats.Nodes++
			c, x1, ok := m.stepCost(prevRung, prevRung, x, omegaAt(omegas, d))
			if !ok {
				total = math.Inf(1)
				break
			}
			total += c
			x = x1
		}
		seed = total
	}
	s.x[0], s.pref[0] = x0, 0
	m.searchDirBB(omegas, prevRung, 0, k, maxRung, +1, seed, &best)
	m.searchDirBB(omegas, prevRung, 0, k, maxRung, -1, seed, &best)
	return best
}

// dirRange returns the rung interval admissible at a depth whose predecessor
// is prev: up keeps r in [prev, maxRung], down keeps r in [0, min(prev,
// maxRung)] (equality allowed in both, so flat plans are reachable from
// either direction, exactly as in Algorithm 1).
func dirRange(prev, maxRung, dir int) (lo, hi int) {
	if dir > 0 {
		return prev, maxRung
	}
	hi = prev
	if hi > maxRung {
		hi = maxRung
	}
	return 0, hi
}

// remainderBound is the admissible lower bound on the cost of the remaining
// plan after committing rung r at the current depth: every future step pays
// at least its distortion term ω̂(d)·v[r']·Δt/rate[r'], and buffer and
// switching costs are non-negative, so the remainder costs at least
// min_{r' ≤ hi} (v[r']·Δt/mbps[r']) · Σ remaining ω̂. The per-rung minimum is
// precomputed as rateMin (a prefix minimum, tight because the distortion rate
// is non-increasing in the rung index).
func (m *CostModel) remainderBound(r, maxRung, dir int, wsumRest units.Mbps) float64 {
	hi := maxRung
	if dir < 0 && r < hi {
		hi = r
	}
	return m.rateMin[hi] * float64(wsumRest)
}

// searchDirBB is the iterative branch-and-bound core shared by both
// directions: an explicit depth-first search over monotone continuations from
// startDepth, updating *best in place. The path state for depths below
// startDepth must already be in the scratch (used by the session-start case,
// which pins the first rung before exploring continuations). seed is an
// upper bound on the optimal objective used only to tighten pruning (the
// flat-plan cost, or +Inf); the incumbent itself is updated exclusively from
// evaluated leaves so ties resolve in reference order.
func (m *CostModel) searchDirBB(omegas []units.Mbps, basePrev, startDepth, k, maxRung, dir int, seed float64, best *solveResult) {
	s := &m.scratch
	prune := !m.noPrune
	d := startDepth
	prev := basePrev
	if d > 0 {
		prev = s.rung[d-1]
	}
	lo, _ := dirRange(prev, maxRung, dir)
	s.cur[d] = lo
	for {
		prev = basePrev
		if d > 0 {
			prev = s.rung[d-1]
		}
		_, hi := dirRange(prev, maxRung, dir)
		r := s.cur[d]
		if r > hi {
			// This depth is exhausted: backtrack.
			d--
			if d < startDepth {
				return
			}
			s.cur[d]++
			continue
		}
		limit := best.obj
		if seed < limit {
			limit = seed
		}
		if prune && !math.IsInf(limit, 1) {
			// Optimistic cost of taking rung r here: the step pays exactly
			// ω̂·rate[r] in distortion and at least its switching charge;
			// the buffer term and the remainder are bounded below. When even
			// that exceeds the threshold, skip without evaluating the step.
			opt := s.pref[d] + float64(omegaAt(omegas, d))*m.rate[r]
			dv := (m.v[r] - m.v[prev]) * m.gapInv
			opt += m.gamma * dv * dv
			opt += m.remainderBound(r, maxRung, dir, s.wsum[d+1])
			if opt >= limit+pruneGuard {
				m.stats.Pruned++
				s.cur[d]++
				continue
			}
		}
		m.stats.Nodes++
		c, x1, ok := m.stepCost(r, prev, s.x[d], omegaAt(omegas, d))
		if !ok {
			s.cur[d]++
			continue
		}
		pref := s.pref[d] + c
		if prune && pref+m.remainderBound(r, maxRung, dir, s.wsum[d+1]) >= limit+pruneGuard {
			m.stats.Pruned++
			s.cur[d]++
			continue
		}
		s.rung[d], s.stepC[d] = r, c
		if d == k-1 {
			// Complete plan: score it with the right-associated sum the
			// recursive reference produces, so ties break identically.
			m.stats.Leaves++
			total := 0.0
			for i := k - 1; i >= 0; i-- {
				total = s.stepC[i] + total
			}
			if total < best.obj {
				*best = solveResult{rung: s.rung[0], obj: total}
			}
			s.cur[d]++
			continue
		}
		s.x[d+1], s.pref[d+1] = x1, pref
		d++
		lo, _ = dirRange(r, maxRung, dir)
		s.cur[d] = lo
	}
}

// Solve runs the production monotone solver on one planning problem and
// reports the committed first rung, its objective, and whether any monotone
// plan was feasible. It is the exported entry point for benchmarks and
// downstream tools; the controller's Decide wraps it with the §5.1 cap,
// horizon fallback, and the decision memo.
func (m *CostModel) Solve(omegas []units.Mbps, x0 units.Seconds, prevRung, k, maxRung int) (rung int, obj float64, ok bool) {
	res := m.searchMonotonic(omegas, x0, prevRung, k, maxRung)
	return res.rung, res.obj, res.rung >= 0
}

// bruteForce enumerates every rung sequence of length k (the exponential
// reference solver) under the same cap, returning the best first rung.
func (m *CostModel) bruteForce(omegas []units.Mbps, x0 units.Seconds, prevRung, k, maxRung int) solveResult {
	if k <= 0 || len(omegas) == 0 {
		return solveResult{rung: -1}
	}
	seq := make([]int, k)
	best := solveResult{rung: -1, obj: math.Inf(1)}
	for {
		cost := m.sequenceCost(seq, prevRung, x0, omegas)
		if cost < best.obj {
			best = solveResult{rung: seq[0], obj: cost}
		}
		// Advance the odometer.
		i := k - 1
		for i >= 0 {
			seq[i]++
			if seq[i] <= maxRung {
				break
			}
			seq[i] = 0
			i--
		}
		if i < 0 {
			return best
		}
	}
}

// countMonotonicSequences bounds the monotone search space: the number of
// non-decreasing length-k sequences over n rungs is C(n+k-1, k). Algorithm 1
// explores at most twice this (up plus down), versus n^k for brute force.
func countMonotonicSequences(n, k int) int {
	return binomial(n+k-1, k)
}

// binomial computes C(n, k), saturating at math.MaxInt instead of silently
// overflowing (the count is only used to size and report search spaces, where
// "too large to enumerate" is the right answer for astronomically large n).
func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := 1
	for i := 0; i < k; i++ {
		if res > math.MaxInt/(n-i) {
			return math.MaxInt
		}
		res = res * (n - i) / (i + 1)
	}
	return res
}
