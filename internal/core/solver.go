package core

import (
	"math"
)

// solveResult is a solver's answer for one planning problem.
type solveResult struct {
	rung int     // first rung to commit, or -1 when no feasible plan exists
	obj  float64 // objective of the best plan (undefined when rung < 0)
}

// omegaAt returns the bandwidth prediction for planning step depth. A
// constant predictor passes a single-element slice; the theory experiments
// pass per-step exact predictions (§3.2 allows piecewise-constant forecasts).
func omegaAt(omegas []float64, depth int) float64 {
	if depth < len(omegas) {
		return omegas[depth]
	}
	return omegas[len(omegas)-1]
}

// searchMonotonic implements Algorithm 1 of the paper: it searches only
// monotonically non-increasing or non-decreasing bitrate sequences of length
// k starting from (x0, prevRung), returning the best first rung.
//
// maxRung caps every candidate (the §5.1 throughput-cap heuristic); pass
// ladder.Len()-1 to disable. prevRung < 0 (session start) admits any first
// rung with no switching charge, then monotonic continuations in both
// directions.
func (m *CostModel) searchMonotonic(omegas []float64, x0 float64, prevRung, k, maxRung int) solveResult {
	if k <= 0 || len(omegas) == 0 {
		return solveResult{rung: -1}
	}
	if prevRung < 0 {
		// No previous bitrate: any first rung, then monotone either way.
		best := solveResult{rung: -1, obj: math.Inf(1)}
		for r := 0; r <= maxRung; r++ {
			c, x1, ok := m.stepCost(r, -1, x0, omegaAt(omegas, 0))
			if !ok {
				continue
			}
			rest, ok := m.bestContinuation(omegas, x1, r, 1, k-1, maxRung)
			if !ok {
				continue
			}
			if c+rest < best.obj {
				best = solveResult{rung: r, obj: c + rest}
			}
		}
		return best
	}
	upObj, up := m.searchDir(omegas, x0, prevRung, 0, k, maxRung, +1)
	downObj, down := m.searchDir(omegas, x0, prevRung, 0, k, maxRung, -1)
	switch {
	case up.rung >= 0 && (down.rung < 0 || upObj < downObj):
		return solveResult{rung: up.rung, obj: upObj}
	case down.rung >= 0:
		return solveResult{rung: down.rung, obj: downObj}
	default:
		return solveResult{rung: -1}
	}
}

// bestContinuation returns the cheapest monotone continuation of length k at
// planning depth, after committing rung r (either direction), or ok=false
// when none is feasible. k may be 0, in which case it costs nothing.
func (m *CostModel) bestContinuation(omegas []float64, x float64, r, depth, k, maxRung int) (float64, bool) {
	if k == 0 {
		return 0, true
	}
	upObj, up := m.searchDir(omegas, x, r, depth, k, maxRung, +1)
	downObj, down := m.searchDir(omegas, x, r, depth, k, maxRung, -1)
	switch {
	case up.rung >= 0 && (down.rung < 0 || upObj < downObj):
		return upObj, true
	case down.rung >= 0:
		return downObj, true
	default:
		return 0, false
	}
}

// searchDir is SearchUp (dir=+1) / SearchDown (dir=-1) from Algorithm 1:
// recursively extend the plan with rungs that keep the sequence monotone in
// the given direction (equality allowed, so flat sequences are reachable from
// both directions). It returns the total objective and the first rung chosen.
func (m *CostModel) searchDir(omegas []float64, x0 float64, prevRung, depth, k, maxRung, dir int) (float64, solveResult) {
	bestObj := math.Inf(1)
	best := solveResult{rung: -1}
	lo, hi := prevRung, maxRung // up: r in [prevRung, maxRung]
	if dir < 0 {
		lo, hi = 0, prevRung // down: r in [0, min(prevRung, maxRung)]
		if hi > maxRung {
			hi = maxRung
		}
	}
	for r := lo; r <= hi; r++ {
		c, x1, ok := m.stepCost(r, prevRung, x0, omegaAt(omegas, depth))
		if !ok {
			continue
		}
		total := c
		if k > 1 {
			restObj, rest := m.searchDir(omegas, x1, r, depth+1, k-1, maxRung, dir)
			if rest.rung < 0 {
				continue
			}
			total += restObj
		}
		if total < bestObj {
			bestObj = total
			best = solveResult{rung: r, obj: total}
		}
	}
	return bestObj, best
}

// bruteForce enumerates every rung sequence of length k (the exponential
// reference solver) under the same cap, returning the best first rung.
func (m *CostModel) bruteForce(omegas []float64, x0 float64, prevRung, k, maxRung int) solveResult {
	if k <= 0 || len(omegas) == 0 {
		return solveResult{rung: -1}
	}
	seq := make([]int, k)
	best := solveResult{rung: -1, obj: math.Inf(1)}
	for {
		cost := m.sequenceCost(seq, prevRung, x0, omegas)
		if cost < best.obj {
			best = solveResult{rung: seq[0], obj: cost}
		}
		// Advance the odometer.
		i := k - 1
		for i >= 0 {
			seq[i]++
			if seq[i] <= maxRung {
				break
			}
			seq[i] = 0
			i--
		}
		if i < 0 {
			return best
		}
	}
}

// countMonotonicSequences bounds the monotone search space: the number of
// non-decreasing length-k sequences over n rungs is C(n+k-1, k). Algorithm 1
// explores at most twice this (up plus down), versus n^k for brute force.
func countMonotonicSequences(n, k int) int {
	return binomial(n+k-1, k)
}

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := 1
	for i := 0; i < k; i++ {
		res = res * (n - i) / (i + 1)
	}
	return res
}
