package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/abr"
	"repro/internal/units"
	"repro/internal/video"
)

// Property: the monotonic solver's committed rung always comes from a
// feasible plan — replaying [rung, rung...] or the solver's own search never
// drops the buffer below zero on the first step.
func TestSolverFirstStepAlwaysFeasible(t *testing.T) {
	m := NewCostModel(DefaultConfig(), video.YouTube4K(), units.Seconds(20))
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		x0 := units.Seconds(rng.Float64() * 20)
		prev := rng.IntN(6)
		omega := units.Mbps(0.5 + rng.Float64()*100)
		res := m.searchMonotonic([]units.Mbps{omega}, x0, prev, 5, 5)
		if res.rung < 0 {
			return true // infeasible is an acceptable answer; Decide handles it
		}
		_, x1, ok := m.stepCost(res.rung, prev, x0, omega)
		return ok && x1 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the monotonic solver never reports a better objective than brute
// force (brute force is exhaustive), and both agree on feasibility.
func TestSolverNeverBeatsBruteForce(t *testing.T) {
	m := NewCostModel(DefaultConfig(), video.Mobile(), units.Seconds(20))
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		x0 := units.Seconds(rng.Float64() * 20)
		prev := rng.IntN(4)
		omega := []units.Mbps{units.Mbps(0.5 + rng.Float64()*30)}
		k := 1 + rng.IntN(5)
		fast := m.searchMonotonic(omega, x0, prev, k, 3)
		slow := m.bruteForce(omega, x0, prev, k, 3)
		if (fast.rung < 0) != (slow.rung < 0) {
			return false
		}
		if fast.rung < 0 {
			return true
		}
		return slow.obj <= fast.obj+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: with a single-step horizon the monotonic search IS brute force:
// identical objectives.
func TestSolversIdenticalAtK1(t *testing.T) {
	m := NewCostModel(DefaultConfig(), video.YouTube4K(), units.Seconds(20))
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		x0 := units.Seconds(rng.Float64() * 20)
		prev := rng.IntN(6)
		omega := []units.Mbps{units.Mbps(0.5 + rng.Float64()*100)}
		fast := m.searchMonotonic(omega, x0, prev, 1, 5)
		slow := m.bruteForce(omega, x0, prev, 1, 5)
		if fast.rung != slow.rung {
			return math.Abs(fast.obj-slow.obj) < 1e-12 // tie
		}
		if fast.rung < 0 {
			return true
		}
		return math.Abs(fast.obj-slow.obj) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the branch-and-bound solver is exact — identical first rung and
// objective to the retained recursive reference, with and without pruning,
// including per-step (non-constant) bandwidth forecasts and caps below the
// previous rung.
func TestSolverMatchesReference(t *testing.T) {
	m := NewCostModel(DefaultConfig(), video.YouTube4K(), units.Seconds(20))
	noPruneCfg := DefaultConfig()
	noPruneCfg.DisablePruning = true
	plain := NewCostModel(noPruneCfg, video.YouTube4K(), units.Seconds(20))
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		x0 := units.Seconds(rng.Float64() * 20)
		prev := rng.IntN(7) - 1 // includes session start
		k := 1 + rng.IntN(6)
		maxRung := rng.IntN(6)
		omegas := make([]units.Mbps, 1+rng.IntN(3))
		for i := range omegas {
			omegas[i] = units.Mbps(0.3 + rng.Float64()*90)
		}
		ref := m.searchMonotonicRef(omegas, x0, prev, k, maxRung)
		for _, got := range []solveResult{
			m.searchMonotonic(omegas, x0, prev, k, maxRung),
			plain.searchMonotonic(omegas, x0, prev, k, maxRung),
		} {
			if got.rung != ref.rung {
				return false
			}
			if ref.rung >= 0 && math.Abs(got.obj-ref.obj) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Decide always returns a rung in range or a wait with positive
// duration, for any state the player can legally present.
func TestDecideTotalOverStateSpace(t *testing.T) {
	ctrl := New(DefaultConfig(), video.PrimeVideo())
	ladder := video.PrimeVideo()
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 4))
		ctx := &abr.Context{
			Buffer:    units.Seconds(rng.Float64() * 20),
			BufferCap: units.Seconds(20),
			PrevRung:  rng.IntN(ladder.Len()+1) - 1, // includes NoRung
			Ladder:    ladder,
			Predict:   func(units.Seconds) units.Mbps { return units.Mbps(rng.Float64() * 40) },
		}
		d := ctrl.Decide(ctx)
		if d.Rung == abr.NoRung {
			return d.WaitSeconds > 0
		}
		return d.Rung >= 0 && d.Rung < ladder.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: the cost model's step cost is non-negative and finite for every
// feasible transition.
func TestStepCostNonNegativeFinite(t *testing.T) {
	m := NewCostModel(DefaultConfig(), video.Mobile(), units.Seconds(20))
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		x0 := units.Seconds(rng.Float64() * 20)
		rung := rng.IntN(4)
		prev := rng.IntN(5) - 1
		omega := units.Mbps(0.1 + rng.Float64()*60)
		c, x1, ok := m.stepCost(rung, prev, x0, omega)
		if !ok {
			return true
		}
		return c >= 0 && !math.IsInf(c, 0) && !math.IsNaN(c) && x1 >= 0 && x1 <= 20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: sequenceCost is additive — the cost of a sequence equals the sum
// of its step costs along the induced buffer trajectory.
func TestSequenceCostAdditive(t *testing.T) {
	m := NewCostModel(DefaultConfig(), video.Mobile(), units.Seconds(20))
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 6))
		x0 := units.Seconds(5 + rng.Float64()*10)
		prev := rng.IntN(4)
		omega := []units.Mbps{units.Mbps(4 + rng.Float64()*10)}
		seq := make([]int, 1+rng.IntN(4))
		for i := range seq {
			seq[i] = rng.IntN(4)
		}
		total := m.sequenceCost(seq, prev, x0, omega)
		sum := 0.0
		x := x0
		p := prev
		for i, r := range seq {
			c, x1, ok := m.stepCost(r, p, x, omegaAt(omega, i))
			if !ok {
				return math.IsInf(total, 1)
			}
			sum += c
			x = x1
			p = r
		}
		return math.Abs(total-sum) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
