package core

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// ContinuousProblem is the continuous relaxation of the finite-time optimal
// control problem (3) in Appendix A, over actions u_t = 1/r_t:
//
//	min  Σ_t  WDistortion·ω_t·u_t²  +  Beta·b(x_t)  +  Gamma·(u_t − u_{t−1})²
//	s.t. x_t = x_{t−1} + ω_t·u_t − 1        (Δt = 1)
//	     0 ≤ x_t ≤ Xmax,  UMin ≤ u_t ≤ UMax
//	     x_0, u_0 given; optionally x_K = TerminalX with a final switching
//	     term Gamma·(TerminalU − u_K)².
//
// This is what the theory experiments solve: the exponentially decaying
// perturbation property (Fig. 6), the monotone structure of Lemma A.10
// (WDistortion = Beta = 0) and its Theorem 4.3 approximation bound.
// The buffer-state quantities (X0, Target, Xmax) are seconds of video and the
// bandwidths are Mb/s; the actions u = 1/r are inverse rates in the Δt = 1
// normalization of Appendix A and deliberately stay dimensionless float64
// (U0, UMin, UMax), as does the objective value.
type ContinuousProblem struct {
	Omega       []units.Mbps // per-step bandwidth, length K
	X0          units.Seconds
	U0          float64
	Beta        float64
	Gamma       float64
	Epsilon     float64
	Target      units.Seconds // x̄
	Xmax        units.Seconds
	UMin, UMax  float64
	WDistortion float64 // weight on the ω·u² distortion term (1 = paper)
	// Terminal, when non-nil, pins the final state (indicator terminal cost
	// of Algorithm 2, implemented as a stiff quadratic penalty) and adds the
	// trailing switching term toward TerminalU.
	Terminal *Terminal
}

// Terminal is the (σ, ν) pair of Algorithm 2's indicator terminal cost.
type Terminal struct {
	X units.Seconds
	U float64
}

// ContinuousSolution is the optimizer's trajectory.
type ContinuousSolution struct {
	U   []float64       // length K
	X   []units.Seconds // length K, X[t] after action U[t]
	Obj float64
}

// Validate reports malformed problems.
func (p *ContinuousProblem) Validate() error {
	if len(p.Omega) == 0 {
		return fmt.Errorf("core: continuous problem with empty horizon")
	}
	for i, w := range p.Omega {
		if w <= 0 {
			return fmt.Errorf("core: non-positive bandwidth %v at step %d", w, i)
		}
	}
	if p.UMin <= 0 || p.UMax < p.UMin {
		return fmt.Errorf("core: invalid action range [%v, %v]", p.UMin, p.UMax)
	}
	if p.Xmax <= 0 {
		return fmt.Errorf("core: non-positive Xmax %v", p.Xmax)
	}
	if p.Epsilon <= 0 || p.Epsilon > 1 {
		return fmt.Errorf("core: epsilon %v outside (0, 1]", p.Epsilon)
	}
	return nil
}

// penaltyWeight is the stiffness of the soft buffer-range and terminal
// constraints.
const penaltyWeight = 1e5

// objective evaluates the penalized objective and (optionally) its gradient
// with respect to u (grad may be nil).
func (p *ContinuousProblem) objective(u []float64, grad []float64) float64 {
	k := len(u)
	// The relaxation is solved in the normalized Δt = 1 coordinates of
	// Appendix A, so the dimensioned boundary fields drop to float64 once
	// here and all inner arithmetic is dimensionless.
	target := float64(p.Target)
	xmax := float64(p.Xmax)
	x := make([]float64, k)
	// Forward pass: buffer trajectory.
	prev := float64(p.X0)
	for t := 0; t < k; t++ {
		x[t] = prev + float64(p.Omega[t])*u[t] - 1
		prev = x[t]
	}
	bufferDeriv := func(xt float64) float64 {
		d := xt - target
		if d <= 0 {
			return 2 * d
		}
		return 2 * p.Epsilon * d
	}
	bufferCost := func(xt float64) float64 {
		d := xt - target
		if d <= 0 {
			return d * d
		}
		return p.Epsilon * d * d
	}
	obj := 0.0
	// dObj/dx_t accumulated for the chain rule (x_t depends on u_1..u_t).
	dx := make([]float64, k)
	for t := 0; t < k; t++ {
		obj += p.WDistortion * float64(p.Omega[t]) * u[t] * u[t]
		obj += p.Beta * bufferCost(x[t])
		dx[t] += p.Beta * bufferDeriv(x[t])
		// Soft box constraints on x.
		if x[t] < 0 {
			obj += penaltyWeight * x[t] * x[t]
			dx[t] += 2 * penaltyWeight * x[t]
		} else if x[t] > xmax {
			over := x[t] - xmax
			obj += penaltyWeight * over * over
			dx[t] += 2 * penaltyWeight * over
		}
		du := u[t] - p.uPrev(u, t)
		obj += p.Gamma * du * du
	}
	if p.Terminal != nil {
		dT := x[k-1] - float64(p.Terminal.X)
		obj += penaltyWeight * dT * dT
		dx[k-1] += 2 * penaltyWeight * dT
		duT := p.Terminal.U - u[k-1]
		obj += p.Gamma * duT * duT
	}
	if grad != nil {
		// Backward pass: suffix sums of dx give dObj/du_t via x-chain.
		suffix := 0.0
		for t := k - 1; t >= 0; t-- {
			suffix += dx[t]
			grad[t] = 2*p.WDistortion*float64(p.Omega[t])*u[t] + suffix*float64(p.Omega[t])
			grad[t] += 2 * p.Gamma * (u[t] - p.uPrev(u, t))
			if t+1 < k {
				grad[t] -= 2 * p.Gamma * (u[t+1] - u[t])
			} else if p.Terminal != nil {
				grad[t] -= 2 * p.Gamma * (p.Terminal.U - u[t])
			}
		}
	}
	return obj
}

func (p *ContinuousProblem) uPrev(u []float64, t int) float64 {
	if t == 0 {
		return p.U0
	}
	return u[t-1]
}

// Solve runs projected gradient descent with backtracking line search.
// iters bounds the number of outer iterations; 2000 is ample for K <= 50.
func (p *ContinuousProblem) Solve(iters int) (ContinuousSolution, error) {
	if err := p.Validate(); err != nil {
		return ContinuousSolution{}, err
	}
	k := len(p.Omega)
	u := make([]float64, k)
	// Feasible-ish start: hold the previous action, clamped into range.
	start := math.Max(p.UMin, math.Min(p.UMax, p.U0))
	for t := range u {
		u[t] = start
	}
	grad := make([]float64, k)
	trial := make([]float64, k)
	obj := p.objective(u, grad)
	step := 1e-3
	for it := 0; it < iters; it++ {
		// Backtracking projected step.
		improved := false
		for attempt := 0; attempt < 40; attempt++ {
			for t := range trial {
				v := u[t] - step*grad[t]
				if v < p.UMin {
					v = p.UMin
				}
				if v > p.UMax {
					v = p.UMax
				}
				trial[t] = v
			}
			trialObj := p.objective(trial, nil)
			if trialObj < obj-1e-15 {
				copy(u, trial)
				obj = trialObj
				step *= 1.3
				improved = true
				break
			}
			step *= 0.5
			if step < 1e-14 {
				break
			}
		}
		if !improved {
			break
		}
		obj = p.objective(u, grad)
	}
	// Final forward pass for the trajectory.
	x := make([]units.Seconds, k)
	prev := float64(p.X0)
	for t := 0; t < k; t++ {
		xt := prev + float64(p.Omega[t])*u[t] - 1
		x[t] = units.Seconds(xt)
		prev = xt
	}
	return ContinuousSolution{U: u, X: x, Obj: p.objective(u, nil)}, nil
}

// IsMonotone reports whether the action sequence (prefixed with u0) is
// monotone non-increasing or non-decreasing within tolerance — the structure
// Lemma A.10 proves for the switching-cost-only problem.
func IsMonotone(u0 float64, u []float64, tol float64) bool {
	inc, dec := true, true
	prev := u0
	for _, v := range u {
		if v < prev-tol {
			inc = false
		}
		if v > prev+tol {
			dec = false
		}
		prev = v
	}
	return inc || dec
}

// PerturbationDecay solves the same continuous problem from two initial
// (x0, u0) pairs and returns the per-step trajectory distance
// |x_t − x'_t| + |u_t − u'_t| — the quantity Figure 6 illustrates decaying
// exponentially.
func PerturbationDecay(p ContinuousProblem, x0b units.Seconds, u0b float64, iters int) ([]float64, error) {
	a, err := p.Solve(iters)
	if err != nil {
		return nil, err
	}
	pb := p
	pb.X0, pb.U0 = x0b, u0b
	b, err := pb.Solve(iters)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(a.U))
	for t := range out {
		out[t] = math.Abs(float64(a.X[t]-b.X[t])) + math.Abs(a.U[t]-b.U[t])
	}
	return out, nil
}
