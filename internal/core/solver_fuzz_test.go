package core

import (
	"math"
	"testing"

	"repro/internal/units"
	"repro/internal/video"
)

// fuzzLadders are the ladders the differential harness draws from: the two
// evaluation ladders of the paper plus the prototype and production ladders,
// so rung counts 4, 5, 6 and 15 are all exercised.
func fuzzLadders() []video.Ladder {
	return []video.Ladder{
		video.YouTube4K(),
		video.Mobile(),
		video.Prototype(),
		video.PrimeVideo(),
	}
}

// FuzzSolverEquivalence is the differential-testing harness proving the
// branch-and-bound solver exact: for random planning problems, the pruned
// solver, the pruning-disabled solver, and the retained recursive reference
// (searchMonotonicRef) must commit the identical first rung with objectives
// within 1e-9; brute force over the full (non-monotone) space must agree on
// feasibility, never be beaten, and may only disagree on the rung when its
// non-monotone plan is strictly better (the Figure 8 mismatch regime).
func FuzzSolverEquivalence(f *testing.F) {
	// Seed corpus: a grid over ladder, buffer fraction, throughput, previous
	// rung, horizon, cap and switching weight — 64 cases covering session
	// start (prev = -1), caps below the previous rung, starvation-prone
	// buffers, overflow-prone throughputs and the low-gamma mismatch regime.
	for lad := uint8(0); lad < 4; lad++ {
		for _, xFrac := range []float64{0.02, 0.55, 0.98} {
			for _, omega := range []float64{0.4, 6, 35, 140} {
				prev := int8(lad) - 1 // -1, 0, 1, 2 across ladders
				k := uint8(1 + (lad+uint8(omega))%4)
				f.Add(lad, xFrac, omega, omega, prev, k, uint8(7), 5.0)
			}
		}
	}
	f.Add(uint8(0), 0.5, 2.0, 2.0, int8(5), uint8(4), uint8(1), 5.0)   // cap below prev
	f.Add(uint8(1), 0.9, 12.0, 1.0, int8(3), uint8(4), uint8(7), 0.06) // low gamma, dropping ω̂
	f.Add(uint8(2), 0.0, 0.1, 0.1, int8(0), uint8(3), uint8(7), 0.3)   // empty buffer, starving
	f.Add(uint8(3), 1.0, 900.0, 900.0, int8(-1), uint8(4), uint8(7), 1.0)

	f.Fuzz(func(t *testing.T, ladPick uint8, xFrac, omega0, omega1 float64, prevRaw int8, kRaw, maxRaw uint8, gammaRaw float64) {
		ladders := fuzzLadders()
		ladder := ladders[int(ladPick)%len(ladders)]
		n := ladder.Len()

		if math.IsNaN(xFrac) || math.IsInf(xFrac, 0) || math.IsNaN(omega0) ||
			math.IsNaN(omega1) || math.IsNaN(gammaRaw) {
			t.Skip("non-finite input")
		}
		const bufferCap = 20.0
		x0 := units.Seconds(math.Min(1, math.Max(0, xFrac)) * bufferCap)
		clampOmega := func(w float64) float64 {
			return math.Min(1000, math.Max(0.05, math.Abs(w)))
		}
		omegas := []units.Mbps{units.Mbps(clampOmega(omega0)), units.Mbps(clampOmega(omega1))}
		prev := int(prevRaw)
		if prev < -1 {
			prev = -1
		}
		if prev >= n {
			prev = n - 1
		}
		k := 1 + int(kRaw)%4 // k <= 4 keeps brute force affordable
		maxRung := int(maxRaw) % n

		cfg := DefaultConfig()
		cfg.Gamma = math.Min(100, math.Max(0, math.Abs(gammaRaw)))
		pruned := NewCostModel(cfg, ladder, bufferCap)
		noPruneCfg := cfg
		noPruneCfg.DisablePruning = true
		unpruned := NewCostModel(noPruneCfg, ladder, bufferCap)

		fast := pruned.searchMonotonic(omegas, x0, prev, k, maxRung)
		plain := unpruned.searchMonotonic(omegas, x0, prev, k, maxRung)
		ref := pruned.searchMonotonicRef(omegas, x0, prev, k, maxRung)

		for _, got := range []struct {
			name string
			res  solveResult
		}{{"pruned", fast}, {"unpruned", plain}} {
			if got.res.rung != ref.rung {
				t.Fatalf("%s solver rung %d != reference %d (x0=%v ω=%v prev=%d k=%d cap=%d γ=%v)",
					got.name, got.res.rung, ref.rung, x0, omegas, prev, k, maxRung, cfg.Gamma)
			}
			if ref.rung >= 0 && math.Abs(got.res.obj-ref.obj) > 1e-9 {
				t.Fatalf("%s solver objective %v != reference %v (x0=%v ω=%v prev=%d k=%d cap=%d)",
					got.name, got.res.obj, ref.obj, x0, omegas, prev, k, maxRung)
			}
		}

		slow := pruned.bruteForce(omegas, x0, prev, k, maxRung)
		if (fast.rung < 0) != (slow.rung < 0) {
			t.Fatalf("feasibility disagreement: monotone %d vs brute force %d (x0=%v ω=%v prev=%d k=%d cap=%d)",
				fast.rung, slow.rung, x0, omegas, prev, k, maxRung)
		}
		if fast.rung < 0 {
			return
		}
		if slow.obj > fast.obj+1e-9 {
			t.Fatalf("brute force worse than monotone: %v > %v (x0=%v ω=%v prev=%d k=%d cap=%d)",
				slow.obj, fast.obj, x0, omegas, prev, k, maxRung)
		}
		// A rung mismatch against brute force is legitimate in exactly two
		// cases, both already admitted by the checks above: a strictly better
		// non-monotone plan (the Theorem 4.3 approximation gap, measured by
		// Figure 8) or an exact objective tie broken in the solvers'
		// different enumeration orders.
	})
}
