package core

import (
	"fmt"
	"math"

	"repro/internal/units"
	"repro/internal/video"
)

// OfflineOptimal computes (approximately) the clairvoyant optimal cost of the
// full-horizon problem (Equation 1) for a known bandwidth sequence, via
// dynamic programming over (step, rung, discretized buffer). It is the
// cost(OPT) reference in the dynamic-regret and competitive-ratio experiments
// (Theorem 4.1 / A.3).
//
// The gridN argument controls the buffer discretization; 400 keeps the
// discretization error well below the regret signal for the horizons tested.
//
// OfflineSolve runs the DP and returns the approximate optimal total cost and
// the optimal rung sequence.
func OfflineSolve(m *CostModel, omegas []units.Mbps, x0 units.Seconds, startRung, gridN int) (float64, []int, error) {
	n := len(omegas)
	if n == 0 {
		return 0, nil, fmt.Errorf("core: empty horizon")
	}
	if gridN < 10 {
		return 0, nil, fmt.Errorf("core: grid too coarse (%d)", gridN)
	}
	nr := m.ladder.Len()
	bucketOf := func(x units.Seconds) int {
		b := int(float64(x) / float64(m.xmax) * float64(gridN-1))
		if b < 0 {
			b = 0
		}
		if b >= gridN {
			b = gridN - 1
		}
		return b
	}
	xOf := func(b int) units.Seconds { return units.Seconds(float64(b) / float64(gridN-1) * float64(m.xmax)) }

	const inf = math.MaxFloat64 / 4
	// value[t][r][b]: cost-to-go from the start of step t with previous rung
	// r (nr = "no previous rung") and buffer bucket b.
	value := make([][][]float64, n+1)
	choice := make([][][]int8, n)
	for t := 0; t <= n; t++ {
		value[t] = make([][]float64, nr+1)
		for r := 0; r <= nr; r++ {
			value[t][r] = make([]float64, gridN)
			if t < n {
				for b := range value[t][r] {
					value[t][r][b] = inf
				}
			}
		}
		if t < n {
			choice[t] = make([][]int8, nr+1)
			for r := 0; r <= nr; r++ {
				choice[t][r] = make([]int8, gridN)
				for b := range choice[t][r] {
					choice[t][r][b] = -1
				}
			}
		}
	}
	for t := n - 1; t >= 0; t-- {
		for r := 0; r <= nr; r++ {
			prev := r
			if r == nr {
				prev = -1
			}
			for b := 0; b < gridN; b++ {
				x := xOf(b)
				best := inf
				var bestR int8 = -1
				for next := 0; next < nr; next++ {
					c, x1, ok := m.stepCost(next, prev, x, omegas[t])
					if !ok {
						continue
					}
					tail := value[t+1][next][bucketOf(x1)]
					if c+tail < best {
						best = c + tail
						bestR = int8(next)
					}
				}
				value[t][r][b] = best
				choice[t][r][b] = bestR
			}
		}
	}
	startIdx := startRung
	if startRung < 0 {
		startIdx = nr
	}
	total := value[0][startIdx][bucketOf(x0)]
	if total >= inf {
		return 0, nil, fmt.Errorf("core: no feasible offline trajectory")
	}
	// Reconstruct the rung sequence, replaying exact (non-discretized) buffer
	// dynamics but following the DP policy.
	seq := make([]int, 0, n)
	x := x0
	prev := startIdx
	for t := 0; t < n; t++ {
		r := choice[t][prev][bucketOf(x)]
		if r < 0 {
			return 0, nil, fmt.Errorf("core: offline policy dead-ends at step %d", t)
		}
		seq = append(seq, int(r))
		_, x1, ok := m.stepCost(int(r), prevToRung(prev, nr), x, omegas[t])
		if !ok {
			// The discretized policy can brush the boundary; clamp.
			x1 = units.Seconds(math.Max(0, math.Min(float64(m.xmax), float64(m.nextBuffer(x, omegas[t], int(r))))))
		}
		x = x1
		prev = int(r)
	}
	return total, seq, nil
}

func prevToRung(idx, nr int) int {
	if idx == nr {
		return -1
	}
	return idx
}

// RecedingHorizonCost replays SODA's receding-horizon loop over a known
// bandwidth sequence with exact K-step predictions (ω̂ = ω) and returns the
// realized total cost of Equation 1 — the cost(SODA) side of the regret
// experiments. When terminal is true, each planning problem strengthens the
// pull toward the target buffer, approximating the Algorithm 2 terminal
// constraint.
func RecedingHorizonCost(m *CostModel, omegas []units.Mbps, x0 units.Seconds, k int, terminal bool) (float64, []int, error) {
	n := len(omegas)
	if n == 0 {
		return 0, nil, fmt.Errorf("core: empty horizon")
	}
	if k < 1 {
		k = 1
	}
	total := 0.0
	x := x0
	prev := -1
	seq := make([]int, 0, n)
	maxRung := m.ladder.Len() - 1
	for t := 0; t < n; t++ {
		h := k
		if t+h > n {
			h = n - t
		}
		window := omegas[t : t+h]
		var res solveResult
		if terminal && h > 1 {
			res = m.searchMonotonicTerminal(window, x, prev, h, maxRung)
		} else {
			res = m.searchMonotonic(window, x, prev, h, maxRung)
		}
		if res.rung < 0 {
			// Defensive fallback mirroring the controller: lowest rung.
			res.rung = 0
		}
		c, x1, ok := m.stepCost(res.rung, prev, x, omegas[t])
		if !ok {
			x1 = units.Seconds(math.Max(0, math.Min(float64(m.xmax), float64(m.nextBuffer(x, omegas[t], res.rung)))))
			c, _, _ = m.stepCostUnchecked(res.rung, prev, x, omegas[t])
		}
		total += c
		seq = append(seq, res.rung)
		x = x1
		prev = res.rung
	}
	return total, seq, nil
}

// stepCostUnchecked evaluates the step cost without the feasibility check,
// used only when replaying a committed decision whose realized buffer
// brushed the boundary.
func (m *CostModel) stepCostUnchecked(rung, prevRung int, x0 units.Seconds, omega units.Mbps) (cost float64, x1 units.Seconds, feasible bool) {
	x1 = m.nextBuffer(x0, omega, rung)
	downloaded := omega.MegabitsIn(m.dt).AtRate(m.ladder.Mbps(rung))
	cost = m.v[rung]*float64(downloaded) + m.beta*m.bufferCost(x1)
	if prevRung >= 0 {
		dv := (m.v[rung] - m.v[prevRung]) * m.gapInv
		cost += m.gamma * dv * dv
	}
	return cost, x1, true
}

// searchMonotonicTerminal is the Algorithm 2 variant: monotone search with a
// terminal preference pulling the final buffer toward the target x̄. The
// indicator terminal cost of the theory is softened into a stiff quadratic so
// the discrete search remains total.
func (m *CostModel) searchMonotonicTerminal(omegas []units.Mbps, x0 units.Seconds, prevRung, k, maxRung int) solveResult {
	saved := m.beta
	defer func() { m.beta = saved }()
	// A stiffer pull toward the target approximates the terminal constraint
	// within the discrete search.
	m.beta = saved * 4
	return m.searchMonotonic(omegas, x0, prevRung, k, maxRung)
}

// NewCostModel exposes the internal cost model for the theory experiments
// and benches that need to evaluate Equation 1 directly. The returned model
// is not safe for concurrent use.
func NewCostModel(cfg Config, ladder video.Ladder, bufferCap units.Seconds) *CostModel {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return newCostModel(cfg, ladder, bufferCap)
}

// SequenceCost evaluates Equation 1 for a committed rung sequence under
// per-step bandwidths, returning +Inf when the trajectory leaves the buffer
// range.
func (m *CostModel) SequenceCost(rungs []int, prevRung int, x0 units.Seconds, omegas []units.Mbps) float64 {
	return m.sequenceCost(rungs, prevRung, x0, omegas)
}
