package core

import (
	"math"
	"testing"

	"repro/internal/abr"
	"repro/internal/units"
	"repro/internal/video"
)

func TestDecisionTablesRejectBadBudget(t *testing.T) {
	for _, budget := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("budget %d: no panic", budget)
				}
			}()
			NewDecisionTablesSized(budget)
		}()
	}
}

// TestCompileTableGeometryAndIdempotence checks the eager compile pass: the
// grid must cover [0, cap] x [0, 2*max] at the quantum with one plane per
// previous rung (plus the no-previous plane), and recompiling the same
// identity must return the existing table instead of solving again.
func TestCompileTableGeometryAndIdempotence(t *testing.T) {
	tables := NewDecisionTables()
	cfg := DefaultConfig()
	cfg.TableQuantum = 0.5
	ladder := video.YouTube4K()

	info, err := tables.CompileTable(cfg, ladder, units.Seconds(20))
	if err != nil {
		t.Fatal(err)
	}
	if info.Stub {
		t.Fatalf("default geometry compiled to a stub: %+v", info)
	}
	if info.Quantum != 0.5 || info.Horizon != 5 {
		t.Fatalf("quantum/horizon = %v/%d, want 0.5/5", info.Quantum, info.Horizon)
	}
	if want := int(math.Round(20/0.5)) + 1; info.XBins != want {
		t.Fatalf("xBins = %d, want %d", info.XBins, want)
	}
	if want := int(math.Ceil(2*float64(ladder.Max())/0.5)) + 1; info.WBins != want {
		t.Fatalf("wBins = %d, want %d", info.WBins, want)
	}
	if want := ladder.Len() + 1; info.Planes != want {
		t.Fatalf("planes = %d, want %d", info.Planes, want)
	}
	if info.Cells != info.XBins*info.WBins*info.Planes {
		t.Fatalf("cells = %d, want xBins*wBins*planes = %d", info.Cells, info.XBins*info.WBins*info.Planes)
	}

	st := tables.Stats()
	if st.Tables != 1 || st.Stubs != 0 || st.Cells != info.Cells || st.CompileSolves == 0 {
		t.Fatalf("stats after one compile: %s", st)
	}
	again, err := tables.CompileTable(cfg, ladder, units.Seconds(20))
	if err != nil {
		t.Fatal(err)
	}
	if again != info {
		t.Fatalf("recompile returned a different table: %+v vs %+v", again, info)
	}
	if st2 := tables.Stats(); st2 != st {
		t.Fatalf("recompile changed the set: %s -> %s", st, st2)
	}
}

func TestCompileTableValidation(t *testing.T) {
	tables := NewDecisionTables()
	ladder := video.YouTube4K()
	bad := DefaultConfig()
	bad.Horizon = 0
	if _, err := tables.CompileTable(bad, ladder, units.Seconds(20)); err == nil {
		t.Error("invalid config accepted")
	}
	noQuantum := DefaultConfig()
	noQuantum.MemoQuantum = 0
	if _, err := tables.CompileTable(noQuantum, ladder, units.Seconds(20)); err == nil {
		t.Error("zero quantum accepted")
	}
	if _, err := tables.CompileTable(DefaultConfig(), video.Ladder{}, units.Seconds(20)); err == nil {
		t.Error("empty ladder accepted")
	}
	if _, err := tables.CompileTable(DefaultConfig(), ladder, units.Seconds(0)); err == nil {
		t.Error("zero cap accepted")
	}
}

// tableTestConfig is the table-backed configuration the domain tests run:
// defaults plus the given set at quantum 0.5.
func tableTestConfig(tables *DecisionTables) Config {
	cfg := DefaultConfig()
	cfg.DecisionTable = tables
	cfg.TableQuantum = 0.5
	return cfg
}

// plainTestConfig is the matching table-free reference: same quantization
// step through MemoQuantum, so both controllers solve identical states.
func plainTestConfig() Config {
	cfg := DefaultConfig()
	cfg.MemoQuantum = 0.5
	return cfg
}

// TestDecisionTableFallbackDomain drives states just outside the table's
// domain — buffer past the cap edge or negative, throughput beyond 2x the
// ladder top, non-finite predictions, session-tail horizons — and checks
// each one falls back to the solver (fallback counter up, solver ran) while
// still deciding exactly as the table-free controller does. States are never
// clamped into the table: a clamp would change the decision and break the
// bit-equality below. In-domain rows pin the complement: a table hit, no
// solve, same decision.
func TestDecisionTableFallbackDomain(t *testing.T) {
	ladder := video.YouTube4K() // top rung 60 => throughput domain [0, 120]
	wMax := 2 * float64(ladder.Max())
	cases := []struct {
		name     string
		buffer   float64
		omega    float64
		prev     int
		segment  int // of 600
		fallback bool
	}{
		{"in-domain-mid", 8, 12, 2, 10, false},
		{"in-domain-origin", 0, 0.2, -1, 0, false},
		{"in-domain-buffer-edge", 17.9, 30, 4, 10, false},
		{"in-domain-throughput-edge", 3, wMax - 0.1, 5, 10, false}, // quantizes to exactly 2x top
		{"throughput-past-domain", 3, wMax + 0.3, 5, 10, true},
		{"throughput-absurd", 3, 1e9, 5, 10, true},
		{"throughput-nan", 8, math.NaN(), 2, 10, true},
		{"throughput-inf", 8, math.Inf(1), 2, 10, true},
		{"buffer-negative", -0.3, 12, 2, 10, true},
		{"session-tail-horizon", 8, 12, 2, 598, true}, // 2 segments left => k=2, table holds k=5
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tables := NewDecisionTables()
			tabled := New(tableTestConfig(tables), ladder)
			plain := New(plainTestConfig(), ladder)
			omega := units.Mbps(tc.omega)
			ctx := func() *abr.Context {
				return &abr.Context{
					Buffer:        units.Seconds(tc.buffer),
					BufferCap:     units.Seconds(20),
					PrevRung:      tc.prev,
					Ladder:        ladder,
					SegmentIndex:  tc.segment,
					TotalSegments: 600,
					Predict:       func(units.Seconds) units.Mbps { return omega },
				}
			}
			got, want := tabled.Decide(ctx()), plain.Decide(ctx())
			if got != want {
				t.Fatalf("tabled decision %+v != plain %+v", got, want)
			}
			st := tabled.SolveStats()
			if st.TableLookups != 1 {
				t.Fatalf("table lookups = %d, want 1", st.TableLookups)
			}
			if tc.fallback {
				if st.TableFallbacks != 1 || st.TableHits != 0 {
					t.Fatalf("fallbacks/hits = %d/%d, want 1/0", st.TableFallbacks, st.TableHits)
				}
				if st.Solves == 0 {
					t.Fatal("fallback state never reached the solver")
				}
			} else {
				if st.TableHits != 1 || st.TableFallbacks != 0 {
					t.Fatalf("hits/fallbacks = %d/%d, want 1/0", st.TableHits, st.TableFallbacks)
				}
				if st.Solves != 0 {
					t.Fatalf("in-domain state solved %d problems despite the table", st.Solves)
				}
			}
		})
	}
}

// TestDecisionTableStubsAndBudget checks the two degrade-to-fallback paths:
// a geometry too large for maxTableCells and a binding past the set's table
// budget both produce permanent stubs — controllers keep deciding exactly
// like the table-free path, with every lookup a fallback — instead of
// failing or compiling unboundedly (the httpseg cap-churn defence).
func TestDecisionTableStubsAndBudget(t *testing.T) {
	ladder := video.YouTube4K()

	t.Run("oversized-geometry", func(t *testing.T) {
		tables := NewDecisionTables()
		cfg := DefaultConfig() // MemoQuantum 0.01 is the table quantum here
		cfg.DecisionTable = tables
		hugeCap := units.Seconds(1e6)
		info, err := tables.CompileTable(cfg, ladder, hugeCap)
		if err != nil {
			t.Fatal(err)
		}
		if !info.Stub || info.Cells != 0 {
			t.Fatalf("absurd geometry compiled: %+v", info)
		}
		plainCfg := DefaultConfig()
		tabled, plain := New(cfg, ladder), New(plainCfg, ladder)
		stream := contextStreamAt(ladder, hugeCap, 777, 50)
		for i := range stream {
			if got, want := tabled.Decide(stream[i]), plain.Decide(stream[i]); got != want {
				t.Fatalf("decision %d: stubbed %+v != plain %+v", i, got, want)
			}
		}
		st := tabled.SolveStats()
		if st.TableLookups == 0 || st.TableHits != 0 || st.TableFallbacks != st.TableLookups {
			t.Fatalf("stub traffic books: %d lookups, %d hits, %d fallbacks",
				st.TableLookups, st.TableHits, st.TableFallbacks)
		}
		if ts := tables.Stats(); ts.Tables != 0 || ts.Stubs != 1 {
			t.Fatalf("set stats after oversized bind: %s", ts)
		}
	})

	t.Run("budget-exhausted", func(t *testing.T) {
		tables := NewDecisionTablesSized(1)
		cfg := tableTestConfig(tables)
		first, err := tables.CompileTable(cfg, ladder, units.Seconds(20))
		if err != nil {
			t.Fatal(err)
		}
		if first.Stub {
			t.Fatalf("first bind stubbed: %+v", first)
		}
		second, err := tables.CompileTable(cfg, ladder, units.Seconds(15))
		if err != nil {
			t.Fatal(err)
		}
		if !second.Stub {
			t.Fatal("bind past the budget compiled a second table")
		}
		tabled, plain := New(cfg, ladder), New(plainTestConfig(), ladder)
		stream := contextStreamAt(ladder, units.Seconds(15), 778, 50)
		for i := range stream {
			if got, want := tabled.Decide(stream[i]), plain.Decide(stream[i]); got != want {
				t.Fatalf("decision %d: over-budget %+v != plain %+v", i, got, want)
			}
		}
		if ts := tables.Stats(); ts.Tables != 1 || ts.Stubs != 1 {
			t.Fatalf("set stats after budget exhaustion: %s", ts)
		}
	})
}

// contextStreamAt is a deterministic legal context stream at an arbitrary
// buffer cap (the abrtest helper is fixed at 20 s).
func contextStreamAt(ladder video.Ladder, bufferCap units.Seconds, seed uint64, n int) []*abr.Context {
	rng := newSplitMix(seed)
	out := make([]*abr.Context, n)
	prev := abr.NoRung
	for i := range out {
		omega := units.Mbps(0.3 + rng.float()*2.2*float64(ladder.Max()))
		out[i] = &abr.Context{
			Buffer:        units.Seconds(rng.float() * float64(bufferCap)),
			BufferCap:     bufferCap,
			PrevRung:      prev,
			Ladder:        ladder,
			SegmentIndex:  i,
			TotalSegments: n,
			Predict:       func(units.Seconds) units.Mbps { return omega },
		}
		prev = int(rng.float() * float64(ladder.Len()))
	}
	return out
}

// TestDecisionTableIdentitySeparation pins the table-identity contract: the
// model fingerprint deliberately excludes the quantum, the horizon and the
// §5.1 cap mode (they are state-key concerns for the caches), so the table
// identity must mix them back in — configurations agreeing on the
// fingerprint but differing in any of the three must get distinct tables.
func TestDecisionTableIdentitySeparation(t *testing.T) {
	tables := NewDecisionTables()
	ladder := video.YouTube4K()
	cap20 := units.Seconds(20)

	base := DefaultConfig()
	base.TableQuantum = 0.5
	fineQuantum := withCfg(base, func(c *Config) { c.TableQuantum = 0.25 })
	shortHorizon := withCfg(base, func(c *Config) { c.Horizon = 3 })
	noCap := withCfg(base, func(c *Config) { c.CapToThroughput = false })

	// Precondition: all three agree with base on the model fingerprint —
	// otherwise this test would silently stop covering the identity bits.
	fp := modelFingerprint(base, ladder, cap20)
	variants := []struct {
		name string
		cfg  Config
	}{{"quantum", fineQuantum}, {"horizon", shortHorizon}, {"cap-mode", noCap}}
	for _, v := range variants {
		if modelFingerprint(v.cfg, ladder, cap20) != fp {
			t.Fatalf("%s variant changed the model fingerprint; identity coverage lost", v.name)
		}
	}

	want := 0
	for _, cfg := range []Config{base, fineQuantum, shortHorizon, noCap, base /* repeat: no new table */} {
		if _, err := tables.CompileTable(cfg, ladder, cap20); err != nil {
			t.Fatal(err)
		}
		if want < 4 {
			want++
		}
		if st := tables.Stats(); st.Tables != want {
			t.Fatalf("tables = %d, want %d: %s", st.Tables, want, st)
		}
	}
}

// FuzzDecisionTableKey hammers quantization and identity keying at the
// table's domain edges: buffers at and beyond the cap (and negative),
// throughputs around 2x the ladder top, NaN/Inf predictor outputs, and
// session-tail horizons, across four configurations sharing one table set —
// including pairs that agree on the model fingerprint and differ only in
// quantum or horizon, the cross-contamination cases the identity bits exist
// for. Every decision must either agree exactly with the table-free
// controller at the same quantum (hit or fallback alike) or be a wait taken
// before the table; the traffic books must always balance.
func FuzzDecisionTableKey(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	// Domain-edge walk under one configuration: buffer bins around the cap,
	// throughput bins around 2x the top rung.
	f.Add([]byte{0x20, 0x00, 0x24, 0x10, 0x2c, 0x20, 0x2d, 0x30, 0x2e, 0x40})
	// The same edge states visited by every configuration in turn — the
	// fingerprint/quantum/horizon aliasing probe.
	f.Add([]byte{0x2c, 0x05, 0x6c, 0x05, 0xac, 0x05, 0xec, 0x05})
	// Non-finite predictions and negative buffers.
	f.Add([]byte{0x3f, 0x00, 0x7f, 0x10, 0xbf, 0x20, 0xff, 0x30, 0x3e, 0x77})

	type combo struct {
		tabled, plain Config
		ladder        video.Ladder
		cap           units.Seconds
	}
	tables := NewDecisionTables()
	mk := func(mutate func(*Config), quantum float64, ladder video.Ladder, cap units.Seconds) combo {
		tc := DefaultConfig()
		mutate(&tc)
		tc.DecisionTable = tables
		tc.TableQuantum = quantum
		pc := DefaultConfig()
		mutate(&pc)
		pc.MemoQuantum = quantum
		return combo{tabled: tc, plain: pc, ladder: ladder, cap: cap}
	}
	noop := func(*Config) {}
	combos := [4]combo{
		mk(noop, 0.5, video.YouTube4K(), units.Seconds(20)),
		mk(noop, 0.5, video.Mobile(), units.Seconds(12)),
		// Same model fingerprint as combo 0, different quantum.
		mk(noop, 0.25, video.YouTube4K(), units.Seconds(20)),
		// Same model fingerprint as combo 0, different steady horizon.
		mk(func(c *Config) { c.Horizon = 3 }, 0.5, video.YouTube4K(), units.Seconds(20)),
	}
	// Buffer as a fraction of the cap and throughput as a fraction of the
	// ladder top; both lists straddle their domain edge and include the
	// illegal-side values the table must refuse, never clamp.
	bufFrac := [8]float64{0, 0.013, 0.25, 0.45, 0.7, 0.89, 1.0, -0.02}
	omFrac := [8]float64{0.001, 0.5, 1.0, 1.9, 2.0, 2.1, math.Inf(1), math.NaN()}

	f.Fuzz(func(t *testing.T, ops []byte) {
		var tabled, plain [len(combos)]*Controller
		for i, cb := range combos {
			tabled[i] = New(cb.tabled, cb.ladder)
			plain[i] = New(cb.plain, cb.ladder)
		}
		for i := 0; i+1 < len(ops); i += 2 {
			// Two bytes per decision: configuration, buffer and throughput
			// selectors in the first; previous rung and segments-remaining
			// (the horizon tail) in the second.
			b1, b2 := ops[i], ops[i+1]
			ci := int(b1 >> 6 & 3)
			cb := combos[ci]
			buffer := units.Seconds(bufFrac[b1>>3&7] * float64(cb.cap))
			omega := units.Mbps(omFrac[b1&7] * float64(cb.ladder.Max()))
			prev := int(b2%uint8(cb.ladder.Len()+1)) - 1
			const total = 600
			segment := total - 1 - int(b2>>4&7) // 1..8 segments remaining
			ctx := func() *abr.Context {
				return &abr.Context{
					Buffer:        buffer,
					BufferCap:     cb.cap,
					PrevRung:      prev,
					Ladder:        cb.ladder,
					SegmentIndex:  segment,
					TotalSegments: total,
					Predict:       func(units.Seconds) units.Mbps { return omega },
				}
			}
			before := tabled[ci].SolveStats()
			got, want := tabled[ci].Decide(ctx()), plain[ci].Decide(ctx())
			if got != want {
				t.Fatalf("op %d (combo %d, buffer %v, omega %v, prev %d, segment %d): tabled %+v != plain %+v",
					i/2, ci, buffer, omega, prev, segment, got, want)
			}
			d := tabled[ci].SolveStats().Delta(before)
			if d.TableLookups > 1 || d.TableHits+d.TableFallbacks != d.TableLookups {
				t.Fatalf("op %d: table books broken: %d lookups, %d hits, %d fallbacks",
					i/2, d.TableLookups, d.TableHits, d.TableFallbacks)
			}
			if d.TableHits > 0 && d.Solves > 0 {
				t.Fatalf("op %d: table hit also solved %d problems", i/2, d.Solves)
			}
		}
		st := tables.Stats()
		if st.Stubs != 0 {
			t.Fatalf("fuzz configurations must all compile, got stubs: %s", st)
		}
		if st.Tables > len(combos) {
			t.Fatalf("%d tables for %d configurations (identity churn): %s", st.Tables, len(combos), st)
		}
	})
}
