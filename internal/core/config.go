// Package core implements SODA, the smoothness-optimized dynamic adaptive
// bitrate controller of the paper — the repository's primary contribution.
//
// SODA minimizes, over a prediction horizon of K fixed-duration time
// intervals, the time-based objective of §3.1 (Equation 1):
//
//	Σ  v(r_m)·(ω̂Δt/r_m)  +  β·b(x_m)  +  γ·c(r_m, r_{m-1})
//
// subject to the buffer dynamics x_m = x_{m-1} + ω̂Δt/r_m − Δt and the box
// constraint x ∈ [0, xmax], then commits only the first decision (§3.3).
// The buffer cost b steers the buffer toward a target level x̄ instead of
// penalizing rebuffering directly, which is the paper's key modelling choice.
//
// Two discrete solvers are provided: the brute-force reference (O(|R|^K))
// and the production solver of Algorithm 1, which searches only monotonic
// bitrate sequences (O(C(|R|+K, K))) and is near-optimal per Theorem 4.3.
// A continuous relaxation on u = 1/r backs the theory experiments
// (exponential decay of perturbations, monotone structure, regret vs. K).
package core

import (
	"fmt"
	"math"

	"repro/internal/units"
	"repro/internal/video"
)

// Distortion selects the distortion cost function v(r) of §3.1. Both choices
// are positive, strictly decreasing and convex in r, as the theory requires.
type Distortion int

const (
	// DistortionInverse is v(r) = 1/r, the paper's primary choice (§4).
	DistortionInverse Distortion = iota
	// DistortionLog is v(r) = log(rmax/r), the alternative discussed in
	// Appendix B.
	DistortionLog
)

// Config parameterizes a SODA controller.
type Config struct {
	// Horizon is K, the number of Δt intervals to plan over. Clamped so that
	// K·Δt never exceeds MaxHorizonSeconds (§5.2 limits predictions to 10 s).
	Horizon int
	// MaxHorizonSeconds caps the planning window in wall-clock terms.
	MaxHorizonSeconds units.Seconds
	// Beta weights the buffer-stability cost b(x).
	Beta float64
	// Gamma weights the switching cost c(r, r').
	Gamma float64
	// TargetBuffer is x̄, the buffer level the controller steers toward.
	// Zero means "derive from the buffer cap" (TargetFraction).
	TargetBuffer units.Seconds
	// TargetFraction sets x̄ = TargetFraction · xmax when TargetBuffer is 0.
	TargetFraction float64
	// Epsilon is the ε < 1 roll-off of the buffer cost above the target.
	Epsilon float64
	// Distortion selects v(r).
	Distortion Distortion
	// CapToThroughput enables the §5.1 heuristic restricting decisions to
	// min{r ∈ R : r ≥ ω̂} to avoid committing to a bitrate for much longer
	// than Δt.
	CapToThroughput bool
	// UseBruteForce switches the controller to the exponential reference
	// solver (for validation only; Algorithm 1 is the production path).
	UseBruteForce bool
	// DisablePruning turns off the branch-and-bound lower-bound cut in the
	// monotone solver, reverting to the plain monotone enumeration. The
	// committed decisions are identical either way (the bound is admissible);
	// the knob exists so ablations can isolate the pruning win.
	DisablePruning bool
	// SolveMemoSize is the entry count of the per-controller decision memo, a
	// direct-mapped cache keyed on the quantized (buffer, ω̂, prevRung,
	// horizon, maxRung) planning state. It is consulted by Decide only —
	// CostModel solves are always exact — and flushed on Reset and on buffer
	// cap changes. 0 disables memoization. Rounded up to a power of two.
	SolveMemoSize int
	// MemoQuantum is the quantization step applied to the continuous memo key
	// components: buffer seconds and predicted Mb/s are rounded to the
	// nearest multiple before lookup, and the planning problem is solved at
	// the quantized state so the cached decision is a pure function of the
	// key (see DESIGN.md §5b). 0 keys on exact floats, which virtually never
	// recur on real buffer trajectories and so disables reuse in practice.
	MemoQuantum float64
	// SharedCache optionally connects the controller to a fleet-wide solve
	// cache (see NewSolveCache), consulted between the per-controller memo
	// and the solver. The cache is keyed on the exact (possibly quantized)
	// state handed to the solver plus a model fingerprint, so decisions are
	// bit-identical with or without it — the shared-cache conformance
	// contract in internal/abrtest pins this. The same cache may be shared
	// by any number of controllers, including controllers with different
	// configurations (the fingerprint keeps them apart) and across sessions
	// (unlike the memo it is not flushed by Reset). nil disables sharing.
	SharedCache *SolveCache
	// DecisionTable optionally connects the controller to a fleet-wide set of
	// compiled decision tables (see NewDecisionTables), consulted before the
	// memo and the shared cache. A table precomputes the committed decision
	// for every quantized (buffer, predicted throughput, previous rung) state
	// inside its domain; states outside it — session-tail horizons, buffers or
	// predictions off the grid, non-finite predictor outputs — fall back to
	// the ordinary solve path, never clamping into the table. Decisions are
	// bit-identical with the table on or off (the TableConformance contract
	// in internal/abrtest pins this). Like the shared cache, one set may back
	// controllers with different configurations: the table identity covers
	// the model fingerprint, the quantum, the steady-state horizon and the
	// §5.1 cap mode. nil disables tables.
	DecisionTable *DecisionTables
	// TableQuantum overrides MemoQuantum as the quantization step of a
	// table-backed controller. Tables quantize both grid axes at this step,
	// so it trades table size and compile time against decision granularity;
	// the fleet experiments use 0.5 (0.5 s × 0.5 Mb/s cells). 0 means "use
	// MemoQuantum". Ignored when DecisionTable is nil.
	TableQuantum float64
}

// DefaultConfig returns the tuned production configuration used throughout
// the evaluation. The weights are expressed against the normalized distortion
// scale (see CostModel), so they transfer across bitrate ladders.
//
// The switching weight sits just above the duty-cycling threshold: when the
// available throughput falls between two rungs, a smaller gamma lets the
// controller oscillate between them (riding the buffer up and down around
// the target), while this gamma makes it park at the sustainable rung and
// absorb throughput jitter in the buffer — the "consistent quality"
// behaviour the paper optimizes for. The log distortion (Appendix B) is
// used because its near-uniform per-rung gaps keep that threshold stable
// across ladders; v(r) = 1/r compresses the top of the ladder so much that
// top-rung smoothness and bottom-rung recovery cannot share one gamma.
func DefaultConfig() Config {
	return Config{
		Horizon:           5,
		MaxHorizonSeconds: units.Seconds(10),
		Beta:              0.15,
		Gamma:             5,
		TargetFraction:    0.60,
		Epsilon:           0.2,
		Distortion:        DistortionLog,
		CapToThroughput:   true,
		SolveMemoSize:     512,
		MemoQuantum:       0.01,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Horizon < 1 {
		return fmt.Errorf("core: horizon %d < 1", c.Horizon)
	}
	if c.MaxHorizonSeconds <= 0 {
		return fmt.Errorf("core: non-positive MaxHorizonSeconds %v", c.MaxHorizonSeconds)
	}
	if c.Beta < 0 || c.Gamma < 0 {
		return fmt.Errorf("core: negative cost weight (beta=%v gamma=%v)", c.Beta, c.Gamma)
	}
	if c.Epsilon <= 0 || c.Epsilon >= 1 {
		return fmt.Errorf("core: epsilon %v outside (0, 1)", c.Epsilon)
	}
	if c.TargetBuffer < 0 {
		return fmt.Errorf("core: negative target buffer %v", c.TargetBuffer)
	}
	if c.TargetBuffer == 0 && (c.TargetFraction <= 0 || c.TargetFraction >= 1) {
		return fmt.Errorf("core: target fraction %v outside (0, 1)", c.TargetFraction)
	}
	if c.Distortion != DistortionInverse && c.Distortion != DistortionLog {
		return fmt.Errorf("core: unknown distortion %d", int(c.Distortion))
	}
	if c.SolveMemoSize < 0 {
		return fmt.Errorf("core: negative solve memo size %d", c.SolveMemoSize)
	}
	if c.SolveMemoSize > 1<<20 {
		return fmt.Errorf("core: solve memo size %d exceeds 2^20", c.SolveMemoSize)
	}
	if c.MemoQuantum < 0 {
		return fmt.Errorf("core: negative memo quantum %v", c.MemoQuantum)
	}
	if c.TableQuantum < 0 || math.IsInf(c.TableQuantum, 0) || math.IsNaN(c.TableQuantum) {
		return fmt.Errorf("core: invalid table quantum %v", c.TableQuantum)
	}
	if c.DecisionTable != nil && c.tableQuantum() <= 0 {
		return fmt.Errorf("core: decision table needs a positive quantum (TableQuantum or MemoQuantum)")
	}
	return nil
}

// CostModel precomputes the per-rung cost ingredients for one (ladder,
// buffer-cap) pair. Distortion values are normalized to [0, 1] across the
// ladder so Beta and Gamma transfer between ladders; the paper notes the
// cost function choices are flexible (§3.1).
type CostModel struct {
	ladder video.Ladder
	dt     units.Seconds
	xmax   units.Seconds
	target units.Seconds
	beta   float64
	gamma  float64
	eps    float64
	v      []float64 // normalized distortion per rung, v[0]=1 .. v[last]=0
	// gapInv is 1/mean-adjacent-gap of v. The switching cost uses
	// (Δv·gapInv)², so an adjacent-rung switch costs about gamma regardless
	// of how dense the ladder is; without this, a 10-rung production ladder
	// would make single-step switches nearly free while a 4-rung mobile
	// ladder makes them expensive, and no single gamma would transfer.
	gapInv float64
	// rate[i] is v[i]·Δt/mbps[i]: selecting rung i costs exactly ω̂·rate[i]
	// in distortion, before buffer and switching charges. rateMin[i] is the
	// prefix minimum over rungs j <= i — the cheapest per-unit-throughput
	// distortion any rung at or below i can achieve. Both feed the
	// admissible lower bounds of the branch-and-bound solver (buffer and
	// switching costs are non-negative and bounded by zero).
	rate    []float64
	rateMin []float64
	// noPrune disables the branch-and-bound cut (Config.DisablePruning).
	noPrune bool
	// scratch and stats are the solver's reusable search state and work
	// counters; like the model itself they are not safe for concurrent use.
	scratch solveScratch
	stats   SolveStats
}

func newCostModel(cfg Config, ladder video.Ladder, bufferCap units.Seconds) *CostModel {
	target := cfg.TargetBuffer
	if target == 0 {
		target = units.Seconds(cfg.TargetFraction * float64(bufferCap))
	}
	m := &CostModel{
		ladder: ladder,
		dt:     ladder.SegmentSeconds,
		xmax:   bufferCap,
		target: target,
		beta:   cfg.Beta,
		gamma:  cfg.Gamma,
		eps:    cfg.Epsilon,
		v:      make([]float64, ladder.Len()),
	}
	raw := func(r units.Mbps) float64 {
		switch cfg.Distortion {
		case DistortionLog:
			return math.Log(float64(ladder.Max() / r))
		default:
			return 1 / float64(r)
		}
	}
	lo, hi := raw(ladder.Max()), raw(ladder.Min())
	span := hi - lo
	for i := 0; i < ladder.Len(); i++ {
		if span > 0 {
			m.v[i] = (raw(ladder.Mbps(i)) - lo) / span
		} else {
			m.v[i] = 0
		}
	}
	// v spans [0, 1], so the mean adjacent gap is 1/(n-1).
	if n := ladder.Len(); n > 1 {
		m.gapInv = float64(n - 1)
	} else {
		m.gapInv = 1
	}
	m.noPrune = cfg.DisablePruning
	m.rate = make([]float64, ladder.Len())
	m.rateMin = make([]float64, ladder.Len())
	running := math.Inf(1)
	for i := 0; i < ladder.Len(); i++ {
		m.rate[i] = m.v[i] * float64(m.dt) / float64(ladder.Mbps(i))
		if m.rate[i] < running {
			running = m.rate[i]
		}
		m.rateMin[i] = running
	}
	return m
}

// bufferCost is b(x) of §3.1: a quadratic well around the target with a
// gentler ε roll-off above it.
func (m *CostModel) bufferCost(x units.Seconds) float64 {
	d := float64(x - m.target)
	if d <= 0 {
		return d * d
	}
	return m.eps * d * d
}

// nextBuffer advances the buffer dynamics one interval:
// x1 = x0 + ω̂Δt/r − Δt.
func (m *CostModel) nextBuffer(x0 units.Seconds, omega units.Mbps, rung int) units.Seconds {
	return x0 + omega.MegabitsIn(m.dt).AtRate(m.ladder.Mbps(rung)) - m.dt
}

// stepCost evaluates one term of the objective for selecting rung after
// prevRung (prevRung < 0 means "no previous bitrate": no switching cost).
// It returns the cost, the resulting buffer level, and whether the step is
// feasible.
//
// The two buffer boundaries are treated asymmetrically. Underflow (x1 < 0)
// is a hard infeasibility, exactly as in the paper's optimization (2c): the
// plan must never schedule a rebuffer. Overflow is clamped to xmax instead:
// a real player simply idles at the buffer cap, so a plan that would
// overfill is realizable by downloading less often. The paper's Assumption
// A.1 (ωmax ≤ rmax(1−δ)) rules this case out of the theory entirely, but
// in-the-wild throughput routinely exceeds the top rung, and treating
// overflow as infeasible would forbid the smooth "park at a sustainable rung
// and idle" behaviour the controller needs there.
func (m *CostModel) stepCost(rung, prevRung int, x0 units.Seconds, omega units.Mbps) (cost float64, x1 units.Seconds, feasible bool) {
	x1 = m.nextBuffer(x0, omega, rung)
	if x1 < 0 {
		return 0, x1, false
	}
	if x1 > m.xmax {
		x1 = m.xmax
	}
	// Seconds of video fetched in one interval.
	downloaded := omega.MegabitsIn(m.dt).AtRate(m.ladder.Mbps(rung))
	cost = m.v[rung]*float64(downloaded) + m.beta*m.bufferCost(x1)
	if prevRung >= 0 {
		dv := (m.v[rung] - m.v[prevRung]) * m.gapInv
		cost += m.gamma * dv * dv
	}
	return cost, x1, true
}

// sequenceCost evaluates a full K-step rung sequence from (x0, prevRung)
// under per-step bandwidth predictions, returning +Inf when any step is
// infeasible. Used by tests and the brute-force solver.
func (m *CostModel) sequenceCost(rungs []int, prevRung int, x0 units.Seconds, omegas []units.Mbps) float64 {
	total := 0.0
	x := x0
	prev := prevRung
	for i, r := range rungs {
		c, x1, ok := m.stepCost(r, prev, x, omegaAt(omegas, i))
		if !ok {
			return math.Inf(1)
		}
		total += c
		x = x1
		prev = r
	}
	return total
}
