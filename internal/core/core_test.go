package core

import (
	"math"
	"testing"

	"repro/internal/abr"
	"repro/internal/units"
	"repro/internal/video"
)

func defaultModel() *CostModel {
	return NewCostModel(DefaultConfig(), video.YouTube4K(), units.Seconds(20))
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mut := func(f func(*Config)) Config {
		c := DefaultConfig()
		f(&c)
		return c
	}
	bad := []Config{
		mut(func(c *Config) { c.Horizon = 0 }),
		mut(func(c *Config) { c.MaxHorizonSeconds = 0 }),
		mut(func(c *Config) { c.Beta = -1 }),
		mut(func(c *Config) { c.Gamma = -1 }),
		mut(func(c *Config) { c.Epsilon = 0 }),
		mut(func(c *Config) { c.Epsilon = 1 }),
		mut(func(c *Config) { c.TargetBuffer = -2 }),
		mut(func(c *Config) { c.TargetFraction = 0 }),
		mut(func(c *Config) { c.TargetFraction = 1.5 }),
		mut(func(c *Config) { c.Distortion = Distortion(9) }),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestBufferCostShape(t *testing.T) {
	m := defaultModel()
	// Target is 0.6 * 20 = 12 s.
	if m.target != 12 {
		t.Fatalf("target = %v", m.target)
	}
	if got := m.bufferCost(units.Seconds(12)); got != 0 {
		t.Errorf("b(target) = %v", got)
	}
	// Below target: full quadratic; above: epsilon roll-off.
	below := m.bufferCost(12 - 3)
	above := m.bufferCost(12 + 3)
	if math.Abs(below-9) > 1e-12 {
		t.Errorf("b(target-3) = %v, want 9", below)
	}
	if math.Abs(above-0.2*9) > 1e-12 {
		t.Errorf("b(target+3) = %v, want %v", above, 0.2*9)
	}
	if above >= below {
		t.Error("overfull buffer must be penalized less than underfull")
	}
}

func TestDistortionNormalization(t *testing.T) {
	for _, d := range []Distortion{DistortionInverse, DistortionLog} {
		cfg := DefaultConfig()
		cfg.Distortion = d
		m := NewCostModel(cfg, video.YouTube4K(), units.Seconds(20))
		if math.Abs(m.v[0]-1) > 1e-12 {
			t.Errorf("distortion %d: v[rmin] = %v, want 1", d, m.v[0])
		}
		if math.Abs(m.v[len(m.v)-1]) > 1e-12 {
			t.Errorf("distortion %d: v[rmax] = %v, want 0", d, m.v[len(m.v)-1])
		}
		for i := 1; i < len(m.v); i++ {
			if m.v[i] >= m.v[i-1] {
				t.Errorf("distortion %d: v not strictly decreasing at %d", d, i)
			}
		}
	}
}

func TestBufferDynamics(t *testing.T) {
	m := defaultModel()
	// x1 = x0 + ωΔt/r − Δt. With ω = r, buffer is flat.
	for i := 0; i < m.ladder.Len(); i++ {
		r := m.ladder.Mbps(i)
		if got := m.nextBuffer(units.Seconds(10), r, i); math.Abs(float64(got)-10) > 1e-12 {
			t.Errorf("rung %d: ω=r should hold buffer, got %v", i, got)
		}
	}
	// ω = 2r doubles the download rate: buffer grows by Δt.
	if got := m.nextBuffer(units.Seconds(10), units.Mbps(24), 2); math.Abs(float64(got)-(10+2*24.0/7.5-2)) > 1e-12 {
		t.Errorf("nextBuffer = %v", got)
	}
}

func TestStepCostFeasibility(t *testing.T) {
	m := defaultModel()
	// Draining below zero is infeasible: buffer 1 s, ω tiny, top rung.
	if _, _, ok := m.stepCost(5, 5, units.Seconds(1), units.Mbps(0.1)); ok {
		t.Error("starving step accepted")
	}
	// Overflow clamps to the cap (the player idles there) rather than
	// failing: buffer 19.5 s, huge ω, lowest rung.
	if _, x1, ok := m.stepCost(0, 0, units.Seconds(19.5), units.Mbps(60)); !ok || x1 != 20 {
		t.Errorf("overflow step should clamp to the cap, got x1=%v ok=%v", x1, ok)
	}
	// Feasible middle.
	c, x1, ok := m.stepCost(3, 3, units.Seconds(12), units.Mbps(12))
	if !ok || c < 0 {
		t.Errorf("feasible step rejected: cost=%v ok=%v", c, ok)
	}
	if math.Abs(float64(x1)-12) > 1e-12 {
		t.Errorf("x1 = %v", x1)
	}
}

func TestSwitchingCostOnlyOnChange(t *testing.T) {
	m := defaultModel()
	stay, _, _ := m.stepCost(3, 3, units.Seconds(12), units.Mbps(12))
	first, _, _ := m.stepCost(3, -1, units.Seconds(12), units.Mbps(12))
	if math.Abs(stay-first) > 1e-12 {
		t.Errorf("no-switch cost %v != no-previous cost %v", stay, first)
	}
	moved, _, _ := m.stepCost(2, 3, units.Seconds(12), units.Mbps(12))
	flat, _, _ := m.stepCost(2, 2, units.Seconds(12), units.Mbps(12))
	if moved <= flat {
		t.Errorf("switching must cost extra: moved=%v flat=%v", moved, flat)
	}
}

func TestBruteForceIsLowerBound(t *testing.T) {
	m := defaultModel()
	cases := []struct {
		omega, x0 float64
		prev, k   int
	}{
		{30, 12, 3, 4}, {5, 5, 5, 4}, {60, 18, 0, 3}, {2, 2, 2, 5}, {10, 10, -1, 4},
	}
	for _, c := range cases {
		omegas := []units.Mbps{units.Mbps(c.omega)}
		fast := m.searchMonotonic(omegas, units.Seconds(c.x0), c.prev, c.k, m.ladder.Len()-1)
		slow := m.bruteForce(omegas, units.Seconds(c.x0), c.prev, c.k, m.ladder.Len()-1)
		if (fast.rung < 0) != (slow.rung < 0) {
			t.Errorf("case %+v: feasibility disagreement fast=%d slow=%d", c, fast.rung, slow.rung)
			continue
		}
		if fast.rung < 0 {
			continue
		}
		if slow.obj > fast.obj+1e-9 {
			t.Errorf("case %+v: brute force worse than monotonic: %v > %v", c, slow.obj, fast.obj)
		}
	}
}

func TestMonotonicMatchesBruteForceHighGamma(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Gamma = 1000 // strong smoothing: Theorem 4.3 regime
	cfg.Horizon = 2
	p := MismatchProbability(cfg, video.YouTube4K(), units.Seconds(20), 1500, 11)
	if p > 0.02 {
		t.Errorf("high-gamma mismatch probability = %v, want ~0", p)
	}
}

func TestMismatchProbabilityDecreasesWithGamma(t *testing.T) {
	// Figure 8: mismatch probability converges to 0 as the switching weight
	// grows (and grows with the horizon K).
	probs := make([]float64, 0, 3)
	for _, gamma := range []float64{0.02, 0.3, 5} {
		cfg := DefaultConfig()
		cfg.Gamma = gamma
		cfg.Horizon = 3
		probs = append(probs, MismatchProbability(cfg, video.YouTube4K(), units.Seconds(20), 1500, 5))
	}
	if !(probs[0] > probs[1] && probs[1] >= probs[2]) {
		t.Errorf("mismatch not shrinking in gamma: %v", probs)
	}
	if probs[2] > 0.02 {
		t.Errorf("gamma=5 mismatch = %v, want ~0", probs[2])
	}
	// Horizon dependence: larger K makes the monotone restriction bite more.
	cfg := DefaultConfig()
	cfg.Gamma = 0.3
	cfg.Horizon = 2
	k2 := MismatchProbability(cfg, video.YouTube4K(), units.Seconds(20), 1500, 5)
	if k2 > probs[1] {
		t.Errorf("K=2 mismatch %v should be below K=3 mismatch %v", k2, probs[1])
	}
}

func newCtx(buffer, cap_ float64, prev int, omega float64) *abr.Context {
	return &abr.Context{
		Buffer:    units.Seconds(buffer),
		BufferCap: units.Seconds(cap_),
		PrevRung:  prev,
		Ladder:    video.YouTube4K(),
		Predict:   func(units.Seconds) units.Mbps { return units.Mbps(omega) },
	}
}

func TestControllerBasicDecisions(t *testing.T) {
	c := New(DefaultConfig(), video.YouTube4K())
	if c.Name() != "soda" {
		t.Errorf("Name = %q", c.Name())
	}
	c.Reset()

	// Rich bandwidth, healthy buffer: a high rung.
	d := c.Decide(newCtx(12, 20, 4, 57))
	if d.Rung < 3 {
		t.Errorf("rich conditions chose rung %d", d.Rung)
	}
	// Thin bandwidth from a low previous rung: the §5.1 cap forbids moving
	// up past min{r >= ω̂}.
	d = c.Decide(newCtx(12, 20, 0, 2))
	if d.Rung > video.YouTube4K().CapIndex(units.Mbps(2)) {
		t.Errorf("cap heuristic violated: rung %d for ω=2", d.Rung)
	}
	// The cap never forces a down-switch: from a high previous rung the
	// controller may stay while the buffer absorbs a transient dip.
	d = c.Decide(newCtx(12, 20, 4, 2))
	if d.Rung > 4 {
		t.Errorf("rung %d exceeds previous under the cap", d.Rung)
	}
	// Starving buffer with tiny bandwidth: lowest rung, not a wait.
	d = c.Decide(newCtx(0.5, 20, 5, 0.3))
	if d.Rung != 0 {
		t.Errorf("starving buffer chose %d, want 0", d.Rung)
	}
	// Full buffer with throughput above the top rung: even r_max grows the
	// buffer past the cap, so the controller waits (the blank region of
	// Fig. 5). Note that for ω <= r_max the §5.1 cap heuristic guarantees a
	// non-overflowing rung exists (r_cap >= ω̂ holds the buffer flat), so the
	// wait region only appears at very high throughput.
	d = c.Decide(newCtx(19.9, 20, 0, 70))
	if d.Rung != abr.NoRung || d.WaitSeconds <= 0 {
		t.Errorf("full buffer decision = %+v, want wait", d)
	}
}

func TestControllerFirstDecisionNoPrev(t *testing.T) {
	c := New(DefaultConfig(), video.YouTube4K())
	d := c.Decide(newCtx(0, 20, abr.NoRung, 20))
	if d.Rung < 0 || d.Rung >= video.YouTube4K().Len() {
		t.Errorf("first decision rung = %d", d.Rung)
	}
}

func TestControllerHorizonClamps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Horizon = 50 // would be 100 s of planning; clamp to 10 s => K = 5
	c := New(cfg, video.YouTube4K())
	ctx := newCtx(12, 20, 3, 30)
	if k := c.horizon(ctx); k != 5 {
		t.Errorf("horizon = %d, want 5", k)
	}
	ctx.TotalSegments = 100
	ctx.SegmentIndex = 98
	if k := c.horizon(ctx); k != 2 {
		t.Errorf("end-of-stream horizon = %d, want 2", k)
	}
}

func TestControllerBruteForceAgreesOnEasyCases(t *testing.T) {
	cfg := DefaultConfig()
	bf := cfg
	bf.UseBruteForce = true
	fast := New(cfg, video.YouTube4K())
	slow := New(bf, video.YouTube4K())
	for _, omega := range []float64{2, 8, 20, 57} {
		for _, buf := range []float64{4, 10, 16} {
			a := fast.Decide(newCtx(buf, 20, 3, omega))
			b := slow.Decide(newCtx(buf, 20, 3, omega))
			// Theorem 4.3 only guarantees approximate agreement; on real
			// trajectories the decisions are usually identical and never
			// far apart.
			if diff := a.Rung - b.Rung; diff < -1 || diff > 1 {
				t.Errorf("ω=%v buf=%v: monotonic %d vs brute %d", omega, buf, a.Rung, b.Rung)
			}
		}
	}
	// In sustainable steady state (ω matches a rung, buffer at target) the
	// decisions must agree exactly: the optimum is flat, which is monotone.
	for _, c := range []struct {
		omega float64
		prev  int
	}{{4, 1}, {12, 3}, {24, 4}, {60, 5}} {
		a := fast.Decide(newCtx(12, 20, c.prev, c.omega))
		b := slow.Decide(newCtx(12, 20, c.prev, c.omega))
		if a.Rung != b.Rung {
			t.Errorf("steady state ω=%v: monotonic %d vs brute %d", c.omega, a.Rung, b.Rung)
		}
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with bad config should panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.Horizon = 0
	New(cfg, video.YouTube4K())
}

func TestDecisionDiagramStructure(t *testing.T) {
	// Figure 5: decisions grow more aggressive with buffer and throughput;
	// the rightmost (high-buffer) region is blank.
	cfg := DefaultConfig()
	buffers := Grid[units.Seconds](1, 19.9, 10)
	omegas := Grid[units.Mbps](1, 70, 12)
	cells := DecisionDiagram(cfg, video.YouTube4K(), units.Seconds(20), buffers, omegas, 3)
	byKey := map[[2]float64]int{}
	for _, c := range cells {
		byKey[[2]float64{float64(c.Buffer), float64(c.Omega)}] = c.Rung
	}
	// Monotone in omega for fixed healthy buffer (among download decisions).
	prev := -2
	for _, w := range omegas {
		r := byKey[[2]float64{float64(buffers[5]), float64(w)}]
		if r >= 0 && prev >= 0 && r < prev-1 {
			t.Errorf("rung drops sharply with rising ω at buffer %v: %d -> %d", buffers[5], prev, r)
		}
		if r >= 0 {
			prev = r
		}
	}
	// There exists a blank (wait) region at the top buffer row for high ω.
	blank := false
	for _, w := range omegas {
		if byKey[[2]float64{float64(buffers[len(buffers)-1]), float64(w)}] == abr.NoRung {
			blank = true
		}
	}
	if !blank {
		t.Error("no blank no-download region near the buffer cap")
	}
	out := RenderDiagram(cells, buffers, omegas)
	if len(out) == 0 {
		t.Error("empty diagram rendering")
	}
}

func TestGrid(t *testing.T) {
	g := Grid[float64](0, 10, 5)
	want := []float64{0, 2.5, 5, 7.5, 10}
	for i := range want {
		if math.Abs(g[i]-want[i]) > 1e-12 {
			t.Errorf("Grid[%d] = %v", i, g[i])
		}
	}
	if g := Grid[float64](3, 9, 1); len(g) != 1 || g[0] != 3 {
		t.Errorf("degenerate grid = %v", g)
	}
}

func TestCountMonotonicSequences(t *testing.T) {
	// 6 rungs, K=5: C(10,5) = 252 non-decreasing sequences; brute force 7776.
	if got := countMonotonicSequences(6, 5); got != 252 {
		t.Errorf("count = %d, want 252", got)
	}
	if got := binomial(10, 0); got != 1 {
		t.Errorf("C(10,0) = %d", got)
	}
	if got := binomial(4, 7); got != 0 {
		t.Errorf("C(4,7) = %d", got)
	}
}

func TestSolverCapBelowPrevRung(t *testing.T) {
	// Throughput collapse: cap sits below the previous rung; the solver must
	// still return a feasible (downward) plan.
	m := defaultModel()
	res := m.searchMonotonic([]units.Mbps{2}, units.Seconds(10), 5, 4, video.YouTube4K().CapIndex(units.Mbps(2)))
	if res.rung < 0 || res.rung > 1 {
		t.Errorf("collapse decision = %d", res.rung)
	}
}

func TestRegistryFactories(t *testing.T) {
	// The init-registered factories must build working controllers.
	for _, name := range []string{"soda", "soda-bruteforce"} {
		c, err := abr.New(name, video.Mobile())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c.Reset()
		d := c.Decide(&abr.Context{
			Buffer: units.Seconds(10), BufferCap: units.Seconds(20), PrevRung: 1, Ladder: video.Mobile(),
			Predict: func(units.Seconds) units.Mbps { return units.Mbps(8) },
		})
		if d.Rung < 0 || d.Rung >= video.Mobile().Len() {
			t.Errorf("%s: decision %+v", name, d)
		}
	}
}

func TestNewCostModelPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewCostModel with invalid config should panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.Epsilon = 2
	NewCostModel(cfg, video.Mobile(), units.Seconds(20))
}

func TestRecedingHorizonBoundaryReplay(t *testing.T) {
	// Drive the receding-horizon replay into the boundary-clamp path: a
	// bandwidth surge the committed decision cannot absorb forces the exact
	// replay to clamp (stepCostUnchecked).
	cfg := DefaultConfig()
	m := NewCostModel(cfg, video.Mobile(), units.Seconds(20))
	omegas := []units.Mbps{6, 6, 6, 200, 200, 6, 6, 6, 6, 6}
	cost, seq, err := RecedingHorizonCost(m, omegas, units.Seconds(18), 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(omegas) || cost <= 0 {
		t.Errorf("cost=%v len=%d", cost, len(seq))
	}
}
