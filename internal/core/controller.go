package core

import (
	"fmt"
	"math"

	"repro/internal/abr"
	"repro/internal/video"
)

// Controller is the SODA ABR controller. It is created per session via New
// and implements abr.Controller. Controllers are not safe for concurrent use;
// each session gets its own instance.
type Controller struct {
	cfg     Config
	ladder  video.Ladder
	model   *CostModel // rebuilt lazily when the buffer cap changes
	capFor  float64
	scratch [1]float64 // constant-prediction slice, reused across decisions
}

func init() {
	abr.Register("soda", func(l video.Ladder) abr.Controller {
		return New(DefaultConfig(), l)
	})
	abr.Register("soda-bruteforce", func(l video.Ladder) abr.Controller {
		cfg := DefaultConfig()
		cfg.UseBruteForce = true
		return New(cfg, l)
	})
}

// New constructs a SODA controller for the given ladder. It panics on an
// invalid config: configurations are program constants in every harness.
func New(cfg Config, ladder video.Ladder) *Controller {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Controller{cfg: cfg, ladder: ladder}
}

// Name implements abr.Controller.
func (c *Controller) Name() string { return "soda" }

// Reset implements abr.Controller. SODA keeps no cross-decision state beyond
// the previous rung, which the harness supplies in the context.
func (c *Controller) Reset() {}

// horizon returns the effective K for this decision: the configured horizon,
// clamped by the 10-second prediction-validity cap (§5.2) and by the number
// of remaining segments.
func (c *Controller) horizon(ctx *abr.Context) int {
	k := c.cfg.Horizon
	if maxK := int(c.cfg.MaxHorizonSeconds / c.ladder.SegmentSeconds); maxK >= 1 && k > maxK {
		k = maxK
	}
	if ctx.TotalSegments > 0 {
		if rem := ctx.TotalSegments - ctx.SegmentIndex; rem >= 1 && k > rem {
			k = rem
		}
	}
	if k < 1 {
		k = 1
	}
	return k
}

func (c *Controller) modelFor(bufferCap float64) *CostModel {
	if c.model == nil || c.capFor != bufferCap {
		c.model = newCostModel(c.cfg, c.ladder, bufferCap)
		c.capFor = bufferCap
	}
	return c.model
}

// Decide implements abr.Controller: solve the K-step predictive problem and
// commit the first decision (§3.3).
func (c *Controller) Decide(ctx *abr.Context) abr.Decision {
	m := c.modelFor(ctx.BufferCap)

	// No room for another segment: idle until the buffer drains — the blank
	// no-download region of Fig. 5. (Player harnesses typically enforce this
	// themselves; the check keeps direct API use safe.)
	if over := ctx.Buffer + m.dt - ctx.BufferCap; over > 1e-9 {
		return abr.Wait(over)
	}

	k := c.horizon(ctx)
	omega := ctx.PredictSafe(float64(k) * m.dt)
	c.scratch[0] = omega
	omegas := c.scratch[:]

	maxRung := c.ladder.Len() - 1
	if c.cfg.CapToThroughput {
		// §5.1: never move *up* past min{r in R : r >= ω̂}, so the controller
		// cannot commit to a download that takes much longer than Δt. The
		// cap does not force down-switches below the current rung: sustained
		// throughput drops are handled by the buffer-stability cost, while
		// transient ω̂ dips ride on the buffer — forcing the cap on
		// down-moves would re-introduce exactly the prediction-jitter
		// switching SODA exists to avoid.
		maxRung = c.ladder.CapIndex(omega)
		if ctx.PrevRung > maxRung {
			maxRung = ctx.PrevRung
		}
	}

	// With overflow clamped in the plan (see CostModel.stepCost), the only
	// way every plan can be infeasible is buffer starvation: even r_min
	// cannot keep the trajectory above zero over the full horizon. Shorter
	// horizons are tried first (the tail of the plan is the unreachable
	// part); a fully infeasible one-step problem falls back to the lowest
	// rung, the fastest possible refill.
	res := solveResult{rung: -1}
	for h := k; h >= 1; h-- {
		if c.cfg.UseBruteForce {
			res = m.bruteForce(omegas, ctx.Buffer, ctx.PrevRung, h, maxRung)
		} else {
			res = m.searchMonotonic(omegas, ctx.Buffer, ctx.PrevRung, h, maxRung)
		}
		if res.rung >= 0 {
			return abr.Decision{Rung: res.rung}
		}
	}
	return abr.Decision{Rung: 0}
}

// DiagramCell is one sample of the Figure 5 decision diagram.
type DiagramCell struct {
	Buffer float64
	Omega  float64
	// Rung is the committed decision, or -1 for the blank no-download region.
	Rung int
}

// DecisionDiagram evaluates SODA's decision over a (buffer level, predicted
// throughput) grid, reproducing Figure 5. prevRung seeds the switching cost;
// use -1 for the unconditioned diagram.
func DecisionDiagram(cfg Config, ladder video.Ladder, bufferCap float64,
	buffers, omegas []float64, prevRung int) []DiagramCell {
	ctrl := New(cfg, ladder)
	cells := make([]DiagramCell, 0, len(buffers)*len(omegas))
	for _, b := range buffers {
		for _, w := range omegas {
			omega := w
			ctx := &abr.Context{
				Buffer:    b,
				BufferCap: bufferCap,
				PrevRung:  prevRung,
				Ladder:    ladder,
				Predict:   func(float64) float64 { return omega },
			}
			d := ctrl.Decide(ctx)
			cells = append(cells, DiagramCell{Buffer: b, Omega: w, Rung: d.Rung})
		}
	}
	return cells
}

// RenderDiagram formats a decision diagram as an ASCII heat map with buffers
// as rows (descending) and throughputs as columns; rung indices print as
// digits and the no-download region as '.'.
func RenderDiagram(cells []DiagramCell, buffers, omegas []float64) string {
	grid := make(map[[2]int]int, len(cells))
	bIndex := indexOf(buffers)
	wIndex := indexOf(omegas)
	for _, c := range cells {
		grid[[2]int{bIndex[c.Buffer], wIndex[c.Omega]}] = c.Rung
	}
	out := ""
	for bi := len(buffers) - 1; bi >= 0; bi-- {
		row := fmt.Sprintf("%6.1fs |", buffers[bi])
		for wi := range omegas {
			r, ok := grid[[2]int{bi, wi}]
			switch {
			case !ok:
				row += "?"
			case r < 0:
				row += "."
			default:
				row += fmt.Sprintf("%d", r)
			}
		}
		out += row + "\n"
	}
	out += "        +" + repeat("-", len(omegas)) + "\n"
	out += fmt.Sprintf("         ω̂: %.1f .. %.1f Mb/s\n", omegas[0], omegas[len(omegas)-1])
	return out
}

func indexOf(xs []float64) map[float64]int {
	m := make(map[float64]int, len(xs))
	for i, x := range xs {
		m[x] = i
	}
	return m
}

func repeat(s string, n int) string {
	out := ""
	for i := 0; i < n; i++ {
		out += s
	}
	return out
}

// Grid returns n evenly spaced values covering [lo, hi] inclusive.
func Grid(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	// Guard against accumulation error on the final point.
	out[n-1] = hi
	return out
}

// MismatchProbability samples random planning situations and reports how
// often the monotonic solver's committed decision differs from brute force —
// the Figure 8 experiment. Situations draw buffer uniformly in (0, cap),
// previous rung uniformly, and throughput uniformly in [rmin/2, 2·rmax].
func MismatchProbability(cfg Config, ladder video.Ladder, bufferCap float64, samples int, seed uint64) float64 {
	if samples <= 0 {
		return 0
	}
	m := newCostModel(cfg, ladder, bufferCap)
	rng := newSplitMix(seed)
	mismatches := 0
	evaluated := 0
	maxRung := ladder.Len() - 1
	k := cfg.Horizon
	for i := 0; i < samples; i++ {
		x0 := rng.float() * bufferCap
		prev := int(rng.float() * float64(ladder.Len()))
		if prev >= ladder.Len() {
			prev = ladder.Len() - 1
		}
		omegas := []float64{ladder.Min()/2 + rng.float()*(2*ladder.Max()-ladder.Min()/2)}
		fast := m.searchMonotonic(omegas, x0, prev, k, maxRung)
		slow := m.bruteForce(omegas, x0, prev, k, maxRung)
		if fast.rung < 0 && slow.rung < 0 {
			continue // both infeasible: agreement by construction
		}
		evaluated++
		if fast.rung != slow.rung {
			// The committed decisions differ; only count real regressions
			// (identical objective means tie-breaking noise, not error).
			if math.Abs(fast.obj-slow.obj) > 1e-12 {
				mismatches++
			}
		}
	}
	if evaluated == 0 {
		return 0
	}
	return float64(mismatches) / float64(evaluated)
}

// splitMix is a tiny deterministic PRNG (SplitMix64) so MismatchProbability
// does not depend on math/rand ordering across Go versions.
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed} }

func (s *splitMix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitMix) float() float64 {
	return float64(s.next()>>11) / float64(1<<53)
}

var _ abr.Controller = (*Controller)(nil)
