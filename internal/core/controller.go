package core

import (
	"fmt"
	"math"

	"repro/internal/abr"
	"repro/internal/units"
	"repro/internal/video"
)

// Controller is the SODA ABR controller. It is created per session via New
// and implements abr.Controller. Controllers are not safe for concurrent use;
// each session gets its own instance.
type Controller struct {
	cfg     Config
	ladder  video.Ladder
	model   *CostModel // rebuilt lazily when the buffer cap changes
	capFor  units.Seconds
	scratch [1]units.Mbps // constant-prediction slice, reused across decisions

	// memo is the Decide-level decision cache: a direct-mapped, fixed-size
	// table keyed on the quantized planning state, valid across consecutive
	// receding-horizon ticks (the buffer moves slowly relative to the
	// quantum in steady state) and flushed on Reset and buffer cap changes.
	// nil when Config.SolveMemoSize is 0.
	memo        []memoEntry
	memoMask    uint32
	memoLookups uint64
	memoHits    uint64

	// shared is the optional fleet-wide solve cache (Config.SharedCache),
	// consulted after a local memo miss. fp is the model fingerprint that
	// scopes this controller's shared-cache keys; it is recomputed alongside
	// the cost model because it covers the buffer cap.
	shared        *SolveCache
	fp            uint64
	sharedLookups uint64
	sharedHits    uint64

	// tables is the optional fleet-wide compiled-table set
	// (Config.DecisionTable); table is the compiled table bound for the
	// current buffer cap, re-bound alongside the cost model. tq is the
	// quantization step in effect (TableQuantum when a table is attached,
	// MemoQuantum otherwise).
	tables         *DecisionTables
	table          *decisionTable
	tq             float64
	tableLookups   uint64
	tableHits      uint64
	tableFallbacks uint64
}

// memoEntry is one direct-mapped cache slot. The full (quantized) key is
// stored so hash collisions are detected and treated as misses.
type memoEntry struct {
	qx      units.Seconds
	qw      units.Mbps
	prev    int32
	k       int32
	maxRung int32
	rung    int32
	used    bool
}

func init() {
	abr.Register("soda", func(l video.Ladder) abr.Controller {
		return New(DefaultConfig(), l)
	})
	abr.Register("soda-bruteforce", func(l video.Ladder) abr.Controller {
		cfg := DefaultConfig()
		cfg.UseBruteForce = true
		return New(cfg, l)
	})
}

// New constructs a SODA controller for the given ladder. It panics on an
// invalid config: configurations are program constants in every harness.
func New(cfg Config, ladder video.Ladder) *Controller {
	c := new(Controller)
	c.Init(cfg, ladder)
	return c
}

// Init (re)initialises the controller in place — the arena path, where
// controllers live by value inside slab arrays and slots are recycled across
// sessions. It runs exactly the construction New performs (New is Init on a
// fresh allocation), so an arena-resident controller is bit-identical to a
// heap-allocated one by construction; abrtest.ArenaConformance pins this. A
// recycled slot's memo backing array is reused when the configured size
// matches, flushed so no decision state crosses sessions. Like New, Init
// panics on an invalid config.
func (c *Controller) Init(cfg Config, ladder video.Ladder) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	memo := c.memo
	*c = Controller{cfg: cfg, ladder: ladder, shared: cfg.SharedCache, tables: cfg.DecisionTable}
	c.tq = cfg.MemoQuantum
	if c.tables != nil {
		c.tq = cfg.tableQuantum()
	}
	if cfg.SolveMemoSize > 0 {
		size := 1
		for size < cfg.SolveMemoSize {
			size <<= 1
		}
		if len(memo) == size {
			c.memo = memo
			c.flushMemo()
		} else {
			c.memo = make([]memoEntry, size)
		}
		c.memoMask = uint32(size - 1)
	}
}

// Prewarm eagerly binds everything Decide would otherwise build lazily on
// first use: the cost model for this buffer cap (and with it the decision
// table and shared-cache fingerprint) plus the solver scratch sized for the
// largest horizon this configuration can plan. Decisions are unaffected —
// the same structures appear on first Decide either way — but a fleet that
// prewarms its sessions at setup pays every per-session allocation up front
// and runs the steady decide path allocation-free from the first event.
func (c *Controller) Prewarm(bufferCap units.Seconds) {
	m := c.modelFor(bufferCap)
	k := c.cfg.Horizon
	if maxK := int(c.cfg.MaxHorizonSeconds / c.ladder.SegmentSeconds); maxK >= 1 && k > maxK {
		k = maxK
	}
	if k < 1 {
		k = 1
	}
	m.scratch.ensure(k)
}

// Name implements abr.Controller.
func (c *Controller) Name() string { return "soda" }

// Reset implements abr.Controller. SODA keeps no cross-decision state beyond
// the previous rung (supplied in the context) and the decision memo, which
// must not leak across sessions and is flushed here.
func (c *Controller) Reset() {
	c.flushMemo()
}

func (c *Controller) flushMemo() {
	for i := range c.memo {
		c.memo[i] = memoEntry{}
	}
}

// SolveStats reports the solver work counters of the active cost model plus
// this controller's memo traffic. Counters accumulate across Decide calls
// until ResetSolveStats.
func (c *Controller) SolveStats() SolveStats {
	var s SolveStats
	if c.model != nil {
		s = c.model.stats
	}
	s.MemoLookups, s.MemoHits = c.memoLookups, c.memoHits
	s.SharedLookups, s.SharedHits = c.sharedLookups, c.sharedHits
	s.TableLookups, s.TableHits, s.TableFallbacks = c.tableLookups, c.tableHits, c.tableFallbacks
	return s
}

// SolveWork returns the five cumulative work counters the telemetry layer
// snapshots around every Decide call. It exists alongside SolveStats because
// the full multi-field struct costs two 64-byte-plus copies per decision on
// the simulator's hot loop; five scalars come back in registers.
func (c *Controller) SolveWork() (solves, nodes, memoHits, sharedHits, tableHits uint64) {
	if c.model != nil {
		solves, nodes = c.model.stats.Solves, c.model.stats.Nodes
	}
	return solves, nodes, c.memoHits, c.sharedHits, c.tableHits
}

// ResetSolveStats zeroes the solver and memo work counters.
func (c *Controller) ResetSolveStats() {
	if c.model != nil {
		c.model.ResetSolveStats()
	}
	c.memoLookups, c.memoHits = 0, 0
	c.sharedLookups, c.sharedHits = 0, 0
	c.tableLookups, c.tableHits, c.tableFallbacks = 0, 0, 0
}

// quantize rounds x to the nearest multiple of step (identity when step <= 0),
// preserving the unit type of its argument.
func quantize[T ~float64](x T, step float64) T {
	if step <= 0 {
		return x
	}
	return T(math.Round(float64(x)/step) * step)
}

// memoHash mixes the key fields into a table index (SplitMix64 finalizer).
func memoHash(qx units.Seconds, qw units.Mbps, prev, k, maxRung int) uint32 {
	z := math.Float64bits(float64(qx))*0x9e3779b97f4a7c15 + 0x632be59bd9b4e019
	z ^= math.Float64bits(float64(qw)) + (z << 6) + (z >> 2)
	z ^= uint64(prev+1) + (z << 6) + (z >> 2)
	z ^= uint64(k) + (z << 6) + (z >> 2)
	z ^= uint64(maxRung) + (z << 6) + (z >> 2)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return uint32(z>>32) ^ uint32(z)
}

// horizon returns the effective K for this decision: the configured horizon,
// clamped by the 10-second prediction-validity cap (§5.2) and by the number
// of remaining segments.
func (c *Controller) horizon(ctx *abr.Context) int {
	k := c.cfg.Horizon
	if maxK := int(c.cfg.MaxHorizonSeconds / c.ladder.SegmentSeconds); maxK >= 1 && k > maxK {
		k = maxK
	}
	if ctx.TotalSegments > 0 {
		if rem := ctx.TotalSegments - ctx.SegmentIndex; rem >= 1 && k > rem {
			k = rem
		}
	}
	if k < 1 {
		k = 1
	}
	return k
}

func (c *Controller) modelFor(bufferCap units.Seconds) *CostModel {
	if c.model == nil || c.capFor != bufferCap {
		c.model = newCostModel(c.cfg, c.ladder, bufferCap)
		c.capFor = bufferCap
		// The memo key does not include the buffer cap (it is fixed per
		// session in every harness), so a cap change invalidates the cache.
		c.flushMemo()
		if c.shared != nil || c.tables != nil {
			// The shared-cache key and the table identity must include the
			// cap, and do so through the fingerprint — which therefore tracks
			// the model rebuilds.
			c.fp = modelFingerprint(c.cfg, c.ladder, bufferCap)
		}
		if c.tables != nil {
			// Bind (compiling on first use) the table for the new cap.
			c.table = c.tables.tableFor(c.fp, c.cfg, c.ladder, bufferCap)
		}
	}
	return c.model
}

// Decide implements abr.Controller: solve the K-step predictive problem and
// commit the first decision (§3.3).
//
//soda:noalloc
func (c *Controller) Decide(ctx *abr.Context) abr.Decision {
	m := c.modelFor(ctx.BufferCap)

	// No room for another segment: idle until the buffer drains — the blank
	// no-download region of Fig. 5. (Player harnesses typically enforce this
	// themselves; the check keeps direct API use safe.)
	if over := ctx.Buffer + m.dt - ctx.BufferCap; over > 1e-9 {
		return abr.Wait(over)
	}

	k := c.horizon(ctx)
	omega := ctx.PredictSafe(m.dt.Scale(float64(k)))
	x0 := ctx.Buffer
	if c.memo != nil || c.table != nil {
		// Solve at the quantized state so the cached (or compiled) decision
		// is a pure function of the memo/table key: hits and misses agree by
		// construction, and replaying a context stream is order-independent.
		omega = quantize(omega, c.tq)
		x0 = quantize(x0, c.tq)
	}
	c.scratch[0] = omega
	omegas := c.scratch[:]

	maxRung := c.ladder.Len() - 1
	if c.cfg.CapToThroughput {
		// §5.1: never move *up* past min{r in R : r >= ω̂}, so the controller
		// cannot commit to a download that takes much longer than Δt. The
		// cap does not force down-switches below the current rung: sustained
		// throughput drops are handled by the buffer-stability cost, while
		// transient ω̂ dips ride on the buffer — forcing the cap on
		// down-moves would re-introduce exactly the prediction-jitter
		// switching SODA exists to avoid.
		maxRung = c.ladder.CapIndex(omega)
		if ctx.PrevRung > maxRung {
			maxRung = ctx.PrevRung
		}
	}

	// Compiled-table fast path: for in-domain states the committed decision
	// was precomputed by the identical solver path at this exact quantized
	// state, so the lookup is the whole decision. Out-of-domain states fall
	// through to the memo/shared-cache/solver pipeline on the same quantized
	// values — the fallback is literally the table-free path.
	if c.table != nil {
		c.tableLookups++
		if r, ok := c.table.lookup(x0, omega, ctx.PrevRung, k); ok {
			c.tableHits++
			return abr.Decision{Rung: r}
		}
		c.tableFallbacks++
	}

	var entry *memoEntry
	if c.memo != nil {
		c.memoLookups++
		h := memoHash(x0, omega, ctx.PrevRung, k, maxRung)
		entry = &c.memo[h&c.memoMask]
		if entry.used && entry.qx == x0 && entry.qw == omega &&
			entry.prev == int32(ctx.PrevRung) && entry.k == int32(k) &&
			entry.maxRung == int32(maxRung) {
			c.memoHits++
			return abr.Decision{Rung: int(entry.rung)}
		}
	}

	// After a local memo miss, consult the fleet-wide cache. The key holds
	// exactly the values the solver below would receive, so a hit returns
	// precisely what a miss would compute — decisions are bit-identical with
	// the shared cache on or off. A hit also back-fills the local memo slot,
	// keeping subsequent ticks of this session off the shared mutexes.
	var key cacheKey
	if c.shared != nil {
		key = cacheKey{
			fp: c.fp, x: x0, w: omega,
			prev: int32(ctx.PrevRung), k: int32(k), maxRung: int32(maxRung),
		}
		c.sharedLookups++
		if r, ok := c.shared.get(key); ok {
			c.sharedHits++
			if entry != nil {
				*entry = memoEntry{
					qx: x0, qw: omega,
					prev: int32(ctx.PrevRung), k: int32(k), maxRung: int32(maxRung),
					rung: r, used: true,
				}
			}
			return abr.Decision{Rung: int(r)}
		}
	}

	rung := solveFirstRung(m, c.cfg.UseBruteForce, omegas, x0, ctx.PrevRung, k, maxRung)
	if entry != nil {
		*entry = memoEntry{
			qx: x0, qw: omega,
			prev: int32(ctx.PrevRung), k: int32(k), maxRung: int32(maxRung),
			rung: int32(rung), used: true,
		}
	}
	if c.shared != nil {
		c.shared.put(key, int32(rung))
	}
	return abr.Decision{Rung: rung}
}

// solveFirstRung commits the first decision of the K-step predictive problem
// — the receding-horizon core shared by Decide and the decision-table
// compiler, so compiled cells are bit-identical to live solves by
// construction.
//
// With overflow clamped in the plan (see CostModel.stepCost), the only way
// every plan can be infeasible is buffer starvation: even r_min cannot keep
// the trajectory above zero over the full horizon. Shorter horizons are
// tried first (the tail of the plan is the unreachable part); a fully
// infeasible one-step problem falls back to the lowest rung, the fastest
// possible refill.
//
//soda:noalloc
func solveFirstRung(m *CostModel, bruteForce bool, omegas []units.Mbps, x0 units.Seconds, prevRung, k, maxRung int) int {
	for h := k; h >= 1; h-- {
		var res solveResult
		if bruteForce {
			res = m.bruteForce(omegas, x0, prevRung, h, maxRung)
		} else {
			res = m.searchMonotonic(omegas, x0, prevRung, h, maxRung)
		}
		if res.rung >= 0 {
			return res.rung
		}
	}
	return 0
}

// DiagramCell is one sample of the Figure 5 decision diagram.
type DiagramCell struct {
	Buffer units.Seconds
	Omega  units.Mbps
	// Rung is the committed decision, or -1 for the blank no-download region.
	Rung int
}

// DecisionDiagram evaluates SODA's decision over a (buffer level, predicted
// throughput) grid, reproducing Figure 5. prevRung seeds the switching cost;
// use -1 for the unconditioned diagram.
func DecisionDiagram(cfg Config, ladder video.Ladder, bufferCap units.Seconds,
	buffers []units.Seconds, omegas []units.Mbps, prevRung int) []DiagramCell {
	ctrl := New(cfg, ladder)
	cells := make([]DiagramCell, 0, len(buffers)*len(omegas))
	for _, b := range buffers {
		for _, w := range omegas {
			omega := w
			ctx := &abr.Context{
				Buffer:    b,
				BufferCap: bufferCap,
				PrevRung:  prevRung,
				Ladder:    ladder,
				Predict:   func(units.Seconds) units.Mbps { return omega },
			}
			d := ctrl.Decide(ctx)
			cells = append(cells, DiagramCell{Buffer: b, Omega: w, Rung: d.Rung})
		}
	}
	return cells
}

// RenderDiagram formats a decision diagram as an ASCII heat map with buffers
// as rows (descending) and throughputs as columns; rung indices print as
// digits and the no-download region as '.'.
func RenderDiagram(cells []DiagramCell, buffers []units.Seconds, omegas []units.Mbps) string {
	grid := make(map[[2]int]int, len(cells))
	bIndex := indexOf(buffers)
	wIndex := indexOf(omegas)
	for _, c := range cells {
		grid[[2]int{bIndex[c.Buffer], wIndex[c.Omega]}] = c.Rung
	}
	out := ""
	for bi := len(buffers) - 1; bi >= 0; bi-- {
		row := fmt.Sprintf("%6.1fs |", buffers[bi])
		for wi := range omegas {
			r, ok := grid[[2]int{bi, wi}]
			switch {
			case !ok:
				row += "?"
			case r < 0:
				row += "."
			default:
				row += fmt.Sprintf("%d", r)
			}
		}
		out += row + "\n"
	}
	out += "        +" + repeat("-", len(omegas)) + "\n"
	out += fmt.Sprintf("         ω̂: %.1f .. %.1f Mb/s\n", omegas[0], omegas[len(omegas)-1])
	return out
}

func indexOf[T comparable](xs []T) map[T]int {
	m := make(map[T]int, len(xs))
	for i, x := range xs {
		m[x] = i
	}
	return m
}

func repeat(s string, n int) string {
	out := ""
	for i := 0; i < n; i++ {
		out += s
	}
	return out
}

// Grid returns n evenly spaced values covering [lo, hi] inclusive, preserving
// the unit type of the endpoints.
func Grid[T ~float64](lo, hi float64, n int) []T {
	if n < 2 {
		return []T{T(lo)}
	}
	out := make([]T, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = T(lo + float64(i)*step)
	}
	// Guard against accumulation error on the final point.
	out[n-1] = T(hi)
	return out
}

// MismatchProbability samples random planning situations and reports how
// often the monotonic solver's committed decision differs from brute force —
// the Figure 8 experiment. Situations draw buffer uniformly in (0, cap),
// previous rung uniformly, and throughput uniformly in [rmin/2, 2·rmax].
func MismatchProbability(cfg Config, ladder video.Ladder, bufferCap units.Seconds, samples int, seed uint64) float64 {
	return MismatchProbabilityStats(cfg, ladder, bufferCap, samples, seed).Probability
}

// MismatchStats extends MismatchProbability with the monotone solver's work
// counters, so the Figure 8 drivers and benchmarks can report the
// branch-and-bound win alongside the approximation quality.
type MismatchStats struct {
	Probability float64
	Samples     int
	// NodesPerSolve is the mean number of (rung, state) expansions the
	// monotone solver evaluated per planning problem.
	NodesPerSolve float64
	// PrunedPerSolve is the mean number of expansions cut by the bound.
	PrunedPerSolve float64
}

// MismatchProbabilityStats runs the Figure 8 sampling and also reports the
// monotone solver's per-solve work.
func MismatchProbabilityStats(cfg Config, ladder video.Ladder, bufferCap units.Seconds, samples int, seed uint64) MismatchStats {
	if samples <= 0 {
		return MismatchStats{}
	}
	m := newCostModel(cfg, ladder, bufferCap)
	rng := newSplitMix(seed)
	mismatches := 0
	evaluated := 0
	maxRung := ladder.Len() - 1
	k := cfg.Horizon
	for i := 0; i < samples; i++ {
		x0 := units.Seconds(rng.float() * float64(bufferCap))
		prev := int(rng.float() * float64(ladder.Len()))
		if prev >= ladder.Len() {
			prev = ladder.Len() - 1
		}
		omegas := []units.Mbps{ladder.Min()/2 + units.Mbps(rng.float())*(2*ladder.Max()-ladder.Min()/2)}
		fast := m.searchMonotonic(omegas, x0, prev, k, maxRung)
		slow := m.bruteForce(omegas, x0, prev, k, maxRung)
		if fast.rung < 0 && slow.rung < 0 {
			continue // both infeasible: agreement by construction
		}
		evaluated++
		if fast.rung != slow.rung {
			// The committed decisions differ; only count real regressions
			// (identical objective means tie-breaking noise, not error).
			if math.Abs(fast.obj-slow.obj) > 1e-12 {
				mismatches++
			}
		}
	}
	st := m.SolveStats()
	out := MismatchStats{Samples: samples}
	if st.Solves > 0 {
		out.NodesPerSolve = float64(st.Nodes) / float64(st.Solves)
		out.PrunedPerSolve = float64(st.Pruned) / float64(st.Solves)
	}
	if evaluated > 0 {
		out.Probability = float64(mismatches) / float64(evaluated)
	}
	return out
}

// splitMix is a tiny deterministic PRNG (SplitMix64) so MismatchProbability
// does not depend on math/rand ordering across Go versions.
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed} }

func (s *splitMix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitMix) float() float64 {
	return float64(s.next()>>11) / float64(1<<53)
}

var _ abr.Controller = (*Controller)(nil)
