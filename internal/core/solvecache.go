package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/units"
	"repro/internal/video"
)

// SolveCache is a sharded, fixed-capacity decision cache shared across
// controller instances. A production fleet runs thousands of sessions on the
// same bitrate ladder, and the quantized planning states they visit cluster
// tightly (buffers hover near the target, predictions near the sustainable
// rung), so most sessions re-solve planning problems another session already
// solved. Decisions are a pure function of the quantized planning state (the
// controller solves *at* the quantized state, see Config.MemoQuantum), so a
// cached decision is bit-identical to what the solver would return — the
// shared-cache conformance contract in internal/abrtest pins this.
//
// Layout: a power-of-two number of shards (GOMAXPROCS-derived by default),
// each a fixed-size open-addressing table guarded by its own mutex. Keys
// carry a model fingerprint (ladder, segment duration, buffer cap, cost
// weights, solver selection) alongside the quantized memo key, so distinct
// configurations can never alias; every hit re-compares the full key, so a
// hash or slot collision degrades to a miss, never to a wrong decision.
// Lookups and inserts are allocation-free; the only allocations happen in
// NewSolveCache and Stats.
//
// A SolveCache is safe for concurrent use and is injected state: it holds no
// package-level variables and launches no goroutines, which keeps controllers
// wired to it purecontroller-clean (see DESIGN.md).
type SolveCache struct {
	shards    []cacheShard
	shardMask uint64
	probe     uint64
}

// cacheProbeWindow is the linear-probe length of each open-addressing table:
// a key lives in one of the probe-window slots after its home slot. Entries
// are never deleted (only overwritten or flushed wholesale by Reset), so a
// lookup can stop at the first empty slot.
const cacheProbeWindow = 8

// maxCacheCapacity bounds the total entry count (~48 B each, so the largest
// cache is ~800 MB — far beyond any sensible configuration).
const maxCacheCapacity = 1 << 24

// cacheKey identifies one planning problem fleet-wide: the model fingerprint
// plus the exact state handed to the solver. The state components are the
// quantized values Decide solves at, so key equality implies the solver would
// reproduce the stored decision bit-identically.
type cacheKey struct {
	fp      uint64        // model fingerprint: ladder, Δt, buffer cap, weights, solver
	x       units.Seconds // (quantized) buffer level passed to the solver
	w       units.Mbps    // (quantized) throughput prediction passed to the solver
	prev    int32         // previous rung (abr.NoRung at session start)
	k       int32         // effective horizon
	maxRung int32         // §5.1 throughput cap on candidate rungs
}

// cacheSlot is one open-addressing table entry. The full key is stored so
// collisions are detected by comparison, never trusted from the hash.
type cacheSlot struct {
	key  cacheKey
	rung int32
	used bool
}

// cacheShard is one independently locked table. The trailing pad keeps
// neighbouring shards' mutexes off one cache line so uncontended shards do
// not false-share under parallel load. The //soda:guard annotations make the
// lock protocol a soda-vet invariant: every access to the table and its
// counters must hold the shard mutex (mask is immutable after construction
// and deliberately unannotated — shardFor reads it lock-free).
type cacheShard struct {
	mu sync.Mutex
	//soda:guard mu
	entries []cacheSlot
	mask    uint64
	//soda:guard mu
	lookups uint64
	//soda:guard mu
	hits uint64
	//soda:guard mu
	conflict uint64
	//soda:guard mu
	evicted uint64
	//soda:guard mu
	used uint64
	_    [64]byte
}

// NewSolveCache builds a shared solve cache with at least the given entry
// capacity, spread over a GOMAXPROCS-derived power-of-two shard count. It
// panics on a non-positive or absurd capacity: cache sizes are program
// constants in every harness, exactly like controller configs.
func NewSolveCache(capacity int) *SolveCache {
	return NewSolveCacheSharded(capacity, 0)
}

// NewSolveCacheSharded is NewSolveCache with an explicit shard count (rounded
// up to a power of two, capped at 256); shards <= 0 derives the count from
// GOMAXPROCS. Tests use a single small shard to force collisions.
func NewSolveCacheSharded(capacity, shards int) *SolveCache {
	if capacity <= 0 {
		panic(fmt.Sprintf("core: non-positive solve cache capacity %d", capacity))
	}
	if capacity > maxCacheCapacity {
		panic(fmt.Sprintf("core: solve cache capacity %d exceeds %d", capacity, maxCacheCapacity))
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > 256 {
		shards = 256
	}
	shardCount := 1
	for shardCount < shards {
		shardCount <<= 1
	}
	perShard := (capacity + shardCount - 1) / shardCount
	size := cacheProbeWindow * 2 // floor: a probe window must fit with room to spare
	for size < perShard {
		size <<= 1
	}
	c := &SolveCache{
		shards:    make([]cacheShard, shardCount),
		shardMask: uint64(shardCount - 1),
		probe:     cacheProbeWindow,
	}
	for i := range c.shards {
		c.shards[i].entries = make([]cacheSlot, size)
		c.shards[i].mask = uint64(size - 1)
	}
	return c
}

// mix64 is the SplitMix64 finalizer, the same mixer the per-controller memo
// hash uses.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hash mixes every key field. Shard selection uses the high bits and slot
// selection the low bits, so the two indices stay uncorrelated.
func (k cacheKey) hash() uint64 {
	h := mix64(k.fp ^ 0x9e3779b97f4a7c15)
	h = mix64(h ^ math.Float64bits(float64(k.x)))
	h = mix64(h ^ math.Float64bits(float64(k.w)))
	h = mix64(h ^ uint64(uint32(k.prev)) ^ uint64(uint32(k.k))<<21 ^ uint64(uint32(k.maxRung))<<42)
	return h
}

// shardFor picks the shard (high hash bits) and the home slot base (low bits).
func (c *SolveCache) shardFor(h uint64) (*cacheShard, uint64) {
	sh := &c.shards[(h>>48)&c.shardMask]
	return sh, h & sh.mask
}

// get returns the cached first-rung decision for the key, or a miss. A hit
// requires full-key equality; traversing at least one occupied non-matching
// slot on the way to a miss is counted as a conflict.
//
//soda:noalloc
func (c *SolveCache) get(k cacheKey) (int32, bool) {
	sh, base := c.shardFor(k.hash())
	sh.mu.Lock()
	sh.lookups++
	collided := false
	for i := uint64(0); i < c.probe; i++ {
		s := &sh.entries[(base+i)&sh.mask]
		if !s.used {
			break
		}
		if s.key == k {
			sh.hits++
			rung := s.rung
			sh.mu.Unlock()
			return rung, true
		}
		collided = true
	}
	if collided {
		sh.conflict++
	}
	sh.mu.Unlock()
	return 0, false
}

// put stores a solved decision: into the key's slot if present (idempotent —
// every writer stores the same pure-function value), else the first empty
// slot of the probe window, else over the home slot (a deterministic
// eviction; the evicted problem is simply re-solved on its next miss).
//
//soda:noalloc
func (c *SolveCache) put(k cacheKey, rung int32) {
	sh, base := c.shardFor(k.hash())
	sh.mu.Lock()
	var victim *cacheSlot
	for i := uint64(0); i < c.probe; i++ {
		s := &sh.entries[(base+i)&sh.mask]
		if !s.used {
			victim = s
			sh.used++
			break
		}
		if s.key == k {
			victim = s
			break
		}
	}
	if victim == nil {
		victim = &sh.entries[base]
		sh.evicted++
	}
	*victim = cacheSlot{key: k, rung: rung, used: true}
	sh.mu.Unlock()
}

// Reset empties the cache and zeroes its statistics. Unlike a controller's
// Reset (which flushes the per-session memo between sessions), a shared cache
// deliberately survives session boundaries; Reset exists for harnesses that
// reuse one cache across otherwise-independent experiments.
func (c *SolveCache) Reset() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for j := range sh.entries {
			sh.entries[j] = cacheSlot{}
		}
		sh.lookups, sh.hits, sh.conflict, sh.evicted, sh.used = 0, 0, 0, 0, 0
		sh.mu.Unlock()
	}
}

// CacheStats is a point-in-time snapshot of a shared cache's traffic and
// occupancy, surfaced through experiment reports and the benchmark fleet.
type CacheStats struct {
	// Lookups and Hits count probe traffic across all shards.
	Lookups uint64
	Hits    uint64
	// Conflicts counts lookups that traversed at least one occupied
	// non-matching slot before missing — the hash/slot collisions the
	// full-key compare demoted to misses.
	Conflicts uint64
	// Evictions counts inserts that overwrote a live entry because the whole
	// probe window was occupied by other keys.
	Evictions uint64
	// Entries is the number of live entries; Capacity the total slot count.
	Entries  int
	Capacity int
	// Shards is the shard count; ShardFill the per-shard occupancy fraction.
	Shards    int
	ShardFill []float64
}

// HitRate returns Hits/Lookups, or 0 before any traffic.
func (s CacheStats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// String renders the one-line summary used by the experiment reports.
func (s CacheStats) String() string {
	fill := 0.0
	if s.Capacity > 0 {
		fill = float64(s.Entries) / float64(s.Capacity)
	}
	return fmt.Sprintf("lookups %d hits %d (%.1f%%) conflicts %d evictions %d fill %.1f%% (%d shards)",
		s.Lookups, s.Hits, 100*s.HitRate(), s.Conflicts, s.Evictions, 100*fill, s.Shards)
}

// Stats snapshots the cache counters. It locks each shard in turn, so
// concurrent traffic keeps flowing while the snapshot is taken.
func (c *SolveCache) Stats() CacheStats {
	st := CacheStats{
		Shards:    len(c.shards),
		ShardFill: make([]float64, len(c.shards)),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Lookups += sh.lookups
		st.Hits += sh.hits
		st.Conflicts += sh.conflict
		st.Evictions += sh.evicted
		st.Entries += int(sh.used)
		st.Capacity += len(sh.entries)
		st.ShardFill[i] = float64(sh.used) / float64(len(sh.entries))
		sh.mu.Unlock()
	}
	return st
}

// modelFingerprint hashes every input that, together with the solver state
// (buffer, prediction, previous rung, horizon, rung cap), determines the
// committed decision: the ladder's bitrates and segment duration, the buffer
// cap (it sets both xmax and the derived target), the cost weights and
// distortion choice, and which solver runs. Two controllers share cache
// entries exactly when their fingerprints match; memo sizing knobs are
// deliberately excluded because they shape which states occur, not what the
// solver returns for a state.
func modelFingerprint(cfg Config, ladder video.Ladder, bufferCap units.Seconds) uint64 {
	h := uint64(0xd6e8feb86659fd93)
	mixFloat := func(f float64) { h = mix64(h ^ math.Float64bits(f)) }
	mixFloat(float64(ladder.SegmentSeconds))
	h = mix64(h ^ uint64(ladder.Len()))
	for i := 0; i < ladder.Len(); i++ {
		mixFloat(float64(ladder.Mbps(i)))
	}
	mixFloat(float64(bufferCap))
	mixFloat(cfg.Beta)
	mixFloat(cfg.Gamma)
	mixFloat(float64(cfg.TargetBuffer))
	mixFloat(cfg.TargetFraction)
	mixFloat(cfg.Epsilon)
	bits := uint64(cfg.Distortion) << 2
	if cfg.UseBruteForce {
		bits |= 1
	}
	if cfg.DisablePruning {
		// Pruning never changes decisions (the bound is admissible), but the
		// two search modes are kept apart so a pruning bug could never be
		// masked by cache hits from the other mode.
		bits |= 2
	}
	return mix64(h ^ bits)
}
