package core

import (
	"math"
	"testing"

	"repro/internal/units"
	"repro/internal/video"
)

func baseProblem(k int) ContinuousProblem {
	omega := make([]units.Mbps, k)
	for i := range omega {
		omega[i] = units.Mbps(8)
	}
	return ContinuousProblem{
		Omega:       omega,
		X0:          units.Seconds(10),
		U0:          1.0 / 8,
		Beta:        0.5,
		Gamma:       1,
		Epsilon:     0.2,
		Target:      units.Seconds(12),
		Xmax:        units.Seconds(20),
		UMin:        1.0 / 12,
		UMax:        1.0 / 1.5,
		WDistortion: 1,
	}
}

func TestContinuousValidate(t *testing.T) {
	p := baseProblem(5)
	if err := p.Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	bad := []func(*ContinuousProblem){
		func(p *ContinuousProblem) { p.Omega = nil },
		func(p *ContinuousProblem) { p.Omega = []units.Mbps{1, -2} },
		func(p *ContinuousProblem) { p.UMin = 0 },
		func(p *ContinuousProblem) { p.UMax = p.UMin / 2 },
		func(p *ContinuousProblem) { p.Xmax = 0 },
		func(p *ContinuousProblem) { p.Epsilon = 0 },
	}
	for i, f := range bad {
		q := baseProblem(5)
		f(&q)
		if err := q.Validate(); err == nil {
			t.Errorf("bad problem %d accepted", i)
		}
	}
}

func TestContinuousSolveImprovesAndRespectsBox(t *testing.T) {
	p := baseProblem(8)
	sol, err := p.Solve(1500)
	if err != nil {
		t.Fatal(err)
	}
	// The constant-hold initialization must not beat the optimizer.
	init := make([]float64, 8)
	for i := range init {
		init[i] = p.U0
	}
	if sol.Obj > p.objective(init, nil)+1e-9 {
		t.Errorf("solver worse than initialization: %v vs %v", sol.Obj, p.objective(init, nil))
	}
	for t2, u := range sol.U {
		if u < p.UMin-1e-9 || u > p.UMax+1e-9 {
			t.Errorf("u[%d] = %v outside box", t2, u)
		}
	}
	for t2, x := range sol.X {
		if x < -0.05 || x > p.Xmax+0.05 {
			t.Errorf("x[%d] = %v outside buffer range", t2, x)
		}
	}
}

func TestContinuousGradient(t *testing.T) {
	// Finite-difference check of the analytic gradient.
	p := baseProblem(6)
	u := []float64{0.1, 0.2, 0.15, 0.3, 0.25, 0.12}
	grad := make([]float64, len(u))
	p.objective(u, grad)
	const h = 1e-6
	for i := range u {
		up := append([]float64(nil), u...)
		dn := append([]float64(nil), u...)
		up[i] += h
		dn[i] -= h
		fd := (p.objective(up, nil) - p.objective(dn, nil)) / (2 * h)
		if math.Abs(fd-grad[i]) > 1e-3*math.Max(1, math.Abs(fd)) {
			t.Errorf("grad[%d] = %v, finite difference %v", i, grad[i], fd)
		}
	}
}

func TestContinuousGradientWithTerminal(t *testing.T) {
	p := baseProblem(4)
	p.Terminal = &Terminal{X: units.Seconds(12), U: 0.125}
	u := []float64{0.1, 0.2, 0.15, 0.3}
	grad := make([]float64, len(u))
	p.objective(u, grad)
	const h = 1e-6
	for i := range u {
		up := append([]float64(nil), u...)
		dn := append([]float64(nil), u...)
		up[i] += h
		dn[i] -= h
		fd := (p.objective(up, nil) - p.objective(dn, nil)) / (2 * h)
		if math.Abs(fd-grad[i]) > 1e-2*math.Max(1, math.Abs(fd)) {
			t.Errorf("terminal grad[%d] = %v, finite difference %v", i, grad[i], fd)
		}
	}
}

func TestLemmaA10MonotoneStructure(t *testing.T) {
	// Lemma A.10: with only switching costs, the optimal action sequence is
	// monotone. Forced-movement scenario: u0 far above 1/ω̂ with a growing
	// buffer, so the solution must descend toward 1/ω̂, monotonically.
	k := 10
	omega := make([]units.Mbps, k)
	for i := range omega {
		omega[i] = units.Mbps(10)
	}
	p := ContinuousProblem{
		Omega:       omega,
		X0:          units.Seconds(15),
		U0:          0.5, // r = 2: buffer grows by ω·u − 1 = 4 s per step
		Beta:        0,
		Gamma:       1,
		Epsilon:     0.2,
		Target:      units.Seconds(12),
		Xmax:        units.Seconds(20),
		UMin:        1.0 / 12,
		UMax:        0.6,
		WDistortion: 0,
	}
	sol, err := p.Solve(4000)
	if err != nil {
		t.Fatal(err)
	}
	if !IsMonotone(p.U0, sol.U, 1e-3) {
		t.Errorf("switching-only solution not monotone: %v", sol.U)
	}
	// It must be the decreasing branch (u0 > 1/ω̂).
	if sol.U[k-1] > p.U0 {
		t.Errorf("expected descent from u0=%v, got final %v", p.U0, sol.U[k-1])
	}

	// Mirror case: u0 below 1/ω̂ with a draining buffer forces ascent.
	p2 := p
	p2.X0 = 2
	p2.U0 = 1.0 / 12 // r = 12: buffer drains by 1 − 10/12 ≈ 0.17/step... make it drain harder
	p2.Omega = make([]units.Mbps, k)
	for i := range p2.Omega {
		p2.Omega[i] = units.Mbps(4) // u0·ω − 1 = 4/12 − 1 < 0: buffer drains
	}
	sol2, err := p2.Solve(4000)
	if err != nil {
		t.Fatal(err)
	}
	if !IsMonotone(p2.U0, sol2.U, 1e-3) {
		t.Errorf("ascending case not monotone: %v", sol2.U)
	}
}

func TestTheorem43MonotoneApproximation(t *testing.T) {
	// Theorem 4.3 / A.9: as gamma grows, the full-cost optimal solution
	// approaches a monotone sequence. Measure the monotonicity violation of
	// the continuous solution as gamma increases.
	violation := func(gamma float64) float64 {
		p := baseProblem(8)
		p.X0 = 5 // away from target so the solution actually moves
		p.Gamma = gamma
		sol, err := p.Solve(3000)
		if err != nil {
			t.Fatal(err)
		}
		// Total "backtracking" = sum of direction reversals' magnitudes.
		viol := 0.0
		dirUp, dirDown := 0.0, 0.0
		prev := p.U0
		for _, u := range sol.U {
			d := u - prev
			if d > 0 {
				dirUp += d
			} else {
				dirDown -= d
			}
			prev = u
		}
		viol = math.Min(dirUp, dirDown)
		return viol
	}
	// Theorem A.9's tolerance: λ = K·sqrt((ω̂(1/r²min − 1/r²max) +
	// β·max{x̄², ε(xmax−x̄)²}) / γ). The violation must sit within λ and
	// shrink as γ grows.
	bound := func(gamma float64) float64 {
		p := baseProblem(8)
		stuff := 8*(1/(1.5*1.5)-1/(12.0*12.0)) + p.Beta*math.Max(float64(p.Target)*float64(p.Target), p.Epsilon*float64(p.Xmax-p.Target)*float64(p.Xmax-p.Target))
		return 8 * math.Sqrt(stuff/gamma)
	}
	lo := violation(0.01)
	mid := violation(100)
	hi := violation(1e6)
	if mid > bound(100) {
		t.Errorf("violation %v exceeds Theorem A.9 bound %v at gamma=100", mid, bound(100))
	}
	if hi > bound(1e6) {
		t.Errorf("violation %v exceeds Theorem A.9 bound %v at gamma=1e6", hi, bound(1e6))
	}
	if !(hi <= mid+1e-9 && mid <= lo+1e-9) {
		t.Errorf("monotone violation grew with gamma: %v -> %v -> %v", lo, mid, hi)
	}
	if hi > 0.02 {
		t.Errorf("gamma=1e6 violation = %v, want ~0", hi)
	}
}

func TestFigure6PerturbationDecay(t *testing.T) {
	// Figure 6 / Theorem A.1: optimal trajectories from different initial
	// (x0, u0) pairs converge toward each other; the per-step distance decays.
	p := baseProblem(15)
	d, err := PerturbationDecay(p, units.Seconds(4), 0.4, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if d[0] <= 0 {
		t.Fatalf("trajectories identical at step 0: %v", d)
	}
	// Exponential-flavoured decay: the tail is a small fraction of the head.
	head := d[0]
	tail := d[len(d)-1]
	if tail > head*0.2 {
		t.Errorf("perturbation did not decay: head %v tail %v (%v)", head, tail, d)
	}
	// Broad monotone trend: each quarter mean is below the previous.
	q := len(d) / 3
	m1 := meanOf(d[:q])
	m2 := meanOf(d[q : 2*q])
	m3 := meanOf(d[2*q:])
	if !(m1 > m2 && m2 > m3) {
		t.Errorf("decay not monotone in thirds: %v %v %v", m1, m2, m3)
	}
}

func meanOf(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// syntheticOmegas builds a bounded, varying bandwidth sequence for the regret
// experiments: a sinusoid with a step, within [3, 11] Mb/s.
func syntheticOmegas(n int) []units.Mbps {
	out := make([]units.Mbps, n)
	for i := range out {
		out[i] = units.Mbps(7 + 4*math.Sin(float64(i)/4))
		if i > n/2 {
			out[i] = units.Mbps(math.Max(3, float64(out[i])-2))
		}
	}
	return out
}

func TestOfflineSolveSanity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Gamma = 1
	m := NewCostModel(cfg, video.Mobile(), units.Seconds(20))
	omegas := syntheticOmegas(30)
	opt, seq, err := OfflineSolve(m, omegas, units.Seconds(10), -1, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 30 {
		t.Fatalf("sequence length %d", len(seq))
	}
	if opt <= 0 {
		t.Errorf("optimal cost = %v", opt)
	}
	// The DP's own sequence, replayed exactly, must cost close to the DP
	// value (bucketing error only).
	replay := m.SequenceCost(seq, -1, units.Seconds(10), omegas)
	if math.IsInf(replay, 1) {
		t.Fatal("offline sequence infeasible on exact replay")
	}
	if math.Abs(replay-opt) > 0.25*opt {
		t.Errorf("replayed cost %v far from DP value %v", replay, opt)
	}
	// And it must beat naive constant policies.
	for r := 0; r < m.ladder.Len(); r++ {
		constSeq := make([]int, 30)
		for i := range constSeq {
			constSeq[i] = r
		}
		c := m.SequenceCost(constSeq, -1, units.Seconds(10), omegas)
		if c < opt-0.05*opt {
			t.Errorf("constant rung %d beats DP: %v < %v", r, c, opt)
		}
	}
	if _, _, err := OfflineSolve(m, nil, units.Seconds(10), -1, 300); err == nil {
		t.Error("empty horizon accepted")
	}
	if _, _, err := OfflineSolve(m, omegas, units.Seconds(10), -1, 5); err == nil {
		t.Error("coarse grid accepted")
	}
}

func TestTheorem41RegretShrinksWithHorizon(t *testing.T) {
	// Theorem 4.1: with exact predictions, SODA's dynamic regret decays
	// (exponentially) in K and the competitive ratio approaches 1.
	cfg := DefaultConfig()
	cfg.Gamma = 1
	m := NewCostModel(cfg, video.Mobile(), units.Seconds(20))
	omegas := syntheticOmegas(60)
	opt, _, err := OfflineSolve(m, omegas, units.Seconds(10), -1, 400)
	if err != nil {
		t.Fatal(err)
	}
	regret := map[int]float64{}
	for _, k := range []int{1, 3, 8} {
		cost, _, err := RecedingHorizonCost(m, omegas, units.Seconds(10), k, false)
		if err != nil {
			t.Fatal(err)
		}
		regret[k] = cost - opt
		// SODA can never beat the clairvoyant optimum by more than the DP
		// discretization slack.
		if cost < opt*0.93 {
			t.Errorf("K=%d: SODA cost %v below optimal %v", k, cost, opt)
		}
	}
	if !(regret[8] < regret[3] && regret[3] < regret[1]) {
		t.Errorf("regret not shrinking with horizon: %v", regret)
	}
	// Competitive ratio close to 1 for the longest horizon.
	ratio := (regret[8] + opt) / opt
	if ratio > 1.2 {
		t.Errorf("competitive ratio at K=8 = %v", ratio)
	}
}

func TestRecedingHorizonTerminalVariant(t *testing.T) {
	cfg := DefaultConfig()
	m := NewCostModel(cfg, video.Mobile(), units.Seconds(20))
	omegas := syntheticOmegas(40)
	c1, seq1, err := RecedingHorizonCost(m, omegas, units.Seconds(10), 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq1) != 40 || c1 <= 0 {
		t.Fatalf("terminal variant: cost=%v len=%d", c1, len(seq1))
	}
	if _, _, err := RecedingHorizonCost(m, nil, units.Seconds(10), 4, true); err == nil {
		t.Error("empty horizon accepted")
	}
}

func TestIsMonotone(t *testing.T) {
	if !IsMonotone(1, []float64{1, 2, 3}, 0) {
		t.Error("increasing rejected")
	}
	if !IsMonotone(3, []float64{2, 2, 1}, 0) {
		t.Error("decreasing rejected")
	}
	if IsMonotone(1, []float64{2, 1, 2}, 0) {
		t.Error("zigzag accepted")
	}
	if !IsMonotone(1, []float64{1.0005, 0.9995, 1.001}, 0.01) {
		t.Error("within-tolerance wiggle rejected")
	}
}
