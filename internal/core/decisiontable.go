package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/units"
	"repro/internal/video"
)

// DecisionTables is a fleet-wide set of compiled decision tables shared by
// any number of controller instances (Config.DecisionTable). The paper's
// Fig. 5 decision diagram is the observation it exploits: for a fixed cost
// model the committed decision is a pure function of the quantized
// (buffer level, predicted throughput, previous rung) planning state, so the
// whole map can be compiled once — lazily on first bind, or eagerly via
// CompileTable — and the hot path becomes an O(1) array load with no locks,
// no hashing and no allocation.
//
// Identity and bit-identity. A table is keyed by the 64-bit model
// fingerprint of core/solvecache.go plus everything the fingerprint
// deliberately excludes but the compiled answers depend on: the quantization
// step, the steady-state horizon and the §5.1 throughput-cap mode. Cells are
// filled by the exact solver path Decide itself runs (solveFirstRung at the
// quantized state), so a table hit returns precisely what the solver would —
// the TableConformance contract in internal/abrtest pins this bit-for-bit,
// and FuzzDecisionTableKey hammers the keying at domain edges.
//
// Domain and fallback. A table covers buffer in [0, cap] and predicted
// throughput in [0, 2x the ladder's top rung] at its quantum, for the
// steady-state horizon only. Any state outside that box — session-tail
// horizons, out-of-range or non-finite predictions — falls through to the
// ordinary memo/shared-cache/solver path untouched; states are never clamped
// into the table. Oversized geometries (absurd buffer caps at a fine
// quantum) and bindings past the table budget compile to a permanent
// fallback-only stub instead of failing, so a hostile buffer cap cannot
// become a compile-time denial of service.
//
// A DecisionTables set is safe for concurrent use and is injected state: it
// holds no package-level variables and launches no goroutines, which keeps
// controllers wired to it purecontroller-clean (see DESIGN.md).
type DecisionTables struct {
	mu sync.Mutex
	//soda:guard mu
	tables    map[uint64]*decisionTable
	maxTables int
	//soda:guard mu
	compileSolves uint64
}

// DefaultMaxTables bounds how many distinct table identities one set will
// compile. A deployment serves a handful of (ladder, config, cap) tuples;
// the bound exists so identity churn (e.g. per-request buffer caps on a
// server) degrades to solver fallbacks, not unbounded memory.
const DefaultMaxTables = 64

// maxTableCells bounds one table's cell count (1-byte cells, so the largest
// table is ~8 MB). Geometries above it become fallback-only stubs.
const maxTableCells = 1 << 23

// tableThroughputSpan is the throughput domain's multiple of the ladder's
// top rung. Above the top rung the §5.1 cap pins the candidate set, but the
// buffer dynamics keep changing with the prediction, so the domain extends to
// 2x and everything beyond falls back to the solver (never clamped).
const tableThroughputSpan = 2.0

// NewDecisionTables builds an empty set with the default table budget.
func NewDecisionTables() *DecisionTables {
	return NewDecisionTablesSized(DefaultMaxTables)
}

// NewDecisionTablesSized is NewDecisionTables with an explicit budget on
// compiled tables; bindings past the budget get fallback-only stubs. It
// panics on a non-positive budget: table budgets are program constants in
// every harness, exactly like cache sizes.
func NewDecisionTablesSized(maxTables int) *DecisionTables {
	if maxTables <= 0 {
		panic(fmt.Sprintf("core: non-positive decision table budget %d", maxTables))
	}
	return &DecisionTables{
		tables:    make(map[uint64]*decisionTable),
		maxTables: maxTables,
	}
}

// decisionTable is one immutable compiled table. rungs holds the committed
// first decision for every (prev+1, buffer bin, throughput bin) cell; a stub
// has no cells and answers every lookup with a fallback.
type decisionTable struct {
	fp              uint64
	quantum         float64
	k               int32
	capToThroughput bool
	xBins           int32
	wBins           int32
	planes          int32
	rungs           []int8
	stub            bool
}

// tableIdentity mixes the model fingerprint with the knobs the fingerprint
// excludes but the compiled answers (or the grid geometry) depend on. Two
// controllers share a table exactly when their identities match; the
// cross-contamination fuzzer drives configs that agree on the fingerprint
// but differ here.
func tableIdentity(fp uint64, quantum float64, k int, capToThroughput bool) uint64 {
	h := mix64(fp ^ 0xa24baed4963ee407)
	h = mix64(h ^ math.Float64bits(quantum))
	bits := uint64(uint32(k)) << 1
	if capToThroughput {
		bits |= 1
	}
	return mix64(h ^ bits)
}

// steadyHorizon is the effective planning horizon absent the
// remaining-segments clamp: the horizon every mid-session decision uses, and
// the one tables are compiled for. Controller.horizon layers the
// session-tail clamp on top; a tail decision's shorter horizon misses the
// table's k check and falls back.
func steadyHorizon(cfg Config, ladder video.Ladder) int {
	k := cfg.Horizon
	if maxK := int(cfg.MaxHorizonSeconds / ladder.SegmentSeconds); maxK >= 1 && k > maxK {
		k = maxK
	}
	if k < 1 {
		k = 1
	}
	return k
}

// tableQuantum returns the quantization step a table-backed controller
// solves at: TableQuantum when set, else MemoQuantum. Config.Validate
// guarantees it is positive whenever a table is attached.
func (c Config) tableQuantum() float64 {
	if c.TableQuantum > 0 {
		return c.TableQuantum
	}
	return c.MemoQuantum
}

// tableFor returns the compiled table for the configuration, compiling it
// under the set lock on first use. fp must be modelFingerprint(cfg, ladder,
// bufferCap) — the caller (modelFor) already maintains it.
func (s *DecisionTables) tableFor(fp uint64, cfg Config, ladder video.Ladder, bufferCap units.Seconds) *decisionTable {
	q := cfg.tableQuantum()
	k := steadyHorizon(cfg, ladder)
	id := tableIdentity(fp, q, k, cfg.CapToThroughput)
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tables[id]; ok {
		return t
	}
	t := &decisionTable{
		fp:              fp,
		quantum:         q,
		k:               int32(k),
		capToThroughput: cfg.CapToThroughput,
		stub:            true,
	}
	compiled := 0
	for _, other := range s.sortedIDs() {
		if !s.tables[other].stub {
			compiled++
		}
	}
	if compiled < s.maxTables && t.planGeometry(ladder, bufferCap) {
		s.compileSolves += t.compile(cfg, ladder, bufferCap)
		t.stub = false
	}
	s.tables[id] = t
	return t
}

// planGeometry derives the grid from the ladder and buffer cap, reporting
// whether the table is compilable: a finite positive cap, a ladder that fits
// the 1-byte cell encoding, and a cell count within maxTableCells.
func (t *decisionTable) planGeometry(ladder video.Ladder, bufferCap units.Seconds) bool {
	cap64 := float64(bufferCap)
	if !(cap64 > 0) || math.IsInf(cap64, 0) || ladder.Len() == 0 || ladder.Len() > 127 {
		return false
	}
	xBins := math.Round(cap64/t.quantum) + 1
	wBins := math.Ceil(tableThroughputSpan*float64(ladder.Max())/t.quantum) + 1
	planes := float64(ladder.Len() + 1) // prev in {NoRung, 0, ..., len-1}
	if !(xBins >= 1) || !(wBins >= 1) || xBins*wBins*planes > maxTableCells {
		return false
	}
	t.xBins, t.wBins, t.planes = int32(xBins), int32(wBins), int32(planes)
	return true
}

// compile fills every cell with the decision the solver commits at that
// cell's exact quantized state, mirroring Decide's solver path bit for bit:
// the same quantized values (bin index times quantum — the identical
// expression quantize produces), the same §5.1 throughput cap, the same
// receding-horizon infeasibility fallback (solveFirstRung). It returns the
// number of planning problems solved. A private cost model keeps compilation
// work out of any controller's SolveStats.
func (t *decisionTable) compile(cfg Config, ladder video.Ladder, bufferCap units.Seconds) uint64 {
	m := newCostModel(cfg, ladder, bufferCap)
	t.rungs = make([]int8, int(t.planes)*int(t.xBins)*int(t.wBins))
	var scratch [1]units.Mbps
	idx := 0
	for prev := -1; prev < ladder.Len(); prev++ {
		for xi := int32(0); xi < t.xBins; xi++ {
			x0 := units.Seconds(float64(xi) * t.quantum)
			for wi := int32(0); wi < t.wBins; wi++ {
				omega := units.Mbps(float64(wi) * t.quantum)
				maxRung := ladder.Len() - 1
				if cfg.CapToThroughput {
					maxRung = ladder.CapIndex(omega)
					if prev > maxRung {
						maxRung = prev
					}
				}
				scratch[0] = omega
				t.rungs[idx] = int8(solveFirstRung(m, cfg.UseBruteForce, scratch[:], x0, prev, int(t.k), maxRung))
				idx++
			}
		}
	}
	return m.stats.Solves
}

// lookup returns the compiled decision for an already-quantized state, or a
// fallback. x and w are the values Decide quantized at this table's quantum,
// so dividing by the quantum recovers the bin index exactly (the value is a
// bin index times the quantum; the round shakes out the float error, which
// is orders of magnitude below half a bin). Out-of-domain, non-finite and
// session-tail states report a miss — never a clamped cell. The throughput
// cap needs no check: the cell was compiled with the cap derived from the
// cell's own (omega, prev), the same pure function Decide applies.
//
//soda:noalloc
func (t *decisionTable) lookup(x units.Seconds, w units.Mbps, prev, k int) (int, bool) {
	if t.stub || int32(k) != t.k {
		return 0, false
	}
	plane := int32(prev) + 1
	if plane < 0 || plane >= t.planes {
		return 0, false
	}
	xi := math.Round(float64(x) / t.quantum)
	if !(xi >= 0 && xi <= float64(t.xBins-1)) { // NaN and ±Inf fail too
		return 0, false
	}
	wi := math.Round(float64(w) / t.quantum)
	if !(wi >= 0 && wi <= float64(t.wBins-1)) {
		return 0, false
	}
	return int(t.rungs[(plane*t.xBins+int32(xi))*t.wBins+int32(wi)]), true
}

// info snapshots the table's shape for CompileTable and reports.
func (t *decisionTable) info() TableInfo {
	return TableInfo{
		Fingerprint: t.fp,
		Quantum:     t.quantum,
		Horizon:     int(t.k),
		XBins:       int(t.xBins),
		WBins:       int(t.wBins),
		Planes:      int(t.planes),
		Cells:       len(t.rungs),
		Stub:        t.stub,
	}
}

// TableInfo describes one compiled decision table.
type TableInfo struct {
	// Fingerprint is the model fingerprint the table serves.
	Fingerprint uint64
	// Quantum is the quantization step of both grid axes.
	Quantum float64
	// Horizon is the steady-state horizon the cells were solved at.
	Horizon int
	// XBins, WBins and Planes are the grid dimensions: buffer bins,
	// throughput bins and previous-rung planes (ladder size plus the
	// no-previous-rung plane).
	XBins, WBins, Planes int
	// Cells is the compiled cell count (0 for a stub).
	Cells int
	// Stub reports a fallback-only table: oversized geometry or a binding
	// past the set's table budget.
	Stub bool
}

// CompileTable eagerly compiles (or returns the already-compiled) table for
// the configuration, so harnesses can pay the compile cost at boot instead
// of on the first session's first decision. The config's own DecisionTable
// field is ignored — the receiver is the set compiled into.
func (s *DecisionTables) CompileTable(cfg Config, ladder video.Ladder, bufferCap units.Seconds) (TableInfo, error) {
	if err := cfg.Validate(); err != nil {
		return TableInfo{}, err
	}
	if cfg.tableQuantum() <= 0 {
		return TableInfo{}, fmt.Errorf("core: decision table needs a positive quantum (TableQuantum or MemoQuantum)")
	}
	if ladder.Len() == 0 {
		return TableInfo{}, fmt.Errorf("core: decision table needs a non-empty ladder")
	}
	if !(bufferCap > 0) {
		return TableInfo{}, fmt.Errorf("core: non-positive buffer cap %v", bufferCap)
	}
	fp := modelFingerprint(cfg, ladder, bufferCap)
	return s.tableFor(fp, cfg, ladder, bufferCap).info(), nil
}

// TableStats is a point-in-time snapshot of a set's compiled tables,
// surfaced through the soda-server gauges and experiment reports. Lookup,
// hit and fallback traffic is per-controller state (SolveStats) — the hot
// path touches no shared counters.
type TableStats struct {
	// Tables counts compiled tables; Stubs counts fallback-only bindings.
	Tables int
	Stubs  int
	// Cells is the total compiled cell count across tables.
	Cells int
	// CompileSolves is the total planning problems solved compiling them.
	CompileSolves uint64
}

// String renders the one-line summary used by the experiment reports.
func (s TableStats) String() string {
	return fmt.Sprintf("tables %d (+%d stubs) cells %d compile-solves %d",
		s.Tables, s.Stubs, s.Cells, s.CompileSolves)
}

// Stats snapshots the set. It takes the set lock, so concurrent bindings
// serialize with it; lookups are unaffected.
func (s *DecisionTables) Stats() TableStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := TableStats{CompileSolves: s.compileSolves}
	for _, id := range s.sortedIDs() {
		t := s.tables[id]
		if t.stub {
			st.Stubs++
			continue
		}
		st.Tables++
		st.Cells += len(t.rungs)
	}
	return st
}

// sortedIDs returns the set's table identities in ascending order, so every
// iteration over the table map is deterministic (the detrange idiom).
// Callers hold s.mu.
//
//soda:locked mu
func (s *DecisionTables) sortedIDs() []uint64 {
	ids := make([]uint64, 0, len(s.tables))
	for id := range s.tables {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
