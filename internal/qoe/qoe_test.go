package qoe

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestCountSwitches(t *testing.T) {
	cases := []struct {
		rungs []int
		want  int
	}{
		{nil, 0},
		{[]int{2}, 0},
		{[]int{2, 2, 2}, 0},
		{[]int{0, 1, 2, 3}, 3},
		{[]int{1, 2, 1, 2}, 3},
		{[]int{5, 5, 3, 3, 5}, 2},
	}
	for _, c := range cases {
		if got := CountSwitches(c.rungs); got != c.want {
			t.Errorf("CountSwitches(%v) = %d, want %d", c.rungs, got, c.want)
		}
	}
}

func TestFinalizeBasics(t *testing.T) {
	var s SessionTally
	s.AddSegment(0, 0.0)
	s.AddSegment(1, 0.5)
	s.AddSegment(1, 0.5)
	s.AddSegment(2, 1.0)
	s.AddPlayback(units.Seconds(90))
	s.AddRebuffer(units.Seconds(10))
	s.AddStartup(units.Seconds(2))

	m := s.Finalize(DefaultWeights())
	if m.Segments != 4 {
		t.Errorf("Segments = %d", m.Segments)
	}
	if math.Abs(m.MeanUtility-0.5) > 1e-12 {
		t.Errorf("MeanUtility = %v", m.MeanUtility)
	}
	if math.Abs(m.RebufferRatio-0.1) > 1e-12 {
		t.Errorf("RebufferRatio = %v", m.RebufferRatio)
	}
	if m.Switches != 2 {
		t.Errorf("Switches = %d", m.Switches)
	}
	if math.Abs(m.SwitchRate-2.0/3.0) > 1e-12 {
		t.Errorf("SwitchRate = %v", m.SwitchRate)
	}
	want := 0.5 - 10*0.1 - 1*(2.0/3.0)
	if math.Abs(m.Score-want) > 1e-12 {
		t.Errorf("Score = %v, want %v", m.Score, want)
	}
	if m.StartupSec != 2 {
		t.Errorf("StartupSec = %v", m.StartupSec)
	}
}

func TestRebufferEventCounting(t *testing.T) {
	var s SessionTally
	s.AddRebuffer(units.Seconds(1))
	s.AddRebuffer(units.Seconds(2)) // same event: no playback in between
	s.AddPlayback(units.Seconds(10))
	s.AddRebuffer(units.Seconds(0.5)) // second event
	s.AddPlayback(units.Seconds(5))
	s.AddRebuffer(units.Seconds(0)) // ignored
	m := s.Finalize(DefaultWeights())
	if m.RebufferEvents != 2 {
		t.Errorf("RebufferEvents = %d, want 2", m.RebufferEvents)
	}
	if math.Abs(float64(m.RebufferSec-3.5)) > 1e-12 {
		t.Errorf("RebufferSec = %v", m.RebufferSec)
	}
}

func TestEmptySession(t *testing.T) {
	var s SessionTally
	m := s.Finalize(DefaultWeights())
	if m.Score != 0 || m.MeanUtility != 0 || m.RebufferRatio != 0 || m.SwitchRate != 0 {
		t.Errorf("empty session metrics = %+v", m)
	}
}

func TestSingleSegmentNoSwitchRate(t *testing.T) {
	var s SessionTally
	s.AddSegment(3, 0.8)
	s.AddPlayback(units.Seconds(2))
	m := s.Finalize(DefaultWeights())
	if m.SwitchRate != 0 {
		t.Errorf("single-segment switch rate = %v", m.SwitchRate)
	}
}

func TestNegativeInputsIgnored(t *testing.T) {
	var s SessionTally
	s.AddPlayback(units.Seconds(-5))
	s.AddRebuffer(units.Seconds(-2))
	s.AddStartup(units.Seconds(-1))
	m := s.Finalize(DefaultWeights())
	if m.PlaySec != 0 || m.RebufferSec != 0 || m.StartupSec != 0 {
		t.Errorf("negative inputs leaked: %+v", m)
	}
}

// Property: components stay in [0, 1] when utilities do, and the score
// respects the linear combination identity.
func TestMetricsBoundsAndIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		var s SessionTally
		n := 2 + rng.IntN(100)
		for i := 0; i < n; i++ {
			s.AddSegment(rng.IntN(6), rng.Float64())
		}
		s.AddPlayback(units.Seconds(n) * 2)
		s.AddRebuffer(units.Seconds(rng.Float64() * 20))
		w := DefaultWeights()
		m := s.Finalize(w)
		inUnit := func(x float64) bool { return x >= 0 && x <= 1 }
		if !inUnit(m.MeanUtility) || !inUnit(m.RebufferRatio) || !inUnit(m.SwitchRate) {
			return false
		}
		want := m.MeanUtility - w.Beta*m.RebufferRatio - w.Gamma*m.SwitchRate
		return math.Abs(m.Score-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestAggregated(t *testing.T) {
	sessions := []Metrics{
		{Score: 0.5, MeanUtility: 0.8, RebufferRatio: 0.02, SwitchRate: 0.1},
		{Score: 0.7, MeanUtility: 0.9, RebufferRatio: 0.00, SwitchRate: 0.2},
	}
	a := Aggregated("soda", sessions)
	if a.Sessions != 2 {
		t.Errorf("Sessions = %d", a.Sessions)
	}
	if math.Abs(a.Score.Mean-0.6) > 1e-12 {
		t.Errorf("Score.Mean = %v", a.Score.Mean)
	}
	if math.Abs(a.MeanUtility.Mean-0.85) > 1e-12 {
		t.Errorf("MeanUtility.Mean = %v", a.MeanUtility.Mean)
	}
	str := a.String()
	if !strings.Contains(str, "soda") || !strings.Contains(str, "n=2") {
		t.Errorf("String = %q", str)
	}
}

func TestRungsAccessor(t *testing.T) {
	var s SessionTally
	s.AddSegment(1, 0.5)
	s.AddSegment(4, 0.9)
	if got := s.Rungs(); len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Errorf("Rungs = %v", got)
	}
	if s.Segments() != 2 {
		t.Errorf("Segments = %d", s.Segments())
	}
}
