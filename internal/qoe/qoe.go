// Package qoe implements the quality-of-experience metrics of the paper's
// evaluation (§6, "Performance Metrics"):
//
//   - mean utility v̄: the normalized logarithmic utility averaged over
//     segments (or normalized SSIM for the prototype evaluation),
//   - rebuffering ratio ρ_rebuf = T_rebuf / T,
//   - switching rate p_switch = N_switch / (N - 1),
//   - QoE score = v̄ − β·ρ_rebuf − γ·p_switch with β = 10, γ = 1.
//
// All three components are normalized to [0, 1] for ease of interpretation;
// the QoE score may therefore be negative when rebuffering dominates.
package qoe

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/units"
)

// Weights are the linear QoE combination weights. The paper uses β = 10 to
// reflect the severity of rebuffering and γ = 1.
type Weights struct {
	Beta  float64 // rebuffering-ratio weight
	Gamma float64 // switching-rate weight
}

// DefaultWeights returns the paper's weights (β = 10, γ = 1).
func DefaultWeights() Weights { return Weights{Beta: 10, Gamma: 1} }

// Metrics are the per-session QoE components plus the combined score. The
// utility, ratio and score components are dimensionless; wall-clock totals
// carry their unit type.
type Metrics struct {
	MeanUtility    float64
	RebufferRatio  float64
	SwitchRate     float64
	Score          float64
	Switches       int
	Segments       int
	RebufferSec    units.Seconds
	PlaySec        units.Seconds
	StartupSec     units.Seconds
	RebufferEvents int
}

// SessionTally accumulates per-segment observations during one streaming
// session and produces Metrics. The zero value is ready to use.
type SessionTally struct {
	utilities   []float64
	rungs       []int
	rebufferSec units.Seconds
	playSec     units.Seconds
	startupSec  units.Seconds
	rebufEvents int
	inRebuffer  bool
}

// AddSegment records a downloaded segment with its utility (in [0, 1]) and
// rung index.
func (s *SessionTally) AddSegment(rung int, utility float64) {
	s.utilities = append(s.utilities, utility)
	s.rungs = append(s.rungs, rung)
}

// AddRebuffer records stall time. Consecutive calls without an intervening
// AddPlayback are counted as a single rebuffering event.
func (s *SessionTally) AddRebuffer(d units.Seconds) {
	if d <= 0 {
		return
	}
	s.rebufferSec += d
	if !s.inRebuffer {
		s.rebufEvents++
		s.inRebuffer = true
	}
}

// AddPlayback records smooth playback time.
func (s *SessionTally) AddPlayback(d units.Seconds) {
	if d <= 0 {
		return
	}
	s.playSec += d
	s.inRebuffer = false
}

// AddStartup records initial startup delay (before the first frame); startup
// is tracked separately and not charged as rebuffering, matching common
// practice and the Sabre accounting.
func (s *SessionTally) AddStartup(d units.Seconds) {
	if d > 0 {
		s.startupSec += d
	}
}

// Segments returns the number of segments recorded so far.
func (s *SessionTally) Segments() int { return len(s.rungs) }

// Rungs returns the recorded rung sequence. The slice must not be modified.
func (s *SessionTally) Rungs() []int { return s.rungs }

// Finalize computes the session metrics under the given weights.
func (s *SessionTally) Finalize(w Weights) Metrics {
	m := Metrics{
		Segments:       len(s.rungs),
		RebufferSec:    s.rebufferSec,
		PlaySec:        s.playSec,
		StartupSec:     s.startupSec,
		RebufferEvents: s.rebufEvents,
	}
	if len(s.utilities) > 0 {
		m.MeanUtility = stats.Mean(s.utilities)
	}
	if total := s.playSec + s.rebufferSec; total > 0 {
		m.RebufferRatio = float64(s.rebufferSec / total)
	}
	m.Switches = CountSwitches(s.rungs)
	if len(s.rungs) > 1 {
		m.SwitchRate = float64(m.Switches) / float64(len(s.rungs)-1)
	}
	m.Score = m.MeanUtility - w.Beta*m.RebufferRatio - w.Gamma*m.SwitchRate
	return m
}

// CountSwitches returns the number of adjacent rung changes in the sequence.
func CountSwitches(rungs []int) int {
	n := 0
	for i := 1; i < len(rungs); i++ {
		if rungs[i] != rungs[i-1] {
			n++
		}
	}
	return n
}

// Aggregate summarizes the metrics of many sessions: mean and 95% CI per
// component, matching the error bars of Figures 10-12.
type Aggregate struct {
	Controller    string
	Score         stats.Summary
	MeanUtility   stats.Summary
	RebufferRatio stats.Summary
	SwitchRate    stats.Summary
	Sessions      int
}

// Aggregated computes an Aggregate over per-session metrics.
func Aggregated(controller string, sessions []Metrics) Aggregate {
	n := len(sessions)
	scores := make([]float64, n)
	utils := make([]float64, n)
	rebufs := make([]float64, n)
	switches := make([]float64, n)
	for i, m := range sessions {
		scores[i] = m.Score
		utils[i] = m.MeanUtility
		rebufs[i] = m.RebufferRatio
		switches[i] = m.SwitchRate
	}
	return Aggregate{
		Controller:    controller,
		Score:         stats.Summarize(scores),
		MeanUtility:   stats.Summarize(utils),
		RebufferRatio: stats.Summarize(rebufs),
		SwitchRate:    stats.Summarize(switches),
		Sessions:      n,
	}
}

// String renders the aggregate as one report row.
func (a Aggregate) String() string {
	return fmt.Sprintf("%-12s QoE %7.4f±%.4f  util %6.4f±%.4f  rebuf %6.4f±%.4f  switch %6.4f±%.4f  (n=%d)",
		a.Controller,
		a.Score.Mean, a.Score.CI95,
		a.MeanUtility.Mean, a.MeanUtility.CI95,
		a.RebufferRatio.Mean, a.RebufferRatio.CI95,
		a.SwitchRate.Mean, a.SwitchRate.CI95,
		a.Sessions)
}
