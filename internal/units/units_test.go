package units_test

import (
	"math"
	"testing"

	"repro/internal/units"
)

func TestScaleConversions(t *testing.T) {
	if got := units.Seconds(2.5).Milliseconds(); got != 2500 {
		t.Errorf("Seconds(2.5).Milliseconds() = %v, want 2500", got)
	}
	if got := units.Milliseconds(250).Seconds(); got != 0.25 {
		t.Errorf("Milliseconds(250).Seconds() = %v, want 0.25", got)
	}
	if got := units.Mbps(1.5).Kbps(); got != 1500 {
		t.Errorf("Mbps(1.5).Kbps() = %v, want 1500", got)
	}
	if got := units.Kbps(800).Mbps(); got != 0.8 {
		t.Errorf("Kbps(800).Mbps() = %v, want 0.8", got)
	}
	if got := units.Megabits(12).Bits(); got != 12e6 {
		t.Errorf("Megabits(12).Bits() = %v, want 12e6", got)
	}
	if got := units.Bits(4e6).Megabits(); got != 4 {
		t.Errorf("Bits(4e6).Megabits() = %v, want 4", got)
	}
}

func TestDimensionChangingOps(t *testing.T) {
	// A 4 Mb/s link over a 2 s segment carries 8 megabits.
	if got := units.Mbps(4).MegabitsIn(units.Seconds(2)); got != 8 {
		t.Errorf("Mbps(4).MegabitsIn(2s) = %v, want 8", got)
	}
	// 8 megabits at 4 Mb/s takes 2 s.
	if got := units.Megabits(8).AtRate(units.Mbps(4)); got != 2 {
		t.Errorf("Megabits(8).AtRate(4) = %v, want 2", got)
	}
	// 8 megabits in 2 s is 4 Mb/s.
	if got := units.Megabits(8).Over(units.Seconds(2)); got != 4 {
		t.Errorf("Megabits(8).Over(2s) = %v, want 4", got)
	}
}

// TestBitExactness pins the zero-cost claim of the package doc: the helper
// methods must produce the identical bits as the raw float64 expressions they
// replace, for awkward values too.
func TestBitExactness(t *testing.T) {
	for _, tc := range []struct{ r, d float64 }{
		{1.5, 2}, {7.5, 1.0 / 3}, {0.2, 600}, {60, 1e-9},
	} {
		want := tc.r * tc.d
		got := float64(units.Mbps(tc.r).MegabitsIn(units.Seconds(tc.d)))
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("MegabitsIn(%v, %v): bits differ: %v vs %v", tc.r, tc.d, got, want)
		}
		wantT := want / tc.r
		gotT := float64(units.Megabits(want).AtRate(units.Mbps(tc.r)))
		if math.Float64bits(gotT) != math.Float64bits(wantT) {
			t.Errorf("AtRate(%v, %v): bits differ: %v vs %v", want, tc.r, gotT, wantT)
		}
	}
}
