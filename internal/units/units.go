// Package units defines the dimensioned scalar types shared by the SODA
// core, simulator and trace layers, so that bitrates, data sizes and
// durations cannot be mixed silently.
//
// The classic ABR bug class is a unit mix-up: the paper's objective combines
// bitrates in Mb/s, buffer levels in seconds and segment sizes in megabits,
// and a bits-vs-bytes or seconds-vs-milliseconds slip corrupts every
// downstream decision while remaining perfectly type-correct float64
// arithmetic. Each quantity here is a defined type over float64, so
//
//   - arithmetic between *different* unit types does not compile,
//   - conversions between units of the same dimension go through the named
//     methods below (Seconds.Milliseconds, Mbps.Kbps, Megabits.Bits, ...),
//     which apply the scale factor exactly once, and
//   - dimension-changing operations (rate x time = size, size / rate = time)
//     are spelled as methods whose names state the result.
//
// The static twin of this package is the `unitsafe` analyzer
// (internal/lint/unitsafe), which additionally flags the two remaining
// loopholes the type system leaves open: direct conversions between two unit
// types (e.g. Seconds(ms) — compiles because the underlying type matches,
// silently off by 1000x) and raw untyped literals passed where a unit type
// is expected.
//
// Converting to and from plain float64 is always allowed — float64(x) is the
// sanctioned exit into dimensionless arithmetic (cost functions, utilities,
// statistics) and into the not-yet-migrated float64 boundaries (abr.Context,
// predictor). Keep the dimensioned form as long as the value has a unit.
//
// All types use float64 underneath and incur zero runtime cost: the
// conversions and helper methods compile to the identical floating-point
// operations the untyped code performed, in the same order, so migrating an
// expression to units never changes its bits.
package units

// Seconds is a duration or buffer level in seconds of (video) time.
type Seconds float64

// Milliseconds is a duration in milliseconds; used at network-emulation and
// HTTP boundaries where latencies are natively quoted in ms.
type Milliseconds float64

// Mbps is a data rate in megabits per second — the native unit of bitrate
// ladders and throughput traces in this repository.
type Mbps float64

// Kbps is a data rate in kilobits per second; used at boundaries (DASH
// manifests, logs) where bitrates are natively quoted in Kbps.
type Kbps float64

// Megabits is a data size in megabits — the native unit of segment sizes.
type Megabits float64

// Bits is a data size in bits; used at wire/manifest boundaries.
type Bits float64

// Milliseconds converts seconds to milliseconds.
func (s Seconds) Milliseconds() Milliseconds { return Milliseconds(s * 1e3) }

// Seconds converts milliseconds to seconds.
func (ms Milliseconds) Seconds() Seconds { return Seconds(ms / 1e3) }

// Kbps converts a rate in Mb/s to Kb/s.
func (r Mbps) Kbps() Kbps { return Kbps(r * 1e3) }

// Mbps converts a rate in Kb/s to Mb/s.
func (r Kbps) Mbps() Mbps { return Mbps(r / 1e3) }

// Bits converts megabits to bits.
func (b Megabits) Bits() Bits { return Bits(b * 1e6) }

// Megabits converts bits to megabits.
func (b Bits) Megabits() Megabits { return Megabits(b / 1e6) }

// Bps returns the rate's magnitude in bits per second, for wire formats
// (e.g. the DASH MPD @bandwidth attribute) that are natively
// bits-per-second integers.
func (r Mbps) Bps() float64 { return float64(r) * 1e6 }

// MegabitsIn returns the data volume carried at rate r over duration d:
// rate x time = size.
func (r Mbps) MegabitsIn(d Seconds) Megabits { return Megabits(float64(r) * float64(d)) }

// AtRate returns the time needed to transfer b at rate r: size / rate = time.
// Callers must ensure r > 0.
func (b Megabits) AtRate(r Mbps) Seconds { return Seconds(float64(b) / float64(r)) }

// Over returns the mean rate that transfers b in duration d:
// size / time = rate. Callers must ensure d > 0.
func (b Megabits) Over(d Seconds) Mbps { return Mbps(float64(b) / float64(d)) }
