// Package units defines the dimensioned scalar types shared by the SODA
// core, simulator and trace layers, so that bitrates, data sizes and
// durations cannot be mixed silently.
//
// The classic ABR bug class is a unit mix-up: the paper's objective combines
// bitrates in Mb/s, buffer levels in seconds and segment sizes in megabits,
// and a bits-vs-bytes or seconds-vs-milliseconds slip corrupts every
// downstream decision while remaining perfectly type-correct float64
// arithmetic. Each quantity here is a defined type over float64, so
//
//   - arithmetic between *different* unit types does not compile,
//   - conversions between units of the same dimension go through the named
//     methods below (Seconds.Milliseconds, Mbps.Kbps, Megabits.Bits, ...),
//     which apply the scale factor exactly once, and
//   - dimension-changing operations (rate x time = size, size / rate = time)
//     are spelled as methods whose names state the result.
//
// The static twin of this package is the `unitsafe` analyzer
// (internal/lint/unitsafe), which additionally flags the two remaining
// loopholes the type system leaves open: direct conversions between two unit
// types (e.g. Seconds(ms) — compiles because the underlying type matches,
// silently off by 1000x) and raw untyped literals passed where a unit type
// is expected.
//
// Converting to and from plain float64 is allowed for dimensionless
// arithmetic (cost functions, utilities, statistics) and at serialization
// boundaries. The decision path (abr.Context, the predictors, qoe, the
// player and production harnesses) is fully typed; only packages tagged as
// wire boundaries (proto, httpseg, dash, trace — see the `nofloat64wire`
// analyzer) may launder unit values into foreign float64 APIs. Keep the
// dimensioned form as long as the value has a unit.
//
// All types use float64 underneath and incur zero runtime cost: the
// conversions and helper methods compile to the identical floating-point
// operations the untyped code performed, in the same order, so migrating an
// expression to units never changes its bits.
package units

// Seconds is a duration or buffer level in seconds of (video) time.
type Seconds float64

// Minutes is a duration in minutes; used by the engagement model and the
// production A/B study, where viewing durations and live-event lengths are
// natively quoted in minutes.
type Minutes float64

// Milliseconds is a duration in milliseconds; used at network-emulation and
// HTTP boundaries where latencies are natively quoted in ms.
type Milliseconds float64

// Mbps is a data rate in megabits per second — the native unit of bitrate
// ladders and throughput traces in this repository.
type Mbps float64

// Kbps is a data rate in kilobits per second; used at boundaries (DASH
// manifests, logs) where bitrates are natively quoted in Kbps.
type Kbps float64

// Megabits is a data size in megabits — the native unit of segment sizes.
type Megabits float64

// Bits is a data size in bits; used at wire/manifest boundaries.
type Bits float64

// Milliseconds converts seconds to milliseconds.
func (s Seconds) Milliseconds() Milliseconds { return Milliseconds(s * 1e3) }

// Seconds converts milliseconds to seconds.
func (ms Milliseconds) Seconds() Seconds { return Seconds(ms / 1e3) }

// Minutes converts seconds to minutes.
func (s Seconds) Minutes() Minutes { return Minutes(s / 60) }

// Seconds converts minutes to seconds.
func (m Minutes) Seconds() Seconds { return Seconds(m * 60) }

// Kbps converts a rate in Mb/s to Kb/s.
func (r Mbps) Kbps() Kbps { return Kbps(r * 1e3) }

// Mbps converts a rate in Kb/s to Mb/s.
func (r Kbps) Mbps() Mbps { return Mbps(r / 1e3) }

// Bits converts megabits to bits.
func (b Megabits) Bits() Bits { return Bits(b * 1e6) }

// Megabits converts bits to megabits.
func (b Bits) Megabits() Megabits { return Megabits(b / 1e6) }

// Scale returns the duration scaled by a dimensionless factor.
func (s Seconds) Scale(f float64) Seconds { return Seconds(float64(s) * f) }

// Scale returns the rate scaled by a dimensionless factor (safety margins,
// discounts, noise): f·r has the same dimension as r.
func (r Mbps) Scale(f float64) Mbps { return Mbps(float64(r) * f) }

// Scale returns the size scaled by a dimensionless factor.
func (b Megabits) Scale(f float64) Megabits { return Megabits(float64(b) * f) }

// Bps returns the rate's magnitude in bits per second, for wire formats
// (e.g. the DASH MPD @bandwidth attribute) that are natively
// bits-per-second integers.
func (r Mbps) Bps() float64 { return float64(r) * 1e6 }

// MegabitsIn returns the data volume carried at rate r over duration d:
// rate x time = size.
func (r Mbps) MegabitsIn(d Seconds) Megabits { return Megabits(float64(r) * float64(d)) }

// AtRate returns the time needed to transfer b at rate r: size / rate = time.
// Callers must ensure r > 0.
func (b Megabits) AtRate(r Mbps) Seconds { return Seconds(float64(b) / float64(r)) }

// Over returns the mean rate that transfers b in duration d:
// size / time = rate. Callers must ensure d > 0.
func (b Megabits) Over(d Seconds) Mbps { return Mbps(float64(b) / float64(d)) }
