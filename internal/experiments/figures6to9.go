package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/predictor"
	"repro/internal/stats"
	"repro/internal/textplot"
	"repro/internal/trace"
	"repro/internal/tracegen"
	"repro/internal/units"
	"repro/internal/video"
)

// traceFigure4 is the throughput function of the paper's Figure 4.
func traceFigure4() *trace.Trace {
	return trace.New([]trace.Sample{{Duration: units.Seconds(1), Mbps: units.Mbps(4)}, {Duration: units.Seconds(1), Mbps: units.Mbps(1)}, {Duration: units.Seconds(2), Mbps: units.Mbps(2)}})
}

// Figure06Result reproduces Figure 6: the exponentially decaying
// perturbation property — optimal trajectories from two initial
// buffer/action pairs converge toward each other.
type Figure06Result struct {
	Distances []float64 // per-step trajectory distance
	HeadMean  float64
	TailMean  float64
}

// Figure06 solves the continuous problem from two initial conditions.
func Figure06() (*Figure06Result, error) {
	k := 18
	omega := make([]units.Mbps, k)
	for i := range omega {
		omega[i] = units.Mbps(8)
	}
	p := core.ContinuousProblem{
		Omega:       omega,
		X0:          units.Seconds(10),
		U0:          1.0 / 8,
		Beta:        0.5,
		Gamma:       1,
		Epsilon:     0.2,
		Target:      units.Seconds(12),
		Xmax:        units.Seconds(20),
		UMin:        1.0 / 12,
		UMax:        1.0 / 1.5,
		WDistortion: 1,
	}
	d, err := core.PerturbationDecay(p, units.Seconds(3), 0.5, 4000)
	if err != nil {
		return nil, err
	}
	res := &Figure06Result{Distances: d}
	third := len(d) / 3
	res.HeadMean = stats.Mean(d[:third])
	res.TailMean = stats.Mean(d[2*third:])
	return res, nil
}

// Render formats the Figure 6 report.
func (r *Figure06Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6: exponentially decaying perturbation (trajectory distance per step)\n  ")
	for _, d := range r.Distances {
		fmt.Fprintf(&b, "%.3f ", d)
	}
	fmt.Fprintf(&b, "\n  head mean %.4f -> tail mean %.4f\n", r.HeadMean, r.TailMean)
	xs := make([]float64, len(r.Distances))
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	b.WriteString(textplot.Lines("", []textplot.Series{{Name: "|Δ(x,u)| per step", X: xs, Y: r.Distances}}, 54, 10))
	return b.String()
}

// Figure07Result reproduces Figure 7: the prediction-vs-actual correlation
// of the dash.js predictors as a function of how far ahead they predict.
type Figure07Result struct {
	HorizonsSeconds []float64
	MACorrelation   []float64
	EMACorrelation  []float64
}

// Figure07 profiles the moving-average and EMA predictors on generated
// dataset sessions: at each segment completion the predictor's estimate is
// compared against the realized mean throughput h seconds ahead.
func Figure07(scale Scale) (*Figure07Result, error) {
	horizons := []float64{2, 4, 6, 8, 10, 14, 18, 24, 30}
	type predFactory struct {
		name string
		make func() predictor.Predictor
	}
	factories := []predFactory{
		{"ma", func() predictor.Predictor { return predictor.NewMovingAverage(4) }},
		{"ema", func() predictor.Predictor { return predictor.NewEMA(units.Seconds(4)) }},
	}
	res := &Figure07Result{HorizonsSeconds: horizons}

	sessions := scale.SessionsPerDataset / 2
	if sessions < 8 {
		sessions = 8
	}
	for fi, f := range factories {
		// Pool predicted/actual pairs across sessions and datasets.
		preds := make([][]float64, len(horizons))
		actuals := make([][]float64, len(horizons))
		for _, spec := range datasetSpecs() {
			ds, err := tracegen.Generate(spec.profile, sessions, scale.SessionSeconds, scale.Seed+uint64(fi))
			if err != nil {
				return nil, err
			}
			for _, tr := range ds.Sessions {
				p := f.make()
				// Walk the session in 2 s steps, observing realized
				// throughput like a player would.
				for t := units.Seconds(0); t+32 < tr.Duration(); t += 2 {
					observed := tr.MeanOver(t, units.Seconds(2))
					p.Observe(predictor.Sample{Mbps: observed, Duration: units.Seconds(2), EndTime: t + 2})
					est := p.Predict(t+2, units.Seconds(2))
					if est <= 0 {
						continue
					}
					for hi, h := range horizons {
						actual := tr.MeanOver(t+2+units.Seconds(h)-2, units.Seconds(2)) // the 2 s interval ending h ahead
						preds[hi] = append(preds[hi], float64(est))
						actuals[hi] = append(actuals[hi], float64(actual))
					}
				}
			}
		}
		cors := make([]float64, len(horizons))
		for hi := range horizons {
			cors[hi] = stats.Pearson(preds[hi], actuals[hi])
		}
		if f.name == "ma" {
			res.MACorrelation = cors
		} else {
			res.EMACorrelation = cors
		}
	}
	return res, nil
}

// Render formats the Figure 7 report.
func (r *Figure07Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7: predictor correlation vs prediction horizon\n")
	b.WriteString("  horizon(s):")
	for _, h := range r.HorizonsSeconds {
		fmt.Fprintf(&b, " %5.0f", h)
	}
	b.WriteString("\n  MA:        ")
	for _, c := range r.MACorrelation {
		fmt.Fprintf(&b, " %5.2f", c)
	}
	b.WriteString("\n  EMA:       ")
	for _, c := range r.EMACorrelation {
		fmt.Fprintf(&b, " %5.2f", c)
	}
	b.WriteString("\n")
	return b.String()
}

// Figure08Result reproduces Figure 8: the probability that the approximate
// (monotonic) solver's decision differs from brute force, as a function of
// the relative switching-cost weight, for several horizons.
type Figure08Result struct {
	RelativeWeights []float64
	Horizons        []int
	// Mismatch[k][w] is the probability for Horizons[k] and
	// RelativeWeights[w].
	Mismatch [][]float64
	// NodesPerSolve[k][w] is the mean number of nodes the branch-and-bound
	// monotone solver expanded per planning problem in the same sweep.
	NodesPerSolve [][]float64
	Samples       int
}

// relativeWeightUnit converts the figure's x-axis "relative switching cost
// weight" into the Config.Gamma scale (1.0 on the axis corresponds to this
// gamma).
const relativeWeightUnit = 0.3

// Figure08 samples random planning situations per configuration.
func Figure08(scale Scale) *Figure08Result {
	weights := []float64{0.25, 0.5, 1, 2, 4, 8}
	horizons := []int{2, 3, 4, 5}
	res := &Figure08Result{
		RelativeWeights: weights,
		Horizons:        horizons,
		Samples:         scale.SolverSamples,
	}
	for _, k := range horizons {
		row := make([]float64, len(weights))
		nodes := make([]float64, len(weights))
		for wi, w := range weights {
			cfg := core.DefaultConfig()
			cfg.Horizon = k
			cfg.Gamma = w * relativeWeightUnit
			st := core.MismatchProbabilityStats(cfg, video.YouTube4K(), units.Seconds(20), scale.SolverSamples, scale.Seed+uint64(k))
			row[wi] = st.Probability
			nodes[wi] = st.NodesPerSolve
		}
		res.Mismatch = append(res.Mismatch, row)
		res.NodesPerSolve = append(res.NodesPerSolve, nodes)
	}
	return res
}

// Render formats the Figure 8 report.
func (r *Figure08Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: P(approximate decision != brute force), %d samples/config\n", r.Samples)
	b.WriteString("  rel.weight:")
	for _, w := range r.RelativeWeights {
		fmt.Fprintf(&b, " %6.2f", w)
	}
	b.WriteString("\n")
	for ki, k := range r.Horizons {
		fmt.Fprintf(&b, "  K=%d:      ", k)
		for _, p := range r.Mismatch[ki] {
			fmt.Fprintf(&b, " %6.4f", p)
		}
		b.WriteString("\n")
	}
	if len(r.NodesPerSolve) == len(r.Horizons) {
		b.WriteString("  branch-and-bound nodes/solve:\n")
		for ki, k := range r.Horizons {
			fmt.Fprintf(&b, "  K=%d:      ", k)
			for _, n := range r.NodesPerSolve[ki] {
				fmt.Fprintf(&b, " %6.1f", n)
			}
			b.WriteString("\n")
		}
	}
	series := make([]textplot.Series, 0, len(r.Horizons))
	for ki, k := range r.Horizons {
		series = append(series, textplot.Series{
			Name: fmt.Sprintf("K=%d", k),
			X:    r.RelativeWeights,
			Y:    r.Mismatch[ki],
		})
	}
	b.WriteString(textplot.Lines("", series, 54, 10))
	return b.String()
}

// Figure09Result reproduces Figure 9: the throughput distribution summary of
// the three datasets.
type Figure09Result struct {
	Names     []float64ByName
	Histogram map[string]*stats.Histogram
}

// float64ByName pairs dataset stats with a name.
type float64ByName struct {
	Name     string
	MeanMbps float64
	RSD      float64
	Sessions int
}

// Figure09 generates the three datasets and summarizes them.
func Figure09(scale Scale) (*Figure09Result, error) {
	res := &Figure09Result{Histogram: map[string]*stats.Histogram{}}
	for _, spec := range datasetSpecs() {
		ds, err := tracegen.Generate(spec.profile, scale.SessionsPerDataset, scale.SessionSeconds, scale.Seed)
		if err != nil {
			return nil, err
		}
		var all []float64
		for _, s := range ds.Sessions {
			all = append(all, s.Bandwidths()...)
		}
		res.Names = append(res.Names, float64ByName{
			Name:     spec.name,
			MeanMbps: float64(ds.MeanMbps()),
			RSD:      ds.RSD(),
			Sessions: len(ds.Sessions),
		})
		res.Histogram[spec.name] = stats.NewHistogram(all, 0, 150, 30)
	}
	return res, nil
}

// Render formats the Figure 9 report.
func (r *Figure09Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 9: dataset throughput characteristics (targets: puffer 57.1/47.2%, 5g 31.3/133%, 4g 13.0/80.6%)\n")
	for _, n := range r.Names {
		fmt.Fprintf(&b, "  %-7s mean %6.1f Mb/s  RSD %s  (%d sessions)\n", n.Name, n.MeanMbps, pct(n.RSD), n.Sessions)
	}
	return b.String()
}
