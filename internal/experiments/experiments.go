// Package experiments contains one driver per table and figure of the
// paper's evaluation. Every driver is deterministic for a given (Scale,
// seed), returns a structured result, and can render itself as a text
// report; the root-level benchmarks and cmd/soda-experiments are thin
// wrappers around these drivers.
//
// Paper-scale runs (230k sessions, 10^6 solver samples) are impractical in a
// test cycle; Scale controls the reduced defaults and can be multiplied via
// the SODA_EXPERIMENT_SCALE environment variable (e.g. "4" runs 4x more
// sessions everywhere).
package experiments

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"

	"repro/internal/abr"
	"repro/internal/core"
	"repro/internal/predictor"
	"repro/internal/qoe"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/tracegen"
	"repro/internal/units"
	"repro/internal/video"

	// Controller registrations.
	_ "repro/internal/baseline"
)

// Scale sets the workload sizes of the experiment drivers.
type Scale struct {
	// SessionsPerDataset is the session count per dataset bucket (Fig. 10).
	SessionsPerDataset int
	// SessionSeconds is the per-session stream length (the paper uses
	// 10-minute sessions).
	SessionSeconds units.Seconds
	// SolverSamples is the per-configuration sample count for the Fig. 8
	// solver-mismatch study (10^6 in the paper).
	SolverSamples int
	// NoiseSessions is the session count per noise level (Fig. 11).
	NoiseSessions int
	// PrototypeSessions is the session count per controller in the TCP
	// prototype evaluation (Fig. 12).
	PrototypeSessions int
	// PrototypeSegments is the per-session segment count for Fig. 12.
	PrototypeSegments int
	// ProdSessionsPerArm is the per-arm session count for Fig. 13.
	ProdSessionsPerArm int
	// Seed drives all generators.
	Seed uint64
	// Telemetry, when non-nil, collects decision events and solver/QoE
	// aggregates from the SODA arms of the drivers (cmd/soda-experiments
	// attaches one for its -telemetry flag). Recording never changes driver
	// output — sessions are bit-identical with or without it.
	Telemetry *telemetry.Collector
}

// DefaultScale returns the reduced default workload, honoring the
// SODA_EXPERIMENT_SCALE multiplier.
func DefaultScale() Scale {
	s := Scale{
		SessionsPerDataset: 40,
		SessionSeconds:     units.Seconds(600),
		SolverSamples:      4000,
		NoiseSessions:      30,
		PrototypeSessions:  8,
		PrototypeSegments:  90,
		ProdSessionsPerArm: 30,
		Seed:               20240804, // SIGCOMM '24 presentation date
	}
	if v := os.Getenv("SODA_EXPERIMENT_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			s.SessionsPerDataset = int(float64(s.SessionsPerDataset) * f)
			s.SolverSamples = int(float64(s.SolverSamples) * f)
			s.NoiseSessions = int(float64(s.NoiseSessions) * f)
			s.PrototypeSessions = int(float64(s.PrototypeSessions) * f)
			s.ProdSessionsPerArm = int(float64(s.ProdSessionsPerArm) * f)
		}
	}
	return s
}

// SimControllers are the controllers of the numerical simulations (§6.1.2).
var SimControllers = []string{"soda", "hyb", "bola", "dynamic", "mpc"}

// PrototypeControllers adds the learning-based baselines of the prototype
// evaluation (§6.2.2).
var PrototypeControllers = []string{"soda", "hyb", "bola", "dynamic", "mpc", "fugu", "rl"}

// evalPredictor returns the standard predictor of the simulation harness:
// the plain EMA that dash.js ships as its default and the paper adopts for
// the numerical simulations (§6.1.1).
func evalPredictor() predictor.Predictor { return predictor.NewEMA(units.Seconds(4)) }

// runControllerOnSessions simulates every session under a named controller
// and returns the per-session metrics.
func runControllerOnSessions(name string, ladder video.Ladder, sessions []*trace.Trace, sessionLength, bufferCap units.Seconds) ([]qoe.Metrics, error) {
	if _, err := abr.New(name, ladder); err != nil {
		return nil, err
	}
	factory := func() (abr.Controller, predictor.Predictor) {
		c, _ := abr.New(name, ladder)
		return c, evalPredictor()
	}
	return sim.RunDataset(sessions, factory, sim.Config{
		Ladder:         ladder,
		BufferCap:      bufferCap,
		SessionSeconds: sessionLength,
	})
}

// sharedCacheEntries sizes the per-bucket fleet solve cache of the Figure 10
// SODA runs — large enough that the quantized states of a dataset bucket
// never evict each other at the default MemoQuantum.
const sharedCacheEntries = 1 << 16

// solveTally sums per-session SODA solver statistics across a dataset run.
// Its hook runs on the sim.RunDataset worker goroutines, hence the lock.
type solveTally struct {
	mu       sync.Mutex
	sessions int
	stats    core.SolveStats
}

func (t *solveTally) hook(_ int, ctrl abr.Controller, _ sim.Result) {
	c, ok := ctrl.(*core.Controller)
	if !ok {
		return
	}
	s := c.SolveStats()
	t.mu.Lock()
	t.sessions++
	t.stats.Add(s)
	t.mu.Unlock()
}

// solvesPerSession is the mean number of CostModel solves one session ran —
// the quantity the shared cache exists to shrink.
func (t *solveTally) solvesPerSession() float64 {
	if t.sessions == 0 {
		return 0
	}
	return float64(t.stats.Solves) / float64(t.sessions)
}

// runSodaOnSessions is runControllerOnSessions for the SODA arm with a
// fleet-wide solve cache attached (nil runs uncached), returning the summed
// per-session solver statistics alongside the metrics. Decisions — and hence
// metrics — are bit-identical to the uncached runControllerOnSessions path;
// the shared-cache conformance contract in internal/abrtest pins this.
func runSodaOnSessions(ladder video.Ladder, sessions []*trace.Trace, sessionLength, bufferCap units.Seconds, cache *core.SolveCache, col *telemetry.Collector) ([]qoe.Metrics, *solveTally, error) {
	tally := &solveTally{}
	factory := func() (abr.Controller, predictor.Predictor) {
		cfg := core.DefaultConfig()
		cfg.SharedCache = cache
		return core.New(cfg, ladder), evalPredictor()
	}
	metrics, err := sim.RunDataset(sessions, factory, sim.Config{
		Ladder:         ladder,
		BufferCap:      bufferCap,
		SessionSeconds: sessionLength,
		OnResult:       tally.hook,
		Telemetry:      col,
	})
	return metrics, tally, err
}

// datasetSpec pairs a generated dataset with the ladder the paper uses on it.
type datasetSpec struct {
	name    string
	profile tracegen.Profile
	ladder  video.Ladder
}

func datasetSpecs() []datasetSpec {
	return []datasetSpec{
		{"puffer", tracegen.Puffer(), video.YouTube4K()},
		{"5g", tracegen.FiveG(), video.Mobile()},
		{"4g", tracegen.FourG(), video.Mobile()},
	}
}

// pct formats a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.2f%%", 100*f) }

// sortedKeys returns m's keys in ascending order. Every map iteration whose
// effects are observable (report text, tie-breaking) must go through this so
// runs are reproducible; the detrange analyzer enforces it.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
