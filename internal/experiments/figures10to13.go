package experiments

import (
	"fmt"
	"strings"

	"repro/internal/abr"
	"repro/internal/core"
	"repro/internal/predictor"
	"repro/internal/prod"
	"repro/internal/qoe"
	"repro/internal/sim"
	"repro/internal/textplot"
	"repro/internal/trace"
	"repro/internal/tracegen"
	"repro/internal/units"
	"repro/internal/video"

	"repro/internal/player"
)

// Figure10Result reproduces Figure 10: QoE scores and components for every
// controller over the six dataset buckets (Puffer variance quartiles Q1-Q4,
// 5G, 4G).
type Figure10Result struct {
	Buckets     []string
	Controllers []string
	// Aggregates[bucket][controller].
	Aggregates map[string]map[string]qoe.Aggregate
	// Cache[bucket] is the fleet solve cache's traffic for the SODA arm over
	// that bucket's sessions, and SodaSolvesPerSession[bucket] the mean
	// number of solver invocations one SODA session still ran with the cache
	// attached. The cache is bit-identical by contract, so these report pure
	// hot-path savings, not a behaviour change.
	Cache                map[string]core.CacheStats
	SodaSolvesPerSession map[string]float64
}

// Figure10 runs the full numerical-simulation comparison.
func Figure10(scale Scale) (*Figure10Result, error) {
	res := &Figure10Result{
		Controllers:          SimControllers,
		Aggregates:           map[string]map[string]qoe.Aggregate{},
		Cache:                map[string]core.CacheStats{},
		SodaSolvesPerSession: map[string]float64{},
	}

	// Puffer split into variance quartiles. Generate 4x sessions so each
	// quartile holds a full bucket.
	puffer, err := tracegen.Generate(tracegen.Puffer(), 4*scale.SessionsPerDataset, scale.SessionSeconds, scale.Seed)
	if err != nil {
		return nil, err
	}
	quartiles := puffer.QuartilesByRSD()
	type bucket struct {
		name     string
		sessions []*trace.Trace
		ladder   video.Ladder
	}
	buckets := []bucket{}
	for qi, sessions := range quartiles {
		buckets = append(buckets, bucket{
			name:     fmt.Sprintf("puffer-q%d", qi+1),
			sessions: sessions,
			ladder:   video.YouTube4K(),
		})
	}
	for _, spec := range datasetSpecs()[1:] { // 5g, 4g
		ds, err := tracegen.Generate(spec.profile, scale.SessionsPerDataset, scale.SessionSeconds, scale.Seed+9)
		if err != nil {
			return nil, err
		}
		buckets = append(buckets, bucket{name: spec.name, sessions: ds.Sessions, ladder: spec.ladder})
	}

	for _, bk := range buckets {
		res.Buckets = append(res.Buckets, bk.name)
		res.Aggregates[bk.name] = map[string]qoe.Aggregate{}
		for _, name := range res.Controllers {
			var metrics []qoe.Metrics
			var err error
			if name == "soda" {
				// SODA sessions share one solve cache per bucket, as a fleet
				// would per ladder/config; the hit rate lands in the report.
				cache := core.NewSolveCache(sharedCacheEntries)
				var tally *solveTally
				metrics, tally, err = runSodaOnSessions(bk.ladder, bk.sessions, scale.SessionSeconds, units.Seconds(20), cache, scale.Telemetry)
				if err == nil {
					res.Cache[bk.name] = cache.Stats()
					res.SodaSolvesPerSession[bk.name] = tally.solvesPerSession()
				}
			} else {
				metrics, err = runControllerOnSessions(name, bk.ladder, bk.sessions, scale.SessionSeconds, units.Seconds(20))
			}
			if err != nil {
				return nil, fmt.Errorf("figure10: %s/%s: %w", bk.name, name, err)
			}
			res.Aggregates[bk.name][name] = qoe.Aggregated(name, metrics)
		}
	}
	return res, nil
}

// Best returns the controller with the highest mean QoE in a bucket.
func (r *Figure10Result) Best(bucket string) string {
	best, bestScore := "", -1e18
	for _, name := range sortedKeys(r.Aggregates[bucket]) {
		if agg := r.Aggregates[bucket][name]; agg.Score.Mean > bestScore {
			best, bestScore = name, agg.Score.Mean
		}
	}
	return best
}

// Render formats the Figure 10 report.
func (r *Figure10Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 10: mean QoE / utility / rebuffering / switching per dataset bucket\n")
	for _, bucket := range r.Buckets {
		fmt.Fprintf(&b, "== %s\n", bucket)
		for _, name := range r.Controllers {
			fmt.Fprintf(&b, "  %s\n", r.Aggregates[bucket][name].String())
		}
		if st, ok := r.Cache[bucket]; ok && st.Lookups > 0 {
			fmt.Fprintf(&b, "  soda shared cache: %s, %.1f solves/session\n",
				st.String(), r.SodaSolvesPerSession[bucket])
		}
	}
	return b.String()
}

// Figure11Result reproduces Figure 11: mean QoE under increasing white noise
// applied to a perfect short-term predictor.
type Figure11Result struct {
	NoiseLevels []float64
	Controllers []string
	// Scores[controller][noise index] is the mean QoE score.
	Scores map[string][]float64
	// CI[controller][noise index] is the 95% half-width.
	CI map[string][]float64
}

// Figure11 sweeps the noise level with throughput-prediction discounts off
// (plain MPC rather than RobustMPC; SODA has no discount by design).
func Figure11(scale Scale) (*Figure11Result, error) {
	noise := []float64{0, 0.1, 0.2, 0.3, 0.5, 0.7, 1.0}
	res := &Figure11Result{
		NoiseLevels: noise,
		Controllers: SimControllers,
		Scores:      map[string][]float64{},
		CI:          map[string][]float64{},
	}
	// A mixed random subset across the three datasets (§6.1.4 uses a random
	// 10k-session subset of the full corpus).
	var sessions []*trace.Trace
	ladder := video.Mobile()
	for _, spec := range datasetSpecs()[1:] {
		ds, err := tracegen.Generate(spec.profile, scale.NoiseSessions, scale.SessionSeconds, scale.Seed+31)
		if err != nil {
			return nil, err
		}
		sessions = append(sessions, ds.Sessions...)
	}

	for _, name := range res.Controllers {
		if _, err := abr.New(name, ladder); err != nil {
			return nil, err
		}
		scores := make([]float64, len(noise))
		cis := make([]float64, len(noise))
		for ni, lvl := range noise {
			level := lvl
			var counter uint64
			factory := func() (abr.Controller, predictor.Predictor) {
				c, _ := abr.New(name, ladder)
				counter++
				var p predictor.Predictor
				// The perfect predictor needs the session trace; it is bound
				// per session inside the dataset runner via the closure
				// below, so build it lazily through a shim.
				p = &perfectShim{noise: level, seed: scale.Seed + counter}
				return c, p
			}
			metrics, err := runNoisyDataset(sessions, factory, sim.Config{
				Ladder:         ladder,
				BufferCap:      units.Seconds(20),
				SessionSeconds: scale.SessionSeconds,
			})
			if err != nil {
				return nil, fmt.Errorf("figure11: %s noise %v: %w", name, lvl, err)
			}
			agg := qoe.Aggregated(name, metrics)
			scores[ni] = agg.Score.Mean
			cis[ni] = agg.Score.CI95
		}
		res.Scores[name] = scores
		res.CI[name] = cis
	}
	return res, nil
}

// perfectShim is a Perfect+Noise predictor whose trace is bound when the
// session starts (the simulator Reset()s predictors before use; the runner
// below injects the trace beforehand).
type perfectShim struct {
	noise float64
	seed  uint64
	inner predictor.Predictor
}

func (p *perfectShim) bind(tr *trace.Trace) {
	p.inner = predictor.NewNoisy(&predictor.Perfect{Trace: tr}, p.noise, p.seed)
}

// Observe implements predictor.Predictor.
func (p *perfectShim) Observe(s predictor.Sample) {
	if p.inner != nil {
		p.inner.Observe(s)
	}
}

// Predict implements predictor.Predictor.
func (p *perfectShim) Predict(now, horizon units.Seconds) units.Mbps {
	if p.inner == nil {
		return 0
	}
	return p.inner.Predict(now, horizon)
}

// Reset implements predictor.Predictor.
func (p *perfectShim) Reset() {
	if p.inner != nil {
		p.inner.Reset()
	}
}

// runNoisyDataset is sim.RunDataset with per-session trace binding for the
// perfect predictor (the oracle must see the session it predicts).
func runNoisyDataset(sessions []*trace.Trace, factory sim.SessionFactory, base sim.Config) ([]qoe.Metrics, error) {
	out := make([]qoe.Metrics, len(sessions))
	for i, tr := range sessions {
		c, p := factory()
		if shim, ok := p.(*perfectShim); ok {
			shim.bind(tr)
		}
		cfg := base
		cfg.Controller = c
		cfg.Predictor = p
		res, err := sim.Run(tr, cfg)
		if err != nil {
			return nil, err
		}
		out[i] = res.Metrics
	}
	return out, nil
}

// Render formats the Figure 11 report.
func (r *Figure11Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 11: mean QoE vs white-noise level on a perfect predictor\n  noise:   ")
	for _, n := range r.NoiseLevels {
		fmt.Fprintf(&b, " %6.0f%%", 100*n)
	}
	b.WriteString("\n")
	for _, name := range r.Controllers {
		fmt.Fprintf(&b, "  %-8s", name)
		for _, s := range r.Scores[name] {
			fmt.Fprintf(&b, " %7.3f", s)
		}
		b.WriteString("\n")
	}
	series := make([]textplot.Series, 0, len(r.Controllers))
	for _, name := range r.Controllers {
		series = append(series, textplot.Series{Name: name, X: r.NoiseLevels, Y: r.Scores[name]})
	}
	b.WriteString(textplot.Lines("", series, 54, 12))
	return b.String()
}

// Figure12Result reproduces Figure 12: the prototype evaluation over real
// TCP with trace shaping and SSIM utility.
type Figure12Result struct {
	Controllers []string
	Aggregates  map[string]qoe.Aggregate
	TimeScale   float64
}

// Figure12 runs every controller through the loopback TCP prototype on a
// low-bandwidth session set (the paper selects Puffer sessions with mean
// throughput below 2 Mb/s to stress the 2 Mb/s-topped prototype ladder).
func Figure12(scale Scale) (*Figure12Result, error) {
	// A challenged-network profile: mean 1.1 Mb/s around the prototype
	// ladder's middle rungs.
	profile := tracegen.Profile{
		Name:           "prototype-lowbw",
		TargetMeanMbps: 1.1,
		TargetRSD:      0.65,
		States:         []tracegen.State{{RelMean: 1.6}, {RelMean: 0.9}, {RelMean: 0.4}},
		Transition: [][]float64{
			{0.985, 0.012, 0.003},
			{0.015, 0.970, 0.015},
			{0.008, 0.022, 0.970},
		},
		StepSeconds: 1,
		AR:          0.9,
	}
	ladder := video.Prototype()
	sessionLength := ladder.SegmentSeconds.Scale(float64(scale.PrototypeSegments))
	ds, err := tracegen.Generate(profile, scale.PrototypeSessions, sessionLength+30, scale.Seed+55)
	if err != nil {
		return nil, err
	}
	const timeScale = 30
	res := &Figure12Result{Controllers: PrototypeControllers, Aggregates: map[string]qoe.Aggregate{}, TimeScale: timeScale}

	for _, name := range res.Controllers {
		var metrics []qoe.Metrics
		for _, tr := range ds.Sessions {
			ctrl, err := abr.New(name, ladder)
			if err != nil {
				return nil, err
			}
			var p predictor.Predictor
			if name == "fugu" {
				p = predictor.NewEmpiricalQuantile(16)
			} else {
				p = predictor.NewSafeEMA()
			}
			out, err := player.RunSession(player.SessionSpec{
				Trace:         tr,
				Ladder:        ladder,
				TotalSegments: scale.PrototypeSegments,
				TimeScale:     timeScale,
				Player: player.Config{
					Controller: ctrl,
					Predictor:  p,
					BufferCap:  units.Seconds(15), // Puffer's cap (§6.2)
				},
			})
			if err != nil {
				return nil, fmt.Errorf("figure12: %s: %w", name, err)
			}
			metrics = append(metrics, out.Metrics)
		}
		res.Aggregates[name] = qoe.Aggregated(name, metrics)
	}
	return res, nil
}

// Best returns the controller with the highest mean QoE.
func (r *Figure12Result) Best() string {
	best, bestScore := "", -1e18
	for _, name := range sortedKeys(r.Aggregates) {
		if agg := r.Aggregates[name]; agg.Score.Mean > bestScore {
			best, bestScore = name, agg.Score.Mean
		}
	}
	return best
}

// Render formats the Figure 12 report.
func (r *Figure12Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12: TCP prototype evaluation (SSIM utility, 15 s buffer, %gx time compression)\n", r.TimeScale)
	for _, name := range r.Controllers {
		fmt.Fprintf(&b, "  %s\n", r.Aggregates[name].String())
	}
	return b.String()
}

// Figure13Result reproduces Figure 13: the production A/B experiment.
type Figure13Result struct {
	Reports []prod.FamilyReport
}

// Figure13 runs the device-family A/B experiment.
func Figure13(scale Scale) (*Figure13Result, error) {
	cfg := prod.DefaultConfig()
	cfg.SessionsPerArm = scale.ProdSessionsPerArm
	cfg.SessionLength = scale.SessionSeconds
	cfg.Seed = scale.Seed
	if scale.Telemetry != nil {
		cfg.Telemetry = scale.Telemetry.Registry
	}
	reports, err := prod.Run(cfg)
	if err != nil {
		return nil, err
	}
	return &Figure13Result{Reports: reports}, nil
}

// Render formats the Figure 13 report.
func (r *Figure13Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 13: production A/B — SODA vs fine-tuned baseline (relative change)\n")
	for _, rep := range r.Reports {
		fmt.Fprintf(&b, "  %s\n", rep.String())
		if st := rep.Treatment.Cache; st.Lookups > 0 {
			fmt.Fprintf(&b, "    %s treatment shared cache: %s\n", rep.Family, st.String())
		}
	}
	labels := make([]string, 0, len(r.Reports))
	deltas := make([]float64, 0, len(r.Reports))
	for _, rep := range r.Reports {
		labels = append(labels, rep.Family)
		deltas = append(deltas, 100*rep.SwitchDelta)
	}
	b.WriteString(textplot.Bars("  switching delta (%)", labels, deltas, 30))
	return b.String()
}
