package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/units"
	"repro/internal/video"
)

// Table01Row is one qualitative row of Table 1, derived from measured data
// rather than hand-assigned.
type Table01Row struct {
	Controller string
	Theory     string
	Quality    string
	Rebuffer   string
	Switching  string
	Deploy     string
}

// Table01Result reproduces Table 1: the qualitative evaluation summary.
type Table01Result struct {
	Rows []Table01Row
}

// theoryAndDeploy holds the two non-measured columns of Table 1, which come
// from the papers themselves rather than experiments.
var theoryAndDeploy = map[string][2]string{
	"soda":    {"Q + R + S", "high"},
	"hyb":     {"none", "high"},
	"bola":    {"Q + R", "high"},
	"dynamic": {"Q + R", "high"},
	"mpc":     {"none", "low"},
	"fugu":    {"none", "low"},
	"rl":      {"none", "low"},
}

// Table01 classifies measured Figure 10/12 aggregates into the qualitative
// buckets of Table 1. Quality and rebuffering use absolute thresholds;
// switching is classified by each controller's mean ratio to the best
// (lowest) switching rate in the same bucket, because absolute switching
// rates differ by an order of magnitude between the simulation buckets and
// the dense-ladder prototype.
func Table01(fig10 *Figure10Result, fig12 *Figure12Result) *Table01Result {
	// Per-bucket switching minima for the ratio classification.
	bucketMin := map[string]float64{}
	for _, bucket := range fig10.Buckets {
		lo := math.Inf(1)
		for _, name := range sortedKeys(fig10.Aggregates[bucket]) {
			lo = math.Min(lo, fig10.Aggregates[bucket][name].SwitchRate.Mean)
		}
		bucketMin[bucket] = lo
	}
	fig12Min := math.Inf(1)
	for _, name := range sortedKeys(fig12.Aggregates) {
		fig12Min = math.Min(fig12Min, fig12.Aggregates[name].SwitchRate.Mean)
	}

	res := &Table01Result{}
	for _, name := range PrototypeControllers {
		var util, rebuf, swRatio []float64
		for _, bucket := range fig10.Buckets {
			if agg, ok := fig10.Aggregates[bucket][name]; ok {
				util = append(util, agg.MeanUtility.Mean)
				rebuf = append(rebuf, agg.RebufferRatio.Mean)
				if lo := bucketMin[bucket]; lo > 0 {
					swRatio = append(swRatio, agg.SwitchRate.Mean/lo)
				}
			}
		}
		if agg, ok := fig12.Aggregates[name]; ok {
			util = append(util, agg.MeanUtility.Mean)
			rebuf = append(rebuf, agg.RebufferRatio.Mean)
			if fig12Min > 0 {
				swRatio = append(swRatio, agg.SwitchRate.Mean/fig12Min)
			}
		}
		if len(util) == 0 {
			continue
		}
		row := Table01Row{
			Controller: name,
			Theory:     theoryAndDeploy[name][0],
			Deploy:     theoryAndDeploy[name][1],
			Quality:    classifyHigh(mean(util), 0.75, 0.55),
			Rebuffer:   classifyLow(mean(rebuf), 0.005, 0.015, "short", "medium", "long"),
			Switching:  classifyLow(mean(swRatio), 1.45, 2.5, "ultra low", "medium", "high"),
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func classifyHigh(v, hi, mid float64) string {
	switch {
	case v >= hi:
		return "high"
	case v >= mid:
		return "medium"
	default:
		return "low"
	}
}

func classifyLow(v, lo, mid float64, a, b, c string) string {
	switch {
	case v <= lo:
		return a
	case v <= mid:
		return b
	default:
		return c
	}
}

// Render formats Table 1.
func (t *Table01Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 1: qualitative summary (derived from measured data)\n")
	b.WriteString(fmt.Sprintf("  %-9s %-10s %-8s %-9s %-10s %-7s\n", "ctrl", "theory", "quality", "rebuffer", "switching", "deploy"))
	for _, r := range t.Rows {
		b.WriteString(fmt.Sprintf("  %-9s %-10s %-8s %-9s %-10s %-7s\n", r.Controller, r.Theory, r.Quality, r.Rebuffer, r.Switching, r.Deploy))
	}
	return b.String()
}

// TheoremRegretResult is the empirical Theorem 4.1 study: dynamic regret and
// competitive ratio versus the prediction horizon with exact predictions.
type TheoremRegretResult struct {
	Horizons         []int
	Regret           []float64
	CompetitiveRatio []float64
	OfflineOptimal   float64
}

// TheoremRegret evaluates SODA's receding-horizon cost against the offline
// DP optimum on a synthetic bandwidth sequence.
func TheoremRegret() (*TheoremRegretResult, error) {
	cfg := core.DefaultConfig()
	cfg.Gamma = 1
	m := core.NewCostModel(cfg, video.Mobile(), units.Seconds(20))
	n := 80
	omegas := make([]units.Mbps, n)
	for i := range omegas {
		omegas[i] = units.Mbps(7 + 4*math.Sin(float64(i)/4))
		if i > n/2 {
			omegas[i] = units.Mbps(math.Max(3, float64(omegas[i])-2))
		}
	}
	opt, _, err := core.OfflineSolve(m, omegas, units.Seconds(10), -1, 400)
	if err != nil {
		return nil, err
	}
	res := &TheoremRegretResult{OfflineOptimal: opt}
	for _, k := range []int{1, 2, 3, 4, 6, 8, 10} {
		cost, _, err := core.RecedingHorizonCost(m, omegas, units.Seconds(10), k, false)
		if err != nil {
			return nil, err
		}
		res.Horizons = append(res.Horizons, k)
		res.Regret = append(res.Regret, cost-opt)
		res.CompetitiveRatio = append(res.CompetitiveRatio, cost/opt)
	}
	return res, nil
}

// Render formats the regret study.
func (r *TheoremRegretResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Theorem 4.1 (empirical): cost(OPT) = %.4f\n", r.OfflineOptimal)
	for i, k := range r.Horizons {
		fmt.Fprintf(&b, "  K=%-2d regret %8.4f  competitive ratio %.4f\n", k, r.Regret[i], r.CompetitiveRatio[i])
	}
	return b.String()
}

// TheoremMonotoneResult is the empirical Theorem 4.3 / Lemma A.10 study: the
// monotonicity violation of the continuous optimum versus gamma, with the
// theorem's bound.
type TheoremMonotoneResult struct {
	Gammas     []float64
	Violations []float64
	Bounds     []float64
}

// TheoremMonotone sweeps gamma on the continuous relaxation.
func TheoremMonotone() (*TheoremMonotoneResult, error) {
	k := 8
	omega := make([]units.Mbps, k)
	for i := range omega {
		omega[i] = units.Mbps(8)
	}
	base := core.ContinuousProblem{
		Omega: omega, X0: units.Seconds(5), U0: 1.0 / 8,
		Beta: 0.5, Gamma: 1, Epsilon: 0.2, Target: units.Seconds(12), Xmax: units.Seconds(20),
		UMin: 1.0 / 12, UMax: 1.0 / 1.5, WDistortion: 1,
	}
	res := &TheoremMonotoneResult{}
	for _, gamma := range []float64{0.01, 0.1, 1, 10, 100, 1e4, 1e6} {
		p := base
		p.Gamma = gamma
		sol, err := p.Solve(3000)
		if err != nil {
			return nil, err
		}
		// Monotonicity violation: magnitude of direction reversals.
		var up, down float64
		prev := p.U0
		for _, u := range sol.U {
			if d := u - prev; d > 0 {
				up += d
			} else {
				down -= d
			}
			prev = u
		}
		viol := math.Min(up, down)
		stuff := 8*(1/(1.5*1.5)-1/(12.0*12.0)) + p.Beta*math.Max(float64(p.Target)*float64(p.Target), p.Epsilon*float64(p.Xmax-p.Target)*float64(p.Xmax-p.Target))
		bound := float64(k) * math.Sqrt(stuff/gamma)
		res.Gammas = append(res.Gammas, gamma)
		res.Violations = append(res.Violations, viol)
		res.Bounds = append(res.Bounds, bound)
	}
	return res, nil
}

// Render formats the monotone-structure study.
func (r *TheoremMonotoneResult) Render() string {
	var b strings.Builder
	b.WriteString("Theorem 4.3 / Lemma A.10 (empirical): monotonicity violation vs gamma\n")
	for i, g := range r.Gammas {
		fmt.Fprintf(&b, "  gamma=%-8.2g violation %.5f  (O(K/sqrt(gamma)) bound %.3f)\n", g, r.Violations[i], r.Bounds[i])
	}
	return b.String()
}
