package experiments

import (
	"strings"
	"testing"
)

func ablScale() Scale {
	s := testScale()
	s.SessionsPerDataset = 8
	s.SessionSeconds = 300
	return s
}

func TestAblationTargetFraction(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	res, err := AblationTargetFraction(ablScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// A higher target is more defensive: rebuffering must not increase as
	// the target rises.
	lo := res.Points[0].Aggregate.RebufferRatio.Mean
	hi := res.Points[len(res.Points)-1].Aggregate.RebufferRatio.Mean
	if hi > lo+0.002 {
		t.Errorf("raising the buffer target increased rebuffering: %v -> %v", lo, hi)
	}
	if !strings.Contains(res.Render(), "target=") {
		t.Error("render missing labels")
	}
}

func TestAblationEpsilonAndGamma(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	eps, err := AblationEpsilon(ablScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(eps.Points) != 5 {
		t.Fatalf("eps points = %d", len(eps.Points))
	}
	gamma, err := AblationSwitchingWeight(ablScale())
	if err != nil {
		t.Fatal(err)
	}
	// Gamma's defining trade-off: more smoothing weight, fewer switches.
	first := gamma.Points[0].Aggregate.SwitchRate.Mean
	last := gamma.Points[len(gamma.Points)-1].Aggregate.SwitchRate.Mean
	if last > first {
		t.Errorf("raising gamma increased switching: %v -> %v", first, last)
	}
}

func TestAblationHorizonQoE(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	res, err := AblationHorizonQoE(ablScale())
	if err != nil {
		t.Fatal(err)
	}
	// Longer planning should not hurt badly: K=5 within a modest margin of
	// the best point, and K=1 is never the only acceptable configuration.
	best := -1e18
	for _, p := range res.Points {
		if p.Aggregate.Score.Mean > best {
			best = p.Aggregate.Score.Mean
		}
	}
	k5 := res.Points[len(res.Points)-1].Aggregate.Score.Mean
	if k5 < best-0.1 {
		t.Errorf("K=5 QoE %.3f far below best %.3f\n%s", k5, best, res.Render())
	}
}

func TestAblationAbandonment(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	res, err := AblationAbandonment(ablScale())
	if err != nil {
		t.Fatal(err)
	}
	off := res.Points[0].Aggregate
	on := res.Points[1].Aggregate
	// Abandonment can only help rebuffering (it never triggers on healthy
	// downloads).
	if on.RebufferRatio.Mean > off.RebufferRatio.Mean+0.002 {
		t.Errorf("abandonment increased rebuffering: %v -> %v",
			off.RebufferRatio.Mean, on.RebufferRatio.Mean)
	}
}

func TestUltraLowLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	res, err := UltraLowLatency(ablScale())
	if err != nil {
		t.Fatal(err)
	}
	soda := res.PerController["soda"]
	if len(soda) != len(res.Budgets) {
		t.Fatalf("budget points = %d", len(soda))
	}
	// §8's premise: the tightest budget is at least as hard as traditional
	// live for rebuffering.
	if soda[0].RebufferRatio.Mean+1e-9 < soda[len(soda)-1].RebufferRatio.Mean {
		t.Errorf("4s budget rebuffering (%v) below 20s budget (%v)",
			soda[0].RebufferRatio.Mean, soda[len(soda)-1].RebufferRatio.Mean)
	}
	// SODA remains smoother than Dynamic even under tight budgets.
	dyn := res.PerController["dynamic"]
	if soda[0].SwitchRate.Mean > dyn[0].SwitchRate.Mean+0.05 {
		t.Errorf("SODA switching %v far above Dynamic %v at the 4s budget",
			soda[0].SwitchRate.Mean, dyn[0].SwitchRate.Mean)
	}
	if !strings.Contains(res.Render(), "budget") {
		t.Error("render missing budgets")
	}
}

func TestAblationPredictor(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	res, err := AblationPredictor(ablScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// SODA is robust by design: no simple predictor should collapse it.
	for _, p := range res.Points {
		if p.Aggregate.Score.Mean < 0.3 {
			t.Errorf("%s: QoE %.3f — predictor choice collapsed SODA", p.Label, p.Aggregate.Score.Mean)
		}
	}
}

func TestOracleGap(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	res, err := OracleGap(ablScale())
	if err != nil {
		t.Fatal(err)
	}
	if res.OracleScore.Mean <= 0 {
		t.Fatalf("oracle score = %v", res.OracleScore.Mean)
	}
	for _, name := range res.Controllers {
		frac := res.RealizedFraction[name]
		if frac > 1.1 {
			t.Errorf("%s realizes %.2f of the oracle — impossible", name, frac)
		}
		if frac < 0 {
			t.Errorf("%s fraction negative: %v", name, frac)
		}
	}
	// SODA realizes a large share of the attainable QoE.
	if res.RealizedFraction["soda"] < 0.6 {
		t.Errorf("soda realizes only %.2f of the oracle\n%s", res.RealizedFraction["soda"], res.Render())
	}
}
