package experiments

import (
	"fmt"
	"strings"

	"repro/internal/abr"
	"repro/internal/core"
	"repro/internal/predictor"
	"repro/internal/qoe"
	"repro/internal/sim"
	"repro/internal/tracegen"
	"repro/internal/units"
	"repro/internal/video"
)

// AblationPoint is one configuration's aggregate outcome.
type AblationPoint struct {
	Label     string
	Aggregate qoe.Aggregate
}

// AblationResult is a one-dimensional design-choice sweep.
type AblationResult struct {
	Name   string
	Points []AblationPoint
}

// Render formats the sweep.
func (r *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: %s\n", r.Name)
	for _, p := range r.Points {
		// The aggregate string already leads with the point's label.
		fmt.Fprintf(&b, "  %s\n", p.Aggregate.String())
	}
	return b.String()
}

// runSODAVariant simulates a SODA config over a 4G dataset (the most
// differentiating conditions) and aggregates.
func runSODAVariant(label string, cfg core.Config, scale Scale, simCfg sim.Config) (AblationPoint, error) {
	ds, err := tracegen.Generate(tracegen.FourG(), scale.SessionsPerDataset, scale.SessionSeconds, scale.Seed+101)
	if err != nil {
		return AblationPoint{}, err
	}
	ladder := video.Mobile()
	factory := func() (abr.Controller, predictor.Predictor) {
		return core.New(cfg, ladder), predictor.NewEMA(units.Seconds(4))
	}
	base := simCfg
	base.Ladder = ladder
	if base.BufferCap == 0 {
		base.BufferCap = 20
	}
	base.SessionSeconds = scale.SessionSeconds
	metrics, err := sim.RunDataset(ds.Sessions, factory, base)
	if err != nil {
		return AblationPoint{}, err
	}
	return AblationPoint{Label: label, Aggregate: qoe.Aggregated(label, metrics)}, nil
}

// AblationTargetFraction sweeps the buffer-target placement x̄/xmax — the
// central design knob of SODA's buffer-stability objective.
func AblationTargetFraction(scale Scale) (*AblationResult, error) {
	res := &AblationResult{Name: "buffer target fraction (x̄/xmax)"}
	for _, tf := range []float64{0.3, 0.45, 0.6, 0.75, 0.9} {
		cfg := core.DefaultConfig()
		cfg.TargetFraction = tf
		p, err := runSODAVariant(fmt.Sprintf("target=%.2f", tf), cfg, scale, sim.Config{})
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// AblationEpsilon sweeps the overfull-buffer roll-off ε of b(x).
func AblationEpsilon(scale Scale) (*AblationResult, error) {
	res := &AblationResult{Name: "buffer-cost roll-off epsilon"}
	for _, eps := range []float64{0.02, 0.1, 0.2, 0.5, 0.9} {
		cfg := core.DefaultConfig()
		cfg.Epsilon = eps
		p, err := runSODAVariant(fmt.Sprintf("eps=%.2f", eps), cfg, scale, sim.Config{})
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// AblationSwitchingWeight sweeps gamma, the smoothness knob, exposing the
// utility/switching trade-off the paper's objective is built around.
func AblationSwitchingWeight(scale Scale) (*AblationResult, error) {
	res := &AblationResult{Name: "switching weight gamma"}
	for _, gamma := range []float64{0.5, 2, 5, 12, 30} {
		cfg := core.DefaultConfig()
		cfg.Gamma = gamma
		p, err := runSODAVariant(fmt.Sprintf("gamma=%.1f", gamma), cfg, scale, sim.Config{})
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// AblationHorizonQoE sweeps the planning horizon K, the Theorem 4.1 knob, on
// realized QoE (the micro-benchmarks cover its computational cost).
func AblationHorizonQoE(scale Scale) (*AblationResult, error) {
	res := &AblationResult{Name: "prediction horizon K"}
	for _, k := range []int{1, 2, 3, 5} {
		cfg := core.DefaultConfig()
		cfg.Horizon = k
		p, err := runSODAVariant(fmt.Sprintf("K=%d", k), cfg, scale, sim.Config{})
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// AblationAbandonment compares sessions with and without dash.js-style
// segment abandonment, the player-side mechanism that bounds fade-onset
// stalls (an extension beyond the paper's player model).
func AblationAbandonment(scale Scale) (*AblationResult, error) {
	res := &AblationResult{Name: "segment abandonment (player extension)"}
	for _, abandon := range []bool{false, true} {
		cfg := core.DefaultConfig()
		label := "off"
		if abandon {
			label = "on"
		}
		p, err := runSODAVariant("abandon="+label, cfg, scale, sim.Config{Abandonment: abandon})
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// UltraLowLatency reproduces the §8 future-work study: SODA and Dynamic
// under shrinking live budgets (buffer cap = live-edge offset), from
// traditional live (20 s) down to ultra-low latency (4 s).
type UltraLowLatencyResult struct {
	Budgets []float64
	// PerController[name][i] aggregates sessions at Budgets[i].
	PerController map[string][]qoe.Aggregate
}

// UltraLowLatency runs the latency-budget sweep on the 4G dataset.
func UltraLowLatency(scale Scale) (*UltraLowLatencyResult, error) {
	budgets := []float64{4, 6, 10, 20}
	ds, err := tracegen.Generate(tracegen.FourG(), scale.SessionsPerDataset, scale.SessionSeconds, scale.Seed+77)
	if err != nil {
		return nil, err
	}
	ladder := video.Mobile()
	res := &UltraLowLatencyResult{Budgets: budgets, PerController: map[string][]qoe.Aggregate{}}
	for _, name := range []string{"soda", "dynamic"} {
		if _, err := abr.New(name, ladder); err != nil {
			return nil, err
		}
		for _, budget := range budgets {
			factory := func() (abr.Controller, predictor.Predictor) {
				c, _ := abr.New(name, ladder)
				return c, predictor.NewEMA(units.Seconds(4))
			}
			metrics, err := sim.RunDataset(ds.Sessions, factory, sim.Config{
				Ladder:                ladder,
				BufferCap:             units.Seconds(budget),
				Live:                  true,
				LiveEdgeOffsetSeconds: units.Seconds(budget),
				SessionSeconds:        scale.SessionSeconds,
			})
			if err != nil {
				return nil, err
			}
			res.PerController[name] = append(res.PerController[name], qoe.Aggregated(name, metrics))
		}
	}
	return res, nil
}

// Render formats the latency sweep.
func (r *UltraLowLatencyResult) Render() string {
	var b strings.Builder
	b.WriteString("Ultra-low-latency study (§8): QoE vs live budget (buffer cap = edge offset)\n")
	for _, name := range sortedKeys(r.PerController) {
		aggs := r.PerController[name]
		fmt.Fprintf(&b, "  %s:\n", name)
		for i, agg := range aggs {
			fmt.Fprintf(&b, "    %4.0fs budget: %s\n", r.Budgets[i], agg.String())
		}
	}
	return b.String()
}

// AblationPredictor compares SODA under the predictor choices that appear in
// the paper: the dash.js EMA (simulations), the dash.js-style safe EMA, the
// production sliding window (§6.3), the MPC-traditional harmonic mean, and a
// plain moving average (Fig. 7's other profiled predictor).
func AblationPredictor(scale Scale) (*AblationResult, error) {
	ds, err := tracegen.Generate(tracegen.FourG(), scale.SessionsPerDataset, scale.SessionSeconds, scale.Seed+202)
	if err != nil {
		return nil, err
	}
	ladder := video.Mobile()
	res := &AblationResult{Name: "throughput predictor choice (SODA)"}
	preds := []struct {
		label string
		make  func() predictor.Predictor
	}{
		{"ema(4s)", func() predictor.Predictor { return predictor.NewEMA(units.Seconds(4)) }},
		{"safe-ema", func() predictor.Predictor { return predictor.NewSafeEMA() }},
		{"sliding(12s)", func() predictor.Predictor { return predictor.NewSlidingWindow(units.Seconds(12)) }},
		{"harmonic(5)", func() predictor.Predictor { return predictor.NewHarmonicMean(5) }},
		{"ma(4)", func() predictor.Predictor { return predictor.NewMovingAverage(4) }},
	}
	for _, p := range preds {
		make := p.make
		factory := func() (abr.Controller, predictor.Predictor) {
			return core.New(core.DefaultConfig(), ladder), make()
		}
		metrics, err := sim.RunDataset(ds.Sessions, factory, sim.Config{
			Ladder:         ladder,
			BufferCap:      units.Seconds(20),
			SessionSeconds: scale.SessionSeconds,
		})
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, AblationPoint{Label: p.label, Aggregate: qoe.Aggregated(p.label, metrics)})
	}
	return res, nil
}
