package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/units"
)

// testScale is a reduced workload keeping the suite fast while preserving
// the qualitative shapes the assertions check.
func testScale() Scale {
	return Scale{
		SessionsPerDataset: 10,
		SessionSeconds:     units.Seconds(600),
		SolverSamples:      400,
		NoiseSessions:      6,
		PrototypeSessions:  2,
		PrototypeSegments:  40,
		ProdSessionsPerArm: 8,
		Seed:               7,
	}
}

func TestDefaultScaleEnvOverride(t *testing.T) {
	t.Setenv("SODA_EXPERIMENT_SCALE", "2")
	s := DefaultScale()
	base := Scale{SessionsPerDataset: 40}
	if s.SessionsPerDataset != 2*base.SessionsPerDataset {
		t.Errorf("env scaling not applied: %d", s.SessionsPerDataset)
	}
	t.Setenv("SODA_EXPERIMENT_SCALE", "garbage")
	if got := DefaultScale(); got.SessionsPerDataset != base.SessionsPerDataset {
		t.Errorf("garbage env should fall back to defaults, got %d", got.SessionsPerDataset)
	}
}

func TestFigure01NegativeCorrelation(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	res, err := Figure01(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions < 20 {
		t.Fatalf("too few filtered sessions: %d", res.Sessions)
	}
	if res.Fit.Slope >= 0 {
		t.Errorf("viewing vs switching slope = %v, want negative", res.Fit.Slope)
	}
	if res.FractionAt20 >= 0.10 {
		t.Errorf("fitted viewing at 20%% switching = %v, paper says < 10%%", res.FractionAt20)
	}
	if !strings.Contains(res.Render(), "Figure 1") {
		t.Error("render missing title")
	}
}

func TestFigure02LiveCompression(t *testing.T) {
	res := Figure02()
	if len(res.OnDemandThresholds) == 0 || len(res.LiveThresholds) == 0 {
		t.Fatalf("missing thresholds: %+v", res)
	}
	if res.OnDemandSpread <= 2*res.LiveSpread {
		t.Errorf("on-demand spread %.1f should dwarf live spread %.1f", res.OnDemandSpread, res.LiveSpread)
	}
	if res.LiveThresholds[len(res.LiveThresholds)-1] > 20 {
		t.Errorf("live thresholds exceed the buffer cap: %v", res.LiveThresholds)
	}
	_ = res.Render()
}

func TestFigure03Pathology(t *testing.T) {
	res, err := Figure03()
	if err != nil {
		t.Fatal(err)
	}
	// The switching-averse MPC objective rebuffers repeatedly while staying
	// at the unsustainable rung; SODA steps down with at most a stall or two.
	if res.MPCRebufferEvents < 5 {
		t.Errorf("MPC rebuffer events = %d, want many", res.MPCRebufferEvents)
	}
	if res.MPCTopRungFraction < 0.5 {
		t.Errorf("MPC spent only %v of the drop at/above the unsustainable rung", res.MPCTopRungFraction)
	}
	if res.SODARebufferSec > res.MPCRebufferSec/2 {
		t.Errorf("SODA rebuffered %.1fs vs MPC %.1fs", res.SODARebufferSec, res.MPCRebufferSec)
	}
	_ = res.Render()
}

func TestFigure04Example(t *testing.T) {
	res, err := Figure04()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 1, 2, 2}
	for i, w := range want {
		if math.Abs(res.TimeBased[i]-w) > 1e-9 {
			t.Errorf("time-based ω%d = %v, want %v", i+1, res.TimeBased[i], w)
		}
	}
	if math.Abs(res.SegmentBased[0]-4) > 1e-9 || math.Abs(res.SegmentBased[1]-2.5) > 1e-9 {
		t.Errorf("segment-based = %v, want [4 2.5]", res.SegmentBased)
	}
	_ = res.Render()
}

func TestFigure05Shape(t *testing.T) {
	res := Figure05()
	if len(res.Cells) != len(res.Buffers)*len(res.Omegas) {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	if res.WaitCells == 0 {
		t.Error("no blank no-download region found")
	}
	// More aggressive with throughput: mean committed rung grows along ω̂.
	means := res.MeanRungByOmega()
	if means[len(means)-1] <= means[0] {
		t.Errorf("mean rung not increasing with ω̂: %v", means)
	}
	if !strings.Contains(res.Render(), ".") {
		t.Error("render missing wait cells")
	}
}

func TestFigure06Decay(t *testing.T) {
	res, err := Figure06()
	if err != nil {
		t.Fatal(err)
	}
	if res.HeadMean <= res.TailMean {
		t.Errorf("perturbation not decaying: head %v tail %v", res.HeadMean, res.TailMean)
	}
	if res.TailMean > 0.25*res.HeadMean {
		t.Errorf("tail %v should be well below head %v", res.TailMean, res.HeadMean)
	}
	_ = res.Render()
}

func TestFigure07CorrelationDecays(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	res, err := Figure07(testScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, cors := range [][]float64{res.MACorrelation, res.EMACorrelation} {
		if len(cors) != len(res.HorizonsSeconds) {
			t.Fatalf("correlation lengths: %d vs %d", len(cors), len(res.HorizonsSeconds))
		}
		// Strong in the immediate future, much weaker in the far future
		// (paper: ~50% near, ~15% far).
		if cors[0] < 0.3 {
			t.Errorf("near-future correlation = %v, want substantial", cors[0])
		}
		last := cors[len(cors)-1]
		if last > cors[0]*0.75 {
			t.Errorf("far-future correlation %v did not decay from %v", last, cors[0])
		}
	}
	_ = res.Render()
}

func TestFigure08ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	res := Figure08(testScale())
	if len(res.Mismatch) != len(res.Horizons) {
		t.Fatalf("rows = %d", len(res.Mismatch))
	}
	for ki, row := range res.Mismatch {
		// Decreasing in the switching weight (with sampling slack).
		if row[len(row)-1] > row[0]+0.02 {
			t.Errorf("K=%d: mismatch not decreasing: %v", res.Horizons[ki], row)
		}
		// Small at the right edge.
		if row[len(row)-1] > 0.12 {
			t.Errorf("K=%d: right-edge mismatch %v too large", res.Horizons[ki], row[len(row)-1])
		}
	}
	// Larger K has (weakly) larger mismatch at fixed weight.
	if res.Mismatch[0][1] > res.Mismatch[len(res.Mismatch)-1][1]+0.03 {
		t.Errorf("mismatch not growing with K: K=%d %v vs K=%d %v",
			res.Horizons[0], res.Mismatch[0][1],
			res.Horizons[len(res.Horizons)-1], res.Mismatch[len(res.Mismatch)-1][1])
	}
	_ = res.Render()
}

func TestFigure09MatchesTargets(t *testing.T) {
	res, err := Figure09(testScale())
	if err != nil {
		t.Fatal(err)
	}
	targets := map[string][2]float64{
		"puffer": {57.1, 0.472},
		"5g":     {31.3, 1.33},
		"4g":     {13.0, 0.806},
	}
	for _, n := range res.Names {
		want := targets[n.Name]
		if math.Abs(n.MeanMbps-want[0])/want[0] > 0.15 {
			t.Errorf("%s mean = %v, target %v", n.Name, n.MeanMbps, want[0])
		}
		if math.Abs(n.RSD-want[1])/want[1] > 0.2 {
			t.Errorf("%s RSD = %v, target %v", n.Name, n.RSD, want[1])
		}
		if res.Histogram[n.Name].Total == 0 {
			t.Errorf("%s histogram empty", n.Name)
		}
	}
	_ = res.Render()
}
