package experiments

import (
	"strings"
	"testing"
)

// The evaluation headline tests assert the qualitative shape of the paper's
// main results on reduced workloads. They are the "does the reproduction
// reproduce" checks.

func TestFigure10SODALeadsQoE(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	res, err := Figure10(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Buckets) != 6 {
		t.Fatalf("buckets = %v", res.Buckets)
	}
	wins := 0
	meanSwitch := map[string]float64{}
	for _, bucket := range res.Buckets {
		if res.Best(bucket) == "soda" {
			wins++
		}
		soda := res.Aggregates[bucket]["soda"]
		// SODA never trails the bucket leader by much even where sampling
		// noise hands another controller the top spot.
		best := res.Aggregates[bucket][res.Best(bucket)]
		if soda.Score.Mean < best.Score.Mean-0.06 {
			t.Errorf("%s: soda QoE %.3f far below best (%s) %.3f", bucket,
				soda.Score.Mean, res.Best(bucket), best.Score.Mean)
		}
		for _, name := range res.Controllers {
			meanSwitch[name] += res.Aggregates[bucket][name].SwitchRate.Mean / float64(len(res.Buckets))
		}
	}
	// SODA has the best mean QoE in at least half the buckets at this
	// reduced scale (the paper reports consistently higher mean QoE in all).
	if wins < 3 {
		t.Errorf("soda wins only %d/6 buckets\n%s", wins, res.Render())
	}
	// The headline smoothness result: averaged over all buckets, SODA
	// switches less than BOLA and MPC.
	for _, rival := range []string{"bola", "mpc"} {
		if meanSwitch["soda"] > meanSwitch[rival] {
			t.Errorf("mean switch rate: soda %.4f above %s %.4f", meanSwitch["soda"], rival, meanSwitch[rival])
		}
	}
	// HYB's excess switching shows under volatile mobile conditions (the
	// paper reports up to 215% more switching than SODA there).
	for _, bucket := range []string{"5g", "4g"} {
		soda := res.Aggregates[bucket]["soda"].SwitchRate.Mean
		hyb := res.Aggregates[bucket]["hyb"].SwitchRate.Mean
		if soda > hyb {
			t.Errorf("%s: soda switch %.4f above hyb %.4f", bucket, soda, hyb)
		}
	}
	// QoE degrades with volatility for every controller: Q1 >= Q4.
	for _, name := range res.Controllers {
		q1 := res.Aggregates["puffer-q1"][name].Score.Mean
		q4 := res.Aggregates["puffer-q4"][name].Score.Mean
		if q4 > q1+0.05 {
			t.Errorf("%s: QoE grew with volatility (q1 %.3f -> q4 %.3f)", name, q1, q4)
		}
	}
}

func TestFigure11SODARobustToNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	res, err := Figure11(testScale())
	if err != nil {
		t.Fatal(err)
	}
	soda := res.Scores["soda"]
	// Degradation up to the EMA-reference noise level (~30%) is small
	// relative to SODA's zero-noise score (paper: ~10%).
	drop := soda[0] - soda[3] // noise levels: 0, .1, .2, .3
	if soda[0] <= 0 {
		t.Fatalf("zero-noise SODA score = %v", soda[0])
	}
	if drop/soda[0] > 0.35 {
		t.Errorf("SODA degraded %.0f%% by 30%% noise (scores %v)", 100*drop/soda[0], soda)
	}
	// SODA stays at or near the top through moderate noise.
	for ni := 0; ni <= 3; ni++ {
		best := -1e18
		for _, name := range res.Controllers {
			if s := res.Scores[name][ni]; s > best {
				best = s
			}
		}
		if soda[ni] < best-0.12 {
			t.Errorf("noise %v: soda %.3f far below best %.3f", res.NoiseLevels[ni], soda[ni], best)
		}
	}
	// BOLA is noise-invariant (purely buffer-based).
	bola := res.Scores["bola"]
	if diff := bola[0] - bola[len(bola)-1]; diff > 0.08 || diff < -0.08 {
		t.Errorf("BOLA should be insensitive to prediction noise: %v", bola)
	}
	_ = res.Render()
}

func TestFigure12PrototypeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment: real TCP sessions")
	}
	res, err := Figure12(testScale())
	if err != nil {
		t.Fatal(err)
	}
	soda := res.Aggregates["soda"]
	// SODA finishes at or near the top; with few sessions per controller a
	// single fade-onset stall can hand the lead to another controller, so the
	// assertion is a tier check rather than strict first place (see
	// EXPERIMENTS.md for the default-scale numbers and the divergence note).
	best := res.Aggregates[res.Best()]
	if soda.Score.Mean < best.Score.Mean-0.15 {
		t.Errorf("soda QoE %.3f far below best (%s %.3f)\n%s",
			soda.Score.Mean, res.Best(), best.Score.Mean, res.Render())
	}
	// SODA switches far less than BOLA on the dense low-bandwidth ladder.
	if soda.SwitchRate.Mean > res.Aggregates["bola"].SwitchRate.Mean/2 {
		t.Errorf("soda switching %.3f not well below bola %.3f",
			soda.SwitchRate.Mean, res.Aggregates["bola"].SwitchRate.Mean)
	}
	// The RL stand-in reproduces its profile: at least as much utility as
	// SODA but far more switching.
	rl := res.Aggregates["rl"]
	if rl.SwitchRate.Mean < soda.SwitchRate.Mean {
		t.Errorf("rl switches (%.3f) should exceed soda (%.3f)", rl.SwitchRate.Mean, soda.SwitchRate.Mean)
	}
	_ = res.Render()
}

func TestFigure13ProductionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	res, err := Figure13(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 3 {
		t.Fatalf("families = %d", len(res.Reports))
	}
	for _, rep := range res.Reports {
		if rep.SwitchDelta >= 0 {
			t.Errorf("%s: switching delta %+.1f%%, want reduction", rep.Family, 100*rep.SwitchDelta)
		}
		if rep.ViewingDelta <= 0 {
			t.Errorf("%s: viewing delta %+.1f%%, want improvement", rep.Family, 100*rep.ViewingDelta)
		}
	}
	_ = res.Render()
}

func TestTable01FromMeasurements(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	fig10, err := Figure10(testScale())
	if err != nil {
		t.Fatal(err)
	}
	fig12, err := Figure12(testScale())
	if err != nil {
		t.Fatal(err)
	}
	table := Table01(fig10, fig12)
	if len(table.Rows) != len(PrototypeControllers) {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	byName := map[string]Table01Row{}
	for _, r := range table.Rows {
		byName[r.Controller] = r
	}
	soda := byName["soda"]
	if soda.Theory != "Q + R + S" || soda.Deploy != "high" {
		t.Errorf("soda static columns: %+v", soda)
	}
	if soda.Quality == "low" {
		t.Errorf("soda quality classified %q", soda.Quality)
	}
	if !strings.Contains(table.Render(), "soda") {
		t.Error("render missing soda row")
	}
}

func TestTheoremDrivers(t *testing.T) {
	reg, err := TheoremRegret()
	if err != nil {
		t.Fatal(err)
	}
	n := len(reg.Horizons)
	if reg.Regret[n-1] >= reg.Regret[0] {
		t.Errorf("regret not decreasing: %v", reg.Regret)
	}
	if reg.CompetitiveRatio[n-1] > 1.35 {
		t.Errorf("long-horizon competitive ratio = %v", reg.CompetitiveRatio[n-1])
	}
	_ = reg.Render()

	mono, err := TheoremMonotone()
	if err != nil {
		t.Fatal(err)
	}
	m := len(mono.Gammas)
	if mono.Violations[m-1] > mono.Violations[0]+1e-9 {
		t.Errorf("violation not shrinking: %v", mono.Violations)
	}
	for i := range mono.Gammas {
		if mono.Violations[i] > mono.Bounds[i]+1e-9 {
			t.Errorf("violation %v exceeds bound %v at gamma %v", mono.Violations[i], mono.Bounds[i], mono.Gammas[i])
		}
	}
	_ = mono.Render()
}
