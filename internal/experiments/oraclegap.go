package experiments

import (
	"fmt"
	"strings"

	"repro/internal/abr"
	"repro/internal/oracle"
	"repro/internal/predictor"
	"repro/internal/qoe"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tracegen"
	"repro/internal/units"
	"repro/internal/video"
)

// OracleGapResult measures how much of the clairvoyant-optimal QoE each
// online controller realizes — the offline-optimal reference of the Sabre
// toolchain, an extension beyond the paper's reported figures.
type OracleGapResult struct {
	OracleScore stats.Summary
	Controllers []string
	Scores      map[string]stats.Summary
	// RealizedFraction[name] = mean(controller score) / mean(oracle score).
	RealizedFraction map[string]float64
}

// OracleGap runs the oracle and the standard controller set on a 4G bucket.
func OracleGap(scale Scale) (*OracleGapResult, error) {
	ds, err := tracegen.Generate(tracegen.FourG(), scale.SessionsPerDataset, scale.SessionSeconds, scale.Seed+301)
	if err != nil {
		return nil, err
	}
	ladder := video.Mobile()
	res := &OracleGapResult{
		Controllers:      SimControllers,
		Scores:           map[string]stats.Summary{},
		RealizedFraction: map[string]float64{},
	}

	oracleScores := make([]float64, 0, len(ds.Sessions))
	for _, tr := range ds.Sessions {
		o, err := oracle.Solve(tr, oracle.Config{
			Ladder:         ladder,
			BufferCap:      units.Seconds(20),
			SessionSeconds: scale.SessionSeconds,
		})
		if err != nil {
			return nil, fmt.Errorf("oraclegap: %w", err)
		}
		oracleScores = append(oracleScores, o.Metrics.Score)
	}
	res.OracleScore = stats.Summarize(oracleScores)

	for _, name := range res.Controllers {
		if _, err := abr.New(name, ladder); err != nil {
			return nil, err
		}
		factory := func() (abr.Controller, predictor.Predictor) {
			c, _ := abr.New(name, ladder)
			return c, predictor.NewEMA(units.Seconds(4))
		}
		metrics, err := sim.RunDataset(ds.Sessions, factory, sim.Config{
			Ladder:         ladder,
			BufferCap:      units.Seconds(20),
			SessionSeconds: scale.SessionSeconds,
		})
		if err != nil {
			return nil, err
		}
		agg := qoe.Aggregated(name, metrics)
		res.Scores[name] = agg.Score
		if res.OracleScore.Mean != 0 {
			res.RealizedFraction[name] = agg.Score.Mean / res.OracleScore.Mean
		}
	}
	return res, nil
}

// Render formats the oracle-gap report.
func (r *OracleGapResult) Render() string {
	var b strings.Builder
	b.WriteString("Oracle gap (4G): fraction of the clairvoyant-optimal QoE realized\n")
	fmt.Fprintf(&b, "  oracle       QoE %s\n", r.OracleScore.String())
	for _, name := range r.Controllers {
		fmt.Fprintf(&b, "  %-12s QoE %s  (%.1f%% of oracle)\n",
			name, r.Scores[name].String(), 100*r.RealizedFraction[name])
	}
	return b.String()
}
