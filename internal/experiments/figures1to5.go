package experiments

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"repro/internal/abr"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/engagement"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/textplot"
	"repro/internal/tracegen"
	"repro/internal/units"
	"repro/internal/video"
)

// Figure01Result reproduces Figure 1: viewing percentage versus bitrate
// switching rate for short-lived, HD-quality, rebuffer-free sessions, with a
// line of best fit.
type Figure01Result struct {
	SwitchRates      []float64
	ViewingFractions []float64
	Fit              stats.Line
	// FractionAt20 is the fitted viewing fraction at a 20% switching rate —
	// the paper's "< 10%" callout.
	FractionAt20 float64
	Sessions     int
}

// Figure01 runs a mixed-controller population over the Puffer-like dataset to
// obtain a spread of switching rates, draws viewing durations from the
// engagement model, applies the paper's session filter (HD+, no rebuffering,
// short-lived sessions with < 25% viewed), and fits the line.
func Figure01(scale Scale) (*Figure01Result, error) {
	ds, err := tracegen.Generate(tracegen.Puffer(), scale.SessionsPerDataset, scale.SessionSeconds, scale.Seed)
	if err != nil {
		return nil, err
	}
	model := engagement.Default()
	rng := rand.New(rand.NewPCG(scale.Seed, 0xf16))
	res := &Figure01Result{}
	const streamMinutes = units.Minutes(150) // multi-hour sports event

	// A population of controllers produces the diversity of switching rates
	// a production fleet exhibits.
	for _, name := range []string{"soda", "dynamic", "bola", "hyb", "rl", "mpc"} {
		metrics, err := runControllerOnSessions(name, video.YouTube4K(), ds.Sessions, scale.SessionSeconds, units.Seconds(20))
		if err != nil {
			return nil, err
		}
		for _, m := range metrics {
			// Paper filter: at least HD quality, no rebuffering.
			if m.RebufferRatio > 0 || m.MeanUtility < 0.5 {
				continue
			}
			viewed := float64(model.SampleViewingMinutes(m.SwitchRate, m.RebufferRatio, streamMinutes, rng) / streamMinutes)
			// Paper filter: short-lived sessions (< 25% of stream viewed).
			if viewed >= 0.25 {
				continue
			}
			res.SwitchRates = append(res.SwitchRates, m.SwitchRate)
			res.ViewingFractions = append(res.ViewingFractions, viewed)
		}
	}
	res.Sessions = len(res.SwitchRates)
	res.Fit = stats.LinearFit(res.SwitchRates, res.ViewingFractions)
	res.FractionAt20 = res.Fit.At(0.20)
	return res, nil
}

// Render formats the Figure 1 report.
func (r *Figure01Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: viewing %% vs switching rate (n=%d filtered sessions)\n", r.Sessions)
	fmt.Fprintf(&b, "  fit: viewing = %.4f %+.4f*switchRate (r=%.3f)\n", r.Fit.Intercept, r.Fit.Slope, r.Fit.R)
	fmt.Fprintf(&b, "  fitted viewing fraction at 20%% switching: %s (paper: < 10%%)\n", pct(r.FractionAt20))
	b.WriteString(textplot.Scatter("", textplot.Series{Name: "sessions", X: r.SwitchRates, Y: r.ViewingFractions}, 56, 14, true))
	return b.String()
}

// Figure02Result reproduces Figure 2: BOLA's bitrate decision thresholds as
// a function of buffer level for on-demand (120 s) versus live (20 s)
// configurations.
type Figure02Result struct {
	OnDemandThresholds []float64
	LiveThresholds     []float64
	OnDemandSpread     float64
	LiveSpread         float64
}

// Figure02 computes the threshold buffer levels at which BOLA's decision
// steps up a rung.
func Figure02() *Figure02Result {
	thresholds := func(stable, cap units.Seconds) []float64 {
		b := baseline.NewBOLA(video.YouTube4K(), stable)
		if stable == 0 {
			// Live derivation from the cap.
			b.Decide(&abr.Context{Buffer: units.Seconds(0), BufferCap: cap, PrevRung: abr.NoRung,
				Ladder: video.YouTube4K(), Predict: func(units.Seconds) units.Mbps { return units.Mbps(1) }})
		}
		var out []float64
		prev := b.DecideBuffer(units.Seconds(0))
		limit := stable
		if limit == 0 {
			limit = cap
		}
		for buf := units.Seconds(0); buf <= limit; buf += 0.02 {
			if r := b.DecideBuffer(buf); r != prev {
				out = append(out, float64(buf))
				prev = r
			}
		}
		return out
	}
	res := &Figure02Result{
		OnDemandThresholds: thresholds(units.Seconds(120), units.Seconds(0)),
		LiveThresholds:     thresholds(units.Seconds(0), units.Seconds(20)),
	}
	res.OnDemandSpread = spread(res.OnDemandThresholds)
	res.LiveSpread = spread(res.LiveThresholds)
	return res
}

func spread(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return xs[len(xs)-1] - xs[0]
}

// Render formats the Figure 2 report.
func (r *Figure02Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 2: BOLA decision thresholds (buffer level at each up-step)\n")
	fmt.Fprintf(&b, "  on-demand (120 s buffer): %s  spread %.1f s\n", fmtFloats(r.OnDemandThresholds), r.OnDemandSpread)
	fmt.Fprintf(&b, "  live       (20 s buffer): %s  spread %.1f s\n", fmtFloats(r.LiveThresholds), r.LiveSpread)
	b.WriteString("  (live thresholds compress into a few seconds: tiny buffer fluctuations switch bitrates)\n")
	return b.String()
}

func fmtFloats(xs []float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%.1f", x)
	}
	return "[" + strings.Join(parts, " ") + "]s"
}

// Figure03Result reproduces Figure 3: a session where RobustMPC's objective
// prefers repeated short rebuffers over switching down, versus SODA on the
// same trace.
type Figure03Result struct {
	MPCRebufferEvents  int
	MPCRebufferSec     float64
	MPCTopRungFraction float64
	SODARebufferEvents int
	SODARebufferSec    float64
	SODASwitches       int
	SessionSeconds     float64
}

// Figure03 builds the §2 scenario: comfortable bandwidth, then a sustained
// drop to just below the previously sustainable rung. Under an MPC objective
// whose rebuffering penalty is small relative to the utility span, staying
// at the unsustainable bitrate and absorbing a short stall every segment is
// *optimal* — the paper stresses that raising the penalty only shortens the
// tolerable stalls without eliminating them. SODA's buffer-stability
// objective steps down instead.
func Figure03() (*Figure03Result, error) {
	ladder := video.Mobile()
	// 60 s at 10 Mb/s establishes rung 2 (7.5 Mb/s); then 6.0 Mb/s for 240 s
	// sits just below it, producing a 0.5 s deficit per 2 s segment.
	tr := tracegen.StepDown(10, 6.0, 60, 240)

	mpc := baseline.NewMPC(ladder, true)
	// Yin et al.'s original objective uses q(r) = bitrate, so the utility
	// step between adjacent rungs dwarfs the penalty of a sub-second stall;
	// in our normalized-q units that corresponds to a small mu. Under this
	// objective, parking at the unsustainable rung and stalling briefly on
	// every segment is optimal — exactly the Fig. 3 behaviour.
	mpc.LambdaSwitch = 1
	mpc.MuRebuffer = 0.5

	run := func(c abr.Controller) (sim.Result, error) {
		return sim.Run(tr, sim.Config{
			Ladder:           ladder,
			BufferCap:        units.Seconds(20),
			SessionSeconds:   units.Seconds(260),
			Controller:       c,
			Predictor:        evalPredictor(),
			RecordTrajectory: true,
		})
	}
	mpcRes, err := run(mpc)
	if err != nil {
		return nil, err
	}
	soda, err := abr.New("soda", ladder)
	if err != nil {
		return nil, err
	}
	sodaRes, err := run(soda)
	if err != nil {
		return nil, err
	}

	res := &Figure03Result{
		MPCRebufferEvents:  mpcRes.Metrics.RebufferEvents,
		MPCRebufferSec:     float64(mpcRes.Metrics.RebufferSec),
		SODARebufferEvents: sodaRes.Metrics.RebufferEvents,
		SODARebufferSec:    float64(sodaRes.Metrics.RebufferSec),
		SODASwitches:       sodaRes.Metrics.Switches,
		SessionSeconds:     300,
	}
	top := 0
	during := 0
	for _, p := range mpcRes.Trajectory {
		if p.Time > 60 {
			during++
			if p.Rung >= 2 { // at or above the now-unsustainable 7.5 Mb/s rung
				top++
			}
		}
	}
	if during > 0 {
		res.MPCTopRungFraction = float64(top) / float64(during)
	}
	return res, nil
}

// Render formats the Figure 3 report.
func (r *Figure03Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3: switching-averse RobustMPC pathology vs SODA (step-down trace)\n")
	fmt.Fprintf(&b, "  RobustMPC: %d rebuffer events (%.1f s total) over %.0f s; at/above the unsustainable rung %s of the drop\n",
		r.MPCRebufferEvents, r.MPCRebufferSec, r.SessionSeconds, pct(r.MPCTopRungFraction))
	fmt.Fprintf(&b, "  SODA:      %d rebuffer events (%.1f s total), %d switches\n",
		r.SODARebufferEvents, r.SODARebufferSec, r.SODASwitches)
	return b.String()
}

// Figure04Result reproduces the Figure 4 worked example contrasting the
// time-based and segment-based throughput accounting.
type Figure04Result struct {
	TimeBased    []float64 // ω per 1 s interval
	SegmentBased []float64 // ω per segment for r1=2, r2=2.5 Mb/s
}

// Figure04 evaluates the §3.1 example on its exact throughput function.
func Figure04() (*Figure04Result, error) {
	tr := traceFigure4()
	res := &Figure04Result{}
	for i := 0; i < 4; i++ {
		res.TimeBased = append(res.TimeBased, float64(tr.MeanOver(units.Seconds(i), units.Seconds(1))))
	}
	// Segment-based: r1 = 2 Mb/s (2 Mb segment), r2 = 2.5 Mb/s (2.5 Mb).
	dt1, err := tr.DownloadTime(units.Seconds(0), units.Megabits(2.0))
	if err != nil {
		return nil, err
	}
	dt2, err := tr.DownloadTime(dt1, units.Megabits(2.5))
	if err != nil {
		return nil, err
	}
	res.SegmentBased = []float64{float64(units.Megabits(2.0).Over(dt1)), float64(units.Megabits(2.5).Over(dt2))}
	return res, nil
}

// Render formats the Figure 4 report.
func (r *Figure04Result) Render() string {
	return fmt.Sprintf("Figure 4: time-based ω = %v Mb/s; segment-based ω = %v Mb/s (biased by the bitrate decisions)\n",
		r.TimeBased, r.SegmentBased)
}

// Figure05Result reproduces Figure 5: SODA's decision as a function of
// buffer level and predicted throughput.
type Figure05Result struct {
	Buffers []units.Seconds
	Omegas  []units.Mbps
	Cells   []core.DiagramCell
	// WaitCells counts the blank no-download region.
	WaitCells int
}

// Figure05 evaluates the decision diagram on a grid.
func Figure05() *Figure05Result {
	buffers := core.Grid[units.Seconds](0.5, 19.9, 16)
	omegas := core.Grid[units.Mbps](1, 90, 24)
	cells := core.DecisionDiagram(core.DefaultConfig(), video.YouTube4K(), units.Seconds(20), buffers, omegas, abr.NoRung)
	waits := 0
	for _, c := range cells {
		if c.Rung < 0 {
			waits++
		}
	}
	return &Figure05Result{Buffers: buffers, Omegas: omegas, Cells: cells, WaitCells: waits}
}

// Render formats the diagram as ASCII.
func (r *Figure05Result) Render() string {
	return "Figure 5: SODA decision diagram (rows: buffer desc; cols: ω̂ asc; '.' = no download)\n" +
		core.RenderDiagram(r.Cells, r.Buffers, r.Omegas)
}

// MeanRungByOmega returns the mean committed rung per throughput column
// (download decisions only), used to verify the diagram's monotone trend.
func (r *Figure05Result) MeanRungByOmega() []float64 {
	sums := make([]float64, len(r.Omegas))
	counts := make([]int, len(r.Omegas))
	index := map[units.Mbps]int{}
	for i, w := range r.Omegas {
		index[w] = i
	}
	for _, c := range r.Cells {
		if c.Rung >= 0 {
			i := index[c.Omega]
			sums[i] += float64(c.Rung)
			counts[i]++
		}
	}
	out := make([]float64, len(sums))
	for i := range sums {
		if counts[i] > 0 {
			out[i] = sums[i] / float64(counts[i])
		}
	}
	return out
}
