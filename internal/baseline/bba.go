package baseline

import (
	"repro/internal/abr"
	"repro/internal/units"
	"repro/internal/video"
)

// BBA is the buffer-based controller of Huang et al. (SIGCOMM 2014), the
// canonical pure buffer-based design the paper's related work cites (§7.1):
// below a reservoir of buffer the lowest bitrate is selected; above
// reservoir+cushion the highest; in between, the bitrate is the linear map
// of the buffer level, snapped down to a ladder rung.
type BBA struct {
	ladder video.Ladder
	// Reservoir is the protective low-buffer region.
	Reservoir units.Seconds
	// CushionFraction sets the cushion as a fraction of (cap − reservoir);
	// the upper knee sits at reservoir + cushion.
	CushionFraction float64
}

// NewBBA returns BBA tuned for the live buffer budget: the classic
// on-demand tuning (90 s cushion) is scaled into the session's cap.
func NewBBA(ladder video.Ladder) *BBA {
	return &BBA{
		ladder:          ladder,
		Reservoir:       2 * ladder.SegmentSeconds,
		CushionFraction: 0.8,
	}
}

// Name implements abr.Controller.
func (b *BBA) Name() string { return "bba" }

// Reset implements abr.Controller.
func (b *BBA) Reset() {}

// Decide implements abr.Controller.
func (b *BBA) Decide(ctx *abr.Context) abr.Decision {
	reservoir := b.Reservoir
	cushion := (ctx.BufferCap - reservoir).Scale(b.CushionFraction)
	switch {
	case ctx.Buffer <= reservoir:
		return abr.Decision{Rung: 0}
	case ctx.Buffer >= reservoir+cushion:
		return abr.Decision{Rung: b.ladder.Len() - 1}
	}
	frac := float64((ctx.Buffer - reservoir) / cushion)
	target := b.ladder.Min() + (b.ladder.Max() - b.ladder.Min()).Scale(frac)
	return abr.Decision{Rung: b.ladder.MaxSustainable(target)}
}

var _ abr.Controller = (*BBA)(nil)

func init() {
	abr.Register("bba", func(l video.Ladder) abr.Controller { return NewBBA(l) })
}
