package baseline

import (
	"math"
	"testing"

	"repro/internal/abr"
	"repro/internal/units"
	"repro/internal/video"
)

func ctxWith(buffer float64, prev int, omega float64) *abr.Context {
	return &abr.Context{
		Buffer:    units.Seconds(buffer),
		BufferCap: units.Seconds(20),
		PrevRung:  prev,
		Ladder:    video.YouTube4K(),
		Predict:   func(units.Seconds) units.Mbps { return units.Mbps(omega) },
	}
}

func TestRegistryHasAllBaselines(t *testing.T) {
	for _, name := range []string{"bola", "hyb", "dynamic", "mpc", "robustmpc", "fugu", "rl", "prod-baseline"} {
		c, err := abr.New(name, video.YouTube4K())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.Name() != name {
			t.Errorf("controller %q reports name %q", name, c.Name())
		}
		// Every controller must produce a valid decision on a vanilla context.
		d := c.Decide(ctxWith(10, 2, 20))
		if d.Rung < 0 || d.Rung >= video.YouTube4K().Len() {
			t.Errorf("%s: decision %+v out of range", name, d)
		}
		c.Reset()
	}
}

func TestBOLAMonotoneInBuffer(t *testing.T) {
	b := NewBOLA(video.YouTube4K(), units.Seconds(20))
	prev := -1
	for buf := units.Seconds(0); buf <= 20; buf += 0.25 {
		r := b.DecideBuffer(buf)
		if r < prev {
			t.Fatalf("BOLA decision dropped from %d to %d as buffer grew to %v", prev, r, buf)
		}
		prev = r
	}
	if b.DecideBuffer(units.Seconds(0)) != 0 {
		t.Errorf("empty buffer should select the lowest rung, got %d", b.DecideBuffer(units.Seconds(0)))
	}
}

func TestBOLAFigure2BoundarySpacing(t *testing.T) {
	// Figure 2: with a 120 s on-demand buffer the decision thresholds are
	// spread far apart; with a 20 s live buffer they compress so small buffer
	// deviations change the decision.
	thresholds := func(stable units.Seconds) []float64 {
		b := NewBOLA(video.YouTube4K(), stable)
		var out []float64
		prev := b.DecideBuffer(units.Seconds(0))
		for buf := units.Seconds(0); buf <= stable; buf += 0.05 {
			if r := b.DecideBuffer(buf); r != prev {
				out = append(out, float64(buf))
				prev = r
			}
		}
		return out
	}
	onDemand := thresholds(units.Seconds(120))
	live := thresholds(units.Seconds(20))
	if len(onDemand) == 0 || len(live) == 0 {
		t.Fatalf("no thresholds found: od=%v live=%v", onDemand, live)
	}
	minGap := func(xs []float64) float64 {
		if len(xs) < 2 {
			return math.Inf(1)
		}
		g := math.Inf(1)
		for i := 1; i < len(xs); i++ {
			g = math.Min(g, xs[i]-xs[i-1])
		}
		return g
	}
	spreadOD := onDemand[len(onDemand)-1] - onDemand[0]
	spreadLive := live[len(live)-1] - live[0]
	if spreadOD <= 2*spreadLive {
		t.Errorf("on-demand thresholds (spread %.1fs) should be much wider than live (%.1fs)", spreadOD, spreadLive)
	}
	if minGap(live) > 5 {
		t.Errorf("live thresholds should sit within a few seconds of each other, min gap %.1f", minGap(live))
	}
}

func TestBOLADerivesFromBufferCapWhenLive(t *testing.T) {
	b := NewBOLA(video.YouTube4K(), units.Seconds(0))
	ctx := ctxWith(15, 2, 20)
	d := b.Decide(ctx)
	if d.Rung < 0 {
		t.Fatalf("decision %+v", d)
	}
	if b.derivedAt != 20 {
		t.Errorf("derived stable buffer = %v, want the 20 s cap", b.derivedAt)
	}
}

func TestHYBFollowsThroughput(t *testing.T) {
	h := NewHYB(video.YouTube4K())
	// Rich network and buffer: top rungs.
	if d := h.Decide(ctxWith(16, 0, 100)); d.Rung < 4 {
		t.Errorf("rich HYB decision = %d", d.Rung)
	}
	// HYB never exceeds the throughput estimate (when any rung fits under it;
	// below r_min the floor rung is all it has).
	for _, omega := range []float64{3, 6, 10, 30, 70} {
		d := h.Decide(ctxWith(16, 0, omega))
		if float64(video.YouTube4K().Mbps(d.Rung)) > omega {
			t.Errorf("HYB exceeded throughput: rung %d at ω=%v", d.Rung, omega)
		}
	}
	// Small buffer forces conservative choices: at ω=10 and a 0.5 s buffer
	// only sub-0.25 s downloads pass the buffer-fraction test.
	if d := h.Decide(ctxWith(0.5, 5, 10)); d.Rung > 0 {
		t.Errorf("HYB with 0.5s buffer at ω=10 chose %d", d.Rung)
	}
	// HYB tracks ω̂ directly: changing predictions change decisions (the
	// high-switching profile of Fig. 10).
	a := h.Decide(ctxWith(16, 0, 8)).Rung
	b := h.Decide(ctxWith(16, 0, 26)).Rung
	if a == b {
		t.Errorf("HYB did not react to a 3x throughput change: %d vs %d", a, b)
	}
}

func TestDynamicModeSwitching(t *testing.T) {
	d := NewDynamic(video.YouTube4K())
	// Low buffer: throughput mode.
	d.Decide(ctxWith(3, 1, 20))
	if d.inBufferMode {
		t.Error("entered buffer mode at 3 s buffer")
	}
	// High buffer: buffer mode.
	d.Decide(ctxWith(15, 1, 20))
	if !d.inBufferMode {
		t.Error("did not enter buffer mode at 15 s buffer")
	}
	// Hysteresis: stays in buffer mode at 9 s (above switch-off).
	d.Decide(ctxWith(9, 1, 20))
	if !d.inBufferMode {
		t.Error("left buffer mode above the switch-off threshold")
	}
	// Drops out below switch-off.
	d.Decide(ctxWith(7, 1, 20))
	if d.inBufferMode {
		t.Error("stayed in buffer mode below the switch-off threshold")
	}
	d.Reset()
	if d.inBufferMode {
		t.Error("Reset did not clear mode")
	}
}

func TestDynamicHeuristics(t *testing.T) {
	d := NewDynamic(video.YouTube4K())
	// Low-buffer safety: below the safety threshold the rung is capped by
	// the discounted throughput (0.5·ω̂ = 6 Mb/s sustains only rung 1).
	dec := d.Decide(ctxWith(1, 5, 12))
	if dec.Rung > 1 {
		t.Errorf("low-buffer safety failed: rung %d", dec.Rung)
	}
	// Up-switch limited to one rung per decision.
	d.Reset()
	dec = d.Decide(ctxWith(15, 0, 100))
	if dec.Rung > 1 {
		t.Errorf("up-switch limit failed: rung %d from prev 0", dec.Rung)
	}
	// Switch avoidance: BOLA wants up, but throughput cannot sustain it.
	d.Reset()
	d.Decide(ctxWith(15, 3, 30)) // enter buffer mode
	dec = d.Decide(ctxWith(18, 3, 5))
	if dec.Rung > 3 {
		t.Errorf("switch avoidance failed: rung %d with ω=5", dec.Rung)
	}
}

func TestMPCBasics(t *testing.T) {
	m := NewMPC(video.YouTube4K(), false)
	// Healthy conditions: high rung without stalling.
	d := m.Decide(ctxWith(14, 4, 30))
	if d.Rung < 3 {
		t.Errorf("MPC rich decision = %d", d.Rung)
	}
	// Empty-ish buffer and low ω̂: MPC must not pick a stalling top rung.
	d = m.Decide(ctxWith(2, 5, 2))
	if d.Rung > 1 {
		t.Errorf("MPC chose stall-prone rung %d", d.Rung)
	}
}

func TestMPCSwitchingPenaltyReducesSwitches(t *testing.T) {
	// With the switching penalty zeroed, MPC follows throughput jitter more.
	smooth := NewMPC(video.YouTube4K(), false)
	jumpy := NewMPC(video.YouTube4K(), false)
	jumpy.LambdaSwitch = 0
	omegas := []float64{12, 13, 24, 12, 25, 11, 26, 12, 24, 13}
	countSwitches := func(m *MPC) int {
		prev := 3
		switches := 0
		for _, w := range omegas {
			d := m.Decide(ctxWith(12, prev, w))
			if d.Rung != prev {
				switches++
			}
			prev = d.Rung
		}
		return switches
	}
	if s, j := countSwitches(smooth), countSwitches(jumpy); s > j {
		t.Errorf("switching penalty increased switches: %d vs %d", s, j)
	}
}

func TestRobustMPCDiscountsAfterErrors(t *testing.T) {
	r := NewMPC(video.YouTube4K(), true)
	// First decision: no error history.
	d1 := r.Decide(ctxWith(12, 3, 24))
	// Feed a large over-prediction: predicted 24, realized 6.
	ctx := ctxWith(12, d1.Rung, 24)
	ctx.LastThroughput = 6
	d2 := r.Decide(ctx)
	if d2.Rung >= d1.Rung && d1.Rung > 0 {
		t.Errorf("RobustMPC did not back off after 4x over-prediction: %d -> %d", d1.Rung, d2.Rung)
	}
	if r.maxRecentError() <= 0 {
		t.Error("error history empty after observation")
	}
	r.Reset()
	if r.maxRecentError() != 0 {
		t.Error("Reset did not clear error history")
	}
}

func TestRobustMPCErrorWindowRolls(t *testing.T) {
	r := NewMPC(video.YouTube4K(), true)
	r.ErrorWindow = 3
	for i := 0; i < 10; i++ {
		ctx := ctxWith(12, 3, 24)
		ctx.LastThroughput = 20
		r.Decide(ctx)
	}
	if len(r.relErrors) > 3 {
		t.Errorf("error window grew to %d", len(r.relErrors))
	}
}

func TestFuguUsesQuantilePredictor(t *testing.T) {
	f := NewFugu(video.YouTube4K())
	// Point estimate says 24 Mb/s, but the 15th percentile says 3 Mb/s:
	// Fugu must plan against the pessimistic tail, unlike MPC.
	ctx := ctxWith(6, 4, 24)
	ctx.PredictQuantile = func(q float64, _ units.Seconds) units.Mbps {
		if q <= 0.2 {
			return 3
		}
		return 24
	}
	m := NewMPC(video.YouTube4K(), false)
	df := f.Decide(ctx)
	dm := m.Decide(ctx)
	if df.Rung >= dm.Rung {
		t.Errorf("Fugu (%d) should be more conservative than MPC (%d) under tail risk", df.Rung, dm.Rung)
	}
	// Without a quantile predictor Fugu degrades to MPC behaviour.
	ctx.PredictQuantile = nil
	if got := f.Decide(ctx); got.Rung != dm.Rung {
		t.Errorf("Fugu without quantiles = %d, MPC = %d", got.Rung, dm.Rung)
	}
}

func TestRLSimProfile(t *testing.T) {
	r := NewRLSim(video.YouTube4K())
	// Healthy buffer: rides close to capacity.
	if d := r.Decide(ctxWith(12, 0, 26)); d.Rung != 4 {
		t.Errorf("RL at ω=26 chose %d, want 4 (24 Mb/s)", d.Rung)
	}
	// Thin buffer: defensive.
	if d := r.Decide(ctxWith(1, 4, 26)); d.Rung > 1 {
		t.Errorf("RL with 1 s buffer chose %d", d.Rung)
	}
	// No smoothing: decisions track ω̂ jitter.
	a := r.Decide(ctxWith(12, 3, 11)).Rung
	b := r.Decide(ctxWith(12, a, 26)).Rung
	if a == b {
		t.Error("RL stand-in should track throughput jitter")
	}
}

func TestProductionBaselineNameAndBehaviour(t *testing.T) {
	p := NewProductionBaseline(video.PrimeVideo())
	if p.Name() != "prod-baseline" {
		t.Errorf("name = %q", p.Name())
	}
	ctx := &abr.Context{
		Buffer:    units.Seconds(10),
		BufferCap: units.Seconds(20),
		PrevRung:  4,
		Ladder:    video.PrimeVideo(),
		Predict:   func(units.Seconds) units.Mbps { return units.Mbps(5) },
	}
	d := p.Decide(ctx)
	if d.Rung < 0 || d.Rung >= video.PrimeVideo().Len() {
		t.Errorf("decision %+v", d)
	}
	if video.PrimeVideo().Mbps(d.Rung) > 5 {
		t.Errorf("production baseline exceeded throughput: %v Mb/s", video.PrimeVideo().Mbps(d.Rung))
	}
	p.Reset()
}

func TestMPCHorizonClampAtStreamEnd(t *testing.T) {
	m := NewMPC(video.YouTube4K(), false)
	ctx := ctxWith(12, 3, 20)
	ctx.TotalSegments = 100
	ctx.SegmentIndex = 99
	d := m.Decide(ctx)
	if d.Rung < 0 {
		t.Errorf("end-of-stream decision %+v", d)
	}
}

func TestBBAMap(t *testing.T) {
	b := NewBBA(video.YouTube4K())
	// Below the reservoir: lowest rung regardless of anything else.
	if d := b.Decide(ctxWith(1, 5, 100)); d.Rung != 0 {
		t.Errorf("reservoir decision = %d", d.Rung)
	}
	// Above reservoir+cushion: top rung.
	if d := b.Decide(ctxWith(19.5, 0, 1)); d.Rung != 5 {
		t.Errorf("cushion-top decision = %d", d.Rung)
	}
	// Monotone non-decreasing in buffer.
	prev := -1
	for buf := 0.0; buf <= 20; buf += 0.5 {
		r := b.Decide(ctxWith(buf, 2, 10)).Rung
		if r < prev {
			t.Fatalf("BBA decision dropped from %d to %d at buffer %v", prev, r, buf)
		}
		prev = r
	}
	if b.Name() != "bba" {
		t.Errorf("name = %q", b.Name())
	}
	b.Reset()
	// Registered.
	if _, err := abr.New("bba", video.Mobile()); err != nil {
		t.Fatal(err)
	}
}
