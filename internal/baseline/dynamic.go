package baseline

import (
	"repro/internal/abr"
	"repro/internal/units"
	"repro/internal/video"
)

// Dynamic is the production BOLA variant ("Dynamic" in §6.1.2; dash.js's
// default ABR rule, from Spiteri et al. "From Theory to Practice"): it runs a
// throughput rule at low buffer levels and BOLA once the buffer is healthy,
// with hysteresis, plus the two production heuristics the paper names:
//
//   - low-buffer safety: below a safety threshold the bitrate is additionally
//     capped by a discounted throughput estimate to reduce rebuffering;
//   - switching avoidance: upward switches beyond what the throughput
//     sustains are suppressed (BOLA-O style oscillation damping), and upward
//     moves are limited to one rung per decision.
type Dynamic struct {
	ladder video.Ladder
	bola   *BOLA

	// SwitchOnBuffer enters buffer (BOLA) mode at or above this level.
	SwitchOnBuffer units.Seconds
	// SwitchOffBuffer leaves buffer mode below this level (hysteresis).
	SwitchOffBuffer units.Seconds
	// ThroughputSafety discounts ω̂ in throughput mode.
	ThroughputSafety float64
	// LowBuffer triggers the low-buffer safety cap.
	LowBuffer units.Seconds
	// LowBufferSafety is the ω̂ discount under low-buffer safety.
	LowBufferSafety float64
	// MaxUpStep bounds how many rungs a single decision may move up.
	MaxUpStep int
	// UpSwitchPatience requires this many consecutive decisions wanting an
	// up-switch before one is granted (1 = no damping). Production tunings
	// use a few segments of patience to suppress oscillation.
	UpSwitchPatience int

	inBufferMode bool
	upStreak     int
}

// NewDynamic returns Dynamic with dash.js-flavoured defaults.
func NewDynamic(ladder video.Ladder) *Dynamic {
	return &Dynamic{
		ladder:           ladder,
		bola:             NewBOLA(ladder, units.Seconds(0)),
		SwitchOnBuffer:   units.Seconds(10),
		SwitchOffBuffer:  units.Seconds(8),
		ThroughputSafety: 0.9,
		LowBuffer:        2 * ladder.SegmentSeconds,
		LowBufferSafety:  0.5,
		MaxUpStep:        1,
		UpSwitchPatience: 1,
	}
}

// Name implements abr.Controller.
func (d *Dynamic) Name() string { return "dynamic" }

// Reset implements abr.Controller.
func (d *Dynamic) Reset() {
	d.inBufferMode = false
	d.upStreak = 0
	d.bola.Reset()
}

// Decide implements abr.Controller.
func (d *Dynamic) Decide(ctx *abr.Context) abr.Decision {
	// Mode selection with hysteresis.
	if d.inBufferMode {
		if ctx.Buffer < d.SwitchOffBuffer {
			d.inBufferMode = false
		}
	} else if ctx.Buffer >= d.SwitchOnBuffer {
		d.inBufferMode = true
	}

	omega := ctx.PredictSafe(d.ladder.SegmentSeconds)
	var rung int
	if d.inBufferMode {
		rung = d.bola.Decide(ctx).Rung
		// Switching avoidance (BOLA-O): when BOLA wants to move up beyond
		// what the network sustains, hold the previous rung instead of
		// oscillating.
		if ctx.PrevRung >= 0 && rung > ctx.PrevRung {
			sustainable := d.ladder.MaxSustainable(omega.Scale(d.ThroughputSafety))
			if rung > sustainable {
				rung = maxInt(ctx.PrevRung, sustainable)
			}
		}
	} else {
		rung = d.ladder.MaxSustainable(omega.Scale(d.ThroughputSafety))
	}

	// Low-buffer safety.
	if ctx.Buffer < d.LowBuffer {
		if safe := d.ladder.MaxSustainable(omega.Scale(d.LowBufferSafety)); rung > safe {
			rung = safe
		}
	}

	// Limit upward jumps, and require sustained demand before moving up.
	if ctx.PrevRung >= 0 && rung > ctx.PrevRung {
		d.upStreak++
		if d.upStreak < d.UpSwitchPatience {
			rung = ctx.PrevRung
		} else if rung > ctx.PrevRung+d.MaxUpStep {
			rung = ctx.PrevRung + d.MaxUpStep
		}
	} else {
		d.upStreak = 0
	}
	return abr.Decision{Rung: d.ladder.ClampIndex(rung)}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

var _ abr.Controller = (*Dynamic)(nil)

// NewProductionBaseline returns the fine-tuned production control arm of the
// A/B experiments (§6.3): a Dynamic controller tuned conservatively, the
// profile of a long-deployed and carefully adjusted production ABR stack.
func NewProductionBaseline(ladder video.Ladder) abr.Controller {
	d := NewDynamic(ladder)
	d.ThroughputSafety = 0.80
	d.LowBuffer = 3 * ladder.SegmentSeconds
	d.LowBufferSafety = 0.6
	d.UpSwitchPatience = 4
	return &renamed{Controller: d, name: "prod-baseline"}
}

// renamed wraps a controller under a different registry/report name.
type renamed struct {
	abr.Controller
	name string
}

// Name implements abr.Controller.
func (r *renamed) Name() string { return r.name }
