package baseline

import (
	"math"

	"repro/internal/abr"
	"repro/internal/units"
	"repro/internal/video"
)

// MPC is the model-predictive controller of Yin et al. (§6.1.2), planning
// over a K-segment horizon to maximize the QoE-aligned objective
//
//	Σ_k  q(r_k) − λ·|q(r_k) − q(r_{k−1})| − μ·stall_k
//
// where q is the normalized log utility, stall_k the predicted rebuffering
// seconds of segment k, and the buffer evolves segment-by-segment at the
// predicted throughput. The search is the exponential brute force over
// |R|^K sequences that the paper cites as MPC's deployability obstacle.
//
// With robust=true this is RobustMPC: the throughput estimate is discounted
// by the maximum relative prediction error observed over the last
// ErrorWindow segments, ω̂/(1 + maxErr).
type MPC struct {
	ladder video.Ladder
	robust bool

	// Horizon is the planning depth in segments (5 in Yin et al.).
	Horizon int
	// LambdaSwitch weights the |Δq| switching penalty.
	LambdaSwitch float64
	// MuRebuffer weights predicted stall seconds. 10/segment-seconds aligns
	// the per-second penalty with the evaluation's QoE weights (β=10 on the
	// rebuffering ratio).
	MuRebuffer float64
	// ErrorWindow is the number of recent predictions RobustMPC considers.
	ErrorWindow int

	lastPrediction units.Mbps
	relErrors      []float64
}

// NewMPC returns MPC (robust=false) or RobustMPC (robust=true) with the
// standard tuning.
func NewMPC(ladder video.Ladder, robust bool) *MPC {
	return &MPC{
		ladder:       ladder,
		robust:       robust,
		Horizon:      5,
		LambdaSwitch: 1,
		MuRebuffer:   10 / float64(ladder.SegmentSeconds),
		ErrorWindow:  5,
	}
}

// Name implements abr.Controller.
func (m *MPC) Name() string {
	if m.robust {
		return "robustmpc"
	}
	return "mpc"
}

// Reset implements abr.Controller.
func (m *MPC) Reset() {
	m.lastPrediction = 0
	m.relErrors = m.relErrors[:0]
}

// observeError tracks the realized error of the previous prediction, the
// signal RobustMPC discounts by.
func (m *MPC) observeError(actual units.Mbps) {
	if m.lastPrediction <= 0 || actual <= 0 {
		return
	}
	rel := math.Abs(float64(m.lastPrediction-actual)) / float64(actual)
	m.relErrors = append(m.relErrors, rel)
	if len(m.relErrors) > m.ErrorWindow {
		m.relErrors = m.relErrors[len(m.relErrors)-m.ErrorWindow:]
	}
}

func (m *MPC) maxRecentError() float64 {
	maxErr := 0.0
	for _, e := range m.relErrors {
		if e > maxErr {
			maxErr = e
		}
	}
	return maxErr
}

// Decide implements abr.Controller.
func (m *MPC) Decide(ctx *abr.Context) abr.Decision {
	m.observeError(ctx.LastThroughput)
	omega := ctx.PredictSafe(m.ladder.SegmentSeconds.Scale(float64(m.Horizon)))
	m.lastPrediction = omega
	if m.robust {
		omega = units.Mbps(float64(omega) / (1 + m.maxRecentError()))
	}
	k := m.Horizon
	if ctx.TotalSegments > 0 {
		if rem := ctx.TotalSegments - ctx.SegmentIndex; rem < k {
			k = rem
		}
	}
	if k < 1 {
		k = 1
	}
	best, _ := m.plan(omega, ctx.Buffer, ctx.BufferCap, ctx.PrevRung, k)
	if best < 0 {
		best = 0
	}
	return abr.Decision{Rung: best}
}

// plan searches all |R|^k sequences via DFS, returning the best first rung
// and its objective. omega drives the predicted buffer dynamics and stall
// risk; utility depends only on the rung. The Fugu-style controller passes a
// conservative quantile here instead of the point estimate. The DFS itself
// runs on float64 locals (the accumulator mixes utility, stall and switching
// terms, all dimensionless).
func (m *MPC) plan(omegaRate units.Mbps, bufferLevel, bufferCap units.Seconds, prevRung, k int) (int, float64) {
	omega, buffer, cap_ := float64(omegaRate), float64(bufferLevel), float64(bufferCap)
	bestRung, bestObj := -1, math.Inf(-1)
	var dfs func(depth int, buf float64, prev int, acc float64, first int)
	dfs = func(depth int, buf float64, prev int, acc float64, first int) {
		if depth == k {
			if acc > bestObj {
				bestObj = acc
				bestRung = first
			}
			return
		}
		for r := 0; r < m.ladder.Len(); r++ {
			obj, nextBuf := m.segmentObjective(r, prev, buf, cap_, omega)
			f := first
			if depth == 0 {
				f = r
			}
			dfs(depth+1, nextBuf, r, acc+obj, f)
		}
	}
	dfs(0, buffer, prevRung, 0, -1)
	return bestRung, bestObj
}

// segmentObjective scores downloading one segment at rung r from the given
// buffer, returning the contribution and the next buffer level.
func (m *MPC) segmentObjective(r, prev int, buffer, cap_, omega float64) (float64, float64) {
	l := float64(m.ladder.SegmentSeconds)
	downloadTime := float64(m.ladder.Mbps(r)) * l / omega
	stall := math.Max(0, downloadTime-buffer)
	nextBuf := math.Max(buffer-downloadTime, 0) + l
	if nextBuf > cap_ {
		nextBuf = cap_ // planning approximation: the player idles at the cap
	}
	obj := m.ladder.LogUtility(r) - m.MuRebuffer*stall
	if prev >= 0 {
		obj -= m.LambdaSwitch * math.Abs(m.ladder.LogUtility(r)-m.ladder.LogUtility(prev))
	}
	return obj, nextBuf
}

var _ abr.Controller = (*MPC)(nil)

// Fugu is the Fugu-style controller (§6.2.2): the control algorithm is
// MPC-like, but stall risk is priced against a conservative quantile of the
// predicted throughput distribution rather than the point estimate —
// standing in for Fugu's learned stochastic transmit-time predictor (see
// DESIGN.md, substitutions).
type Fugu struct {
	MPC
	// StallQuantile is the pessimistic throughput quantile used for stall
	// planning (Fugu plans against uncertainty, not the mean).
	StallQuantile float64
}

// NewFugu returns the Fugu-style controller.
func NewFugu(ladder video.Ladder) *Fugu {
	f := &Fugu{MPC: *NewMPC(ladder, false), StallQuantile: 0.15}
	return f
}

// Name implements abr.Controller.
func (f *Fugu) Name() string { return "fugu" }

// Decide implements abr.Controller.
func (f *Fugu) Decide(ctx *abr.Context) abr.Decision {
	horizon := f.ladder.SegmentSeconds.Scale(float64(f.Horizon))
	omega := ctx.PredictSafe(horizon)
	if ctx.PredictQuantile != nil {
		if q := ctx.PredictQuantile(f.StallQuantile, horizon); q > 0 {
			omega = q
		}
	}
	k := f.Horizon
	if ctx.TotalSegments > 0 {
		if rem := ctx.TotalSegments - ctx.SegmentIndex; rem < k {
			k = rem
		}
	}
	if k < 1 {
		k = 1
	}
	best, _ := f.plan(omega, ctx.Buffer, ctx.BufferCap, ctx.PrevRung, k)
	if best < 0 {
		best = 0
	}
	return abr.Decision{Rung: best}
}

var _ abr.Controller = (*Fugu)(nil)
