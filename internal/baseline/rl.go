package baseline

import (
	"repro/internal/abr"
	"repro/internal/units"
	"repro/internal/video"
)

// RLSim is the behavioural stand-in for CausalSimRL (§6.2.2), the
// reinforcement-learning controller trained with CausalSim for the Puffer
// platform. We do not train an RL agent (see DESIGN.md, substitutions);
// instead this controller reproduces the behavioural profile the paper
// reports in Figure 12: slightly higher utility than SODA, low rebuffering
// ratio, and much more frequent switching (+86.3% vs SODA), because the
// learned policy tracks the throughput signal greedily with only a small
// buffer reserve and no smoothness term.
type RLSim struct {
	ladder video.Ladder
	// Aggressiveness scales the throughput estimate when the buffer is
	// healthy (RL policies learn to ride close to capacity).
	Aggressiveness float64
	// Reserve is the buffer level below which the policy becomes defensive.
	Reserve units.Seconds
	// DefensiveFactor scales ω̂ when below the reserve.
	DefensiveFactor float64
}

// NewRLSim returns the CausalSimRL stand-in.
func NewRLSim(ladder video.Ladder) *RLSim {
	return &RLSim{
		ladder:          ladder,
		Aggressiveness:  0.95,
		Reserve:         2 * ladder.SegmentSeconds,
		DefensiveFactor: 0.6,
	}
}

// Name implements abr.Controller.
func (r *RLSim) Name() string { return "rl" }

// Reset implements abr.Controller.
func (r *RLSim) Reset() {}

// Decide implements abr.Controller.
func (r *RLSim) Decide(ctx *abr.Context) abr.Decision {
	omega := ctx.PredictSafe(r.ladder.SegmentSeconds)
	factor := r.Aggressiveness
	if ctx.Buffer < r.Reserve {
		// Defensive mode: scale down proportionally to the buffer deficit.
		frac := float64(ctx.Buffer / r.Reserve)
		factor = r.DefensiveFactor * frac
	}
	return abr.Decision{Rung: r.ladder.MaxSustainable(omega.Scale(factor))}
}

var _ abr.Controller = (*RLSim)(nil)
