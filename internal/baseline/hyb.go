package baseline

import (
	"repro/internal/abr"
	"repro/internal/video"
)

// HYB is the heuristic throughput-based controller of Akhtar et al. (Oboe),
// per the paper's description (§6.1.2): "selects the highest bitrate without
// rebuffering". It picks the highest rung whose next-segment download time
// fits within a fraction of the current buffer, additionally capped at the
// throughput estimate. Because it tracks the prediction directly with no
// smoothing term, it achieves high utility but switches frequently — the
// profile Figure 10 reports (up to 215% more switching than SODA).
type HYB struct {
	ladder video.Ladder
	// BufferFraction is the share of the buffer a download may consume
	// before HYB considers it a rebuffering risk.
	BufferFraction float64
	// SafetyFactor discounts the throughput estimate for the bitrate cap.
	SafetyFactor float64
}

// NewHYB returns HYB with the tuned defaults.
func NewHYB(ladder video.Ladder) *HYB {
	return &HYB{ladder: ladder, BufferFraction: 0.5, SafetyFactor: 1.0}
}

// Name implements abr.Controller.
func (h *HYB) Name() string { return "hyb" }

// Reset implements abr.Controller.
func (h *HYB) Reset() {}

// Decide implements abr.Controller.
func (h *HYB) Decide(ctx *abr.Context) abr.Decision {
	omega := ctx.PredictSafe(h.ladder.SegmentSeconds)
	best := 0
	for i := 0; i < h.ladder.Len(); i++ {
		r := h.ladder.Mbps(i)
		if r > omega.Scale(h.SafetyFactor) {
			break
		}
		downloadTime := r.MegabitsIn(h.ladder.SegmentSeconds).AtRate(omega)
		if downloadTime <= ctx.Buffer.Scale(h.BufferFraction) {
			best = i
		}
	}
	return abr.Decision{Rung: best}
}

var _ abr.Controller = (*HYB)(nil)
