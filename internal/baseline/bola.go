// Package baseline implements the ABR controllers SODA is evaluated against
// in the paper (§6.1.2, §6.2.2, §6.3):
//
//   - HYB: a heuristic throughput-based controller (Akhtar et al., Oboe);
//   - BOLA: the Lyapunov buffer-based controller (Spiteri et al.);
//   - Dynamic: the production BOLA variant of dash.js that switches between
//     buffer and throughput modes with low-buffer safety and switch-avoidance
//     heuristics (Spiteri et al., "From Theory to Practice");
//   - MPC and RobustMPC: the model-predictive controllers of Yin et al.;
//   - a Fugu-style controller: MPC-like control with a stochastic
//     (quantile) throughput predictor;
//   - an RL-style stand-in reproducing the behavioural profile the paper
//     reports for CausalSimRL (high utility, low rebuffering, frequent
//     switching);
//   - the fine-tuned production baseline used as the A/B control arm (§6.3).
//
// All controllers are tuned to the paper's evaluation configuration (live
// streaming, 15-20 s buffer caps, 2 s segments) and registered in the
// abr registry under their lowercase names.
package baseline

import (
	"math"

	"repro/internal/abr"
	"repro/internal/units"
	"repro/internal/video"
)

func init() {
	abr.Register("bola", func(l video.Ladder) abr.Controller { return NewBOLA(l, units.Seconds(0)) })
	abr.Register("hyb", func(l video.Ladder) abr.Controller { return NewHYB(l) })
	abr.Register("dynamic", func(l video.Ladder) abr.Controller { return NewDynamic(l) })
	abr.Register("mpc", func(l video.Ladder) abr.Controller { return NewMPC(l, false) })
	abr.Register("robustmpc", func(l video.Ladder) abr.Controller { return NewMPC(l, true) })
	abr.Register("fugu", func(l video.Ladder) abr.Controller { return NewFugu(l) })
	abr.Register("rl", func(l video.Ladder) abr.Controller { return NewRLSim(l) })
	abr.Register("prod-baseline", func(l video.Ladder) abr.Controller { return NewProductionBaseline(l) })
}

// BOLA is the buffer-based controller of Spiteri et al., as shipped in
// dash.js: rung i maximizes (Vp·(υ_i + gp) − Q) / r_i, with parameters
// derived so that the lowest rung is chosen at the minimum buffer level and
// the highest near the stable buffer target.
//
// Figure 2 of the paper plots exactly this decision function's boundaries
// for an on-demand (120 s) versus live (20 s) stable buffer.
type BOLA struct {
	ladder video.Ladder
	// StableBuffer is the buffer level at which BOLA is willing to stream
	// the top rung. Zero derives it from the decision context's buffer cap
	// at first use (live behaviour).
	StableBuffer units.Seconds

	utilities []float64
	gp, vp    float64
	derivedAt units.Seconds
}

// minimumBufferSeconds mirrors dash.js's MINIMUM_BUFFER_S.
const minimumBufferSeconds = 10

// minimumBufferPerLevelSeconds mirrors dash.js's
// MINIMUM_BUFFER_PER_BITRATE_LEVEL_S.
const minimumBufferPerLevelSeconds = 2

// NewBOLA builds a BOLA controller. stableBuffer = 0 derives the target from
// the session's buffer cap (suitable for live streaming); pass e.g. 120 s for
// the on-demand configuration of Figure 2.
func NewBOLA(ladder video.Ladder, stableBuffer units.Seconds) *BOLA {
	b := &BOLA{ladder: ladder, StableBuffer: stableBuffer}
	if stableBuffer > 0 {
		b.derive(stableBuffer, units.Seconds(0))
	}
	return b
}

// derive computes utilities, gp and Vp following the dash.js BolaRule
// parameter derivation. bufferCap > 0 clamps the derived buffer target into
// the range the player can actually reach: with a dense ladder the dash.js
// formula (10 s + 2 s per rung) can exceed a live buffer cap entirely, which
// would leave the top rungs permanently unreachable.
func (b *BOLA) derive(stable, bufferCap units.Seconds) {
	n := b.ladder.Len()
	b.utilities = make([]float64, n)
	for i := 0; i < n; i++ {
		b.utilities[i] = math.Log(float64(b.ladder.Mbps(i) / b.ladder.Min()))
	}
	// Shift so the lowest utility is 1 (dash.js convention).
	for i := range b.utilities {
		b.utilities[i] += 1
	}
	// The dash.js derivation below is plain scalar algebra; drop to float64
	// once here (gp and vp are the dimensionless BolaRule parameters).
	bufferTime := math.Max(float64(stable), minimumBufferSeconds+minimumBufferPerLevelSeconds*float64(n))
	if bufferCap > 0 {
		if reachable := float64(bufferCap - b.ladder.SegmentSeconds); bufferTime > reachable {
			bufferTime = math.Max(reachable, minimumBufferSeconds+1)
		}
	}
	top := b.utilities[n-1]
	b.gp = (top - 1) / (bufferTime/minimumBufferSeconds - 1)
	if b.gp <= 0 {
		b.gp = 1 // degenerate single-rung ladder
	}
	b.vp = minimumBufferSeconds / b.gp
	b.derivedAt = stable
}

// Name implements abr.Controller.
func (b *BOLA) Name() string { return "bola" }

// Reset implements abr.Controller.
func (b *BOLA) Reset() {}

// Score returns BOLA's objective for rung i at the given buffer level; the
// decision is the argmax. Exposed for the Figure 2 boundary experiment.
func (b *BOLA) Score(i int, buffer units.Seconds) float64 {
	return (b.vp*(b.utilities[i]+b.gp) - float64(buffer)) / float64(b.ladder.Mbps(i))
}

// DecideBuffer returns BOLA's rung for a buffer level (the pure decision
// function plotted in Figure 2).
func (b *BOLA) DecideBuffer(buffer units.Seconds) int {
	best, bestScore := 0, math.Inf(-1)
	for i := 0; i < b.ladder.Len(); i++ {
		if s := b.Score(i, buffer); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// Decide implements abr.Controller.
func (b *BOLA) Decide(ctx *abr.Context) abr.Decision {
	if b.utilities == nil || (b.StableBuffer == 0 && b.derivedAt != ctx.BufferCap) {
		b.derive(ctx.BufferCap, ctx.BufferCap)
	}
	return abr.Decision{Rung: b.DecideBuffer(ctx.Buffer)}
}

var _ abr.Controller = (*BOLA)(nil)
