// Package stats provides the small statistical toolkit used throughout the
// SODA reproduction: descriptive statistics, confidence intervals, Pearson
// correlation, simple linear regression, quantiles and histograms.
//
// All functions are deterministic and allocation-light; they are used both by
// the experiment drivers (aggregating per-session QoE into the figures) and by
// the synthetic trace generators (validating that generated datasets match the
// calibration targets from the paper's Figure 9).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (n-1 denominator).
// It returns 0 when fewer than two samples are provided.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// RSD returns the relative standard deviation (coefficient of variation)
// of xs: StdDev/Mean. It returns 0 when the mean is 0.
func RSD(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Min returns the smallest element of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary holds descriptive statistics for a sample, including the half-width
// of the normal-approximation 95% confidence interval on the mean. The
// experiment drivers report Mean±CI95 exactly like the error bars in the
// paper's Figures 10-12.
type Summary struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
	CI95 float64 // half-width of the 95% CI on the mean
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{
		N:    len(xs),
		Mean: Mean(xs),
		Std:  StdDev(xs),
		Min:  Min(xs),
		Max:  Max(xs),
	}
	if s.N > 1 {
		s.CI95 = 1.96 * s.Std / math.Sqrt(float64(s.N))
	}
	return s
}

// String renders the summary as "mean ± ci (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4f ± %.4f (n=%d)", s.Mean, s.CI95, s.N)
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns 0 when the slices differ in length, are shorter than two
// elements, or either side has zero variance.
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Line is a fitted simple linear regression y = Intercept + Slope*x.
type Line struct {
	Slope     float64
	Intercept float64
	R         float64 // Pearson correlation of the fit
}

// At evaluates the fitted line at x.
func (l Line) At(x float64) float64 { return l.Intercept + l.Slope*x }

// LinearFit fits a least-squares line through (xs, ys), as used for the line
// of best fit in Figure 1. It returns a zero Line when the input is degenerate.
func LinearFit(xs, ys []float64) Line {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return Line{}
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		sxy += dx * (ys[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 {
		return Line{}
	}
	slope := sxy / sxx
	return Line{
		Slope:     slope,
		Intercept: my - slope*mx,
		R:         Pearson(xs, ys),
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It panics on an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q)
}

// QuantileSorted is like Quantile but assumes xs is already sorted ascending,
// avoiding the copy and sort. It panics on an empty slice.
func QuantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		panic("stats: QuantileSorted of empty slice")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is a fixed-width binning of a sample over [Lo, Hi). Values outside
// the range are clamped into the first or last bin.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Total  int
}

// NewHistogram bins xs into the given number of equal-width bins over
// [lo, hi). bins must be positive and hi must exceed lo.
func NewHistogram(xs []float64, lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram configuration")
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	width := (hi - lo) / float64(bins)
	for _, x := range xs {
		i := int((x - lo) / width)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		h.Counts[i]++
		h.Total++
	}
	return h
}

// Fraction returns the fraction of samples in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + width*(float64(i)+0.5)
}

// Welford is an online mean/variance accumulator (Welford's algorithm),
// handy for streaming statistics over long simulated sessions without
// retaining every sample.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples observed.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running unbiased sample variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the running sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// WelchT performs Welch's two-sample t-test for a difference in means,
// returning the t statistic and the Welch-Satterthwaite degrees of freedom.
// It returns (0, 0) when either sample has fewer than two points or both
// variances are zero.
func WelchT(a, b []float64) (t, df float64) {
	na, nb := float64(len(a)), float64(len(b))
	if na < 2 || nb < 2 {
		return 0, 0
	}
	va, vb := Variance(a)/na, Variance(b)/nb
	if va+vb == 0 {
		return 0, 0
	}
	t = (Mean(a) - Mean(b)) / math.Sqrt(va+vb)
	df = (va + vb) * (va + vb) / (va*va/(na-1) + vb*vb/(nb-1))
	return t, df
}

// SignificantAt05 reports whether a Welch t statistic with the given degrees
// of freedom rejects equality at the two-sided 5% level, using the normal
// approximation above 30 degrees of freedom and a small-df critical-value
// table below.
func SignificantAt05(t, df float64) bool {
	if df <= 0 {
		return false
	}
	crit := 1.96
	switch {
	case df < 5:
		crit = 2.78
	case df < 10:
		crit = 2.26
	case df < 20:
		crit = 2.09
	case df < 30:
		crit = 2.04
	}
	return math.Abs(t) > crit
}
