package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{}, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1 denominator: 32/7.
	want := 32.0 / 7.0
	if got := Variance(xs); !almostEq(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got := StdDev(xs); !almostEq(got, math.Sqrt(want), 1e-12) {
		t.Errorf("StdDev = %v, want %v", got, math.Sqrt(want))
	}
	if Variance([]float64{1}) != 0 {
		t.Error("Variance of single sample should be 0")
	}
}

func TestRSD(t *testing.T) {
	xs := []float64{10, 10, 10}
	if got := RSD(xs); got != 0 {
		t.Errorf("RSD of constant = %v, want 0", got)
	}
	if got := RSD([]float64{0, 0}); got != 0 {
		t.Errorf("RSD with zero mean = %v, want 0", got)
	}
	xs = []float64{5, 15}
	want := StdDev(xs) / 10
	if got := RSD(xs); !almostEq(got, want, 1e-12) {
		t.Errorf("RSD = %v, want %v", got, want)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 {
		t.Errorf("Min = %v", Min(xs))
	}
	if Max(xs) != 7 {
		t.Errorf("Max = %v", Max(xs))
	}
	defer func() {
		if recover() == nil {
			t.Error("Min of empty slice should panic")
		}
	}()
	Min(nil)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("unexpected summary %+v", s)
	}
	wantCI := 1.96 * s.Std / math.Sqrt(5)
	if !almostEq(s.CI95, wantCI, 1e-12) {
		t.Errorf("CI95 = %v, want %v", s.CI95, wantCI)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("empty summary %+v", z)
	}
	if s.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almostEq(got, 1, 1e-12) {
		t.Errorf("perfect positive correlation = %v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEq(got, -1, 1e-12) {
		t.Errorf("perfect negative correlation = %v", got)
	}
	if got := Pearson(xs, []float64{1, 1, 1, 1, 1}); got != 0 {
		t.Errorf("zero-variance correlation = %v", got)
	}
	if got := Pearson(xs, ys[:3]); got != 0 {
		t.Errorf("mismatched lengths = %v", got)
	}
}

func TestLinearFit(t *testing.T) {
	// y = 3 + 2x exactly.
	xs := []float64{0, 1, 2, 3}
	ys := []float64{3, 5, 7, 9}
	l := LinearFit(xs, ys)
	if !almostEq(l.Slope, 2, 1e-12) || !almostEq(l.Intercept, 3, 1e-12) {
		t.Errorf("fit = %+v", l)
	}
	if !almostEq(l.At(10), 23, 1e-12) {
		t.Errorf("At(10) = %v", l.At(10))
	}
	if !almostEq(l.R, 1, 1e-12) {
		t.Errorf("R = %v", l.R)
	}
	if z := LinearFit(xs, ys[:2]); z.Slope != 0 {
		t.Errorf("degenerate fit = %+v", z)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	var xs, ys []float64
	for i := 0; i < 2000; i++ {
		x := rng.Float64() * 10
		xs = append(xs, x)
		ys = append(ys, 1.5-0.4*x+rng.NormFloat64()*0.05)
	}
	l := LinearFit(xs, ys)
	if !almostEq(l.Slope, -0.4, 0.01) || !almostEq(l.Intercept, 1.5, 0.02) {
		t.Errorf("noisy fit = %+v", l)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); !almostEq(got, 2.5, 1e-12) {
		t.Errorf("median = %v", got)
	}
	// Quantile must not mutate the input.
	if xs[0] != 4 {
		t.Error("Quantile mutated its input")
	}
	defer func() {
		if recover() == nil {
			t.Error("Quantile of empty slice should panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestQuantileSortedMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
		n := 1 + rng.IntN(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{-5, 0.1, 0.9, 1.5, 2.5, 99}
	h := NewHistogram(xs, 0, 3, 3)
	if h.Total != 6 {
		t.Errorf("Total = %d", h.Total)
	}
	// -5 clamps into bin 0; 99 clamps into bin 2.
	if h.Counts[0] != 3 || h.Counts[1] != 1 || h.Counts[2] != 2 {
		t.Errorf("Counts = %v", h.Counts)
	}
	if !almostEq(h.Fraction(0), 0.5, 1e-12) {
		t.Errorf("Fraction(0) = %v", h.Fraction(0))
	}
	if !almostEq(h.BinCenter(1), 1.5, 1e-12) {
		t.Errorf("BinCenter(1) = %v", h.BinCenter(1))
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid histogram config should panic")
		}
	}()
	NewHistogram(xs, 3, 0, 3)
}

func TestWelfordMatchesBatch(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 42))
		n := 2 + rng.IntN(100)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 3
			w.Add(xs[i])
		}
		return w.N() == n &&
			almostEq(w.Mean(), Mean(xs), 1e-9) &&
			almostEq(w.Variance(), Variance(xs), 1e-9) &&
			almostEq(w.StdDev(), StdDev(xs), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWelfordSmall(t *testing.T) {
	var w Welford
	if w.Variance() != 0 || w.StdDev() != 0 {
		t.Error("empty Welford variance should be 0")
	}
	w.Add(5)
	if w.Mean() != 5 || w.Variance() != 0 {
		t.Errorf("single-sample Welford: mean=%v var=%v", w.Mean(), w.Variance())
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp misbehaves")
	}
}

func TestPearsonSymmetry(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		n := 2 + rng.IntN(30)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		a, b := Pearson(xs, ys), Pearson(ys, xs)
		return almostEq(a, b, 1e-12) && a >= -1-1e-9 && a <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWelchT(t *testing.T) {
	// Clearly separated samples: significant.
	a := []float64{10, 11, 9, 10.5, 9.5, 10.2, 9.8, 10.1}
	b := []float64{14, 15, 13, 14.5, 13.5, 14.2, 13.8, 14.1}
	stat, df := WelchT(a, b)
	if stat >= 0 {
		t.Errorf("t = %v, want negative (a < b)", stat)
	}
	if !SignificantAt05(stat, df) {
		t.Errorf("separated samples not significant: t=%v df=%v", stat, df)
	}
	// Identical samples: insignificant.
	stat, df = WelchT(a, a)
	if SignificantAt05(stat, df) {
		t.Errorf("identical samples significant: t=%v df=%v", stat, df)
	}
	// Degenerate inputs.
	if s, d := WelchT([]float64{1}, a); s != 0 || d != 0 {
		t.Error("short sample should yield zeros")
	}
	if s, d := WelchT([]float64{2, 2, 2}, []float64{2, 2, 2}); s != 0 || d != 0 {
		t.Error("zero-variance samples should yield zeros")
	}
	if SignificantAt05(5, 0) {
		t.Error("df=0 cannot be significant")
	}
	// Small-df critical values are stricter.
	if SignificantAt05(2.2, 3) {
		t.Error("t=2.2 at df=3 should not be significant")
	}
	if !SignificantAt05(3.0, 3) {
		t.Error("t=3.0 at df=3 should be significant")
	}
}
