package sessiontable

import (
	"fmt"
	"runtime"
	"sync"
)

// nanosPerSecond converts the limiter's nanosecond clock into token units.
const nanosPerSecond = 1e9

// bucket is one client's token bucket. Tokens refill lazily at Allow time
// from the elapsed nanoseconds, so idle buckets cost nothing between
// requests.
type bucket struct {
	tokens float64
	last   int64 // unix nanos of the last refill
}

// limiterShard is one independently locked partition of the per-client
// bucket map, padded like the session-table shards.
type limiterShard struct {
	mu sync.Mutex
	//soda:guard mu
	buckets map[string]*bucket
	_       [64]byte
}

// Limiter is token-bucket admission control keyed by client id: each client
// accrues rate tokens per second up to burst, and every admitted request
// spends one. Like the session table it is sharded, clock-injected, and
// allocation-free on the steady-state path (an existing client's Allow is a
// map lookup plus arithmetic under the shard lock).
type Limiter struct {
	rate  float64
	burst float64

	shards []limiterShard
	mask   uint64
}

// NewLimiter builds a limiter granting rate tokens per second with the given
// burst capacity per client. burst <= 0 defaults to rate (one second of
// headroom); rate must be positive — a harness that wants no limiting passes
// a nil *Limiter, which admits everything.
func NewLimiter(rate, burst float64) *Limiter {
	if rate <= 0 {
		panic(fmt.Sprintf("sessiontable: non-positive limiter rate %g", rate))
	}
	if burst <= 0 {
		burst = rate
	}
	if burst < 1 {
		burst = 1
	}
	shards := runtime.GOMAXPROCS(0)
	if shards > 256 {
		shards = 256
	}
	shardCount := 1
	for shardCount < shards {
		shardCount <<= 1
	}
	l := &Limiter{rate: rate, burst: burst, shards: make([]limiterShard, shardCount), mask: uint64(shardCount - 1)}
	for i := range l.shards {
		l.shards[i].buckets = map[string]*bucket{}
	}
	return l
}

// shardFor maps a client id onto its shard (FNV-1a, like the session table).
func (l *Limiter) shardFor(client string) *limiterShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(client); i++ {
		h ^= uint64(client[i])
		h *= prime64
	}
	return &l.shards[h&l.mask]
}

// Allow spends one token from client's bucket if available. When the bucket
// is empty it returns false and the number of nanoseconds until a token
// accrues — the Retry-After a 429 response should carry. A nil limiter
// admits everything.
func (l *Limiter) Allow(client string, now int64) (ok bool, retryAfterNanos int64) {
	if l == nil {
		return true, 0
	}
	sh := l.shardFor(client)
	sh.mu.Lock()
	b := sh.buckets[client]
	if b == nil {
		b = &bucket{tokens: l.burst, last: now}
		sh.buckets[client] = b
	}
	if now > b.last {
		b.tokens += float64(now-b.last) * l.rate / nanosPerSecond
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		sh.mu.Unlock()
		return true, 0
	}
	deficit := 1 - b.tokens
	sh.mu.Unlock()
	return false, int64(deficit * nanosPerSecond / l.rate)
}

// Sweep drops buckets idle for at least idleNanos as of now, so client churn
// cannot grow the limiter without bound (the same leak the session TTL sweep
// closes for sessions). Returns the number dropped. Nil-safe.
func (l *Limiter) Sweep(now, idleNanos int64) int {
	if l == nil || idleNanos <= 0 {
		return 0
	}
	dropped := 0
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		for client, b := range sh.buckets {
			if now-b.last >= idleNanos {
				delete(sh.buckets, client)
				dropped++
			}
		}
		sh.mu.Unlock()
	}
	return dropped
}

// Clients returns the tracked client count (for tests and gauges). Nil-safe.
func (l *Limiter) Clients() int {
	if l == nil {
		return 0
	}
	n := 0
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		n += len(sh.buckets)
		sh.mu.Unlock()
	}
	return n
}
