package sessiontable

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

const second = int64(1e9) // one second of the injected nanosecond clock

func mustAcquire(t *testing.T, tb *Table, key string, now int64) *Session {
	t.Helper()
	s, err := tb.Acquire(key, now, func(s *Session) error { s.Value = s.ID(); return nil })
	if err != nil {
		t.Fatalf("Acquire(%q): %v", key, err)
	}
	return s
}

func TestTableAcquireStableIdentity(t *testing.T) {
	tb := New(Config{MaxSessions: 64, TTLNanos: 10 * second})
	a := mustAcquire(t, tb, "alice", 0)
	tb.Release(a, 0)
	b := mustAcquire(t, tb, "bob", 0)
	tb.Release(b, 0)
	if a.ID() == b.ID() {
		t.Fatalf("distinct keys share id %d", a.ID())
	}
	if a.Key() != "alice" {
		t.Fatalf("Key() = %q", a.Key())
	}
	again := mustAcquire(t, tb, "alice", second)
	tb.Release(again, second)
	if again != a {
		t.Fatal("re-acquire returned a different session")
	}
	if got := tb.Len(); got != 2 {
		t.Fatalf("Len() = %d, want 2", got)
	}
	if st := tb.Stats(); st.Created != 2 || st.Active != 2 {
		t.Fatalf("stats = %+v, want 2 created / 2 active", st)
	}
}

func TestTableCreateValue(t *testing.T) {
	tb := New(Config{MaxSessions: 8})
	s := mustAcquire(t, tb, "k", 0)
	if got, ok := s.Value.(int64); !ok || got != s.ID() {
		t.Fatalf("create callback value = %v, want session id %d", s.Value, s.ID())
	}
	tb.Release(s, 0)
}

// TestTTLSweepBoundaries pins the sweep threshold arithmetic: eviction
// happens exactly at idle >= TTL, never below, and a zero TTL disables the
// sweep entirely.
func TestTTLSweepBoundaries(t *testing.T) {
	const ttl = 10 * second
	cases := []struct {
		name        string
		ttl         int64
		releasedAt  int64
		sweepAt     int64
		wantEvicted int
	}{
		{"just-under", ttl, 0, ttl - 1, 0},
		{"exactly-at", ttl, 0, ttl, 1},
		{"well-past", ttl, 0, 100 * second, 1},
		{"fresh", ttl, 5 * second, 5*second + 1, 0},
		{"zero-ttl-never", 0, 0, 1 << 62, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tb := New(Config{MaxSessions: 8, TTLNanos: tc.ttl})
			s := mustAcquire(t, tb, "k", 0)
			tb.Release(s, tc.releasedAt)
			if got := tb.Sweep(tc.sweepAt); got != tc.wantEvicted {
				t.Fatalf("Sweep evicted %d, want %d", got, tc.wantEvicted)
			}
			wantLen := 1 - tc.wantEvicted
			if got := tb.Len(); got != wantLen {
				t.Fatalf("Len() = %d after sweep, want %d", got, wantLen)
			}
			if st := tb.Stats(); int(st.EvictedIdle) != tc.wantEvicted {
				t.Fatalf("EvictedIdle = %d, want %d", st.EvictedIdle, tc.wantEvicted)
			}
		})
	}
}

// TestSweepSkipsHeldSessions: an in-flight session is never evicted, no
// matter how stale its last-use stamp looks.
func TestSweepSkipsHeldSessions(t *testing.T) {
	tb := New(Config{MaxSessions: 8, TTLNanos: second})
	s := mustAcquire(t, tb, "busy", 0)
	if got := tb.Sweep(100 * second); got != 0 {
		t.Fatalf("sweep evicted %d held sessions", got)
	}
	tb.Release(s, 100*second)
	if got := tb.Sweep(101*second - 1); got != 0 {
		t.Fatalf("freshly released session evicted (%d)", got)
	}
	if got := tb.Sweep(101 * second); got != 1 {
		t.Fatalf("idle session not evicted after release+TTL (%d)", got)
	}
}

func TestTableCapacityRejects(t *testing.T) {
	tb := New(Config{MaxSessions: 4, TTLNanos: 10 * second, Shards: 1})
	for i := 0; i < 4; i++ {
		s := mustAcquire(t, tb, fmt.Sprintf("s%d", i), 0)
		tb.Release(s, 0)
	}
	// All four are live (within TTL): the fifth must be rejected, not evict
	// a live session.
	if _, err := tb.Acquire("s4", second, nil); !errors.Is(err, ErrCapacity) {
		t.Fatalf("Acquire at capacity = %v, want ErrCapacity", err)
	}
	if st := tb.Stats(); st.RejectedCapacity != 1 {
		t.Fatalf("RejectedCapacity = %d, want 1", st.RejectedCapacity)
	}
	// Existing sessions are still served at capacity.
	s := mustAcquire(t, tb, "s0", second)
	tb.Release(s, second)
	// Once the TTL passes, the full shard reclaims its stalest idle entry
	// in-line instead of rejecting.
	if _, err := tb.Acquire("s5", 20*second, nil); err != nil {
		t.Fatalf("Acquire after TTL expiry = %v, want reclaim", err)
	}
	if st := tb.Stats(); st.EvictedIdle != 1 {
		t.Fatalf("EvictedIdle = %d, want 1 from in-line reclaim", st.EvictedIdle)
	}
	if got := tb.Len(); got != 4 {
		t.Fatalf("Len() = %d, want 4 (reclaim replaced an entry)", got)
	}
}

// TestOnEvictHook pins the arena-integration contract: every eviction —
// in-line capacity reclaim and idle sweep alike — runs the hook with the
// dropped session, whose Handle identifies the arena slot to free.
func TestOnEvictHook(t *testing.T) {
	var freed []uint64
	tb := New(Config{MaxSessions: 4, TTLNanos: 10 * second, Shards: 1,
		OnEvict: func(s *Session) { freed = append(freed, s.Handle) }})
	for i := 0; i < 4; i++ {
		s, err := tb.Acquire(fmt.Sprintf("s%d", i), 0, func(s *Session) error {
			s.Handle = uint64(s.ID()) + 1
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		// Distinct last-use stamps make the LRU reclaim order deterministic.
		tb.Release(s, int64(i))
	}
	// The shard is full and every entry is idle past the TTL: admitting a
	// fifth session reclaims the least-recently-used entry through the hook.
	s, err := tb.Acquire("s4", 20*second, func(s *Session) error { s.Handle = 99; return nil })
	if err != nil {
		t.Fatal(err)
	}
	tb.Release(s, 20*second)
	if len(freed) != 1 || freed[0] != 1 {
		t.Fatalf("capacity reclaim freed handles %v, want [1]", freed)
	}
	// The idle sweep drops s1..s3 (s4 is fresh) and reports each to the hook.
	if n := tb.Sweep(20 * second); n != 3 {
		t.Fatalf("sweep evicted %d, want 3", n)
	}
	if len(freed) != 4 {
		t.Fatalf("hook saw %d evictions, want 4: %v", len(freed), freed)
	}
	seen := map[uint64]bool{}
	for _, h := range freed {
		seen[h] = true
	}
	for _, want := range []uint64{1, 2, 3, 4} {
		if !seen[want] {
			t.Fatalf("handle %d never reached the hook: %v", want, freed)
		}
	}
}

// TestAcquireCreateError pins the aborted-admission path: a failing create
// callback (the arena out of slots) inserts nothing, counts as a capacity
// rejection, surfaces its own error, and leaves the key admissible.
func TestAcquireCreateError(t *testing.T) {
	tb := New(Config{MaxSessions: 4})
	boom := errors.New("no slots")
	if _, err := tb.Acquire("k", 0, func(*Session) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Acquire with failing create = %v, want the create error", err)
	}
	if got := tb.Len(); got != 0 {
		t.Fatalf("failed create left %d live sessions", got)
	}
	if st := tb.Stats(); st.RejectedCapacity != 1 || st.Created != 0 {
		t.Fatalf("stats after failed create = %+v, want 1 capacity rejection, 0 created", st)
	}
	s := mustAcquire(t, tb, "k", 0)
	tb.Release(s, 0)
}

func TestTableDrainStopsAdmission(t *testing.T) {
	tb := New(Config{MaxSessions: 8, TTLNanos: 10 * second})
	s := mustAcquire(t, tb, "a", 0)
	tb.Release(s, 0)
	if tb.Draining() {
		t.Fatal("fresh table reports draining")
	}
	if got := tb.Drain(); got != 1 {
		t.Fatalf("Drain() = %d sessions, want 1", got)
	}
	if !tb.Draining() {
		t.Fatal("table not draining after Drain")
	}
	if _, err := tb.Acquire("a", second, nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("Acquire while draining = %v, want ErrDraining", err)
	}
	if st := tb.Stats(); st.RejectedDraining != 1 {
		t.Fatalf("RejectedDraining = %d, want 1", st.RejectedDraining)
	}
}

// TestDrainWhileDeciding: a drain that begins mid-decision leaves the
// in-flight holder untouched; the semaphore observes the work until the
// holder finishes, then DrainWait returns.
func TestDrainWhileDeciding(t *testing.T) {
	tb := New(Config{MaxSessions: 8, TTLNanos: 10 * second})
	sem := NewSemaphore(2)
	if !sem.TryAcquire() {
		t.Fatal("fresh semaphore rejected")
	}
	s := mustAcquire(t, tb, "busy", 0)

	tb.Drain()
	if sem.DrainWait(10 * time.Millisecond) {
		t.Fatal("DrainWait reported drained with a decide in flight")
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// The in-flight decision finishes after drain began.
		tb.Release(s, second)
		sem.Release()
	}()
	if !sem.DrainWait(5 * time.Second) {
		t.Fatal("DrainWait timed out after the decide finished")
	}
	wg.Wait()
	if got := s.refs.Load(); got != 0 {
		t.Fatalf("refs = %d after release, want 0", got)
	}
}

// TestChurnSteadyState is the memory-leak regression test: under continuous
// session churn with periodic sweeps, the live session count stays bounded
// by the capacity and old keys are really gone.
func TestChurnSteadyState(t *testing.T) {
	const capacity = 128
	tb := New(Config{MaxSessions: capacity, TTLNanos: 10 * second})
	now := int64(0)
	for i := 0; i < 10_000; i++ {
		now += second / 10
		s, err := tb.Acquire(fmt.Sprintf("churn-%d", i), now, nil)
		if err != nil {
			t.Fatalf("churn acquire %d: %v", i, err)
		}
		tb.Release(s, now)
		if i%50 == 0 {
			tb.Sweep(now)
		}
	}
	tb.Sweep(now + 11*second)
	if got := tb.Len(); got != 0 {
		t.Fatalf("steady-state Len() = %d after final sweep, want 0", got)
	}
	st := tb.Stats()
	if st.Created != 10_000 {
		t.Fatalf("Created = %d, want 10000", st.Created)
	}
	if st.EvictedIdle+uint64(st.Active) != st.Created {
		t.Fatalf("evicted %d + active %d != created %d", st.EvictedIdle, st.Active, st.Created)
	}
}

func TestTableConcurrentAcquire(t *testing.T) {
	tb := New(Config{MaxSessions: 1 << 12, TTLNanos: int64(time.Minute)})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("s%d", i%100)
				s, err := tb.Acquire(key, int64(i), nil)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				s.Mu.Lock()
				s.Value = g // the per-session lock serialises holders
				s.Mu.Unlock()
				tb.Release(s, int64(i))
			}
		}(g)
	}
	wg.Wait()
	if got := tb.Len(); got != 100 {
		t.Fatalf("Len() = %d, want 100", got)
	}
}

func TestTableValidation(t *testing.T) {
	for _, bad := range []int{0, -1, maxTableSessions + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(MaxSessions=%d) did not panic", bad)
				}
			}()
			New(Config{MaxSessions: bad})
		}()
	}
	// Shard rounding: the per-shard capacity covers the total.
	tb := New(Config{MaxSessions: 100, Shards: 3})
	st := tb.Stats()
	if st.Shards != 4 {
		t.Fatalf("Shards = %d, want rounded to 4", st.Shards)
	}
	if st.PerShardCapacity*st.Shards < 100 {
		t.Fatalf("per-shard %d x %d shards < 100", st.PerShardCapacity, st.Shards)
	}
}

// TestTokenBucketRefill pins the token-bucket arithmetic: burst spending,
// lazy refill at the configured rate, the cap at burst, and the Retry-After
// hint when empty.
func TestTokenBucketRefill(t *testing.T) {
	cases := []struct {
		name  string
		rate  float64
		burst float64
		steps []struct {
			at        int64
			wantOK    bool
			wantRetry int64 // 0 means "don't check"
		}
	}{
		{
			name: "burst-then-starve", rate: 1, burst: 2,
			steps: []struct {
				at        int64
				wantOK    bool
				wantRetry int64
			}{
				{0, true, 0},
				{0, true, 0},
				{0, false, second}, // empty: one full token away at 1/s
				{second / 2, false, second / 2},
				{second, true, 0}, // exactly refilled
				{second, false, second},
			},
		},
		{
			name: "rate-10-refills-fast", rate: 10, burst: 1,
			steps: []struct {
				at        int64
				wantOK    bool
				wantRetry int64
			}{
				{0, true, 0},
				{0, false, second / 10},
				{second / 10, true, 0},
				{second / 5, true, 0},
			},
		},
		{
			name: "burst-caps-accrual", rate: 1000, burst: 3,
			steps: []struct {
				at        int64
				wantOK    bool
				wantRetry int64
			}{
				// A long idle period accrues only burst tokens.
				{3600 * second, true, 0},
				{3600 * second, true, 0},
				{3600 * second, true, 0},
				{3600 * second, false, 0},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := NewLimiter(tc.rate, tc.burst)
			for i, step := range tc.steps {
				ok, retry := l.Allow("client", step.at)
				if ok != step.wantOK {
					t.Fatalf("step %d at t=%d: ok=%v, want %v", i, step.at, ok, step.wantOK)
				}
				if step.wantRetry > 0 {
					// The hint is float math over nanos; allow 1 µs of slack.
					if diff := retry - step.wantRetry; diff < -1000 || diff > 1000 {
						t.Fatalf("step %d: retry = %dns, want ~%dns", i, retry, step.wantRetry)
					}
				}
				if !ok && retry <= 0 {
					t.Fatalf("step %d: rejected with non-positive retry %d", i, retry)
				}
			}
		})
	}
}

func TestLimiterClientsIsolated(t *testing.T) {
	l := NewLimiter(1, 1)
	if ok, _ := l.Allow("a", 0); !ok {
		t.Fatal("client a's first request rejected")
	}
	if ok, _ := l.Allow("b", 0); !ok {
		t.Fatal("client b throttled by client a's spend")
	}
	if ok, _ := l.Allow("a", 0); ok {
		t.Fatal("client a's second burst request admitted")
	}
	if got := l.Clients(); got != 2 {
		t.Fatalf("Clients() = %d, want 2", got)
	}
}

func TestLimiterSweep(t *testing.T) {
	l := NewLimiter(100, 10)
	for i := 0; i < 50; i++ {
		l.Allow(fmt.Sprintf("c%d", i), 0)
	}
	if got := l.Sweep(second, 2*second); got != 0 {
		t.Fatalf("premature sweep dropped %d", got)
	}
	if got := l.Sweep(2*second, 2*second); got != 50 {
		t.Fatalf("sweep dropped %d, want 50", got)
	}
	if got := l.Clients(); got != 0 {
		t.Fatalf("Clients() = %d after sweep, want 0", got)
	}
	// Disabled and nil-safe variants.
	if got := l.Sweep(second, 0); got != 0 {
		t.Fatalf("idle=0 sweep dropped %d", got)
	}
	var nilL *Limiter
	if ok, _ := nilL.Allow("x", 0); !ok {
		t.Fatal("nil limiter rejected")
	}
	if nilL.Sweep(0, second) != 0 || nilL.Clients() != 0 {
		t.Fatal("nil limiter sweep/clients not zero")
	}
}

func TestLimiterValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewLimiter(0, 1) did not panic")
		}
	}()
	NewLimiter(0, 1)
}

func TestSemaphoreBounds(t *testing.T) {
	sem := NewSemaphore(2)
	if sem.Cap() != 2 {
		t.Fatalf("Cap() = %d", sem.Cap())
	}
	if !sem.TryAcquire() || !sem.TryAcquire() {
		t.Fatal("could not fill semaphore")
	}
	if sem.TryAcquire() {
		t.Fatal("over-admitted")
	}
	if got := sem.InFlight(); got != 2 {
		t.Fatalf("InFlight() = %d, want 2", got)
	}
	sem.Release()
	if !sem.TryAcquire() {
		t.Fatal("slot not reusable after release")
	}
	sem.Release()
	sem.Release()
	if !sem.DrainWait(time.Second) {
		t.Fatal("empty semaphore did not drain")
	}

	var nilSem *Semaphore
	if !nilSem.TryAcquire() || nilSem.Cap() != 0 || nilSem.InFlight() != 0 || !nilSem.DrainWait(0) {
		t.Fatal("nil semaphore is not a no-op admit-all")
	}
	nilSem.Release()

	defer func() {
		if recover() == nil {
			t.Error("NewSemaphore(0) did not panic")
		}
	}()
	NewSemaphore(0)
}
