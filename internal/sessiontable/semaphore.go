package sessiontable

import (
	"fmt"
	"time"
)

// Semaphore bounds in-flight decide concurrency: the serving surface
// TryAcquires a slot per request and sheds load (503 + Retry-After) when the
// bound is reached, instead of letting unbounded goroutines queue on the
// session locks. It is a counting semaphore over a buffered channel; the
// channel operations never happen under any table or shard lock (a guardedby
// invariant — holding an annotated lock across channel ops is a finding).
type Semaphore struct {
	slots chan struct{}
}

// NewSemaphore builds a semaphore admitting up to n concurrent holders.
func NewSemaphore(n int) *Semaphore {
	if n <= 0 {
		panic(fmt.Sprintf("sessiontable: non-positive semaphore capacity %d", n))
	}
	return &Semaphore{slots: make(chan struct{}, n)}
}

// TryAcquire claims a slot without blocking; the caller must Release iff it
// returns true. A nil semaphore admits everything.
func (s *Semaphore) TryAcquire() bool {
	if s == nil {
		return true
	}
	select {
	case s.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a slot claimed by TryAcquire. Nil-safe.
func (s *Semaphore) Release() {
	if s == nil {
		return
	}
	<-s.slots
}

// Cap returns the concurrency bound (0 for a nil semaphore).
func (s *Semaphore) Cap() int {
	if s == nil {
		return 0
	}
	return cap(s.slots)
}

// InFlight returns the current holder count (0 for a nil semaphore).
func (s *Semaphore) InFlight() int {
	if s == nil {
		return 0
	}
	return len(s.slots)
}

// DrainWait blocks until every in-flight holder has released, or until the
// timeout elapses, and reports whether the semaphore fully drained. It
// claims every slot and releases them again, so it must only be called once
// admission has stopped (new TryAcquires racing a drain would stall it).
// Nil-safe: a nil semaphore is trivially drained.
func (s *Semaphore) DrainWait(timeout time.Duration) bool {
	if s == nil {
		return true
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	claimed := 0
	for claimed < cap(s.slots) {
		select {
		case s.slots <- struct{}{}:
			claimed++
		case <-deadline.C:
			for ; claimed > 0; claimed-- {
				<-s.slots
			}
			return false
		}
	}
	for ; claimed > 0; claimed-- {
		<-s.slots
	}
	return true
}
