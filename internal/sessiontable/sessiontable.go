// Package sessiontable is the fleet-scale session control plane shared by
// soda-server's /decide surface and the load generator: a sharded session
// table with idle (TTL) eviction, token-bucket per-client admission control,
// and a bounded in-flight semaphore for backpressure.
//
// The package owns session *lifecycle* only — creation, lookup, last-use
// tracking, idle eviction, capacity admission, drain — never the decision
// inputs. A session's value (the controller and its per-session state) is
// opaque to the table, so evicting and recreating a session can change
// nothing about what the solver is asked: that is the SessionTableConformance
// contract pinned in internal/httpseg.
//
// Concurrency layout follows core.SolveCache: a power-of-two shard count
// (GOMAXPROCS-derived by default), one mutex per shard, cache-line padding
// between shards. The steady-state path — Acquire of an existing session,
// then Release — is allocation-free: a map lookup, two atomic updates, no
// channel operations under any lock.
//
// Clocks are injected: every method that needs time takes a caller-supplied
// unix-nanosecond timestamp, so TTL boundary behaviour is testable without
// sleeping and the package itself never reads the wall clock.
package sessiontable

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Acquire failure modes. They are sentinel errors so harnesses can map them
// onto transport responses (503 draining / at capacity) without string
// matching.
var (
	// ErrDraining is returned once Drain has begun: the table stops admitting
	// both new and existing sessions so in-flight work can finish.
	ErrDraining = errors.New("sessiontable: draining")
	// ErrCapacity is returned when creating a session would exceed the
	// configured maximum and no idle entry in the home shard can make room.
	ErrCapacity = errors.New("sessiontable: at capacity")
)

// maxTableSessions bounds the configurable capacity (~200 B of table state
// per session before the harness's own value, so the largest table is a few
// GB — beyond any single-host configuration worth supporting).
const maxTableSessions = 1 << 26

// Session is one tracked session. The table owns the bookkeeping fields;
// Value belongs to the holder between Acquire and Release and is typed `any`
// so the table stays decoupled from the controller packages.
//
// Mu serialises the holder's per-session work (the decide critical section).
// The table itself never takes Mu: refcounting, not locking, is what keeps
// the sweep from evicting a session mid-decision.
type Session struct {
	// Value is the harness's per-session state, set once by the create
	// callback passed to Acquire and never touched by the table again.
	Value any

	// Handle is the harness's arena slot reference (an internal/arena handle
	// in uint64 form; 0 when the harness keeps no arena). Like Value it is
	// set by the create callback and opaque to the table — it exists so the
	// Config.OnEvict hook can release the slot when the table drops the
	// session, without the table depending on the arena package.
	Handle uint64

	// Mu is the holder's per-session critical-section lock.
	Mu sync.Mutex

	key string
	id  int64

	// lastUse is the unix-nano timestamp of the last Release; the TTL sweep
	// reads it without the shard lock, so it is atomic.
	lastUse atomic.Int64
	// refs counts in-flight holders. Incremented under the shard lock in
	// Acquire, decremented lock-free in Release; the sweep only evicts
	// sessions it observes at zero while holding the shard lock, so a
	// session can never disappear from under an active holder.
	refs atomic.Int32
}

// ID returns the session's table-assigned numeric id (stable for the
// session's lifetime; a recreated session gets a fresh id).
func (s *Session) ID() int64 { return s.id }

// Key returns the session key the entry is stored under.
func (s *Session) Key() string { return s.key }

// Config parameterises a Table.
type Config struct {
	// MaxSessions caps the live session count (approximately: the cap is
	// split evenly across shards, so a pathologically skewed key
	// distribution saturates one shard before the global total is reached).
	// Non-positive panics: capacity is a program constant in every harness.
	MaxSessions int
	// TTLNanos is the idle-eviction threshold: a session whose last Release
	// is more than TTLNanos before the sweep's timestamp is evicted.
	// Non-positive disables idle eviction (Sweep becomes a no-op).
	TTLNanos int64
	// Shards overrides the shard count (rounded up to a power of two,
	// capped at 256); non-positive derives it from GOMAXPROCS.
	Shards int
	// OnEvict, when non-nil, runs once for every session the table drops —
	// idle sweep or capacity reclaim — after the entry has left the map. It
	// is the hook an arena-backed harness uses to free the session's slot
	// (Session.Handle). It runs under the home shard's lock, so it must not
	// call back into the table or block.
	OnEvict func(*Session)
}

// tableShard is one independently locked partition of the session table. The
// trailing pad keeps neighbouring shards' mutexes off one cache line.
type tableShard struct {
	mu sync.Mutex
	//soda:guard mu
	entries map[string]*Session
	_       [64]byte
}

// Table is the sharded session table. All methods are safe for concurrent
// use. The table launches no goroutines and reads no clocks; the harness
// drives the sweep.
type Table struct {
	shards   []tableShard
	mask     uint64
	perShard int

	draining atomic.Bool
	nextID   atomic.Int64
	active   atomic.Int64

	// Lifecycle counters, exposed via Stats for the harness's metric gauges.
	created          atomic.Uint64
	evictedIdle      atomic.Uint64
	rejectedCapacity atomic.Uint64
	rejectedDraining atomic.Uint64

	ttl     int64
	onEvict func(*Session)
}

// New builds a session table. It panics on a non-positive or absurd
// capacity, matching core.NewSolveCache's contract.
func New(cfg Config) *Table {
	if cfg.MaxSessions <= 0 {
		panic(fmt.Sprintf("sessiontable: non-positive capacity %d", cfg.MaxSessions))
	}
	if cfg.MaxSessions > maxTableSessions {
		panic(fmt.Sprintf("sessiontable: capacity %d exceeds %d", cfg.MaxSessions, maxTableSessions))
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > 256 {
		shards = 256
	}
	shardCount := 1
	for shardCount < shards {
		shardCount <<= 1
	}
	perShard := (cfg.MaxSessions + shardCount - 1) / shardCount
	t := &Table{
		shards:   make([]tableShard, shardCount),
		mask:     uint64(shardCount - 1),
		perShard: perShard,
		ttl:      cfg.TTLNanos,
		onEvict:  cfg.OnEvict,
	}
	for i := range t.shards {
		t.shards[i].entries = make(map[string]*Session, perShard/4+1)
	}
	return t
}

// shardFor maps a session key onto its home shard (FNV-1a, like the solve
// cache's key hash — cheap and allocation-free).
func (t *Table) shardFor(key string) *tableShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &t.shards[h&t.mask]
}

// Acquire returns the session stored under key, creating it with create when
// absent. The returned session has its refcount raised: the caller must pair
// every successful Acquire with exactly one Release. now is the caller's
// unix-nano timestamp (used as the creation's initial last-use time).
//
// The create callback receives the fresh Session (its ID and Key already
// assigned) and populates Value and/or Handle; it runs under the home
// shard's lock, so it must not call back into the table or block. A non-nil
// error from create aborts the admission: nothing is inserted, the rejection
// is counted against capacity, and the error is returned as-is (an
// arena-backed harness surfaces slot exhaustion this way).
//
// Failure modes: ErrDraining once Drain has begun, ErrCapacity when the home
// shard is full and no idle entry can be reclaimed, plus whatever create
// returns. On the steady-state path (session exists) Acquire performs no
// allocation.
func (t *Table) Acquire(key string, now int64, create func(s *Session) error) (*Session, error) {
	if t.draining.Load() {
		t.rejectedDraining.Add(1)
		return nil, ErrDraining
	}
	sh := t.shardFor(key)
	sh.mu.Lock()
	if s, ok := sh.entries[key]; ok {
		s.refs.Add(1)
		sh.mu.Unlock()
		return s, nil
	}
	if len(sh.entries) >= t.perShard {
		victim := sh.reclaimLocked(t.ttl, now)
		if victim == nil {
			sh.mu.Unlock()
			t.rejectedCapacity.Add(1)
			return nil, ErrCapacity
		}
		if t.onEvict != nil {
			t.onEvict(victim)
		}
		t.active.Add(-1)
		t.evictedIdle.Add(1)
	}
	s := &Session{key: key, id: t.nextID.Add(1) - 1}
	s.lastUse.Store(now)
	s.refs.Store(1)
	if create != nil {
		if err := create(s); err != nil {
			sh.mu.Unlock()
			t.rejectedCapacity.Add(1)
			return nil, err
		}
	}
	sh.entries[key] = s
	sh.mu.Unlock()
	t.active.Add(1)
	t.created.Add(1)
	return s, nil
}

// reclaimLocked tries to make room in a full shard by evicting its
// least-recently-used idle entry whose TTL has expired, returning the victim
// (nil when nothing is reclaimable). Capacity pressure alone never evicts a
// live (non-expired) session — admission control, not LRU churn, is the
// policy at the limit. Callers hold mu, run the OnEvict hook, and account
// the eviction in the table counters on success.
//
//soda:locked mu
func (sh *tableShard) reclaimLocked(ttl, now int64) *Session {
	if ttl <= 0 {
		return nil
	}
	var oldest *Session
	for _, s := range sh.entries {
		if s.refs.Load() != 0 {
			continue
		}
		if now-s.lastUse.Load() < ttl {
			continue
		}
		if oldest == nil || s.lastUse.Load() < oldest.lastUse.Load() {
			oldest = s
		}
	}
	if oldest == nil {
		return nil
	}
	delete(sh.entries, oldest.key)
	return oldest
}

// Release returns a session acquired with Acquire, stamping its last-use
// time. Allocation-free.
func (t *Table) Release(s *Session, now int64) {
	s.lastUse.Store(now)
	s.refs.Add(-1)
}

// Sweep evicts every session idle longer than the TTL as of now and returns
// the eviction count. Sessions with in-flight holders are skipped (their
// last-use stamp is stale while they work). A zero-TTL table never evicts.
func (t *Table) Sweep(now int64) int {
	if t.ttl <= 0 {
		return 0
	}
	evicted := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for key, s := range sh.entries {
			if s.refs.Load() != 0 {
				continue
			}
			if now-s.lastUse.Load() < t.ttl {
				continue
			}
			delete(sh.entries, key)
			if t.onEvict != nil {
				t.onEvict(s)
			}
			evicted++
		}
		sh.mu.Unlock()
	}
	if evicted > 0 {
		t.active.Add(int64(-evicted))
		t.evictedIdle.Add(uint64(evicted))
	}
	return evicted
}

// Drain stops admission: every subsequent Acquire fails with ErrDraining.
// It returns the live session count at the moment admission stopped — the
// "drained session count" the server reports on SIGTERM. In-flight holders
// are unaffected; the harness waits for them via its in-flight semaphore.
func (t *Table) Drain() int {
	t.draining.Store(true)
	return int(t.active.Load())
}

// Draining reports whether Drain has been called.
func (t *Table) Draining() bool { return t.draining.Load() }

// Len returns the live session count.
func (t *Table) Len() int { return int(t.active.Load()) }

// Stats is a point-in-time snapshot of the table's lifecycle counters.
type Stats struct {
	Active           int
	Shards           int
	PerShardCapacity int
	Created          uint64
	EvictedIdle      uint64
	RejectedCapacity uint64
	RejectedDraining uint64
}

// Stats snapshots the lifecycle counters.
func (t *Table) Stats() Stats {
	return Stats{
		Active:           int(t.active.Load()),
		Shards:           len(t.shards),
		PerShardCapacity: t.perShard,
		Created:          t.created.Load(),
		EvictedIdle:      t.evictedIdle.Load(),
		RejectedCapacity: t.rejectedCapacity.Load(),
		RejectedDraining: t.rejectedDraining.Load(),
	}
}
