package abrtest

import (
	"testing"

	"repro/internal/abr"
	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/video"

	_ "repro/internal/baseline"
)

// TestAllRegisteredControllersConform runs the conformance suite over every
// controller in the registry — SODA and all baselines.
func TestAllRegisteredControllersConform(t *testing.T) {
	for _, name := range abr.Names() {
		if name == "test-fake" || name == "test-dup" {
			continue // registrations leaked from other packages' tests
		}
		name := name
		Conformance(t, name, func(ladder video.Ladder) abr.Controller {
			c, err := abr.New(name, ladder)
			if err != nil {
				t.Fatal(err)
			}
			return c
		})
	}
}

// sodaPlain builds the registry-default SODA controller.
func sodaPlain(ladder video.Ladder) abr.Controller {
	c, err := abr.New("soda", ladder)
	if err != nil {
		panic(err)
	}
	return c
}

// sodaShared builds the same controller attached to the given fleet cache.
func sodaShared(cache *core.SolveCache) Factory {
	return func(ladder video.Ladder) abr.Controller {
		cfg := core.DefaultConfig()
		cfg.SharedCache = cache
		return core.New(cfg, ladder)
	}
}

// TestSodaSharedCacheBitIdentical is the shared-cache conformance contract:
// SODA with a fleet-wide solve cache must reproduce the cache-free decision
// sequences bit-for-bit on every registered ladder, concurrently and
// serially. One cache instance is shared across all ladders on purpose — the
// model fingerprint must keep their entries apart.
func TestSodaSharedCacheBitIdentical(t *testing.T) {
	cache := core.NewSolveCache(1 << 14)
	SharedStateConformance(t, "soda", sodaPlain, sodaShared(cache))
	if st := cache.Stats(); st.Lookups == 0 || st.Hits == 0 {
		t.Fatalf("contract exercised no cache traffic: %s", st.String())
	}
}

// TestSodaSharedCacheBitIdenticalUnderPressure repeats the contract with a
// deliberately undersized single-shard cache, so evictions and probe-window
// collisions happen constantly; decisions must be unaffected.
func TestSodaSharedCacheBitIdenticalUnderPressure(t *testing.T) {
	cache := core.NewSolveCacheSharded(32, 1)
	SharedStateConformance(t, "soda-tiny-cache", sodaPlain, sodaShared(cache))
	if st := cache.Stats(); st.Evictions == 0 {
		t.Fatalf("undersized cache saw no evictions: %s", st.String())
	}
}

// TestSodaSharedCacheFullSuite runs the whole conformance suite on a
// shared-cache SODA: the cross-session cache must not break Reset semantics,
// determinism, or instance independence.
func TestSodaSharedCacheFullSuite(t *testing.T) {
	cache := core.NewSolveCache(1 << 14)
	Conformance(t, "soda-shared-cache", sodaShared(cache))
}

// sodaArena builds registry-default-configured SODA controllers in slots of
// the given arena, each released back to the free list after its replay.
func sodaArena(a *arena.Arena) ArenaFactory {
	return func(ladder video.Ladder) (abr.Controller, func()) {
		h, ok := a.AllocAny()
		if !ok {
			panic("arena exhausted mid-conformance")
		}
		ctrl, _, _ := a.Session(h)
		ctrl.Init(core.DefaultConfig(), ladder)
		return ctrl, func() { a.Free(h) }
	}
}

// TestSodaArenaConformance is the arena conformance contract: SODA
// controllers living in struct-of-arrays slots — including recycled ones —
// must decide bit-identically to heap-backed controllers. The arena is
// deliberately tiny (two shards, eight slots each) so the contract's churn
// runs overwhelmingly on recycled slots, and it is shared across all ladders
// on purpose: Init on a recycled slot must fully rebind the controller.
func TestSodaArenaConformance(t *testing.T) {
	a := arena.New(2, 8)
	ArenaConformance(t, "soda", sodaPlain, sodaArena(a))
	st := a.Stats()
	if st.Frees == 0 {
		t.Fatalf("contract exercised no slot recycling: %s", st)
	}
	if st.Live != 0 {
		t.Fatalf("slots leaked: %s", st)
	}
}

// tableQuantum is the quantization step the table conformance contracts run
// at — the fleet quantum of the dataset benchmarks. Coarser than the default
// MemoQuantum on purpose: the contract is bit-identity at the table's
// quantum, so both factories must solve at the same step.
const tableQuantum = 0.5

// sodaAtQuantum builds a table-free SODA solving at the given memo quantum.
func sodaAtQuantum(quantum float64) Factory {
	return func(ladder video.Ladder) abr.Controller {
		cfg := core.DefaultConfig()
		cfg.MemoQuantum = quantum
		return core.New(cfg, ladder)
	}
}

// sodaTabled builds the same controller attached to the given compiled-table
// set at the same quantum.
func sodaTabled(tables *core.DecisionTables, quantum float64) Factory {
	return func(ladder video.Ladder) abr.Controller {
		cfg := core.DefaultConfig()
		cfg.DecisionTable = tables
		cfg.TableQuantum = quantum
		return core.New(cfg, ladder)
	}
}

// TestSodaDecisionTableBitIdentical is the decision-table conformance
// contract: SODA reading compiled decision tables must reproduce the
// table-free decision sequences bit-for-bit on every registered ladder,
// while the tables are cold (compiling under concurrent sessions) and warm,
// concurrently and serially. One table set is shared across all ladders on
// purpose — the table identity must keep them apart.
func TestSodaDecisionTableBitIdentical(t *testing.T) {
	tables := core.NewDecisionTables()
	TableConformance(t, "soda", sodaAtQuantum(tableQuantum), sodaTabled(tables, tableQuantum))
	st := tables.Stats()
	if want := len(video.NamedLadders()); st.Tables != want {
		t.Fatalf("table set compiled %d tables, want one per registered ladder (%d): %s", st.Tables, want, st)
	}
	if st.Stubs != 0 {
		t.Fatalf("registered-ladder tables must all be compilable, got stubs: %s", st)
	}
}

// TestSodaDecisionTableWithSharedCacheBitIdentical layers the fleet solve
// cache under the tables, so table fallbacks flow through the shared-cache
// path; the combination must still be bit-identical to the plain controller
// at the same quantum.
func TestSodaDecisionTableWithSharedCacheBitIdentical(t *testing.T) {
	tables := core.NewDecisionTables()
	cache := core.NewSolveCache(1 << 14)
	combined := func(ladder video.Ladder) abr.Controller {
		cfg := core.DefaultConfig()
		cfg.DecisionTable = tables
		cfg.TableQuantum = tableQuantum
		cfg.SharedCache = cache
		return core.New(cfg, ladder)
	}
	TableConformance(t, "soda-table-cache", sodaAtQuantum(tableQuantum), combined)
	if st := cache.Stats(); st.Lookups == 0 {
		t.Fatalf("fallbacks never consulted the shared cache: %s", st.String())
	}
}

// TestSodaDecisionTableFullSuite runs the whole conformance suite on a
// table-backed SODA: the cross-session compiled state must not break Reset
// semantics, determinism, instance independence, or hostile-trace survival.
func TestSodaDecisionTableFullSuite(t *testing.T) {
	tables := core.NewDecisionTables()
	Conformance(t, "soda-table", sodaTabled(tables, tableQuantum))
}

// TestSodaTelemetryBitIdentical is the telemetry purity contract for the
// registry-default SODA: a session with a live collector attached must be
// bit-identical to a bare one (telemetry is pull-based and outside the
// decision path), with the collector's totals matching the session result.
func TestSodaTelemetryBitIdentical(t *testing.T) {
	TelemetryConformance(t, "soda", sodaPlain)
}

// TestSodaTelemetryBitIdenticalWithSharedCache repeats the telemetry purity
// contract with the fleet cache attached, so the solver-stats snapshotting
// covers the shared-lookup counters too.
func TestSodaTelemetryBitIdenticalWithSharedCache(t *testing.T) {
	cache := core.NewSolveCache(1 << 14)
	TelemetryConformance(t, "soda-shared-cache", sodaShared(cache))
}

// TestSodaFlightRecBitIdentical is the flight-recorder purity contract for
// the registry-default SODA: a session observed by the QoE-consistency
// watchdog must be bit-identical to a bare one — the watchdog reads the
// decision stream and never feeds back — including when every registered
// ladder replays concurrently against one shared watchdog (run with -race).
func TestSodaFlightRecBitIdentical(t *testing.T) {
	FlightRecConformance(t, "soda", sodaPlain)
}

// TestSodaFlightRecBitIdenticalWithTables repeats the flight-recorder purity
// contract with compiled decision tables attached, so watchdog observation
// composes with the table fast path without perturbing it.
func TestSodaFlightRecBitIdenticalWithTables(t *testing.T) {
	tables := core.NewDecisionTables()
	FlightRecConformance(t, "soda-table", sodaTabled(tables, tableQuantum))
}
