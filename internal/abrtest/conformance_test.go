package abrtest

import (
	"testing"

	"repro/internal/abr"
	"repro/internal/core"
	"repro/internal/video"

	_ "repro/internal/baseline"
)

// TestAllRegisteredControllersConform runs the conformance suite over every
// controller in the registry — SODA and all baselines.
func TestAllRegisteredControllersConform(t *testing.T) {
	for _, name := range abr.Names() {
		if name == "test-fake" || name == "test-dup" {
			continue // registrations leaked from other packages' tests
		}
		name := name
		Conformance(t, name, func(ladder video.Ladder) abr.Controller {
			c, err := abr.New(name, ladder)
			if err != nil {
				t.Fatal(err)
			}
			return c
		})
	}
}

// sodaPlain builds the registry-default SODA controller.
func sodaPlain(ladder video.Ladder) abr.Controller {
	c, err := abr.New("soda", ladder)
	if err != nil {
		panic(err)
	}
	return c
}

// sodaShared builds the same controller attached to the given fleet cache.
func sodaShared(cache *core.SolveCache) Factory {
	return func(ladder video.Ladder) abr.Controller {
		cfg := core.DefaultConfig()
		cfg.SharedCache = cache
		return core.New(cfg, ladder)
	}
}

// TestSodaSharedCacheBitIdentical is the shared-cache conformance contract:
// SODA with a fleet-wide solve cache must reproduce the cache-free decision
// sequences bit-for-bit on every registered ladder, concurrently and
// serially. One cache instance is shared across all ladders on purpose — the
// model fingerprint must keep their entries apart.
func TestSodaSharedCacheBitIdentical(t *testing.T) {
	cache := core.NewSolveCache(1 << 14)
	SharedStateConformance(t, "soda", sodaPlain, sodaShared(cache))
	if st := cache.Stats(); st.Lookups == 0 || st.Hits == 0 {
		t.Fatalf("contract exercised no cache traffic: %s", st.String())
	}
}

// TestSodaSharedCacheBitIdenticalUnderPressure repeats the contract with a
// deliberately undersized single-shard cache, so evictions and probe-window
// collisions happen constantly; decisions must be unaffected.
func TestSodaSharedCacheBitIdenticalUnderPressure(t *testing.T) {
	cache := core.NewSolveCacheSharded(32, 1)
	SharedStateConformance(t, "soda-tiny-cache", sodaPlain, sodaShared(cache))
	if st := cache.Stats(); st.Evictions == 0 {
		t.Fatalf("undersized cache saw no evictions: %s", st.String())
	}
}

// TestSodaSharedCacheFullSuite runs the whole conformance suite on a
// shared-cache SODA: the cross-session cache must not break Reset semantics,
// determinism, or instance independence.
func TestSodaSharedCacheFullSuite(t *testing.T) {
	cache := core.NewSolveCache(1 << 14)
	Conformance(t, "soda-shared-cache", sodaShared(cache))
}

// TestSodaTelemetryBitIdentical is the telemetry purity contract for the
// registry-default SODA: a session with a live collector attached must be
// bit-identical to a bare one (telemetry is pull-based and outside the
// decision path), with the collector's totals matching the session result.
func TestSodaTelemetryBitIdentical(t *testing.T) {
	TelemetryConformance(t, "soda", sodaPlain)
}

// TestSodaTelemetryBitIdenticalWithSharedCache repeats the telemetry purity
// contract with the fleet cache attached, so the solver-stats snapshotting
// covers the shared-lookup counters too.
func TestSodaTelemetryBitIdenticalWithSharedCache(t *testing.T) {
	cache := core.NewSolveCache(1 << 14)
	TelemetryConformance(t, "soda-shared-cache", sodaShared(cache))
}
