package abrtest

import (
	"testing"

	"repro/internal/abr"
	"repro/internal/video"

	_ "repro/internal/baseline"
	_ "repro/internal/core"
)

// TestAllRegisteredControllersConform runs the conformance suite over every
// controller in the registry — SODA and all baselines.
func TestAllRegisteredControllersConform(t *testing.T) {
	for _, name := range abr.Names() {
		if name == "test-fake" || name == "test-dup" {
			continue // registrations leaked from other packages' tests
		}
		name := name
		Conformance(t, name, func(ladder video.Ladder) abr.Controller {
			c, err := abr.New(name, ladder)
			if err != nil {
				t.Fatal(err)
			}
			return c
		})
	}
}
