// Package abrtest provides a reusable conformance suite for abr.Controller
// implementations: any controller registered in this repository (and any a
// downstream user writes) can be validated against the harness contracts —
// total decisions over the legal state space, clean Reset semantics,
// determinism of fresh instances, independence of concurrent instances
// (meaningful under -race), and survival of a full simulated session on
// hostile traces.
package abrtest

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"testing"

	"repro/internal/abr"
	"repro/internal/core"
	"repro/internal/flightrec"
	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/video"
)

// Factory builds a fresh controller bound to the given ladder.
type Factory func(ladder video.Ladder) abr.Controller

// Conformance runs the full contract suite against fresh controllers from
// the factory.
func Conformance(t *testing.T, name string, factory Factory) {
	t.Helper()
	t.Run(name+"/decisions-total", func(t *testing.T) { decisionsTotal(t, factory(video.YouTube4K())) })
	t.Run(name+"/reset-restores", func(t *testing.T) { resetRestores(t, factory) })
	t.Run(name+"/decide-deterministic", func(t *testing.T) { decideDeterministic(t, factory) })
	t.Run(name+"/concurrent-instances", func(t *testing.T) { concurrentInstances(t, factory) })
	t.Run(name+"/survives-hostile-traces", func(t *testing.T) { survivesHostile(t, factory) })
}

// SharedStateConformance checks a controller wired to cross-session shared
// state (e.g. a fleet-wide solve cache) against the bit-identity contract:
// for every registered ladder, instances built by `shared` must reproduce the
// decision sequences of instances built by `plain` exactly — while the shared
// state is cold and being filled by concurrent racing instances, again once
// it is warm, and serially. The concurrent passes repeat under several
// GOMAXPROCS settings; run the contract with -race to also prove the shared
// state is correctly synchronised.
func SharedStateConformance(t *testing.T, name string, plain, shared Factory) {
	t.Helper()
	for _, nl := range video.NamedLadders() {
		nl := nl
		t.Run(name+"/shared-bit-identical/"+nl.Name, func(t *testing.T) {
			const sessions, steps = 6, 80
			streams := make([][]*abr.Context, sessions)
			want := make([][]int, sessions)
			for i := range streams {
				streams[i] = contextStream(nl.Ladder, 1000+uint64(i)*13, steps)
				want[i] = replay(plain(nl.Ladder), streams[i])
			}
			check := func(pass string, got [][]int) {
				t.Helper()
				for i := range want {
					for j := range want[i] {
						if got[i][j] != want[i][j] {
							t.Fatalf("%s: stream %d decision %d: shared %d != plain %d",
								pass, i, j, got[i][j], want[i][j])
						}
					}
				}
			}
			concurrent := func() [][]int {
				got := make([][]int, sessions)
				var wg sync.WaitGroup
				for i := range streams {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						got[i] = replay(shared(nl.Ladder), streams[i])
					}(i)
				}
				wg.Wait()
				return got
			}
			prev := runtime.GOMAXPROCS(0)
			defer runtime.GOMAXPROCS(prev)
			for _, procs := range []int{1, 2, 4} {
				runtime.GOMAXPROCS(procs)
				check("cold/warm concurrent", concurrent())
				check("warm concurrent", concurrent())
			}
			runtime.GOMAXPROCS(prev)
			serial := make([][]int, sessions)
			for i := range streams {
				serial[i] = replay(shared(nl.Ladder), streams[i])
			}
			check("warm serial", serial)
		})
	}
}

// TableConformance checks a controller wired to fleet-wide compiled decision
// tables (core.DecisionTables) against the bit-identity contract: for every
// registered ladder, instances built by `tabled` must reproduce the decision
// sequences of instances built by `plain` exactly — while the table is cold
// and compiled under concurrent racing instances, again once it is warm, and
// serially. The factories must solve at the same quantum (the table's
// TableQuantum equal to the plain controller's MemoQuantum), because the
// contract is bit-identity at the table's quantum, not across quanta. The
// concurrent passes repeat under several GOMAXPROCS settings; run with -race
// to also prove table compilation and binding are correctly synchronised.
//
// The serial pass additionally audits the table traffic through SolveStats:
// lookups must equal hits plus fallbacks, and both hits and fallbacks must
// occur — the context streams cover in-domain states and (via throughputs
// beyond 2x the smaller ladders' top rung and session-tail horizons)
// out-of-domain states, so a table that never hits or a domain check that
// clamps instead of falling back both fail loudly.
func TableConformance(t *testing.T, name string, plain, tabled Factory) {
	t.Helper()
	for _, nl := range video.NamedLadders() {
		nl := nl
		t.Run(name+"/table-bit-identical/"+nl.Name, func(t *testing.T) {
			const sessions, steps = 6, 80
			streams := make([][]*abr.Context, sessions)
			want := make([][]int, sessions)
			for i := range streams {
				streams[i] = contextStream(nl.Ladder, 5000+uint64(i)*19, steps)
				want[i] = replay(plain(nl.Ladder), streams[i])
			}
			check := func(pass string, got [][]int) {
				t.Helper()
				for i := range want {
					for j := range want[i] {
						if got[i][j] != want[i][j] {
							t.Fatalf("%s: stream %d decision %d: tabled %d != plain %d",
								pass, i, j, got[i][j], want[i][j])
						}
					}
				}
			}
			concurrent := func() [][]int {
				got := make([][]int, sessions)
				var wg sync.WaitGroup
				for i := range streams {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						got[i] = replay(tabled(nl.Ladder), streams[i])
					}(i)
				}
				wg.Wait()
				return got
			}
			prev := runtime.GOMAXPROCS(0)
			defer runtime.GOMAXPROCS(prev)
			for _, procs := range []int{1, 2, 4} {
				runtime.GOMAXPROCS(procs)
				check("cold/warm concurrent", concurrent())
				check("warm concurrent", concurrent())
			}
			runtime.GOMAXPROCS(prev)
			serial := make([][]int, sessions)
			var traffic core.SolveStats
			for i := range streams {
				c := tabled(nl.Ladder)
				serial[i] = replay(c, streams[i])
				if sc, ok := c.(interface{ SolveStats() core.SolveStats }); ok {
					traffic.Add(sc.SolveStats())
				}
			}
			check("warm serial", serial)
			if traffic.TableLookups == 0 {
				t.Fatal("tabled controllers performed no table lookups; factory is not table-backed")
			}
			if traffic.TableLookups != traffic.TableHits+traffic.TableFallbacks {
				t.Fatalf("table traffic books broken: %d lookups != %d hits + %d fallbacks",
					traffic.TableLookups, traffic.TableHits, traffic.TableFallbacks)
			}
			if traffic.TableHits == 0 {
				t.Fatal("no table hits: the in-domain states never reached the table")
			}
			if traffic.TableFallbacks == 0 {
				t.Fatal("no table fallbacks: the stream never left the domain, so the fallback path went unchecked")
			}
		})
	}
}

// ArenaFactory builds a controller whose state lives in an externally owned
// arena slot. release returns the slot to the arena's free list; the
// controller must not be used after release.
type ArenaFactory func(ladder video.Ladder) (ctrl abr.Controller, release func())

// ArenaConformance is the struct-of-arrays purity contract: controllers
// placed in arena slots must reproduce heap-backed decision sequences
// bit-for-bit on every registered ladder. The concurrent passes churn slots
// between racing goroutines under several GOMAXPROCS settings (run with
// -race to also prove the arena's slot recycling is correctly
// synchronised); the serial pass frees and reallocates between streams, so
// every replay after the first runs on a recycled slot and any state the
// previous tenant left behind shows up as a divergence.
func ArenaConformance(t *testing.T, name string, plain Factory, arenaBacked ArenaFactory) {
	t.Helper()
	for _, nl := range video.NamedLadders() {
		nl := nl
		t.Run(name+"/arena-bit-identical/"+nl.Name, func(t *testing.T) {
			const sessions, steps = 6, 80
			streams := make([][]*abr.Context, sessions)
			want := make([][]int, sessions)
			for i := range streams {
				streams[i] = contextStream(nl.Ladder, 9000+uint64(i)*23, steps)
				want[i] = replay(plain(nl.Ladder), streams[i])
			}
			check := func(pass string, got [][]int) {
				t.Helper()
				for i := range want {
					for j := range want[i] {
						if got[i][j] != want[i][j] {
							t.Fatalf("%s: stream %d decision %d: arena %d != heap %d",
								pass, i, j, got[i][j], want[i][j])
						}
					}
				}
			}
			concurrent := func() [][]int {
				got := make([][]int, sessions)
				var wg sync.WaitGroup
				for i := range streams {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						c, release := arenaBacked(nl.Ladder)
						got[i] = replay(c, streams[i])
						release()
					}(i)
				}
				wg.Wait()
				return got
			}
			prev := runtime.GOMAXPROCS(0)
			defer runtime.GOMAXPROCS(prev)
			for _, procs := range []int{1, 2, 4} {
				runtime.GOMAXPROCS(procs)
				check("churning concurrent", concurrent())
				check("churning concurrent again", concurrent())
			}
			runtime.GOMAXPROCS(prev)
			serial := make([][]int, sessions)
			for i := range streams {
				c, release := arenaBacked(nl.Ladder)
				serial[i] = replay(c, streams[i])
				release()
			}
			check("recycled serial", serial)
		})
	}
}

// decisionsTotal checks the controller returns an in-range rung or a
// positive wait for every legal context.
func decisionsTotal(t *testing.T, c abr.Controller) {
	t.Helper()
	ladder := video.YouTube4K()
	rng := rand.New(rand.NewPCG(11, 13))
	for i := 0; i < 500; i++ {
		omega := units.Mbps(0.2 + rng.Float64()*120)
		ctx := &abr.Context{
			Now:            units.Seconds(rng.Float64() * 600),
			Buffer:         units.Seconds(rng.Float64() * 20),
			BufferCap:      units.Seconds(20),
			PrevRung:       rng.IntN(ladder.Len()+1) - 1,
			Ladder:         ladder,
			SegmentIndex:   i,
			TotalSegments:  600,
			LastThroughput: omega.Scale(0.5 + rng.Float64()),
			Predict:        func(units.Seconds) units.Mbps { return omega },
		}
		d := c.Decide(ctx)
		if d.Rung == abr.NoRung {
			if d.WaitSeconds <= 0 {
				t.Fatalf("case %d: wait with non-positive duration %v", i, d.WaitSeconds)
			}
			continue
		}
		if d.Rung < 0 || d.Rung >= ladder.Len() {
			t.Fatalf("case %d: rung %d out of range", i, d.Rung)
		}
	}
}

// resetRestores checks that Reset returns the controller to its initial
// behaviour: the decision sequence over a fixed context stream matches a
// fresh instance's.
func resetRestores(t *testing.T, factory Factory) {
	t.Helper()
	ladder := video.Mobile()
	stream := func() []*abr.Context {
		rng := rand.New(rand.NewPCG(3, 9))
		out := make([]*abr.Context, 40)
		prev := abr.NoRung
		for i := range out {
			omega := units.Mbps(1 + rng.Float64()*14)
			out[i] = &abr.Context{
				Buffer:        units.Seconds(rng.Float64() * 20),
				BufferCap:     units.Seconds(20),
				PrevRung:      prev,
				Ladder:        ladder,
				SegmentIndex:  i,
				TotalSegments: 40,
				Predict:       func(units.Seconds) units.Mbps { return omega },
			}
			prev = rng.IntN(ladder.Len())
		}
		return out
	}
	run := func(c abr.Controller) []int {
		out := make([]int, 0, 40)
		for _, ctx := range stream() {
			out = append(out, c.Decide(ctx).Rung)
		}
		return out
	}

	fresh := factory(ladder)
	want := run(fresh)

	dirty := factory(ladder)
	run(dirty) // accumulate state
	dirty.Reset()
	got := run(dirty)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("decision %d after Reset = %d, fresh = %d", i, got[i], want[i])
		}
	}
}

// contextStream builds a deterministic stream of legal contexts from a seed.
func contextStream(ladder video.Ladder, seed uint64, n int) []*abr.Context {
	rng := rand.New(rand.NewPCG(seed, 17))
	out := make([]*abr.Context, n)
	prev := abr.NoRung
	for i := range out {
		omega := units.Mbps(0.5 + rng.Float64()*40)
		out[i] = &abr.Context{
			Now:            units.Seconds(float64(i) * 4),
			Buffer:         units.Seconds(rng.Float64() * 20),
			BufferCap:      units.Seconds(20),
			PrevRung:       prev,
			Ladder:         ladder,
			SegmentIndex:   i,
			TotalSegments:  n,
			LastThroughput: omega.Scale(0.6 + rng.Float64()*0.8),
			Predict:        func(units.Seconds) units.Mbps { return omega },
		}
		prev = rng.IntN(ladder.Len())
	}
	return out
}

func replay(c abr.Controller, stream []*abr.Context) []int {
	out := make([]int, 0, len(stream))
	for _, ctx := range stream {
		out = append(out, c.Decide(ctx).Rung)
	}
	return out
}

// decideDeterministic checks that decisions are a pure function of the
// controller's observed history: a fresh instance replaying stream S must
// match a second fresh instance that first saw an unrelated warmup stream,
// was Reset, and then replayed S. This catches unseeded randomness and any
// internal cache or memo that leaks state across Reset.
func decideDeterministic(t *testing.T, factory Factory) {
	t.Helper()
	ladder := video.YouTube4K()
	stream := contextStream(ladder, 101, 60)
	warmup := contextStream(ladder, 202, 60)

	want := replay(factory(ladder), stream)

	dirty := factory(ladder)
	replay(dirty, warmup)
	dirty.Reset()
	got := replay(dirty, stream)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("decision %d = %d after warmup+Reset, fresh = %d", i, got[i], want[i])
		}
	}

	// And a plain double-check: two fresh instances agree outright.
	again := replay(factory(ladder), stream)
	for i := range want {
		if again[i] != want[i] {
			t.Fatalf("decision %d differs across fresh instances: %d vs %d", i, again[i], want[i])
		}
	}
}

// concurrentInstances drives two independent instances on separate
// goroutines with distinct context streams and checks each matches its own
// serial replay. Run under -race this proves instances share no mutable
// state (a shared unsynchronised cache or scratch buffer would both race and
// cross-contaminate decisions).
func concurrentInstances(t *testing.T, factory Factory) {
	t.Helper()
	ladder := video.Mobile()
	streams := [][]*abr.Context{
		contextStream(ladder, 31, 80),
		contextStream(ladder, 47, 80),
	}
	want := make([][]int, len(streams))
	for i, s := range streams {
		want[i] = replay(factory(ladder), s)
	}

	got := make([][]int, len(streams))
	var wg sync.WaitGroup
	for i, s := range streams {
		wg.Add(1)
		go func(i int, s []*abr.Context) {
			defer wg.Done()
			got[i] = replay(factory(ladder), s)
		}(i, s)
	}
	wg.Wait()

	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("stream %d decision %d: concurrent %d != serial %d",
					i, j, got[i][j], want[i][j])
			}
		}
	}
}

// hostileTraces are the adversarial sessions the harness contracts replay: a
// collapse to near-zero, a sawtooth, and a spike train.
func hostileTraces() map[string]*trace.Trace {
	return map[string]*trace.Trace{
		"collapse": trace.New([]trace.Sample{{Duration: units.Seconds(30), Mbps: units.Mbps(40)}, {Duration: units.Seconds(90), Mbps: units.Mbps(0.3)}}),
		"sawtooth": trace.New([]trace.Sample{
			{Duration: units.Seconds(10), Mbps: units.Mbps(30)}, {Duration: units.Seconds(10), Mbps: units.Mbps(2)},
			{Duration: units.Seconds(10), Mbps: units.Mbps(30)}, {Duration: units.Seconds(10), Mbps: units.Mbps(2)},
			{Duration: units.Seconds(10), Mbps: units.Mbps(30)}, {Duration: units.Seconds(10), Mbps: units.Mbps(2)},
		}),
		"spikes": trace.New([]trace.Sample{
			{Duration: units.Seconds(25), Mbps: units.Mbps(3)}, {Duration: units.Seconds(2), Mbps: units.Mbps(200)},
			{Duration: units.Seconds(25), Mbps: units.Mbps(3)}, {Duration: units.Seconds(2), Mbps: units.Mbps(200)},
			{Duration: units.Seconds(26), Mbps: units.Mbps(3)},
		}),
	}
}

// survivesHostile runs full sessions over the hostile traces. The session
// must complete without error.
func survivesHostile(t *testing.T, factory Factory) {
	t.Helper()
	for tname, tr := range hostileTraces() {
		res, err := sim.Run(tr, sim.Config{
			Ladder:         video.Mobile(),
			BufferCap:      units.Seconds(20),
			SessionSeconds: tr.Duration(),
			Controller:     factory(video.Mobile()),
			Predictor:      predictor.NewEMA(units.Seconds(4)),
		})
		if err != nil {
			t.Fatalf("%s: %v", tname, err)
		}
		if res.Metrics.Segments == 0 {
			t.Fatalf("%s: no segments played", tname)
		}
	}
}

// TelemetryConformance is the telemetry purity contract: attaching a live
// collector to a simulated session must leave the session bit-identical to
// running bare — same decision sequence, waits, abandons and QoE metrics —
// because recording is pull-based and never feeds back into the controller.
// It also cross-checks the collector's books against the session result
// (one event per Decide, one session, segment and stall totals matching).
func TelemetryConformance(t *testing.T, name string, factory Factory) {
	t.Helper()
	for tname, tr := range hostileTraces() {
		tname, tr := tname, tr
		t.Run(name+"/telemetry-bit-identical/"+tname, func(t *testing.T) {
			cfg := sim.Config{
				Ladder:         video.Mobile(),
				BufferCap:      units.Seconds(20),
				SessionSeconds: tr.Duration(),
				Abandonment:    true,
			}

			bareCfg := cfg
			bareCfg.Controller = factory(video.Mobile())
			bareCfg.Predictor = predictor.NewEMA(units.Seconds(4))
			bare, err := sim.Run(tr, bareCfg)
			if err != nil {
				t.Fatalf("bare run: %v", err)
			}

			col := telemetry.NewCollector(nil, 1<<12)
			telCfg := cfg
			telCfg.Controller = factory(video.Mobile())
			telCfg.Predictor = predictor.NewEMA(units.Seconds(4))
			telCfg.Telemetry = col
			instrumented, err := sim.Run(tr, telCfg)
			if err != nil {
				t.Fatalf("instrumented run: %v", err)
			}

			if len(bare.Rungs) != len(instrumented.Rungs) {
				t.Fatalf("rung counts differ: bare %d, instrumented %d", len(bare.Rungs), len(instrumented.Rungs))
			}
			for i := range bare.Rungs {
				if bare.Rungs[i] != instrumented.Rungs[i] {
					t.Fatalf("decision %d: bare %d, instrumented %d", i, bare.Rungs[i], instrumented.Rungs[i])
				}
			}
			if bare.Waits != instrumented.Waits || bare.Abandons != instrumented.Abandons {
				t.Fatalf("waits/abandons differ: bare %d/%d, instrumented %d/%d",
					bare.Waits, bare.Abandons, instrumented.Waits, instrumented.Abandons)
			}
			if bare.Metrics != instrumented.Metrics {
				t.Fatalf("metrics differ:\nbare:         %+v\ninstrumented: %+v", bare.Metrics, instrumented.Metrics)
			}

			wantDecisions := len(instrumented.Rungs) + instrumented.Waits
			if got := col.Decisions.Value(); got != float64(wantDecisions) {
				t.Errorf("collector decisions = %g, want %d (rungs+waits)", got, wantDecisions)
			}
			if got := col.Waits.Value(); got != float64(instrumented.Waits) {
				t.Errorf("collector waits = %g, want %d", got, instrumented.Waits)
			}
			if got := col.Ring.Total(); got != uint64(wantDecisions) {
				t.Errorf("ring total = %d, want %d", got, wantDecisions)
			}
			if got := col.Sessions.Value(); got != 1 {
				t.Errorf("collector sessions = %g, want 1", got)
			}
			if got := col.Segments.Value(); got != float64(instrumented.Metrics.Segments) {
				t.Errorf("collector segments = %g, want %d", got, instrumented.Metrics.Segments)
			}
			if got := col.RebufferSeconds.Value(); got != float64(instrumented.Metrics.RebufferSec) {
				t.Errorf("collector rebuffer seconds = %g, want %g",
					got, float64(instrumented.Metrics.RebufferSec))
			}
		})
	}
}

// FlightRecConformance is the flight-recorder purity contract: attaching the
// QoE-consistency watchdog (alongside a live collector) to a session must
// leave it bit-identical to running bare — same decision sequence, waits,
// abandons and QoE metrics — because the watchdog observes the decision
// stream from outside the controller and never feeds back into it.
//
// Two passes:
//
//   - Serial, per hostile trace: bare vs watchdog+collector runs compared
//     decision for decision, and the watchdog's books are sanity-checked
//     (incident log total matches the per-kind counters; every logged
//     incident belongs to the session and carries a valid kind).
//   - Concurrent, per registered ladder: every ladder replays the hostile
//     traces simultaneously against ONE shared Watchdog, and each must stay
//     bit-identical to its own serial bare run. Run with -race to also prove
//     the shared incident counters and bounded log are data-race-free.
func FlightRecConformance(t *testing.T, name string, factory Factory) {
	t.Helper()
	// A deliberately twitchy configuration so the hostile traces actually
	// fire every detector: a short window, few switches, a high horizon.
	twitchy := WatchdogTestConfig()

	for tname, tr := range hostileTraces() {
		tname, tr := tname, tr
		t.Run(name+"/flightrec-bit-identical/"+tname, func(t *testing.T) {
			cfg := sim.Config{
				Ladder:         video.Mobile(),
				BufferCap:      units.Seconds(20),
				SessionSeconds: tr.Duration(),
				Abandonment:    true,
			}

			bareCfg := cfg
			bareCfg.Controller = factory(video.Mobile())
			bareCfg.Predictor = predictor.NewEMA(units.Seconds(4))
			bare, err := sim.Run(tr, bareCfg)
			if err != nil {
				t.Fatalf("bare run: %v", err)
			}

			watchdog := flightrec.NewWatchdog(nil, twitchy)
			watchedCfg := cfg
			watchedCfg.Controller = factory(video.Mobile())
			watchedCfg.Predictor = predictor.NewEMA(units.Seconds(4))
			watchedCfg.Telemetry = telemetry.NewCollector(nil, 1<<10)
			watchedCfg.Watchdog = watchdog
			watchedCfg.TelemetrySession = 7
			watched, err := sim.Run(tr, watchedCfg)
			if err != nil {
				t.Fatalf("watched run: %v", err)
			}

			requireIdenticalRuns(t, bare, watched, "watched")

			if total, logged := watchdog.Total(), watchdog.Log().Total(); total != logged {
				t.Errorf("incident counters total %d but log recorded %d", total, logged)
			}
			var perKind uint64
			for k := 0; k < flightrec.NumIncidentKinds; k++ {
				perKind += watchdog.Count(flightrec.IncidentKind(k))
			}
			if perKind != watchdog.Total() {
				t.Errorf("per-kind counts sum to %d, total says %d", perKind, watchdog.Total())
			}
			for _, in := range watchdog.Log().Snapshot() {
				if in.Session != 7 {
					t.Errorf("incident attributed to session %d, want 7", in.Session)
				}
				if int(in.Kind) >= flightrec.NumIncidentKinds || in.KindN == "unknown" {
					t.Errorf("incident has invalid kind %d (%q)", in.Kind, in.KindN)
				}
			}
		})
	}

	t.Run(name+"/flightrec-concurrent-shared-watchdog", func(t *testing.T) {
		shared := flightrec.NewWatchdog(nil, twitchy)
		var wg sync.WaitGroup
		for li, nl := range video.NamedLadders() {
			for tname, tr := range hostileTraces() {
				li, nl, tr := li, nl, tr
				cfg := sim.Config{
					Ladder:         nl.Ladder,
					BufferCap:      units.Seconds(20),
					SessionSeconds: tr.Duration(),
					Abandonment:    true,
				}
				bareCfg := cfg
				bareCfg.Controller = factory(nl.Ladder)
				bareCfg.Predictor = predictor.NewEMA(units.Seconds(4))
				bare, err := sim.Run(tr, bareCfg)
				if err != nil {
					t.Fatalf("%s/%s bare: %v", nl.Name, tname, err)
				}
				wg.Add(1)
				go func(label string) {
					defer wg.Done()
					wCfg := cfg
					wCfg.Controller = factory(nl.Ladder)
					wCfg.Predictor = predictor.NewEMA(units.Seconds(4))
					wCfg.Watchdog = shared
					wCfg.TelemetrySession = li
					watched, err := sim.Run(tr, wCfg)
					if err != nil {
						t.Errorf("%s watched: %v", label, err)
						return
					}
					compareRuns(t, label, bare, watched)
				}(nl.Name + "/" + tname)
			}
		}
		wg.Wait()
		if shared.Total() == 0 {
			t.Error("hostile traces fired no incidents; the contract exercised nothing")
		}
		if total, logged := shared.Total(), shared.Log().Total(); total != logged {
			t.Errorf("shared counters total %d but log recorded %d", total, logged)
		}
	})
}

// WatchdogTestConfig is the deliberately twitchy detector tuning the
// conformance contracts run with, exported so CLI tests can reuse it.
func WatchdogTestConfig() flightrec.WatchdogConfig {
	return flightrec.WatchdogConfig{
		OscillationWindow:   8,
		OscillationSwitches: 2,
		UnderrunHorizon:     units.Seconds(8),
	}
}

// diffRuns describes the first divergence between two session results —
// decision sequence, waits, abandons, QoE metrics — or returns "" when they
// are bit-identical. Factored out of the test helpers so the mismatch
// branches themselves are unit-testable.
func diffRuns(bare, other sim.Result) string {
	if len(bare.Rungs) != len(other.Rungs) {
		return fmt.Sprintf("rung counts differ: bare %d, other %d", len(bare.Rungs), len(other.Rungs))
	}
	for i := range bare.Rungs {
		if bare.Rungs[i] != other.Rungs[i] {
			return fmt.Sprintf("decision %d: bare %d, other %d", i, bare.Rungs[i], other.Rungs[i])
		}
	}
	if bare.Waits != other.Waits || bare.Abandons != other.Abandons {
		return fmt.Sprintf("waits/abandons differ: bare %d/%d, other %d/%d",
			bare.Waits, bare.Abandons, other.Waits, other.Abandons)
	}
	if bare.Metrics != other.Metrics {
		return fmt.Sprintf("metrics differ:\nbare:  %+v\nother: %+v", bare.Metrics, other.Metrics)
	}
	return ""
}

// requireIdenticalRuns fails fatally unless the two session results are
// bit-identical.
func requireIdenticalRuns(t *testing.T, bare, other sim.Result, label string) {
	t.Helper()
	if d := diffRuns(bare, other); d != "" {
		t.Fatalf("%s: %s", label, d)
	}
}

// compareRuns is requireIdenticalRuns for goroutines: Errorf, never Fatalf.
func compareRuns(t *testing.T, label string, bare, other sim.Result) {
	if d := diffRuns(bare, other); d != "" {
		t.Errorf("%s: %s", label, d)
	}
}
