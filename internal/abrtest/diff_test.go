package abrtest

import (
	"strings"
	"testing"

	"repro/internal/qoe"
	"repro/internal/sim"
	"repro/internal/units"
)

// TestDiffRuns pins the divergence detector the bit-identity contracts rely
// on: every field the conformance suites compare must actually be compared,
// and identical results must diff to "".
func TestDiffRuns(t *testing.T) {
	base := sim.Result{
		Rungs:    []int{0, 1, 2, 1},
		Waits:    3,
		Abandons: 1,
		Metrics:  qoe.Metrics{Score: 2.5, Switches: 2, RebufferSec: units.Seconds(0.5)},
	}
	cases := []struct {
		name   string
		mutate func(*sim.Result)
		want   string // substring of the diff, "" for identical
	}{
		{"identical", func(r *sim.Result) {}, ""},
		{"rung-count", func(r *sim.Result) { r.Rungs = r.Rungs[:3] }, "rung counts differ"},
		{"rung-value", func(r *sim.Result) { r.Rungs[2] = 0 }, "decision 2"},
		{"waits", func(r *sim.Result) { r.Waits++ }, "waits/abandons differ"},
		{"abandons", func(r *sim.Result) { r.Abandons++ }, "waits/abandons differ"},
		{"metrics", func(r *sim.Result) { r.Metrics.Score = 0 }, "metrics differ"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			other := base
			other.Rungs = append([]int(nil), base.Rungs...)
			tc.mutate(&other)
			got := diffRuns(base, other)
			if tc.want == "" {
				if got != "" {
					t.Fatalf("identical results diffed: %q", got)
				}
				return
			}
			if !strings.Contains(got, tc.want) {
				t.Fatalf("diff %q does not mention %q", got, tc.want)
			}
		})
	}
}
