// Package arena is the struct-of-arrays session store shared by the fleet
// simulator, the load generator and soda-server's /decide control plane.
//
// A million concurrent sessions held as individual heap structs pay twice at
// decision time: once in allocator/GC pressure for the churn, and once in
// cache misses for the pointer chase from table entry to session to
// controller. The arena flattens that layout into slab-backed parallel
// arrays — controller state, player dynamics and recorder slots each live in
// a contiguous array indexed by slot — so one session's hot state is a
// handful of adjacent cache lines and creating or destroying a session is a
// free-list operation, not an allocation.
//
// Sessions are addressed by Handle, a packed (shard, generation, index)
// triple. The generation counter catches stale handles: freeing a slot bumps
// its generation, so a handle captured before the free can never alias the
// slot's next tenant (the ABA problem) — accessors return ok=false instead.
// Live slots hold odd generations and free slots even ones, so a handle
// (which always carries an odd generation) can never match a free slot.
//
// Concurrency layout: each shard owns its slots. Alloc and Free take the
// shard mutex (they touch the free list and growth bookkeeping); the hot
// accessors take no locks — they perform one atomic slab-pointer load and
// one atomic generation load, so the steady decide path of a worker that
// owns its shard is entirely lock-free. Accessing the *returned* state
// concurrently is the caller's contract, exactly as with heap-allocated
// sessions: the fleet simulator partitions shards across workers, the
// control plane serialises per session under the sessiontable entry lock.
//
// Growth never moves memory: a shard grows by appending fresh slabs to a
// fixed spine of atomic slab pointers, so interior pointers returned by the
// accessors stay valid for the slot's lifetime and concurrent readers never
// observe a resized backing array.
package arena

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/flightrec"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// Handle addresses one session slot: [shard:8][generation:24][index:32].
// The zero Handle is never valid (generation 0 is even, i.e. free).
type Handle uint64

// Handle field layout.
const (
	idxBits   = 32
	genBits   = 24
	genMask   = 1<<genBits - 1
	shardBits = 8
	maxShards = 1 << shardBits
)

// Shard returns the shard the handle addresses.
func (h Handle) Shard() int { return int(h >> (idxBits + genBits)) }

// Index returns the slot index within the shard.
func (h Handle) Index() uint32 { return uint32(h) }

// Generation returns the allocation generation baked into the handle.
func (h Handle) Generation() uint32 { return uint32(h>>idxBits) & genMask }

func makeHandle(shard int, gen, idx uint32) Handle {
	return Handle(uint64(shard)<<(idxBits+genBits) | uint64(gen&genMask)<<idxBits | uint64(idx))
}

// Slab geometry: slots live in fixed-size slabs hung off a per-shard spine.
// 1024 slots per slab keeps a slab's controller array under ~1 MB while
// amortising growth; 4096 spine entries bound a shard at ~4.2M sessions.
const (
	slabBits       = 10
	slabSize       = 1 << slabBits
	slabMask       = slabSize - 1
	maxSlabs       = 1 << 12
	shardCapacity  = maxSlabs * slabSize
	noIndex        = ^uint32(0) // intrusive-list terminator
	maxGenerations = 1 << (genBits - 1)
)

// State is one session's player dynamics — the per-decision mutable block,
// kept to 48 bytes so a decision touches one cache line of dynamics. The
// field meanings are harness conventions, not arena policy: the fleet
// simulator uses all of them, the load generator its buffer/cursor subset,
// and the control plane the rung/segment pair.
type State struct {
	// Buffer and Stall are the simulated playback buffer and the cumulative
	// rebuffer time charged to this session.
	Buffer units.Seconds
	Stall  units.Seconds
	// Deadline is the stream-clock time of the session's next scheduled
	// event (fleet time-wheel).
	Deadline units.Seconds
	// PrevRung and Segment are the controller-visible session history.
	PrevRung int32
	Segment  int32
	// Trace and Cursor locate the session in the shared trace pool.
	Trace  int32
	Cursor int32
	// DueTick and Next are owned by the fleet time-wheel: the absolute due
	// tick of the scheduled event and the intrusive bucket-chain link.
	DueTick uint32
	Next    uint32
}

// slab is one fixed-size block of parallel session arrays. Generations are
// atomic so lock-free accessors can probe slots the owner is recycling; the
// remaining arrays are plain — a slot's data belongs to the handle holder.
type slab struct {
	gen   [slabSize]atomic.Uint32
	ctrl  [slabSize]core.Controller
	state [slabSize]State
	rec   [slabSize]*telemetry.SessionRecorder
	watch [slabSize]flightrec.SessionWatch
}

// shard is one independently owned partition. The spine is fixed-capacity so
// slab publication is a single atomic store and readers never see a resized
// array; mu guards only allocation-path bookkeeping, never the hot accessors.
type shard struct {
	spine [maxSlabs]atomic.Pointer[slab]

	mu sync.Mutex
	//soda:guard mu
	free []uint32
	//soda:guard mu
	next uint32
	//soda:guard mu
	slabs uint32

	cap  uint32
	live atomic.Int64
	_    [64]byte
}

// Arena is a sharded struct-of-arrays session store. All methods are safe
// for concurrent use; see the package comment for the ownership contract on
// returned pointers.
type Arena struct {
	shards []shard
	rr     atomic.Uint32 // AllocAny round-robin cursor

	allocs atomic.Uint64
	frees  atomic.Uint64
	stale  atomic.Uint64
}

// New builds an arena with the given shard count (clamped to [1, 256]).
// perShardCap bounds each shard's slot count; non-positive means the
// geometric maximum (~4.2M slots per shard).
func New(shards, perShardCap int) *Arena {
	if shards < 1 {
		shards = 1
	}
	if shards > maxShards {
		shards = maxShards
	}
	if perShardCap <= 0 || perShardCap > shardCapacity {
		perShardCap = shardCapacity
	}
	a := &Arena{shards: make([]shard, shards)}
	for i := range a.shards {
		a.shards[i].cap = uint32(perShardCap)
	}
	return a
}

// Shards returns the shard count (the valid range for Alloc's shard index).
func (a *Arena) Shards() int { return len(a.shards) }

// Alloc claims a slot in the given shard and returns its handle. It returns
// ok=false when the shard is at capacity. The slot's controller is whatever
// the previous tenant left (or zero) — callers run core.(*Controller).Init
// and reset the State fields they use; the arena deliberately does not
// reach into controller internals.
func (a *Arena) Alloc(shardIdx int) (Handle, bool) {
	if shardIdx < 0 || shardIdx >= len(a.shards) {
		return 0, false
	}
	sh := &a.shards[shardIdx]
	sh.mu.Lock()
	var idx uint32
	if n := len(sh.free); n > 0 {
		idx = sh.free[n-1]
		sh.free = sh.free[:n-1]
	} else {
		if sh.next >= sh.cap {
			sh.mu.Unlock()
			return 0, false
		}
		if sh.next>>slabBits >= sh.slabs {
			sh.spine[sh.slabs].Store(newSlab())
			sh.slabs++
		}
		idx = sh.next
		sh.next++
	}
	sl := sh.spine[idx>>slabBits].Load()
	gen := sl.gen[idx&slabMask].Add(1) // even (free) -> odd (live)
	sh.mu.Unlock()
	sh.live.Add(1)
	a.allocs.Add(1)
	return makeHandle(shardIdx, gen, idx), true
}

// newSlab is out of line so Alloc's steady path (free-list pop) does not
// carry the ~1 MB composite literal in its frame.
func newSlab() *slab { return new(slab) }

// AllocAny claims a slot from any shard, starting at a round-robin cursor so
// unpartitioned callers (the control plane) spread sessions evenly. It fails
// only when every shard is full.
func (a *Arena) AllocAny() (Handle, bool) {
	start := int(a.rr.Add(1)-1) % len(a.shards)
	for i := 0; i < len(a.shards); i++ {
		if h, ok := a.Alloc((start + i) % len(a.shards)); ok {
			return h, ok
		}
	}
	return 0, false
}

// Free releases the slot, bumping its generation so every outstanding handle
// to it goes stale. It returns false (and does nothing) when the handle is
// already stale — a double free is therefore idempotent, not corrupting.
// The slot's recorder reference is dropped so a recycled slot cannot leak
// the previous tenant's recorder.
func (a *Arena) Free(h Handle) bool {
	shardIdx := h.Shard()
	if shardIdx >= len(a.shards) {
		return false
	}
	sh := &a.shards[shardIdx]
	idx := h.Index()
	sh.mu.Lock()
	sl := a.slabFor(sh, idx)
	if sl == nil {
		sh.mu.Unlock()
		return false
	}
	slot := idx & slabMask
	gen := sl.gen[slot].Load()
	if gen != h.Generation() {
		sh.mu.Unlock()
		a.stale.Add(1)
		return false
	}
	sl.rec[slot] = nil
	sl.watch[slot] = flightrec.SessionWatch{}
	sl.gen[slot].Add(1) // odd (live) -> even (free)
	sh.free = append(sh.free, idx)
	sh.mu.Unlock()
	sh.live.Add(-1)
	a.frees.Add(1)
	return true
}

// slabFor resolves the slab holding idx, nil when idx is out of range.
//
//soda:noalloc
func (a *Arena) slabFor(sh *shard, idx uint32) *slab {
	slabIdx := idx >> slabBits
	if slabIdx >= maxSlabs {
		return nil
	}
	return sh.spine[slabIdx].Load()
}

// Session resolves a handle to its controller and state. This is the hot
// accessor on every decide path: one atomic spine load, one atomic
// generation compare, no locks. ok=false means the handle is stale (the
// slot was freed, and possibly recycled, after the handle was made).
//
//soda:noalloc
func (a *Arena) Session(h Handle) (*core.Controller, *State, bool) {
	shardIdx := h.Shard()
	if shardIdx >= len(a.shards) {
		return nil, nil, false
	}
	sh := &a.shards[shardIdx]
	idx := h.Index()
	sl := a.slabFor(sh, idx)
	if sl == nil {
		return nil, nil, false
	}
	slot := idx & slabMask
	if sl.gen[slot].Load() != h.Generation() {
		return nil, nil, false
	}
	return &sl.ctrl[slot], &sl.state[slot], true
}

// State resolves a handle to its player-dynamics block alone (the load
// generator's accessor — it has no controller in the arena to reach).
//
//soda:noalloc
func (a *Arena) State(h Handle) (*State, bool) {
	_, st, ok := a.sessionInlined(h)
	return st, ok
}

// Ctrl resolves a handle to its controller alone.
//
//soda:noalloc
func (a *Arena) Ctrl(h Handle) (*core.Controller, bool) {
	c, _, ok := a.sessionInlined(h)
	return c, ok
}

// sessionInlined duplicates Session under the inlining budget so State and
// Ctrl stay single-call accessors (Session itself is too large to inline
// into them once it has inlined slabFor).
//
//soda:noalloc
func (a *Arena) sessionInlined(h Handle) (*core.Controller, *State, bool) {
	shardIdx := h.Shard()
	if shardIdx >= len(a.shards) {
		return nil, nil, false
	}
	sh := &a.shards[shardIdx]
	idx := h.Index()
	slabIdx := idx >> slabBits
	if slabIdx >= maxSlabs {
		return nil, nil, false
	}
	sl := sh.spine[slabIdx].Load()
	if sl == nil {
		return nil, nil, false
	}
	slot := idx & slabMask
	if sl.gen[slot].Load() != h.Generation() {
		return nil, nil, false
	}
	return &sl.ctrl[slot], &sl.state[slot], true
}

// Watch resolves a handle to the slot's QoE-watchdog state. Like the other
// parallel arrays, the watch belongs to the handle holder; Free zeroes it so
// a recycled slot starts with fresh detector state.
//
//soda:noalloc
func (a *Arena) Watch(h Handle) (*flightrec.SessionWatch, bool) {
	shardIdx := h.Shard()
	if shardIdx >= len(a.shards) {
		return nil, false
	}
	sh := &a.shards[shardIdx]
	idx := h.Index()
	sl := a.slabFor(sh, idx)
	if sl == nil {
		return nil, false
	}
	slot := idx & slabMask
	if sl.gen[slot].Load() != h.Generation() {
		return nil, false
	}
	return &sl.watch[slot], true
}

// Recorder returns the slot's telemetry recorder (nil when none was set).
//
//soda:noalloc
func (a *Arena) Recorder(h Handle) (*telemetry.SessionRecorder, bool) {
	shardIdx := h.Shard()
	if shardIdx >= len(a.shards) {
		return nil, false
	}
	sh := &a.shards[shardIdx]
	idx := h.Index()
	sl := a.slabFor(sh, idx)
	if sl == nil {
		return nil, false
	}
	slot := idx & slabMask
	if sl.gen[slot].Load() != h.Generation() {
		return nil, false
	}
	return sl.rec[slot], true
}

// SetRecorder binds a telemetry recorder to the slot for the handle's
// lifetime; Free drops it. It returns false on a stale handle.
func (a *Arena) SetRecorder(h Handle, rec *telemetry.SessionRecorder) bool {
	shardIdx := h.Shard()
	if shardIdx >= len(a.shards) {
		return false
	}
	sh := &a.shards[shardIdx]
	idx := h.Index()
	sl := a.slabFor(sh, idx)
	if sl == nil {
		return false
	}
	slot := idx & slabMask
	if sl.gen[slot].Load() != h.Generation() {
		return false
	}
	sl.rec[slot] = rec
	return true
}

// Len returns the live slot count across all shards.
func (a *Arena) Len() int {
	var n int64
	for i := range a.shards {
		n += a.shards[i].live.Load()
	}
	return int(n)
}

// Stats is a point-in-time snapshot of the arena's lifecycle counters.
type Stats struct {
	Shards int
	Live   int
	// Slabs is the total slab count across shards (committed memory).
	Slabs int
	// HighWater is the total number of distinct slots ever claimed.
	HighWater int
	Allocs    uint64
	Frees     uint64
	// StaleFrees counts Free calls that observed a stale handle.
	StaleFrees uint64
}

// String renders the snapshot for test failures and debug logs.
func (s Stats) String() string {
	return fmt.Sprintf("arena: shards=%d live=%d slabs=%d highwater=%d allocs=%d frees=%d stale=%d",
		s.Shards, s.Live, s.Slabs, s.HighWater, s.Allocs, s.Frees, s.StaleFrees)
}

// Stats snapshots the lifecycle counters.
func (a *Arena) Stats() Stats {
	st := Stats{
		Shards: len(a.shards),
		Live:   a.Len(),
		Allocs: a.allocs.Load(),
		Frees:  a.frees.Load(),
	}
	st.StaleFrees = a.stale.Load()
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.Lock()
		st.Slabs += int(sh.slabs)
		st.HighWater += int(sh.next)
		sh.mu.Unlock()
	}
	return st
}
