package arena

import (
	"sync"
	"testing"

	"repro/internal/abr"
	"repro/internal/core"
	"repro/internal/flightrec"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/video"
)

// decideOnce drives one fixed decision through a slot's controller, proving
// the slot is usable end to end.
func decideOnce(t *testing.T, c *core.Controller, ladder video.Ladder) int {
	t.Helper()
	omega := units.Mbps(8)
	ctx := &abr.Context{
		Buffer:    units.Seconds(10),
		BufferCap: units.Seconds(20),
		PrevRung:  abr.NoRung,
		Ladder:    ladder,
		Predict:   func(units.Seconds) units.Mbps { return omega },
	}
	return c.Decide(ctx).Rung
}

func TestHandleEncoding(t *testing.T) {
	h := makeHandle(37, 0x00abcdef, 0xdeadbeef)
	if h.Shard() != 37 {
		t.Fatalf("shard = %d, want 37", h.Shard())
	}
	if h.Generation() != 0x00abcdef {
		t.Fatalf("generation = %#x, want 0xabcdef", h.Generation())
	}
	if h.Index() != 0xdeadbeef {
		t.Fatalf("index = %#x, want 0xdeadbeef", h.Index())
	}
	// Generations wrap at 24 bits inside the handle.
	if g := makeHandle(0, 1<<genBits|5, 0).Generation(); g != 5 {
		t.Fatalf("wrapped generation = %d, want 5", g)
	}
}

func TestAllocFreeReuse(t *testing.T) {
	a := New(2, 0)
	h1, ok := a.Alloc(0)
	if !ok {
		t.Fatal("Alloc failed on an empty shard")
	}
	if h1.Generation()%2 != 1 {
		t.Fatalf("live handle has even generation %d", h1.Generation())
	}
	ctrl, st, ok := a.Session(h1)
	if !ok || ctrl == nil || st == nil {
		t.Fatal("Session failed on a live handle")
	}
	st.Buffer = 7
	if !a.Free(h1) {
		t.Fatal("Free rejected a live handle")
	}
	if a.Len() != 0 {
		t.Fatalf("Len = %d after free, want 0", a.Len())
	}

	// The free list hands the same slot back with a bumped generation.
	h2, ok := a.Alloc(0)
	if !ok {
		t.Fatal("Alloc failed after a free")
	}
	if h2.Index() != h1.Index() || h2.Shard() != h1.Shard() {
		t.Fatalf("recycled alloc landed on slot %d/%d, want %d/%d",
			h2.Shard(), h2.Index(), h1.Shard(), h1.Index())
	}
	if h2.Generation() != h1.Generation()+2 {
		t.Fatalf("recycled generation = %d, want %d", h2.Generation(), h1.Generation()+2)
	}
	if st := a.Stats(); st.HighWater != 1 {
		t.Fatalf("high water = %d after recycling one slot, want 1: %s", st.HighWater, st)
	}
}

func TestStaleHandleRejected(t *testing.T) {
	a := New(1, 0)
	h, _ := a.Alloc(0)
	a.Free(h)
	if _, _, ok := a.Session(h); ok {
		t.Fatal("Session honoured a freed handle")
	}
	if _, ok := a.State(h); ok {
		t.Fatal("State honoured a freed handle")
	}
	if _, ok := a.Ctrl(h); ok {
		t.Fatal("Ctrl honoured a freed handle")
	}
	if a.Free(h) {
		t.Fatal("double Free succeeded")
	}
	if st := a.Stats(); st.StaleFrees != 1 {
		t.Fatalf("stale-free count = %d, want 1", st.StaleFrees)
	}

	// ABA: after the slot is recycled, the old handle must still fail even
	// though the slot is live again.
	h2, _ := a.Alloc(0)
	if h2.Index() != h.Index() {
		t.Fatalf("recycle landed on %d, want %d", h2.Index(), h.Index())
	}
	if _, _, ok := a.Session(h); ok {
		t.Fatal("pre-recycle handle aliased the slot's next tenant (ABA)")
	}
	if _, _, ok := a.Session(h2); !ok {
		t.Fatal("fresh handle to the recycled slot failed")
	}
}

func TestMalformedHandles(t *testing.T) {
	a := New(1, 0)
	if _, _, ok := a.Session(makeHandle(3, 1, 0)); ok {
		t.Fatal("Session honoured an out-of-range shard")
	}
	if _, _, ok := a.Session(makeHandle(0, 1, shardCapacity+1)); ok {
		t.Fatal("Session honoured an out-of-range index")
	}
	// An index inside an uncommitted slab resolves to a nil slab pointer.
	if _, _, ok := a.Session(makeHandle(0, 1, slabSize*8)); ok {
		t.Fatal("Session honoured an index in an uncommitted slab")
	}
	if _, ok := a.State(makeHandle(3, 1, 0)); ok {
		t.Fatal("State honoured an out-of-range shard")
	}
	if _, ok := a.Ctrl(makeHandle(0, 1, slabSize*8)); ok {
		t.Fatal("Ctrl honoured an index in an uncommitted slab")
	}
	if a.Free(makeHandle(3, 1, 0)) || a.Free(makeHandle(0, 1, slabSize*8)) {
		t.Fatal("Free honoured a malformed handle")
	}
	if _, ok := a.Alloc(-1); ok {
		t.Fatal("Alloc accepted a negative shard")
	}
	if _, ok := a.Alloc(1); ok {
		t.Fatal("Alloc accepted an out-of-range shard")
	}
	if a.Shards() != 1 {
		t.Fatalf("Shards = %d, want 1", a.Shards())
	}
}

func TestGrowthAcrossSlabs(t *testing.T) {
	a := New(1, 0)
	const n = slabSize + slabSize/2 // force a second slab
	handles := make([]Handle, n)
	for i := range handles {
		h, ok := a.Alloc(0)
		if !ok {
			t.Fatalf("Alloc %d failed", i)
		}
		handles[i] = h
		st, ok := a.State(h)
		if !ok {
			t.Fatalf("State failed for slot %d", i)
		}
		st.Segment = int32(i)
	}
	st := a.Stats()
	if st.Slabs != 2 {
		t.Fatalf("slabs = %d after %d allocs, want 2: %s", st.Slabs, n, st)
	}
	if st.Live != n {
		t.Fatalf("live = %d, want %d: %s", st.Live, n, st)
	}
	// Growth must not have invalidated or moved earlier slots.
	for i, h := range handles {
		s, ok := a.State(h)
		if !ok || s.Segment != int32(i) {
			t.Fatalf("slot %d: ok=%v segment=%d, want %d", i, ok, s.Segment, i)
		}
	}
}

func TestCapacityExhaustion(t *testing.T) {
	a := New(2, 3)
	for i := 0; i < 3; i++ {
		if _, ok := a.Alloc(0); !ok {
			t.Fatalf("Alloc %d failed below the cap", i)
		}
	}
	if _, ok := a.Alloc(0); ok {
		t.Fatal("Alloc succeeded past the per-shard cap")
	}
	// AllocAny falls over to the other shard, then fails once both are full.
	for i := 0; i < 3; i++ {
		if _, ok := a.AllocAny(); !ok {
			t.Fatalf("AllocAny %d failed with shard 1 open", i)
		}
	}
	if _, ok := a.AllocAny(); ok {
		t.Fatal("AllocAny succeeded with every shard full")
	}
	if got := a.Len(); got != 6 {
		t.Fatalf("Len = %d, want 6", got)
	}
}

func TestRecycledSlotDecidesBitIdentically(t *testing.T) {
	ladder := video.Mobile()
	a := New(1, 0)
	h1, _ := a.Alloc(0)
	ctrl, _, _ := a.Session(h1)
	ctrl.Init(core.DefaultConfig(), ladder)
	want := decideOnce(t, ctrl, ladder)

	fresh := core.New(core.DefaultConfig(), ladder)
	if got := decideOnce(t, fresh, ladder); got != want {
		t.Fatalf("arena controller decided %d, heap controller %d", want, got)
	}

	// Dirty the slot, free it, re-claim it, and require the recycled
	// controller to match a fresh heap controller exactly.
	for i := 0; i < 5; i++ {
		decideOnce(t, ctrl, ladder)
	}
	a.Free(h1)
	h2, _ := a.Alloc(0)
	if h2.Index() != h1.Index() {
		t.Fatalf("recycle landed on %d, want %d", h2.Index(), h1.Index())
	}
	ctrl2, _, _ := a.Session(h2)
	ctrl2.Init(core.DefaultConfig(), ladder)
	if got := decideOnce(t, ctrl2, ladder); got != want {
		t.Fatalf("recycled controller decided %d, fresh %d", got, want)
	}
}

func TestRecorderLifecycle(t *testing.T) {
	a := New(1, 0)
	col := telemetry.NewCollector(nil, 16)
	h, _ := a.Alloc(0)
	if rec, ok := a.Recorder(h); !ok || rec != nil {
		t.Fatalf("fresh slot recorder = %v/%v, want nil/true", rec, ok)
	}
	rec := col.StartSession(1)
	if !a.SetRecorder(h, rec) {
		t.Fatal("SetRecorder rejected a live handle")
	}
	if got, ok := a.Recorder(h); !ok || got != rec {
		t.Fatal("Recorder did not return the bound recorder")
	}
	a.Free(h)
	if _, ok := a.Recorder(h); ok {
		t.Fatal("Recorder honoured a freed handle")
	}
	if a.SetRecorder(h, rec) {
		t.Fatal("SetRecorder honoured a freed handle")
	}
	if a.SetRecorder(makeHandle(5, 1, 0), rec) || a.SetRecorder(makeHandle(0, 1, slabSize*9), rec) {
		t.Fatal("SetRecorder honoured a malformed handle")
	}
	if _, ok := a.Recorder(makeHandle(5, 1, 0)); ok {
		t.Fatal("Recorder honoured an out-of-range shard")
	}
	if _, ok := a.Recorder(makeHandle(0, 1, slabSize*9)); ok {
		t.Fatal("Recorder honoured an uncommitted slab")
	}
	// The recycled slot must not inherit the previous tenant's recorder.
	h2, _ := a.Alloc(0)
	if got, ok := a.Recorder(h2); !ok || got != nil {
		t.Fatalf("recycled slot recorder = %v/%v, want nil/true", got, ok)
	}
}

// TestWatchLifecycle covers the per-slot QoE-watchdog state: a live handle
// resolves to usable detector state, a freed or malformed handle does not,
// and a recycled slot starts with ZEROED state — proven behaviourally via
// the watchdog's started-latch (a fresh watch must not flag a stall before
// the buffer has ever been positive).
func TestWatchLifecycle(t *testing.T) {
	a := New(1, 0)
	wd := flightrec.NewWatchdog(nil, flightrec.WatchdogConfig{})
	h, _ := a.Alloc(0)
	watch, ok := a.Watch(h)
	if !ok || watch == nil {
		t.Fatalf("fresh slot watch = %v/%v, want non-nil/true", watch, ok)
	}
	// Latch playback start (buffer > 0), then stall: exactly one incident.
	wd.Observe(watch, 1, units.Seconds(1), units.Seconds(10), 0, 0)
	wd.Observe(watch, 1, units.Seconds(2), units.Seconds(0), 0, 0)
	if got := wd.Count(flightrec.KindStall); got != 1 {
		t.Fatalf("stall incidents after started+empty = %d, want 1", got)
	}
	a.Free(h)
	if _, ok := a.Watch(h); ok {
		t.Fatal("Watch honoured a freed handle")
	}
	if _, ok := a.Watch(makeHandle(5, 1, 0)); ok {
		t.Fatal("Watch honoured an out-of-range shard")
	}
	if _, ok := a.Watch(makeHandle(0, 1, slabSize*9)); ok {
		t.Fatal("Watch honoured an uncommitted slab")
	}
	// The recycled slot must not inherit the previous tenant's detector
	// state: with the started-latch zeroed, an empty buffer on the very
	// first observation is the fill phase, not a stall.
	h2, _ := a.Alloc(0)
	watch2, ok := a.Watch(h2)
	if !ok {
		t.Fatal("Watch rejected the recycled handle")
	}
	wd.Observe(watch2, 2, units.Seconds(1), units.Seconds(0), 0, 0)
	if got := wd.Count(flightrec.KindStall); got != 1 {
		t.Fatalf("recycled slot inherited started-latch: stall incidents = %d, want still 1", got)
	}
}

// TestConcurrentChurn hammers alloc/decide/free from several goroutines on
// distinct shards plus a shared one; run under -race this proves the
// generation counters and free lists are correctly synchronised.
func TestConcurrentChurn(t *testing.T) {
	const workers, rounds = 4, 200
	a := New(workers+1, 0)
	ladder := video.Mobile()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// Own shard: exclusive churn.
				h, ok := a.Alloc(w)
				if !ok {
					t.Errorf("worker %d: Alloc failed", w)
					return
				}
				ctrl, st, ok := a.Session(h)
				if !ok {
					t.Errorf("worker %d: Session failed", w)
					return
				}
				ctrl.Init(core.DefaultConfig(), ladder)
				st.Buffer = units.Seconds(float64(i))
				decideOnce(t, ctrl, ladder)
				a.Free(h)
				// Shared shard: contended alloc/free only.
				if h, ok := a.Alloc(workers); ok {
					a.Free(h)
				}
			}
		}(w)
	}
	wg.Wait()
	if a.Len() != 0 {
		t.Fatalf("Len = %d after balanced churn, want 0: %s", a.Len(), a.Stats())
	}
	st := a.Stats()
	if st.Allocs != st.Frees {
		t.Fatalf("allocs %d != frees %d: %s", st.Allocs, st.Frees, st)
	}
}

func TestStatsString(t *testing.T) {
	a := New(1, 0)
	h, _ := a.Alloc(0)
	if s := a.Stats().String(); s == "" {
		t.Fatal("empty Stats string")
	}
	a.Free(h)
}

func TestNewClampsArguments(t *testing.T) {
	if got := New(0, -5).Shards(); got != 1 {
		t.Fatalf("New(0) shards = %d, want 1", got)
	}
	if got := New(1<<10, 0).Shards(); got != maxShards {
		t.Fatalf("New(1<<10) shards = %d, want %d", got, maxShards)
	}
}
