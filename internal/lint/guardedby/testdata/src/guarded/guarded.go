// Package guarded exercises the guardedby analyzer: true positives carry
// want comments, everything else is the false-positive-avoidance corpus.
package guarded

import (
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Table is shared mutable state with an annotated lock protocol.
type Table struct {
	mu sync.Mutex
	//soda:guard mu
	count int
	//soda:guard mu
	entries []int
	hits    int64 //soda:guard mu
	// plain is deliberately unannotated: lock-free access is fine.
	plain int
}

// Locked accesses under a scoped Lock/Unlock pair are fine.
func (t *Table) Locked() int {
	t.mu.Lock()
	n := t.count
	t.mu.Unlock()
	return n
}

// DeferLocked holds the lock to function exit via defer.
func (t *Table) DeferLocked() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.count++
	t.entries = append(t.entries, t.count)
}

// EarlyReturn unlocks inside a terminating branch; the fall-through path is
// still locked.
func (t *Table) EarlyReturn(stop bool) int {
	t.mu.Lock()
	if stop {
		t.mu.Unlock()
		return 0
	}
	n := t.count // still locked here
	t.mu.Unlock()
	return n
}

// Unlocked reads the guarded field with no lock held.
func (t *Table) Unlocked() int {
	return t.count // want `access to t\.count in \(Table\)\.Unlocked without holding t\.mu`
}

// AfterUnlock touches the field after releasing.
func (t *Table) AfterUnlock() int {
	t.mu.Lock()
	t.mu.Unlock()
	return t.count // want `access to t\.count in \(Table\)\.AfterUnlock without holding t\.mu`
}

// BranchLeak locks in only one branch; the merge drops the lock.
func (t *Table) BranchLeak(cond bool) {
	if cond {
		t.mu.Lock()
	}
	t.count++ // want `access to t\.count in \(Table\)\.BranchLeak without holding t\.mu`
	if cond {
		t.mu.Unlock()
	}
}

// helper is tagged as called-with-lock-held: accesses inside are fine.
//
//soda:locked mu
func (t *Table) helper() int {
	return t.count
}

// badHelper has no tag, so its access is a finding.
func (t *Table) badHelper() int {
	return t.count // want `access to t\.count in \(Table\)\.badHelper without holding t\.mu`
}

// Atomic access to a guarded field is sanctioned without the lock.
func (t *Table) AtomicHit() int64 {
	return atomic.LoadInt64(&t.hits)
}

// PlainField is unannotated: no finding.
func (t *Table) PlainField() int {
	return t.plain
}

// NewTable builds a fresh object; constructor accesses need no lock.
func NewTable(n int) *Table {
	t := &Table{}
	t.count = n
	t.entries = make([]int, 0, n)
	return t
}

// valueFresh covers the value-literal and new(T) freshness shapes.
func valueFresh() int {
	var a = Table{}
	a.count = 1
	b := new(Table)
	b.count = 2
	return a.count + b.count
}

// Sleeping blocks while holding an annotated lock.
func (t *Table) Sleeping() {
	t.mu.Lock()
	defer t.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding t\.mu`
	t.count++
}

// ChannelUnderLock sends on a channel while locked.
func (t *Table) ChannelUnderLock(ch chan int) {
	t.mu.Lock()
	ch <- t.count // want `channel send while holding t\.mu`
	t.mu.Unlock()
}

// ReceiveUnderLock receives while locked.
func (t *Table) ReceiveUnderLock(ch chan int) {
	t.mu.Lock()
	t.count = <-ch // want `channel receive while holding t\.mu`
	t.mu.Unlock()
}

// SelectUnderLock selects while locked.
func (t *Table) SelectUnderLock(ch chan int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	select { // want `select while holding t\.mu`
	case v := <-ch:
		t.count = v
	default:
	}
}

// IOUnderLock calls into a blocking stdlib package while locked.
func (t *Table) IOUnderLock() {
	t.mu.Lock()
	defer t.mu.Unlock()
	os.Getwd() // want `call into package os while holding t\.mu`
	t.count++
}

// HTTPUnderLock calls net/http while locked.
func (t *Table) HTTPUnderLock() {
	t.mu.Lock()
	defer t.mu.Unlock()
	http.Get("http://example.invalid") // want `call into package net/http while holding t\.mu`
}

// BlockingOutsideLock is allowed: nothing held.
func (t *Table) BlockingOutsideLock(ch chan int) {
	time.Sleep(time.Millisecond)
	ch <- 1
	t.mu.Lock()
	t.count++
	t.mu.Unlock()
}

// ClosureUnderLock: the closure body runs later under unknown locks, so its
// unguarded access is a finding, while building it under the lock is not a
// blocking operation.
func (t *Table) ClosureUnderLock() func() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return func() int {
		return t.count // want `access to t\.count in \(Table\)\.ClosureUnderLock without holding t\.mu`
	}
}

// LoopLocked locks and unlocks per iteration — the shard-walk idiom.
type Sharded struct {
	shards []Table
}

func (s *Sharded) Walk() int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		total += sh.count
		sh.mu.Unlock()
	}
	return total
}

// ArenaShard mirrors the session-arena shard shape: allocation bookkeeping
// (free list, bump cursor) guarded by mu, while generation counters are
// atomic wrappers so the lock-free probe path can validate a handle without
// touching guarded state.
type ArenaShard struct {
	mu sync.Mutex
	//soda:guard mu
	free []uint32
	//soda:guard mu
	next uint32
	gen  [4]atomic.Uint32
	data [4]int
}

// AllocSlot pops the free list or bumps the cursor, all under the lock.
func (s *ArenaShard) AllocSlot() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.free); n > 0 {
		idx := s.free[n-1]
		s.free = s.free[:n-1]
		return idx
	}
	idx := s.next
	s.next++
	return idx
}

// FreeSlot bumps the slot generation and pushes it back under the lock.
func (s *ArenaShard) FreeSlot(idx uint32) {
	s.mu.Lock()
	s.gen[idx].Add(1)
	s.free = append(s.free, idx)
	s.mu.Unlock()
}

// Probe is the sanctioned lock-free read path: only the atomic generation
// and the handle-holder-owned slot data, no guarded allocation state.
func (s *ArenaShard) Probe(idx, gen uint32) (int, bool) {
	if s.gen[idx].Load() != gen {
		return 0, false
	}
	v := s.data[idx]
	if s.gen[idx].Load() != gen {
		return 0, false
	}
	return v, true
}

// StaleHandleScan guesses whether a handle is stale by reading the free
// list lock-free — exactly the shortcut the guard annotation exists to
// catch: the scan races with AllocSlot's pop and FreeSlot's append.
func (s *ArenaShard) StaleHandleScan(idx uint32) bool {
	for _, f := range s.free { // want `access to s\.free in \(ArenaShard\)\.StaleHandleScan without holding s\.mu`
		if f == idx {
			return true
		}
	}
	return false
}

// Misguard exercises the malformed-annotation findings.
type Misguard struct {
	lock sync.RWMutex
	//soda:guard missing // want `field a is guarded by "missing", which is not a field of the same struct`
	a int
	//soda:guard b // want `field c is guarded by b, which is not a sync\.Mutex or sync\.RWMutex`
	c int
	b int
	//soda:guard lock
	d int
}

// RWLocked uses RLock/RUnlock on the RWMutex guard.
func (m *Misguard) RWLocked() int {
	m.lock.RLock()
	defer m.lock.RUnlock()
	return m.d
}
