// Package guardedby makes lock discipline a compile-time invariant for the
// repository's shared mutable state.
//
// The fleet-scale structures — the sharded solve cache, the compiled
// decision-table set, the telemetry registry and trace ring, the server's
// session table — are mutated concurrently by design, and today their lock
// protocols live in comments ("Callers hold s.mu") enforced only when a
// `-race` run happens to drive the bad interleaving. ABR controllers fail in
// production through exactly such rare interleavings, so the protocol is
// promoted to an annotation the analyzer checks on every build:
//
//	type shard struct {
//		mu sync.Mutex
//		//soda:guard mu
//		entries []slot
//	}
//
// A field annotated `//soda:guard <mutexField>` (in its doc or line comment)
// may only be read or written while the *same object's* mutex field is held
// on every intra-procedural path, or through a sync/atomic call taking the
// field's address. The mutex must be a sibling field of sync.Mutex or
// sync.RWMutex type. Holding is tracked syntactically per function body:
// `x.mu.Lock()` (or RLock) puts `x.mu` into the held set, `Unlock`/`RUnlock`
// removes it, `defer x.mu.Unlock()` holds it to function exit, and branch
// exits merge by intersection (a branch that returns does not constrain the
// code after it). The object identity is the printed base expression — the
// analyzer does not chase aliases, so code that locks `c.shards[i].mu` must
// access the fields through the same spelling or a single local (`sh :=
// &c.shards[i]; sh.mu.Lock(); sh.hits++`), which is the repository idiom
// anyway.
//
// Two escape hatches keep the annotation honest instead of noisy:
//
//   - `//soda:locked <mutexField>` on a method declares that callers hold the
//     receiver's mutex on entry — the machine-checked form of the "Callers
//     hold s.mu" comment. The method body is then checked with that lock
//     pre-held (and the no-blocking rule below applies to the whole body).
//   - Objects freshly allocated in the current function (`x := &T{...}`,
//     `new(T)`, a value composite literal) are exempt: until the object
//     escapes, no other goroutine can see it, which is what makes
//     constructors lock-free.
//
// While any annotated mutex is held the function must not block: channel
// sends/receives, select, range over a channel, `time.Sleep`, and calls into
// the blocking stdlib surfaces (os, net, net/http, syscall) are findings.
// A lock that serializes a sub-microsecond decision path must never wait on
// the network — that is how tail latency gets into ABR control loops.
//
// Known false negatives (documented, accepted): aliasing through a second
// variable, locks passed across call boundaries without `//soda:locked`,
// method-level blocking (wg.Wait(), rwmu.Lock() on foreign objects), and
// fields reached through pointers stored elsewhere. The analyzer is a
// discipline check, not an escape analysis; `-race` conformance suites
// remain the dynamic backstop.
package guardedby

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Directive is the field annotation prefix; the rest of the line names the
// sibling mutex field.
const Directive = "//soda:guard"

// LockedDirective is the function annotation prefix declaring the receiver's
// named mutex held on entry.
const LockedDirective = "//soda:locked"

// Analyzer is the guardedby analyzer.
var Analyzer = &lint.Analyzer{
	Name: "guardedby",
	Doc: "enforces that //soda:guard-annotated struct fields are only accessed with " +
		"their mutex held (or via sync/atomic), and that no blocking call happens under " +
		"an annotated lock",
	Run: run,
}

// blockingPackages are import paths whose package-level calls may block on
// the outside world; they are forbidden while an annotated lock is held.
var blockingPackages = map[string]bool{
	"os":       true,
	"net":      true,
	"net/http": true,
	"syscall":  true,
}

// guardKey identifies one annotated field: the defining struct type's field
// object.
type guardInfo struct {
	mutex string // sibling mutex field name
}

func run(pass *lint.Pass) error {
	owners := ownerIndex(pass.Pkg)
	guards := collectGuards(pass, owners)
	if len(guards) == 0 {
		return nil
	}
	// trackedMutexes: (struct type, mutex field name) pairs that guard at
	// least one annotated field. Lock-state tracking and the no-blocking rule
	// apply only to these, so unrelated mutexes stay unconstrained.
	tracked := make(map[types.Object]bool)
	for field, g := range guards {
		if mu := siblingField(owners, field, g.mutex); mu != nil {
			tracked[mu] = true
		}
	}

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, guards, tracked)
		}
	}
	return nil
}

// collectGuards finds every //soda:guard annotation in the package's struct
// declarations and resolves it to the field's types.Var. Malformed
// annotations are reported as findings rather than errors, so a typo cannot
// silently drop the protection.
func collectGuards(pass *lint.Pass, owners map[*types.Var]*types.Struct) map[*types.Var]guardInfo {
	guards := make(map[*types.Var]guardInfo)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mutexName, pos, ok := fieldDirective(field)
				if !ok {
					continue
				}
				if mutexName == "" {
					pass.Reportf(pos, "%s needs a mutex field name: //soda:guard <mutexField>", Directive)
					continue
				}
				for _, name := range field.Names {
					obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					mu := siblingField(owners, obj, mutexName)
					switch {
					case mu == nil:
						pass.Reportf(pos, "field %s is guarded by %q, which is not a field of the same struct", name.Name, mutexName)
					case !isMutexType(mu.Type()):
						pass.Reportf(pos, "field %s is guarded by %s, which is not a sync.Mutex or sync.RWMutex", name.Name, mutexName)
					default:
						guards[obj] = guardInfo{mutex: mutexName}
					}
				}
			}
			return true
		})
	}
	return guards
}

// fieldDirective extracts the //soda:guard annotation from a struct field's
// doc or trailing line comment.
func fieldDirective(field *ast.Field) (mutex string, pos token.Pos, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if name, found := directiveArg(c.Text, Directive); found {
				return name, c.Pos(), true
			}
		}
	}
	return "", token.NoPos, false
}

// directiveArg matches a directive comment and returns its first argument
// token; trailing commentary (including fixture want annotations) is ignored.
func directiveArg(text, directive string) (arg string, ok bool) {
	text = strings.TrimSpace(text)
	if text == directive {
		return "", true
	}
	rest, found := strings.CutPrefix(text, directive+" ")
	if !found {
		return "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", true
	}
	return fields[0], true
}

// siblingField resolves name to a field of the struct that declares field.
func siblingField(owners map[*types.Var]*types.Struct, field *types.Var, name string) *types.Var {
	owner := owners[field]
	if owner == nil {
		return nil
	}
	for i := 0; i < owner.NumFields(); i++ {
		if f := owner.Field(i); f.Name() == name {
			return f
		}
	}
	return nil
}

// ownerIndex maps every field object of the package's named struct types
// back to its defining struct. go/types gives no direct edge; unnamed
// structs are out of scope (annotated structs are always named in practice).
func ownerIndex(pkg *types.Package) map[*types.Var]*types.Struct {
	owners := make(map[*types.Var]*types.Struct)
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			owners[st.Field(i)] = st
		}
	}
	return owners
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockState is the set of held annotated mutexes, keyed by the canonical
// printed expression ("sh.mu", "c.shards[i].mu").
type lockState map[string]bool

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// intersect keeps only locks held in both states.
func intersect(a, b lockState) lockState {
	out := make(lockState)
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// checker carries one function's analysis context.
type checker struct {
	pass    *lint.Pass
	guards  map[*types.Var]guardInfo
	tracked map[types.Object]bool
	fresh   map[types.Object]bool // locals holding freshly allocated objects
	fname   string
}

func checkFunc(pass *lint.Pass, fd *ast.FuncDecl, guards map[*types.Var]guardInfo, tracked map[types.Object]bool) {
	c := &checker{
		pass:    pass,
		guards:  guards,
		tracked: tracked,
		fresh:   make(map[types.Object]bool),
		fname:   funcName(fd),
	}
	state := make(lockState)
	if mutexName, pos, ok := lockedDirective(fd); ok {
		recv := receiverName(fd)
		switch {
		case recv == "":
			pass.Reportf(pos, "%s on %s, which has no named receiver", LockedDirective, c.fname)
		case mutexName == "":
			pass.Reportf(pos, "%s needs a mutex field name: //soda:locked <mutexField>", LockedDirective)
		default:
			state[recv+"."+mutexName] = true
		}
	}
	c.scanBlock(state, fd.Body.List)
}

// lockedDirective extracts //soda:locked from a function's doc comment.
func lockedDirective(fd *ast.FuncDecl) (mutex string, pos token.Pos, ok bool) {
	if fd.Doc == nil {
		return "", token.NoPos, false
	}
	for _, cm := range fd.Doc.List {
		if name, found := directiveArg(cm.Text, LockedDirective); found {
			return name, cm.Pos(), true
		}
	}
	return "", token.NoPos, false
}

func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

func funcName(fd *ast.FuncDecl) string {
	if recv := fd.Recv; recv != nil && len(recv.List) > 0 {
		t := recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return "(" + id.Name + ")." + fd.Name.Name
		}
	}
	return fd.Name.Name
}

// scanBlock walks one statement list in source order, threading the lock
// state through. It returns true when the list definitely terminates
// (return, panic) so callers can discard that branch's exit state.
func (c *checker) scanBlock(state lockState, stmts []ast.Stmt) (terminated bool) {
	for _, stmt := range stmts {
		if c.scanStmt(state, stmt) {
			return true
		}
	}
	return false
}

func (c *checker) scanStmt(state lockState, stmt ast.Stmt) (terminated bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if c.lockTransition(state, s.X) {
			return false
		}
		c.scanExpr(state, s.X)
	case *ast.DeferStmt:
		// A deferred Unlock runs at function exit: the lock stays held for
		// the rest of the body, which is exactly what leaving the state
		// untouched models. Other deferred calls are scanned as expressions
		// (their argument evaluation happens now); a deferred closure body
		// runs under an unknown state, so it is scanned fresh.
		if key, unlock := c.mutexCall(s.Call); key != "" && unlock {
			return false
		}
		c.scanExpr(state, s.Call)
	case *ast.AssignStmt:
		for i, rhs := range s.Rhs {
			c.scanExpr(state, rhs)
			if i < len(s.Lhs) {
				c.markFresh(s.Lhs[i], rhs)
			}
		}
		for _, lhs := range s.Lhs {
			c.scanExpr(state, lhs)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, v := range vs.Values {
					c.scanExpr(state, v)
					if i < len(vs.Names) {
						c.markFresh(vs.Names[i], v)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		c.scanExpr(state, s.X)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.scanExpr(state, r)
		}
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			c.scanStmt(state, s.Init)
		}
		c.scanExpr(state, s.Cond)
		thenState := state.clone()
		thenTerm := c.scanBlock(thenState, s.Body.List)
		elseState := state.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = c.scanStmt(elseState, s.Else)
		}
		c.merge(state, thenState, thenTerm, elseState, elseTerm)
		return thenTerm && elseTerm && s.Else != nil
	case *ast.BlockStmt:
		return c.scanBlock(state, s.List)
	case *ast.ForStmt:
		if s.Init != nil {
			c.scanStmt(state, s.Init)
		}
		if s.Cond != nil {
			c.scanExpr(state, s.Cond)
		}
		bodyState := state.clone()
		c.scanBlock(bodyState, s.Body.List)
		if s.Post != nil {
			c.scanStmt(bodyState, s.Post)
		}
		// The loop may run zero times; keep only locks held on both the
		// skip path and the body exit path.
		c.replace(state, intersect(state, bodyState))
	case *ast.RangeStmt:
		c.scanExpr(state, s.X)
		if tv, ok := c.pass.TypesInfo.Types[s.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				c.reportBlocked(state, s.For, "range over a channel")
			}
		}
		bodyState := state.clone()
		c.scanBlock(bodyState, s.Body.List)
		c.replace(state, intersect(state, bodyState))
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.scanStmt(state, s.Init)
		}
		if s.Tag != nil {
			c.scanExpr(state, s.Tag)
		}
		c.scanCases(state, s.Body.List)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.scanStmt(state, s.Init)
		}
		c.scanStmt(state, s.Assign)
		c.scanCases(state, s.Body.List)
	case *ast.SelectStmt:
		c.reportBlocked(state, s.Select, "select")
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				cs := state.clone()
				c.scanBlock(cs, cc.Body)
			}
		}
	case *ast.SendStmt:
		c.reportBlocked(state, s.Arrow, "channel send")
		c.scanExpr(state, s.Chan)
		c.scanExpr(state, s.Value)
	case *ast.GoStmt:
		// The goroutine body runs under an unknown lock state.
		c.scanExpr(state, s.Call.Fun)
		for _, a := range s.Call.Args {
			c.scanExpr(state, a)
		}
	case *ast.LabeledStmt:
		return c.scanStmt(state, s.Stmt)
	case *ast.BranchStmt:
		// break/continue/goto: treat as non-terminating and let the
		// enclosing loop's conservative merge absorb the imprecision.
	}
	return false
}

// scanCases analyzes switch case bodies, merging exit states by intersection
// over the non-terminating branches.
func (c *checker) scanCases(state lockState, clauses []ast.Stmt) {
	merged := state.clone() // the no-case-matches path keeps the entry state
	for _, clause := range clauses {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			c.scanExpr(state, e)
		}
		cs := state.clone()
		if !c.scanBlock(cs, cc.Body) {
			merged = intersect(merged, cs)
		}
	}
	c.replace(state, merged)
}

// merge folds two branch exit states back into state: terminated branches
// do not constrain the continuation.
func (c *checker) merge(state, a lockState, aTerm bool, b lockState, bTerm bool) {
	switch {
	case aTerm && bTerm:
		// both branches left; the continuation is unreachable unless there
		// was no else — callers handle that by passing b = entry clone.
		c.replace(state, b)
	case aTerm:
		c.replace(state, b)
	case bTerm:
		c.replace(state, a)
	default:
		c.replace(state, intersect(a, b))
	}
}

func (c *checker) replace(state, with lockState) {
	for k := range state {
		delete(state, k)
	}
	for k := range with {
		state[k] = true
	}
}

// lockTransition updates state for x.mu.Lock()/Unlock() calls on tracked
// mutexes, reporting double-lock. Returns true when the expression was a
// lock-state transition (so it is not re-scanned as a plain expression).
func (c *checker) lockTransition(state lockState, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	key, unlock := c.mutexCall(call)
	if key == "" {
		return false
	}
	if unlock {
		delete(state, key)
	} else {
		state[key] = true
	}
	return true
}

// mutexCall matches x.<mu>.Lock/RLock/Unlock/RUnlock() where <mu> is a
// tracked mutex field, returning the canonical key and whether it releases.
func (c *checker) mutexCall(call *ast.CallExpr) (key string, unlock bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	var isUnlock bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
	case "Unlock", "RUnlock":
		isUnlock = true
	default:
		return "", false
	}
	muSel, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	muField, ok := c.pass.TypesInfo.Uses[muSel.Sel].(*types.Var)
	if !ok || !c.tracked[muField] {
		return "", false
	}
	return exprString(muSel), isUnlock
}

// scanExpr checks guarded-field accesses and blocking calls inside one
// expression, including nested function literals (scanned with a fresh
// empty state — they run later, under unknown locks).
func (c *checker) scanExpr(state lockState, e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.scanBlock(make(lockState), n.Body.List)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.reportBlocked(state, n.OpPos, "channel receive")
			}
		case *ast.CallExpr:
			c.checkBlockingCall(state, n)
			// Atomic accesses of guarded fields are sanctioned: skip the
			// &x.f argument subtree.
			if isAtomicCall(c.pass, n) {
				for _, a := range n.Args {
					if u, ok := ast.Unparen(a).(*ast.UnaryExpr); ok && u.Op == token.AND {
						continue
					}
					c.scanExpr(state, a)
				}
				c.scanExpr(state, n.Fun)
				return false
			}
		case *ast.SelectorExpr:
			c.checkAccess(state, n)
		}
		return true
	})
}

// checkAccess reports a guarded-field access without the guarding mutex held.
func (c *checker) checkAccess(state lockState, sel *ast.SelectorExpr) {
	field, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok {
		return
	}
	g, guarded := c.guards[field]
	if !guarded {
		return
	}
	if c.isFreshBase(sel.X) {
		return
	}
	need := exprString(sel.X) + "." + g.mutex
	if state[need] {
		return
	}
	c.pass.Reportf(sel.Sel.Pos(),
		"access to %s.%s in %s without holding %s (field is //soda:guard %s); lock it, use sync/atomic, or tag the function //soda:locked %s",
		exprString(sel.X), field.Name(), c.fname, need, g.mutex, g.mutex)
}

// markFresh records lhs as a freshly allocated object when rhs is a
// composite literal (or its address), new(T), or a call to new-like
// builtins. Fresh objects are exempt from lock checking: they are not yet
// visible to other goroutines.
func (c *checker) markFresh(lhs ast.Expr, rhs ast.Expr) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return
	}
	obj := c.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return
	}
	if isFreshExpr(rhs) {
		c.fresh[obj] = true
	} else {
		delete(c.fresh, obj) // reassignment kills freshness
	}
}

func isFreshExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// isFreshBase reports whether the access base is rooted at a fresh local.
func (c *checker) isFreshBase(e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := c.pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = c.pass.TypesInfo.Defs[x]
			}
			return obj != nil && c.fresh[obj]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

// checkBlockingCall reports time.Sleep and blocking-package calls made while
// an annotated lock is held.
func (c *checker) checkBlockingCall(state lockState, call *ast.CallExpr) {
	if len(state) == 0 {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := c.pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	// Only package-level functions: x.Read() on a local is method dispatch.
	if id, ok := sel.X.(*ast.Ident); !ok {
		return
	} else if _, isPkgName := c.pass.TypesInfo.Uses[id].(*types.PkgName); !isPkgName {
		return
	}
	pkgPath := obj.Pkg().Path()
	switch {
	case pkgPath == "time" && obj.Name() == "Sleep":
		c.reportBlocked(state, call.Pos(), "time.Sleep")
	case blockingPackages[pkgPath]:
		c.reportBlocked(state, call.Pos(), fmt.Sprintf("call into package %s", pkgPath))
	}
}

// reportBlocked names one held lock in the finding (deterministically: the
// lexicographically first key).
func (c *checker) reportBlocked(state lockState, pos token.Pos, what string) {
	if len(state) == 0 {
		return
	}
	first := ""
	for k := range state {
		if first == "" || k < first {
			first = k
		}
	}
	c.pass.Reportf(pos,
		"%s while holding %s in %s: an annotated lock must not be held across blocking operations",
		what, first, c.fname)
}

// isAtomicCall reports whether the call is a sync/atomic package function.
func isAtomicCall(pass *lint.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// exprString renders the canonical spelling of a lock-base expression:
// identifiers, selectors, indexes and derefs, anything else as a stable
// placeholder.
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.BasicLit:
		return e.Value
	case *ast.CallExpr:
		return exprString(e.Fun) + "()"
	default:
		return "?"
	}
}
