// Package lint is a small static-analysis framework in the style of
// golang.org/x/tools/go/analysis, built on the standard library only.
//
// The repository enforces seven SODA-specific invariants that go vet cannot
// express — determinism of the core (no map-iteration order leaking into
// decisions), purity of ABR controllers (Decide/Reset must be deterministic,
// side-effect-free functions of their inputs), unit safety (no silent mixing
// of seconds, megabits and Mb/s), wire confinement of float64 unit escapes,
// lock discipline over //soda:guard-annotated fields, all-or-nothing
// sync/atomic field access with 32-bit alignment checking, and
// allocation-freedom of //soda:noalloc-tagged hot paths. Each invariant is
// an Analyzer in a subpackage (detrange, purecontroller, unitsafe,
// nofloat64wire, guardedby, atomicfield, noalloc); cmd/soda-vet runs them
// all alongside the standard vet passes.
//
// An Analyzer receives one type-checked package at a time via a Pass and
// reports findings through Pass.Report. Packages are loaded with
// `go list -export -deps -test -json`, so dependency type information comes
// from the compiler's export data rather than from re-type-checking the
// world, and the test corpus (augmented packages and external _test
// packages) is analyzed alongside plain source (see load.go). Loading and
// analysis both run on a bounded worker pool; findings are concatenated in
// load order, so output is deterministic regardless of scheduling.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (lowercase, no spaces).
	Name string
	// Doc is a one-paragraph description of what the analyzer checks.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // the package's compiled files (including any in-package _test.go sources of augmented variants)
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
