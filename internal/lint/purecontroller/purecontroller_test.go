package purecontroller_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/purecontroller"
)

func TestControllerPurity(t *testing.T) {
	linttest.Run(t, purecontroller.Analyzer, "ctrl")
}
