// Package purecontroller statically enforces that ABR controllers are pure:
// a controller's Decide and Reset methods must be deterministic functions of
// the receiver and their arguments, with no ambient inputs and no side
// effects outside the receiver.
//
// Purity is what makes the repository's conformance suite (internal/abrtest)
// and golden-file experiments meaningful — replaying a trace must reproduce
// the same decisions — and it is what SODA's §5 deployment story relies on:
// the controller runs client-side per decision epoch, so wall-clock reads,
// global state and I/O in the decision path are bugs, not style issues.
//
// A controller is detected structurally: any named type declaring both a
// Decide and a Reset method (the shape of abr.Controller). In those methods,
// and in every same-package function or method they transitively call,
// purecontroller reports:
//
//   - reads of the wall clock (time.Now, time.Since, time.Until),
//   - draws from shared randomness (math/rand and math/rand/v2 package-level
//     functions; constructing an explicitly-seeded rand.New(...) is allowed),
//   - goroutine launches,
//   - writes to package-level variables, and
//   - I/O (the os, net, net/http and syscall packages, and fmt printing to
//     stdout/stderr).
//
// Receiver-field mutation is allowed: controllers legitimately carry memo
// tables and error windows across decisions (core's decide-level memo,
// RobustMPC's error history). Determinism requires a pure function of the
// session's observation history, which receiver state preserves and global
// state does not.
package purecontroller

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the purecontroller analyzer.
var Analyzer = &lint.Analyzer{
	Name: "purecontroller",
	Doc: "flags wall-clock reads, shared randomness, goroutines, package-level writes " +
		"and I/O reachable from any controller's Decide/Reset methods",
	Run: run,
}

// ioPackages are import paths whose use inside a controller is I/O by
// definition.
var ioPackages = map[string]bool{
	"os":       true,
	"net":      true,
	"net/http": true,
	"syscall":  true,
}

// clockFuncs are the time package's ambient-input functions. time.Duration
// arithmetic and time.Time parameters are fine; sampling the clock is not.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors are math/rand functions that build an explicitly-seeded
// generator instead of drawing from the shared one; these are allowed.
var randConstructors = map[string]bool{
	"New":        true,
	"NewPCG":     true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewChaCha8": true,
}

func run(pass *lint.Pass) error {
	// funcs maps every package-level function/method declaration to its
	// types.Object so the call graph can be walked.
	decls := make(map[types.Object]*ast.FuncDecl)
	var roots []*ast.FuncDecl
	rootName := make(map[*ast.FuncDecl]string)

	controllers := controllerTypes(pass)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			decls[obj] = fd
			if recv := receiverNamed(pass, fd); recv != nil && controllers[recv] &&
				(fd.Name.Name == "Decide" || fd.Name.Name == "Reset") {
				roots = append(roots, fd)
				rootName[fd] = "(" + recv.Obj().Name() + ")." + fd.Name.Name
			}
		}
	}

	// Walk the same-package call graph from each controller method. A helper
	// reachable from two controllers is checked once per root so the finding
	// names the controller method that reaches it.
	for _, root := range roots {
		seen := make(map[*ast.FuncDecl]bool)
		var visit func(fd *ast.FuncDecl)
		visit = func(fd *ast.FuncDecl) {
			if seen[fd] {
				return
			}
			seen[fd] = true
			checkBody(pass, fd, rootName[root])
			for _, callee := range samePackageCallees(pass, fd, decls) {
				visit(callee)
			}
		}
		visit(root)
	}
	return nil
}

// controllerTypes returns the named types in this package declaring both
// Decide and Reset methods — the structural shape of abr.Controller.
func controllerTypes(pass *lint.Pass) map[*types.Named]bool {
	out := make(map[*types.Named]bool)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		var hasDecide, hasReset bool
		for i := 0; i < named.NumMethods(); i++ {
			switch named.Method(i).Name() {
			case "Decide":
				hasDecide = true
			case "Reset":
				hasReset = true
			}
		}
		if hasDecide && hasReset {
			out[named] = true
		}
	}
	return out
}

// receiverNamed resolves a method declaration's receiver to its named type,
// unwrapping a pointer receiver.
func receiverNamed(pass *lint.Pass, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	t := pass.TypesInfo.Types[fd.Recv.List[0].Type].Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// samePackageCallees returns the package-level functions and methods of this
// package that fd calls directly.
func samePackageCallees(pass *lint.Pass, fd *ast.FuncDecl, decls map[types.Object]*ast.FuncDecl) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var obj types.Object
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			obj = pass.TypesInfo.Uses[fun]
		case *ast.SelectorExpr:
			obj = pass.TypesInfo.Uses[fun.Sel]
		}
		if obj == nil || obj.Pkg() != pass.Pkg {
			return true
		}
		if callee, ok := decls[obj]; ok {
			out = append(out, callee)
		}
		return true
	})
	return out
}

// checkBody reports every impurity in one function body, attributing it to
// the controller method it is reachable from.
func checkBody(pass *lint.Pass, fd *ast.FuncDecl, root string) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Go, "goroutine launched in controller path %s: decisions must be synchronous and deterministic", root)
		case *ast.CallExpr:
			checkCall(pass, n, root)
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkGlobalWrite(pass, lhs, root)
			}
		case *ast.IncDecStmt:
			checkGlobalWrite(pass, n.X, root)
		}
		return true
	})
}

// checkCall flags clock reads, shared randomness and I/O calls.
func checkCall(pass *lint.Pass, call *ast.CallExpr, root string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	pkgPath := obj.Pkg().Path()
	// Only package-level functions matter here: x.Read() on a local variable
	// whose type comes from os is method dispatch, reported only when the
	// value itself was obtained through the os package.
	if _, isPkg := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !isPkg {
		return
	}
	if id, ok := sel.X.(*ast.Ident); !ok || pass.TypesInfo.Uses[id] == nil {
		return
	} else if _, isPkgName := pass.TypesInfo.Uses[id].(*types.PkgName); !isPkgName {
		return
	}
	switch {
	case pkgPath == "time" && clockFuncs[obj.Name()]:
		pass.Reportf(call.Pos(), "call to time.%s in controller path %s: wall-clock input breaks replayability; take the time from the decision context", obj.Name(), root)
	case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !randConstructors[obj.Name()]:
		pass.Reportf(call.Pos(), "call to shared math/rand in controller path %s: draw from a seeded *rand.Rand carried in the receiver instead", root)
	case ioPackages[pkgPath]:
		pass.Reportf(call.Pos(), "call into package %s in controller path %s: controllers must not perform I/O", pkgPath, root)
	case pkgPath == "fmt" && strings.HasPrefix(obj.Name(), "Print"):
		pass.Reportf(call.Pos(), "fmt.%s writes to stdout in controller path %s: controllers must not perform I/O", obj.Name(), root)
	}
}

// checkGlobalWrite flags assignments whose target resolves to a
// package-level variable.
func checkGlobalWrite(pass *lint.Pass, lhs ast.Expr, root string) {
	// Unwrap x.f, x[i], *x down to the root identifier.
	for {
		switch e := lhs.(type) {
		case *ast.SelectorExpr:
			lhs = e.X
			continue
		case *ast.IndexExpr:
			lhs = e.X
			continue
		case *ast.StarExpr:
			lhs = e.X
			continue
		case *ast.ParenExpr:
			lhs = e.X
			continue
		case *ast.Ident:
			obj, ok := pass.TypesInfo.Uses[e].(*types.Var)
			if !ok {
				return
			}
			if obj.Parent() == obj.Pkg().Scope() {
				pass.Reportf(e.Pos(), "write to package-level variable %s in controller path %s: keep mutable state on the receiver", e.Name, root)
			}
			return
		default:
			return
		}
	}
}
