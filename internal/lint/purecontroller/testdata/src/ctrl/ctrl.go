// Package ctrl is a purecontroller fixture: types with both Decide and Reset
// methods are controllers; everything reachable from those methods in this
// package is checked.
package ctrl

import (
	"fmt"
	"math/rand/v2"
	"os"
	"time"
)

// Context is a stand-in for the decision context.
type Context struct{ Buffer float64 }

// decisions is package-level state no controller may write.
var decisions int

// Impure trips every rule.
type Impure struct{ last float64 }

func (c *Impure) Decide(ctx *Context) int {
	start := time.Now() // want `call to time.Now in controller path \(Impure\).Decide`
	_ = start
	r := rand.Float64()     // want `call to shared math/rand in controller path \(Impure\).Decide`
	decisions++             // want `write to package-level variable decisions in controller path \(Impure\).Decide`
	fmt.Println("deciding") // want `fmt.Println writes to stdout in controller path \(Impure\).Decide`
	go func() {}()          // want `goroutine launched in controller path \(Impure\).Decide`
	c.last = ctx.Buffer     // receiver-field write: allowed
	return int(r)
}

func (c *Impure) Reset() {
	os.Remove("state") // want `call into package os in controller path \(Impure\).Reset`
}

// Leaky hides the impurity behind a same-package helper, which the
// transitive walk must still reach.
type Leaky struct{}

func (Leaky) Decide(ctx *Context) int { return helper() }
func (Leaky) Reset()                  {}

func helper() int {
	return int(time.Now().Unix()) // want `call to time.Now in controller path \(Leaky\).Decide`
}

// Pure is the false-positive-avoidance case: receiver state, seeded
// randomness built in the constructor, and time arithmetic on values passed
// in are all legitimate.
type Pure struct {
	memo map[int]int
	rng  *rand.Rand
}

// NewPure builds a controller with an explicitly-seeded generator; rand.New
// and rand.NewPCG are constructors, not draws from shared state — and this
// function is not reachable from Decide/Reset anyway.
func NewPure(seed uint64) *Pure {
	return &Pure{memo: map[int]int{}, rng: rand.New(rand.NewPCG(seed, 0))}
}

func (p *Pure) Decide(ctx *Context) int {
	if v, ok := p.memo[int(ctx.Buffer)]; ok {
		return v
	}
	v := int(ctx.Buffer * float64(p.rng.IntN(3))) // receiver-held seeded rng: allowed
	p.memo[int(ctx.Buffer)] = v                   // receiver map write: allowed
	return v
}

func (p *Pure) Reset() {
	p.memo = map[int]int{}
	d := 2 * time.Second // duration arithmetic is not a clock read
	_ = d
}

// NotAController has Decide but no Reset, so its clock read is out of scope.
type NotAController struct{}

func (NotAController) Decide(ctx *Context) int { return int(time.Now().Unix()) }

// telemetrySink stands in for a metrics registry: package-level state a
// push-style instrumented controller would write from the decision path.
var telemetrySink struct {
	decisions int
	lastRung  int
}

// Instrumented pushes telemetry from inside Decide via a same-package
// helper — the exact anti-pattern the telemetry layer's pull-based design
// exists to avoid. The transitive walk must attribute the helper's global
// writes to (Instrumented).Decide.
type Instrumented struct{ solves int }

func (c *Instrumented) Decide(ctx *Context) int {
	rung := int(ctx.Buffer)
	c.solves++ // receiver-field write: allowed
	recordDecision(rung)
	return rung
}

func (c *Instrumented) Reset() { c.solves = 0 }

func recordDecision(rung int) {
	telemetrySink.decisions++     // want `write to package-level variable telemetrySink in controller path \(Instrumented\).Decide`
	telemetrySink.lastRung = rung // want `write to package-level variable telemetrySink in controller path \(Instrumented\).Decide`
}

// snapshotStats is the pull-based pattern: a harness calls it AFTER Decide
// returns and copies receiver state out to the registry. It is not reachable
// from Decide/Reset, so its global write is out of scope — no finding.
func snapshotStats(c *Instrumented) {
	telemetrySink.decisions = c.solves
}

// watchdogSink stands in for a fleet-wide QoE watchdog: shared incident
// counters a flight-recorder layer owns. The recording layer observes the
// decision stream from OUTSIDE the controller; a controller that feeds it
// from Decide has inverted that dependency.
var watchdogSink struct {
	incidents int
	lastAt    float64
}

// SelfWatching pushes a watchdog observation from inside Decide via a
// same-package helper — the flight-recorder anti-pattern: the detector state
// update becomes part of the decision path, so recording is no longer
// provably outside the controller. The transitive walk must attribute the
// helper's global writes to (SelfWatching).Decide.
type SelfWatching struct{ prevRung int }

func (c *SelfWatching) Decide(ctx *Context) int {
	rung := int(ctx.Buffer)
	if rung != c.prevRung {
		observeSwitch(ctx.Buffer)
	}
	c.prevRung = rung // receiver-field write: allowed
	return rung
}

func (c *SelfWatching) Reset() { c.prevRung = 0 }

func observeSwitch(at float64) {
	watchdogSink.incidents++ // want `write to package-level variable watchdogSink in controller path \(SelfWatching\).Decide`
	watchdogSink.lastAt = at // want `write to package-level variable watchdogSink in controller path \(SelfWatching\).Decide`
}

// watchSession is the sanctioned shape: the harness calls it AFTER Decide
// returns, passing the controller's outputs by value. It is not reachable
// from Decide/Reset, so its global write is out of scope — no finding.
func watchSession(rung, prevRung int, at float64) {
	if rung != prevRung {
		watchdogSink.incidents++
		watchdogSink.lastAt = at
	}
}
