package lint_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// writeTree materialises a file map as a temp module and returns its root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const probeMod = "module loadprobe\n\ngo 1.22\n"

// TestLoadTestCorpus pins the loader's test-corpus contract: generated test
// mains are skipped, a package with in-package tests is loaded once as its
// test-augmented variant (carrying the _test.go sources), and external test
// packages are targets of their own.
func TestLoadTestCorpus(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":               probeMod,
		"a/a.go":               "package a\n\n// A is the probe function.\nfunc A() int { return 1 }\n",
		"a/a_internal_test.go": "package a\n\nimport \"testing\"\n\nfunc TestA(t *testing.T) {\n\tif A() != 1 {\n\t\tt.Fail()\n\t}\n}\n",
		"a/a_external_test.go": "package a_test\n\nimport (\n\t\"testing\"\n\n\t\"loadprobe/a\"\n)\n\nfunc TestExternal(t *testing.T) {\n\tif a.A() != 1 {\n\t\tt.Fail()\n\t}\n}\n",
		"b/b.go":               "package b\n\n// B has no tests at all.\nfunc B() {}\n",
	})
	pkgs, err := lint.Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	byPath := make(map[string]*lint.Loaded)
	seen := make(map[string]int)
	for _, p := range pkgs {
		if strings.HasSuffix(p.ImportPath, ".test") {
			t.Errorf("generated test main %s was not skipped", p.ImportPath)
		}
		seen[p.ImportPath]++
		byPath[p.ImportPath] = p
	}
	if seen["loadprobe/a"] != 1 {
		t.Errorf("loadprobe/a loaded %d times, want exactly once (augmented variant supersedes the plain package)", seen["loadprobe/a"])
	}
	a := byPath["loadprobe/a"]
	if a == nil {
		t.Fatal("loadprobe/a not loaded")
	}
	var names []string
	for _, f := range a.Files {
		names = append(names, filepath.Base(a.Fset.Position(f.Pos()).Filename))
	}
	if !contains(names, "a.go") || !contains(names, "a_internal_test.go") {
		t.Errorf("augmented loadprobe/a carries files %v, want both a.go and a_internal_test.go", names)
	}
	if contains(names, "a_external_test.go") {
		t.Errorf("augmented loadprobe/a carries the external test file: %v", names)
	}
	if ext := byPath["loadprobe/a_test"]; ext == nil {
		t.Error("external test package loadprobe/a_test not loaded as a target")
	}
	if byPath["loadprobe/b"] == nil {
		t.Error("test-less package loadprobe/b not loaded")
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// TestLoadErrorPropagation pins the loader's failure modes: a broken source
// file fails the go list -export build, and a pattern matching nothing is an
// error rather than an empty success.
func TestLoadErrorPropagation(t *testing.T) {
	t.Run("broken source", func(t *testing.T) {
		dir := writeTree(t, map[string]string{
			"go.mod":   probeMod,
			"bad/x.go": "package bad\n\nfunc broken( {\n",
		})
		if _, err := lint.Load(dir, "./..."); err == nil {
			t.Fatal("Load succeeded on a module with a syntax error")
		} else if !strings.Contains(err.Error(), "go list") {
			t.Errorf("error %q does not name the failing go list stage", err)
		}
	})
	t.Run("no match", func(t *testing.T) {
		dir := writeTree(t, map[string]string{
			"go.mod": probeMod,
			"a/a.go": "package a\n\nfunc A() {}\n",
		})
		if _, err := lint.Load(dir, "./nonexistent/..."); err == nil {
			t.Fatal("Load succeeded on a pattern matching no packages")
		}
	})
}

// TestRunDeterministicOrder pins the parallel Run contract: findings arrive
// in load order regardless of worker scheduling, and analyzer errors
// propagate.
func TestRunDeterministicOrder(t *testing.T) {
	files := map[string]string{"go.mod": probeMod}
	for i := 0; i < 8; i++ {
		files[fmt.Sprintf("p%d/p.go", i)] = fmt.Sprintf("package p%d\n\nfunc F() {}\n", i)
	}
	dir := writeTree(t, files)
	pkgs, err := lint.Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	probe := &lint.Analyzer{
		Name: "probe",
		Doc:  "reports one finding per file",
		Run: func(p *lint.Pass) error {
			for _, f := range p.Files {
				p.Reportf(f.Pos(), "file of %s", p.Pkg.Path())
			}
			return nil
		},
	}
	first, err := lint.Run(pkgs, []*lint.Analyzer{probe})
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(pkgs) {
		t.Fatalf("got %d findings, want %d", len(first), len(pkgs))
	}
	for i, f := range first {
		if want := fmt.Sprintf("file of %s", pkgs[i].ImportPath); f.Message != want {
			t.Errorf("finding %d = %q, want %q (load order)", i, f.Message, want)
		}
	}
	for round := 0; round < 4; round++ {
		again, err := lint.Run(pkgs, []*lint.Analyzer{probe})
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(again) != fmt.Sprint(first) {
			t.Fatalf("round %d produced a different finding order:\n%v\nvs\n%v", round, again, first)
		}
	}

	boom := &lint.Analyzer{
		Name: "boom",
		Doc:  "always errors",
		Run:  func(p *lint.Pass) error { return fmt.Errorf("kaboom") },
	}
	if _, err := lint.Run(pkgs, []*lint.Analyzer{probe, boom}); err == nil {
		t.Fatal("Run swallowed an analyzer error")
	} else if !strings.Contains(err.Error(), "kaboom") || !strings.Contains(err.Error(), "boom") {
		t.Errorf("error %q does not carry the analyzer name and cause", err)
	}
}
